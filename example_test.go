package snowboard_test

import (
	"fmt"
	"sort"

	"snowboard"
	"snowboard/internal/detect"
	"snowboard/internal/kernel"
)

// ExampleRun executes the full four-stage pipeline with a small budget and
// prints which of the paper's Table 2 issues were found.
func ExampleRun() {
	opts := snowboard.DefaultOptions()
	opts.Seed = 1
	opts.FuzzBudget = 300
	opts.CorpusCap = 80
	opts.TestBudget = 40
	opts.Trials = 12

	report, err := snowboard.Run(opts)
	if err != nil {
		panic(err)
	}
	ids := report.BugIDs()
	sort.Ints(ids)
	// The ubiquitous benign slab-counter race (#13) is found by every
	// configuration, so it is a stable sentinel for the example.
	found13 := false
	for _, id := range ids {
		if id == 13 {
			found13 = true
		}
	}
	fmt.Println("found issue #13:", found13)
	// Output: found issue #13: true
}

// ExampleExplorer_Explore builds the paper's Figure 1 concurrent test by
// hand, identifies the PMC between the tunnel publication and the lookup,
// and explores interleavings until the null dereference fires.
func ExampleExplorer_Explore() {
	env := snowboard.NewEnv(snowboard.V5_12_RC3)

	writer := &snowboard.Prog{Calls: []snowboard.Call{
		{Nr: kernel.SysSocketNr, Args: []snowboard.Arg{snowboard.Const(kernel.AFPppox), snowboard.Const(kernel.SockDgram), snowboard.Const(kernel.PxProtoOL2TP)}},
		{Nr: kernel.SysSocketNr, Args: []snowboard.Arg{snowboard.Const(kernel.AFInet), snowboard.Const(kernel.SockDgram), snowboard.Const(0)}},
		{Nr: kernel.SysConnectNr, Args: []snowboard.Arg{snowboard.ResultArg(0), snowboard.Const(1), snowboard.ResultArg(1)}},
	}}
	reader := writer.Clone()
	reader.Calls = append(reader.Calls, snowboard.Call{
		Nr: kernel.SysSendmsgNr, Args: []snowboard.Arg{snowboard.ResultArg(0), snowboard.Const(512)},
	})

	var profiles []snowboard.Profile
	for i, p := range []*snowboard.Prog{writer, reader} {
		accs, df, _ := env.Profile(p)
		profiles = append(profiles, snowboard.Profile{TestID: i, Accesses: accs, DFLeader: df})
	}
	set := snowboard.Identify(profiles)

	var hint *snowboard.PMC
	for key := range set.Entries {
		if key.Write.Ins.Name() == "l2tp_tunnel_register:list_add_rcu" &&
			key.Read.Ins.Name() == "l2tp_tunnel_get:rcu_dereference_list" {
			k := key
			hint = &k
			break
		}
	}

	x := &snowboard.Explorer{
		Env: env, Trials: 512, Seed: 1,
		Mode: snowboard.ModeSnowboard, Detect: detect.DefaultOptions(), KnownPMCs: set,
	}
	out := x.Explore(snowboard.ConcurrentTest{Writer: writer, Reader: reader, Hint: hint})

	for _, is := range out.Issues {
		if is.BugID == 12 && is.Kind == detect.KindPanic {
			fmt.Println("reproduced the Figure 1 null dereference")
		}
	}
	// Output: reproduced the Figure 1 null dereference
}

// ExampleTable2 lists the issue catalogue carried by the simulated kernel.
func ExampleTable2() {
	harmful := 0
	for _, b := range snowboard.Table2() {
		if b.Harmful {
			harmful++
		}
	}
	fmt.Printf("%d known issues, %d harmful\n", len(snowboard.Table2()), harmful)
	// Output: 17 known issues, 12 harmful
}

// ExampleStrategies prints the Table 1 clustering strategies.
func ExampleStrategies() {
	for _, s := range snowboard.Strategies() {
		fmt.Println(s.Name)
	}
	// Output:
	// S-FULL
	// S-CH
	// S-CH-NULL
	// S-CH-UNALIGNED
	// S-CH-DOUBLE
	// S-INS
	// S-INS-PAIR
	// S-MEM
}
