module snowboard

go 1.22
