// strategies reproduces the shape of the paper's Table 3: every concurrent
// test generation method — the eight Table 1 clustering strategies, Random
// S-INS-PAIR, and the two non-PMC baselines — runs with the same budget on
// the same profiled corpus, and the bug yield per method is compared.
//
// The paper's headline finding should be visible in the output: S-INS and
// S-INS-PAIR find the most issues, S-FULL wastes its budget on
// near-identical channels and finds only the ubiquitous benign slab race
// (#13), and #13 is found by every method including the baselines.
package main

import (
	"fmt"
	"log"
	"sort"

	"snowboard"
)

func main() {
	base := snowboard.DefaultOptions()
	base.Version = snowboard.V5_12_RC3
	base.Seed = 7
	base.FuzzBudget = 600
	base.CorpusCap = 150
	base.TestBudget = 60
	base.Trials = 12

	// Build corpus, profiles, and the PMC database once; all methods share
	// them, as the paper shares machine C's profiling output.
	shared := snowboard.NewPipeline(base)
	warm := shared.NewReport()
	shared.BuildCorpus(warm)
	if err := shared.ProfileAll(warm); err != nil {
		log.Fatal(err)
	}
	shared.IdentifyPMCs(warm)
	fmt.Printf("shared corpus: %d tests, %d PMC keys, %d combinations\n\n",
		warm.CorpusSize, warm.DistinctPMCs, warm.PMCCombinations)

	fmt.Printf("%-20s %10s %8s %10s  %s\n", "Method", "Exemplars", "Tested", "Exercised", "Issues (found after N tests)")
	for _, m := range snowboard.Methods() {
		opts := base
		opts.Method = m
		p := snowboard.NewPipeline(opts)
		p.SetCorpus(shared.Corpus)
		p.SetProfiles(shared.Profiles)
		p.SetPMCs(shared.PMCs)
		r := p.NewReport()
		tests := p.GenerateTests(r, opts.TestBudget)
		p.ExecuteTests(r, tests)

		ids := r.BugIDs()
		sort.Ints(ids)
		row := ""
		for i, id := range ids {
			if i > 0 {
				row += ", "
			}
			row += fmt.Sprintf("#%d(%d)", id, r.Issues[id].TestIndex)
		}
		if row == "" {
			row = "-"
		}
		fmt.Printf("%-20s %10d %8d %10d  %s\n", m.Name, r.ExemplarPMCs, r.TestedTests, r.Exercised, row)
	}
}
