// l2tpbug reproduces the paper's Figure 1 end to end: the non-data-race
// order violation in the L2TP tunnel registration path (Table 2 issue #12,
// fixed upstream in 69e16d01d1de).
//
// The example builds the two sequential tests of Figure 1 by hand, profiles
// them from the boot snapshot, identifies the PMC between the writer's
// list_add_rcu publication and the reader's tunnel-list lookup, and hands
// it to Algorithm 2 as a scheduling hint. Within a few dozen interleaving
// trials the reader retrieves the half-initialized tunnel and the kernel
// panics on the null tunnel->sock — exactly the paper's ➊→➋→➌→➍ sequence.
package main

import (
	"fmt"
	"log"

	"snowboard"
	"snowboard/internal/detect"
	"snowboard/internal/kernel"
	"snowboard/internal/pmc"
)

// writerTest is Figure 1's Test 1:
//
//	r0 = socket(..., PX_PROTO_OL2TP)
//	r1 = socket(AF_INET, ...)
//	connect(r0, ...r1..., ...)
func writerTest() *snowboard.Prog {
	return &snowboard.Prog{Calls: []snowboard.Call{
		{Nr: kernel.SysSocketNr, Args: []snowboard.Arg{snowboard.Const(kernel.AFPppox), snowboard.Const(kernel.SockDgram), snowboard.Const(kernel.PxProtoOL2TP)}},
		{Nr: kernel.SysSocketNr, Args: []snowboard.Arg{snowboard.Const(kernel.AFInet), snowboard.Const(kernel.SockDgram), snowboard.Const(0)}},
		{Nr: kernel.SysConnectNr, Args: []snowboard.Arg{snowboard.ResultArg(0), snowboard.Const(1), snowboard.ResultArg(1)}},
	}}
}

// readerTest is Figure 1's Test 2 — the same plus sendmsg(r0, ...).
func readerTest() *snowboard.Prog {
	p := writerTest()
	p.Calls = append(p.Calls, snowboard.Call{
		Nr:   kernel.SysSendmsgNr,
		Args: []snowboard.Arg{snowboard.ResultArg(0), snowboard.Const(512)},
	})
	return p
}

func main() {
	env := snowboard.NewEnv(snowboard.V5_12_RC3)

	writer, reader := writerTest(), readerTest()
	fmt.Println("Test 1 (writer):")
	fmt.Print(writer)
	fmt.Println("Test 2 (reader):")
	fmt.Print(reader)

	// Stage 1: profile both tests sequentially from the boot snapshot.
	var profiles []snowboard.Profile
	for i, p := range []*snowboard.Prog{writer, reader} {
		accs, df, res := env.Profile(p)
		if res.Crashed() {
			log.Fatalf("sequential profiling crashed: %v", res.Faults)
		}
		profiles = append(profiles, snowboard.Profile{TestID: i, Accesses: accs, DFLeader: df})
		fmt.Printf("profiled test %d: %d shared accesses\n", i+1, accs.Len())
	}

	// Stage 2: identify PMCs and pick the tunnel-list publication channel.
	set := snowboard.Identify(profiles)
	fmt.Printf("identified %d PMCs between the two tests\n", set.Len())
	var hint *snowboard.PMC
	for key := range set.Entries {
		if key.Write.Ins.Name() == "l2tp_tunnel_register:list_add_rcu" &&
			key.Read.Ins.Name() == "l2tp_tunnel_get:rcu_dereference_list" {
			h := key
			hint = &h
			break
		}
	}
	if hint == nil {
		log.Fatal("tunnel-list publication PMC not identified")
	}
	fmt.Printf("scheduling hint: %s\n\n", hint)

	// Stage 4: explore interleavings with the PMC as the hint.
	x := &snowboard.Explorer{
		Env:       env,
		Trials:    256,
		Seed:      42,
		Mode:      snowboard.ModeSnowboard,
		Detect:    detect.DefaultOptions(),
		KnownPMCs: set,
	}
	out := x.Explore(snowboard.ConcurrentTest{
		Writer: writer, Reader: reader, Hint: hint, Pair: pmc.Pair{Writer: 0, Reader: 1},
	})

	var panicIssue *snowboard.Issue
	for i := range out.Issues {
		if out.Issues[i].Kind == detect.KindPanic {
			panicIssue = &out.Issues[i]
		}
	}
	if panicIssue == nil {
		log.Fatalf("panic not reproduced in %d trials (issues: %v)", out.Trials, out.Issues)
	}
	fmt.Printf("kernel panic reproduced on trial %d:\n", out.TrialOf(*panicIssue))
	fmt.Printf("  %s\n", panicIssue.Desc)
	fmt.Printf("  attributed to Table 2 issue #%d\n", panicIssue.BugID)
	fmt.Printf("  PMC channel first exercised on trial %d\n\n", out.ExercisedTrial)

	// §6: deterministic reproduction and post-mortem diagnosis. The
	// recorded trial state replays the identical crash on demand, and the
	// diagnosis report reconstructs Figure 1's interleaving diagram.
	if out.Repro == nil {
		log.Fatal("no reproduction state recorded")
	}
	var replayTr snowboard.Trace
	res := snowboard.Replay(env, snowboard.ConcurrentTest{Writer: writer, Reader: reader, Hint: hint}, out.Repro, &replayTr)
	if !res.Crashed() {
		log.Fatal("replay did not reproduce the crash")
	}
	fmt.Println("replay reproduced the crash deterministically; diagnosis:")
	fmt.Println(snowboard.Diagnose(&replayTr, hint, []snowboard.Issue{*panicIssue}))
}
