// skivs reproduces the §5.4 scheduler comparison: how many interleaving
// trials Snowboard's PMC-hinted scheduler (Algorithm 2) needs to expose
// the Figure 1 bug, versus the SKI-style baseline that yields on
// instruction matches regardless of memory targets, versus an unguided
// random walk.
//
// The paper measures 9.76 interleavings/test for Snowboard against 826.29
// for SKI (84x). The absolute numbers here differ (the substrate is a
// simulator), but the ordering — Snowboard ≪ SKI ≤ random — should hold.
package main

import (
	"fmt"
	"log"

	"snowboard"
	"snowboard/internal/detect"
	"snowboard/internal/kernel"
)

func tests() (*snowboard.Prog, *snowboard.Prog) {
	writer := &snowboard.Prog{Calls: []snowboard.Call{
		{Nr: kernel.SysSocketNr, Args: []snowboard.Arg{snowboard.Const(kernel.AFPppox), snowboard.Const(kernel.SockDgram), snowboard.Const(kernel.PxProtoOL2TP)}},
		{Nr: kernel.SysSocketNr, Args: []snowboard.Arg{snowboard.Const(kernel.AFInet), snowboard.Const(kernel.SockDgram), snowboard.Const(0)}},
		{Nr: kernel.SysConnectNr, Args: []snowboard.Arg{snowboard.ResultArg(0), snowboard.Const(1), snowboard.ResultArg(1)}},
	}}
	reader := writer.Clone()
	reader.Calls = append(reader.Calls, snowboard.Call{
		Nr:   kernel.SysSendmsgNr,
		Args: []snowboard.Arg{snowboard.ResultArg(0), snowboard.Const(512)},
	})
	return writer, reader
}

func main() {
	const rounds = 10
	const maxTrials = 2048

	run := func(mode string) float64 {
		total := 0
		for seed := int64(1); seed <= rounds; seed++ {
			env := snowboard.NewEnv(snowboard.V5_12_RC3)
			writer, reader := tests()
			var profiles []snowboard.Profile
			for i, p := range []*snowboard.Prog{writer, reader} {
				accs, df, res := env.Profile(p)
				if res.Crashed() {
					log.Fatalf("profiling crashed: %v", res.Faults)
				}
				profiles = append(profiles, snowboard.Profile{TestID: i, Accesses: accs, DFLeader: df})
			}
			set := snowboard.Identify(profiles)
			var hint *snowboard.PMC
			for key := range set.Entries {
				if key.Write.Ins.Name() == "l2tp_tunnel_register:list_add_rcu" &&
					key.Read.Ins.Name() == "l2tp_tunnel_get:rcu_dereference_list" {
					h := key
					hint = &h
				}
			}
			if hint == nil {
				log.Fatal("hint PMC not found")
			}
			x := &snowboard.Explorer{Env: env, Trials: maxTrials, Seed: seed * 7919, Detect: detect.DefaultOptions(), KnownPMCs: set}
			switch mode {
			case "snowboard":
				x.Mode = snowboard.ModeSnowboard
			case "ski":
				x.Mode = snowboard.ModeSKI
			case "random-walk":
				x.Mode = snowboard.ModeRandomWalk
			}
			out := x.Explore(snowboard.ConcurrentTest{Writer: writer, Reader: reader, Hint: hint})
			n := maxTrials + 1
			for _, is := range out.Issues {
				if is.BugID == 12 && is.Kind == detect.KindPanic {
					n = out.TrialOf(is) + 1
				}
			}
			total += n
		}
		return float64(total) / rounds
	}

	fmt.Println("mean interleaving trials to expose issue #12 (Figure 1 bug):")
	for _, mode := range []string{"snowboard", "ski", "random-walk"} {
		fmt.Printf("  %-12s %.1f\n", mode, run(mode))
	}
	fmt.Printf("\n(paper, on real Linux: snowboard 9.76 vs SKI 826.29 interleavings/test)\n")
}
