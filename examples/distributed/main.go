// distributed demonstrates the §4.4.1 deployment shape: a coordinator
// generates concurrent tests and serves them over the lightweight TCP
// queue; worker goroutines (each owning its own simulated kernel, like the
// paper's machine-B fleet) pop jobs, explore interleavings, and report
// findings back. In production the workers would be separate processes on
// separate machines (see cmd/sbqueue and cmd/sbexec).
package main

import (
	"errors"
	"fmt"
	"log"
	"sort"
	"sync"

	"snowboard"
	"snowboard/internal/detect"
	"snowboard/internal/queue"
	"snowboard/internal/sched"
)

func main() {
	// Coordinator: corpus -> profiles -> PMCs -> concurrent tests.
	opts := snowboard.DefaultOptions()
	opts.Seed = 3
	opts.FuzzBudget = 500
	opts.CorpusCap = 120
	p := snowboard.NewPipeline(opts)
	r := p.NewReport()
	p.BuildCorpus(r)
	if err := p.ProfileAll(r); err != nil {
		log.Fatal(err)
	}
	p.IdentifyPMCs(r)
	tests := p.GenerateTests(r, 48)
	fmt.Printf("coordinator: %d tests from %d PMCs (%d clusters)\n",
		len(tests), r.DistinctPMCs, r.ExemplarPMCs)

	q := snowboard.NewQueue()
	srv, err := queue.Serve(q, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	for i, ct := range tests {
		if err := q.Push(queue.Job{ID: i, Writer: ct.Writer, Reader: ct.Reader, Hint: ct.Hint, Pair: ct.Pair}); err != nil {
			log.Fatal(err)
		}
	}

	// Fleet: four workers over TCP, each with a private simulated kernel.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := queue.Dial(srv.Addr())
			if err != nil {
				log.Fatal(err)
			}
			defer c.Close()
			env := snowboard.NewEnv(opts.Version)
			x := &snowboard.Explorer{
				Env: env, Trials: 12, Mode: snowboard.ModeSnowboard,
				Detect: detect.DefaultOptions(),
				Fsck:   func() []string { return env.K.FsckHost() },
			}
			for {
				job, err := c.Pop()
				if errors.Is(err, queue.ErrEmpty) || errors.Is(err, queue.ErrClosed) {
					return
				}
				if err != nil {
					log.Fatal(err)
				}
				x.Seed = int64(job.ID)*1009 + 1
				out := x.Explore(sched.ConcurrentTest{
					Writer: job.Writer, Reader: job.Reader, Hint: job.Hint, Pair: job.Pair,
				})
				res := queue.JobResult{JobID: job.ID, Trials: out.Trials, Exercised: out.Exercised, Worker: fmt.Sprintf("worker-%d", id)}
				for _, is := range out.Issues {
					if is.BugID != 0 {
						res.BugIDs = append(res.BugIDs, is.BugID)
					}
				}
				if err := c.Report(res); err != nil {
					log.Fatal(err)
				}
			}
		}(w)
	}
	wg.Wait()

	// Aggregate.
	found := make(map[int]bool)
	exercised, trials := 0, 0
	byWorker := make(map[string]int)
	for _, res := range q.Results() {
		trials += res.Trials
		if res.Exercised {
			exercised++
		}
		for _, id := range res.BugIDs {
			found[id] = true
		}
		byWorker[res.Worker]++
	}
	fmt.Printf("fleet: %d trials total, %d/%d tests exercised their channel\n", trials, exercised, len(tests))
	for w := 0; w < 4; w++ {
		name := fmt.Sprintf("worker-%d", w)
		fmt.Printf("  %s handled %d jobs\n", name, byWorker[name])
	}
	ids := make([]int, 0, len(found))
	for id := range found {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	fmt.Printf("issues found across the fleet (Table 2 numbers): %v\n", ids)
}
