// distributed demonstrates the §4.4.1 deployment shape: a coordinator
// generates concurrent tests and serves them over the lightweight TCP
// queue; worker goroutines (each owning its own simulated kernel, like the
// paper's machine-B fleet) lease jobs, explore interleavings, report
// findings back, and ack. Delivery is at-least-once: worker 0 deliberately
// "crashes" (abandons its lease) on the first job it receives, which the
// queue redelivers after the lease expires — the final aggregate still
// counts every job exactly once, because worker seeds derive from the job
// ID and duplicate reports are folded away. In production the workers
// would be separate processes on separate machines (see cmd/sbqueue and
// cmd/sbexec).
package main

import (
	"errors"
	"fmt"
	"log"
	"sync"
	"time"

	"snowboard"
	"snowboard/internal/detect"
	"snowboard/internal/queue"
	"snowboard/internal/sched"
)

func main() {
	// Coordinator: corpus -> profiles -> PMCs -> concurrent tests.
	opts := snowboard.DefaultOptions()
	opts.Seed = 3
	opts.FuzzBudget = 500
	opts.CorpusCap = 120
	p := snowboard.NewPipeline(opts)
	r := p.NewReport()
	p.BuildCorpus(r)
	if err := p.ProfileAll(r); err != nil {
		log.Fatal(err)
	}
	p.IdentifyPMCs(r)
	tests := p.GenerateTests(r, 48)
	fmt.Printf("coordinator: %d tests from %d PMCs (%d clusters)\n",
		len(tests), r.DistinctPMCs, r.ExemplarPMCs)

	// A short lease keeps the demo snappy: the abandoned job redelivers
	// after 300ms instead of the production default of 30s.
	q := snowboard.NewQueueWithOptions(snowboard.QueueOptions{
		Name:         "example",
		LeaseTimeout: 300 * time.Millisecond,
		MaxAttempts:  3,
	})
	srv, err := queue.Serve(q, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	for i, ct := range tests {
		if err := q.Push(queue.Job{ID: i, Writer: ct.Writer, Reader: ct.Reader, Hint: ct.Hint, Pair: ct.Pair}); err != nil {
			log.Fatal(err)
		}
	}

	// Fleet: four workers over TCP, each with a private simulated kernel.
	// Worker 0 abandons its first lease without acking — the preempted
	// cloud machine of §4.4.1 — and the queue redelivers that job.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := queue.Dial(srv.Addr())
			if err != nil {
				log.Fatal(err)
			}
			defer c.Close()
			env := snowboard.NewEnv(opts.Version)
			x := &snowboard.Explorer{
				Env: env, Trials: 12, Mode: snowboard.ModeSnowboard,
				Detect: detect.DefaultOptions(),
				Fsck:   func() []string { return env.K.FsckHost() },
			}
			crashed := false
			for {
				ls, err := c.Lease()
				if errors.Is(err, queue.ErrEmpty) {
					// Jobs may still be outstanding under other workers'
					// leases; only stop once everything has settled.
					st := q.Stats()
					if st.Pending == 0 && st.Leased == 0 {
						return
					}
					time.Sleep(20 * time.Millisecond)
					continue
				}
				if errors.Is(err, queue.ErrClosed) {
					return
				}
				if err != nil {
					log.Fatal(err)
				}
				if id == 0 && !crashed {
					// Simulated preemption: walk away mid-job. The lease
					// expires and the job redelivers to a healthy worker.
					crashed = true
					fmt.Printf("worker-0 crashed holding job %d (attempt %d); the lease will expire\n", ls.Job.ID, ls.Attempt)
					continue
				}
				job := ls.Job
				x.Seed = int64(job.ID)*1009 + 1
				out := x.Explore(sched.ConcurrentTest{
					Writer: job.Writer, Reader: job.Reader, Hint: job.Hint, Pair: job.Pair,
				})
				res := queue.JobResult{JobID: job.ID, Trials: out.Trials, Exercised: out.Exercised, Worker: fmt.Sprintf("worker-%d", id)}
				for _, is := range out.Issues {
					if is.BugID != 0 {
						res.BugIDs = append(res.BugIDs, is.BugID)
					}
				}
				if err := c.Report(res); err != nil {
					log.Fatal(err)
				}
				if err := c.Ack(ls.ID); err != nil && !errors.Is(err, queue.ErrUnknownLease) {
					log.Fatal(err)
				}
			}
		}(w)
	}
	wg.Wait()

	// Aggregate exactly once per job: redelivered duplicates fold away.
	st := q.Stats()
	sum := snowboard.AggregateResults(len(tests), q.Results(), q.DeadLetters())
	fmt.Printf("fleet: %d trials total, %d/%d tests exercised their channel\n", sum.Trials, sum.Exercised, len(tests))
	fmt.Printf("delivery: %d/%d reported, %d redeliveries, %d duplicate reports folded, %d dead-lettered, lost=%v\n",
		sum.Reported, sum.Expected, st.Redelivered, sum.Duplicates, len(sum.DeadJobs), sum.Lost())
	fmt.Printf("issues found across the fleet (Table 2 numbers): %v\n", sum.BugIDs)
}
