// Quickstart: run the full Snowboard pipeline end to end against the
// simulated 5.12-rc3 kernel and print what it found.
//
// The four stages of the paper's Figure 2 all run behind snowboard.Run:
// a Syzkaller-style fuzzing campaign builds the sequential corpus, each
// test is profiled from the fixed boot snapshot, Algorithm 1 identifies
// PMCs, the S-INS-PAIR strategy clusters them, and Algorithm 2 explores
// one exemplar per cluster, uncommon clusters first.
package main

import (
	"fmt"
	"log"
	"sort"

	"snowboard"
)

func main() {
	opts := snowboard.DefaultOptions()
	opts.Version = snowboard.V5_12_RC3
	opts.FuzzBudget = 600
	opts.CorpusCap = 150
	opts.TestBudget = 80
	opts.Trials = 16

	report, err := snowboard.Run(opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Snowboard on simulated Linux %s (%s strategy)\n\n", report.Version, report.Method)
	fmt.Printf("sequential corpus:   %d tests (from %d fuzz executions)\n", report.CorpusSize, report.FuzzExecutions)
	fmt.Printf("profiled accesses:   %d shared memory accesses\n", report.ProfiledAccesses)
	fmt.Printf("identified PMCs:     %d distinct / %d combinations\n", report.DistinctPMCs, report.PMCCombinations)
	fmt.Printf("clusters:            %d exemplar PMCs\n", report.ExemplarPMCs)
	fmt.Printf("concurrent tests:    %d executed, %d trials total\n", report.TestedTests, report.TrialsRun)
	fmt.Printf("PMC accuracy:        %.0f%% of hinted tests exercised their channel\n\n", 100*report.Accuracy())

	ids := report.BugIDs()
	sort.Ints(ids)
	if len(ids) == 0 {
		fmt.Println("no issues found with this budget; raise -tests/-trials")
		return
	}
	fmt.Println("issues found (numbers match the paper's Table 2):")
	for _, id := range ids {
		rec := report.Issues[id]
		badge := "benign"
		if rec.Issue.Harmful {
			badge = "HARMFUL"
		}
		fmt.Printf("  #%-2d [%s, %s] %s\n      found after %d concurrent tests, on trial %d\n",
			id, rec.Issue.Kind, badge, rec.Issue.Desc, rec.TestIndex, rec.Trial)
	}
}
