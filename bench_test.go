package snowboard_test

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (§5) against the simulated substrate, reporting the paper's
// quantities as custom benchmark metrics. Absolute values differ from the
// paper (its substrate was real Linux under a QEMU/SKI hypervisor on a GCP
// fleet); the *shape* — which method wins, by roughly what factor — is the
// reproduction target. EXPERIMENTS.md records paper-vs-measured values.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// Individual experiments: -bench=Table3, -bench=Figure1, etc.

import (
	"fmt"
	"io"
	"testing"
	"time"

	"snowboard"
	"snowboard/internal/cluster"
	"snowboard/internal/detect"
	"snowboard/internal/kernel"
	"snowboard/internal/obs"
	"snowboard/internal/pmc"
	"snowboard/internal/sched"
	"snowboard/internal/trace"
)

// sharedAnalysis builds one corpus + profile + PMC database per (version,
// budget) and caches it across benchmarks, mirroring the paper's shared
// machine-C profiling stage.
type sharedAnalysis struct {
	pipe *snowboard.Pipeline
	rep  *snowboard.Report
}

var analysisCache = map[string]*sharedAnalysis{}

func analysisFor(b *testing.B, version snowboard.Version, fuzzN, corpusN int) *sharedAnalysis {
	b.Helper()
	key := fmt.Sprintf("%s/%d/%d", version, fuzzN, corpusN)
	if a, ok := analysisCache[key]; ok {
		return a
	}
	opts := snowboard.DefaultOptions()
	opts.Version = version
	opts.Seed = 11
	opts.FuzzBudget = fuzzN
	opts.CorpusCap = corpusN
	p := snowboard.NewPipeline(opts)
	r := p.NewReport()
	p.BuildCorpus(r)
	if err := p.ProfileAll(r); err != nil {
		b.Fatal(err)
	}
	p.IdentifyPMCs(r)
	a := &sharedAnalysis{pipe: p, rep: r}
	analysisCache[key] = a
	return a
}

// identifyPair profiles two programs and returns the PMC set plus the hint
// matching the instruction-name prefixes.
func identifyPair(b *testing.B, env *snowboard.Env, writer, reader *snowboard.Prog, wpfx, rpfx string) (*snowboard.PMCSet, *snowboard.PMC) {
	b.Helper()
	var profiles []snowboard.Profile
	for i, p := range []*snowboard.Prog{writer, reader} {
		accs, df, res := env.Profile(p)
		if res.Crashed() {
			b.Fatalf("profiling crashed: %v", res.Faults)
		}
		profiles = append(profiles, snowboard.Profile{TestID: i, Accesses: accs, DFLeader: df})
	}
	set := snowboard.Identify(profiles)
	for key := range set.Entries {
		if len(wpfx) > 0 && key.Write.Ins.Name()[:min(len(wpfx), len(key.Write.Ins.Name()))] != wpfx {
			continue
		}
		if len(rpfx) > 0 && key.Read.Ins.Name()[:min(len(rpfx), len(key.Read.Ins.Name()))] != rpfx {
			continue
		}
		h := key
		return set, &h
	}
	b.Fatalf("hint PMC (%s -> %s) not identified", wpfx, rpfx)
	return nil, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// trialsToIssue explores the concurrent test and returns the 1-based trial
// on which the target issue (by Table 2 id and kind) surfaced, or cap+1.
func trialsToIssue(env *snowboard.Env, set *snowboard.PMCSet, ct snowboard.ConcurrentTest,
	mode sched.Mode, seed int64, cap int, bugID int, kind detect.IssueKind) (int, *snowboard.ExploreOutcome) {
	x := &snowboard.Explorer{
		Env: env, Trials: cap, Seed: seed, Mode: mode,
		Detect: detect.DefaultOptions(), KnownPMCs: set,
		Fsck: func() []string { return env.K.FsckHost() },
	}
	out := x.Explore(ct)
	for _, is := range out.Issues {
		if is.BugID == bugID && is.Kind == kind {
			return out.TrialOf(is) + 1, &out
		}
	}
	return cap + 1, &out
}

// --- Figure 1 / Case 2: the l2tp order violation ---

// BenchmarkFigure1L2TPBug measures interleaving trials to reproduce the
// Figure 1 null dereference with the PMC hint (paper: ~9.76 interleavings
// per bug-exposing test for Snowboard).
func BenchmarkFigure1L2TPBug(b *testing.B) {
	total := 0
	for i := 0; i < b.N; i++ {
		env := snowboard.NewEnv(snowboard.V5_12_RC3)
		writer, reader := l2tpWriter(), l2tpReader()
		set, hint := identifyPair(b, env, writer, reader,
			"l2tp_tunnel_register:list_add_rcu", "l2tp_tunnel_get:rcu_dereference_list")
		n, _ := trialsToIssue(env, set, snowboard.ConcurrentTest{Writer: writer, Reader: reader, Hint: hint},
			snowboard.ModeSnowboard, int64(i)*7919+1, 1024, 12, detect.KindPanic)
		total += n
	}
	b.ReportMetric(float64(total)/float64(b.N), "trials/expose")
}

// --- Figure 3 / Case 1: the torn MAC address ---

// BenchmarkFigure3MACRace measures trials to detect the
// eth_commit_mac_addr_change/dev_ifsioc_locked race and reports how often a
// torn (corrupted) MAC was directly witnessed.
func BenchmarkFigure3MACRace(b *testing.B) {
	totalTrials, torn := 0, 0
	for i := 0; i < b.N; i++ {
		env := snowboard.NewEnv(snowboard.V5_3_10)
		writer := P(
			sock(kernel.AFInet, kernel.SockDgram, 0),
			CR(kernel.SysIoctlNr, snowboard.ResultArg(0), snowboard.Const(kernel.SIOCSIFHWADDR), snowboard.Const(0x2)),
		)
		reader := P(
			sock(kernel.AFInet, kernel.SockDgram, 0),
			CR(kernel.SysIoctlNr, snowboard.ResultArg(0), snowboard.Const(kernel.SIOCGIFHWADDR), snowboard.Const(0)),
		)
		set, hint := identifyPair(b, env, writer, reader, "eth_commit_mac_addr_change", "dev_ifsioc_locked:memcpy")
		n, out := trialsToIssue(env, set, snowboard.ConcurrentTest{Writer: writer, Reader: reader, Hint: hint},
			snowboard.ModeSnowboard, int64(i)*13+1, 256, 9, detect.KindDataRace)
		totalTrials += n
		for _, is := range out.Issues {
			if is.BugID == 9 && len(is.Desc) >= 4 && is.Desc[:4] == "Torn" {
				torn++
			}
		}
	}
	b.ReportMetric(float64(totalTrials)/float64(b.N), "trials/expose")
	b.ReportMetric(float64(torn)/float64(b.N), "torn-witness/run")
}

// --- Figure 4 / Case 3: the rhashtable double fetch ---

// BenchmarkFigure4Rhashtable measures trials to crash the kernel through
// the one-instruction double-fetch window in rht_ptr (5.3.10 build).
func BenchmarkFigure4Rhashtable(b *testing.B) {
	total := 0
	for i := 0; i < b.N; i++ {
		env := snowboard.NewEnv(snowboard.V5_3_10)
		writer, reader := msgWriterProg(), msgReaderProg()
		set, hint := identifyPair(b, env, writer, reader, "rht_assign_unlock", "rht_ptr")
		n, _ := trialsToIssue(env, set, snowboard.ConcurrentTest{Writer: writer, Reader: reader, Hint: hint},
			snowboard.ModeSnowboard, int64(i)*31+1, 1024, 1, detect.KindPanic)
		total += n
	}
	b.ReportMetric(float64(total)/float64(b.N), "trials/expose")
}

// --- Table 2: the full pipeline bug hunt on both kernel versions ---

// BenchmarkTable2FullPipeline runs the whole pipeline per version and
// reports the number of distinct Table 2 issues found within the budget.
func BenchmarkTable2FullPipeline(b *testing.B) {
	for _, version := range []snowboard.Version{snowboard.V5_3_10, snowboard.V5_12_RC3} {
		b.Run(string(version), func(b *testing.B) {
			found := 0
			for i := 0; i < b.N; i++ {
				opts := snowboard.DefaultOptions()
				opts.Version = version
				opts.Seed = int64(i) + 3
				opts.FuzzBudget = 600
				opts.CorpusCap = 150
				opts.TestBudget = 80
				opts.Trials = 16
				r, err := snowboard.Run(opts)
				if err != nil {
					b.Fatal(err)
				}
				found += len(r.BugIDs())
			}
			b.ReportMetric(float64(found)/float64(b.N), "issues/run")
		})
	}
}

// --- Table 3: per-method comparison on a shared corpus ---

// BenchmarkTable3StrategyComparison runs every generation method on the
// same profiled corpus with the same execution budget, reporting exemplar
// counts and issue yields — the Table 3 reproduction.
func BenchmarkTable3StrategyComparison(b *testing.B) {
	shared := analysisFor(b, snowboard.V5_12_RC3, 600, 150)
	for _, m := range snowboard.Methods() {
		b.Run(m.Name, func(b *testing.B) {
			issues, exemplars, tested, exercised, coverPairs := 0, 0, 0, 0, 0
			for i := 0; i < b.N; i++ {
				opts := shared.pipe.Opts
				opts.Method = m
				opts.Seed = int64(i) + 17
				opts.TestBudget = 60
				opts.Trials = 12
				p := snowboard.NewPipeline(opts)
				p.SetCorpus(shared.pipe.Corpus)
				p.SetProfiles(shared.pipe.Profiles)
				p.SetPMCs(shared.pipe.PMCs)
				r := p.NewReport()
				tests := p.GenerateTests(r, opts.TestBudget)
				p.ExecuteTests(r, tests)
				issues += len(r.BugIDs())
				exemplars = r.ExemplarPMCs
				tested += r.TestedTests
				exercised += r.Exercised
				coverPairs += r.CoverPairs
			}
			b.ReportMetric(float64(issues)/float64(b.N), "issues/run")
			b.ReportMetric(float64(exemplars), "exemplar-clusters")
			b.ReportMetric(float64(exercised)/float64(b.N), "exercised/run")
			// §5.3.1: "prioritizing the test of uncommon instruction-pair
			// clusters leads to higher behavior coverage per test" — the
			// Krace-style alias-pair coverage per run.
			b.ReportMetric(float64(coverPairs)/float64(b.N), "cover-pairs/run")
			_ = tested
		})
	}
}

// --- §5.3.2: PMC identification accuracy ---

// BenchmarkPMCPrecision measures the fraction of PMC-hinted concurrent
// tests whose predicted channel actually occurred in at least one trial
// (paper: 36% precision over prioritized PMC tests, 22% over all tests).
func BenchmarkPMCPrecision(b *testing.B) {
	shared := analysisFor(b, snowboard.V5_12_RC3, 600, 150)
	exercised, tested := 0, 0
	for i := 0; i < b.N; i++ {
		opts := shared.pipe.Opts
		opts.Seed = int64(i) + 29
		opts.TestBudget = 80
		opts.Trials = 12
		p := snowboard.NewPipeline(opts)
		p.SetCorpus(shared.pipe.Corpus)
		p.SetProfiles(shared.pipe.Profiles)
		p.SetPMCs(shared.pipe.PMCs)
		r := p.NewReport()
		tests := p.GenerateTests(r, opts.TestBudget)
		p.ExecuteTests(r, tests)
		exercised += r.Exercised
		tested += r.TestedPMCs
	}
	b.ReportMetric(100*float64(exercised)/float64(tested), "%exercised")
}

// --- §5.4: stage performance ---

// BenchmarkProfilingThroughput measures sequential tests profiled per
// second (the paper profiled 129,876 tests in ~40 hours ≈ 0.9 tests/s on
// its hypervisor; the simulator is far faster, so only the metric's
// existence and stability are comparable).
func BenchmarkProfilingThroughput(b *testing.B) {
	shared := analysisFor(b, snowboard.V5_12_RC3, 600, 150)
	env := shared.pipe.Env
	progs := shared.pipe.Corpus.Progs
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prog := progs[i%len(progs)]
		if _, _, res := env.Profile(prog); res.Crashed() {
			b.Fatalf("profiling crashed: %v", res.Faults)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "tests/s")
}

// BenchmarkPMCIdentification measures Algorithm 1 runtime over the shared
// corpus profile (paper: ~80 machine-hours dominated by S-FULL sorting).
func BenchmarkPMCIdentification(b *testing.B) {
	shared := analysisFor(b, snowboard.V5_12_RC3, 600, 150)
	b.ResetTimer()
	var set *snowboard.PMCSet
	for i := 0; i < b.N; i++ {
		set = pmc.Identify(shared.pipe.Profiles, pmc.DefaultOptions())
	}
	b.ReportMetric(float64(set.Len()), "pmcs")
	b.ReportMetric(float64(set.TotalCombinations), "combinations")
}

// BenchmarkTestGenerationThroughput measures concurrent-test generation
// rate (paper: >1000 tests/s).
func BenchmarkTestGenerationThroughput(b *testing.B) {
	shared := analysisFor(b, snowboard.V5_12_RC3, 600, 150)
	opts := shared.pipe.Opts
	opts.TestBudget = 1 << 30
	p := snowboard.NewPipeline(opts)
	p.SetCorpus(shared.pipe.Corpus)
	p.SetProfiles(shared.pipe.Profiles)
	p.SetPMCs(shared.pipe.PMCs)
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		r := p.NewReport()
		tests := p.GenerateTests(r, 1<<30)
		n += len(tests)
	}
	b.ReportMetric(float64(n)/b.Elapsed().Seconds(), "tests/s")
}

// BenchmarkExecThroughputSnowboardVsSKI compares concurrent-test execution
// throughput under the two schedulers (paper: 193.8 vs 170.3 exec/min —
// Snowboard slightly faster because SKI performs more vCPU switches).
func BenchmarkExecThroughputSnowboardVsSKI(b *testing.B) {
	for _, mode := range []sched.Mode{snowboard.ModeSnowboard, snowboard.ModeSKI} {
		b.Run(mode.String(), func(b *testing.B) {
			env := snowboard.NewEnv(snowboard.V5_12_RC3)
			writer, reader := l2tpWriter(), l2tpReader()
			set, hint := identifyPair(b, env, writer, reader,
				"l2tp_tunnel_register:list_add_rcu", "l2tp_tunnel_get:rcu_dereference_list")
			x := &snowboard.Explorer{
				Env: env, Trials: 1, Mode: mode,
				Detect:    detect.Options{Console: true}, // console-only: measures execution, not analysis
				KnownPMCs: set,
			}
			switches := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				x.Seed = int64(i) + 1
				out := x.Explore(snowboard.ConcurrentTest{Writer: writer, Reader: reader, Hint: hint})
				switches += out.Switches
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()*60, "exec/min")
			b.ReportMetric(float64(switches)/float64(b.N), "switches/exec")
		})
	}
}

// BenchmarkInterleavingsToExpose compares mean interleavings needed to
// expose the Figure 1 bug across schedulers (paper: 9.76 for Snowboard vs
// 826.29 for SKI, an 84x gap).
func BenchmarkInterleavingsToExpose(b *testing.B) {
	for _, mode := range []sched.Mode{snowboard.ModeSnowboard, snowboard.ModeSKI, snowboard.ModeRandomWalk} {
		b.Run(mode.String(), func(b *testing.B) {
			total := 0
			for i := 0; i < b.N; i++ {
				env := snowboard.NewEnv(snowboard.V5_12_RC3)
				writer, reader := l2tpWriter(), l2tpReader()
				set, hint := identifyPair(b, env, writer, reader,
					"l2tp_tunnel_register:list_add_rcu", "l2tp_tunnel_get:rcu_dereference_list")
				n, _ := trialsToIssue(env, set, snowboard.ConcurrentTest{Writer: writer, Reader: reader, Hint: hint},
					mode, int64(i)*7919+1, 4096, 12, detect.KindPanic)
				total += n
			}
			b.ReportMetric(float64(total)/float64(b.N), "trials/expose")
		})
	}
}

// --- Parallel sharded execution (internal/par) ---

// BenchmarkPipelineParallel measures the sharded profiling stage — the
// pipeline's dominant per-unit cost — at several worker counts over the
// same corpus. Results are identical at every width (the determinism
// golden test checks that); this benchmark records what the width buys in
// wall-clock. BENCH_par.json and the EXPERIMENTS.md speedup table come
// from this benchmark; speedup tracks the host's core count, so a
// single-vCPU host times all widths alike.
func BenchmarkPipelineParallel(b *testing.B) {
	shared := analysisFor(b, snowboard.V5_12_RC3, 600, 150)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opts := shared.pipe.Opts
			opts.Workers = workers
			p := snowboard.NewPipeline(opts)
			p.SetCorpus(shared.pipe.Corpus)
			// The first call boots the per-worker environment clones;
			// keep that one-time cost out of the timed region.
			if err := p.ProfileAll(p.NewReport()); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := p.ProfileAll(p.NewReport()); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(shared.pipe.Corpus.Len())*float64(b.N)/b.Elapsed().Seconds(), "tests/s")
		})
	}
}

// --- Ablations (DESIGN.md §"Key design decisions") ---

// BenchmarkAblationValueFilter measures how many PMCs Algorithm 1 emits
// with and without the projected-value inequality test (lines 9–11).
func BenchmarkAblationValueFilter(b *testing.B) {
	shared := analysisFor(b, snowboard.V5_12_RC3, 600, 150)
	for _, tc := range []struct {
		name string
		opt  pmc.Options
	}{
		{"with-value-filter", pmc.DefaultOptions()},
		{"without-value-filter", pmc.Options{AllowSelfPairs: true, SkipValueFilter: true}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var set *snowboard.PMCSet
			for i := 0; i < b.N; i++ {
				set = pmc.Identify(shared.pipe.Profiles, tc.opt)
			}
			b.ReportMetric(float64(set.Len()), "pmcs")
			b.ReportMetric(float64(set.TotalCombinations), "combinations")
		})
	}
}

// BenchmarkAblationStackFilter measures profile size with and without the
// ESP-based stack-range pruning (§4.1.1).
func BenchmarkAblationStackFilter(b *testing.B) {
	for _, keepStack := range []bool{false, true} {
		name := "stack-filtered"
		if keepStack {
			name = "stack-kept"
		}
		b.Run(name, func(b *testing.B) {
			env := snowboard.NewEnv(snowboard.V5_12_RC3)
			prog := l2tpReader()
			kept := 0
			for i := 0; i < b.N; i++ {
				var tr trace.Trace
				res := env.RunSequential(prog, &tr)
				if res.Crashed() {
					b.Fatalf("crashed: %v", res.Faults)
				}
				env.M.SetTrace(nil)
				f := trace.Filter{Thread: 0, KeepStack: keepStack}
				fb := f.Apply(&tr)
				kept += fb.Len()
			}
			b.ReportMetric(float64(kept)/float64(b.N), "accesses/profile")
		})
	}
}

// BenchmarkAblationIncidentalPMCs compares trials-to-expose with and
// without incidental PMC adoption (Algorithm 2 lines 26–27).
func BenchmarkAblationIncidentalPMCs(b *testing.B) {
	for _, disable := range []bool{false, true} {
		name := "incidental-on"
		if disable {
			name = "incidental-off"
		}
		b.Run(name, func(b *testing.B) {
			total := 0
			for i := 0; i < b.N; i++ {
				env := snowboard.NewEnv(snowboard.V5_12_RC3)
				writer, reader := l2tpWriter(), l2tpReader()
				set, hint := identifyPair(b, env, writer, reader,
					"l2tp_tunnel_register:list_add_rcu", "l2tp_tunnel_get:rcu_dereference_list")
				x := &snowboard.Explorer{
					Env: env, Trials: 1024, Seed: int64(i)*101 + 7,
					Mode: snowboard.ModeSnowboard, Detect: detect.DefaultOptions(),
					KnownPMCs: set, DisableIncidental: disable,
				}
				out := x.Explore(snowboard.ConcurrentTest{Writer: writer, Reader: reader, Hint: hint})
				n := 1025
				for _, is := range out.Issues {
					if is.BugID == 12 && is.Kind == detect.KindPanic {
						n = out.TrialOf(is) + 1
					}
				}
				total += n
			}
			b.ReportMetric(float64(total)/float64(b.N), "trials/expose")
		})
	}
}

// BenchmarkObsOverhead runs the same small full-pipeline campaign with the
// observability layer enabled and disabled and reports the relative cost.
// The layer's budget is ≤5% of end-to-end runtime: counters are single
// atomic adds and stage spans amortize over whole stages.
func BenchmarkObsOverhead(b *testing.B) {
	defer obs.SetEnabled(true)
	runOnce := func(seed int64) {
		opts := snowboard.DefaultOptions()
		opts.Seed = seed
		opts.FuzzBudget = 400
		opts.CorpusCap = 100
		opts.TestBudget = 40
		opts.Trials = 8
		if _, err := snowboard.Run(opts); err != nil {
			b.Fatal(err)
		}
	}
	runOnce(1) // warm up code paths before timing either arm
	var onNS, offNS int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		obs.SetEnabled(true)
		t0 := time.Now()
		runOnce(int64(i) + 5)
		onNS += int64(time.Since(t0))

		obs.SetEnabled(false)
		t0 = time.Now()
		runOnce(int64(i) + 5)
		offNS += int64(time.Since(t0))
	}
	obs.SetEnabled(true)
	if offNS > 0 {
		b.ReportMetric(100*(float64(onNS)-float64(offNS))/float64(offNS), "overhead-%")
	}
	b.ReportMetric(float64(onNS)/float64(b.N)/1e6, "ms/run-enabled")
	b.ReportMetric(float64(offNS)/float64(b.N)/1e6, "ms/run-disabled")
}

// BenchmarkEventLogOverhead isolates the flight recorder's cost at both
// granularities: the raw per-emit price of the lock-free ring (with and
// without a JSONL sink attached), and the end-to-end campaign delta with
// the recorder live versus the whole obs layer off. The budget for the
// campaign arm is ≤5% (BENCH_obs2.json); the emit arm is the per-event
// price the budget buys.
func BenchmarkEventLogOverhead(b *testing.B) {
	b.Run("emit", func(b *testing.B) {
		l := obs.NewEventLog(1024)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			l.EmitTrace("bench-trace", obs.EvPMCTested, obs.A("i", i), obs.A("mode", "bench"))
		}
	})
	b.Run("emit-sink", func(b *testing.B) {
		l := obs.NewEventLog(1024)
		l.SetSink(io.Discard)
		defer l.SetSink(nil)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			l.EmitTrace("bench-trace", obs.EvPMCTested, obs.A("i", i), obs.A("mode", "bench"))
		}
	})
	b.Run("campaign", func(b *testing.B) {
		defer obs.SetEnabled(true)
		runOnce := func(seed int64) {
			opts := snowboard.DefaultOptions()
			opts.Seed = seed
			opts.FuzzBudget = 400
			opts.CorpusCap = 100
			opts.TestBudget = 40
			opts.Trials = 8
			if _, err := snowboard.Run(opts); err != nil {
				b.Fatal(err)
			}
		}
		runOnce(1) // warm up code paths before timing either arm
		var onNS, offNS int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			obs.SetEnabled(true)
			t0 := time.Now()
			runOnce(int64(i) + 5)
			onNS += int64(time.Since(t0))

			obs.SetEnabled(false)
			t0 = time.Now()
			runOnce(int64(i) + 5)
			offNS += int64(time.Since(t0))
		}
		obs.SetEnabled(true)
		if offNS > 0 {
			b.ReportMetric(100*(float64(onNS)-float64(offNS))/float64(offNS), "overhead-%")
		}
		b.ReportMetric(float64(onNS)/float64(b.N)/1e6, "ms/run-enabled")
		b.ReportMetric(float64(offNS)/float64(b.N)/1e6, "ms/run-disabled")
	})
}

// BenchmarkFeedbackVsUncommonFirst is the BENCH_feedback.json ablation: the
// round-based segment-yield feedback scheduler against the one-shot
// uncommon-first scheduler on a shared analysis at a fixed execution budget.
// Under -short it drops to a smoke scale (the CI feedback job) that checks
// the loop runs, composes tests, and reports rounds — not the yield gap.
func BenchmarkFeedbackVsUncommonFirst(b *testing.B) {
	tests, trials := 400, 24
	if testing.Short() {
		tests, trials = 40, 8
	}
	shared := analysisFor(b, snowboard.V5_12_RC3, 600, 150)
	for _, feedback := range []bool{false, true} {
		name := "uncommon-first"
		if feedback {
			name = "feedback"
		}
		b.Run(name, func(b *testing.B) {
			issues, segments, composed := 0, 0, 0
			for i := 0; i < b.N; i++ {
				opts := shared.pipe.Opts
				opts.Seed = int64(i) + 3
				opts.TestBudget = tests
				opts.Trials = trials
				opts.Feedback = feedback
				p := snowboard.NewPipeline(opts)
				p.SetCorpus(shared.pipe.Corpus)
				p.SetProfiles(shared.pipe.Profiles)
				p.SetPMCs(shared.pipe.PMCs)
				r := p.NewReport()
				if feedback {
					p.RunFeedback(r, opts.TestBudget)
				} else {
					cts := p.GenerateTests(r, opts.TestBudget)
					p.ExecuteTests(r, cts)
				}
				issues += len(r.BugIDs())
				segments += r.CoverSegments
				composed += r.ComposedTests
				if feedback && r.FeedbackRounds == 0 {
					b.Fatal("feedback arm reported zero rounds")
				}
			}
			b.ReportMetric(float64(issues)/float64(b.N), "issues/run")
			b.ReportMetric(float64(segments)/float64(b.N), "segments/run")
			b.ReportMetric(float64(composed)/float64(b.N), "composed/run")
		})
	}
}

// BenchmarkAblationClusterOrder isolates the uncommon-first ordering
// contribution by comparing S-INS-PAIR against Random S-INS-PAIR on bug
// yield (the paper's "Random S-INS-PAIR" row).
func BenchmarkAblationClusterOrder(b *testing.B) {
	shared := analysisFor(b, snowboard.V5_12_RC3, 600, 150)
	for _, order := range []struct {
		name string
		ord  cluster.Order
	}{
		{"uncommon-first", cluster.UncommonFirst},
		{"random-order", cluster.RandomOrder},
	} {
		b.Run(order.name, func(b *testing.B) {
			issues := 0
			for i := 0; i < b.N; i++ {
				opts := shared.pipe.Opts
				opts.Method = snowboard.Method{Name: "S-INS-PAIR*", Kind: 0, Strategy: cluster.SInsPair, Order: order.ord}
				opts.Seed = int64(i) + 41
				opts.TestBudget = 40
				opts.Trials = 12
				p := snowboard.NewPipeline(opts)
				p.SetCorpus(shared.pipe.Corpus)
				p.SetProfiles(shared.pipe.Profiles)
				p.SetPMCs(shared.pipe.PMCs)
				r := p.NewReport()
				tests := p.GenerateTests(r, opts.TestBudget)
				p.ExecuteTests(r, tests)
				issues += len(r.BugIDs())
			}
			b.ReportMetric(float64(issues)/float64(b.N), "issues/run")
		})
	}
}
