package snowboard_test

// Benchmarks for the checkpoint & resume layer: a cold run executes all
// four stages, a warm run resolves every stage from the content-addressed
// store in the same -state directory. The warm/cold ratio is the payoff of
// stage memoization — the reproduction-scale analogue of reusing the
// paper's 40-machine-hour profiling pass across all eleven Table 3
// methods. Recorded numbers live in BENCH_store.json.

import (
	"testing"

	"snowboard"
)

func resumeBenchOptions() snowboard.Options {
	opts := snowboard.DefaultOptions()
	opts.Seed = 11
	opts.FuzzBudget = 200
	opts.CorpusCap = 60
	opts.TestBudget = 20
	opts.Trials = 8
	return opts
}

func BenchmarkResumeWarmVsCold(b *testing.B) {
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			opts := resumeBenchOptions()
			opts.StateDir = b.TempDir() // fresh store: every stage executes
			if _, err := snowboard.Run(opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		opts := resumeBenchOptions()
		opts.StateDir = b.TempDir()
		if _, err := snowboard.Run(opts); err != nil { // prime the store
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := snowboard.Run(opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}
