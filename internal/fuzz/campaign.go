package fuzz

import (
	"snowboard/internal/corpus"
	"snowboard/internal/exec"
	"snowboard/internal/obs"
	"snowboard/internal/trace"
)

// Campaign metrics (process-wide registry, resolved once).
var (
	mExecs    = obs.C(obs.MFuzzExecs)
	mCrashes  = obs.C(obs.MFuzzCrashes)
	mSelected = obs.C(obs.MFuzzSelected)
	mCorpus   = obs.G(obs.MFuzzCorpus)
	mEdges    = obs.G(obs.MFuzzEdges)
)

// CampaignResult is the outcome of a fuzzing campaign: the selected corpus
// plus the statistics Snowboard reports.
type CampaignResult struct {
	Corpus    *corpus.Corpus
	Executed  int // programs executed (including rejected duplicates)
	Selected  int // programs kept for new coverage
	Crashes   int // sequential executions that crashed the kernel (rare; discarded)
	EdgeCount int
}

// Campaign runs a coverage-guided fuzzing campaign of budget executions on
// env, seeded deterministically, and returns the selected corpus. It
// mirrors the paper's setup: the generator produces a large redundant
// stream; only tests contributing new edge coverage are kept (§4.1.1).
func Campaign(env *exec.Env, seed int64, budget, maxKeep int) CampaignResult {
	g := NewGenerator(seed)
	cov := NewCoverage()
	out := CampaignResult{Corpus: corpus.NewCorpus()}
	var tr trace.Trace

	for out.Executed < budget {
		var p *corpus.Prog
		// Mostly mutate existing corpus entries once one exists, like
		// Syzkaller; otherwise generate fresh.
		if out.Corpus.Len() > 0 && g.rng.Intn(3) != 0 {
			p = g.Mutate(out.Corpus.Progs[g.rng.Intn(out.Corpus.Len())])
		} else {
			p = g.Generate()
		}
		out.Executed++
		mExecs.Inc()
		res := env.RunSequential(p, &tr)
		env.M.SetTrace(nil)
		if res.Crashed() || res.Hung || res.Deadlock {
			// A sequential test should not crash the kernel; such programs
			// are discarded (and would be reported as sequential bugs).
			out.Crashes++
			mCrashes.Inc()
			continue
		}
		if n := cov.Merge(EdgesOf(&tr)); n > 0 {
			if out.Corpus.Add(p) {
				out.Selected++
				mSelected.Inc()
				mCorpus.Set(int64(out.Corpus.Len()))
			}
		}
		if maxKeep > 0 && out.Corpus.Len() >= maxKeep {
			break
		}
	}
	out.EdgeCount = cov.Len()
	mEdges.Set(int64(out.EdgeCount))
	return out
}
