package fuzz

import (
	"snowboard/internal/corpus"
	"snowboard/internal/cover"
	"snowboard/internal/exec"
	"snowboard/internal/obs"
	"snowboard/internal/par"
	"snowboard/internal/trace"
)

// Campaign metrics (process-wide registry, resolved once).
var (
	mExecs    = obs.C(obs.MFuzzExecs)
	mCrashes  = obs.C(obs.MFuzzCrashes)
	mSelected = obs.C(obs.MFuzzSelected)
	mCorpus   = obs.G(obs.MFuzzCorpus)
	mEdges    = obs.G(obs.MFuzzEdges)
)

// CampaignResult is the outcome of a fuzzing campaign: the selected corpus
// plus the statistics Snowboard reports.
type CampaignResult struct {
	Corpus    *corpus.Corpus
	Executed  int // programs executed (including rejected duplicates)
	Selected  int // programs kept for new coverage
	Crashes   int // sequential executions that crashed the kernel (rare; discarded)
	EdgeCount int
}

// Campaign runs a coverage-guided fuzzing campaign of budget executions on
// env, seeded deterministically, and returns the selected corpus. It
// mirrors the paper's setup: the generator produces a large redundant
// stream; only tests contributing new edge coverage are kept (§4.1.1).
func Campaign(env *exec.Env, seed int64, budget, maxKeep int) CampaignResult {
	return CampaignSharded([]*exec.Env{env}, seed, budget, maxKeep)
}

// batchSize is the number of candidate programs produced per
// synchronization round of CampaignSharded. Candidates within a round are
// generated against the round-start corpus and executed in parallel; the
// coverage/selection fold between rounds stays sequential in unit order.
// The size is fixed — never derived from the worker count — so the
// candidate stream, and therefore the resulting corpus, is identical for
// any number of workers.
const batchSize = 32

// CampaignSharded is Campaign fanned out across len(envs) worker
// environments (one goroutine per env). Each candidate program derives its
// generator from par.UnitSeed(seed, StageFuzz, unit), where unit is the
// candidate's global index in the campaign — not a per-worker counter — so
// results are bit-identical to CampaignSharded with a single env.
func CampaignSharded(envs []*exec.Env, seed int64, budget, maxKeep int) CampaignResult {
	return CampaignShardedFunc(envs, seed, budget, maxKeep, nil)
}

// RoundFunc observes one synchronization round of a sharded campaign:
// round is the 0-based round index and admitted lists the programs the
// round added to the corpus, in admission order. Because admission is
// in-order, the concatenation of all admitted slices IS the final corpus —
// which is what lets a streaming consumer (core.StreamCampaign) profile
// and identify each round's programs while the next round fuzzes, and
// still end up with the exact corpus a staged run builds.
//
// The callback runs on the coordinating goroutine between rounds; it must
// not mutate the campaign's corpus.
type RoundFunc func(round int, admitted []*corpus.Prog)

// CampaignShardedFunc is CampaignSharded with a per-round observer
// callback (nil behaves exactly like CampaignSharded). fn is invoked after
// every round's selection fold — including the final, possibly truncated
// round when the corpus cap fills mid-fold — so it sees every admitted
// program exactly once.
func CampaignShardedFunc(envs []*exec.Env, seed int64, budget, maxKeep int, fn RoundFunc) CampaignResult {
	cov := cover.NewEdges()
	out := CampaignResult{Corpus: corpus.NewCorpus()}
	traces := make([]trace.Trace, len(envs))

	type unit struct {
		prog    *corpus.Prog
		edges   *cover.Edges
		crashed bool
	}
	round := 0
	for out.Executed < budget {
		n := budget - out.Executed
		if n > batchSize {
			n = batchSize
		}
		// Mutation picks reference the round-start corpus, which every
		// worker sees identically.
		snapshot := append([]*corpus.Prog(nil), out.Corpus.Progs...)
		base := out.Executed
		units := par.Map(len(envs), n, func(w, i int) unit {
			g := NewGenerator(par.UnitSeed(seed, par.StageFuzz, base+i))
			var p *corpus.Prog
			// Mostly mutate existing corpus entries once one exists, like
			// Syzkaller; otherwise generate fresh.
			if len(snapshot) > 0 && g.rng.Intn(3) != 0 {
				p = g.Mutate(snapshot[g.rng.Intn(len(snapshot))])
			} else {
				p = g.Generate()
			}
			env, tr := envs[w], &traces[w]
			res := env.RunSequential(p, tr)
			env.M.SetTrace(nil)
			if res.Crashed() || res.Hung || res.Deadlock {
				// A sequential test should not crash the kernel; such
				// programs are discarded (and would be reported as
				// sequential bugs).
				return unit{prog: p, crashed: true}
			}
			e := cover.NewEdges()
			e.AddTrace(tr)
			return unit{prog: p, edges: e}
		})
		full := false
		var admitted []*corpus.Prog
		for _, u := range units {
			out.Executed++
			mExecs.Inc()
			if u.crashed {
				out.Crashes++
				mCrashes.Inc()
				continue
			}
			if n := cov.Merge(u.edges); n > 0 {
				if out.Corpus.Add(u.prog) {
					out.Selected++
					mSelected.Inc()
					mCorpus.Set(int64(out.Corpus.Len()))
					obs.Emit(obs.EvCoverNew, obs.A("edges", n),
						obs.A("corpus", out.Corpus.Len()))
					if fn != nil {
						admitted = append(admitted, u.prog)
					}
				}
			}
			if maxKeep > 0 && out.Corpus.Len() >= maxKeep {
				full = true
				break
			}
		}
		if fn != nil {
			fn(round, admitted)
		}
		round++
		if full {
			break
		}
	}
	out.EdgeCount = cov.Len()
	mEdges.Set(int64(out.EdgeCount))
	return out
}
