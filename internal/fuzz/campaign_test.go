package fuzz

import (
	"testing"

	"snowboard/internal/exec"
	"snowboard/internal/kernel"
)

func TestCampaignSmoke(t *testing.T) {
	env := exec.NewEnv(kernel.Config{Version: kernel.V5_12_RC3})
	res := Campaign(env, 1, 300, 0)
	t.Logf("executed=%d selected=%d crashes=%d edges=%d", res.Executed, res.Selected, res.Crashes, res.EdgeCount)
	if res.Corpus.Len() < 10 {
		t.Fatalf("corpus too small: %d", res.Corpus.Len())
	}
	if res.Crashes > 0 {
		t.Fatalf("sequential executions crashed the kernel: %d", res.Crashes)
	}
	if res.EdgeCount == 0 {
		t.Fatal("no coverage accumulated")
	}
	// A healthy campaign exercises a good spread of the syscall surface.
	if h := res.Corpus.SyscallHistogram(); len(h) < 12 {
		t.Fatalf("syscall diversity too low: %v", h)
	}
}
