// Package fuzz is the sequential test generator Snowboard consumes — the
// stand-in for Syzkaller (§4.1.1). It generates syscall programs with
// syzkaller-style resource threading (r0, r1, …), mutates corpus programs,
// and selects tests by edge coverage, exporting the coverage metric that
// Snowboard uses "to select a subset of the generated tests that provide
// high coverage but low overlap of exercised behaviors".
package fuzz

import (
	"math/rand"

	"snowboard/internal/corpus"
	"snowboard/internal/kernel"
)

// Generator produces random, structurally valid programs.
type Generator struct {
	rng      *rand.Rand
	MaxCalls int // maximum calls per generated program
}

// NewGenerator returns a deterministic generator for the seed.
func NewGenerator(seed int64) *Generator {
	return &Generator{rng: rand.New(rand.NewSource(seed)), MaxCalls: 6}
}

// retKindOf computes the descriptor kind a call produces.
func retKindOf(nr int, args []uint64) kernel.FDKind {
	spec := &kernel.Syscalls[nr]
	if spec.RetKind == nil {
		return kernel.FDNone
	}
	return spec.RetKind(args)
}

// creatorFor returns a call that produces a descriptor of one of the wanted
// kinds, with its literal arguments, or ok=false for kinds with no creator.
func (g *Generator) creatorFor(kinds []kernel.FDKind) (corpus.Call, kernel.FDKind, bool) {
	want := kinds[g.rng.Intn(len(kinds))]
	switch want {
	case kernel.FDSockTCP:
		return g.socketCall(kernel.AFInet, kernel.SockStream, 0), want, true
	case kernel.FDSockUDP:
		return g.socketCall(kernel.AFInet, kernel.SockDgram, 0), want, true
	case kernel.FDSockRaw6:
		return g.socketCall(kernel.AFInet6, kernel.SockRaw, 0), want, true
	case kernel.FDSockPacket:
		return g.socketCall(kernel.AFPacket, kernel.SockRaw, 0), want, true
	case kernel.FDSockPPP:
		return g.socketCall(kernel.AFPppox, kernel.SockDgram, kernel.PxProtoOL2TP), want, true
	case kernel.FDBlk:
		return g.openCall(0), want, true
	case kernel.FDTTY:
		return g.openCall(1), want, true
	case kernel.FDSnd:
		return g.openCall(2), want, true
	case kernel.FDFile:
		return g.openCall(3 + uint64(g.rng.Intn(4))), want, true
	}
	return corpus.Call{}, kernel.FDNone, false
}

func (g *Generator) socketCall(domain, typ, proto uint64) corpus.Call {
	return corpus.Call{Nr: kernel.SysSocketNr, Args: []corpus.Arg{
		corpus.Const(domain), corpus.Const(typ), corpus.Const(proto),
	}}
}

func (g *Generator) openCall(path uint64) corpus.Call {
	return corpus.Call{Nr: kernel.SysOpenNr, Args: []corpus.Arg{
		corpus.Const(path), corpus.Const(0),
	}}
}

// available lists the call indexes in prog producing a descriptor whose
// kind is acceptable for spec (nil spec.Res accepts any descriptor).
func available(progCalls []corpus.Call, res []kernel.FDKind) []int {
	var out []int
	for i, c := range progCalls {
		args := literalArgs(c)
		k := retKindOf(c.Nr, args)
		if k == kernel.FDNone {
			continue
		}
		if len(res) == 0 {
			out = append(out, i)
			continue
		}
		for _, want := range res {
			if k == want {
				out = append(out, i)
				break
			}
		}
	}
	return out
}

// literalArgs resolves constant argument values (resource refs become 0;
// only constant args determine descriptor kinds here).
func literalArgs(c corpus.Call) []uint64 {
	out := make([]uint64, len(c.Args))
	for i, a := range c.Args {
		if a.Kind == corpus.ConstArg {
			out[i] = a.Val
		}
	}
	return out
}

// genCall generates one call of syscall nr appended to calls, inserting
// creator calls for missing resources. Returns the extended call list.
func (g *Generator) genCall(calls []corpus.Call, nr int) []corpus.Call {
	spec := &kernel.Syscalls[nr]
	args := make([]corpus.Arg, len(spec.Args))
	for i, as := range spec.Args {
		switch as.Kind {
		case kernel.ArgConst:
			if len(as.Vals) == 0 {
				args[i] = corpus.Const(0)
			} else {
				args[i] = corpus.Const(as.Vals[g.rng.Intn(len(as.Vals))])
			}
		case kernel.ArgFD:
			avail := available(calls, as.Res)
			if len(avail) == 0 {
				creator, _, ok := g.creatorFor(orAnyFD(as.Res))
				if !ok {
					args[i] = corpus.Const(0)
					continue
				}
				calls = append(calls, creator)
				avail = []int{len(calls) - 1}
			}
			args[i] = corpus.Result(avail[g.rng.Intn(len(avail))])
		}
	}
	return append(calls, corpus.Call{Nr: nr, Args: args})
}

func orAnyFD(res []kernel.FDKind) []kernel.FDKind {
	if len(res) > 0 {
		return res
	}
	return []kernel.FDKind{
		kernel.FDSockTCP, kernel.FDSockUDP, kernel.FDSockRaw6, kernel.FDSockPacket,
		kernel.FDSockPPP, kernel.FDFile, kernel.FDBlk, kernel.FDTTY, kernel.FDSnd,
	}
}

// Generate produces a fresh random program.
func (g *Generator) Generate() *corpus.Prog {
	n := 1 + g.rng.Intn(g.MaxCalls)
	var calls []corpus.Call
	for len(calls) < n {
		nr := g.rng.Intn(kernel.NumSyscalls)
		calls = g.genCall(calls, nr)
	}
	p := &corpus.Prog{Calls: calls}
	if err := p.Validate(); err != nil {
		panic("fuzz: generated invalid program: " + err.Error())
	}
	return p
}

// resourceKindsOK verifies that every resource reference still points at a
// call producing an acceptable descriptor kind — a tweak to a creator's
// arguments (e.g. open's path) can change what it produces.
func resourceKindsOK(p *corpus.Prog) bool {
	for _, c := range p.Calls {
		spec := &kernel.Syscalls[c.Nr]
		for ai, a := range c.Args {
			if a.Kind != corpus.ResultArg {
				continue
			}
			kind := retKindOf(p.Calls[a.Ref].Nr, literalArgs(p.Calls[a.Ref]))
			if kind == kernel.FDNone {
				return false
			}
			res := spec.Args[ai].Res
			if len(res) == 0 {
				continue
			}
			ok := false
			for _, want := range res {
				if kind == want {
					ok = true
				}
			}
			if !ok {
				return false
			}
		}
	}
	return true
}

// Mutate derives a variant of p: argument tweak, call insertion, or tail
// truncation (resource references always point backwards, so dropping a
// suffix keeps programs valid). Mutations that would break resource typing
// are retried; after a few failed attempts the original is returned
// unchanged.
func (g *Generator) Mutate(p *corpus.Prog) *corpus.Prog {
	for attempt := 0; attempt < 4; attempt++ {
		q := g.mutateOnce(p)
		if resourceKindsOK(q) {
			return q
		}
	}
	return p.Clone()
}

func (g *Generator) mutateOnce(p *corpus.Prog) *corpus.Prog {
	q := p.Clone()
	switch g.rng.Intn(3) {
	case 0: // tweak one constant argument
		var idxs [][2]int
		for ci, c := range q.Calls {
			for ai, a := range c.Args {
				if a.Kind == corpus.ConstArg {
					idxs = append(idxs, [2]int{ci, ai})
				}
			}
		}
		if len(idxs) > 0 {
			pick := idxs[g.rng.Intn(len(idxs))]
			spec := &kernel.Syscalls[q.Calls[pick[0]].Nr]
			vals := spec.Args[pick[1]].Vals
			if len(vals) > 0 {
				q.Calls[pick[0]].Args[pick[1]] = corpus.Const(vals[g.rng.Intn(len(vals))])
			}
		}
	case 1: // append a call
		if len(q.Calls) < 2*g.MaxCalls {
			q.Calls = g.genCall(q.Calls, g.rng.Intn(kernel.NumSyscalls))
		}
	case 2: // truncate the tail
		if len(q.Calls) > 1 {
			q.Calls = q.Calls[:1+g.rng.Intn(len(q.Calls)-1)]
		}
	}
	if err := q.Validate(); err != nil {
		panic("fuzz: mutation produced invalid program: " + err.Error())
	}
	return q
}

// The edge-coverage accumulator the fuzz loop selects tests by lives in
// internal/cover (cover.Edges) behind the cover.Metric interface, shared
// with the concurrency metrics.
