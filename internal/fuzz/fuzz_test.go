package fuzz

import (
	"testing"

	"snowboard/internal/corpus"
	"snowboard/internal/cover"
	"snowboard/internal/exec"
	"snowboard/internal/kernel"
	"snowboard/internal/trace"
)

// TestGeneratedProgramsAlwaysValid is the generator's core property: every
// generated program passes structural validation and threads resources of
// acceptable kinds.
func TestGeneratedProgramsAlwaysValid(t *testing.T) {
	g := NewGenerator(1)
	for i := 0; i < 2000; i++ {
		p := g.Generate()
		if err := p.Validate(); err != nil {
			t.Fatalf("iteration %d: %v\n%s", i, err, p)
		}
		checkResourceKinds(t, p)
	}
}

// checkResourceKinds verifies that every ResultArg references a call whose
// descriptor kind satisfies the consuming argument's spec.
func checkResourceKinds(t *testing.T, p *corpus.Prog) {
	t.Helper()
	for ci, c := range p.Calls {
		spec := &kernel.Syscalls[c.Nr]
		for ai, a := range c.Args {
			if a.Kind != corpus.ResultArg {
				continue
			}
			as := spec.Args[ai]
			src := p.Calls[a.Ref]
			kind := retKindOf(src.Nr, literalArgs(src))
			if kind == kernel.FDNone {
				t.Fatalf("call %d arg %d references non-resource call %d (%s)",
					ci, ai, a.Ref, kernel.Syscalls[src.Nr].Name)
			}
			if len(as.Res) == 0 {
				continue
			}
			ok := false
			for _, want := range as.Res {
				if kind == want {
					ok = true
				}
			}
			if !ok {
				t.Fatalf("call %d arg %d: resource kind %v not in %v", ci, ai, kind, as.Res)
			}
		}
	}
}

func TestMutationsAlwaysValid(t *testing.T) {
	g := NewGenerator(2)
	p := g.Generate()
	for i := 0; i < 2000; i++ {
		p = g.Mutate(p)
		if err := p.Validate(); err != nil {
			t.Fatalf("mutation %d: %v\n%s", i, err, p)
		}
		checkResourceKinds(t, p)
		if len(p.Calls) == 0 {
			t.Fatal("mutation emptied the program")
		}
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	a, b := NewGenerator(7), NewGenerator(7)
	for i := 0; i < 100; i++ {
		if a.Generate().Hash() != b.Generate().Hash() {
			t.Fatalf("iteration %d: same seed diverged", i)
		}
	}
}

func TestCoverageMerge(t *testing.T) {
	i1 := trace.DefIns("fuzz_cov:a")
	i2 := trace.DefIns("fuzz_cov:b")
	var tr trace.Trace
	tr.Append(trace.Access{Ins: i1})
	tr.Append(trace.Access{Ins: i2})
	tr.Append(trace.Access{Ins: i1})

	unit := cover.NewEdges()
	if n := unit.AddTrace(&tr); n != 2 { // a->b, b->a
		t.Fatalf("edges: %d", n)
	}
	cov := cover.NewEdges()
	if n := cov.Merge(unit); n != 2 {
		t.Fatalf("first merge added %d", n)
	}
	if n := cov.Merge(unit); n != 0 {
		t.Fatalf("second merge added %d", n)
	}
	if cov.Len() != 2 {
		t.Fatalf("coverage size %d", cov.Len())
	}
}

func TestCampaignDeterministic(t *testing.T) {
	run := func() []string {
		env := exec.NewEnv(kernel.Config{Version: kernel.V5_12_RC3})
		res := Campaign(env, 42, 150, 0)
		hashes := make([]string, 0, res.Corpus.Len())
		for _, p := range res.Corpus.Progs {
			hashes = append(hashes, p.Hash())
		}
		return hashes
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("corpus sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("corpus diverged at %d", i)
		}
	}
}

func TestCampaignRespectsKeepCap(t *testing.T) {
	env := exec.NewEnv(kernel.Config{Version: kernel.V5_12_RC3})
	res := Campaign(env, 3, 10000, 25)
	if res.Corpus.Len() != 25 {
		t.Fatalf("cap ignored: %d", res.Corpus.Len())
	}
	if res.Executed >= 10000 {
		t.Fatal("campaign did not stop at the cap")
	}
}
