package sched

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"snowboard/internal/corpus"
	"snowboard/internal/kernel"
	"snowboard/internal/pmc"
)

// BundleFormat versions the on-disk repro-bundle layout. Bump it whenever
// the JSON shape or replay semantics change; LoadBundle reports bundles
// written under a different version as stale, never as corrupt.
const BundleFormat = 1

// LoadBundle failure classes, errors.Is-matchable so cmd/sbrepro can map
// them to distinct diagnostics and exit codes.
var (
	// ErrBundleStale marks a well-formed bundle written for a different
	// format version; re-generate it with this binary.
	ErrBundleStale = errors.New("sched: bundle format version mismatch")
	// ErrBundleCorrupt marks bytes that cannot be decoded or validated as
	// a bundle at all.
	ErrBundleCorrupt = errors.New("sched: corrupt bundle")
)

// ReproBundle is everything needed to re-trigger an exposed bug in a fresh
// process: the kernel version, the two sequential tests, the PMC hint, and
// the recorded trial state. Bundles are what cmd/snowboard writes next to
// a finding and cmd/sbrepro replays.
type ReproBundle struct {
	Format  int            `json:"format"` // bundle layout version (BundleFormat)
	Version kernel.Version `json:"version"`
	Writer  *corpus.Prog   `json:"writer"`
	Reader  *corpus.Prog   `json:"reader"`
	Hint    *pmc.PMC       `json:"hint,omitempty"`
	State   *ReproState    `json:"state"`
	Finding string         `json:"finding,omitempty"`
	BugID   int            `json:"bug_id,omitempty"`
}

// Validate checks the bundle's structure.
func (b *ReproBundle) Validate() error {
	if b.Writer == nil || b.Reader == nil {
		return fmt.Errorf("sched: bundle missing programs")
	}
	if err := b.Writer.Validate(); err != nil {
		return err
	}
	if err := b.Reader.Validate(); err != nil {
		return err
	}
	if b.State == nil {
		return fmt.Errorf("sched: bundle missing repro state")
	}
	return nil
}

// SaveBundle writes the bundle as JSON to path, stamping the current
// format version when the caller left it zero.
func SaveBundle(path string, b *ReproBundle) error {
	if b.Format == 0 {
		b.Format = BundleFormat
	}
	if err := b.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadBundle reads and validates a bundle from path, distinguishing the
// three failure classes: filesystem errors pass through untouched, a
// readable JSON object with the wrong (or absent, i.e. pre-versioning)
// format is ErrBundleStale, and undecodable or structurally invalid bytes
// are ErrBundleCorrupt.
func LoadBundle(path string) (*ReproBundle, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var probe struct {
		Format *int `json:"format"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrBundleCorrupt, path, err)
	}
	if probe.Format == nil {
		return nil, fmt.Errorf("%w: %s has no format field (written before format %d)", ErrBundleStale, path, BundleFormat)
	}
	if *probe.Format != BundleFormat {
		return nil, fmt.Errorf("%w: %s is format %d, this binary reads %d", ErrBundleStale, path, *probe.Format, BundleFormat)
	}
	var b ReproBundle
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrBundleCorrupt, path, err)
	}
	if err := b.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrBundleCorrupt, path, err)
	}
	return &b, nil
}
