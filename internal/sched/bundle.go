package sched

import (
	"encoding/json"
	"fmt"
	"os"

	"snowboard/internal/corpus"
	"snowboard/internal/kernel"
	"snowboard/internal/pmc"
)

// ReproBundle is everything needed to re-trigger an exposed bug in a fresh
// process: the kernel version, the two sequential tests, the PMC hint, and
// the recorded trial state. Bundles are what cmd/snowboard writes next to
// a finding and cmd/sbrepro replays.
type ReproBundle struct {
	Version kernel.Version `json:"version"`
	Writer  *corpus.Prog   `json:"writer"`
	Reader  *corpus.Prog   `json:"reader"`
	Hint    *pmc.PMC       `json:"hint,omitempty"`
	State   *ReproState    `json:"state"`
	Finding string         `json:"finding,omitempty"`
	BugID   int            `json:"bug_id,omitempty"`
}

// Validate checks the bundle's structure.
func (b *ReproBundle) Validate() error {
	if b.Writer == nil || b.Reader == nil {
		return fmt.Errorf("sched: bundle missing programs")
	}
	if err := b.Writer.Validate(); err != nil {
		return err
	}
	if err := b.Reader.Validate(); err != nil {
		return err
	}
	if b.State == nil {
		return fmt.Errorf("sched: bundle missing repro state")
	}
	return nil
}

// SaveBundle writes the bundle as JSON to path.
func SaveBundle(path string, b *ReproBundle) error {
	if err := b.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadBundle reads and validates a bundle from path.
func LoadBundle(path string) (*ReproBundle, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b ReproBundle
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("sched: bundle: %w", err)
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return &b, nil
}
