package sched

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"snowboard/internal/detect"
	"snowboard/internal/exec"
	"snowboard/internal/kernel"
	"snowboard/internal/pmc"
	"snowboard/internal/trace"
)

// TestMutateFlipsNearSwitches pins the mutation neighborhood: every derived
// flip is either inherited from the base set or lands within ±2 access
// events of one of the seed trial's recorded preemptions, and the result is
// sorted and duplicate-free.
func TestMutateFlipsNearSwitches(t *testing.T) {
	base := []int{50}
	switches := []int{10, 40}
	for seed := int64(0); seed < 64; seed++ {
		rng := rand.New(rand.NewSource(seed))
		out := mutateFlips(rng, base, switches)
		if !sort.IntsAreSorted(out) {
			t.Fatalf("seed %d: unsorted flips %v", seed, out)
		}
		seen := map[int]bool{}
		for _, f := range out {
			if seen[f] {
				t.Fatalf("seed %d: duplicate flip %d in %v", seed, f, out)
			}
			seen[f] = true
			if f == 50 {
				continue // inherited from base
			}
			near := false
			for _, s := range switches {
				if f >= s-2 && f <= s+2 {
					near = true
				}
			}
			if !near {
				t.Fatalf("seed %d: flip %d outside ±2 of any switch in %v", seed, f, out)
			}
		}
	}
}

// TestMutateFlipsTogglesXOR checks the XOR semantics: mutating onto an
// already-set flip removes it, so a second mutation can undo a harmful one.
func TestMutateFlipsTogglesXOR(t *testing.T) {
	// With switches = {10} and offsets in [8,12], a base flip at 10 is
	// removed whenever the draw lands exactly on it.
	removed := false
	for seed := int64(0); seed < 256 && !removed; seed++ {
		rng := rand.New(rand.NewSource(seed))
		out := mutateFlips(rng, []int{10}, []int{10})
		hit := false
		for _, f := range out {
			if f == 10 {
				hit = true
			}
		}
		removed = !hit
	}
	if !removed {
		t.Fatal("no seed in 256 ever toggled the base flip off — XOR semantics broken")
	}
}

// TestReproStateFlipsRoundTrip checks that Flips survive the JSON encoding
// a Report's repro records go through, and that policyFromState rebuilds
// the same FlipAt set.
func TestReproStateFlipsRoundTrip(t *testing.T) {
	st := &ReproState{Seed: 42, Trial: 3, Flips: []int{2, 7, 19}}
	blob, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var back ReproState
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st.Flips, back.Flips) {
		t.Fatalf("flips changed across JSON: %v vs %v", st.Flips, back.Flips)
	}
	policy := policyFromState(&back)
	if len(policy.FlipAt) != len(st.Flips) {
		t.Fatalf("FlipAt has %d entries, want %d", len(policy.FlipAt), len(st.Flips))
	}
	for _, f := range st.Flips {
		if !policy.FlipAt[f] {
			t.Fatalf("flip %d not rebuilt", f)
		}
	}
}

// TestReplayMutatedScheduleDeterministic replays a flip-carrying ReproState
// twice and requires byte-identical traces — a mutated trial is a pure
// function of its state, exactly like a recorded one.
func TestReplayMutatedScheduleDeterministic(t *testing.T) {
	env := exec.NewEnv(kernel.Config{Version: kernel.V5_12_RC3})
	set, hint := identifyL2TP(t, env)
	_ = set
	ct := ConcurrentTest{Writer: l2tpWriterProg(), Reader: l2tpReaderProg(), Hint: &hint}
	st := &ReproState{Seed: 42, PMCs: []pmc.PMC{hint}, Flips: []int{2, 7}}
	var tr1, tr2 trace.Trace
	Replay(env, ct, st, &tr1)
	Replay(env, ct, st, &tr2)
	env.M.SetTrace(nil)
	if tr1.Len() == 0 || tr1.Len() != tr2.Len() {
		t.Fatalf("mutated replay traces: %d vs %d accesses", tr1.Len(), tr2.Len())
	}
	for i := 0; i < tr1.Len(); i++ {
		a, b := tr1.At(i), tr2.At(i)
		if a.Ins != b.Ins || a.Addr != b.Addr || a.Val != b.Val || a.Thread != b.Thread {
			t.Fatalf("mutated replay diverged at access %d", i)
		}
	}
}

// TestFlipsChangeSchedule checks that FlipAt actually inverts scheduling
// decisions: the same trial with and without flips must interleave
// differently.
func TestFlipsChangeSchedule(t *testing.T) {
	env := exec.NewEnv(kernel.Config{Version: kernel.V5_12_RC3})
	_, hint := identifyL2TP(t, env)
	ct := ConcurrentTest{Writer: l2tpWriterProg(), Reader: l2tpReaderProg(), Hint: &hint}
	run := func(flips []int) []int {
		st := &ReproState{Seed: 42, PMCs: []pmc.PMC{hint}, Flips: flips}
		var tr trace.Trace
		Replay(env, ct, st, &tr)
		env.M.SetTrace(nil)
		threads := make([]int, tr.Len())
		for i := 0; i < tr.Len(); i++ {
			threads[i] = tr.At(i).Thread
		}
		return threads
	}
	plain := run(nil)
	// Flip a decision early in the trial; at least one flip index inside
	// the trace must change the thread interleaving.
	changed := false
	for _, at := range []int{0, 1, 2, 3, 5, 8} {
		if !reflect.DeepEqual(plain, run([]int{at})) {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("no single flip changed the interleaving — FlipAt has no effect")
	}
}

// TestMutatedTrialsStayReplayable drives the explorer with mutation on and
// checks a crash found on a mutated trial still replays to the same crash.
func TestMutatedTrialsStayReplayable(t *testing.T) {
	env := exec.NewEnv(kernel.Config{Version: kernel.V5_12_RC3})
	set, hint := identifyL2TP(t, env)
	x := &Explorer{
		Env: env, Trials: 512, Seed: 1, Mode: ModeSnowboard,
		Detect: detect.DefaultOptions(), KnownPMCs: set,
		TrackSegments: true, MutateSchedules: true,
	}
	out := x.Explore(ConcurrentTest{Writer: l2tpWriterProg(), Reader: l2tpReaderProg(), Hint: &hint})
	if out.Repro == nil {
		t.Skip("no crash within budget")
	}
	var tr trace.Trace
	res := Replay(env, ConcurrentTest{Writer: l2tpWriterProg(), Reader: l2tpReaderProg(), Hint: &hint}, out.Repro, &tr)
	env.M.SetTrace(nil)
	if !res.Crashed() {
		t.Fatal("recorded trial did not replay to a crash with mutation enabled")
	}
}
