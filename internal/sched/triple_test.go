package sched

import (
	"testing"

	"snowboard/internal/detect"
	"snowboard/internal/exec"
	"snowboard/internal/kernel"
	"snowboard/internal/pmc"
)

// TestTripleL2TPTwoReaders runs the §6 amplification scenario for the
// Figure 1 bug: one writer registering the tunnel, two readers racing to
// fetch it — "attackers could trigger this bug ... by creating a massive
// number of user processes requesting the same tunnel ID". With three
// threads at least one reader should still dereference the half-built
// tunnel within the trial budget.
func TestTripleL2TPTwoReaders(t *testing.T) {
	env := exec.NewEnv(kernel.Config{Version: kernel.V5_12_RC3})
	set, hint := identifyL2TP(t, env)

	triples := pmc.IdentifyTriples(set, 0)
	var th *pmc.Triple
	for i := range triples {
		tr := &triples[i]
		if tr.Triple.Write == hint.Write {
			th = &tr.Triple
			break
		}
	}
	if th == nil {
		// Fall back to a hand-built triple: the same read site from two
		// reader instances still works since both tests share the profile.
		th = &pmc.Triple{Write: hint.Write, ReadA: hint.Read, ReadB: hint.Read}
	}

	x := &Explorer{Env: env, Trials: 512, Seed: 5, Mode: ModeSnowboard, Detect: detect.DefaultOptions(), KnownPMCs: set}
	out := x.ExploreTriple(TripleTest{
		Writer:  l2tpWriterProg(),
		ReaderA: l2tpReaderProg(),
		ReaderB: l2tpReaderProg(),
		Hint:    th,
	})
	var panicked bool
	for _, is := range out.Issues {
		if is.BugID == 12 && is.Kind == detect.KindPanic {
			panicked = true
			t.Logf("triple test crashed the kernel on trial %d", out.TrialOf(is))
		}
	}
	if !panicked {
		t.Fatalf("no panic in %d three-thread trials; issues: %+v", out.Trials, out.Issues)
	}
}

func TestIdentifyTriplesStructure(t *testing.T) {
	set := pmc.NewSet()
	w := pmc.Key{Ins: sIns1, Addr: 0x100, Size: 8, Val: 1}
	rA := pmc.Key{Ins: sIns2, Addr: 0x100, Size: 8, Val: 2}
	rB := pmc.Key{Ins: sIns2, Addr: 0x104, Size: 4, Val: 3}
	set.Add(pmc.PMC{Write: w, Read: rA}, pmc.Pair{Writer: 0, Reader: 1})
	set.Add(pmc.PMC{Write: w, Read: rB}, pmc.Pair{Writer: 0, Reader: 2})
	// A second writer test for the same PMC key.
	set.Add(pmc.PMC{Write: w, Read: rA}, pmc.Pair{Writer: 5, Reader: 1})

	triples := pmc.IdentifyTriples(set, 0)
	if len(triples) != 1 {
		t.Fatalf("triples: %d", len(triples))
	}
	te := triples[0]
	if te.Triple.Write != w {
		t.Fatalf("triple write: %+v", te.Triple)
	}
	// Only combinations sharing the writer test survive.
	if te.Count != 1 || te.Pairs[0] != (pmc.TriplePair{Writer: 0, ReaderA: 1, ReaderB: 2}) {
		t.Fatalf("pairs: %+v (count %d)", te.Pairs, te.Count)
	}
}

func TestIdentifyTriplesCap(t *testing.T) {
	set := pmc.NewSet()
	w := pmc.Key{Ins: sIns1, Addr: 0x100, Size: 8, Val: 1}
	for i := 0; i < 6; i++ {
		r := pmc.Key{Ins: sIns2, Addr: 0x200 + uint64(i)*8, Size: 8, Val: uint64(i)}
		set.Add(pmc.PMC{Write: w, Read: r}, pmc.Pair{Writer: 0, Reader: i + 1})
	}
	if got := len(pmc.IdentifyTriples(set, 3)); got != 3 {
		t.Fatalf("cap ignored: %d", got)
	}
	// 6 distinct reads -> C(6,2)=15 triples uncapped.
	if got := len(pmc.IdentifyTriples(set, 0)); got != 15 {
		t.Fatalf("uncapped triples: %d", got)
	}
}
