package sched

import (
	"snowboard/internal/cover"
	"snowboard/internal/exec"
	"snowboard/internal/par"
)

// Fleet fans concurrent-test exploration out across a pool of Explorers,
// one per worker environment. Each worker owns its Env, its own coverage
// accumulator, and its own post-mortem checker closure, so trials run
// without any cross-worker locking; outcomes come back indexed by test so
// the caller folds them in the same order a single Explorer would have
// produced.
type Fleet struct {
	workers []*Explorer
	covs    []*cover.Coverage

	// merged, when non-nil, receives every worker's coverage after an
	// ExploreAll (the template's accumulator).
	merged *cover.Coverage
}

// NewFleet builds one Explorer per env, copied from template. Template
// fields (Trials, Mode, Detect, KnownPMCs, …) are shared — KnownPMCs is
// read-only during exploration — but each worker gets its own Env, a
// fresh coverage accumulator when the template carries one, and its own
// Fsck bound to its env via fsck (nil for no post-mortem scan). The
// template's own Env and Fsck are ignored.
func NewFleet(template Explorer, envs []*exec.Env, fsck func(*exec.Env) []string) *Fleet {
	f := &Fleet{merged: template.Coverage}
	for _, env := range envs {
		x := template
		x.Env = env
		x.Coverage = nil
		x.Fsck = nil
		if template.Coverage != nil {
			x.Coverage = cover.New()
			f.covs = append(f.covs, x.Coverage)
		}
		if fsck != nil {
			env := env
			x.Fsck = func() []string { return fsck(env) }
		}
		f.workers = append(f.workers, &x)
	}
	return f
}

// ExploreAll explores tests[i] with base seed seeds[i] across the fleet
// and returns the outcomes in test order. Exploration of one test is
// entirely per-worker state, so outcomes are a pure function of
// (test, seed) and ExploreAll matches a serial loop over one Explorer —
// except Outcome.NewCoverPairs, which depends on which worker's
// accumulator saw a pair first; per-worker coverage is merged into the
// template's accumulator (in worker order) before returning.
func (f *Fleet) ExploreAll(tests []ConcurrentTest, seeds []int64) []Outcome {
	if len(seeds) != len(tests) {
		panic("sched: ExploreAll seeds/tests length mismatch")
	}
	outs := par.Map(len(f.workers), len(tests), func(w, i int) Outcome {
		x := f.workers[w]
		x.Seed = seeds[i]
		return x.Explore(tests[i])
	})
	if f.merged != nil {
		for _, cov := range f.covs {
			f.merged.Merge(cov)
		}
		// Fresh accumulators for the next batch so counts are not folded
		// in twice.
		for i, x := range f.workers {
			f.covs[i] = cover.New()
			x.Coverage = f.covs[i]
		}
	}
	return outs
}
