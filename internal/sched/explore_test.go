package sched

import (
	"testing"

	"snowboard/internal/corpus"
	"snowboard/internal/detect"
	"snowboard/internal/exec"
	"snowboard/internal/kernel"
	"snowboard/internal/pmc"
	"snowboard/internal/trace"
)

func l2tpWriterProg() *corpus.Prog {
	return &corpus.Prog{Calls: []corpus.Call{
		{Nr: kernel.SysSocketNr, Args: []corpus.Arg{corpus.Const(kernel.AFPppox), corpus.Const(kernel.SockDgram), corpus.Const(kernel.PxProtoOL2TP)}},
		{Nr: kernel.SysSocketNr, Args: []corpus.Arg{corpus.Const(kernel.AFInet), corpus.Const(kernel.SockDgram), corpus.Const(0)}},
		{Nr: kernel.SysConnectNr, Args: []corpus.Arg{corpus.Result(0), corpus.Const(1), corpus.Result(1)}},
	}}
}

func l2tpReaderProg() *corpus.Prog {
	p := l2tpWriterProg()
	p.Calls = append(p.Calls, corpus.Call{
		Nr:   kernel.SysSendmsgNr,
		Args: []corpus.Arg{corpus.Result(0), corpus.Const(512)},
	})
	return p
}

// identifyL2TP profiles the two Figure 1 tests and returns the PMC whose
// write is the RCU list publication and whose read is the tunnel lookup.
func identifyL2TP(t *testing.T, env *exec.Env) (*pmc.Set, pmc.PMC) {
	t.Helper()
	progs := []*corpus.Prog{l2tpWriterProg(), l2tpReaderProg()}
	var profiles []pmc.Profile
	for i, p := range progs {
		accs, df, res := env.Profile(p)
		if res.Crashed() {
			t.Fatalf("profiling crashed: %v", res.Faults)
		}
		profiles = append(profiles, pmc.Profile{TestID: i, Accesses: accs, DFLeader: df})
	}
	set := pmc.Identify(profiles, pmc.DefaultOptions())
	if set.Len() == 0 {
		t.Fatal("no PMCs identified")
	}
	pubIns, _ := trace.LookupIns("l2tp_tunnel_register:list_add_rcu")
	getIns, _ := trace.LookupIns("l2tp_tunnel_get:rcu_dereference_list")
	for key := range set.Entries {
		if key.Write.Ins == pubIns && key.Read.Ins == getIns {
			return set, key
		}
	}
	t.Fatalf("expected l2tp publication PMC not identified among %d PMCs", set.Len())
	return nil, pmc.PMC{}
}

func TestIdentifyFindsL2TPPublicationPMC(t *testing.T) {
	env := exec.NewEnv(kernel.Config{Version: kernel.V5_12_RC3})
	_, hint := identifyL2TP(t, env)
	if hint.Write.Val == 0 {
		t.Fatalf("publication PMC writes a null pointer? %v", hint)
	}
	if hint.Read.Val == hint.Write.Val {
		t.Fatalf("PMC read and write values must differ: %v", hint)
	}
}

func TestSnowboardExposesL2TPBug(t *testing.T) {
	env := exec.NewEnv(kernel.Config{Version: kernel.V5_12_RC3})
	set, hint := identifyL2TP(t, env)
	x := &Explorer{
		Env:       env,
		Trials:    64,
		Seed:      1,
		Mode:      ModeSnowboard,
		Detect:    detect.DefaultOptions(),
		KnownPMCs: set,
	}
	out := x.Explore(ConcurrentTest{
		Writer: l2tpWriterProg(),
		Reader: l2tpReaderProg(),
		Hint:   &hint,
		Pair:   pmc.Pair{Writer: 0, Reader: 1},
	})
	if !out.Found() {
		t.Fatalf("no issues found in %d trials", out.Trials)
	}
	var got12 bool
	for _, is := range out.Issues {
		if is.BugID == 12 && is.Kind == detect.KindPanic {
			got12 = true
		}
	}
	if !got12 {
		t.Fatalf("issue #12 not exposed; found: %+v", out.Issues)
	}
	if !out.Exercised {
		t.Fatal("PMC channel never exercised despite exposing the bug")
	}
	t.Logf("snowboard exposed #12 on trial %d (exercised on %d)", out.ExposedTrial, out.ExercisedTrial)
}

func TestL2TPBugAbsentIn5_3(t *testing.T) {
	env := exec.NewEnv(kernel.Config{Version: kernel.V5_3_10})
	// The PMC still exists in 5.3.10 (registration still publishes), but no
	// interleaving crashes, because sock is initialized before publication.
	progs := []*corpus.Prog{l2tpWriterProg(), l2tpReaderProg()}
	var profiles []pmc.Profile
	for i, p := range progs {
		accs, df, res := env.Profile(p)
		if res.Crashed() {
			t.Fatalf("profiling crashed: %v", res.Faults)
		}
		profiles = append(profiles, pmc.Profile{TestID: i, Accesses: accs, DFLeader: df})
	}
	set := pmc.Identify(profiles, pmc.DefaultOptions())
	pubIns, _ := trace.LookupIns("l2tp_tunnel_register:list_add_rcu")
	var hint *pmc.PMC
	for key := range set.Entries {
		if key.Write.Ins == pubIns {
			h := key
			hint = &h
			break
		}
	}
	if hint == nil {
		t.Fatal("publication PMC missing in 5.3.10")
	}
	x := &Explorer{Env: env, Trials: 64, Seed: 1, Mode: ModeSnowboard, Detect: detect.DefaultOptions(), KnownPMCs: set}
	out := x.Explore(ConcurrentTest{Writer: l2tpWriterProg(), Reader: l2tpReaderProg(), Hint: hint})
	for _, is := range out.Issues {
		if is.Kind == detect.KindPanic {
			t.Fatalf("unexpected panic in fixed kernel: %+v", is)
		}
	}
}

func TestSnowboardBeatsSKIOnTrialsToExpose(t *testing.T) {
	// Count trials until the actual kernel panic (issue #12), the paper's
	// "interleavings needed to expose the concurrency bug" metric (§5.4).
	trialsFor := func(mode Mode, seed int64) int {
		env := exec.NewEnv(kernel.Config{Version: kernel.V5_12_RC3})
		set, hint := identifyL2TP(t, env)
		x := &Explorer{Env: env, Trials: 512, Seed: seed, Mode: mode, Detect: detect.DefaultOptions(), KnownPMCs: set}
		out := x.Explore(ConcurrentTest{Writer: l2tpWriterProg(), Reader: l2tpReaderProg(), Hint: &hint})
		for _, is := range out.Issues {
			if is.BugID == 12 && is.Kind == detect.KindPanic {
				return out.TrialOf(is) + 1
			}
		}
		return x.Trials + 1 // never exposed
	}
	sb, ski := 0, 0
	const rounds = 5
	for seed := int64(1); seed <= rounds; seed++ {
		sb += trialsFor(ModeSnowboard, seed)
		ski += trialsFor(ModeSKI, seed)
	}
	t.Logf("mean trials to expose #12 panic: snowboard=%.1f ski=%.1f", float64(sb)/rounds, float64(ski)/rounds)
	if sb > ski {
		t.Fatalf("snowboard (%d) needed more trials than SKI (%d)", sb, ski)
	}
}
