// Package sched implements concurrent test execution (§4.4): Algorithm 2's
// PMC-guided interleaving exploration, plus the baseline schedulers it is
// compared against (SKI-style instruction-triggered yielding, PCT, and a
// random walk).
package sched

import (
	"math/rand"

	"snowboard/internal/pmc"
	"snowboard/internal/trace"
	"snowboard/internal/vm"
)

// sig identifies a memory access for matching purposes: kind, site, and
// range. Values are deliberately excluded — during a successfully exercised
// channel the read observes a *different* value than profiled, and the
// scheduler must still recognize it (see §4.4's performed_pmc_access).
type sig struct {
	kind trace.Kind
	ins  trace.Ins
	addr uint64
	size uint8
}

func sigOf(a *trace.Access) sig {
	return sig{kind: a.Kind, ins: a.Ins, addr: a.Addr, size: a.Size}
}

func sigOfInfo(a *vm.AccessInfo) sig {
	return sig{kind: a.Kind, ins: a.Ins, addr: a.Addr, size: a.Size}
}

func sigOfKey(kind trace.Kind, k pmc.Key) sig {
	return sig{kind: kind, ins: k.Ins, addr: k.Addr, size: k.Size}
}

// livenessWindow is the number of consecutive events one thread may run
// without the policy switching before is_live forces a yield, the analogue
// of SKI's low-liveness heuristics (§4.4.1).
const livenessWindow = 4096

// pickOther returns a runnable thread different from cur, or cur itself if
// it is the only runnable one.
func pickOther(m *vm.Machine, cur *vm.Thread) *vm.Thread {
	runnable := m.Runnable()
	for _, t := range runnable {
		if t != cur {
			return t
		}
	}
	if len(runnable) > 0 {
		return runnable[0]
	}
	return nil
}

func keepOrFirst(m *vm.Machine, cur *vm.Thread) *vm.Thread {
	if cur != nil && cur.State() == vm.Runnable {
		return cur
	}
	return pickOther(m, cur)
}

// SnowboardPolicy is the Algorithm 2 scheduler for one trial: it lets
// threads run freely and induces non-deterministic yields only around the
// accesses of the PMCs under test — after a PMC access is performed, and
// when the flagged predecessor of a PMC access is seen (the access is
// "coming").
type SnowboardPolicy struct {
	rng      *rand.Rand
	current  []sig              // accesses of the PMCs under test (small; linear scan)
	flags    map[sig]bool       // predecessors that announce a PMC access
	flagIns  map[trace.Ins]bool // instructions appearing in flags (fast reject)
	fired    map[sig]bool       // flags that already fired this trial
	last     [16]sig            // last access per thread
	haveLast [16]bool
	streak   int // consecutive events without a switch (liveness)

	// PerformedDenom is the denominator of the switch probability after a
	// performed PMC access (default 2 → probability 1/2).
	PerformedDenom int
	// FlagDenom is the denominator of the switch probability at a flagged
	// predecessor access (default 2).
	FlagDenom int

	// FlipAt inverts the rng-drawn switch decision at the listed access
	// indices (0-based, counting every OnAccess event). This is the
	// schedule-mutation mechanism: a trial that discovered new
	// interleaving segments is replayed with a few decisions flipped near
	// its recorded preemption points instead of exploring from scratch.
	// The liveness force still applies after the flip, so a mutated
	// schedule can never starve a thread.
	FlipAt map[int]bool
	// RecordSwitches enables SwitchEvents collection.
	RecordSwitches bool
	// SwitchEvents lists the access indices at which a preemption was
	// induced, in order (only collected when RecordSwitches is set).
	SwitchEvents []int

	accessIndex int // events seen so far (indexes FlipAt/SwitchEvents)

	// Switches counts induced preemptions, for reporting.
	Switches int
}

// NewSnowboardPolicy builds the trial scheduler. flags persists across
// trials of the same concurrent test and is updated in place.
func NewSnowboardPolicy(rng *rand.Rand, currentPMCs []pmc.PMC, flags map[sig]bool) *SnowboardPolicy {
	cur := make([]sig, 0, 2*len(currentPMCs))
	for _, p := range currentPMCs {
		cur = append(cur, sigOfKey(trace.Write, p.Write), sigOfKey(trace.Read, p.Read))
	}
	flagIns := make(map[trace.Ins]bool, len(flags))
	for f := range flags {
		flagIns[f.ins] = true
	}
	return &SnowboardPolicy{
		rng:     rng,
		current: cur,
		flags:   flags,
		flagIns: flagIns,
		fired:   make(map[sig]bool),
		// Algorithm 2 leaves random()'s bias unspecified; these defaults
		// came out of a 30-seed sweep on the Figure 1 bug (mean
		// trials-to-expose 35 vs 53 for a fair coin): switching somewhat
		// less often preserves the windows that the preceding PMC switch
		// just opened.
		PerformedDenom: 4,
		FlagDenom:      4,
	}
}

// isCurrent reports whether the access signature belongs to a PMC under
// test. The set is tiny (≤ 2·maxCurrentPMCs) so a linear scan beats a map.
func (p *SnowboardPolicy) isCurrent(s sig) bool {
	for i := range p.current {
		if p.current[i] == s {
			return true
		}
	}
	return false
}

// OnAccess implements vm.AccessSink: the whole per-access policy runs on the
// accessing thread's goroutine, and a channel yield back to the machine loop
// happens only when a preemption is actually requested (the rng-draw
// sequence is exactly the one the old Pick-per-access flow performed).
func (p *SnowboardPolicy) OnAccess(m *vm.Machine, t *vm.Thread, a vm.AccessInfo) bool {
	idx := p.accessIndex
	p.accessIndex++
	doSwitch := false
	if !a.Stack {
		// Stack accesses are excluded from memory tracking (§4.4.1);
		// they are not PMC accesses, not flags, and not predecessors.
		s := sigOfInfo(&a)
		if p.isCurrent(s) {
			// performed_pmc_access: remember the predecessor as a flag for
			// future trials and maybe reschedule now.
			if a.Thread < len(p.haveLast) && p.haveLast[a.Thread] {
				f := p.last[a.Thread]
				p.flags[f] = true
				p.flagIns[f.ins] = true
			}
			doSwitch = p.rng.Intn(p.PerformedDenom) == 0
		} else if p.flagIns[s.ins] && p.flags[s] && !p.fired[s] {
			// pmc_access_coming: the next access is likely a PMC access.
			// Each flag fires once per trial; many flags are on hot
			// allocator sites and would otherwise thrash the schedule.
			p.fired[s] = true
			doSwitch = p.rng.Intn(p.FlagDenom) == 0
		}
		if a.Thread < len(p.last) {
			p.last[a.Thread] = s
			p.haveLast[a.Thread] = true
		}
	}
	if p.FlipAt != nil && p.FlipAt[idx] {
		doSwitch = !doSwitch
	}
	p.streak++
	if p.streak >= livenessWindow {
		doSwitch = true
	}
	if doSwitch {
		p.streak = 0
		p.Switches++
		if p.RecordSwitches {
			p.SwitchEvents = append(p.SwitchEvents, idx)
		}
		return true
	}
	return false
}

// Pick implements vm.Scheduler. Accesses reach it only when OnAccess asked
// for a preemption.
func (p *SnowboardPolicy) Pick(m *vm.Machine, last *vm.Thread, ev vm.Event) *vm.Thread {
	switch ev.Kind {
	case vm.EvStart:
		runnable := m.Runnable()
		if len(runnable) == 0 {
			return nil
		}
		return runnable[p.rng.Intn(len(runnable))]
	case vm.EvBlocked, vm.EvDone, vm.EvFault, vm.EvYield:
		p.streak = 0
		return pickOther(m, last)
	case vm.EvAccess:
		return pickOther(m, last)
	}
	return keepOrFirst(m, last)
}

// SKIPolicy is the SKI-style baseline of §5.4. Two behaviors distinguish it
// from Algorithm 2, per the paper's comparison: it "yields thread execution
// whenever it observes the write or read instruction involved in a PMC
// (regardless of memory targets)", and "on its own has to consider all
// potential shared memory accesses, and randomly select a few to explore".
// Both make its preemptions far less targeted than Snowboard's
// address-precise PMC matching, which is why it needs many more
// interleavings per exposed bug and performs more vCPU switches.
type SKIPolicy struct {
	rng    *rand.Rand
	insSet map[trace.Ins]bool
	streak int

	// SharedPeriod is the average number of shared accesses between
	// candidate preemption points ("randomly select a few").
	SharedPeriod int

	// Switches counts induced preemptions.
	Switches int
}

// NewSKIPolicy builds the baseline scheduler from the PMC's instructions.
func NewSKIPolicy(rng *rand.Rand, hint *pmc.PMC) *SKIPolicy {
	ins := make(map[trace.Ins]bool, 2)
	if hint != nil {
		ins[hint.Write.Ins] = true
		ins[hint.Read.Ins] = true
	}
	return &SKIPolicy{rng: rng, insSet: ins, SharedPeriod: 16}
}

// OnAccess implements vm.AccessSink (same draw sequence as the old
// Pick-per-access flow).
func (p *SKIPolicy) OnAccess(m *vm.Machine, t *vm.Thread, a vm.AccessInfo) bool {
	doSwitch := false
	if p.insSet[a.Ins] {
		// Instruction match regardless of the access's memory target.
		doSwitch = p.rng.Intn(2) == 0
	} else if !a.Stack && p.rng.Intn(p.SharedPeriod) == 0 {
		// Any shared access is a candidate schedule point for SKI.
		doSwitch = p.rng.Intn(2) == 0
	}
	p.streak++
	if p.streak >= livenessWindow {
		doSwitch = true
	}
	if doSwitch {
		p.streak = 0
		p.Switches++
		return true
	}
	return false
}

// Pick implements vm.Scheduler.
func (p *SKIPolicy) Pick(m *vm.Machine, last *vm.Thread, ev vm.Event) *vm.Thread {
	switch ev.Kind {
	case vm.EvStart:
		runnable := m.Runnable()
		if len(runnable) == 0 {
			return nil
		}
		return runnable[p.rng.Intn(len(runnable))]
	case vm.EvBlocked, vm.EvDone, vm.EvFault, vm.EvYield:
		p.streak = 0
		return pickOther(m, last)
	case vm.EvAccess:
		return pickOther(m, last)
	}
	return keepOrFirst(m, last)
}

// RandomWalkPolicy preempts with fixed probability 1/Period at every
// access — the unguided stress-testing baseline.
type RandomWalkPolicy struct {
	rng    *rand.Rand
	Period int // average accesses between preemptions
}

// NewRandomWalkPolicy builds the stress baseline.
func NewRandomWalkPolicy(rng *rand.Rand, period int) *RandomWalkPolicy {
	if period <= 0 {
		period = 20
	}
	return &RandomWalkPolicy{rng: rng, Period: period}
}

// OnAccess implements vm.AccessSink: one draw per access, switch on a hit.
func (p *RandomWalkPolicy) OnAccess(m *vm.Machine, t *vm.Thread, a vm.AccessInfo) bool {
	return p.rng.Intn(p.Period) == 0
}

// Pick implements vm.Scheduler.
func (p *RandomWalkPolicy) Pick(m *vm.Machine, last *vm.Thread, ev vm.Event) *vm.Thread {
	switch ev.Kind {
	case vm.EvStart:
		runnable := m.Runnable()
		if len(runnable) == 0 {
			return nil
		}
		return runnable[p.rng.Intn(len(runnable))]
	case vm.EvBlocked, vm.EvDone, vm.EvFault, vm.EvYield:
		return pickOther(m, last)
	case vm.EvAccess:
		// OnAccess already drew and asked for this preemption.
		return pickOther(m, last)
	default:
		return keepOrFirst(m, last)
	}
}

// PCTPolicy implements a two-thread PCT-style scheduler: one thread holds
// the higher priority and runs whenever runnable; at d pre-chosen event
// indices the priorities invert. This is the schedule-exploration
// foundation Snowboard generalizes (§7).
type PCTPolicy struct {
	rng        *rand.Rand
	highIsZero bool
	changePts  map[int]bool
	eventIndex int
}

// NewPCTPolicy builds a PCT scheduler with depth d over an expected event
// horizon.
func NewPCTPolicy(rng *rand.Rand, depth, horizon int) *PCTPolicy {
	pts := make(map[int]bool, depth)
	for i := 0; i < depth; i++ {
		pts[rng.Intn(horizon)] = true
	}
	return &PCTPolicy{rng: rng, highIsZero: rng.Intn(2) == 0, changePts: pts}
}

// wantID returns the thread id currently holding the high priority.
func (p *PCTPolicy) wantID() int {
	if p.highIsZero {
		return 0
	}
	return 1
}

// OnAccess implements vm.AccessSink. Each access advances the event index
// (exactly as the old one-Pick-per-event flow did); a yield is requested
// only when the running thread is no longer the one Pick would choose.
func (p *PCTPolicy) OnAccess(m *vm.Machine, t *vm.Thread, a vm.AccessInfo) bool {
	p.eventIndex++
	if p.changePts[p.eventIndex] {
		p.highIsZero = !p.highIsZero
	}
	want := p.wantID()
	if t.ID == want {
		return false
	}
	runnable := m.Runnable()
	for _, th := range runnable {
		if th.ID == want {
			return true
		}
	}
	// High-priority thread not runnable: Pick would fall back to the first
	// runnable thread, so only yield if that is a different one.
	return len(runnable) > 0 && runnable[0] != t
}

// Pick implements vm.Scheduler. Accesses were already counted by OnAccess;
// every other event advances the index here, so each event is counted once.
func (p *PCTPolicy) Pick(m *vm.Machine, last *vm.Thread, ev vm.Event) *vm.Thread {
	if ev.Kind != vm.EvAccess {
		p.eventIndex++
		if p.changePts[p.eventIndex] {
			p.highIsZero = !p.highIsZero
		}
	}
	want := p.wantID()
	runnable := m.Runnable()
	if len(runnable) == 0 {
		return nil
	}
	for _, t := range runnable {
		if t.ID == want {
			return t
		}
	}
	return runnable[0]
}
