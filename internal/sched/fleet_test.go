package sched

import (
	"reflect"
	"testing"

	"snowboard/internal/cover"
	"snowboard/internal/detect"
	"snowboard/internal/exec"
	"snowboard/internal/kernel"
)

// fleetOutcomes runs the same exploration batch across a fleet of the
// given width and returns the outcomes plus merged coverage size.
func fleetOutcomes(t *testing.T, workers int) ([]Outcome, int) {
	t.Helper()
	env := exec.NewEnv(kernel.Config{Version: kernel.V5_12_RC3})
	set, key := identifyL2TP(t, env)

	template := Explorer{
		Trials:    6,
		Mode:      ModeSnowboard,
		Detect:    detect.DefaultOptions(),
		KnownPMCs: set,
		Coverage:  cover.New(),
	}
	envs := []*exec.Env{env}
	for len(envs) < workers {
		envs = append(envs, env.Clone())
	}
	fleet := NewFleet(template, envs, func(e *exec.Env) []string { return e.K.FsckHost() })

	var tests []ConcurrentTest
	var seeds []int64
	for i := 0; i < 6; i++ {
		hint := key
		tests = append(tests, ConcurrentTest{Writer: l2tpWriterProg(), Reader: l2tpReaderProg(), Hint: &hint})
		seeds = append(seeds, int64(1000+i*17))
	}
	outs := fleet.ExploreAll(tests, seeds)
	return outs, template.Coverage.Len()
}

// A fleet must produce the same outcomes regardless of its width: each
// test's exploration is a pure function of (test, seed).
func TestFleetOutcomesWorkerCountInvariant(t *testing.T) {
	o1, c1 := fleetOutcomes(t, 1)
	o4, c4 := fleetOutcomes(t, 4)
	if len(o1) != len(o4) {
		t.Fatalf("outcome counts differ: %d vs %d", len(o1), len(o4))
	}
	for i := range o1 {
		a, b := o1[i], o4[i]
		// NewCoverPairs depends on which worker's accumulator saw a pair
		// first; everything else must match exactly.
		a.NewCoverPairs, b.NewCoverPairs = 0, 0
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("outcome %d differs across worker counts:\n1 worker: %+v\n4 workers: %+v", i, a, b)
		}
	}
	if c1 != c4 || c1 == 0 {
		t.Fatalf("merged coverage differs: %d (1 worker) vs %d (4 workers)", c1, c4)
	}
	found := false
	for _, o := range o1 {
		if o.Found() {
			found = true
		}
	}
	if !found {
		t.Fatal("no issue surfaced in any outcome; exploration lost its teeth")
	}
}
