package sched

import (
	"math/rand"
	"sort"

	"snowboard/internal/corpus"
	"snowboard/internal/cover"
	"snowboard/internal/detect"
	"snowboard/internal/exec"
	"snowboard/internal/obs"
	"snowboard/internal/pmc"
	"snowboard/internal/trace"
)

// Exploration metrics, bumped once per concurrent test / trial — the
// scheduler hot path itself (per-access decisions) stays untouched.
var (
	mTests      = obs.C(obs.MExecTests)
	mTrials     = obs.C(obs.MSchedTrials)
	mSwitches   = obs.C(obs.MSchedSwitches)
	mChannelHit = obs.C(obs.MSchedChannelHit)
	mIncidental = obs.C(obs.MSchedIncidental)
)

// ConcurrentTest is a Snowboard concurrent test: two sequential tests plus
// the PMC scheduling hint (nil for the baseline pairing generators).
type ConcurrentTest struct {
	Writer *corpus.Prog
	Reader *corpus.Prog
	Hint   *pmc.PMC
	Pair   pmc.Pair // corpus test ids, informational

	// Extra carries additional coalesced PMC hints probed by the same
	// execution ("cooperative composing"): independent channels — disjoint
	// memory, distinct sites — whose generated tests share this
	// writer/reader program pair. They join the PMC set under test from
	// trial 0, bounded by maxCurrentPMCs.
	Extra []pmc.PMC `json:",omitempty"`
}

// Mode selects the exploration scheduler.
type Mode uint8

// Exploration modes.
const (
	// ModeSnowboard is Algorithm 2 (PMC-hinted).
	ModeSnowboard Mode = iota
	// ModeSKI is the instruction-triggered baseline.
	ModeSKI
	// ModeRandomWalk preempts uniformly at random.
	ModeRandomWalk
	// ModePCT uses priority-based scheduling with random change points.
	ModePCT
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeSnowboard:
		return "snowboard"
	case ModeSKI:
		return "ski"
	case ModeRandomWalk:
		return "random-walk"
	case ModePCT:
		return "pct"
	}
	return "?"
}

// Explorer executes concurrent tests, exploring interleavings per trial
// (Algorithm 2's outer loop).
type Explorer struct {
	Env    *exec.Env
	Trials int   // maximum trials per concurrent test (the paper uses 64)
	Seed   int64 // base seed; trial t uses Seed+t ("always same randomness in trial")
	Mode   Mode
	Detect detect.Options

	// DisableIncidental turns off the adoption of co-incident PMCs
	// (Algorithm 2 lines 26–27), for the ablation bench.
	DisableIncidental bool

	// PerformedDenom / FlagDenom override the Snowboard policy's switch
	// probabilities (0 uses the defaults).
	PerformedDenom int
	FlagDenom      int

	// KnownPMCs, when set, is consulted to recognize incidental PMCs
	// observed during trials.
	KnownPMCs *pmc.Set

	// Fsck, when set, produces host-side post-mortem console lines after a
	// trial (e.g. the filesystem checker).
	Fsck func() []string

	// Coverage, when set, accumulates Krace-style alias instruction-pair
	// coverage across trials (§2.1/§5.3.1).
	Coverage *cover.Coverage

	// TrackSegments, when set, gives every Explore call a fresh
	// interleaving-segment accumulator (Outcome.Segments). Unlike the
	// shared Coverage accumulator, the per-test segment set is a pure
	// function of (test, seed) — worker-invariant — which is what lets
	// the feedback scheduler credit clusters by segment yield without
	// breaking bit-identical reports across worker counts.
	TrackSegments bool

	// MutateSchedules enables schedule mutation (Snowboard mode only):
	// when a trial discovers new segments, its pre-trial state plus its
	// preemption points are kept as a mutable seed, and odd trials replay
	// a kept seed with the switch decision flipped at a few points near
	// its recorded preemptions instead of exploring from scratch.
	MutateSchedules bool

	// Trace stitches this explorer's flight-recorder events to a campaign
	// (a distributed worker sets it from the leased job; empty falls back to
	// the process-local campaign).
	Trace string
}

// Outcome summarizes the exploration of one concurrent test.
type Outcome struct {
	Trials         int  // trials actually executed
	Exercised      bool // the hinted memory channel occurred in ≥1 trial
	ExercisedTrial int  // first trial where it occurred (-1 if never)
	ExposedTrial   int  // first trial that surfaced an issue (-1 if none)
	Issues         []detect.Issue
	IssueTrial     map[string]int // issue ID -> trial on which it first surfaced
	Switches       int            // total induced preemptions
	Steps          int            // total events across trials
	NewCoverPairs  int            // fresh alias instruction pairs covered (if Coverage set)

	// Segments accumulates this test's interleaving segments (set when
	// the explorer's TrackSegments is on); NewSegments counts those new
	// to this test's own accumulator. Both are pure functions of
	// (test, seed), independent of worker placement.
	Segments    *cover.Segments
	NewSegments int

	// Repro pins the first trial that surfaced a crash-level issue, for
	// deterministic reproduction via Replay (§6). Nil when no such trial.
	Repro *ReproState
}

// TrialOf returns the trial on which the given issue first surfaced, or -1.
func (o *Outcome) TrialOf(is detect.Issue) int {
	if t, ok := o.IssueTrial[is.ID()]; ok {
		return t
	}
	return -1
}

// Found reports whether any issue surfaced.
func (o *Outcome) Found() bool { return len(o.Issues) > 0 }

// Explore runs up to Trials interleaving trials of the concurrent test,
// following Algorithm 2: flags persist across trials, PMC accesses trigger
// non-deterministic rescheduling, incidental PMCs observed in a trial are
// adopted into the set under test.
func (x *Explorer) Explore(ct ConcurrentTest) Outcome {
	out := Outcome{ExercisedTrial: -1, ExposedTrial: -1, IssueTrial: make(map[string]int)}
	mTests.Inc()
	span := obs.StartSpan("exec.test", obs.A("mode", x.Mode.String()), obs.A("hinted", ct.Hint != nil))
	defer func() {
		span.End(obs.A("trials", out.Trials), obs.A("exercised", out.Exercised),
			obs.A("issues", len(out.Issues)))
		obs.EmitTrace(x.Trace, obs.EvPMCTested, obs.A("mode", x.Mode.String()),
			obs.A("hinted", ct.Hint != nil), obs.A("exercised", out.Exercised),
			obs.A("trials", out.Trials), obs.A("issues", len(out.Issues)))
		if out.NewCoverPairs > 0 || out.NewSegments > 0 {
			obs.EmitTrace(x.Trace, obs.EvCoverNew, obs.A("pairs", out.NewCoverPairs),
				obs.A("segments", out.NewSegments))
		}
	}()
	trials := x.Trials
	if trials <= 0 {
		trials = 64
	}
	if x.TrackSegments {
		out.Segments = cover.NewSegments()
	}

	var currentPMCs []pmc.PMC
	if ct.Hint != nil {
		currentPMCs = append(currentPMCs, *ct.Hint)
	}
	for i := range ct.Extra {
		if len(currentPMCs) >= maxCurrentPMCs {
			break
		}
		currentPMCs = append(currentPMCs, ct.Extra[i])
	}
	flags := make(map[sig]bool)
	seen := make(map[string]bool)
	var tr trace.Trace

	// Mutable yield-schedule seeds: pre-trial state + preemption points of
	// trials that discovered new segments (MutateSchedules only).
	type schedSeed struct {
		state    *ReproState
		switches []int
	}
	var seeds []schedSeed
	mutating := x.MutateSchedules && x.Mode == ModeSnowboard

	for trial := 0; trial < trials; trial++ {
		trialSeed := x.Seed + int64(trial)
		var pretrial *ReproState
		var policy *SnowboardPolicy
		rng := rand.New(rand.NewSource(trialSeed))
		mutated := false
		var res exec.Result
		var switches int
		switch x.Mode {
		case ModeSKI:
			p := NewSKIPolicy(rng, ct.Hint)
			res = x.Env.RunPair(ct.Writer, ct.Reader, p, &tr)
			switches = p.Switches
		case ModeRandomWalk:
			p := NewRandomWalkPolicy(rng, 20)
			res = x.Env.RunPair(ct.Writer, ct.Reader, p, &tr)
		case ModePCT:
			p := NewPCTPolicy(rng, 3, 4096)
			res = x.Env.RunPair(ct.Writer, ct.Reader, p, &tr)
		default:
			if mutating && len(seeds) > 0 && trial%2 == 1 {
				// Mutation trial: perturb a segment-discovering schedule
				// near its preemption points instead of exploring fresh.
				// The trial is a pure function of its synthesized
				// ReproState, so it replays like any recorded trial.
				sd := seeds[rng.Intn(len(seeds))]
				pretrial = &ReproState{
					Seed:  sd.state.Seed,
					Trial: trial,
					PMCs:  sd.state.PMCs,
					Flags: sd.state.Flags,
					Flips: mutateFlips(rng, sd.state.Flips, sd.switches),
				}
				policy = policyFromState(pretrial)
				mutated = true
			} else {
				pretrial = snapshotRepro(trialSeed, trial, currentPMCs, flags)
				policy = NewSnowboardPolicy(rng, currentPMCs, flags)
			}
			if x.PerformedDenom > 0 {
				policy.PerformedDenom = x.PerformedDenom
			}
			if x.FlagDenom > 0 {
				policy.FlagDenom = x.FlagDenom
			}
			policy.RecordSwitches = mutating
			res = x.Env.RunPair(ct.Writer, ct.Reader, policy, &tr)
			switches = policy.Switches
		}
		x.Env.M.SetTrace(nil)
		out.Trials = trial + 1
		out.Switches += switches
		out.Steps += res.Steps
		mTrials.Inc()
		mSwitches.Add(int64(switches))
		if x.Coverage != nil {
			out.NewCoverPairs += x.Coverage.AddTrace(&tr)
		}
		if out.Segments != nil {
			if fresh := out.Segments.AddTrace(&tr); fresh > 0 {
				out.NewSegments += fresh
				if mutating && policy != nil && len(policy.SwitchEvents) > 0 {
					seeds = append(seeds, schedSeed{
						state:    pretrial,
						switches: append([]int(nil), policy.SwitchEvents...),
					})
					if len(seeds) > maxSchedSeeds {
						seeds = seeds[1:]
					}
				}
			}
		}

		// Channel witness: did the hinted communication actually happen?
		if ct.Hint != nil && !out.Exercised && ChannelExercised(&tr, ct.Hint) {
			out.Exercised = true
			out.ExercisedTrial = trial
			mChannelHit.Inc()
		}

		in := detect.TrialInput{
			Console:  res.Console,
			Trace:    &tr,
			Hung:     res.Hung,
			Deadlock: res.Deadlock,
		}
		if x.Fsck != nil {
			in.PostScan = x.Fsck()
		}
		issues := detect.Analyze(in, x.Detect)
		var freshIssues []detect.Issue
		for _, is := range issues {
			if !seen[is.ID()] {
				seen[is.ID()] = true
				out.Issues = append(out.Issues, is)
				out.IssueTrial[is.ID()] = trial
				freshIssues = append(freshIssues, is)
			}
		}
		if len(freshIssues) > 0 && out.ExposedTrial < 0 {
			out.ExposedTrial = trial
		}
		// Benign races (e.g. the ubiquitous slab counter, issue #13) show
		// up in almost every trial and must not end exploration; a
		// crash-level finding does — the kernel is wedged at that point.
		crashed := false
		for _, is := range freshIssues {
			switch is.Kind {
			case detect.KindPanic, detect.KindFSError, detect.KindIOError, detect.KindDeadlock:
				crashed = true
			}
		}
		if crashed {
			out.Repro = pretrial
			break
		}

		// Algorithm 2 lines 26–27: adopt one incidental PMC whose write and
		// read both appeared in this trial. The set under test is capped:
		// every member PMC adds preemption points, and an unbounded set
		// degenerates into schedule thrash that closes the very windows the
		// hint is meant to open. Mutation trials replay historical state
		// and do not advance the live PMC set.
		if !mutated && !x.DisableIncidental && x.Mode == ModeSnowboard && len(currentPMCs) < maxCurrentPMCs {
			if inc, ok := x.findIncidental(&tr, currentPMCs, rng); ok {
				currentPMCs = append(currentPMCs, inc)
				mIncidental.Inc()
			}
		}
	}
	return out
}

// maxCurrentPMCs bounds the PMC set under simultaneous test: the hint plus
// composed co-hints and adopted incidentals.
const maxCurrentPMCs = 4

// maxSchedSeeds bounds the kept mutable yield schedules; newer discoveries
// evict the oldest.
const maxSchedSeeds = 4

// mutateFlips derives a mutated flip set: the base seed's flips with 1–2
// decisions toggled at points drawn within ±2 events of the seed trial's
// recorded preemptions. Toggling (XOR) rather than adding lets a second
// mutation of the same seed undo a harmful flip.
func mutateFlips(rng *rand.Rand, base, switches []int) []int {
	set := make(map[int]bool, len(base)+2)
	for _, f := range base {
		set[f] = true
	}
	n := 1 + rng.Intn(2)
	for k := 0; k < n; k++ {
		at := switches[rng.Intn(len(switches))] + rng.Intn(5) - 2
		if at < 0 {
			at = 0
		}
		if set[at] {
			delete(set, at)
		} else {
			set[at] = true
		}
	}
	out := make([]int, 0, len(set))
	for f := range set {
		out = append(out, f)
	}
	sort.Ints(out)
	return out
}

// findIncidental locates a PMC from the identified set present in the
// trial's accesses but not yet under test, choosing deterministically among
// the candidates with the trial rng.
func (x *Explorer) findIncidental(tr *trace.Trace, current []pmc.PMC, rng *rand.Rand) (pmc.PMC, bool) {
	curSet := make(map[sig]bool, len(current)*2)
	for _, p := range current {
		curSet[sigOfKey(trace.Write, p.Write)] = true
		curSet[sigOfKey(trace.Read, p.Read)] = true
	}
	if x.KnownPMCs == nil {
		return pmc.PMC{}, false
	}
	writesSeen := make(map[pmc.Key]int)
	readsSeen := make(map[pmc.Key]int)
	sigCount := make(map[sig]int)
	for i, n := 0, tr.Len(); i < n; i++ {
		a := tr.At(i)
		if a.Stack || a.Atomic {
			continue
		}
		k := pmc.Key{Ins: a.Ins, Addr: a.Addr, Size: a.Size, Val: a.Val}
		if a.Kind == trace.Write {
			writesSeen[k]++
		} else {
			readsSeen[k]++
		}
		sigCount[sigOf(&a)]++
	}
	var candidates []pmc.PMC
	for key, e := range x.KnownPMCs.Entries {
		if writesSeen[key.Write] > 0 && readsSeen[key.Read] > 0 {
			if curSet[sigOfKey(trace.Write, key.Write)] && curSet[sigOfKey(trace.Read, key.Read)] {
				continue
			}
			candidates = append(candidates, e.PMC)
		}
	}
	if len(candidates) == 0 {
		return pmc.PMC{}, false
	}
	// Prefer the least-frequently-executed candidate (the uncommon-first
	// philosophy of §4.3 applied to adoption): hot allocator channels fire
	// on every kmalloc, and adopting one floods the schedule with
	// preemption points. Sort for determinism — map iteration is random.
	freq := func(p pmc.PMC) int {
		return sigCount[sigOfKey(trace.Write, p.Write)] + sigCount[sigOfKey(trace.Read, p.Read)]
	}
	sort.Slice(candidates, func(i, j int) bool {
		a, b := candidates[i], candidates[j]
		fa, fb := freq(a), freq(b)
		if fa != fb {
			return fa < fb
		}
		if a.Write.Ins != b.Write.Ins {
			return a.Write.Ins < b.Write.Ins
		}
		if a.Write.Addr != b.Write.Addr {
			return a.Write.Addr < b.Write.Addr
		}
		if a.Read.Ins != b.Read.Ins {
			return a.Read.Ins < b.Read.Ins
		}
		if a.Read.Addr != b.Read.Addr {
			return a.Read.Addr < b.Read.Addr
		}
		if a.Write.Val != b.Write.Val {
			return a.Write.Val < b.Write.Val
		}
		if a.Read.Val != b.Read.Val {
			return a.Read.Val < b.Read.Val
		}
		// Size completes the order: candidates are distinct map keys, so
		// two that agree on every field above differ in a Size — without
		// this the sort is not total and the unstable sort.Slice leaks map
		// iteration order into which PMC gets adopted.
		if a.Write.Size != b.Write.Size {
			return a.Write.Size < b.Write.Size
		}
		if a.Read.Size != b.Read.Size {
			return a.Read.Size < b.Read.Size
		}
		return !a.DFLeader && b.DFLeader
	})
	// Draw among the least-frequent quartile to retain Algorithm 2's
	// random choice without re-admitting the hot channels.
	n := (len(candidates) + 3) / 4
	return candidates[rng.Intn(n)], true
}

// ChannelExercised reports whether the trial trace contains the hinted
// communication: a write matching the hint's write site followed by a read
// matching the hint's read site from a different thread that observed the
// written bytes, with no intervening write to the overlap.
func ChannelExercised(tr *trace.Trace, hint *pmc.PMC) bool {
	ws := sigOfKey(trace.Write, hint.Write)
	rs := sigOfKey(trace.Read, hint.Read)
	lastWrite := -1
	for i, n := 0, tr.Len(); i < n; i++ {
		a := tr.At(i)
		if sigOf(&a) == ws {
			lastWrite = i
			continue
		}
		if lastWrite >= 0 && sigOf(&a) == rs && a.Thread != tr.ThreadAt(lastWrite) {
			w := tr.At(lastWrite)
			if !a.Overlaps(&w) {
				continue
			}
			lo, hi := a.OverlapRange(&w)
			if a.ProjectVal(lo, hi) != w.ProjectVal(lo, hi) {
				continue // someone else overwrote in between
			}
			// Verify no intervening write touched the overlap.
			clean := true
			for j := lastWrite + 1; j < i; j++ {
				if tr.IsWriteAt(j) && tr.AddrAt(j) < hi && tr.EndAt(j) > lo {
					clean = false
					break
				}
			}
			if clean {
				return true
			}
		}
	}
	return false
}
