package sched

import (
	"math/rand"
	"sort"

	"snowboard/internal/corpus"
	"snowboard/internal/cover"
	"snowboard/internal/detect"
	"snowboard/internal/exec"
	"snowboard/internal/obs"
	"snowboard/internal/pmc"
	"snowboard/internal/trace"
)

// Exploration metrics, bumped once per concurrent test / trial — the
// scheduler hot path itself (per-access decisions) stays untouched.
var (
	mTests      = obs.C(obs.MExecTests)
	mTrials     = obs.C(obs.MSchedTrials)
	mSwitches   = obs.C(obs.MSchedSwitches)
	mChannelHit = obs.C(obs.MSchedChannelHit)
	mIncidental = obs.C(obs.MSchedIncidental)
)

// ConcurrentTest is a Snowboard concurrent test: two sequential tests plus
// the PMC scheduling hint (nil for the baseline pairing generators).
type ConcurrentTest struct {
	Writer *corpus.Prog
	Reader *corpus.Prog
	Hint   *pmc.PMC
	Pair   pmc.Pair // corpus test ids, informational
}

// Mode selects the exploration scheduler.
type Mode uint8

// Exploration modes.
const (
	// ModeSnowboard is Algorithm 2 (PMC-hinted).
	ModeSnowboard Mode = iota
	// ModeSKI is the instruction-triggered baseline.
	ModeSKI
	// ModeRandomWalk preempts uniformly at random.
	ModeRandomWalk
	// ModePCT uses priority-based scheduling with random change points.
	ModePCT
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeSnowboard:
		return "snowboard"
	case ModeSKI:
		return "ski"
	case ModeRandomWalk:
		return "random-walk"
	case ModePCT:
		return "pct"
	}
	return "?"
}

// Explorer executes concurrent tests, exploring interleavings per trial
// (Algorithm 2's outer loop).
type Explorer struct {
	Env    *exec.Env
	Trials int   // maximum trials per concurrent test (the paper uses 64)
	Seed   int64 // base seed; trial t uses Seed+t ("always same randomness in trial")
	Mode   Mode
	Detect detect.Options

	// DisableIncidental turns off the adoption of co-incident PMCs
	// (Algorithm 2 lines 26–27), for the ablation bench.
	DisableIncidental bool

	// PerformedDenom / FlagDenom override the Snowboard policy's switch
	// probabilities (0 uses the defaults).
	PerformedDenom int
	FlagDenom      int

	// KnownPMCs, when set, is consulted to recognize incidental PMCs
	// observed during trials.
	KnownPMCs *pmc.Set

	// Fsck, when set, produces host-side post-mortem console lines after a
	// trial (e.g. the filesystem checker).
	Fsck func() []string

	// Coverage, when set, accumulates Krace-style alias instruction-pair
	// coverage across trials (§2.1/§5.3.1).
	Coverage *cover.Coverage

	// Trace stitches this explorer's flight-recorder events to a campaign
	// (a distributed worker sets it from the leased job; empty falls back to
	// the process-local campaign).
	Trace string
}

// Outcome summarizes the exploration of one concurrent test.
type Outcome struct {
	Trials         int  // trials actually executed
	Exercised      bool // the hinted memory channel occurred in ≥1 trial
	ExercisedTrial int  // first trial where it occurred (-1 if never)
	ExposedTrial   int  // first trial that surfaced an issue (-1 if none)
	Issues         []detect.Issue
	IssueTrial     map[string]int // issue ID -> trial on which it first surfaced
	Switches       int            // total induced preemptions
	Steps          int            // total events across trials
	NewCoverPairs  int            // fresh alias instruction pairs covered (if Coverage set)

	// Repro pins the first trial that surfaced a crash-level issue, for
	// deterministic reproduction via Replay (§6). Nil when no such trial.
	Repro *ReproState
}

// TrialOf returns the trial on which the given issue first surfaced, or -1.
func (o *Outcome) TrialOf(is detect.Issue) int {
	if t, ok := o.IssueTrial[is.ID()]; ok {
		return t
	}
	return -1
}

// Found reports whether any issue surfaced.
func (o *Outcome) Found() bool { return len(o.Issues) > 0 }

// Explore runs up to Trials interleaving trials of the concurrent test,
// following Algorithm 2: flags persist across trials, PMC accesses trigger
// non-deterministic rescheduling, incidental PMCs observed in a trial are
// adopted into the set under test.
func (x *Explorer) Explore(ct ConcurrentTest) Outcome {
	out := Outcome{ExercisedTrial: -1, ExposedTrial: -1, IssueTrial: make(map[string]int)}
	mTests.Inc()
	span := obs.StartSpan("exec.test", obs.A("mode", x.Mode.String()), obs.A("hinted", ct.Hint != nil))
	defer func() {
		span.End(obs.A("trials", out.Trials), obs.A("exercised", out.Exercised),
			obs.A("issues", len(out.Issues)))
		obs.EmitTrace(x.Trace, obs.EvPMCTested, obs.A("mode", x.Mode.String()),
			obs.A("hinted", ct.Hint != nil), obs.A("exercised", out.Exercised),
			obs.A("trials", out.Trials), obs.A("issues", len(out.Issues)))
		if out.NewCoverPairs > 0 {
			obs.EmitTrace(x.Trace, obs.EvCoverNew, obs.A("pairs", out.NewCoverPairs))
		}
	}()
	trials := x.Trials
	if trials <= 0 {
		trials = 64
	}

	var currentPMCs []pmc.PMC
	if ct.Hint != nil {
		currentPMCs = append(currentPMCs, *ct.Hint)
	}
	flags := make(map[sig]bool)
	seen := make(map[string]bool)
	var tr trace.Trace

	for trial := 0; trial < trials; trial++ {
		trialSeed := x.Seed + int64(trial)
		var pretrial *ReproState
		if x.Mode == ModeSnowboard {
			pretrial = snapshotRepro(trialSeed, trial, currentPMCs, flags)
		}
		rng := rand.New(rand.NewSource(trialSeed))
		var res exec.Result
		var switches int
		switch x.Mode {
		case ModeSKI:
			p := NewSKIPolicy(rng, ct.Hint)
			res = x.Env.RunPair(ct.Writer, ct.Reader, p, &tr)
			switches = p.Switches
		case ModeRandomWalk:
			p := NewRandomWalkPolicy(rng, 20)
			res = x.Env.RunPair(ct.Writer, ct.Reader, p, &tr)
		case ModePCT:
			p := NewPCTPolicy(rng, 3, 4096)
			res = x.Env.RunPair(ct.Writer, ct.Reader, p, &tr)
		default:
			p := NewSnowboardPolicy(rng, currentPMCs, flags)
			if x.PerformedDenom > 0 {
				p.PerformedDenom = x.PerformedDenom
			}
			if x.FlagDenom > 0 {
				p.FlagDenom = x.FlagDenom
			}
			res = x.Env.RunPair(ct.Writer, ct.Reader, p, &tr)
			switches = p.Switches
		}
		x.Env.M.SetTrace(nil)
		out.Trials = trial + 1
		out.Switches += switches
		out.Steps += res.Steps
		mTrials.Inc()
		mSwitches.Add(int64(switches))
		if x.Coverage != nil {
			out.NewCoverPairs += x.Coverage.AddTrace(&tr)
		}

		// Channel witness: did the hinted communication actually happen?
		if ct.Hint != nil && !out.Exercised && ChannelExercised(&tr, ct.Hint) {
			out.Exercised = true
			out.ExercisedTrial = trial
			mChannelHit.Inc()
		}

		in := detect.TrialInput{
			Console:  res.Console,
			Trace:    &tr,
			Hung:     res.Hung,
			Deadlock: res.Deadlock,
		}
		if x.Fsck != nil {
			in.PostScan = x.Fsck()
		}
		issues := detect.Analyze(in, x.Detect)
		var freshIssues []detect.Issue
		for _, is := range issues {
			if !seen[is.ID()] {
				seen[is.ID()] = true
				out.Issues = append(out.Issues, is)
				out.IssueTrial[is.ID()] = trial
				freshIssues = append(freshIssues, is)
			}
		}
		if len(freshIssues) > 0 && out.ExposedTrial < 0 {
			out.ExposedTrial = trial
		}
		// Benign races (e.g. the ubiquitous slab counter, issue #13) show
		// up in almost every trial and must not end exploration; a
		// crash-level finding does — the kernel is wedged at that point.
		crashed := false
		for _, is := range freshIssues {
			switch is.Kind {
			case detect.KindPanic, detect.KindFSError, detect.KindIOError, detect.KindDeadlock:
				crashed = true
			}
		}
		if crashed {
			out.Repro = pretrial
			break
		}

		// Algorithm 2 lines 26–27: adopt one incidental PMC whose write and
		// read both appeared in this trial. The set under test is capped:
		// every member PMC adds preemption points, and an unbounded set
		// degenerates into schedule thrash that closes the very windows the
		// hint is meant to open.
		if !x.DisableIncidental && x.Mode == ModeSnowboard && len(currentPMCs) < maxCurrentPMCs {
			if inc, ok := x.findIncidental(&tr, currentPMCs, rng); ok {
				currentPMCs = append(currentPMCs, inc)
				mIncidental.Inc()
			}
		}
	}
	return out
}

// maxCurrentPMCs bounds the PMC set under simultaneous test: the hint plus
// a few adopted incidentals.
const maxCurrentPMCs = 4

// findIncidental locates a PMC from the identified set present in the
// trial's accesses but not yet under test, choosing deterministically among
// the candidates with the trial rng.
func (x *Explorer) findIncidental(tr *trace.Trace, current []pmc.PMC, rng *rand.Rand) (pmc.PMC, bool) {
	curSet := make(map[sig]bool, len(current)*2)
	for _, p := range current {
		curSet[sigOfKey(trace.Write, p.Write)] = true
		curSet[sigOfKey(trace.Read, p.Read)] = true
	}
	if x.KnownPMCs == nil {
		return pmc.PMC{}, false
	}
	writesSeen := make(map[pmc.Key]int)
	readsSeen := make(map[pmc.Key]int)
	sigCount := make(map[sig]int)
	for i, n := 0, tr.Len(); i < n; i++ {
		a := tr.At(i)
		if a.Stack || a.Atomic {
			continue
		}
		k := pmc.Key{Ins: a.Ins, Addr: a.Addr, Size: a.Size, Val: a.Val}
		if a.Kind == trace.Write {
			writesSeen[k]++
		} else {
			readsSeen[k]++
		}
		sigCount[sigOf(&a)]++
	}
	var candidates []pmc.PMC
	for key, e := range x.KnownPMCs.Entries {
		if writesSeen[key.Write] > 0 && readsSeen[key.Read] > 0 {
			if curSet[sigOfKey(trace.Write, key.Write)] && curSet[sigOfKey(trace.Read, key.Read)] {
				continue
			}
			candidates = append(candidates, e.PMC)
		}
	}
	if len(candidates) == 0 {
		return pmc.PMC{}, false
	}
	// Prefer the least-frequently-executed candidate (the uncommon-first
	// philosophy of §4.3 applied to adoption): hot allocator channels fire
	// on every kmalloc, and adopting one floods the schedule with
	// preemption points. Sort for determinism — map iteration is random.
	freq := func(p pmc.PMC) int {
		return sigCount[sigOfKey(trace.Write, p.Write)] + sigCount[sigOfKey(trace.Read, p.Read)]
	}
	sort.Slice(candidates, func(i, j int) bool {
		a, b := candidates[i], candidates[j]
		fa, fb := freq(a), freq(b)
		if fa != fb {
			return fa < fb
		}
		if a.Write.Ins != b.Write.Ins {
			return a.Write.Ins < b.Write.Ins
		}
		if a.Write.Addr != b.Write.Addr {
			return a.Write.Addr < b.Write.Addr
		}
		if a.Read.Ins != b.Read.Ins {
			return a.Read.Ins < b.Read.Ins
		}
		if a.Read.Addr != b.Read.Addr {
			return a.Read.Addr < b.Read.Addr
		}
		if a.Write.Val != b.Write.Val {
			return a.Write.Val < b.Write.Val
		}
		return a.Read.Val < b.Read.Val
	})
	// Draw among the least-frequent quartile to retain Algorithm 2's
	// random choice without re-admitting the hot channels.
	n := (len(candidates) + 3) / 4
	return candidates[rng.Intn(n)], true
}

// ChannelExercised reports whether the trial trace contains the hinted
// communication: a write matching the hint's write site followed by a read
// matching the hint's read site from a different thread that observed the
// written bytes, with no intervening write to the overlap.
func ChannelExercised(tr *trace.Trace, hint *pmc.PMC) bool {
	ws := sigOfKey(trace.Write, hint.Write)
	rs := sigOfKey(trace.Read, hint.Read)
	lastWrite := -1
	for i, n := 0, tr.Len(); i < n; i++ {
		a := tr.At(i)
		if sigOf(&a) == ws {
			lastWrite = i
			continue
		}
		if lastWrite >= 0 && sigOf(&a) == rs && a.Thread != tr.ThreadAt(lastWrite) {
			w := tr.At(lastWrite)
			if !a.Overlaps(&w) {
				continue
			}
			lo, hi := a.OverlapRange(&w)
			if a.ProjectVal(lo, hi) != w.ProjectVal(lo, hi) {
				continue // someone else overwrote in between
			}
			// Verify no intervening write touched the overlap.
			clean := true
			for j := lastWrite + 1; j < i; j++ {
				if tr.IsWriteAt(j) && tr.AddrAt(j) < hi && tr.EndAt(j) > lo {
					clean = false
					break
				}
			}
			if clean {
				return true
			}
		}
	}
	return false
}
