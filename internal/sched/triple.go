package sched

import (
	"math/rand"

	"snowboard/internal/corpus"
	"snowboard/internal/detect"
	"snowboard/internal/pmc"
	"snowboard/internal/trace"
)

// Three-thread exploration — the §6 extension. A TripleTest runs one writer
// and two readers concurrently; the scheduling hint is a write+2-read PMC
// triple, and Algorithm 2's machinery (performed/coming accesses, flags,
// liveness) applies unchanged since the policy is thread-count agnostic.

// TripleTest is a three-thread concurrent test.
type TripleTest struct {
	Writer  *corpus.Prog
	ReaderA *corpus.Prog
	ReaderB *corpus.Prog
	Hint    *pmc.Triple
	Pair    pmc.TriplePair
}

// ExploreTriple runs up to Trials interleaving trials of the triple.
func (x *Explorer) ExploreTriple(tt TripleTest) Outcome {
	out := Outcome{ExercisedTrial: -1, ExposedTrial: -1, IssueTrial: make(map[string]int)}
	trials := x.Trials
	if trials <= 0 {
		trials = 64
	}

	var currentPMCs []pmc.PMC
	if tt.Hint != nil {
		currentPMCs = append(currentPMCs,
			pmc.PMC{Write: tt.Hint.Write, Read: tt.Hint.ReadA},
			pmc.PMC{Write: tt.Hint.Write, Read: tt.Hint.ReadB},
		)
	}
	flags := make(map[sig]bool)
	seen := make(map[string]bool)
	var tr trace.Trace
	progs := []*corpus.Prog{tt.Writer, tt.ReaderA, tt.ReaderB}

	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(x.Seed + int64(trial)))
		policy := NewSnowboardPolicy(rng, currentPMCs, flags)
		if x.PerformedDenom > 0 {
			policy.PerformedDenom = x.PerformedDenom
		}
		if x.FlagDenom > 0 {
			policy.FlagDenom = x.FlagDenom
		}
		res := x.Env.RunMany(progs, policy, &tr)
		x.Env.M.SetTrace(nil)
		out.Trials = trial + 1
		out.Switches += policy.Switches
		out.Steps += res.Steps

		if tt.Hint != nil && !out.Exercised {
			a := pmc.PMC{Write: tt.Hint.Write, Read: tt.Hint.ReadA}
			b := pmc.PMC{Write: tt.Hint.Write, Read: tt.Hint.ReadB}
			if ChannelExercised(&tr, &a) && ChannelExercised(&tr, &b) {
				out.Exercised = true
				out.ExercisedTrial = trial
			}
		}

		in := detect.TrialInput{
			Console:  res.Console,
			Trace:    &tr,
			Hung:     res.Hung,
			Deadlock: res.Deadlock,
		}
		if x.Fsck != nil {
			in.PostScan = x.Fsck()
		}
		issues := detect.Analyze(in, x.Detect)
		var fresh []detect.Issue
		for _, is := range issues {
			if !seen[is.ID()] {
				seen[is.ID()] = true
				out.Issues = append(out.Issues, is)
				out.IssueTrial[is.ID()] = trial
				fresh = append(fresh, is)
			}
		}
		if len(fresh) > 0 && out.ExposedTrial < 0 {
			out.ExposedTrial = trial
		}
		crashed := false
		for _, is := range fresh {
			switch is.Kind {
			case detect.KindPanic, detect.KindFSError, detect.KindIOError, detect.KindDeadlock:
				crashed = true
			}
		}
		if crashed {
			break
		}
	}
	return out
}
