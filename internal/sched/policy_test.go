package sched

import (
	"math/rand"
	"testing"

	"snowboard/internal/detect"
	"snowboard/internal/pmc"
	"snowboard/internal/trace"
)

var (
	sIns1 = trace.DefIns("sched_test:w")
	sIns2 = trace.DefIns("sched_test:r")
)

func hintPMC() *pmc.PMC {
	return &pmc.PMC{
		Write: pmc.Key{Ins: sIns1, Addr: 0x100, Size: 8, Val: 1},
		Read:  pmc.Key{Ins: sIns2, Addr: 0x100, Size: 8, Val: 2},
	}
}

func TestChannelExercisedPositive(t *testing.T) {
	h := hintPMC()
	tr := &trace.Trace{}
	tr.Append(trace.Access{Thread: 0, Kind: trace.Write, Ins: sIns1, Addr: 0x100, Size: 8, Val: 7})
	tr.Append(trace.Access{Thread: 1, Kind: trace.Read, Ins: sIns2, Addr: 0x100, Size: 8, Val: 7})
	if !ChannelExercised(tr, h) {
		t.Fatal("flow write->read not recognized")
	}
}

func TestChannelExercisedWrongOrder(t *testing.T) {
	h := hintPMC()
	tr := &trace.Trace{}
	tr.Append(trace.Access{Thread: 1, Kind: trace.Read, Ins: sIns2, Addr: 0x100, Size: 8, Val: 7})
	tr.Append(trace.Access{Thread: 0, Kind: trace.Write, Ins: sIns1, Addr: 0x100, Size: 8, Val: 7})
	if ChannelExercised(tr, h) {
		t.Fatal("read-before-write counted as exercised")
	}
}

func TestChannelExercisedSameThreadDoesNotCount(t *testing.T) {
	h := hintPMC()
	tr := &trace.Trace{}
	tr.Append(trace.Access{Thread: 0, Kind: trace.Write, Ins: sIns1, Addr: 0x100, Size: 8, Val: 7})
	tr.Append(trace.Access{Thread: 0, Kind: trace.Read, Ins: sIns2, Addr: 0x100, Size: 8, Val: 7})
	if ChannelExercised(tr, h) {
		t.Fatal("same-thread flow counted as inter-thread communication")
	}
}

func TestChannelExercisedInterveningWrite(t *testing.T) {
	h := hintPMC()
	tr := &trace.Trace{}
	tr.Append(trace.Access{Thread: 0, Kind: trace.Write, Ins: sIns1, Addr: 0x100, Size: 8, Val: 7})
	tr.Append(trace.Access{Thread: 1, Kind: trace.Write, Ins: sIns1, Addr: 0x100, Size: 8, Val: 9})
	tr.Append(trace.Access{Thread: 1, Kind: trace.Read, Ins: sIns2, Addr: 0x100, Size: 8, Val: 9})
	if ChannelExercised(tr, h) {
		t.Fatal("overwritten channel counted as exercised")
	}
}

func TestChannelExercisedValueMismatch(t *testing.T) {
	h := hintPMC()
	tr := &trace.Trace{}
	tr.Append(trace.Access{Thread: 0, Kind: trace.Write, Ins: sIns1, Addr: 0x100, Size: 8, Val: 7})
	// Reader observed a different value than the write put there: the
	// dataflow did not come from this write.
	tr.Append(trace.Access{Thread: 1, Kind: trace.Read, Ins: sIns2, Addr: 0x100, Size: 8, Val: 8})
	if ChannelExercised(tr, h) {
		t.Fatal("mismatched value counted as exercised")
	}
}

func TestModeStrings(t *testing.T) {
	for _, m := range []Mode{ModeSnowboard, ModeSKI, ModeRandomWalk, ModePCT} {
		if m.String() == "?" {
			t.Fatalf("mode %d has no name", m)
		}
	}
}

func TestSnowboardPolicyDefaults(t *testing.T) {
	p := NewSnowboardPolicy(rand.New(rand.NewSource(1)), []pmc.PMC{*hintPMC()}, map[sig]bool{})
	if p.PerformedDenom < 2 || p.FlagDenom < 2 {
		t.Fatalf("implausible defaults: %d %d", p.PerformedDenom, p.FlagDenom)
	}
	if !p.isCurrent(sigOfKey(trace.Write, hintPMC().Write)) {
		t.Fatal("hint write not in current set")
	}
	if !p.isCurrent(sigOfKey(trace.Read, hintPMC().Read)) {
		t.Fatal("hint read not in current set")
	}
	if p.isCurrent(sig{kind: trace.Read, ins: sIns1, addr: 0x900, size: 8}) {
		t.Fatal("phantom current sig")
	}
}

func TestOutcomeTrialOf(t *testing.T) {
	known := detect.Issue{Kind: detect.KindDataRace, WriteIns: sIns1, ReadIns: sIns2}
	unknown := detect.Issue{Kind: detect.KindDataRace, WriteIns: sIns2, ReadIns: sIns1}
	out := Outcome{IssueTrial: map[string]int{known.ID(): 3}}
	if got := out.TrialOf(known); got != 3 {
		t.Fatalf("TrialOf known issue: %d", got)
	}
	if got := out.TrialOf(unknown); got != -1 {
		t.Fatalf("TrialOf unknown issue: %d", got)
	}
}
