package sched

import (
	"testing"

	"snowboard/internal/detect"
	"snowboard/internal/exec"
	"snowboard/internal/kernel"
	"snowboard/internal/trace"
)

// TestReplayReproducesL2TPPanic exercises the §6 deterministic-reproduction
// path: explore until the Figure 1 bug crashes the kernel, then replay the
// recorded trial repeatedly and observe the identical panic every time.
func TestReplayReproducesL2TPPanic(t *testing.T) {
	env := exec.NewEnv(kernel.Config{Version: kernel.V5_12_RC3})
	set, hint := identifyL2TP(t, env)
	x := &Explorer{Env: env, Trials: 512, Seed: 1, Mode: ModeSnowboard, Detect: detect.DefaultOptions(), KnownPMCs: set}
	ct := ConcurrentTest{Writer: l2tpWriterProg(), Reader: l2tpReaderProg(), Hint: &hint}
	out := x.Explore(ct)
	if out.Repro == nil {
		t.Fatalf("no repro state recorded; issues: %+v", out.Issues)
	}
	for i := 0; i < 3; i++ {
		var tr trace.Trace
		res := Replay(env, ct, out.Repro, &tr)
		env.M.SetTrace(nil)
		if !res.Crashed() {
			t.Fatalf("replay %d did not crash", i)
		}
		found := false
		for _, f := range res.Faults {
			if len(f) > 0 {
				found = true
			}
		}
		if !found {
			t.Fatalf("replay %d produced no fault message", i)
		}
	}
}

// TestReplayDeterministicTrace verifies that two replays produce
// byte-identical traces.
func TestReplayDeterministicTrace(t *testing.T) {
	env := exec.NewEnv(kernel.Config{Version: kernel.V5_12_RC3})
	set, hint := identifyL2TP(t, env)
	x := &Explorer{Env: env, Trials: 512, Seed: 1, Mode: ModeSnowboard, Detect: detect.DefaultOptions(), KnownPMCs: set}
	ct := ConcurrentTest{Writer: l2tpWriterProg(), Reader: l2tpReaderProg(), Hint: &hint}
	out := x.Explore(ct)
	if out.Repro == nil {
		t.Skip("no crash within budget")
	}
	var tr1, tr2 trace.Trace
	Replay(env, ct, out.Repro, &tr1)
	Replay(env, ct, out.Repro, &tr2)
	env.M.SetTrace(nil)
	if tr1.Len() != tr2.Len() {
		t.Fatalf("replay traces differ in length: %d vs %d", tr1.Len(), tr2.Len())
	}
	for i := 0; i < tr1.Len(); i++ {
		a, b := tr1.At(i), tr2.At(i)
		if a.Ins != b.Ins || a.Addr != b.Addr || a.Val != b.Val || a.Thread != b.Thread {
			t.Fatalf("replay diverged at access %d", i)
		}
	}
}
