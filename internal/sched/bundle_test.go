package sched

import (
	"path/filepath"
	"testing"

	"snowboard/internal/detect"
	"snowboard/internal/exec"
	"snowboard/internal/kernel"
	"snowboard/internal/trace"
)

func TestBundleSaveLoadReplay(t *testing.T) {
	env := exec.NewEnv(kernel.Config{Version: kernel.V5_12_RC3})
	set, hint := identifyL2TP(t, env)
	x := &Explorer{Env: env, Trials: 512, Seed: 1, Mode: ModeSnowboard, Detect: detect.DefaultOptions(), KnownPMCs: set}
	ct := ConcurrentTest{Writer: l2tpWriterProg(), Reader: l2tpReaderProg(), Hint: &hint}
	out := x.Explore(ct)
	if out.Repro == nil {
		t.Fatal("no repro state recorded")
	}

	path := filepath.Join(t.TempDir(), "bundle.json")
	b := &ReproBundle{
		Version: kernel.V5_12_RC3,
		Writer:  ct.Writer,
		Reader:  ct.Reader,
		Hint:    ct.Hint,
		State:   out.Repro,
		BugID:   12,
	}
	if err := SaveBundle(path, b); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBundle(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.BugID != 12 || got.Hint == nil || got.State == nil {
		t.Fatalf("loaded bundle: %+v", got)
	}

	// A fresh environment replays the identical crash.
	env2 := exec.NewEnv(kernel.Config{Version: got.Version})
	var tr trace.Trace
	res := Replay(env2, ConcurrentTest{Writer: got.Writer, Reader: got.Reader, Hint: got.Hint}, got.State, &tr)
	env2.M.SetTrace(nil)
	if !res.Crashed() {
		t.Fatal("bundle replay did not crash in a fresh environment")
	}
}

func TestBundleValidation(t *testing.T) {
	if err := (&ReproBundle{}).Validate(); err == nil {
		t.Fatal("empty bundle validated")
	}
	b := &ReproBundle{Writer: l2tpWriterProg(), Reader: l2tpReaderProg()}
	if err := b.Validate(); err == nil {
		t.Fatal("bundle without state validated")
	}
	if _, err := LoadBundle(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("loading absent bundle succeeded")
	}
}
