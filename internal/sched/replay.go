package sched

import (
	"sort"

	"snowboard/internal/exec"
	"snowboard/internal/pmc"
	"snowboard/internal/trace"

	"math/rand"
)

// Deterministic reproduction (§6 "Bug Diagnosis and Deterministic
// Reproduction"): a trial of Algorithm 2 is fully determined by the trial
// seed, the set of PMCs under test at trial start, and the accumulated
// flags. ReproState captures exactly that, so a bug-exposing trial can be
// re-executed on demand — "Snowboard has the benefit of providing a
// reliable environment to replicate bugs once they are found".

// AccessSig is the exported form of a scheduler access signature.
type AccessSig struct {
	Kind trace.Kind `json:"kind"`
	Ins  trace.Ins  `json:"ins"`
	Addr uint64     `json:"addr"`
	Size uint8      `json:"size"`
}

func exportSig(s sig) AccessSig {
	return AccessSig{Kind: s.kind, Ins: s.ins, Addr: s.addr, Size: s.size}
}

func importSig(s AccessSig) sig {
	return sig{kind: s.Kind, ins: s.Ins, addr: s.Addr, size: s.Size}
}

// ReproState pins one trial of one concurrent test.
type ReproState struct {
	Seed  int64       `json:"seed"`  // the trial's rng seed (base seed + trial index)
	Trial int         `json:"trial"` // informational
	PMCs  []pmc.PMC   `json:"pmcs"`  // PMCs under test when the trial started
	Flags []AccessSig `json:"flags"` // accumulated pmc_access_coming markers
	// Flips lists access indices at which the scheduler's switch decision
	// was inverted — set only for schedule-mutation trials, which replay a
	// segment-discovering schedule perturbed near its preemption points.
	Flips []int `json:"flips,omitempty"`
}

// snapshotRepro captures the pre-trial scheduler state.
func snapshotRepro(seed int64, trial int, pmcs []pmc.PMC, flags map[sig]bool) *ReproState {
	st := &ReproState{
		Seed:  seed,
		Trial: trial,
		PMCs:  append([]pmc.PMC(nil), pmcs...),
	}
	for f := range flags {
		st.Flags = append(st.Flags, exportSig(f))
	}
	sort.Slice(st.Flags, func(i, j int) bool {
		a, b := st.Flags[i], st.Flags[j]
		if a.Ins != b.Ins {
			return a.Ins < b.Ins
		}
		if a.Addr != b.Addr {
			return a.Addr < b.Addr
		}
		if a.Size != b.Size {
			return a.Size < b.Size
		}
		return a.Kind < b.Kind
	})
	return st
}

// policyFromState rebuilds the exact scheduler a recorded trial ran with:
// rng seeded from the trial seed, flags and PMCs from the snapshot, and
// any mutation flips re-applied. Both Replay and the explorer's mutated
// trials construct their policy through this, so a mutated trial is
// replayable from its ReproState alone.
func policyFromState(st *ReproState) *SnowboardPolicy {
	flags := make(map[sig]bool, len(st.Flags))
	for _, f := range st.Flags {
		flags[importSig(f)] = true
	}
	rng := rand.New(rand.NewSource(st.Seed))
	policy := NewSnowboardPolicy(rng, st.PMCs, flags)
	if len(st.Flips) > 0 {
		policy.FlipAt = make(map[int]bool, len(st.Flips))
		for _, i := range st.Flips {
			policy.FlipAt[i] = true
		}
	}
	return policy
}

// Replay re-executes exactly one trial from the recorded state and returns
// the execution result plus the trial's trace. The same kernel faults occur
// on every call: the substrate is deterministic end to end.
func Replay(env *exec.Env, ct ConcurrentTest, st *ReproState, tr *trace.Trace) exec.Result {
	policy := policyFromState(st)
	return env.RunPair(ct.Writer, ct.Reader, policy, tr)
}

// ReplayRecorded is Replay with preemption recording: it additionally
// returns the access indices at which the replayed schedule switched
// threads, in occurrence order. Triage builds its ddmin decision set from
// these — every scheduler-rolled preemption is a decision that can be
// suppressed by flipping it.
func ReplayRecorded(env *exec.Env, ct ConcurrentTest, st *ReproState, tr *trace.Trace) (exec.Result, []int) {
	policy := policyFromState(st)
	policy.RecordSwitches = true
	res := env.RunPair(ct.Writer, ct.Reader, policy, tr)
	return res, policy.SwitchEvents
}
