// Package obs is the observability layer for the Snowboard pipeline: a
// process-wide metrics registry of lock-free counters, gauges, and
// log-scale histograms, a lightweight stage/span tracer emitting a JSONL
// event log, a live introspection HTTP server (Prometheus text, expvar,
// pprof, and a /progress JSON snapshot), and a stderr diagnostics logger
// with a periodic one-line progress report.
//
// The paper's evaluation (§5.4) is built on operational numbers — tests
// profiled per second, generated tests/s, exec/min, interleavings per
// exposed bug — and this package is where those numbers come from: every
// pipeline stage bumps the registry, and reports are views over it.
//
// Counters and gauges are single atomic words; bumping one from the
// VM/scheduler hot path costs a few nanoseconds and never allocates (see
// BenchmarkCounterInc). The whole layer can be switched off with
// SetEnabled(false), which turns every bump into a checked no-op — used by
// BenchmarkObsOverhead to bound the instrumentation cost.
package obs

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Well-known metric names. Instrumented packages resolve their handles once
// at init, so the hot path is a plain atomic add; these constants exist so
// readers of /metrics, /progress, and the code agree on spelling.
const (
	// Stage 1: sequential fuzzing and profiling.
	MFuzzExecs     = "fuzz.execs"       // counter: sequential executions in the campaign
	MFuzzCrashes   = "fuzz.crashes"     // counter: discarded crashing sequential tests
	MFuzzSelected  = "fuzz.selected"    // counter: tests kept for new coverage
	MFuzzCorpus    = "fuzz.corpus_size" // gauge: current corpus size
	MFuzzEdges     = "fuzz.edges"       // gauge: distinct coverage edges
	MProfileTests  = "profile.tests"    // counter: sequential tests profiled
	MProfileAccess = "profile.accesses" // counter: shared accesses recorded

	// Stage 2: PMC identification.
	MPMCIdentified   = "pmc.identified"   // gauge: distinct PMC keys in the last identified set
	MPMCCombinations = "pmc.combinations" // gauge: uncapped (PMC, writer, reader) combinations

	// Incremental identification (pmc.Incremental): profiles diff against a
	// cumulative index instead of re-pairing the whole corpus.
	MIncrBatches    = "pmc.incremental.batches"     // counter: profile batches ingested incrementally
	MIncrDeltaPairs = "pmc.incremental.delta_pairs" // counter: combinations identified by delta scans
	MIncrReuse      = "pmc.incremental.reuse_ratio" // gauge: percent of cumulative combinations reused (not re-scanned) by the latest batch

	// Stage 3/4: generation and concurrent execution.
	MGenTests        = "gen.tests"               // counter: concurrent tests generated
	MExecTests       = "exec.tests"              // counter: concurrent tests explored
	MExecRuns        = "exec.runs"               // counter: VM executions (sequential + pair + many)
	MExecCrashes     = "exec.crashes"            // counter: executions that crashed the kernel
	MExecSteps       = "exec.steps"              // counter: VM events processed
	MSchedTrials     = "sched.trials"            // counter: interleaving trials run
	MSchedSwitches   = "sched.switches"          // counter: induced preemptions
	MSchedChannelHit = "sched.channel_hits"      // counter: hinted tests whose channel occurred
	MSchedIncidental = "sched.incidental_adopts" // counter: incidental PMCs adopted (Alg. 2 l.26–27)

	// Parallel execution engine (internal/par).
	MParWorkers      = "par.workers"          // gauge: worker goroutines in active pools
	MParQueueDepth   = "par.queue_depth"      // gauge: units not yet claimed by a worker
	MParUnits        = "par.units"            // counter: work units executed
	MParUnitDuration = "par.unit.duration_ns" // histogram: per-unit wall time

	// Oracles.
	MDetectReports = "detect.reports"      // counter: raw oracle findings (incl. re-observations)
	MDetectHarmful = "detect.harmful"      // counter: harmful findings
	MIssuesFound   = "detect.issues_found" // gauge: distinct issues in the current run's report

	// Concurrency coverage (internal/cover via core): published as gauges
	// so the time-series sampler can track them without importing cover.
	MCoverPairs    = "cover.pairs"    // gauge: distinct alias instruction pairs covered
	MCoverSegments = "cover.segments" // gauge: distinct interleaving segments covered

	// Feedback loop (core.RunFeedback). Per-cluster budget counters are
	// named MGenBudgetPrefix + a short stable cluster label; cardinality is
	// bounded by the cluster count of the chosen strategy.
	MGenBudgetPrefix = "gen.budget." // counter: tests allocated to one PMC cluster
	MFeedbackRounds  = "gen.rounds"  // counter: feedback rounds completed

	// Post-detect triage (internal/triage via core.Pipeline.TriageReport).
	MTriageFindings = "triage.findings"    // counter: crash-level findings minimized into bundles
	MTriageReplays  = "triage.replays"     // counter: replays spent by schedule/test minimization
	MTriageCached   = "triage.cache_hits"  // counter: findings restored from a stored bundle on resume
	MTriageDedup    = "triage.dedup_folds" // counter: findings that folded into an already-registered signature

	// Content-addressed artifact store (internal/store) and stage-graph
	// memoization (internal/core).
	MStoreHits         = "store.stage_hits"    // counter: pipeline stages satisfied from the store
	MStoreMisses       = "store.stage_misses"  // counter: pipeline stages that had to run
	MStoreWrites       = "store.writes"        // counter: artifact/stage files written
	MStoreBytesWritten = "store.bytes_written" // counter: payload bytes written
	MStoreCorrupt      = "store.corrupt"       // counter: artifacts that failed verification on read

	// Distributed queue. MQueueDepth aggregates the pending depth across
	// every queue in the process (each queue contributes deltas); per-queue
	// depth lives in "queue.<name>.depth" gauges.
	MQueuePush       = "queue.push"                // counter: jobs enqueued
	MQueuePop        = "queue.pop"                 // counter: jobs dequeued
	MQueueReport     = "queue.report"              // counter: results recorded
	MQueueDepth      = "queue.depth"               // gauge: jobs waiting, summed over all queues
	MQueueLease      = "queue.lease"               // counter: leases granted
	MQueueAck        = "queue.ack"                 // counter: leases acked (job done)
	MQueueNack       = "queue.nack"                // counter: leases nacked back by workers
	MQueueRedeliver  = "queue.redeliver"           // counter: jobs requeued after lease expiry or nack
	MQueueDeadLetter = "queue.dead_letter"         // counter: jobs dead-lettered after max attempts
	MQueueLeaseAge   = "queue.lease_age_ns"        // histogram: lease hold time at ack
	MQueueNetConns   = "queue.net.conns"           // counter: TCP connections accepted
	MQueueNetInFl    = "queue.net.inflight"        // gauge: connections currently served
	MQueueNetBadReq  = "queue.net.bad_requests"    // counter: malformed/unknown requests answered
	MQueueNetPop     = "queue.net.pop"             // counter: pop ops served
	MQueueNetPush    = "queue.net.push"            // counter: push ops served
	MQueueNetReport  = "queue.net.report"          // counter: report ops served
	MQueueNetLease   = "queue.net.lease"           // counter: lease ops served
	MQueueNetAck     = "queue.net.ack"             // counter: ack ops served
	MQueueNetNack    = "queue.net.nack"            // counter: nack ops served
	MQueueNetExtend  = "queue.net.extend"          // counter: extend ops served
	MQueueNetUnknown = "queue.net.unknown_op"      // counter: unknown ops answered
	MQueueNetReconn  = "queue.net.reconnects"      // counter: client reconnects after I/O errors
	MQueueNetBigFrm  = "queue.net.frame_too_large" // counter: frames rejected by the size cap

	// Worker-process health (cmd/sbexec).
	MWorkerPoisoned = "worker.poisoned" // counter: jobs nacked as unprocessable by a worker

	// Introspection-server health.
	MObsServeErrors = "obs.http.serve_errors" // counter: introspection listeners that failed while serving
)

// Scope prefixes metric names, giving one component — or one campaign in
// a multi-tenant server — its own namespace inside the shared registry.
type Scope string

// CampaignScope returns the metric namespace for one campaign, e.g.
// CampaignScope("c1").C("execs") resolves "campaign.c1.execs".
func CampaignScope(id string) Scope { return Scope("campaign." + id) }

// C resolves a scoped counter.
func (s Scope) C(name string) *Counter { return C(string(s) + "." + name) }

// G resolves a scoped gauge.
func (s Scope) G(name string) *Gauge { return G(string(s) + "." + name) }

// H resolves a scoped histogram.
func (s Scope) H(name string) *Histogram { return H(string(s) + "." + name) }

// enabled gates every bump and span; on by default.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// SetEnabled switches the whole layer on or off. Disabled, every counter
// bump, gauge store, histogram observation, and span becomes a checked
// no-op; the registry keeps its contents.
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether the layer is active.
func Enabled() bool { return enabled.Load() }

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil || !enabled.Load() {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous atomic value.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil || !enabled.Load() {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by n (useful for in-flight tracking).
func (g *Gauge) Add(n int64) {
	if g == nil || !enabled.Load() {
		return
	}
	g.v.Add(n)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the number of log2 histogram buckets: bucket 0 holds the
// value 0 (and negatives, clamped), bucket i≥1 holds values in
// [2^(i-1), 2^i), i.e. upper bound 2^i-1.
const histBuckets = 64

// Histogram is a log-scale (power-of-two bucket) histogram of int64
// observations, typically duration nanoseconds. All fields are atomics, so
// Observe is lock-free and allocation-free.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// bucketOf maps an observation to its bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	i := bits.Len64(uint64(v))
	if i >= histBuckets {
		i = histBuckets - 1
	}
	return i
}

// BucketUpper returns the inclusive upper bound of bucket i.
func BucketUpper(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= 63 {
		return int64(^uint64(0) >> 1)
	}
	return int64(1)<<uint(i) - 1
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil || !enabled.Load() {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketOf(v)].Add(1)
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Registry is a named collection of metrics. The zero value is not usable;
// call NewRegistry. The process-wide instance is Default.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	start    time.Time
}

// NewRegistry returns an empty registry anchored at the current time
// (uptime in snapshots is measured from here).
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		start:    time.Now(),
	}
}

// Default is the process-wide registry every package-level metric lives in
// and the introspection server exposes.
var Default = NewRegistry()

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Reset zeroes every metric in place. Handles obtained earlier stay valid
// (they are the same objects); intended for tests and benchmarks.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.v.Store(0)
	}
	for _, h := range r.hists {
		h.count.Store(0)
		h.sum.Store(0)
		for i := range h.buckets {
			h.buckets[i].Store(0)
		}
	}
	r.start = time.Now()
}

// C returns a counter from the Default registry.
func C(name string) *Counter { return Default.Counter(name) }

// G returns a gauge from the Default registry.
func G(name string) *Gauge { return Default.Gauge(name) }

// H returns a histogram from the Default registry.
func H(name string) *Histogram { return Default.Histogram(name) }

// HistogramSnapshot is the frozen state of one histogram.
type HistogramSnapshot struct {
	Count   int64   `json:"count"`
	Sum     int64   `json:"sum"`
	Buckets []int64 `json:"buckets,omitempty"` // log2 buckets, trailing zeros trimmed
}

// Mean returns the mean observation, or 0 with no observations.
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Quantile estimates the q-quantile (q in [0,1], e.g. 0.5 or 0.99) from the
// log2 buckets: it locates the bucket holding the target rank and
// interpolates linearly within it. Resolution is bounded by the bucket
// width — at most a factor of two — which is plenty for p50/p99 latency
// readouts. Returns 0 with no observations.
func (h HistogramSnapshot) Quantile(q float64) int64 {
	total := int64(0)
	for _, n := range h.Buckets {
		total += n
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	cum := int64(0)
	for i, n := range h.Buckets {
		if n == 0 {
			continue
		}
		cum += n
		if cum >= rank {
			lo := int64(0)
			if i > 0 {
				lo = BucketUpper(i-1) + 1
			}
			hi := BucketUpper(i)
			frac := float64(rank-(cum-n)) / float64(n)
			return lo + int64(frac*float64(hi-lo))
		}
	}
	return BucketUpper(len(h.Buckets) - 1)
}

// Snapshot is a point-in-time view of a registry, safe to serialize.
// Individual values are loaded atomically; the set as a whole is gathered
// while bumps may be in flight, so cross-metric invariants are approximate
// during a live run and exact once the producers have stopped.
type Snapshot struct {
	TakenAt    time.Time                    `json:"taken_at"`
	UptimeSec  float64                      `json:"uptime_sec"`
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := time.Now()
	s := Snapshot{
		TakenAt:    now,
		UptimeSec:  now.Sub(r.start).Seconds(),
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.v.Load()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.v.Load()
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
		top := -1
		var buckets [histBuckets]int64
		for i := range h.buckets {
			buckets[i] = h.buckets[i].Load()
			if buckets[i] != 0 {
				top = i
			}
		}
		if top >= 0 {
			hs.Buckets = append([]int64(nil), buckets[:top+1]...)
		}
		s.Histograms[name] = hs
	}
	return s
}

// Counter returns a counter value from the snapshot (0 if absent).
func (s Snapshot) Counter(name string) int64 { return s.Counters[name] }

// Gauge returns a gauge value from the snapshot (0 if absent).
func (s Snapshot) Gauge(name string) int64 { return s.Gauges[name] }

// Histogram returns a histogram from the snapshot (zero value if absent).
func (s Snapshot) Histogram(name string) HistogramSnapshot { return s.Histograms[name] }

// Sub returns the per-metric difference s - prev: counters and histogram
// counts/sums subtract; gauges keep s's instantaneous values. Use it to
// scope a shared registry to one pipeline run.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	out := Snapshot{
		TakenAt:    s.TakenAt,
		UptimeSec:  s.UptimeSec - prev.UptimeSec,
		Counters:   make(map[string]int64, len(s.Counters)),
		Gauges:     make(map[string]int64, len(s.Gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(s.Histograms)),
	}
	for name, v := range s.Counters {
		out.Counters[name] = v - prev.Counters[name]
	}
	for name, v := range s.Gauges {
		out.Gauges[name] = v
	}
	for name, h := range s.Histograms {
		p := prev.Histograms[name]
		d := HistogramSnapshot{Count: h.Count - p.Count, Sum: h.Sum - p.Sum}
		if len(h.Buckets) > 0 {
			d.Buckets = make([]int64, len(h.Buckets))
			copy(d.Buckets, h.Buckets)
			for i := 0; i < len(p.Buckets) && i < len(d.Buckets); i++ {
				d.Buckets[i] -= p.Buckets[i]
			}
		}
		out.Histograms[name] = d
	}
	return out
}

// promName maps an internal dotted metric name to a valid Prometheus
// identifier: snowboard_ prefix, invalid runes replaced with '_'.
func promName(name string) string {
	b := []byte("snowboard_" + name)
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == ':':
		default:
			b[i] = '_'
		}
	}
	return string(b)
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (counters, gauges, and classic cumulative-bucket histograms),
// sorted by name for stable output.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[name]); err != nil {
			return err
		}
	}
	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", pn, pn, s.Gauges[name]); err != nil {
			return err
		}
	}
	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
			return err
		}
		cum := int64(0)
		for i, n := range h.Buckets {
			cum += n
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", pn, BucketUpper(i), cum); err != nil {
				return err
			}
		}
		// Snapshot loads count before buckets, so a bump landing in between
		// can leave cum > Count; clamp the +Inf bucket and _count up to cum
		// so the exposition stays a valid (monotone) Prometheus histogram
		// even mid-run.
		total := h.Count
		if cum > total {
			total = cum
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
			pn, total, pn, h.Sum, pn, total); err != nil {
			return err
		}
	}
	return nil
}
