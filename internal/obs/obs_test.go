package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test.counter")
	if reg.Counter("test.counter") != c {
		t.Fatal("same name must return the same counter")
	}
	const goroutines, bumps = 32, 10_000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < bumps; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*bumps {
		t.Fatalf("counter = %d, want %d", got, goroutines*bumps)
	}
}

func TestGaugeConcurrent(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("test.inflight")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 0 {
		t.Fatalf("gauge = %d, want 0 after balanced adds", got)
	}
	g.Set(42)
	if got := g.Value(); got != 42 {
		t.Fatalf("gauge = %d, want 42", got)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		v      int64
		bucket int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1023, 10}, {1024, 11}, {1 << 40, 41}, {int64(1)<<62 + 1, 63},
	}
	for _, tc := range cases {
		if got := bucketOf(tc.v); got != tc.bucket {
			t.Errorf("bucketOf(%d) = %d, want %d", tc.v, got, tc.bucket)
		}
	}
	// Bucket i's inclusive upper bound must admit exactly the values the
	// bucket function assigns to it.
	for i := 1; i < 62; i++ {
		up := BucketUpper(i)
		if bucketOf(up) != i {
			t.Errorf("BucketUpper(%d) = %d lands in bucket %d", i, up, bucketOf(up))
		}
		if bucketOf(up+1) != i+1 {
			t.Errorf("BucketUpper(%d)+1 = %d lands in bucket %d, want %d", i, up+1, bucketOf(up+1), i+1)
		}
	}

	reg := NewRegistry()
	h := reg.Histogram("test.hist")
	for _, v := range []int64{0, 1, 2, 3, 1000, 1 << 20} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if want := int64(0 + 1 + 2 + 3 + 1000 + 1<<20); h.Sum() != want {
		t.Fatalf("sum = %d, want %d", h.Sum(), want)
	}
	hs := reg.Snapshot().Histogram("test.hist")
	var n int64
	for _, b := range hs.Buckets {
		n += b
	}
	if n != hs.Count {
		t.Fatalf("bucket total %d != count %d", n, hs.Count)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("test.conc")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				h.Observe(int64(g*i) % 4096)
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != 8*5000 {
		t.Fatalf("count = %d, want %d", h.Count(), 8*5000)
	}
}

func TestSnapshotConsistencyAndDelta(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c")
	g := reg.Gauge("g")
	h := reg.Histogram("h")
	c.Add(10)
	g.Set(5)
	h.Observe(100)
	s1 := reg.Snapshot()
	c.Add(7)
	g.Set(9)
	h.Observe(200)
	s2 := reg.Snapshot()

	if s1.Counter("c") != 10 || s2.Counter("c") != 17 {
		t.Fatalf("counters: %d, %d", s1.Counter("c"), s2.Counter("c"))
	}
	d := s2.Sub(s1)
	if d.Counter("c") != 7 {
		t.Fatalf("delta counter = %d, want 7", d.Counter("c"))
	}
	if d.Gauge("g") != 9 {
		t.Fatalf("delta gauge = %d, want instantaneous 9", d.Gauge("g"))
	}
	dh := d.Histogram("h")
	if dh.Count != 1 || dh.Sum != 200 {
		t.Fatalf("delta hist = %+v, want count 1 sum 200", dh)
	}
	// Snapshots are value copies: mutating the registry later must not
	// change an already-taken snapshot.
	c.Add(100)
	if s2.Counter("c") != 17 {
		t.Fatalf("snapshot mutated: %d", s2.Counter("c"))
	}
}

func TestSnapshotUnderConcurrentBumps(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					c.Inc()
				}
			}
		}()
	}
	var last int64
	for i := 0; i < 100; i++ {
		s := reg.Snapshot()
		v := s.Counter("c")
		if v < last {
			t.Fatalf("snapshot counter went backwards: %d < %d", v, last)
		}
		last = v
	}
	close(stop)
	wg.Wait()
}

func TestSetEnabled(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c")
	SetEnabled(false)
	c.Inc()
	reg.Gauge("g").Set(1)
	reg.Histogram("h").Observe(1)
	if sp := StartSpan("x"); sp != nil {
		t.Error("StartSpan must return nil while disabled")
	}
	SetEnabled(true)
	if c.Value() != 0 || reg.Gauge("g").Value() != 0 || reg.Histogram("h").Count() != 0 {
		t.Fatal("bumps while disabled must be no-ops")
	}
	c.Inc()
	if c.Value() != 1 {
		t.Fatal("re-enabled counter must bump")
	}
}

func TestNilSafety(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var sp *Span
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || sp.End() != 0 {
		t.Fatal("nil metrics must be inert")
	}
}

func TestSpanFeedsHistogramAndJSONL(t *testing.T) {
	reg := NewRegistry()
	var buf bytes.Buffer
	tr := NewTracer(&buf, reg)
	sp := tr.Start("stage.demo", A("k", "v"))
	time.Sleep(time.Millisecond)
	dur := sp.End(A("outcome", 3))
	if dur < time.Millisecond {
		t.Fatalf("span duration %v too short", dur)
	}
	h := reg.Snapshot().Histogram("stage.demo.duration_ns")
	if h.Count != 1 || h.Sum != int64(dur) {
		t.Fatalf("histogram = %+v, want count 1 sum %d", h, int64(dur))
	}
	var ev struct {
		Event string         `json:"ev"`
		Name  string         `json:"name"`
		DurNS int64          `json:"dur_ns"`
		Attrs map[string]any `json:"attrs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &ev); err != nil {
		t.Fatalf("JSONL event: %v (%q)", err, buf.String())
	}
	if ev.Event != "span" || ev.Name != "stage.demo" || ev.DurNS != int64(dur) {
		t.Fatalf("event = %+v", ev)
	}
	if ev.Attrs["k"] != "v" || ev.Attrs["outcome"] != float64(3) {
		t.Fatalf("attrs = %v", ev.Attrs)
	}
}

func TestPrometheusExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("exec.tests").Add(5)
	reg.Gauge("fuzz.corpus_size").Set(7)
	reg.Histogram("stage.exec.duration_ns").Observe(3)
	var buf bytes.Buffer
	if err := reg.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE snowboard_exec_tests counter",
		"snowboard_exec_tests 5",
		"# TYPE snowboard_fuzz_corpus_size gauge",
		"snowboard_fuzz_corpus_size 7",
		"# TYPE snowboard_stage_exec_duration_ns histogram",
		`snowboard_stage_exec_duration_ns_bucket{le="3"} 1`,
		`snowboard_stage_exec_duration_ns_bucket{le="+Inf"} 1`,
		"snowboard_stage_exec_duration_ns_sum 3",
		"snowboard_stage_exec_duration_ns_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryReset(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c")
	c.Add(9)
	reg.Histogram("h").Observe(4)
	reg.Reset()
	if c.Value() != 0 {
		t.Fatal("reset must zero counters in place")
	}
	if reg.Counter("c") != c {
		t.Fatal("reset must keep handle identity")
	}
	if reg.Snapshot().Histogram("h").Count != 0 {
		t.Fatal("reset must zero histograms")
	}
}

func TestProgressFrom(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(MExecTests).Add(10)
	reg.Gauge(MFuzzCorpus).Set(120)
	reg.Gauge(MIssuesFound).Set(4)
	// 10 tests in 2 minutes of exec.test span time -> 5 exec/min.
	h := reg.Histogram("exec.test.duration_ns")
	for i := 0; i < 10; i++ {
		h.Observe(int64(12 * time.Second))
	}
	p := ProgressFrom(reg.Snapshot())
	if p.TestsExecuted != 10 || p.CorpusSize != 120 || p.IssuesFound != 4 {
		t.Fatalf("progress = %+v", p)
	}
	if p.ExecPerMin < 4.99 || p.ExecPerMin > 5.01 {
		t.Fatalf("exec/min = %v, want 5", p.ExecPerMin)
	}
	if !strings.Contains(p.String(), "exec/min=5.0") {
		t.Fatalf("progress line: %s", p.String())
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}
