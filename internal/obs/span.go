package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Attr is one key/value attribute attached to a span event.
type Attr struct {
	Key   string
	Value any
}

// A builds an attribute.
func A(key string, value any) Attr { return Attr{Key: key, Value: value} }

// Tracer records begin/end spans for pipeline stages and per-test
// executions. Every ended span feeds the registry histogram
// "<name>.duration_ns"; when a sink is attached, it also appends one JSONL
// event per span. A nil sink tracer is cheap: one time.Now per edge and one
// histogram observation, no encoding.
type Tracer struct {
	reg *Registry

	mu  sync.Mutex
	enc *json.Encoder
}

// NewTracer returns a tracer feeding reg (Default when nil), writing JSONL
// events to w (nil discards events).
func NewTracer(w io.Writer, reg *Registry) *Tracer {
	if reg == nil {
		reg = Default
	}
	t := &Tracer{reg: reg}
	if w != nil {
		t.enc = json.NewEncoder(w)
	}
	return t
}

// defaultTracer backs the package-level StartSpan; its sink is set with
// SetTraceSink.
var defaultTracer = NewTracer(nil, nil)

// SetTraceSink attaches (or, with nil, detaches) the JSONL event sink of
// the default tracer. The writer is serialized by the tracer's own lock.
func SetTraceSink(w io.Writer) {
	defaultTracer.mu.Lock()
	defer defaultTracer.mu.Unlock()
	if w == nil {
		defaultTracer.enc = nil
	} else {
		defaultTracer.enc = json.NewEncoder(w)
	}
}

// Span is one in-flight timed region. A nil span (tracing disabled) is
// safe to End.
type Span struct {
	tr    *Tracer
	name  string
	start time.Time
	attrs []Attr
}

// StartSpan begins a span on the default tracer. Returns nil when the
// layer is disabled.
func StartSpan(name string, attrs ...Attr) *Span { return defaultTracer.Start(name, attrs...) }

// Start begins a span.
func (t *Tracer) Start(name string, attrs ...Attr) *Span {
	if !enabled.Load() {
		return nil
	}
	return &Span{tr: t, name: name, start: time.Now(), attrs: attrs}
}

// spanEvent is the JSONL wire form of a completed span.
type spanEvent struct {
	Event string         `json:"ev"`
	Name  string         `json:"name"`
	Start string         `json:"start"`
	DurNS int64          `json:"dur_ns"`
	Attrs map[string]any `json:"attrs,omitempty"`
}

// End completes the span, recording its duration into the registry
// histogram "<name>.duration_ns" and emitting a JSONL event when a sink is
// attached. Extra attributes (outcomes known only at the end) are merged
// with the start attributes. Returns the measured duration.
func (s *Span) End(extra ...Attr) time.Duration {
	if s == nil {
		return 0
	}
	dur := time.Since(s.start)
	s.tr.reg.Histogram(s.name + ".duration_ns").Observe(int64(dur))
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	if s.tr.enc == nil {
		return dur
	}
	ev := spanEvent{
		Event: "span",
		Name:  s.name,
		Start: s.start.Format(time.RFC3339Nano),
		DurNS: int64(dur),
	}
	if len(s.attrs)+len(extra) > 0 {
		ev.Attrs = make(map[string]any, len(s.attrs)+len(extra))
		for _, a := range s.attrs {
			ev.Attrs[a.Key] = a.Value
		}
		for _, a := range extra {
			ev.Attrs[a.Key] = a.Value
		}
	}
	_ = s.tr.enc.Encode(ev)
	return dur
}
