package obs

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// The flight recorder: a typed, race-safe structured event log capturing
// what happened to a campaign over time — stage completions, per-test
// outcomes, coverage growth, queue delivery decisions — at a granularity
// the point-in-time metrics registry cannot express. Events are appended
// to a bounded lock-free ring (old events are overwritten, never blocking
// a producer) and optionally mirrored to a JSONL sink; readers page
// through them with Since, and the introspection server serves them at
// /events?since=N.
//
// Emission sites are per-test / per-stage / per-job, never per-access, so
// the recorder stays within the observability layer's ≤5% overhead budget
// (see BenchmarkEventLogOverhead).

// Well-known event kinds. Attrs carry the specifics; Kind is what
// consumers filter on.
const (
	EvCampaignStart   = "campaign.start"   // a campaign (pipeline or coordinator) began
	EvCampaignDone    = "campaign.done"    // the campaign finished
	EvStageDone       = "stage.done"       // one pipeline stage completed (attrs: stage, cache, dur_ms, ...)
	EvPMCIdentified   = "pmc.identified"   // Algorithm 1 finished (attrs: keys, combinations)
	EvPMCIncremental  = "pmc.incremental"  // one profile batch ingested incrementally (attrs: batch, profiles, delta, keys)
	EvPMCTested       = "pmc.tested"       // one concurrent test explored (attrs: hinted, exercised, trials)
	EvCoverNew        = "cover.new"        // coverage grew (attrs: edges, pairs, or segments delta)
	EvFeedbackRound   = "feedback.round"   // one feedback round completed (attrs: round, tests, segments, issues)
	EvRaceFound       = "race.found"       // a crash-level oracle finding surfaced
	EvTriageMinimized = "triage.minimized" // a finding was minimized into an SBRB bundle (attrs: bug, signature, bundle, ...)
	EvExecCrash       = "exec.crash"       // a VM execution crashed the simulated kernel
	EvJobLeased       = "job.leased"       // queue: job delivered under a lease
	EvJobAcked        = "job.acked"        // queue: lease settled successfully
	EvJobNacked       = "job.nacked"       // queue: lease handed back by a worker
	EvJobExpired      = "job.expired"      // queue: lease reaped after its deadline
	EvJobDeadLetter   = "job.deadlettered" // queue: delivery attempts exhausted
)

// Event is one flight-recorder entry. Seq is a process-wide monotone
// sequence number (1-based); Trace stitches the event to a campaign (or a
// distributed job's originating campaign).
type Event struct {
	Seq   uint64         `json:"seq"`
	T     time.Time      `json:"t"`
	Kind  string         `json:"kind"`
	Trace string         `json:"trace,omitempty"`
	Attrs map[string]any `json:"attrs,omitempty"`
}

// DefaultEventRing is the bounded capacity of the process-wide event log.
const DefaultEventRing = 4096

// EventLog is a bounded, race-safe event ring. Writers are lock-free (one
// atomic sequence claim plus one atomic slot store) unless a JSONL sink is
// attached, in which case emission serializes on the sink lock so the JSONL
// stream is strictly ordered by sequence number. Readers never block
// writers.
type EventLog struct {
	seq  atomic.Uint64
	ring []atomic.Pointer[Event]
	mask uint64

	sinkOn atomic.Bool
	mu     sync.Mutex
	enc    *json.Encoder
}

// NewEventLog returns an event log holding the last size events (rounded up
// to a power of two; size <= 0 uses DefaultEventRing).
func NewEventLog(size int) *EventLog {
	if size <= 0 {
		size = DefaultEventRing
	}
	n := 1
	for n < size {
		n <<= 1
	}
	return &EventLog{ring: make([]atomic.Pointer[Event], n), mask: uint64(n - 1)}
}

// Events is the process-wide flight recorder every instrumented package
// emits into and the introspection server serves at /events.
var Events = NewEventLog(DefaultEventRing)

// SetSink attaches (nil detaches) a JSONL mirror: every emitted event is
// appended to w as one JSON line, in sequence order. The writer is
// serialized by the log's own lock.
func (l *EventLog) SetSink(w io.Writer) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if w == nil {
		l.enc = nil
		l.sinkOn.Store(false)
		return
	}
	l.enc = json.NewEncoder(w)
	l.sinkOn.Store(true)
}

// Emit appends an event with the current campaign's trace ID (empty when no
// campaign was started). Returns the assigned sequence number, 0 when the
// observability layer is disabled.
func (l *EventLog) Emit(kind string, attrs ...Attr) uint64 {
	return l.EmitTrace(CurrentTrace(), kind, attrs...)
}

// EmitTrace appends an event under an explicit trace ID (a distributed
// worker stitching a job to its originating campaign). An empty trace falls
// back to the current campaign's.
func (l *EventLog) EmitTrace(trace, kind string, attrs ...Attr) uint64 {
	if l == nil || !enabled.Load() {
		return 0
	}
	if trace == "" {
		trace = CurrentTrace()
	}
	ev := &Event{T: time.Now(), Kind: kind, Trace: trace}
	if len(attrs) > 0 {
		ev.Attrs = make(map[string]any, len(attrs))
		for _, a := range attrs {
			ev.Attrs[a.Key] = a.Value
		}
	}
	if l.sinkOn.Load() {
		// Sink attached: claim the sequence under the sink lock so the JSONL
		// stream is strictly ordered.
		l.mu.Lock()
		ev.Seq = l.seq.Add(1)
		l.ring[ev.Seq&l.mask].Store(ev)
		if l.enc != nil {
			_ = l.enc.Encode(ev)
		}
		l.mu.Unlock()
		return ev.Seq
	}
	ev.Seq = l.seq.Add(1)
	l.ring[ev.Seq&l.mask].Store(ev)
	return ev.Seq
}

// Seq returns the last assigned sequence number (0 before any emission).
func (l *EventLog) Seq() uint64 {
	if l == nil {
		return 0
	}
	return l.seq.Load()
}

// Since returns the retained events with sequence numbers strictly greater
// than n, in ascending sequence order. Events older than the ring capacity
// are gone; the caller pages with the last returned Seq.
func (l *EventLog) Since(n uint64) []Event {
	return l.sinceWhere(n, nil)
}

// SinceTrace is Since restricted to one campaign's events: only entries
// whose Trace matches are returned. Sequence numbers stay process-wide, so
// a per-campaign reader pages with the same cursor discipline as Since.
func (l *EventLog) SinceTrace(trace string, n uint64) []Event {
	return l.sinceWhere(n, func(ev *Event) bool { return ev.Trace == trace })
}

func (l *EventLog) sinceWhere(n uint64, keep func(*Event) bool) []Event {
	if l == nil {
		return nil
	}
	out := make([]Event, 0, len(l.ring))
	for i := range l.ring {
		if ev := l.ring[i].Load(); ev != nil && ev.Seq > n && (keep == nil || keep(ev)) {
			out = append(out, *ev)
		}
	}
	// Total order: Seq values are unique by construction (each emission
	// takes seq.Add(1) on the process-wide counter), so no two retained
	// events compare equal and the unstable sort cannot permute ties.
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Emit appends an event to the process-wide flight recorder.
func Emit(kind string, attrs ...Attr) uint64 { return Events.Emit(kind, attrs...) }

// EmitTrace appends an event under an explicit trace ID.
func EmitTrace(trace, kind string, attrs ...Attr) uint64 {
	return Events.EmitTrace(trace, kind, attrs...)
}

// Campaign identifies one logical testing campaign: the trace ID every
// event, span, and distributed job of the run is stitched to.
type Campaign struct {
	Trace     string    `json:"trace"`
	Name      string    `json:"name"`
	StartedAt time.Time `json:"started_at"`
}

var campaignPtr atomic.Pointer[Campaign]

// The campaign registry: every campaign started in this process, in start
// order. One process used to mean one campaign (the campaignPtr
// singleton); a multi-tenant control plane runs many at once, each with
// its own trace, and this registry is what lets readers enumerate them
// and scope the shared flight recorder per campaign (SinceTrace).
var (
	campaignsMu sync.Mutex
	campaignSet []Campaign
)

func registerCampaign(c Campaign) {
	campaignsMu.Lock()
	campaignSet = append(campaignSet, c)
	campaignsMu.Unlock()
}

// StartCampaign starts — and registers — a new campaign with a fresh
// trace ID, regardless of whether one is already running. Unlike
// EnsureCampaign it never joins an existing campaign: each call is a new
// tenant. The first campaign started in the process also becomes the
// default for Emit's trace stitching.
func StartCampaign(name string) Campaign {
	c := Campaign{Trace: NewTraceID(), Name: name, StartedAt: time.Now()}
	registerCampaign(c)
	campaignPtr.CompareAndSwap(nil, &c)
	EmitTrace(c.Trace, EvCampaignStart, A("campaign", name), A("trace", c.Trace))
	return c
}

// Campaigns returns every campaign started in this process, in start
// order.
func Campaigns() []Campaign {
	campaignsMu.Lock()
	defer campaignsMu.Unlock()
	return append([]Campaign(nil), campaignSet...)
}

// CampaignByTrace resolves a registered campaign by its trace ID.
func CampaignByTrace(trace string) (Campaign, bool) {
	campaignsMu.Lock()
	defer campaignsMu.Unlock()
	for _, c := range campaignSet {
		if c.Trace == trace {
			return c, true
		}
	}
	return Campaign{}, false
}

// NewTraceID returns a fresh 16-hex-character trace ID. Trace IDs are
// process-random, never derived from the deterministic seed: they identify
// a *run*, and deliberately stay out of reports so reports remain
// bit-identical across re-runs.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("%016x", uint64(time.Now().UnixNano()))
	}
	return hex.EncodeToString(b[:])
}

// EnsureCampaign returns the current campaign, starting one (and emitting
// campaign.start) if none exists yet. The first caller in a process wins;
// later pipelines in the same process join the existing campaign.
func EnsureCampaign(name string) Campaign {
	if c := campaignPtr.Load(); c != nil {
		return *c
	}
	c := &Campaign{Trace: NewTraceID(), Name: name, StartedAt: time.Now()}
	if !campaignPtr.CompareAndSwap(nil, c) {
		return *campaignPtr.Load()
	}
	registerCampaign(*c)
	Emit(EvCampaignStart, A("campaign", name), A("trace", c.Trace))
	return *c
}

// CurrentCampaign returns the current campaign, or nil before
// EnsureCampaign.
func CurrentCampaign() *Campaign {
	return campaignPtr.Load()
}

// CurrentTrace returns the current campaign's trace ID ("" before
// EnsureCampaign).
func CurrentTrace() string {
	if c := campaignPtr.Load(); c != nil {
		return c.Trace
	}
	return ""
}
