package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// publishOnce guards the expvar registration (expvar panics on duplicates).
var publishOnce sync.Once

func publishExpvar() {
	publishOnce.Do(func() {
		expvar.Publish("snowboard", expvar.Func(func() any { return Default.Snapshot() }))
	})
}

// Handler returns the introspection mux over the Default registry:
//
//	/metrics       Prometheus text exposition
//	/progress      JSON Progress snapshot
//	/debug/vars    expvar (includes the full registry under "snowboard")
//	/debug/pprof/  runtime profiling
func Handler() http.Handler {
	publishExpvar()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = Default.Snapshot().WritePrometheus(w)
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(ProgressNow())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "snowboard introspection\n\n/metrics\n/progress\n/debug/vars\n/debug/pprof/\n")
	})
	return mux
}

// Server is a running introspection HTTP server.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// StartHTTP serves the introspection handler on addr (e.g. ":0" or
// "127.0.0.1:8080") and returns immediately; the bound address is available
// via Addr.
func StartHTTP(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: Handler(), ReadHeaderTimeout: 5 * time.Second}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down.
func (s *Server) Close() error { return s.srv.Close() }
