package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"time"
)

// publishOnce guards the expvar registration (expvar panics on duplicates).
var publishOnce sync.Once

func publishExpvar() {
	publishOnce.Do(func() {
		expvar.Publish("snowboard", expvar.Func(func() any { return Default.Snapshot() }))
	})
}

// EventsPage is the JSON shape served at /events?since=N: the retained
// events after N plus the cursor for the next page.
type EventsPage struct {
	Since  uint64  `json:"since"`
	Next   uint64  `json:"next"` // pass back as ?since= to page
	Events []Event `json:"events"`
}

// EventsSince builds the /events page for the process-wide flight recorder.
func EventsSince(since uint64) EventsPage {
	return pageOf(since, Events.Since(since))
}

// EventsSinceTrace builds an /events page restricted to one campaign's
// trace. The cursor discipline is the same as EventsSince: Next is the
// last matching event's process-wide sequence number.
func EventsSinceTrace(trace string, since uint64) EventsPage {
	return pageOf(since, Events.SinceTrace(trace, since))
}

func pageOf(since uint64, evs []Event) EventsPage {
	next := since
	if n := len(evs); n > 0 {
		next = evs[n-1].Seq
	}
	return EventsPage{Since: since, Next: next, Events: evs}
}

// CoverageView is the JSON shape served at /coverage: the campaign
// time-series plus derived rates and plateau judgement.
type CoverageView struct {
	Samples   []Sample `json:"samples"`
	Rate      Rate     `json:"rate"`      // trailing-minute growth rates
	Overall   Rate     `json:"overall"`   // whole-series growth rates
	Plateaued bool     `json:"plateaued"` // no new pairs in the trailing minute
}

// CoverageNow builds the /coverage view from the DefaultSeries.
func CoverageNow() CoverageView {
	return CoverageView{
		Samples:   DefaultSeries.Samples(),
		Rate:      DefaultSeries.Rate(time.Minute),
		Overall:   DefaultSeries.Rate(0),
		Plateaued: DefaultSeries.Plateaued(time.Minute, 1),
	}
}

// CampaignView is the JSON shape served at /campaign: identity, live
// progress, and flight-recorder cursors for one campaign.
type CampaignView struct {
	Campaign *Campaign `json:"campaign"` // nil before the campaign starts
	Progress Progress  `json:"progress"`
	EventSeq uint64    `json:"event_seq"` // last assigned event sequence number
	Samples  int       `json:"samples"`   // time-series points retained
}

// CampaignNow builds the /campaign view.
func CampaignNow() CampaignView {
	return CampaignView{
		Campaign: CurrentCampaign(),
		Progress: ProgressNow(),
		EventSeq: Events.Seq(),
		Samples:  DefaultSeries.Len(),
	}
}

// Handler returns the introspection mux over the Default registry:
//
//	/metrics       Prometheus text exposition
//	/progress      JSON Progress snapshot
//	/events        flight-recorder events (?since=N pages by sequence number)
//	/coverage      campaign time-series with rates and plateau judgement
//	/campaign      campaign identity, live progress, recorder cursors
//	/debug/vars    expvar (includes the full registry under "snowboard")
//	/debug/pprof/  runtime profiling
func Handler() http.Handler {
	publishExpvar()
	writeJSON := func(w http.ResponseWriter, v any) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(v)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = Default.Snapshot().WritePrometheus(w)
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, ProgressNow())
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		since := uint64(0)
		if s := r.URL.Query().Get("since"); s != "" {
			n, err := strconv.ParseUint(s, 10, 64)
			if err != nil {
				http.Error(w, "bad since: "+err.Error(), http.StatusBadRequest)
				return
			}
			since = n
		}
		writeJSON(w, EventsSince(since))
	})
	mux.HandleFunc("/coverage", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, CoverageNow())
	})
	mux.HandleFunc("/campaign", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, CampaignNow())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "snowboard introspection\n\n/metrics\n/progress\n/events\n/coverage\n/campaign\n/debug/vars\n/debug/pprof/\n")
	})
	return mux
}

// Server is a running introspection HTTP server.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// StartHTTP serves the introspection handler on addr (e.g. ":0" or
// "127.0.0.1:8080") and returns immediately; the bound address is available
// via Addr.
func StartHTTP(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: Handler(), ReadHeaderTimeout: 5 * time.Second}}
	go func() {
		// Serve only returns on a fatal accept error (or deliberate
		// shutdown). Swallowing it silently leaves the process believing it
		// has an introspection endpoint it no longer has, so the failure is
		// surfaced on the diagnostic log and counted.
		if err := s.srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			C(MObsServeErrors).Inc()
			Diag.Printf("obs: introspection server on %s stopped: %v", ln.Addr(), err)
		}
	}()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down.
func (s *Server) Close() error { return s.srv.Close() }
