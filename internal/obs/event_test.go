package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
)

func TestEventLogConcurrentWriters(t *testing.T) {
	l := NewEventLog(1024)
	const writers, perWriter = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if seq := l.EmitTrace("t", EvPMCTested, A("writer", w), A("i", i)); seq == 0 {
					t.Errorf("writer %d: Emit returned seq 0", w)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := l.Seq(); got != writers*perWriter {
		t.Fatalf("Seq() = %d, want %d", got, writers*perWriter)
	}
	evs := l.Since(0)
	if len(evs) != 1024 {
		t.Fatalf("Since(0) returned %d events, want the full ring (1024)", len(evs))
	}
	seen := make(map[uint64]bool, len(evs))
	for i, ev := range evs {
		if seen[ev.Seq] {
			t.Fatalf("duplicate seq %d", ev.Seq)
		}
		seen[ev.Seq] = true
		if i > 0 && evs[i-1].Seq >= ev.Seq {
			t.Fatalf("Since not ascending: %d then %d", evs[i-1].Seq, ev.Seq)
		}
	}
}

func TestEventLogSincePagination(t *testing.T) {
	l := NewEventLog(64)
	for i := 0; i < 10; i++ {
		l.EmitTrace("", EvCoverNew, A("i", i))
	}
	page1 := l.Since(0)
	if len(page1) != 10 || page1[0].Seq != 1 || page1[9].Seq != 10 {
		t.Fatalf("Since(0) = %d events [%d..%d], want 10 [1..10]",
			len(page1), page1[0].Seq, page1[len(page1)-1].Seq)
	}
	page2 := l.Since(page1[4].Seq)
	if len(page2) != 5 || page2[0].Seq != 6 {
		t.Fatalf("Since(5) = %d events starting %d, want 5 starting 6", len(page2), page2[0].Seq)
	}
	if got := l.Since(10); len(got) != 0 {
		t.Fatalf("Since(last) = %d events, want 0", len(got))
	}
}

func TestEventLogOverwritesOldest(t *testing.T) {
	l := NewEventLog(8)
	for i := 0; i < 20; i++ {
		l.Emit(EvPMCTested, A("i", i))
	}
	evs := l.Since(0)
	if len(evs) != 8 {
		t.Fatalf("ring of 8 retains %d events", len(evs))
	}
	if evs[0].Seq != 13 || evs[7].Seq != 20 {
		t.Fatalf("retained [%d..%d], want [13..20]", evs[0].Seq, evs[7].Seq)
	}
}

func TestEventSinkJSONLOrdering(t *testing.T) {
	l := NewEventLog(256)
	var buf bytes.Buffer
	l.SetSink(&buf)
	const writers, perWriter = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				l.EmitTrace("trace-x", EvJobLeased, A("writer", w))
			}
		}(w)
	}
	wg.Wait()
	l.SetSink(nil)

	// The sink must hold every event exactly once, in strict sequence order
	// — the lock-free fast path is bypassed while a sink is attached.
	sc := bufio.NewScanner(&buf)
	var prev uint64
	lines := 0
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d not JSON: %v", lines, err)
		}
		if ev.Seq != prev+1 {
			t.Fatalf("line %d: seq %d follows %d, want strict +1 ordering", lines, ev.Seq, prev)
		}
		if ev.Trace != "trace-x" || ev.Kind != EvJobLeased {
			t.Fatalf("line %d: unexpected event %+v", lines, ev)
		}
		prev = ev.Seq
		lines++
	}
	if lines != writers*perWriter {
		t.Fatalf("sink holds %d lines, want %d", lines, writers*perWriter)
	}

	// After detaching, emission reverts to the lock-free path and the sink
	// stays untouched.
	l.Emit(EvCampaignDone)
	if buf.Len() != 0 {
		t.Fatalf("detached sink received %d bytes", buf.Len())
	}
}

func TestEventsEndpointPagination(t *testing.T) {
	// The /events endpoint serves the process-wide recorder; emit through it.
	base := Events.Seq()
	for i := 0; i < 5; i++ {
		Emit(EvStageDone, A("stage", "test"), A("i", i))
	}
	srv := httptest.NewServer(Handler())
	defer srv.Close()

	get := func(path string) EventsPage {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		var page EventsPage
		if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
			t.Fatalf("GET %s: bad JSON: %v", path, err)
		}
		return page
	}

	page := get(fmt.Sprintf("/events?since=%d", base))
	if len(page.Events) != 5 {
		t.Fatalf("/events?since=%d returned %d events, want 5", base, len(page.Events))
	}
	for i, ev := range page.Events {
		if i > 0 && page.Events[i-1].Seq >= ev.Seq {
			t.Fatalf("events not strictly ascending at %d", i)
		}
	}
	if page.Next != page.Events[4].Seq {
		t.Fatalf("Next = %d, want last seq %d", page.Next, page.Events[4].Seq)
	}

	// Paging from the cursor returns nothing new.
	empty := get(fmt.Sprintf("/events?since=%d", page.Next))
	if len(empty.Events) != 0 || empty.Next != page.Next {
		t.Fatalf("cursor page = %d events next=%d, want 0 events next=%d",
			len(empty.Events), empty.Next, page.Next)
	}

	// Bad cursors are rejected, not treated as zero.
	resp, err := http.Get(srv.URL + "/events?since=banana")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("/events?since=banana status = %d, want 400", resp.StatusCode)
	}
}

func TestEnsureCampaignSingleton(t *testing.T) {
	c1 := EnsureCampaign("test-campaign")
	if c1.Trace == "" {
		t.Fatal("campaign has no trace ID")
	}
	c2 := EnsureCampaign("other-name")
	if c2.Trace != c1.Trace {
		t.Fatalf("second EnsureCampaign returned a new trace %s != %s", c2.Trace, c1.Trace)
	}
	if CurrentTrace() != c1.Trace {
		t.Fatalf("CurrentTrace() = %q, want %q", CurrentTrace(), c1.Trace)
	}
	// Events emitted without an explicit trace inherit the campaign's.
	l := NewEventLog(8)
	l.Emit(EvCampaignDone)
	evs := l.Since(0)
	if len(evs) != 1 || evs[0].Trace != c1.Trace {
		t.Fatalf("inherited trace = %q, want %q", evs[0].Trace, c1.Trace)
	}
}

func TestStartCampaignMultiTenant(t *testing.T) {
	// Unlike EnsureCampaign, StartCampaign never joins an existing
	// campaign: a control plane hosting many tenants gets a fresh trace
	// per call, and every campaign lands in the process registry.
	before := len(Campaigns())
	a := StartCampaign("tenant-a")
	b := StartCampaign("tenant-b")
	if a.Trace == "" || b.Trace == "" {
		t.Fatal("campaign without a trace ID")
	}
	if a.Trace == b.Trace {
		t.Fatalf("StartCampaign reused trace %s", a.Trace)
	}
	all := Campaigns()
	if len(all) != before+2 {
		t.Fatalf("registry grew by %d campaigns, want 2", len(all)-before)
	}
	if all[len(all)-2].Trace != a.Trace || all[len(all)-1].Trace != b.Trace {
		t.Fatal("registry is not in start order")
	}
	got, ok := CampaignByTrace(b.Trace)
	if !ok || got.Name != "tenant-b" {
		t.Fatalf("CampaignByTrace(%s) = %+v, %v", b.Trace, got, ok)
	}
	if _, ok := CampaignByTrace("no-such-trace"); ok {
		t.Fatal("CampaignByTrace invented a campaign")
	}
}

func TestSinceTraceScopesPerCampaign(t *testing.T) {
	l := NewEventLog(64)
	for i := 0; i < 4; i++ {
		l.EmitTrace("trace-a", EvJobAcked, A("i", i))
		l.EmitTrace("trace-b", EvJobNacked, A("i", i))
	}
	a := l.SinceTrace("trace-a", 0)
	if len(a) != 4 {
		t.Fatalf("SinceTrace(trace-a) = %d events, want 4", len(a))
	}
	for i, ev := range a {
		if ev.Trace != "trace-a" || ev.Kind != EvJobAcked {
			t.Fatalf("event %d leaked from another campaign: %+v", i, ev)
		}
		if i > 0 && a[i-1].Seq >= ev.Seq {
			t.Fatalf("SinceTrace not strictly ascending at %d", i)
		}
	}
	// The cursor is the process-wide sequence number, so paging past the
	// last trace-a event yields nothing even though trace-b kept emitting.
	if got := l.SinceTrace("trace-a", a[3].Seq); len(got) != 0 {
		t.Fatalf("cursor page returned %d events, want 0", len(got))
	}
	if got := l.SinceTrace("trace-c", 0); len(got) != 0 {
		t.Fatalf("unknown trace returned %d events", len(got))
	}
}

func TestNewTraceIDUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		id := NewTraceID()
		if len(id) != 16 {
			t.Fatalf("trace ID %q has length %d, want 16", id, len(id))
		}
		if seen[id] {
			t.Fatalf("duplicate trace ID %q", id)
		}
		seen[id] = true
	}
}

func TestEventLogDisabled(t *testing.T) {
	SetEnabled(false)
	defer SetEnabled(true)
	l := NewEventLog(8)
	if seq := l.Emit(EvCampaignStart); seq != 0 {
		t.Fatalf("disabled Emit returned seq %d, want 0", seq)
	}
	if got := l.Since(0); len(got) != 0 {
		t.Fatalf("disabled log retained %d events", len(got))
	}
}

// TestSinceShuffleInvariant pins Since ordering: sequence numbers are
// unique by construction, so repeated calls must return the identical
// strictly-increasing event list even after concurrent emission.
func TestSinceShuffleInvariant(t *testing.T) {
	l := NewEventLog(1024)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				l.Emit("shuffle.test", A("g", g), A("i", i))
			}
		}(g)
	}
	wg.Wait()
	base := l.Since(0)
	if len(base) != 400 {
		t.Fatalf("events: %d", len(base))
	}
	for i := 1; i < len(base); i++ {
		if base[i].Seq <= base[i-1].Seq {
			t.Fatalf("seq not strictly increasing at %d: %d then %d", i, base[i-1].Seq, base[i].Seq)
		}
	}
	for run := 0; run < 50; run++ {
		if got := l.Since(0); !reflect.DeepEqual(got, base) {
			t.Fatalf("run %d: Since order diverged", run)
		}
	}
}
