package obs

import (
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// Logger is a timestamped diagnostics logger. The cmd tools route every
// progress/diagnostic line through it so stdout stays machine-clean for
// reports.
type Logger struct {
	mu     sync.Mutex
	w      io.Writer
	prefix string
}

// NewLogger returns a logger writing to w with the given prefix.
func NewLogger(w io.Writer, prefix string) *Logger { return &Logger{w: w, prefix: prefix} }

// Diag is the process-wide diagnostics logger, writing to stderr.
var Diag = NewLogger(os.Stderr, "snowboard")

// SetPrefix changes the logger's line prefix (typically the tool name).
func (l *Logger) SetPrefix(prefix string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.prefix = prefix
}

// SetOutput redirects the logger.
func (l *Logger) SetOutput(w io.Writer) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.w = w
}

// Printf writes one timestamped diagnostic line.
func (l *Logger) Printf(format string, args ...any) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.w == nil {
		return
	}
	fmt.Fprintf(l.w, "%s %s: %s\n", time.Now().Format("15:04:05"), l.prefix, fmt.Sprintf(format, args...))
}

// Progress is the live campaign summary served at /progress and printed by
// the periodic reporter: how far stage 1–4 have advanced and at what rate.
type Progress struct {
	UptimeSec      float64 `json:"uptime_sec"`
	FuzzExecs      int64   `json:"fuzz_execs"`
	CorpusSize     int64   `json:"corpus_size"`
	ProfiledTests  int64   `json:"profiled_tests"`
	PMCsIdentified int64   `json:"pmcs_identified"`
	TestsGenerated int64   `json:"tests_generated"`
	TestsExecuted  int64   `json:"tests_executed"`
	TestsExercised int64   `json:"tests_exercised"`
	TrialsRun      int64   `json:"trials_run"`
	Switches       int64   `json:"switches"`
	CoverPairs     int64   `json:"cover_pairs"`
	CoverSegments  int64   `json:"cover_segments"`
	IssuesFound    int64   `json:"issues_found"`
	DetectReports  int64   `json:"detect_reports"`
	QueueDepth     int64   `json:"queue_depth"`
	ExecPerMin     float64 `json:"exec_per_min"`
	ExecP50Ms      float64 `json:"exec_p50_ms"` // median concurrent-test latency
	ExecP99Ms      float64 `json:"exec_p99_ms"` // tail concurrent-test latency
}

// ProgressFrom derives the progress summary from a snapshot. ExecPerMin is
// the concurrent-test throughput over time actually spent executing (the
// exec.test span histogram), matching the paper's §5.4 exec/min metric.
func ProgressFrom(s Snapshot) Progress {
	p := Progress{
		UptimeSec:      s.UptimeSec,
		FuzzExecs:      s.Counter(MFuzzExecs),
		CorpusSize:     s.Gauge(MFuzzCorpus),
		ProfiledTests:  s.Counter(MProfileTests),
		PMCsIdentified: s.Gauge(MPMCIdentified),
		TestsGenerated: s.Counter(MGenTests),
		TestsExecuted:  s.Counter(MExecTests),
		TestsExercised: s.Counter(MSchedChannelHit),
		TrialsRun:      s.Counter(MSchedTrials),
		Switches:       s.Counter(MSchedSwitches),
		CoverPairs:     s.Gauge(MCoverPairs),
		CoverSegments:  s.Gauge(MCoverSegments),
		IssuesFound:    s.Gauge(MIssuesFound),
		DetectReports:  s.Counter(MDetectReports),
		QueueDepth:     s.Gauge(MQueueDepth),
	}
	if h := s.Histogram("exec.test.duration_ns"); h.Count > 0 && h.Sum > 0 {
		p.ExecPerMin = float64(h.Count) / (float64(h.Sum) / float64(time.Minute))
		p.ExecP50Ms = float64(h.Quantile(0.5)) / 1e6
		p.ExecP99Ms = float64(h.Quantile(0.99)) / 1e6
	}
	return p
}

// ProgressNow derives the progress summary from the Default registry.
func ProgressNow() Progress { return ProgressFrom(Default.Snapshot()) }

// String renders the one-line progress report.
func (p Progress) String() string {
	return fmt.Sprintf("progress: fuzz=%d corpus=%d profiled=%d pmcs=%d tests=%d/%d exercised=%d trials=%d issues=%d exec/min=%.1f up=%.0fs",
		p.FuzzExecs, p.CorpusSize, p.ProfiledTests, p.PMCsIdentified,
		p.TestsExecuted, p.TestsGenerated, p.TestsExercised, p.TrialsRun,
		p.IssuesFound, p.ExecPerMin, p.UptimeSec)
}

// StartProgress launches a background reporter printing one progress line
// to l every interval (Diag when l is nil). It returns a stop function;
// interval <= 0 disables reporting and returns a no-op stop.
func StartProgress(interval time.Duration, l *Logger) (stop func()) {
	if interval <= 0 {
		return func() {}
	}
	if l == nil {
		l = Diag
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				l.Printf("%s", ProgressNow())
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}
