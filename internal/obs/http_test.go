package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerEndpoints(t *testing.T) {
	// The handler serves the Default registry; bump a few process-wide
	// metrics so the exposition has something real in it.
	C(MExecTests).Inc()
	G(MFuzzCorpus).Set(3)
	H("stage.exec.duration_ns").Observe(1000)

	srv := httptest.NewServer(Handler())
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	for _, want := range []string{"snowboard_exec_tests", "snowboard_fuzz_corpus_size", "snowboard_stage_exec_duration_ns_bucket"} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	code, body = get("/progress")
	if code != http.StatusOK {
		t.Fatalf("/progress status = %d", code)
	}
	var p Progress
	if err := json.Unmarshal([]byte(body), &p); err != nil {
		t.Fatalf("/progress is not JSON: %v (%q)", err, body)
	}
	if p.TestsExecuted < 1 || p.CorpusSize != 3 {
		t.Errorf("/progress = %+v, want tests_executed >= 1 and corpus_size 3", p)
	}

	code, body = get("/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars status = %d", code)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	if _, ok := vars["snowboard"]; !ok {
		t.Error("/debug/vars missing the \"snowboard\" registry export")
	}

	if code, _ = get("/debug/pprof/"); code != http.StatusOK {
		t.Errorf("/debug/pprof/ status = %d", code)
	}
	if code, _ = get("/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline status = %d", code)
	}
	if code, _ = get("/"); code != http.StatusOK {
		t.Errorf("/ status = %d", code)
	}
	if code, _ = get("/nope"); code != http.StatusNotFound {
		t.Errorf("/nope status = %d, want 404", code)
	}
}

func TestStartHTTP(t *testing.T) {
	s, err := StartHTTP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	resp, err := http.Get("http://" + s.Addr() + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var p Progress
	if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
		t.Fatal(err)
	}
}
