package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestHandlerEndpoints(t *testing.T) {
	// The handler serves the Default registry; bump a few process-wide
	// metrics so the exposition has something real in it.
	C(MExecTests).Inc()
	G(MFuzzCorpus).Set(3)
	H("stage.exec.duration_ns").Observe(1000)

	srv := httptest.NewServer(Handler())
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	for _, want := range []string{"snowboard_exec_tests", "snowboard_fuzz_corpus_size", "snowboard_stage_exec_duration_ns_bucket"} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	code, body = get("/progress")
	if code != http.StatusOK {
		t.Fatalf("/progress status = %d", code)
	}
	var p Progress
	if err := json.Unmarshal([]byte(body), &p); err != nil {
		t.Fatalf("/progress is not JSON: %v (%q)", err, body)
	}
	if p.TestsExecuted < 1 || p.CorpusSize != 3 {
		t.Errorf("/progress = %+v, want tests_executed >= 1 and corpus_size 3", p)
	}

	code, body = get("/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars status = %d", code)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	if _, ok := vars["snowboard"]; !ok {
		t.Error("/debug/vars missing the \"snowboard\" registry export")
	}

	if code, _ = get("/debug/pprof/"); code != http.StatusOK {
		t.Errorf("/debug/pprof/ status = %d", code)
	}
	if code, _ = get("/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline status = %d", code)
	}
	if code, _ = get("/"); code != http.StatusOK {
		t.Errorf("/ status = %d", code)
	}
	if code, _ = get("/nope"); code != http.StatusNotFound {
		t.Errorf("/nope status = %d, want 404", code)
	}
}

func TestStartHTTPServeErrorSurfaced(t *testing.T) {
	s, err := StartHTTP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// Yank the listener out from under the server — the accept loop dies
	// with a real error (not ErrServerClosed), which must be counted
	// rather than silently discarded.
	before := C(MObsServeErrors).Value()
	_ = s.ln.Close()
	deadline := time.Now().Add(2 * time.Second)
	for C(MObsServeErrors).Value() == before {
		if time.Now().After(deadline) {
			t.Fatalf("%s never incremented after the listener died", MObsServeErrors)
		}
		time.Sleep(time.Millisecond)
	}
	_ = s.Close()

	// A graceful Close is not an error: the counter must not move.
	s2, err := StartHTTP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	before = C(MObsServeErrors).Value()
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if got := C(MObsServeErrors).Value(); got != before {
		t.Fatalf("graceful Close bumped %s from %d to %d", MObsServeErrors, before, got)
	}
}

func TestEventsSinceTracePage(t *testing.T) {
	trace := NewTraceID()
	base := Events.Seq()
	for i := 0; i < 3; i++ {
		EmitTrace(trace, EvJobLeased, A("i", i))
		Emit(EvCoverNew, A("i", i)) // someone else's noise
	}
	page := EventsSinceTrace(trace, base)
	if len(page.Events) != 3 {
		t.Fatalf("page holds %d events, want 3", len(page.Events))
	}
	for _, ev := range page.Events {
		if ev.Trace != trace {
			t.Fatalf("foreign event in trace page: %+v", ev)
		}
	}
	if page.Next != page.Events[2].Seq {
		t.Fatalf("Next = %d, want %d", page.Next, page.Events[2].Seq)
	}
	if again := EventsSinceTrace(trace, page.Next); len(again.Events) != 0 || again.Next != page.Next {
		t.Fatalf("cursor page = %d events next=%d, want 0 next=%d",
			len(again.Events), again.Next, page.Next)
	}
}

func TestStartHTTP(t *testing.T) {
	s, err := StartHTTP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	resp, err := http.Get("http://" + s.Addr() + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var p Progress
	if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
		t.Fatal(err)
	}
}
