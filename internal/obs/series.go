package obs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// The coverage time-series: periodic snapshots of the campaign's progress
// counters, retained as a ring of samples so exec/min, new-pairs/min, and
// plateaus are computable over any window — the signal a feedback-driven
// fuzzing loop selects on. The series is persisted through internal/store
// as an SBTS artifact keyed by (version, seed), so a killed-and-resumed
// campaign's trajectory is one continuous, post-hoc analyzable curve.

// Sample is one point of the campaign time-series: the progress counters
// that matter for rate and plateau analysis, frozen at At (unix
// nanoseconds).
type Sample struct {
	At            int64 `json:"at"` // unix ns
	FuzzExecs     int64 `json:"fuzz_execs"`
	CorpusSize    int64 `json:"corpus_size"`
	Edges         int64 `json:"edges"`
	ProfiledTests int64 `json:"profiled_tests"`
	PMCs          int64 `json:"pmcs"`
	TestsExecuted int64 `json:"tests_executed"`
	TrialsRun     int64 `json:"trials_run"`
	CoverPairs    int64 `json:"cover_pairs"`
	CoverSegments int64 `json:"cover_segments"`
	Issues        int64 `json:"issues"`
	DeadLetters   int64 `json:"dead_letters"`
}

// sampleFields enumerates a sample's non-time fields in codec order.
// CoverSegments sits last so a version-1 payload is a strict prefix.
func (s *Sample) fields() [11]*int64 {
	return [11]*int64{
		&s.FuzzExecs, &s.CorpusSize, &s.Edges, &s.ProfiledTests, &s.PMCs,
		&s.TestsExecuted, &s.TrialsRun, &s.CoverPairs, &s.Issues, &s.DeadLetters,
		&s.CoverSegments,
	}
}

// SampleFrom derives a sample from a registry snapshot.
func SampleFrom(s Snapshot) Sample {
	return Sample{
		At:            s.TakenAt.UnixNano(),
		FuzzExecs:     s.Counter(MFuzzExecs),
		CorpusSize:    s.Gauge(MFuzzCorpus),
		Edges:         s.Gauge(MFuzzEdges),
		ProfiledTests: s.Counter(MProfileTests),
		PMCs:          s.Gauge(MPMCIdentified),
		TestsExecuted: s.Counter(MExecTests),
		TrialsRun:     s.Counter(MSchedTrials),
		CoverPairs:    s.Gauge(MCoverPairs),
		CoverSegments: s.Gauge(MCoverSegments),
		Issues:        s.Gauge(MIssuesFound),
		DeadLetters:   s.Counter(MQueueDeadLetter),
	}
}

// RestoreCounters raises the live progress metrics to at least the values
// of a previously persisted sample, so a resumed campaign's samples
// continue the trajectory where the killed run left off instead of
// re-climbing from zero (cache-hit stages do no new work, so without the
// restore every resumed sample would regress to zero and wreck the
// series' rates). Metrics that have already passed the sample — a stage
// that re-ran before the store was attached — are left alone.
func RestoreCounters(last Sample) {
	counter := func(name string, v int64) {
		if c := C(name); c.Value() < v {
			c.Add(v - c.Value())
		}
	}
	gauge := func(name string, v int64) {
		if g := G(name); g.Value() < v {
			g.Set(v)
		}
	}
	counter(MFuzzExecs, last.FuzzExecs)
	gauge(MFuzzCorpus, last.CorpusSize)
	gauge(MFuzzEdges, last.Edges)
	counter(MProfileTests, last.ProfiledTests)
	gauge(MPMCIdentified, last.PMCs)
	counter(MExecTests, last.TestsExecuted)
	counter(MSchedTrials, last.TrialsRun)
	gauge(MCoverPairs, last.CoverPairs)
	gauge(MCoverSegments, last.CoverSegments)
	gauge(MIssuesFound, last.Issues)
	counter(MQueueDeadLetter, last.DeadLetters)
}

// DefaultSeriesCap bounds the retained samples; at the 1s sampler cadence
// that is hours of trajectory. Overflow drops the oldest samples.
const DefaultSeriesCap = 8192

// Series is a bounded, mutex-guarded time-series of samples, kept sorted by
// time. Merge unions a previously persisted run's samples in (deduplicated
// by timestamp), which is how a resumed campaign's trajectory stays
// continuous across process restarts.
type Series struct {
	mu      sync.Mutex
	cap     int
	samples []Sample
}

// NewSeries returns an empty series retaining up to capacity samples
// (<= 0 uses DefaultSeriesCap).
func NewSeries(capacity int) *Series {
	if capacity <= 0 {
		capacity = DefaultSeriesCap
	}
	return &Series{cap: capacity}
}

// DefaultSeries is the process-wide campaign time-series the sampler feeds
// and /coverage serves.
var DefaultSeries = NewSeries(DefaultSeriesCap)

// Append records one sample. Out-of-order appends are tolerated (the series
// re-sorts); overflow drops the oldest sample.
func (s *Series) Append(sm Sample) {
	if s == nil || !enabled.Load() {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.samples = append(s.samples, sm)
	if n := len(s.samples); n > 1 && s.samples[n-1].At < s.samples[n-2].At {
		sort.Slice(s.samples, func(i, j int) bool { return s.samples[i].At < s.samples[j].At })
	}
	if len(s.samples) > s.cap {
		s.samples = append(s.samples[:0], s.samples[len(s.samples)-s.cap:]...)
	}
}

// Merge unions older samples (e.g. a previous run's persisted SBTS artifact)
// into the series, deduplicating by timestamp, so merging the same history
// twice is a no-op.
func (s *Series) Merge(old []Sample) {
	if s == nil || len(old) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	have := make(map[int64]bool, len(s.samples))
	for _, sm := range s.samples {
		have[sm.At] = true
	}
	added := false
	for _, sm := range old {
		if !have[sm.At] {
			have[sm.At] = true
			s.samples = append(s.samples, sm)
			added = true
		}
	}
	if added {
		sort.Slice(s.samples, func(i, j int) bool { return s.samples[i].At < s.samples[j].At })
		if len(s.samples) > s.cap {
			s.samples = append(s.samples[:0], s.samples[len(s.samples)-s.cap:]...)
		}
	}
}

// Samples returns a copy of the retained samples in time order.
func (s *Series) Samples() []Sample {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Sample(nil), s.samples...)
}

// Len returns the number of retained samples.
func (s *Series) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.samples)
}

// Rate is the campaign's growth rates over a trailing window.
type Rate struct {
	WindowSec         float64 `json:"window_sec"`
	ExecPerMin        float64 `json:"exec_per_min"`         // concurrent tests per minute
	TrialsPerMin      float64 `json:"trials_per_min"`       // interleaving trials per minute
	NewPairsPerMin    float64 `json:"new_pairs_per_min"`    // fresh alias instruction pairs per minute
	NewEdgesPerMin    float64 `json:"new_edges_per_min"`    // fresh sequential coverage edges per minute
	NewSegmentsPerMin float64 `json:"new_segments_per_min"` // fresh interleaving segments per minute
}

// Rate computes growth rates over the trailing window (the whole series
// when window <= 0). With fewer than two samples every rate is zero.
func (s *Series) Rate(window time.Duration) Rate {
	samples := s.Samples()
	if len(samples) < 2 {
		return Rate{}
	}
	last := samples[len(samples)-1]
	first := samples[0]
	if window > 0 {
		cut := last.At - int64(window)
		for _, sm := range samples {
			if sm.At >= cut {
				first = sm
				break
			}
		}
	}
	dt := time.Duration(last.At - first.At)
	if dt <= 0 {
		return Rate{}
	}
	perMin := func(d int64) float64 { return float64(d) / dt.Minutes() }
	return Rate{
		WindowSec:         dt.Seconds(),
		ExecPerMin:        perMin(last.TestsExecuted - first.TestsExecuted),
		TrialsPerMin:      perMin(last.TrialsRun - first.TrialsRun),
		NewPairsPerMin:    perMin(last.CoverPairs - first.CoverPairs),
		NewEdgesPerMin:    perMin(last.Edges - first.Edges),
		NewSegmentsPerMin: perMin(last.CoverSegments - first.CoverSegments),
	}
}

// Plateaued reports whether concurrency coverage (alias instruction pairs)
// has stopped growing: the series spans at least window and the trailing
// window gained fewer than minNew pairs. It returns false while the series
// is too short to judge.
func (s *Series) Plateaued(window time.Duration, minNew int64) bool {
	samples := s.Samples()
	if len(samples) < 2 || window <= 0 {
		return false
	}
	last := samples[len(samples)-1]
	if time.Duration(last.At-samples[0].At) < window {
		return false
	}
	cut := last.At - int64(window)
	first := samples[0]
	for _, sm := range samples {
		if sm.At >= cut {
			first = sm
			break
		}
	}
	return last.CoverPairs-first.CoverPairs < minNew
}

// RecordSample snapshots the Default registry into the DefaultSeries and
// returns the sample. Pipeline stages call this at stage boundaries; the
// periodic sampler calls it on a timer.
func RecordSample() Sample {
	sm := SampleFrom(Default.Snapshot())
	DefaultSeries.Append(sm)
	return sm
}

// StartSampler launches the periodic campaign sampler, appending one sample
// to DefaultSeries every interval. Returns a stop function; interval <= 0
// disables sampling and returns a no-op stop.
func StartSampler(interval time.Duration) (stop func()) {
	if interval <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				RecordSample()
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// SBTS codec: the persisted form of a campaign time-series. Layout:
//
//	"SBTS" | version u8 | count uvarint | count x sample
//
// where each sample is 12 signed varints: the timestamp delta-encoded
// against the previous sample (absolute for the first), then the eleven
// counter fields. Version 1 payloads (ten counter fields, before
// CoverSegments) still decode — the field order makes them a strict
// prefix — so a feedback campaign can resume a pre-segment state dir.
// The store wraps the payload in its checksummed SBAR envelope, so the
// codec itself carries no checksum; truncated or oversized input fails
// loudly instead of panicking.

// SeriesCodecVersion versions the SBTS encoding.
const SeriesCodecVersion = 2

// seriesV1Fields is how many counter fields a version-1 sample carries.
const seriesV1Fields = 10

// seriesMagic is the SBTS payload magic.
const seriesMagic = "SBTS"

// maxSeriesSamples bounds a decoded sample-count claim; beyond the largest
// series any campaign writes, rejected before allocation.
const maxSeriesSamples = 1 << 20

// EncodeSeries writes samples in the SBTS format.
func EncodeSeries(w io.Writer, samples []Sample) error {
	buf := make([]byte, 0, 16+len(samples)*16)
	buf = append(buf, seriesMagic...)
	buf = append(buf, SeriesCodecVersion)
	buf = binary.AppendUvarint(buf, uint64(len(samples)))
	prevAt := int64(0)
	for i := range samples {
		sm := samples[i]
		buf = binary.AppendVarint(buf, sm.At-prevAt)
		prevAt = sm.At
		for _, f := range sm.fields() {
			buf = binary.AppendVarint(buf, *f)
		}
	}
	_, err := w.Write(buf)
	return err
}

// ErrSeriesCorrupt reports an SBTS payload that failed decoding.
var ErrSeriesCorrupt = errors.New("obs: corrupt time-series artifact")

// DecodeSeries parses an SBTS payload.
func DecodeSeries(r io.Reader) ([]Sample, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if len(data) < len(seriesMagic)+1 || string(data[:len(seriesMagic)]) != seriesMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrSeriesCorrupt)
	}
	version := data[len(seriesMagic)]
	if version != 1 && version != SeriesCodecVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrSeriesCorrupt, version)
	}
	data = data[len(seriesMagic)+1:]
	count, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, fmt.Errorf("%w: truncated count", ErrSeriesCorrupt)
	}
	if count > maxSeriesSamples {
		return nil, fmt.Errorf("%w: implausible sample count %d", ErrSeriesCorrupt, count)
	}
	data = data[n:]
	alloc := count
	if alloc > 4096 {
		alloc = 4096 // clamp preallocation against hostile count claims
	}
	out := make([]Sample, 0, alloc)
	prevAt := int64(0)
	next := func() (int64, error) {
		v, n := binary.Varint(data)
		if n <= 0 {
			return 0, fmt.Errorf("%w: truncated sample %d", ErrSeriesCorrupt, len(out))
		}
		data = data[n:]
		return v, nil
	}
	for i := uint64(0); i < count; i++ {
		var sm Sample
		d, err := next()
		if err != nil {
			return nil, err
		}
		sm.At = prevAt + d
		prevAt = sm.At
		fields := sm.fields()
		nf := len(fields)
		if version == 1 {
			nf = seriesV1Fields
		}
		for _, f := range fields[:nf] {
			if *f, err = next(); err != nil {
				return nil, err
			}
		}
		out = append(out, sm)
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrSeriesCorrupt, len(data))
	}
	return out, nil
}
