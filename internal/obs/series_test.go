package obs

import (
	"bytes"
	"testing"
	"time"
)

func sampleAt(at int64, pairs int64) Sample {
	return Sample{
		At: at, FuzzExecs: at / 2, CorpusSize: 7, Edges: at / 3,
		TestsExecuted: at / 5, TrialsRun: at * 2, CoverPairs: pairs,
	}
}

func TestSeriesAppendAndCap(t *testing.T) {
	s := NewSeries(4)
	for i := int64(1); i <= 10; i++ {
		s.Append(sampleAt(i*1000, i))
	}
	got := s.Samples()
	if len(got) != 4 {
		t.Fatalf("capped series holds %d samples, want 4", len(got))
	}
	if got[0].At != 7000 || got[3].At != 10000 {
		t.Fatalf("retained [%d..%d], want the newest [7000..10000]", got[0].At, got[3].At)
	}
}

func TestSeriesMergeIdempotent(t *testing.T) {
	s := NewSeries(0)
	s.Append(sampleAt(3000, 3))
	s.Append(sampleAt(4000, 4))
	old := []Sample{sampleAt(1000, 1), sampleAt(2000, 2), sampleAt(3000, 3)}
	s.Merge(old)
	if got := s.Len(); got != 4 {
		t.Fatalf("merged series holds %d samples, want 4 (3000 deduped)", got)
	}
	// Merging the same history again must change nothing — the compare mode
	// loads one persisted artifact into eleven pipelines.
	s.Merge(old)
	got := s.Samples()
	if len(got) != 4 {
		t.Fatalf("re-merge grew the series to %d samples", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].At >= got[i].At {
			t.Fatalf("merge broke time order at %d: %d >= %d", i, got[i-1].At, got[i].At)
		}
	}
}

func TestSeriesRateAndPlateau(t *testing.T) {
	s := NewSeries(0)
	base := time.Now().UnixNano()
	min := int64(time.Minute)
	// Coverage grows for two minutes, then flattens for two.
	s.Append(Sample{At: base, CoverPairs: 0, TestsExecuted: 0})
	s.Append(Sample{At: base + min, CoverPairs: 60, TestsExecuted: 30})
	s.Append(Sample{At: base + 2*min, CoverPairs: 120, TestsExecuted: 60})
	s.Append(Sample{At: base + 3*min, CoverPairs: 120, TestsExecuted: 90})
	s.Append(Sample{At: base + 4*min, CoverPairs: 120, TestsExecuted: 120})

	overall := s.Rate(0)
	if overall.ExecPerMin != 30 {
		t.Fatalf("overall exec/min = %v, want 30", overall.ExecPerMin)
	}
	if overall.NewPairsPerMin != 30 {
		t.Fatalf("overall pairs/min = %v, want 30", overall.NewPairsPerMin)
	}
	trailing := s.Rate(time.Minute)
	if trailing.NewPairsPerMin != 0 {
		t.Fatalf("trailing pairs/min = %v, want 0 (flat tail)", trailing.NewPairsPerMin)
	}
	if !s.Plateaued(time.Minute, 1) {
		t.Fatal("flat trailing minute must report plateaued")
	}
	if s.Plateaued(10*time.Minute, 1) {
		t.Fatal("series shorter than the window must not report plateaued")
	}

	short := NewSeries(0)
	short.Append(Sample{At: base})
	if short.Plateaued(time.Minute, 1) {
		t.Fatal("single-sample series must not report plateaued")
	}
	if r := short.Rate(0); r != (Rate{}) {
		t.Fatalf("single-sample rate = %+v, want zero", r)
	}
}

func TestSeriesCodecRoundTrip(t *testing.T) {
	cases := [][]Sample{
		nil,
		{sampleAt(1, 0)},
		{
			{At: 1700000000000000000, FuzzExecs: 400, CorpusSize: 120, Edges: 900,
				ProfiledTests: 120, PMCs: 3000, TestsExecuted: 60, TrialsRun: 960,
				CoverPairs: 210, Issues: 4, DeadLetters: 1},
			{At: 1700000001000000000, FuzzExecs: 800, CorpusSize: 120, Edges: 901,
				ProfiledTests: 240, PMCs: 3100, TestsExecuted: 120, TrialsRun: 1900,
				CoverPairs: 290, Issues: 5, DeadLetters: 1},
		},
		{sampleAt(-5, -7), sampleAt(0, 0), sampleAt(5, 7)}, // negative values survive varint
	}
	for ci, samples := range cases {
		var buf bytes.Buffer
		if err := EncodeSeries(&buf, samples); err != nil {
			t.Fatalf("case %d: encode: %v", ci, err)
		}
		got, err := DecodeSeries(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("case %d: decode: %v", ci, err)
		}
		if len(got) != len(samples) {
			t.Fatalf("case %d: %d samples round-tripped to %d", ci, len(samples), len(got))
		}
		for i := range samples {
			if got[i] != samples[i] {
				t.Fatalf("case %d sample %d: %+v != %+v", ci, i, got[i], samples[i])
			}
		}
	}
}

func TestSeriesCodecHostileInput(t *testing.T) {
	var good bytes.Buffer
	if err := EncodeSeries(&good, []Sample{sampleAt(1000, 1), sampleAt(2000, 2)}); err != nil {
		t.Fatal(err)
	}
	full := good.Bytes()

	// Every truncation of a valid payload must fail loudly, never panic or
	// return a silently short series.
	for cut := 0; cut < len(full); cut++ {
		if _, err := DecodeSeries(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d/%d decoded without error", cut, len(full))
		}
	}
	// Trailing garbage is corruption too.
	if _, err := DecodeSeries(bytes.NewReader(append(append([]byte{}, full...), 0x01))); err == nil {
		t.Fatal("trailing byte decoded without error")
	}
	// Wrong magic and wrong version.
	bad := append([]byte{}, full...)
	bad[0] = 'X'
	if _, err := DecodeSeries(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic decoded without error")
	}
	bad = append([]byte{}, full...)
	bad[4] = 99
	if _, err := DecodeSeries(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad version decoded without error")
	}
	// A hostile count claim beyond maxSeriesSamples is rejected before any
	// allocation.
	hostile := []byte("SBTS\x01\xff\xff\xff\xff\x7f")
	if _, err := DecodeSeries(bytes.NewReader(hostile)); err == nil {
		t.Fatal("implausible count decoded without error")
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q.duration_ns")
	// 100 observations of 10 and 100 observations of 1000: p50 lands in the
	// bucket holding 10, p99 in the bucket holding 1000.
	for i := 0; i < 100; i++ {
		h.Observe(10)
		h.Observe(1000)
	}
	snap := r.Snapshot().Histogram("q.duration_ns")
	p50 := snap.Quantile(0.5)
	if p50 < 8 || p50 > 15 {
		t.Fatalf("p50 = %d, want within the [8,15] bucket", p50)
	}
	p99 := snap.Quantile(0.99)
	if p99 < 512 || p99 > 1023 {
		t.Fatalf("p99 = %d, want within the [512,1023] bucket", p99)
	}
	if snap.Quantile(0) <= 0 {
		t.Fatalf("q=0 = %d, want positive (rank clamps to 1)", snap.Quantile(0))
	}
	if max := snap.Quantile(1); max < 512 {
		t.Fatalf("q=1 = %d, want in the top occupied bucket", max)
	}
	var empty HistogramSnapshot
	if got := empty.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %d, want 0", got)
	}
}

func TestPrometheusCountNeverBelowCumulative(t *testing.T) {
	// Snapshot loads count before buckets; under concurrent bumps cum can
	// exceed count. WritePrometheus must clamp so +Inf == _count and the
	// series stays monotone. Simulate the skew directly.
	snap := HistogramSnapshot{Count: 2, Sum: 30, Buckets: []int64{0, 0, 0, 3}}
	var buf bytes.Buffer
	s := Snapshot{Histograms: map[string]HistogramSnapshot{"skewed.duration_ns": snap}}
	if err := s.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`le="+Inf"} 3`, // clamped to cum, not the stale count
		"_count 3",
	} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestRecordSampleFeedsDefaultSeries(t *testing.T) {
	before := DefaultSeries.Len()
	sm := RecordSample()
	if sm.At == 0 {
		t.Fatal("RecordSample produced a zero timestamp")
	}
	if DefaultSeries.Len() != before+1 {
		t.Fatalf("DefaultSeries grew %d -> %d, want +1", before, DefaultSeries.Len())
	}
}
