package kernel

import "snowboard/internal/trace"

// The system-call table: dispatch plus the argument metadata the sequential
// test generator (internal/fuzz) uses to produce well-formed programs. The
// table index is the stable syscall number used in serialized tests.

// ArgKind classifies a syscall argument for the generator.
type ArgKind uint8

// Argument kinds.
const (
	// ArgConst arguments draw from a small set of interesting values.
	ArgConst ArgKind = iota
	// ArgFD arguments consume a file descriptor produced earlier in the
	// same program (a syzkaller-style resource).
	ArgFD
)

// ArgSpec describes one argument of a syscall.
type ArgSpec struct {
	Name string
	Kind ArgKind
	Vals []uint64 // candidate values for ArgConst
	Res  []FDKind // acceptable descriptor kinds for ArgFD (nil = any)
}

// Spec describes one syscall.
type Spec struct {
	Name string
	Args []ArgSpec
	// RetKind maps resolved argument values to the descriptor kind the
	// call produces, or FDNone. It lets socket()'s result type depend on
	// the domain argument.
	RetKind func(a []uint64) FDKind
	Fn      func(k *Kernel, p *Proc, a []uint64) int64
}

// ioctl command numbers (Linux values where they exist).
const (
	SIOCGIFMTU            = 0x8921
	SIOCSIFMTU            = 0x8922
	SIOCSIFHWADDR         = 0x8924
	SIOCGIFHWADDR         = 0x8927
	SIOCETHTOOL           = 0x8946
	SIOCDELRT             = 0x890B
	Ext4IOCSwapBoot       = 17
	BLKBSZSET             = 0x1271
	TIOCSSERIAL           = 0x541F
	SndCtlElemAddIoctl    = 0xc110
	SndCtlElemRemoveIoctl = 0xc111
)

// setsockopt option numbers.
const (
	PacketFanout      = 18
	PacketFanoutLeave = 19 // simulated explicit leave
	TCPCongestion     = 13
	TCPDefaultCC      = 14 // simulated sysctl default-CA write path
)

// Syscall numbers (table indexes).
const (
	SysSocketNr = iota
	SysConnectNr
	SysSendmsgNr
	SysGetsocknameNr
	SysSetsockoptNr
	SysIoctlNr
	SysOpenNr
	SysCloseNr
	SysReadNr
	SysWriteNr
	SysRenameNr
	SysFadviseNr
	SysMsggetNr
	SysMsgctlNr
	SysMountNr
	SysMkdirNr
	SysRmdirNr
	SysOpenatCfsNr
	NumSyscalls
)

var anySock = []FDKind{FDSockTCP, FDSockUDP, FDSockRaw6, FDSockPacket, FDSockPPP}

var (
	insSyscallSpill  = trace.DefIns("do_syscall_64:spill_arg")
	insSyscallReload = trace.DefIns("do_syscall_64:reload_arg")
	insSyscallSaveNr = trace.DefIns("do_syscall_64:save_nr")
)

// Syscalls is the system-call table, indexed by syscall number.
var Syscalls = [NumSyscalls]Spec{
	SysSocketNr: {
		Name: "socket",
		Args: []ArgSpec{
			{Name: "domain", Kind: ArgConst, Vals: []uint64{AFInet, AFInet6, AFPacket, AFPppox}},
			{Name: "type", Kind: ArgConst, Vals: []uint64{SockStream, SockDgram, SockRaw}},
			{Name: "proto", Kind: ArgConst, Vals: []uint64{0, PxProtoOL2TP}},
		},
		RetKind: func(a []uint64) FDKind {
			switch {
			case a[0] == AFInet && a[1] == SockStream:
				return FDSockTCP
			case a[0] == AFInet && a[1] == SockDgram:
				return FDSockUDP
			case a[0] == AFInet6 && a[1] == SockRaw:
				return FDSockRaw6
			case a[0] == AFPacket:
				return FDSockPacket
			case a[0] == AFPppox:
				return FDSockPPP
			}
			return FDNone
		},
		Fn: (*Kernel).SysSocket,
	},
	SysConnectNr: {
		Name: "connect",
		Args: []ArgSpec{
			{Name: "fd", Kind: ArgFD, Res: []FDKind{FDSockTCP, FDSockRaw6, FDSockPPP}},
			{Name: "addr", Kind: ArgConst, Vals: []uint64{1, 2, 3}}, // tunnel id / port
			{Name: "backing", Kind: ArgFD, Res: []FDKind{FDSockUDP, FDSockTCP}},
		},
		Fn: (*Kernel).SysConnect,
	},
	SysSendmsgNr: {
		Name: "sendmsg",
		Args: []ArgSpec{
			{Name: "fd", Kind: ArgFD, Res: anySock},
			{Name: "size", Kind: ArgConst, Vals: []uint64{64, 512, 1400, 9000}},
		},
		Fn: (*Kernel).SysSendmsg,
	},
	SysGetsocknameNr: {
		Name: "getsockname",
		Args: []ArgSpec{{Name: "fd", Kind: ArgFD, Res: anySock}},
		Fn:   (*Kernel).SysGetsockname,
	},
	SysSetsockoptNr: {
		Name: "setsockopt",
		Args: []ArgSpec{
			{Name: "fd", Kind: ArgFD, Res: anySock},
			{Name: "opt", Kind: ArgConst, Vals: []uint64{PacketFanout, PacketFanoutLeave, TCPCongestion, TCPDefaultCC}},
			{Name: "val", Kind: ArgConst, Vals: []uint64{0, 1, 2, 0xff}},
		},
		Fn: (*Kernel).SysSetsockopt,
	},
	SysIoctlNr: {
		Name: "ioctl",
		Args: []ArgSpec{
			{Name: "fd", Kind: ArgFD},
			{Name: "cmd", Kind: ArgConst, Vals: []uint64{
				SIOCGIFHWADDR, SIOCSIFHWADDR, SIOCETHTOOL, SIOCSIFMTU, SIOCGIFMTU,
				SIOCDELRT, Ext4IOCSwapBoot, BLKBSZSET, TIOCSSERIAL,
				SndCtlElemAddIoctl, SndCtlElemRemoveIoctl,
			}},
			{Name: "arg", Kind: ArgConst, Vals: []uint64{0x2, 0x55, 512, 1024, 1500, 4096}},
		},
		Fn: (*Kernel).SysIoctl,
	},
	SysOpenNr: {
		Name: "open",
		Args: []ArgSpec{
			{Name: "path", Kind: ArgConst, Vals: []uint64{0, 1, 2, 3, 4, 5, 6}},
			{Name: "flags", Kind: ArgConst, Vals: []uint64{0, 2}},
		},
		RetKind: func(a []uint64) FDKind {
			switch a[0] {
			case 0:
				return FDBlk
			case 1:
				return FDTTY
			case 2:
				return FDSnd
			default:
				return FDFile
			}
		},
		Fn: (*Kernel).SysOpen,
	},
	SysCloseNr: {
		Name: "close",
		Args: []ArgSpec{{Name: "fd", Kind: ArgFD}},
		Fn:   (*Kernel).SysClose,
	},
	SysReadNr: {
		Name: "read",
		Args: []ArgSpec{
			{Name: "fd", Kind: ArgFD, Res: []FDKind{FDFile, FDBlk}},
			{Name: "size", Kind: ArgConst, Vals: []uint64{512, 4096}},
		},
		Fn: (*Kernel).SysRead,
	},
	SysWriteNr: {
		Name: "write",
		Args: []ArgSpec{
			{Name: "fd", Kind: ArgFD, Res: []FDKind{FDFile}},
			{Name: "val", Kind: ArgConst, Vals: []uint64{7, 42, 1000, 65536}},
			{Name: "size", Kind: ArgConst, Vals: []uint64{512, 4096}},
		},
		Fn: (*Kernel).SysWrite,
	},
	SysRenameNr: {
		Name: "rename",
		Args: []ArgSpec{
			{Name: "oldpath", Kind: ArgConst, Vals: []uint64{3, 4, 5, 6}},
			{Name: "newpath", Kind: ArgConst, Vals: []uint64{3, 4, 5, 6}},
		},
		Fn: (*Kernel).SysRename,
	},
	SysFadviseNr: {
		Name: "fadvise64",
		Args: []ArgSpec{
			{Name: "fd", Kind: ArgFD, Res: []FDKind{FDFile, FDBlk}},
			{Name: "offset", Kind: ArgConst, Vals: []uint64{0, 4096}},
			{Name: "len", Kind: ArgConst, Vals: []uint64{4096, 65536}},
		},
		Fn: (*Kernel).SysFadvise,
	},
	SysMsggetNr: {
		Name: "msgget",
		Args: []ArgSpec{{Name: "key", Kind: ArgConst, Vals: []uint64{0x5ee, 0xbee, 0xcafe}}},
		Fn:   (*Kernel).SysMsgget,
	},
	SysMsgctlNr: {
		Name: "msgctl",
		Args: []ArgSpec{
			{Name: "key", Kind: ArgConst, Vals: []uint64{0x5ee, 0xbee, 0xcafe}},
			{Name: "cmd", Kind: ArgConst, Vals: []uint64{IPCRmid, IPCSet, IPCStat}},
		},
		Fn: (*Kernel).SysMsgctl,
	},
	SysMountNr: {
		Name: "mount",
		Args: []ArgSpec{},
		Fn:   (*Kernel).SysMount,
	},
	SysMkdirNr: {
		Name: "mkdir",
		Args: []ArgSpec{{Name: "name", Kind: ArgConst, Vals: []uint64{0x11, 0x22, 0x33}}},
		Fn:   (*Kernel).SysMkdir,
	},
	SysRmdirNr: {
		Name: "rmdir",
		Args: []ArgSpec{{Name: "name", Kind: ArgConst, Vals: []uint64{0x11, 0x22, 0x33}}},
		Fn:   (*Kernel).SysRmdir,
	},
	SysOpenatCfsNr: {
		Name: "openat$cfs",
		Args: []ArgSpec{{Name: "name", Kind: ArgConst, Vals: []uint64{0x11, 0x22, 0x33}}},
		Fn:   (*Kernel).SysOpenatCfs,
	},
}

// SyscallByName resolves a syscall number from its name.
func SyscallByName(name string) (int, bool) {
	for i := range Syscalls {
		if Syscalls[i].Name == name {
			return i, true
		}
	}
	return 0, false
}

// Invoke dispatches syscall nr with resolved argument values. The entry
// path spills the syscall number and arguments to the kernel stack and
// reloads them, as the compiled syscall prologue does — these accesses are
// what the ESP-based stack filter (§4.1.1) prunes from profiles.
func (k *Kernel) Invoke(p *Proc, nr int, a []uint64) int64 {
	if nr < 0 || nr >= NumSyscalls {
		return errRet(EINVAL)
	}
	spec := &Syscalls[nr]
	t := p.T
	frameSz := 8 * (len(spec.Args) + 1)
	frame := t.PushFrame(frameSz)
	t.Store(insSyscallSaveNr, frame, 8, uint64(nr))
	full := make([]uint64, len(spec.Args))
	copy(full, a)
	for i, v := range full {
		t.Store(insSyscallSpill, frame+8*uint64(i+1), 8, v)
	}
	for i := range full {
		full[i] = t.Load(insSyscallReload, frame+8*uint64(i+1), 8)
	}
	ret := spec.Fn(k, p, full)
	t.PopFrame(frameSz)
	return ret
}

// --- dispatch bodies ---

// SysConnect routes connect(2) by socket kind.
func (k *Kernel) SysConnect(p *Proc, a []uint64) int64 {
	d, ok := p.FD(a[0])
	if !ok {
		return errRet(EBADF)
	}
	switch d.Kind {
	case FDSockTCP:
		return k.TCPConnect(p.T, d.Obj)
	case FDSockRaw6:
		k.Fib6GetCookieSafe(p.T, d.Obj)
		return 0
	case FDSockPPP:
		backing, ok := p.FD(a[2])
		if !ok || (backing.Kind != FDSockUDP && backing.Kind != FDSockTCP) {
			return errRet(EBADF)
		}
		return k.PppoL2tpConnect(p.T, d.Obj, backing.Obj, a[1])
	}
	return errRet(EOPNOTSUP)
}

// SysSendmsg routes sendmsg(2) by socket kind.
func (k *Kernel) SysSendmsg(p *Proc, a []uint64) int64 {
	d, ok := p.FD(a[0])
	if !ok {
		return errRet(EBADF)
	}
	size := a[1]
	if size == 0 {
		size = 64
	}
	switch d.Kind {
	case FDSockTCP:
		return k.TCPSendmsg(p.T, d.Obj, size)
	case FDSockRaw6:
		return k.Rawv6SendHdrinc(p.T, d.Obj, size)
	case FDSockPacket:
		return k.PacketSendmsg(p.T, d.Obj, size)
	case FDSockPPP:
		return k.PppoL2tpSendmsg(p.T, d.Obj, size)
	case FDSockUDP:
		k.DevQueueXmit(p.T, k.G.Eth0, size)
		return int64(size)
	}
	return errRet(EOPNOTSUP)
}

// SysGetsockname routes getsockname(2); on packet sockets it is the issue
// #8 reader.
func (k *Kernel) SysGetsockname(p *Proc, a []uint64) int64 {
	d, ok := p.FD(a[0])
	if !ok {
		return errRet(EBADF)
	}
	if d.Kind == FDSockPacket {
		k.PacketGetname(p.T, d.Obj, p.UserBuf())
		return 0
	}
	return 0
}

// SysSetsockopt routes setsockopt(2) options.
func (k *Kernel) SysSetsockopt(p *Proc, a []uint64) int64 {
	d, ok := p.FD(a[0])
	if !ok {
		return errRet(EBADF)
	}
	opt, val := a[1], a[2]
	switch opt {
	case PacketFanout:
		if d.Kind != FDSockPacket {
			return errRet(EOPNOTSUP)
		}
		return k.FanoutAdd(p.T, d.Obj, val%4+1)
	case PacketFanoutLeave:
		if d.Kind != FDSockPacket {
			return errRet(EOPNOTSUP)
		}
		return k.FanoutRelease(p.T, d.Obj)
	case TCPCongestion:
		if d.Kind != FDSockTCP {
			return errRet(EOPNOTSUP)
		}
		return k.TCPSetCongestionControl(p.T, d.Obj, val)
	case TCPDefaultCC:
		if d.Kind != FDSockTCP {
			return errRet(EOPNOTSUP)
		}
		return k.TCPSetDefaultCongestionControl(p.T, val%4)
	}
	return errRet(EINVAL)
}

// macFromSeed derives a MAC address from an argument value.
func macFromSeed(seed uint64) [EthAlen]byte {
	var mac [EthAlen]byte
	for i := 0; i < EthAlen; i++ {
		mac[i] = byte(seed>>(8*uint(i%2))) ^ byte(0x10*i) ^ byte(seed)
	}
	mac[0] &^= 1 // not multicast
	return mac
}

// SysIoctl routes ioctl(2) by command and descriptor kind.
func (k *Kernel) SysIoctl(p *Proc, a []uint64) int64 {
	d, ok := p.FD(a[0])
	if !ok {
		return errRet(EBADF)
	}
	cmd, arg := a[1], a[2]
	isSock := d.Kind == FDSockTCP || d.Kind == FDSockUDP || d.Kind == FDSockRaw6 ||
		d.Kind == FDSockPacket || d.Kind == FDSockPPP
	switch cmd {
	case SIOCGIFHWADDR:
		if !isSock {
			return errRet(ENOTTY)
		}
		k.DevIfsiocLocked(p.T, k.G.Eth0, p.UserBuf())
		return 0
	case SIOCSIFHWADDR:
		if !isSock {
			return errRet(ENOTTY)
		}
		k.RtnlLock(p.T)
		k.EthCommitMacAddrChange(p.T, k.G.Eth0, macFromSeed(arg))
		k.RtnlUnlock(p.T)
		return 0
	case SIOCETHTOOL:
		if !isSock {
			return errRet(ENOTTY)
		}
		k.RtnlLock(p.T)
		k.E1000SetMac(p.T, k.G.Eth0, macFromSeed(arg^0xA5))
		k.RtnlUnlock(p.T)
		return 0
	case SIOCSIFMTU:
		if !isSock {
			return errRet(ENOTTY)
		}
		k.RtnlLock(p.T)
		rc := k.DevSetMtu(p.T, k.G.Eth0, arg)
		k.RtnlUnlock(p.T)
		return rc
	case SIOCGIFMTU:
		if !isSock {
			return errRet(ENOTTY)
		}
		k.RtnlLock(p.T)
		mtu := k.DevLoadMtu(p.T, k.G.Eth0)
		k.RtnlUnlock(p.T)
		return int64(mtu)
	case SIOCDELRT:
		if d.Kind != FDSockRaw6 {
			return errRet(ENOTTY)
		}
		k.Fib6CleanNode(p.T)
		return 0
	case Ext4IOCSwapBoot:
		if d.Kind != FDFile {
			return errRet(ENOTTY)
		}
		return k.Ext4SwapBootLoader(p.T, k.InodeAddr(d.Ino))
	case BLKBSZSET:
		if d.Kind != FDBlk {
			return errRet(ENOTTY)
		}
		sz := arg
		if sz != 512 && sz != 1024 && sz != 2048 && sz != 4096 {
			sz = 512
		}
		return k.SetBlocksize(p.T, sz)
	case TIOCSSERIAL:
		if d.Kind != FDTTY {
			return errRet(ENOTTY)
		}
		return k.UartDoAutoconfig(p.T)
	case SndCtlElemAddIoctl:
		if d.Kind != FDSnd {
			return errRet(ENOTTY)
		}
		sz := arg % 1024
		if sz == 0 {
			sz = 64
		}
		return k.SndCtlElemAdd(p.T, sz)
	case SndCtlElemRemoveIoctl:
		if d.Kind != FDSnd {
			return errRet(ENOTTY)
		}
		return k.SndCtlElemRemove(p.T, arg%1024+1)
	}
	return errRet(ENOTTY)
}

// SysOpen resolves the small static namespace. Paths 3..6 are ext4 files on
// inodes 1..4; opening a file re-reads the inode (checksum verification).
func (k *Kernel) SysOpen(p *Proc, a []uint64) int64 {
	switch a[0] {
	case 0:
		k.BlkdevGet(p.T)
		return p.InstallFD(FDesc{Kind: FDBlk})
	case 1:
		if rc := k.TTYPortOpen(p.T); rc != 0 {
			return rc
		}
		return p.InstallFD(FDesc{Kind: FDTTY})
	case 2:
		return p.InstallFD(FDesc{Kind: FDSnd})
	case 3, 4, 5, 6:
		ino := int(a[0]) - 2 // inodes 1..4 (inode 0 is the boot loader inode)
		if rc := k.Ext4Iget(p.T, k.InodeAddr(ino)); rc != 0 {
			return rc
		}
		return p.InstallFD(FDesc{Kind: FDFile, Ino: ino})
	}
	return errRet(ENOENT)
}

// SysClose releases a descriptor, detaching packet sockets from fanout
// groups and dropping the tty open count.
func (k *Kernel) SysClose(p *Proc, a []uint64) int64 {
	d, ok := p.FD(a[0])
	if !ok {
		return errRet(EBADF)
	}
	switch d.Kind {
	case FDSockPacket:
		k.FanoutRelease(p.T, d.Obj)
	case FDTTY:
		k.TTYPortClose(p.T)
	}
	p.CloseFD(a[0])
	return 0
}

// SysRead routes read(2): ext4 file reads and raw block-device reads.
func (k *Kernel) SysRead(p *Proc, a []uint64) int64 {
	d, ok := p.FD(a[0])
	if !ok {
		return errRet(EBADF)
	}
	switch d.Kind {
	case FDFile:
		return k.Ext4FileRead(p.T, k.InodeAddr(d.Ino))
	case FDBlk:
		if rc := k.DoMpageReadpage(p.T); rc != 0 {
			return rc
		}
		return k.SubmitBio(p.T, a[1])
	}
	return errRet(EBADF)
}

// SysWrite routes write(2) to the ext4 write path.
func (k *Kernel) SysWrite(p *Proc, a []uint64) int64 {
	d, ok := p.FD(a[0])
	if !ok || d.Kind != FDFile {
		return errRet(EBADF)
	}
	return k.Ext4FileWrite(p.T, k.InodeAddr(d.Ino), a[1], a[2])
}

// SysRename renames between two file paths, rebalancing the source inode's
// extent tree (the issue #3 writer).
func (k *Kernel) SysRename(p *Proc, a []uint64) int64 {
	if a[0] < 3 || a[0] > 6 || a[1] < 3 || a[1] > 6 {
		return errRet(ENOENT)
	}
	return k.Ext4Rename(p.T, k.InodeAddr(int(a[0])-2))
}

// SysFadvise routes fadvise64(2) to generic_fadvise (issue #5 reader).
func (k *Kernel) SysFadvise(p *Proc, a []uint64) int64 {
	if _, ok := p.FD(a[0]); !ok {
		return errRet(EBADF)
	}
	return k.GenericFadvise(p.T, a[1], a[2])
}

// SysMsgget implements msgget(2).
func (k *Kernel) SysMsgget(p *Proc, a []uint64) int64 { return k.MsgGet(p.T, a[0]) }

// SysMsgctl implements msgctl(2) (keyed by the msgget key, see MsgCtl).
func (k *Kernel) SysMsgctl(p *Proc, a []uint64) int64 { return k.MsgCtl(p.T, a[0], a[1]) }

// SysMount remounts the filesystem, the heavyweight full-table verification
// pass (§5.3.1's "heavy sequential tests ... contain the mount() call").
func (k *Kernel) SysMount(p *Proc, a []uint64) int64 { return k.Ext4Remount(p.T) }

// SysMkdir creates a configfs directory.
func (k *Kernel) SysMkdir(p *Proc, a []uint64) int64 { return k.ConfigfsMkdir(p.T, a[0]) }

// SysRmdir removes a configfs directory (issue #11 writer).
func (k *Kernel) SysRmdir(p *Proc, a []uint64) int64 { return k.ConfigfsRmdir(p.T, a[0]) }

// SysOpenatCfs opens a configfs path, driving configfs_lookup (issue #11
// reader).
func (k *Kernel) SysOpenatCfs(p *Proc, a []uint64) int64 {
	rc := k.ConfigfsLookup(p.T, a[0])
	if rc < 0 {
		return rc
	}
	return 0
}
