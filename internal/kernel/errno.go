package kernel

// Errno values returned by the simulated system calls, negated on return as
// in the Linux syscall ABI.
const (
	EPERM     = 1
	ENOENT    = 2
	EBADF     = 9
	ENOMEM    = 12
	EEXIST    = 17
	ENODEV    = 19
	ENOTDIR   = 20
	EINVAL    = 22
	ENOSPC    = 28
	EMSGSIZE  = 90
	ENOTCONN  = 107
	EALREADY  = 114
	EMFILE    = 24
	ENOTTY    = 25
	EOPNOTSUP = 95
)

// errRet converts a positive errno into the negative syscall return value.
func errRet(errno int64) int64 { return -errno }
