package kernel

import (
	"snowboard/internal/trace"
	"snowboard/internal/vm"
)

// Block layer: a single block device backing the filesystem. Carries the
// writer side of issues #5 and #6 (set_blocksize under bd_mutex against
// lockless readers in mm and fs) and issue #4 (blk_update_request observes
// a block size that changed after the request was sized — an I/O error).

// struct block_device layout.
const (
	bdevOffMutex     = 0
	bdevOffBlockSize = 8 // issues #4, #5 target
	bdevOffReqCount  = 16
	bdevOffInflight  = 24
	bdevOffOpeners   = 32
	bdevStructSz     = 40
)

var (
	insBdMutexLock    = trace.DefIns("blkdev_ioctl:bd_mutex_lock")
	insBdMutexUnlock  = trace.DefIns("blkdev_ioctl:bd_mutex_unlock")
	insSetBlocksize   = trace.DefIns("set_blocksize:store_bd_block_size")
	insSetBlkbits     = trace.DefIns("set_blocksize:store_sb_blkbits")
	insMpageLoadBits  = trace.DefIns("do_mpage_readpage:load_sb_blkbits")
	insBioLoadBS      = trace.DefIns("submit_bio:load_bd_block_size")
	insBioReqCount    = trace.DefIns("submit_bio:store_req_count")
	insBioLoadReq     = trace.DefIns("submit_bio:load_req_count")
	insBlkUpdateLoad  = trace.DefIns("blk_update_request:load_bd_block_size")
	insBlkInflightInc = trace.DefIns("blk_mq_start_request:inc_inflight")
	insBlkInflightDec = trace.DefIns("blk_mq_end_request:dec_inflight")
	insBdevOpenCount  = trace.DefIns("blkdev_get:inc_openers")
)

func (k *Kernel) bootBlock() {
	k.G.Bdev = k.staticAlloc(bdevStructSz)
	k.put(k.G.Bdev+bdevOffBlockSize, 4096)
}

// BlkdevGet accounts an opener of the block device (open("/dev/sda")).
func (k *Kernel) BlkdevGet(t *vm.Thread) {
	t.Lock(insBdMutexLock, k.G.Bdev+bdevOffMutex)
	n := t.Load(insBdevOpenCount, k.G.Bdev+bdevOffOpeners, 8)
	t.Store(insBdevOpenCount, k.G.Bdev+bdevOffOpeners, 8, n+1)
	t.Unlock(insBdMutexUnlock, k.G.Bdev+bdevOffMutex)
}

// SetBlocksize changes the device block size under bd_mutex and mirrors it
// into the superblock's blkbits. Readers in generic_fadvise (issue #5) and
// do_mpage_readpage (issue #6) take no lock.
func (k *Kernel) SetBlocksize(t *vm.Thread, size uint64) int64 {
	if size < 512 || size > 4096 || size&(size-1) != 0 {
		return errRet(EINVAL)
	}
	t.Lock(insBdMutexLock, k.G.Bdev+bdevOffMutex)
	t.Store(insSetBlocksize, k.G.Bdev+bdevOffBlockSize, 8, size)
	bits := uint64(9)
	for 1<<bits < size {
		bits++
	}
	t.Store(insSetBlkbits, k.G.Ext4Sb+sbOffBlkbits, 8, bits)
	t.Unlock(insBdMutexUnlock, k.G.Bdev+bdevOffMutex)
	return 0
}

// DoMpageReadpage maps a page worth of blocks for a read. It loads the
// superblock's blkbits with a plain, lockless read (issue #6 reader).
func (k *Kernel) DoMpageReadpage(t *vm.Thread) int64 {
	bits := t.Load(insMpageLoadBits, k.G.Ext4Sb+sbOffBlkbits, 8)
	if bits < 9 || bits > 12 {
		return errRet(EINVAL)
	}
	return 0
}

// SubmitBio sizes a request from the current block size, starts it, and
// completes it through blk_update_request, which re-reads the block size
// (issue #4): if set_blocksize ran in between, the request length no longer
// matches and the kernel logs a lost-I/O error.
func (k *Kernel) SubmitBio(t *vm.Thread, size uint64) int64 {
	bs := t.Load(insBioLoadBS, k.G.Bdev+bdevOffBlockSize, 8)
	nsect := (size + bs - 1) / bs
	if nsect == 0 {
		nsect = 1
	}
	// Request accounting uses atomic (marked) RMWs, like the real block
	// layer's percpu/atomic counters.
	reqs := t.LoadMarked(insBioLoadReq, k.G.Bdev+bdevOffReqCount, 8)
	t.StoreMarked(insBioReqCount, k.G.Bdev+bdevOffReqCount, 8, reqs+1)

	inflight := t.LoadMarked(insBlkInflightInc, k.G.Bdev+bdevOffInflight, 8)
	t.StoreMarked(insBlkInflightInc, k.G.Bdev+bdevOffInflight, 8, inflight+1)

	// blk_update_request: the device completes nsect sectors computed with
	// the *current* block size; a mismatch is an I/O error.
	cur := t.Load(insBlkUpdateLoad, k.G.Bdev+bdevOffBlockSize, 8)
	rc := int64(0)
	if cur != bs {
		k.printk("blk_update_request: I/O error, dev sda, sector %d op 0x0:(READ) flags 0x0", nsect*8)
		rc = errRet(EINVAL)
	}

	inflight = t.LoadMarked(insBlkInflightDec, k.G.Bdev+bdevOffInflight, 8)
	t.StoreMarked(insBlkInflightDec, k.G.Bdev+bdevOffInflight, 8, inflight-1)
	return rc
}
