package kernel

import (
	"snowboard/internal/trace"
	"snowboard/internal/vm"
)

// A miniature ext4: a superblock, a fixed table of inodes with single block
// pointers, per-inode checksums, and extent headers. It carries the two
// atomicity violations of Table 2's filesystem rows: issue #2
// (swap_inode_boot_loader leaves a stale checksum when a write interleaves)
// and issue #3 (the extent header magic is transiently invalid during a
// grow and a lockless reader trips over it).

// struct super_block layout.
const (
	sbOffLock       = 0
	sbOffBlkbits    = 8 // issue #6 target (set_blocksize writer / mpage reader)
	sbOffMountCount = 16
	sbOffMagic      = 24
	sbOffGeneration = 32
	sbStructSz      = 40
)

// struct ext4_inode layout; NumInodes inodes sit contiguously at G.Ext4Inodes.
const (
	inoOffLock      = 0
	inoOffBlock     = 8  // single data block pointer (issue #2 target)
	inoOffCsum      = 16 // checksum over block (issue #2 witness)
	inoOffSize      = 24
	inoOffEhMagic   = 32 // extent header magic (issue #3 target)
	inoOffEhEntries = 40
	inoOffEhDepth   = 48
	inoOffNlink     = 56
	InodeSize       = 64
)

// NumInodes is the size of the static inode table. Inode 0 is the boot
// loader inode used by EXT4_IOC_SWAP_BOOT.
const NumInodes = 6

// Ext4ExtMagic is the on-disk extent header magic (as in fs/ext4).
const Ext4ExtMagic = 0xF30A

var (
	insSbLock        = trace.DefIns("ext4_sb:lock")
	insSbUnlock      = trace.DefIns("ext4_sb:unlock")
	insInodeLock     = trace.DefIns("ext4_inode:lock")
	insInodeUnlock   = trace.DefIns("ext4_inode:unlock")
	insWriteBlock    = trace.DefIns("ext4_file_write_iter:store_i_block")
	insWriteCsum     = trace.DefIns("ext4_file_write_iter:store_i_csum")
	insWriteSize     = trace.DefIns("ext4_file_write_iter:store_i_size")
	insWriteEntries  = trace.DefIns("ext4_ext_insert_extent:store_eh_entries")
	insSwapLoadBoot  = trace.DefIns("swap_inode_boot_loader:load_boot_block")
	insSwapLoadTgt   = trace.DefIns("swap_inode_boot_loader:load_target_block")
	insSwapStoreBoot = trace.DefIns("swap_inode_boot_loader:store_boot_block")
	insSwapStoreTgt  = trace.DefIns("swap_inode_boot_loader:store_target_block")
	insSwapCsumBoot  = trace.DefIns("swap_inode_boot_loader:store_boot_csum")
	insSwapCsumTgt   = trace.DefIns("swap_inode_boot_loader:store_target_csum")
	insExtCheckMagic = trace.DefIns("ext4_ext_check_inode:load_eh_magic")
	insExtCheckEnt   = trace.DefIns("ext4_ext_check_inode:load_eh_entries")
	insGrowClear     = trace.DefIns("ext4_extent_grow:clear_eh_magic")
	insGrowEntries   = trace.DefIns("ext4_extent_grow:store_eh_entries")
	insGrowDepth     = trace.DefIns("ext4_extent_grow:store_eh_depth")
	insGrowRestore   = trace.DefIns("ext4_extent_grow:restore_eh_magic")
	insReadBlock     = trace.DefIns("ext4_file_read_iter:load_i_block")
	insReadSize      = trace.DefIns("ext4_file_read_iter:load_i_size")
	insRenameNlink   = trace.DefIns("ext4_rename:store_nlink")
	insMountCount    = trace.DefIns("ext4_remount:store_mount_count")
	insMountLoadCnt  = trace.DefIns("ext4_remount:load_mount_count")
	insMountCsum1    = trace.DefIns("ext4_remount:verify_csum_first")
	insMountCsum2    = trace.DefIns("ext4_remount:verify_csum_second")
	insMountBlock    = trace.DefIns("ext4_remount:load_i_block")
	insIgetCsum      = trace.DefIns("ext4_iget:load_i_csum")
	insIgetBlock     = trace.DefIns("ext4_iget:load_i_block")
)

func (k *Kernel) bootExt4() {
	k.G.Ext4Sb = k.staticAlloc(sbStructSz)
	k.G.Ext4Inodes = k.staticAlloc(NumInodes * InodeSize)
	k.put(k.G.Ext4Sb+sbOffBlkbits, 12) // 4KB blocks
	k.put(k.G.Ext4Sb+sbOffMagic, 0xEF53)
	k.put(k.G.Ext4Sb+sbOffGeneration, 7)
	for i := 0; i < NumInodes; i++ {
		ino := k.InodeAddr(i)
		blk := uint64(100 + i)
		k.put(ino+inoOffBlock, blk)
		k.put(ino+inoOffCsum, ext4Csum(blk, 7))
		k.put(ino+inoOffSize, 4096)
		k.put(ino+inoOffEhMagic, Ext4ExtMagic)
		k.put(ino+inoOffEhEntries, 1)
		k.put(ino+inoOffNlink, 1)
	}
}

// InodeAddr returns the guest address of inode i.
func (k *Kernel) InodeAddr(i int) uint64 {
	if i < 0 || i >= NumInodes {
		panic("kernel: inode index out of range")
	}
	return k.G.Ext4Inodes + uint64(i)*InodeSize
}

// ext4Csum is the simulated metadata checksum of a block pointer.
func ext4Csum(block, generation uint64) uint64 {
	return block*0x9E3779B1 + generation
}

// Ext4FileWrite writes to the file: it installs a new data block, updates
// the checksum and size under the inode lock, and records one extent. The
// interleaving hazard is on the *other* side (swap_boot uses the sb lock).
func (k *Kernel) Ext4FileWrite(t *vm.Thread, ino uint64, blockVal, size uint64) int64 {
	t.Lock(insInodeLock, ino+inoOffLock)
	t.Store(insWriteBlock, ino+inoOffBlock, 8, blockVal)
	t.Store(insWriteCsum, ino+inoOffCsum, 8, ext4Csum(blockVal, 7))
	t.Store(insWriteSize, ino+inoOffSize, 8, size)
	ent := t.Load(insExtCheckEnt, ino+inoOffEhEntries, 8)
	t.Store(insWriteEntries, ino+inoOffEhEntries, 8, ent)
	t.Unlock(insInodeUnlock, ino+inoOffLock)
	// Data goes to the block device.
	return k.SubmitBio(t, size)
}

// Ext4SwapBootLoader implements EXT4_IOC_SWAP_BOOT for the target inode:
// it swaps the boot inode's and the target's block pointers and rewrites
// both checksums. Issue #2: it serializes on the superblock lock while the
// write path serializes on the inode lock, so a concurrent write between
// the target-block load and the checksum store leaves csum != f(block) —
// the "swap_inode_boot_loader: checksum invalid" filesystem error.
func (k *Kernel) Ext4SwapBootLoader(t *vm.Thread, target uint64) int64 {
	boot := k.InodeAddr(0)
	if target == boot {
		return errRet(EINVAL)
	}
	t.Lock(insSbLock, k.G.Ext4Sb+sbOffLock)
	a := t.Load(insSwapLoadBoot, boot+inoOffBlock, 8)
	b := t.Load(insSwapLoadTgt, target+inoOffBlock, 8)
	t.Store(insSwapStoreBoot, boot+inoOffBlock, 8, b)
	t.Store(insSwapStoreTgt, target+inoOffBlock, 8, a)
	t.Store(insSwapCsumBoot, boot+inoOffCsum, 8, ext4Csum(b, 7))
	t.Store(insSwapCsumTgt, target+inoOffCsum, 8, ext4Csum(a, 7))
	t.Unlock(insSbUnlock, k.G.Ext4Sb+sbOffLock)
	return 0
}

// Ext4ExtCheckInode validates the extent header before use. The reader
// takes no lock (issue #3): when it observes the transiently cleared magic
// written by Ext4ExtentGrow it reports the on-disk corruption error.
func (k *Kernel) Ext4ExtCheckInode(t *vm.Thread, ino uint64) int64 {
	magic := t.Load(insExtCheckMagic, ino+inoOffEhMagic, 8)
	if magic != Ext4ExtMagic {
		inoNum := (ino - k.G.Ext4Inodes) / InodeSize
		k.printk("EXT4-fs error (device sda): ext4_ext_check_inode:444: inode #%d: comm test: pblk 0 bad header/extent: invalid magic - magic %x, entries 0",
			inoNum, magic)
		return errRet(EINVAL)
	}
	ent := t.Load(insExtCheckEnt, ino+inoOffEhEntries, 8)
	_ = ent
	return 0
}

// Ext4ExtentGrow deepens the extent tree of the inode under the inode lock,
// transiently clearing the header magic while the header is rewritten (the
// issue #3 writer; reached through rename(2), which rebalances the tree).
func (k *Kernel) Ext4ExtentGrow(t *vm.Thread, ino uint64) {
	t.Lock(insInodeLock, ino+inoOffLock)
	t.Store(insGrowClear, ino+inoOffEhMagic, 8, 0) // header invalid during rewrite
	ent := t.Load(insExtCheckEnt, ino+inoOffEhEntries, 8)
	t.Store(insGrowEntries, ino+inoOffEhEntries, 8, ent+1)
	t.Store(insGrowDepth, ino+inoOffEhDepth, 8, 1)
	t.Store(insGrowRestore, ino+inoOffEhMagic, 8, Ext4ExtMagic)
	t.Unlock(insInodeUnlock, ino+inoOffLock)
}

// Ext4FileRead reads the file's block through the page cache path:
// extent check (lockless), then block mapping and a block-device request.
func (k *Kernel) Ext4FileRead(t *vm.Thread, ino uint64) int64 {
	if rc := k.Ext4ExtCheckInode(t, ino); rc != 0 {
		return rc
	}
	// Block mapping happens under the inode lock (as the real read path
	// holds the page/buffer locks for the mapped range).
	t.Lock(insInodeLock, ino+inoOffLock)
	sz := t.Load(insReadSize, ino+inoOffSize, 8)
	blk := t.Load(insReadBlock, ino+inoOffBlock, 8)
	t.Unlock(insInodeUnlock, ino+inoOffLock)
	_ = blk
	if rc := k.DoMpageReadpage(t); rc != 0 {
		return rc
	}
	if sz > 4096 {
		sz = 4096
	}
	return int64(sz)
}

// Ext4Rename relinks the inode (nlink bump under the inode lock) and grows
// its extent tree, exercising the issue #3 writer.
func (k *Kernel) Ext4Rename(t *vm.Thread, ino uint64) int64 {
	t.Lock(insInodeLock, ino+inoOffLock)
	n := t.Load(insExtCheckEnt, ino+inoOffNlink, 8)
	t.Store(insRenameNlink, ino+inoOffNlink, 8, n)
	t.Unlock(insInodeUnlock, ino+inoOffLock)
	k.Ext4ExtentGrow(t, ino)
	return 0
}

// Ext4Remount walks the whole inode table verifying checksums, reading each
// one twice (check, then use) — the heavyweight, double-fetch-rich call
// that gives mount()-containing tests the profile §5.3.1 attributes to
// S-CH-DOUBLE selections. Mismatches print the swap_boot checksum error.
func (k *Kernel) Ext4Remount(t *vm.Thread) int64 {
	t.Lock(insSbLock, k.G.Ext4Sb+sbOffLock)
	cnt := t.Load(insMountLoadCnt, k.G.Ext4Sb+sbOffMountCount, 8)
	t.Store(insMountCount, k.G.Ext4Sb+sbOffMountCount, 8, cnt+1)
	bad := int64(0)
	for i := 0; i < NumInodes; i++ {
		ino := k.InodeAddr(i)
		t.Lock(insInodeLock, ino+inoOffLock)
		c1 := t.Load(insMountCsum1, ino+inoOffCsum, 8)
		c2 := t.Load(insMountCsum2, ino+inoOffCsum, 8) // double fetch: check, then use
		blk := t.Load(insMountBlock, ino+inoOffBlock, 8)
		t.Unlock(insInodeUnlock, ino+inoOffLock)
		if c1 != c2 || c2 != ext4Csum(blk, 7) {
			k.printk("EXT4-fs error (device sda): swap_inode_boot_loader:316: inode #%d: comm test: iget: checksum invalid", i)
			bad++
		}
	}
	t.Unlock(insSbUnlock, k.G.Ext4Sb+sbOffLock)
	if bad > 0 {
		return errRet(EINVAL)
	}
	return 0
}

// Ext4Iget re-reads an inode (open path) and verifies its checksum, which
// is how a stale checksum left by issue #2 becomes a console error.
func (k *Kernel) Ext4Iget(t *vm.Thread, ino uint64) int64 {
	t.Lock(insInodeLock, ino+inoOffLock)
	csum := t.Load(insIgetCsum, ino+inoOffCsum, 8)
	blk := t.Load(insIgetBlock, ino+inoOffBlock, 8)
	t.Unlock(insInodeUnlock, ino+inoOffLock)
	if csum != ext4Csum(blk, 7) {
		inoNum := (ino - k.G.Ext4Inodes) / InodeSize
		k.printk("EXT4-fs error (device sda): swap_inode_boot_loader:316: inode #%d: comm test: iget: checksum invalid", inoNum)
		return errRet(EINVAL)
	}
	return 0
}

// FsckHost is a host-side (untraced) consistency check run by the bug
// oracles after a trial, modeling the filesystem errors the kernel would
// report on the next mount. It returns one message per corrupted inode.
func (k *Kernel) FsckHost() []string {
	var msgs []string
	gen := k.M.Mem.Read(k.G.Ext4Sb+sbOffGeneration, 8)
	for i := 0; i < NumInodes; i++ {
		ino := k.InodeAddr(i)
		blk := k.M.Mem.Read(ino+inoOffBlock, 8)
		csum := k.M.Mem.Read(ino+inoOffCsum, 8)
		if csum != ext4Csum(blk, gen) {
			msgs = append(msgs, "EXT4-fs error (device sda): swap_inode_boot_loader: inode checksum invalid")
		}
		if k.M.Mem.Read(ino+inoOffEhMagic, 8) != Ext4ExtMagic {
			msgs = append(msgs, "EXT4-fs error (device sda): ext4_ext_check_inode: invalid magic")
		}
	}
	return msgs
}
