package kernel

import (
	"snowboard/internal/trace"
	"snowboard/internal/vm"
)

// Serial TTY port, carrying issue #14: tty_port_open() reads port->flags
// with a plain load while uart_do_autoconfig() (TIOCSSERIAL with
// ASYNC_AUTOCONF) rewrites the flags under the port mutex — the reader can
// observe the probe's transient "de-initialized" state.

// struct uart_port layout (static).
const (
	uartOffMutex     = 0
	uartOffFlags     = 8 // issue #14 target; bit0 = ASYNCB_INITIALIZED
	uartOffType      = 16
	uartOffIotype    = 24
	uartOffOpenCount = 32
	uartOffLine      = 40
	uartStructSz     = 48
)

// ASYNC flag bits (subset).
const (
	AsyncInitialized = 1 << 0
	AsyncAutoconf    = 1 << 1
)

var (
	insUartMutexLock   = trace.DefIns("uart_port:mutex_lock")
	insUartMutexUnlock = trace.DefIns("uart_port:mutex_unlock")
	insTTYOpenFlags    = trace.DefIns("tty_port_open:load_port_flags")
	insTTYOpenCount    = trace.DefIns("tty_port_open:inc_open_count")
	insTTYOpenInit     = trace.DefIns("tty_port_open:store_port_flags")
	insAutoconfClear   = trace.DefIns("uart_do_autoconfig:clear_port_flags")
	insAutoconfProbe   = trace.DefIns("uart_do_autoconfig:store_port_type")
	insAutoconfIotype  = trace.DefIns("uart_do_autoconfig:store_iotype")
	insAutoconfSet     = trace.DefIns("uart_do_autoconfig:set_port_flags")
	insTTYCloseCount   = trace.DefIns("tty_port_close:dec_open_count")
)

func (k *Kernel) bootTTY() {
	k.G.UartPort = k.staticAlloc(uartStructSz)
	k.put(k.G.UartPort+uartOffFlags, AsyncInitialized)
	k.put(k.G.UartPort+uartOffType, 2 /* PORT_16550A */)
	k.put(k.G.UartPort+uartOffLine, 0)
}

// TTYPortOpen opens /dev/ttyS0. The flags check is a plain unlocked load
// (the issue #14 reader); the open count is maintained under the mutex.
func (k *Kernel) TTYPortOpen(t *vm.Thread) int64 {
	flags := t.Load(insTTYOpenFlags, k.G.UartPort+uartOffFlags, 8)
	t.Lock(insUartMutexLock, k.G.UartPort+uartOffMutex)
	n := t.Load(insTTYOpenCount, k.G.UartPort+uartOffOpenCount, 8)
	t.Store(insTTYOpenCount, k.G.UartPort+uartOffOpenCount, 8, n+1)
	if flags&AsyncInitialized == 0 {
		// First open of an uninitialized port activates it.
		t.Store(insTTYOpenInit, k.G.UartPort+uartOffFlags, 8, flags|AsyncInitialized)
	}
	t.Unlock(insUartMutexUnlock, k.G.UartPort+uartOffMutex)
	return 0
}

// TTYPortClose drops the open count under the mutex.
func (k *Kernel) TTYPortClose(t *vm.Thread) {
	t.Lock(insUartMutexLock, k.G.UartPort+uartOffMutex)
	n := t.Load(insTTYCloseCount, k.G.UartPort+uartOffOpenCount, 8)
	if n > 0 {
		t.Store(insTTYCloseCount, k.G.UartPort+uartOffOpenCount, 8, n-1)
	}
	t.Unlock(insUartMutexUnlock, k.G.UartPort+uartOffMutex)
}

// UartDoAutoconfig re-probes the port hardware under the port mutex,
// transiently clearing ASYNCB_INITIALIZED (the issue #14 writer; reached
// through ioctl(TIOCSSERIAL) with ASYNC_AUTOCONF).
func (k *Kernel) UartDoAutoconfig(t *vm.Thread) int64 {
	t.Lock(insUartMutexLock, k.G.UartPort+uartOffMutex)
	flags := t.Load(insTTYOpenFlags, k.G.UartPort+uartOffFlags, 8)
	t.Store(insAutoconfClear, k.G.UartPort+uartOffFlags, 8, flags&^uint64(AsyncInitialized))
	t.Store(insAutoconfProbe, k.G.UartPort+uartOffType, 8, 2)
	t.Store(insAutoconfIotype, k.G.UartPort+uartOffIotype, 8, 1)
	t.Store(insAutoconfSet, k.G.UartPort+uartOffFlags, 8, flags|AsyncInitialized|AsyncAutoconf)
	t.Unlock(insUartMutexUnlock, k.G.UartPort+uartOffMutex)
	return 0
}
