package kernel

import (
	"snowboard/internal/trace"
	"snowboard/internal/vm"
)

// System V message queues backed by the rhashtable (ipc/util.c uses an
// rhashtable for key lookup since 4.12). msgget()/msgctl(IPC_RMID) are the
// syscall pair of Figure 4: the lookup's double-fetched bucket pointer
// races with removal zeroing the bucket (issue #1, 5.3.10 build).

// struct msg_queue layout (chained in the rhashtable by key).
const (
	msqOffKey    = 0 // rhashtable key — also the field memcmp'd on lookup
	msqOffNext   = 8
	msqOffID     = 16
	msqOffQbytes = 24
	msqOffPerm   = 32
	msqStructSz  = 64
)

var (
	insIpcKeyCmp    = trace.DefIns("ipcget:memcmp_key")
	insIpcLock      = trace.DefIns("ipcget:ipc_lock")
	insIpcUnlock    = trace.DefIns("ipcget:ipc_unlock")
	insMsgNewID     = trace.DefIns("newque:load_id_seq")
	insMsgStoreID   = trace.DefIns("newque:store_id_seq")
	insMsgInitKey   = trace.DefIns("newque:store_key")
	insMsgInitID    = trace.DefIns("newque:store_id")
	insMsgInitBytes = trace.DefIns("newque:store_qbytes")
	insMsgInitPerm  = trace.DefIns("newque:store_perm")
	insMsgCtlLoadID = trace.DefIns("msgctl_down:load_id")
	insMsgCtlBytes  = trace.DefIns("msgctl_down:store_qbytes")
	insMsgStatBytes = trace.DefIns("msgctl_stat:load_qbytes")
)

// bootQueues is the number of message queues pre-registered at boot, so
// bucket chains are non-trivial and lookups dereference several objects.
// Four of the eight buckets stay empty: a queue created there by a test is
// a singleton whose removal zeroes the bucket word — the issue #1 window.
const bootQueues = 4

func (k *Kernel) bootIPC() {
	k.G.MsgHT = k.staticAlloc(rhtStructSz)
	k.G.MsgIDSeq = k.staticAlloc(8)
	k.G.IpcLock = k.staticAlloc(8)
	k.G.MsgHTLock = k.staticAlloc(8)
	k.put(k.G.MsgHT+rhtOffNBuckets, rhtNBuckets)
	k.put(k.G.MsgIDSeq, 1+bootQueues)
	for i := 0; i < bootQueues; i++ {
		key := uint64(0x1000 + i)
		obj := k.bootAlloc(msqStructSz)
		k.put(obj+msqOffKey, key)
		k.put(obj+msqOffID, uint64(1+i))
		k.put(obj+msqOffQbytes, 16384)
		k.put(obj+msqOffPerm, 0o600)
		bkt := rhtBucket(k.G.MsgHT, (key*0x61C88647)%rhtNBuckets)
		k.put(obj+msqOffNext, k.M.Mem.Read(bkt, 8))
		k.put(bkt, obj)
	}
}

// MsgGet implements msgget(key): look up the queue by key in the
// rhashtable (the issue #1 reader path) and create it if absent.
// Returns the queue id.
func (k *Kernel) MsgGet(t *vm.Thread, key uint64) int64 {
	if key == 0 {
		return errRet(EINVAL)
	}
	obj := k.RhashtableLookup(t, k.G.MsgHT, key, msqOffKey, msqOffNext, insIpcKeyCmp)
	if obj != 0 {
		return int64(t.Load(insMsgCtlLoadID, obj+msqOffID, 8))
	}
	// newque: allocate and publish a fresh queue.
	t.Lock(insIpcLock, k.G.IpcLock)
	obj = k.Kzalloc(t, msqStructSz)
	if obj == 0 {
		t.Unlock(insIpcUnlock, k.G.IpcLock)
		return errRet(ENOMEM)
	}
	id := t.Load(insMsgNewID, k.G.MsgIDSeq, 8)
	t.Store(insMsgStoreID, k.G.MsgIDSeq, 8, id+1)
	t.Store(insMsgInitKey, obj+msqOffKey, 8, key)
	t.Store(insMsgInitID, obj+msqOffID, 8, id)
	t.Store(insMsgInitBytes, obj+msqOffQbytes, 8, 16384)
	t.Store(insMsgInitPerm, obj+msqOffPerm, 8, 0o600)
	k.RhashtableInsert(t, k.G.MsgHT, key, obj, msqOffNext)
	t.Unlock(insIpcUnlock, k.G.IpcLock)
	return int64(id)
}

// msgctl command numbers (subset).
const (
	IPCRmid = 0
	IPCSet  = 1
	IPCStat = 2
)

// MsgCtl implements msgctl(key-of-queue, cmd). For simplicity the first
// argument is the queue *key* (as supplied to msgget); IPC_RMID removes the
// queue from the rhashtable — rht_assign_unlock zeroing a singleton bucket
// is the issue #1 writer.
func (k *Kernel) MsgCtl(t *vm.Thread, key, cmd uint64) int64 {
	if key == 0 {
		return errRet(EINVAL)
	}
	switch cmd {
	case IPCRmid:
		obj := k.RhashtableRemove(t, k.G.MsgHT, key, msqOffKey, msqOffNext, insIpcKeyCmp)
		if obj == 0 {
			return errRet(ENOENT)
		}
		k.Kfree(t, obj, msqStructSz)
		return 0
	case IPCSet:
		obj := k.RhashtableLookup(t, k.G.MsgHT, key, msqOffKey, msqOffNext, insIpcKeyCmp)
		if obj == 0 {
			return errRet(ENOENT)
		}
		t.Lock(insIpcLock, k.G.IpcLock)
		t.Store(insMsgCtlBytes, obj+msqOffQbytes, 8, 32768)
		t.Unlock(insIpcUnlock, k.G.IpcLock)
		return 0
	case IPCStat:
		obj := k.RhashtableLookup(t, k.G.MsgHT, key, msqOffKey, msqOffNext, insIpcKeyCmp)
		if obj == 0 {
			return errRet(ENOENT)
		}
		t.Lock(insIpcLock, k.G.IpcLock)
		qb := t.Load(insMsgStatBytes, obj+msqOffQbytes, 8)
		t.Unlock(insIpcUnlock, k.G.IpcLock)
		return int64(qb)
	}
	return errRet(EINVAL)
}
