package kernel

import (
	"snowboard/internal/trace"
	"snowboard/internal/vm"
)

// struct net_device layout (offsets in bytes from the device base).
const (
	devOffMtu      = 0  // u64 MTU (issue #7 reader/writer target)
	devOffAddr     = 8  // 6-byte hardware MAC address (issues #8, #9)
	devOffAddrLen  = 16 // u64
	devOffFlags    = 24 // u64
	devOffTxPkts   = 32 // u64 per-device tx packet count (marked accesses)
	devOffTxBytes  = 40 // u64
	devOffLock     = 48 // device-private spinlock (netif_addr_lock)
	devOffIfindex  = 56
	netdevStructSz = 64
)

// EthAlen is the Ethernet hardware address length.
const EthAlen = 6

var (
	insRtnlLock   = trace.DefIns("rtnl_lock:acquire")
	insRtnlUnlock = trace.DefIns("rtnl_unlock:release")

	insEthCommitMemcpy  = trace.DefIns("eth_commit_mac_addr_change:memcpy_dev_addr")
	insDevIfsiocMemcpy  = trace.DefIns("dev_ifsioc_locked:memcpy_ifr_hwaddr")
	insE1000SetMac      = trace.DefIns("e1000_set_mac:memcpy_node_addr")
	insDevSetMtu        = trace.DefIns("__dev_set_mtu:store_mtu")
	insDevLoadMtuIoctl  = trace.DefIns("dev_ifsioc:load_mtu")
	insDevLoadAddrLen   = trace.DefIns("dev_ifsioc_locked:load_addr_len")
	insDevTxPktsRMW     = trace.DefIns("dev_queue_xmit:this_cpu_add_tx_packets")
	insDevTxBytesRMW    = trace.DefIns("dev_queue_xmit:this_cpu_add_tx_bytes")
	insCopyHwaddrToUser = trace.DefIns("copy_to_user:ifr_hwaddr")
)

func (k *Kernel) bootNetdev() {
	k.G.RtnlLock = k.staticAlloc(8)
	k.G.Eth0 = k.staticAlloc(netdevStructSz)
	k.put(k.G.Eth0+devOffMtu, 1500)
	// Factory MAC aa:bb:cc:dd:ee:01.
	mac := [EthAlen]byte{0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0x01}
	k.M.Mem.WriteBytes(k.G.Eth0+devOffAddr, mac[:])
	k.put(k.G.Eth0+devOffAddrLen, EthAlen)
	k.put(k.G.Eth0+devOffIfindex, 2)
}

// RtnlLock acquires the global RTNL mutex.
func (k *Kernel) RtnlLock(t *vm.Thread) { t.Lock(insRtnlLock, k.G.RtnlLock) }

// RtnlUnlock releases the global RTNL mutex.
func (k *Kernel) RtnlUnlock(t *vm.Thread) { t.Unlock(insRtnlUnlock, k.G.RtnlLock) }

// EthCommitMacAddrChange installs a new MAC address on the device with a
// byte-wise memcpy. The caller holds RTNL. Issue #9 (Figure 3): the reader
// dev_ifsioc_locked runs under rcu_read_lock only — a *different* lock — so
// the two memcpys interleave and the reader can observe a torn address.
func (k *Kernel) EthCommitMacAddrChange(t *vm.Thread, dev uint64, mac [EthAlen]byte) {
	for i := 0; i < EthAlen; i++ {
		t.Store(insEthCommitMemcpy, dev+devOffAddr+uint64(i), 1, uint64(mac[i]))
	}
}

// DevIfsiocLocked services SIOCGIFHWADDR: it copies the hardware address
// out under rcu_read_lock (the reader side of issue #9) and returns the
// bytes it observed, which are also copied to the user buffer.
func (k *Kernel) DevIfsiocLocked(t *vm.Thread, dev uint64, userBuf uint64) [EthAlen]byte {
	var got [EthAlen]byte
	t.RCUReadLock()
	n := t.Load(insDevLoadAddrLen, dev+devOffAddrLen, 8)
	if n > EthAlen {
		n = EthAlen
	}
	for i := uint64(0); i < n; i++ {
		got[i] = byte(t.Load(insDevIfsiocMemcpy, dev+devOffAddr+i, 1))
	}
	t.RCUReadUnlock()
	for i := uint64(0); i < n; i++ {
		t.Store(insCopyHwaddrToUser, userBuf+i, 1, uint64(got[i]))
	}
	return got
}

// E1000SetMac is the driver-level MAC programming path reached through
// SIOCETHTOOL. It also rewrites dev_addr byte-wise under RTNL; the
// packet_getname reader (issue #8) holds no common lock.
func (k *Kernel) E1000SetMac(t *vm.Thread, dev uint64, mac [EthAlen]byte) {
	for i := 0; i < EthAlen; i++ {
		t.Store(insE1000SetMac, dev+devOffAddr+uint64(i), 1, uint64(mac[i]))
	}
}

// DevSetMtu changes the device MTU under RTNL with a plain store; the raw
// IPv6 transmit path reads it with a plain load under RCU only (issue #7).
func (k *Kernel) DevSetMtu(t *vm.Thread, dev uint64, mtu uint64) int64 {
	if mtu < 68 || mtu > 65535 {
		return errRet(EINVAL)
	}
	t.Store(insDevSetMtu, dev+devOffMtu, 8, mtu)
	return 0
}

// DevQueueXmit accounts one transmitted packet. The statistics use marked
// (this_cpu_add-style) accesses, which are intentionally concurrent and
// therefore not data races.
func (k *Kernel) DevQueueXmit(t *vm.Thread, dev uint64, size uint64) {
	p := t.LoadMarked(insDevTxPktsRMW, dev+devOffTxPkts, 8)
	t.StoreMarked(insDevTxPktsRMW, dev+devOffTxPkts, 8, p+1)
	b := t.LoadMarked(insDevTxBytesRMW, dev+devOffTxBytes, 8)
	t.StoreMarked(insDevTxBytesRMW, dev+devOffTxBytes, 8, b+size)
}

// DevLoadMtu reads the MTU for an ioctl reply (under RTNL; not a race).
func (k *Kernel) DevLoadMtu(t *vm.Thread, dev uint64) uint64 {
	return t.Load(insDevLoadMtuIoctl, dev+devOffMtu, 8)
}
