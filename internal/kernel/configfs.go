package kernel

import (
	"snowboard/internal/trace"
	"snowboard/internal/vm"
)

// configfs, carrying issue #11: configfs_lookup() iterated the directory's
// dirent list without holding configfs_dirent_lock, so a concurrent rmdir
// detaching an entry (zeroing its s_element) made the lookup dereference
// null. Fixed upstream by taking the lock in lookup; the 5.12-rc3 build
// here models the unfixed code.

// struct configfs_dirent layout (kmalloc'd).
const (
	cfsDirentOffNext    = 0
	cfsDirentOffElement = 8  // pointer to the config_item; zeroed on detach
	cfsDirentOffHash    = 16 // name hash used by lookup
	cfsDirentStructSz   = 32
)

// struct config_item layout (kmalloc'd).
const (
	cfsItemOffName   = 0
	cfsItemOffRefcnt = 8
	cfsItemStructSz  = 16
)

// configfs root directory header layout (static).
const (
	cfsDirOffLock     = 0
	cfsDirOffChildren = 8
	cfsDirStructSz    = 16
)

var (
	insCfsLock        = trace.DefIns("configfs_dirent_lock:acquire")
	insCfsUnlock      = trace.DefIns("configfs_dirent_lock:release")
	insCfsMkdirItem   = trace.DefIns("configfs_mkdir:store_item_name")
	insCfsMkdirElem   = trace.DefIns("configfs_mkdir:store_s_element")
	insCfsMkdirHash   = trace.DefIns("configfs_mkdir:store_name_hash")
	insCfsMkdirLink   = trace.DefIns("configfs_mkdir:list_add_head")
	insCfsMkdirNext   = trace.DefIns("configfs_mkdir:store_next")
	insCfsLookupHead  = trace.DefIns("configfs_lookup:load_children_head")
	insCfsLookupHash  = trace.DefIns("configfs_lookup:load_name_hash")
	insCfsLookupElem  = trace.DefIns("configfs_lookup:load_s_element")
	insCfsLookupDeref = trace.DefIns("configfs_lookup:load_item_name")
	insCfsLookupNext  = trace.DefIns("configfs_lookup:load_next")
	insCfsRmdirHead   = trace.DefIns("configfs_rmdir:load_children_head")
	insCfsRmdirHash   = trace.DefIns("configfs_rmdir:load_name_hash")
	insCfsRmdirClear  = trace.DefIns("configfs_detach_item:clear_s_element")
	insCfsRmdirUnlink = trace.DefIns("configfs_rmdir:list_del")
	insCfsRmdirNext   = trace.DefIns("configfs_rmdir:load_next")
	insCfsItemRef     = trace.DefIns("config_item_get:refcount_inc")
)

func (k *Kernel) bootConfigfs() {
	k.G.ConfigfsDir = k.staticAlloc(cfsDirStructSz)
	// Pre-populate a few directories so lookups walk a real list.
	head := uint64(0)
	for i := 0; i < 4; i++ {
		item := k.bootAlloc(cfsItemStructSz)
		d := k.bootAlloc(cfsDirentStructSz)
		k.put(item+cfsItemOffName, uint64(0x100+i))
		k.put(d+cfsDirentOffElement, item)
		k.put(d+cfsDirentOffHash, uint64(0x100+i))
		k.put(d+cfsDirentOffNext, head)
		head = d
	}
	k.put(k.G.ConfigfsDir+cfsDirOffChildren, head)
}

// ConfigfsMkdir creates /config/<name-hash h> under the dirent lock.
func (k *Kernel) ConfigfsMkdir(t *vm.Thread, h uint64) int64 {
	if h == 0 {
		return errRet(EINVAL)
	}
	dir := k.G.ConfigfsDir
	t.Lock(insCfsLock, dir+cfsDirOffLock)
	item := k.Kzalloc(t, cfsItemStructSz)
	d := k.Kzalloc(t, cfsDirentStructSz)
	if item == 0 || d == 0 {
		t.Unlock(insCfsUnlock, dir+cfsDirOffLock)
		return errRet(ENOMEM)
	}
	t.Store(insCfsMkdirItem, item+cfsItemOffName, 8, h)
	t.Store(insCfsMkdirElem, d+cfsDirentOffElement, 8, item)
	t.Store(insCfsMkdirHash, d+cfsDirentOffHash, 8, h)
	head := t.Load(insCfsLookupHead, dir+cfsDirOffChildren, 8)
	t.Store(insCfsMkdirNext, d+cfsDirentOffNext, 8, head)
	t.Store(insCfsMkdirLink, dir+cfsDirOffChildren, 8, d)
	t.Unlock(insCfsUnlock, dir+cfsDirOffLock)
	return 0
}

// ConfigfsLookup resolves /config/<h>. In the unfixed 5.12-rc3 code the
// list walk takes no lock (issue #11); a detach that zeroes s_element
// between the element load's neighbours causes a null dereference of the
// item. Returns the item address or 0.
func (k *Kernel) ConfigfsLookup(t *vm.Thread, h uint64) int64 {
	dir := k.G.ConfigfsDir
	locked := !k.is5_12() // the fix (c42dd069be8d) takes the dirent lock
	if locked {
		t.Lock(insCfsLock, dir+cfsDirOffLock)
	}
	cur := t.Load(insCfsLookupHead, dir+cfsDirOffChildren, 8)
	var ret int64 = errRet(ENOENT)
	for cur != 0 {
		hash := t.Load(insCfsLookupHash, cur+cfsDirentOffHash, 8)
		if hash == h {
			el := t.Load(insCfsLookupElem, cur+cfsDirentOffElement, 8)
			// configfs_attach_dentry dereferences sd->s_element with no
			// null check: detach may have cleared it (kernel panic).
			name := t.Load(insCfsLookupDeref, el+cfsItemOffName, 8)
			ref := t.LoadMarked(insCfsItemRef, el+cfsItemOffRefcnt, 8)
			t.StoreMarked(insCfsItemRef, el+cfsItemOffRefcnt, 8, ref+1)
			_ = name
			ret = int64(el)
			break
		}
		cur = t.Load(insCfsLookupNext, cur+cfsDirentOffNext, 8)
	}
	if locked {
		t.Unlock(insCfsUnlock, dir+cfsDirOffLock)
	}
	return ret
}

// ConfigfsRmdir removes /config/<h>: under the dirent lock it clears the
// dirent's s_element (configfs_detach_item — the issue #11 writer), unlinks
// it, and frees both objects.
func (k *Kernel) ConfigfsRmdir(t *vm.Thread, h uint64) int64 {
	dir := k.G.ConfigfsDir
	t.Lock(insCfsLock, dir+cfsDirOffLock)
	prev := uint64(0)
	cur := t.Load(insCfsRmdirHead, dir+cfsDirOffChildren, 8)
	for cur != 0 {
		hash := t.Load(insCfsRmdirHash, cur+cfsDirentOffHash, 8)
		if hash == h {
			item := t.Load(insCfsLookupElem, cur+cfsDirentOffElement, 8)
			t.Store(insCfsRmdirClear, cur+cfsDirentOffElement, 8, 0) // detach
			next := t.Load(insCfsRmdirNext, cur+cfsDirentOffNext, 8)
			if prev == 0 {
				t.Store(insCfsRmdirUnlink, dir+cfsDirOffChildren, 8, next)
			} else {
				t.Store(insCfsRmdirUnlink, prev+cfsDirentOffNext, 8, next)
			}
			t.Unlock(insCfsUnlock, dir+cfsDirOffLock)
			if item != 0 {
				k.Kfree(t, item, cfsItemStructSz)
			}
			k.Kfree(t, cur, cfsDirentStructSz)
			return 0
		}
		prev = cur
		cur = t.Load(insCfsRmdirNext, cur+cfsDirentOffNext, 8)
	}
	t.Unlock(insCfsUnlock, dir+cfsDirOffLock)
	return errRet(ENOENT)
}
