package kernel

import (
	"snowboard/internal/trace"
	"snowboard/internal/vm"
)

// IPv6: the raw-socket transmit path (issue #7) and the fib6 routing tree
// cookie protocol (issue #10, a benign data race: the reader revalidates
// under the sernum recheck, so a stale read is harmless).

// struct raw6 socket private layout.
const (
	raw6OffLock      = 0
	raw6OffCookie    = 8 // cached fib6 sernum cookie
	raw6OffRoute     = 16
	raw6OffBound     = 24
	raw6SockStructSz = 32
)

// struct fib6_node layout.
const (
	fib6OffSernum = 0 // route-generation counter (issues #10 target)
	fib6OffRoutes = 8
	fib6OffLeaf   = 16
	fib6StructSz  = 32
)

var (
	insRawv6LoadMtu   = trace.DefIns("rawv6_send_hdrinc:load_dev_mtu")
	insRawv6StoreRt   = trace.DefIns("rawv6_send_hdrinc:store_sk_route")
	insFib6GetCookie  = trace.DefIns("fib6_get_cookie_safe:load_fn_sernum")
	insFib6Recheck    = trace.DefIns("fib6_get_cookie_safe:recheck_fn_sernum")
	insFib6StoreCk    = trace.DefIns("fib6_get_cookie_safe:store_dst_cookie")
	insFib6CleanStore = trace.DefIns("fib6_clean_node:store_fn_sernum")
	insFib6WLock      = trace.DefIns("fib6_clean_node:write_lock")
	insFib6WUnlock    = trace.DefIns("fib6_clean_node:write_unlock")
	insFib6LoadLeaf   = trace.DefIns("fib6_clean_node:load_leaf")
	insFib6CleanLoad  = trace.DefIns("fib6_clean_node:load_fn_sernum")
)

func (k *Kernel) bootIPv6() {
	k.G.Fib6Root = k.staticAlloc(fib6StructSz)
	k.G.Fib6Lock = k.staticAlloc(8)
	k.put(k.G.Fib6Root+fib6OffSernum, 1)
}

// Fib6GetCookieSafe captures the current route-generation cookie into the
// raw socket. The sernum reads are plain loads with no lock; the writer
// fib6_clean_node holds the fib6 writer lock — a data race, but benign
// because the cookie protocol rechecks (the paper classifies #10 benign).
func (k *Kernel) Fib6GetCookieSafe(t *vm.Thread, rawSock uint64) {
	sernum := t.Load(insFib6GetCookie, k.G.Fib6Root+fib6OffSernum, 8)
	again := t.Load(insFib6Recheck, k.G.Fib6Root+fib6OffSernum, 8)
	if again != sernum {
		sernum = again // revalidated; stale observation discarded
	}
	t.Store(insFib6StoreCk, rawSock+raw6OffCookie, 8, sernum)
}

// Fib6CleanNode bumps the route generation under the fib6 writer lock
// (route deletion / GC path, reached through ioctl(SIOCDELRT)).
func (k *Kernel) Fib6CleanNode(t *vm.Thread) {
	t.Lock(insFib6WLock, k.G.Fib6Lock)
	leaf := t.Load(insFib6LoadLeaf, k.G.Fib6Root+fib6OffLeaf, 8)
	_ = leaf
	cur := t.Load(insFib6CleanLoad, k.G.Fib6Root+fib6OffSernum, 8)
	t.Store(insFib6CleanStore, k.G.Fib6Root+fib6OffSernum, 8, cur+1)
	t.Unlock(insFib6WUnlock, k.G.Fib6Lock)
}

// Rawv6SendHdrinc transmits a raw IPv6 packet with a caller-supplied
// header. It reads dev->mtu with a plain load under rcu_read_lock only,
// racing with __dev_set_mtu's RTNL-protected store (issue #7).
func (k *Kernel) Rawv6SendHdrinc(t *vm.Thread, rawSock, size uint64) int64 {
	t.RCUReadLock()
	mtu := t.Load(insRawv6LoadMtu, k.G.Eth0+devOffMtu, 8)
	if size > mtu {
		t.RCUReadUnlock()
		return errRet(EMSGSIZE)
	}
	t.Store(insRawv6StoreRt, rawSock+raw6OffRoute, 8, k.G.Fib6Root)
	k.DevQueueXmit(t, k.G.Eth0, size)
	t.RCUReadUnlock()
	return int64(size)
}
