// Package kernel implements the miniature operating system kernel that
// stands in for the Linux guest of the paper. All kernel state lives in
// simulated guest memory (objects are bytes at addresses, fields at fixed
// offsets), so memory traces, torn reads, and null-pointer dereferences are
// physical phenomena of the substrate rather than mocks.
//
// The kernel carries the seventeen concurrency issues of the paper's
// Table 2, re-implemented mechanism-for-mechanism (see DESIGN.md), gated by
// the simulated kernel version: issues present only in 5.3.10 or only in
// 5.12-rc3 appear only under the matching Config.
package kernel

import (
	"fmt"

	"snowboard/internal/vm"
)

// Guest address-space layout. The null page is never mapped, so dereferences
// of small addresses fault like real kernel null-pointer bugs.
const (
	GlobalsBase = 0x0001_0000 // static kernel data
	GlobalsSize = 1 << 16

	StackBase  = 0x0010_0000 // thread i's 8KB stack at StackBase + i*8KB
	MaxThreads = 8

	HeapBase = 0x0100_0000 // kmalloc arena
	HeapSize = 1 << 22

	UserBase     = 0x1000_0000 // per-process user scratch regions
	UserProcSize = 1 << 16
	MaxProcs     = 4
)

// Version identifies which simulated kernel is under test. The two versions
// evaluated by the paper carry different subsets of the seeded issues.
type Version string

// The kernel versions evaluated in the paper (§5.1).
const (
	V5_3_10   Version = "5.3.10"
	V5_12_RC3 Version = "5.12-rc3"
)

// Config selects the simulated kernel build.
type Config struct {
	Version Version
}

// Kernel binds a machine to the simulated kernel's global state. All global
// addresses are assigned deterministically at Boot, so a Kernel built for a
// machine remains valid across snapshot restores of that machine.
type Kernel struct {
	M   *vm.Machine
	Cfg Config

	cursor uint64 // static allocation cursor inside the globals region

	G Globals
}

// Globals holds the guest addresses of every static kernel object, grouped
// by subsystem. Field names follow the Linux identifiers they model.
type Globals struct {
	// mm / slab
	SlabFreeObjects uint64 // unsynchronized counter (issue #13)
	SlabLock        uint64 // guards freelists (but not the counter)
	SlabNumAllocs   uint64
	HeapNext        uint64 // bump pointer
	Freelists       uint64 // per-class freelist heads, sizeClasses entries

	// net core
	RtnlLock uint64
	Eth0     uint64 // struct net_device

	// l2tp
	L2tpTunnelList uint64 // RCU list head (issue #12 publishes here)
	L2tpListLock   uint64

	// ipv6 / fib6
	Fib6Root uint64
	Fib6Lock uint64

	// af_packet
	FanoutMutex uint64
	FanoutList  uint64 // head of fanout groups

	// tcp
	TCPDefaultCA uint64 // 8-byte congestion-control name (issue #16)

	// ext4 + block
	Ext4Sb     uint64 // struct super_block
	Ext4Inodes uint64 // inode table, NumInodes entries of InodeSize bytes
	Bdev       uint64 // struct block_device

	// ipc + rhashtable
	MsgHT     uint64 // struct rhashtable for message queues
	MsgIDSeq  uint64 // next message-queue id
	IpcLock   uint64
	MsgHTLock uint64

	// configfs
	ConfigfsDir uint64 // root directory header

	// tty / serial
	UartPort uint64

	// sound
	SndCard uint64
}

// Boot lays out and initializes the kernel in the machine's memory and
// returns the bound Kernel. Initialization writes memory directly (the
// machine's "firmware"), so boot is not part of any trace. After Boot the
// caller typically takes the VM snapshot that all tests start from (§4.1).
func Boot(m *vm.Machine, cfg Config) *Kernel {
	if cfg.Version == "" {
		cfg.Version = V5_12_RC3
	}
	m.Mem.AddRegion("globals", GlobalsBase, GlobalsBase+GlobalsSize)
	m.Mem.AddRegion("stacks", StackBase, StackBase+MaxThreads*8192)
	m.Mem.AddRegion("heap", HeapBase, HeapBase+HeapSize)
	m.Mem.AddRegion("user", UserBase, UserBase+MaxProcs*UserProcSize)

	k := &Kernel{M: m, Cfg: cfg, cursor: GlobalsBase}
	k.bootMM()
	k.bootNetdev()
	k.bootL2TP()
	k.bootIPv6()
	k.bootPacket()
	k.bootTCP()
	k.bootExt4()
	k.bootBlock()
	k.bootIPC()
	k.bootConfigfs()
	k.bootTTY()
	k.bootSound()
	m.Console.Printf("Linux version %s (snowboard-sim)", cfg.Version)
	return k
}

// staticAlloc reserves size bytes (8-byte aligned) of static kernel data.
func (k *Kernel) staticAlloc(size int) uint64 {
	a := (k.cursor + 7) &^ 7
	k.cursor = a + uint64(size)
	if k.cursor > GlobalsBase+GlobalsSize {
		panic(fmt.Sprintf("kernel: globals region overflow at %#x", k.cursor))
	}
	return a
}

// put initializes a static 8-byte word during boot (untraced).
func (k *Kernel) put(addr uint64, val uint64) { k.M.Mem.Write(addr, 8, val) }

// bootAlloc carves a heap object during boot, keeping the allocator's bump
// pointer consistent with objects kmalloc'd later. Boot-created objects
// (pre-registered tunnels, message queues, configfs entries) make the
// initial kernel state realistic: lookups walk non-trivial structures, so
// instructions execute against many memory targets, not just the one a
// test creates.
func (k *Kernel) bootAlloc(size int) uint64 {
	_, csize := sizeClass(size)
	addr := k.M.Mem.Read(k.G.HeapNext, 8)
	k.put(k.G.HeapNext, addr+uint64(csize))
	return addr
}

// StackFor returns the stack base for machine thread tid.
func StackFor(tid int) uint64 {
	if tid < 0 || tid >= MaxThreads {
		panic(fmt.Sprintf("kernel: thread id %d out of range", tid))
	}
	return StackBase + uint64(tid)*8192
}

// UserRegion returns the user scratch region base of process slot p.
func UserRegion(slot int) uint64 {
	if slot < 0 || slot >= MaxProcs {
		panic(fmt.Sprintf("kernel: proc slot %d out of range", slot))
	}
	return UserBase + uint64(slot)*UserProcSize
}

// printk appends a formatted line to the guest console.
func (k *Kernel) printk(format string, args ...any) {
	k.M.Console.Printf(format, args...)
}

// is5_3 reports whether the simulated build is the 5.3.10 stable kernel.
func (k *Kernel) is5_3() bool { return k.Cfg.Version == V5_3_10 }

// is5_12 reports whether the simulated build is the 5.12-rc3 kernel.
func (k *Kernel) is5_12() bool { return k.Cfg.Version == V5_12_RC3 }
