package kernel

import (
	"snowboard/internal/trace"
	"snowboard/internal/vm"
)

// AF_PACKET sockets with fanout groups, carrying issue #17
// (fanout_demux_rollover() reads f->num_members under RCU only while
// __fanout_unlink() updates it under the fanout mutex) and the reader side
// of issue #8 (packet_getname() copies dev->dev_addr with no common lock
// against the driver's MAC rewrite).

// struct packet_sock private layout.
const (
	poOffLock      = 0
	poOffFanout    = 8 // pointer to the joined fanout group
	poOffIfindex   = 16
	poOffRxCount   = 24
	poSockStructSz = 32
)

// struct packet_fanout layout.
const (
	fanOffID         = 0
	fanOffNumMembers = 8  // issue #17 target
	fanOffNext       = 16 // global fanout list linkage
	fanOffRRCur      = 24
	fanOffArr        = 32 // member slots, fanoutMaxMembers pointers
	fanoutMaxMembers = 4
	fanoutStructSz   = 32 + 8*fanoutMaxMembers
)

var (
	insFanMutexLock   = trace.DefIns("fanout_add:mutex_lock")
	insFanMutexUnlock = trace.DefIns("fanout_add:mutex_unlock")
	insFanListLoad    = trace.DefIns("fanout_add:load_fanout_list")
	insFanListStore   = trace.DefIns("fanout_add:store_fanout_list")
	insFanLoadID      = trace.DefIns("fanout_add:load_fanout_id")
	insFanLoadNext    = trace.DefIns("fanout_add:load_fanout_next")
	insFanSetID       = trace.DefIns("fanout_add:store_fanout_id")
	insFanLinkSlot    = trace.DefIns("__fanout_link:store_member_slot")
	insFanLinkLoadN   = trace.DefIns("__fanout_link:load_num_members")
	insFanLinkStoreN  = trace.DefIns("__fanout_link:store_num_members")
	insFanUnlinkLoadN = trace.DefIns("__fanout_unlink:load_num_members")
	insFanUnlinkStore = trace.DefIns("__fanout_unlink:store_num_members")
	insFanUnlinkSlot  = trace.DefIns("__fanout_unlink:clear_member_slot")
	insFanSetPo       = trace.DefIns("fanout_add:store_po_fanout")
	insFanClearPo     = trace.DefIns("fanout_release:clear_po_fanout")
	insDemuxLoadN     = trace.DefIns("fanout_demux_rollover:load_num_members")
	insDemuxLoadSlot  = trace.DefIns("fanout_demux_rollover:load_member_slot")
	insDemuxRxCount   = trace.DefIns("fanout_demux_rollover:inc_rx_count")
	insPktGetnameMAC  = trace.DefIns("packet_getname:memcpy_sll_addr")
	insPktGetnameIdx  = trace.DefIns("packet_getname:load_ifindex")
	insPktGetnameUser = trace.DefIns("copy_to_user:sockaddr_ll")
	insPktLoadFanout  = trace.DefIns("packet_sendmsg:rcu_dereference_fanout")
)

func (k *Kernel) bootPacket() {
	k.G.FanoutMutex = k.staticAlloc(8)
	k.G.FanoutList = k.staticAlloc(8)
}

// FanoutAdd joins the packet socket to fanout group id, creating the group
// on first use. All bookkeeping is mutex-protected; the demux reader is not.
func (k *Kernel) FanoutAdd(t *vm.Thread, po, id uint64) int64 {
	t.Lock(insFanMutexLock, k.G.FanoutMutex)
	f := t.Load(insFanListLoad, k.G.FanoutList, 8)
	for f != 0 {
		fid := t.Load(insFanLoadID, f+fanOffID, 8)
		if fid == id {
			break
		}
		f = t.Load(insFanLoadNext, f+fanOffNext, 8)
	}
	if f == 0 {
		f = k.Kzalloc(t, fanoutStructSz)
		if f == 0 {
			t.Unlock(insFanMutexUnlock, k.G.FanoutMutex)
			return errRet(ENOMEM)
		}
		t.Store(insFanSetID, f+fanOffID, 8, id)
		head := t.Load(insFanListLoad, k.G.FanoutList, 8)
		t.Store(insFanListStore, f+fanOffNext, 8, head)
		t.Store(insFanListStore, k.G.FanoutList, 8, f)
	}
	n := t.Load(insFanLinkLoadN, f+fanOffNumMembers, 8)
	if n >= fanoutMaxMembers {
		t.Unlock(insFanMutexUnlock, k.G.FanoutMutex)
		return errRet(ENOSPC)
	}
	t.Store(insFanLinkSlot, f+fanOffArr+8*n, 8, po)
	t.Store(insFanLinkStoreN, f+fanOffNumMembers, 8, n+1) // __fanout_link
	t.Store(insFanSetPo, po+poOffFanout, 8, f)
	t.Unlock(insFanMutexUnlock, k.G.FanoutMutex)
	return 0
}

// FanoutRelease detaches the socket from its fanout group (__fanout_unlink).
// The num_members store is mutex-protected but the rollover reader holds
// only RCU (issue #17).
func (k *Kernel) FanoutRelease(t *vm.Thread, po uint64) int64 {
	f := t.Load(insPktLoadFanout, po+poOffFanout, 8)
	if f == 0 {
		return 0
	}
	t.Lock(insFanMutexLock, k.G.FanoutMutex)
	n := t.Load(insFanUnlinkLoadN, f+fanOffNumMembers, 8)
	// Compact the member array: find po's slot and shift the tail down.
	for i := uint64(0); i < n; i++ {
		slot := t.Load(insDemuxLoadSlot, f+fanOffArr+8*i, 8)
		if slot == po {
			for j := i; j+1 < n; j++ {
				next := t.Load(insDemuxLoadSlot, f+fanOffArr+8*(j+1), 8)
				t.Store(insFanUnlinkSlot, f+fanOffArr+8*j, 8, next)
			}
			t.Store(insFanUnlinkSlot, f+fanOffArr+8*(n-1), 8, 0)
			break
		}
	}
	if n > 0 {
		t.Store(insFanUnlinkStore, f+fanOffNumMembers, 8, n-1)
	}
	t.Store(insFanClearPo, po+poOffFanout, 8, 0)
	t.Unlock(insFanMutexUnlock, k.G.FanoutMutex)
	return 0
}

// FanoutDemuxRollover is the receive-path load balancer, reached here via
// the loopback of packet_sendmsg. It reads num_members with a plain load
// under rcu_read_lock only (issue #17); a concurrent unlink can shrink the
// group under it.
func (k *Kernel) FanoutDemuxRollover(t *vm.Thread, f, hash uint64) uint64 {
	n := t.Load(insDemuxLoadN, f+fanOffNumMembers, 8)
	if n == 0 {
		return 0
	}
	idx := hash % n
	member := t.Load(insDemuxLoadSlot, f+fanOffArr+8*idx, 8)
	if member != 0 {
		c := t.LoadMarked(insDemuxRxCount, member+poOffRxCount, 8)
		t.StoreMarked(insDemuxRxCount, member+poOffRxCount, 8, c+1)
	}
	return member
}

// PacketSendmsg transmits size bytes and demultiplexes the looped-back
// frame across the socket's fanout group, if any.
func (k *Kernel) PacketSendmsg(t *vm.Thread, po, size uint64) int64 {
	k.DevQueueXmit(t, k.G.Eth0, size)
	t.RCUReadLock()
	f := t.Load(insPktLoadFanout, po+poOffFanout, 8)
	if f != 0 {
		k.FanoutDemuxRollover(t, f, size)
	}
	t.RCUReadUnlock()
	return int64(size)
}

// PacketGetname services getsockname(2) on a packet socket: it copies the
// bound device's hardware address into the user's sockaddr_ll with plain
// byte loads and no lock shared with the MAC writers (issue #8).
func (k *Kernel) PacketGetname(t *vm.Thread, po, userBuf uint64) [EthAlen]byte {
	var got [EthAlen]byte
	idx := t.Load(insPktGetnameIdx, po+poOffIfindex, 8)
	_ = idx
	for i := 0; i < EthAlen; i++ {
		got[i] = byte(t.Load(insPktGetnameMAC, k.G.Eth0+devOffAddr+uint64(i), 1))
	}
	for i := 0; i < EthAlen; i++ {
		t.Store(insPktGetnameUser, userBuf+uint64(i), 1, uint64(got[i]))
	}
	return got
}
