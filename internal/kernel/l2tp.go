package kernel

import (
	"snowboard/internal/trace"
	"snowboard/internal/vm"
)

// L2TP tunnels (net/l2tp), carrying issue #12 — the paper's Figure 1 bug:
// l2tp_tunnel_register() publishes a tunnel on the RCU tunnel list *before*
// initializing its sock field. A concurrent pppol2tp_connect() that looks up
// the same tunnel ID retrieves the half-initialized tunnel, and the
// subsequent l2tp_xmit_core() dereferences the null sock — a kernel panic
// that is an order violation, not a data race (all list accesses are
// properly RCU-annotated).

// struct l2tp_tunnel layout.
const (
	tunOffID       = 0  // tunnel id looked up by pppol2tp_connect
	tunOffNext     = 8  // RCU list linkage
	tunOffSock     = 16 // pointer to the tunnel's UDP socket (late-initialized)
	tunOffRefcnt   = 24
	tunOffFlags    = 32
	tunOffDebug    = 40
	tunnelStructSz = 64
)

// struct pppol2tp socket private layout.
const (
	pppOffLock      = 0
	pppOffState     = 8
	pppOffTunnel    = 16 // pointer to the bound tunnel
	pppOffPeer      = 24
	pppSockStructSz = 32
)

// sock (the tunnel's underlying UDP socket) layout; bh_lock_sock locks
// offset 0, which is what faults when the tunnel sock pointer is null.
const (
	sockOffLock   = 0
	sockOffState  = 8
	sockOffTxErrs = 16
	sockStructSz  = 32
)

var (
	// The list walk compiles to a single load instruction executing once
	// per node (head and next dereferences share it), as in real machine
	// code — which is what makes instruction-only scheduling hints (SKI)
	// fire on many irrelevant targets.
	insL2tpGetDeref   = trace.DefIns("l2tp_tunnel_get:rcu_dereference_list")
	insL2tpGetLoadID  = trace.DefIns("l2tp_tunnel_get:load_tunnel_id")
	insL2tpGetRefInc  = trace.DefIns("l2tp_tunnel_get:refcount_inc")
	insL2tpListLock   = trace.DefIns("l2tp_tunnel_register:spin_lock_list")
	insL2tpListUnlock = trace.DefIns("l2tp_tunnel_register:spin_unlock_list")
	insL2tpRegSetID   = trace.DefIns("l2tp_tunnel_register:store_tunnel_id")
	insL2tpRegSetNext = trace.DefIns("l2tp_tunnel_register:set_list_next")
	insL2tpRegPublish = trace.DefIns("l2tp_tunnel_register:list_add_rcu")
	insL2tpRegFlags   = trace.DefIns("l2tp_tunnel_register:init_flags")
	insL2tpRegDebug   = trace.DefIns("l2tp_tunnel_register:init_debug")
	insL2tpRegSock    = trace.DefIns("l2tp_tunnel_register:store_tunnel_sock")
	insPppConnTunnel  = trace.DefIns("pppol2tp_connect:store_sk_tunnel")
	insPppConnState   = trace.DefIns("pppol2tp_connect:store_state")
	insPppSendTunnel  = trace.DefIns("pppol2tp_sendmsg:load_sk_tunnel")
	insXmitLoadSock   = trace.DefIns("l2tp_xmit_core:load_tunnel_sock")
	insXmitLockSock   = trace.DefIns("l2tp_xmit_core:bh_lock_sock")
	insXmitUnlockSock = trace.DefIns("l2tp_xmit_core:bh_unlock_sock")
	insXmitSockState  = trace.DefIns("l2tp_xmit_core:load_sock_state")
)

// bootTunnels is the number of tunnels pre-registered at boot. Lookups of a
// fresh tunnel id must walk past all of them, so the list-walk instructions
// execute against many targets per call.
const bootTunnels = 6

func (k *Kernel) bootL2TP() {
	k.G.L2tpTunnelList = k.staticAlloc(8)
	k.G.L2tpListLock = k.staticAlloc(8)
	head := uint64(0)
	for i := 0; i < bootTunnels; i++ {
		sk := k.bootAlloc(sockStructSz)
		tun := k.bootAlloc(tunnelStructSz)
		k.put(tun+tunOffID, uint64(100+i))
		k.put(tun+tunOffSock, sk)
		k.put(tun+tunOffNext, head)
		k.put(tun+tunOffRefcnt, 1)
		head = tun
	}
	k.put(k.G.L2tpTunnelList, head)
}

// l2tpTunnelGet walks the RCU tunnel list looking for tunnelID, taking a
// reference when found. All list pointer traffic is properly annotated
// (rcu_dereference), so finding this bug requires PMC analysis rather than
// a race detector — the point of the paper's Case 2.
func (k *Kernel) l2tpTunnelGet(t *vm.Thread, tunnelID uint64) uint64 {
	t.RCUReadLock()
	cur := t.LoadMarked(insL2tpGetDeref, k.G.L2tpTunnelList, 8)
	for cur != 0 {
		id := t.Load(insL2tpGetLoadID, cur+tunOffID, 8)
		if id == tunnelID {
			ref := t.LoadMarked(insL2tpGetRefInc, cur+tunOffRefcnt, 8)
			t.StoreMarked(insL2tpGetRefInc, cur+tunOffRefcnt, 8, ref+1)
			t.RCUReadUnlock()
			return cur
		}
		cur = t.LoadMarked(insL2tpGetDeref, cur+tunOffNext, 8)
	}
	t.RCUReadUnlock()
	return 0
}

// l2tpTunnelRegister creates and publishes a tunnel. In 5.12-rc3 the tunnel
// is added to the RCU list *before* its sock field is initialized (issue
// #12); the pre-regression 5.3.10 code initializes sock first.
func (k *Kernel) l2tpTunnelRegister(t *vm.Thread, tunnelID, sk uint64) uint64 {
	tun := k.Kzalloc(t, tunnelStructSz)
	if tun == 0 {
		return 0
	}
	t.Store(insL2tpRegSetID, tun+tunOffID, 8, tunnelID)

	if k.is5_3() {
		// Fixed ordering: fully initialize before publishing.
		t.Store(insL2tpRegSock, tun+tunOffSock, 8, sk)
	}

	t.Lock(insL2tpListLock, k.G.L2tpListLock)
	head := t.LoadMarked(insL2tpRegSetNext, k.G.L2tpTunnelList, 8)
	t.StoreMarked(insL2tpRegSetNext, tun+tunOffNext, 8, head)
	t.StoreMarked(insL2tpRegPublish, k.G.L2tpTunnelList, 8, tun) // ➊ tunnel becomes reachable
	t.Unlock(insL2tpListUnlock, k.G.L2tpListLock)

	// Post-publication setup work widens the vulnerability window.
	t.Store(insL2tpRegFlags, tun+tunOffFlags, 8, 0x3)
	t.Store(insL2tpRegDebug, tun+tunOffDebug, 8, 0)

	if k.is5_12() {
		// Issue #12: sock is initialized only now, after the tunnel is
		// visible to concurrent lookups.
		t.Store(insL2tpRegSock, tun+tunOffSock, 8, sk) // ➋
	}
	return tun
}

// PppoL2tpConnect implements connect() on a PX_PROTO_OL2TP socket: look up
// the tunnel for tunnelID (creating and registering it on first use, backed
// by the UDP socket sk) and bind it into the PPP session.
func (k *Kernel) PppoL2tpConnect(t *vm.Thread, pppSock, sk, tunnelID uint64) int64 {
	tun := k.l2tpTunnelGet(t, tunnelID)
	if tun == 0 {
		tun = k.l2tpTunnelRegister(t, tunnelID, sk)
		if tun == 0 {
			return errRet(ENOMEM)
		}
	}
	t.Store(insPppConnTunnel, pppSock+pppOffTunnel, 8, tun)
	t.Store(insPppConnState, pppSock+pppOffState, 8, 1 /* PPPOX_CONNECTED */)
	return 0
}

// PppoL2tpSendmsg transmits size bytes through the session's tunnel. The
// l2tp_xmit_core half dereferences tunnel->sock; if the tunnel was obtained
// half-initialized, sock is null and bh_lock_sock faults (kernel panic).
func (k *Kernel) PppoL2tpSendmsg(t *vm.Thread, pppSock, size uint64) int64 {
	tun := t.Load(insPppSendTunnel, pppSock+pppOffTunnel, 8)
	if tun == 0 {
		return errRet(ENOTCONN)
	}
	// l2tp_xmit_core:
	sk := t.Load(insXmitLoadSock, tun+tunOffSock, 8) // ➍ may observe 0
	t.Lock(insXmitLockSock, sk+sockOffLock)          // faults on null sk
	st := t.Load(insXmitSockState, sk+sockOffState, 8)
	_ = st
	k.DevQueueXmit(t, k.G.Eth0, size)
	t.Unlock(insXmitUnlockSock, sk+sockOffLock)
	return int64(size)
}
