package kernel

import (
	"snowboard/internal/trace"
	"snowboard/internal/vm"
)

// A miniature rhashtable (lib/rhashtable.c), carrying issue #1 — the
// paper's Figure 4 bug. rht_ptr() is written in the source as the GCC
// conditional with omitted operand, "*bkt & ~BIT(0) ?: bkt"; under -O1 the
// compiler emits *two* loads of the bucket word. In the 5.3.10 build we
// model the two-load compilation; a concurrent writer that zeroes the
// bucket between the loads makes the reader dereference null — a kernel
// page-fault panic with a one-instruction vulnerability window.

// struct rhashtable layout: nbuckets, then the bucket array.
const (
	rhtOffNBuckets = 0
	rhtOffBuckets  = 8
	rhtNBuckets    = 8
	rhtStructSz    = 8 + 8*rhtNBuckets
)

var (
	insRhtHashLoadN   = trace.DefIns("rht_key_hashfn:load_nbuckets")
	insRhtPtrTest     = trace.DefIns("rht_ptr:load_bkt_test")
	insRhtPtrUse      = trace.DefIns("rht_ptr:load_bkt_use")
	insRhtObjNext     = trace.DefIns("rhashtable_lookup:load_obj_next")
	insRhtAssign      = trace.DefIns("rht_assign_unlock:store_bkt")
	insRhtInsertLoad  = trace.DefIns("rhashtable_insert:load_bkt")
	insRhtInsertChain = trace.DefIns("rhashtable_insert:store_obj_next")
	insRhtLock        = trace.DefIns("rht_lock:acquire")
	insRhtUnlock      = trace.DefIns("rht_unlock:release")
)

// rhtBucket returns the address of the bucket word for hash h.
func rhtBucket(ht uint64, h uint64) uint64 {
	return ht + rhtOffBuckets + (h%rhtNBuckets)*8
}

// rhtHash folds a key onto a bucket index using the table's bucket count
// (a traced load, as the real code reads tbl->size).
func (k *Kernel) rhtHash(t *vm.Thread, ht, key uint64) uint64 {
	n := t.Load(insRhtHashLoadN, ht+rhtOffNBuckets, 8)
	if n == 0 {
		n = rhtNBuckets
	}
	return (key * 0x61C88647) % n
}

// RhtPtr dereferences a bucket head, returning the chain head pointer and
// whether the emptiness test passed. In the 5.3.10 build this is the
// double-fetch compilation of "*bkt & ~BIT(0) ?: bkt" (issue #1): the value
// *used* is re-loaded after the test, so a concurrent zeroing of the bucket
// makes RhtPtr report ok==true with ptr==0 — and the caller's key compare
// then dereferences null, exactly Figure 4's page fault. 5.12-rc3 models
// the fixed __rht_ptr with a single load.
func (k *Kernel) RhtPtr(t *vm.Thread, bkt uint64) (ptr uint64, ok bool) {
	if k.is5_3() {
		v1 := t.Load(insRhtPtrTest, bkt, 8) // testl $0xfffffffe,(%eax)
		if v1&^uint64(1) == 0 {
			return 0, false
		}
		v2 := t.Load(insRhtPtrUse, bkt, 8) // mov (%eax),%eax — the second fetch
		return v2 &^ uint64(1), true
	}
	// The fixed __rht_ptr (1748f6a2cbc4) reads the bucket once with proper
	// RCU-dereference semantics.
	v := t.LoadMarked(insRhtPtrTest, bkt, 8)
	if v&^uint64(1) == 0 {
		return 0, false
	}
	return v &^ uint64(1), true
}

// RhashtableLookup walks the bucket chain for key, under RCU. The chain
// object layout is caller-defined; next pointers live at objOffNext and the
// key at objOffKey. Returns the matching object or 0. The first key load
// mirrors the compiled memcmp: it dereferences the RhtPtr result
// unconditionally once the emptiness test has passed, so a torn double
// fetch crashes the kernel here.
func (k *Kernel) RhashtableLookup(t *vm.Thread, ht, key uint64, objOffKey, objOffNext uint64, loadKey trace.Ins) uint64 {
	t.RCUReadLock()
	defer t.RCUReadUnlock()
	bkt := rhtBucket(ht, k.rhtHash(t, ht, key))
	obj, ok := k.RhtPtr(t, bkt)
	if !ok {
		return 0
	}
	for {
		got := t.Load(loadKey, obj+objOffKey, 8) // memcmp(ptr + key_offset, ...): null deref if obj == 0
		if got == key {
			return obj
		}
		obj = t.LoadMarked(insRhtObjNext, obj+objOffNext, 8)
		if obj == 0 {
			return 0
		}
	}
}

// RhashtableInsert links obj at the head of key's bucket chain under the
// table lock, finishing with rht_assign_unlock's store of the bucket word.
func (k *Kernel) RhashtableInsert(t *vm.Thread, ht, key, obj uint64, objOffNext uint64) {
	bkt := rhtBucket(ht, k.rhtHash(t, ht, key))
	t.Lock(insRhtLock, k.G.MsgHTLock)
	head := t.Load(insRhtInsertLoad, bkt, 8) &^ uint64(1)
	t.StoreMarked(insRhtInsertChain, obj+objOffNext, 8, head)
	t.StoreMarked(insRhtAssign, bkt, 8, obj)
	t.Unlock(insRhtUnlock, k.G.MsgHTLock)
}

// RhashtableRemove unlinks the object with the given key under the table
// lock. Unlinking the chain head ends in rht_assign_unlock storing the new
// head — zero for a singleton chain, which is the write half of issue #1.
func (k *Kernel) RhashtableRemove(t *vm.Thread, ht, key uint64, objOffKey, objOffNext uint64, loadKey trace.Ins) uint64 {
	bkt := rhtBucket(ht, k.rhtHash(t, ht, key))
	t.Lock(insRhtLock, k.G.MsgHTLock)
	prev := uint64(0)
	obj := t.Load(insRhtInsertLoad, bkt, 8) &^ uint64(1)
	for obj != 0 {
		got := t.Load(loadKey, obj+objOffKey, 8)
		if got == key {
			next := t.Load(insRhtObjNext, obj+objOffNext, 8)
			if prev == 0 {
				t.StoreMarked(insRhtAssign, bkt, 8, next) // zeroes the bucket for singletons
			} else {
				t.StoreMarked(insRhtInsertChain, prev+objOffNext, 8, next)
			}
			t.Unlock(insRhtUnlock, k.G.MsgHTLock)
			return obj
		}
		prev = obj
		obj = t.Load(insRhtObjNext, obj+objOffNext, 8)
	}
	t.Unlock(insRhtUnlock, k.G.MsgHTLock)
	return 0
}
