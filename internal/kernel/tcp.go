package kernel

import (
	"snowboard/internal/trace"
	"snowboard/internal/vm"
)

// TCP congestion-control selection, carrying issue #16:
// tcp_set_default_congestion_control() rewrites the global default CA name
// byte-by-byte with no lock against tcp_set_congestion_control() readers
// that resolve the "default" alias — a (benign) torn-name data race.

// struct tcp_sock private layout.
const (
	tcpOffLock      = 0
	tcpOffCAName    = 8 // 8-byte congestion algorithm name
	tcpOffState     = 16
	tcpOffSndCwnd   = 24
	tcpSockStructSz = 32
)

// CAName is an 8-byte congestion-control algorithm name.
type CAName [8]byte

// Known congestion-control algorithms, addressable by index from test args.
var caTable = []CAName{
	{'c', 'u', 'b', 'i', 'c', 0, 0, 0},
	{'r', 'e', 'n', 'o', 0, 0, 0, 0},
	{'b', 'b', 'r', 0, 0, 0, 0, 0},
	{'v', 'e', 'g', 'a', 's', 0, 0, 0},
}

var (
	insTCPSetDefStrcpy = trace.DefIns("tcp_set_default_congestion_control:strcpy_name")
	insTCPSetCALoadDef = trace.DefIns("tcp_set_congestion_control:load_default_name")
	insTCPCAFindWord   = trace.DefIns("tcp_ca_find:memcmp_word")
	insTCPSetCAStore   = trace.DefIns("tcp_set_congestion_control:store_ca_name")
	insTCPConnLock     = trace.DefIns("tcp_v4_connect:lock_sock")
	insTCPConnUnlock   = trace.DefIns("tcp_v4_connect:release_sock")
	insTCPConnState    = trace.DefIns("tcp_v4_connect:store_state")
	insTCPConnCwnd     = trace.DefIns("tcp_v4_connect:init_snd_cwnd")
	insTCPSendLoadSt   = trace.DefIns("tcp_sendmsg:load_state")
	insTCPSendCwnd     = trace.DefIns("tcp_sendmsg:load_snd_cwnd")
)

func (k *Kernel) bootTCP() {
	k.G.TCPDefaultCA = k.staticAlloc(8)
	k.M.Mem.WriteBytes(k.G.TCPDefaultCA, caTable[0][:])
}

// TCPSetDefaultCongestionControl installs caTable[idx] as the system default
// with plain byte stores (the issue #16 writer).
func (k *Kernel) TCPSetDefaultCongestionControl(t *vm.Thread, idx uint64) int64 {
	if int(idx) >= len(caTable) {
		return errRet(ENOENT)
	}
	name := caTable[idx]
	for i := 0; i < 8; i++ {
		t.Store(insTCPSetDefStrcpy, k.G.TCPDefaultCA+uint64(i), 1, uint64(name[i]))
	}
	return 0
}

// TCPSetCongestionControl sets the socket's algorithm. idx 0xff means the
// "default" alias, which resolves by reading the global default name with
// plain byte loads (the issue #16 reader).
func (k *Kernel) TCPSetCongestionControl(t *vm.Thread, sk, idx uint64) int64 {
	var name CAName
	if idx == 0xff {
		// Fast path: memcmp compares the name one word at a time, an
		// 8-byte load against the writer's byte stores — an unaligned
		// channel (different range lengths) for S-CH-UNALIGNED.
		word := t.Load(insTCPCAFindWord, k.G.TCPDefaultCA, 8)
		_ = word
		for i := 0; i < 8; i++ {
			name[i] = byte(t.Load(insTCPSetCALoadDef, k.G.TCPDefaultCA+uint64(i), 1))
		}
	} else {
		if int(idx) >= len(caTable) {
			return errRet(ENOENT)
		}
		name = caTable[idx]
	}
	for i := 0; i < 8; i++ {
		t.Store(insTCPSetCAStore, sk+tcpOffCAName+uint64(i), 1, uint64(name[i]))
	}
	return 0
}

// TCPConnect transitions the socket to ESTABLISHED under the socket lock
// (normal, well-synchronized behavior that enriches sequential traces).
func (k *Kernel) TCPConnect(t *vm.Thread, sk uint64) int64 {
	t.Lock(insTCPConnLock, sk+tcpOffLock)
	t.Store(insTCPConnState, sk+tcpOffState, 8, 1 /* TCP_ESTABLISHED */)
	t.Store(insTCPConnCwnd, sk+tcpOffSndCwnd, 8, 10)
	t.Unlock(insTCPConnUnlock, sk+tcpOffLock)
	return 0
}

// TCPSendmsg transmits size bytes if the connection is established.
func (k *Kernel) TCPSendmsg(t *vm.Thread, sk, size uint64) int64 {
	st := t.Load(insTCPSendLoadSt, sk+tcpOffState, 8)
	if st != 1 {
		return errRet(ENOTCONN)
	}
	cwnd := t.Load(insTCPSendCwnd, sk+tcpOffSndCwnd, 8)
	_ = cwnd
	k.DevQueueXmit(t, k.G.Eth0, size)
	return int64(size)
}
