package kernel

import (
	"testing"

	"snowboard/internal/vm"
)

// bootTest boots a kernel of the given version on a fresh machine.
func bootTest(version Version) (*Kernel, *vm.Machine) {
	m := vm.NewMachine()
	k := Boot(m, Config{Version: version})
	return k, m
}

// runSyscalls executes a thread body against the booted kernel.
func runSyscalls(t *testing.T, k *Kernel, fn func(p *Proc)) {
	t.Helper()
	k.M.Spawn("test", StackFor(0), func(th *vm.Thread) {
		fn(NewProc(k, th, 0))
	})
	if err := k.M.Run(vm.SeqScheduler{}, 0); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(k.M.Faults()) > 0 {
		t.Fatalf("kernel crashed: %v", k.M.Faults())
	}
}

func TestBootLayoutDeterministic(t *testing.T) {
	k1, _ := bootTest(V5_12_RC3)
	k2, _ := bootTest(V5_12_RC3)
	if k1.G != k2.G {
		t.Fatalf("global layout differs across boots:\n%+v\n%+v", k1.G, k2.G)
	}
}

func TestBootDefaultsVersion(t *testing.T) {
	m := vm.NewMachine()
	k := Boot(m, Config{})
	if k.Cfg.Version != V5_12_RC3 {
		t.Fatalf("default version %q", k.Cfg.Version)
	}
}

func TestStackForBounds(t *testing.T) {
	if StackFor(0) != StackBase || StackFor(1) != StackBase+8192 {
		t.Fatal("stack layout wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range thread accepted")
		}
	}()
	StackFor(MaxThreads)
}

func TestUserRegionBounds(t *testing.T) {
	if UserRegion(1) != UserBase+UserProcSize {
		t.Fatal("user region layout wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range slot accepted")
		}
	}()
	UserRegion(MaxProcs)
}

func TestKmallocKfreeReuse(t *testing.T) {
	k, _ := bootTest(V5_12_RC3)
	runSyscalls(t, k, func(p *Proc) {
		a := k.Kmalloc(p.T, 64)
		if a == 0 {
			t.Error("kmalloc failed")
		}
		k.Kfree(p.T, a, 64)
		b := k.Kmalloc(p.T, 64)
		if b != a {
			t.Errorf("freelist not reused: %#x then %#x", a, b)
		}
		c := k.Kmalloc(p.T, 64)
		if c == b {
			t.Error("double allocation of the same block")
		}
	})
}

func TestKzallocZeroes(t *testing.T) {
	k, _ := bootTest(V5_12_RC3)
	runSyscalls(t, k, func(p *Proc) {
		a := k.Kmalloc(p.T, 64)
		p.T.Store(insKzallocZero, a, 8, 0xdeadbeef)
		k.Kfree(p.T, a, 64)
		b := k.Kzalloc(p.T, 64)
		if b != a {
			t.Fatalf("expected freelist reuse")
		}
		if v := p.T.Load(insKzallocZero, b, 8); v != 0 {
			t.Errorf("kzalloc left stale data %#x", v)
		}
	})
}

func TestSizeClassRounding(t *testing.T) {
	for _, tc := range []struct{ size, class int }{
		{1, 16}, {16, 16}, {17, 32}, {100, 128}, {1024, 1024},
	} {
		if _, c := sizeClass(tc.size); c != tc.class {
			t.Errorf("sizeClass(%d) = %d, want %d", tc.size, c, tc.class)
		}
	}
}

func TestSocketKinds(t *testing.T) {
	k, _ := bootTest(V5_12_RC3)
	runSyscalls(t, k, func(p *Proc) {
		cases := []struct {
			args []uint64
			want FDKind
		}{
			{[]uint64{AFInet, SockStream, 0}, FDSockTCP},
			{[]uint64{AFInet, SockDgram, 0}, FDSockUDP},
			{[]uint64{AFInet6, SockRaw, 0}, FDSockRaw6},
			{[]uint64{AFPacket, SockRaw, 0}, FDSockPacket},
			{[]uint64{AFPppox, SockDgram, PxProtoOL2TP}, FDSockPPP},
		}
		for _, tc := range cases {
			fd := k.Invoke(p, SysSocketNr, tc.args)
			if fd < 0 {
				t.Errorf("socket%v failed: %d", tc.args, fd)
				continue
			}
			d, ok := p.FD(uint64(fd))
			if !ok || d.Kind != tc.want {
				t.Errorf("socket%v kind %v, want %v", tc.args, d.Kind, tc.want)
			}
		}
		if rc := k.Invoke(p, SysSocketNr, []uint64{99, 99, 0}); rc != -EINVAL {
			t.Errorf("bogus socket: %d", rc)
		}
	})
}

func TestBadFDErrors(t *testing.T) {
	k, _ := bootTest(V5_12_RC3)
	runSyscalls(t, k, func(p *Proc) {
		if rc := k.Invoke(p, SysSendmsgNr, []uint64{42, 64}); rc != -EBADF {
			t.Errorf("sendmsg on bad fd: %d", rc)
		}
		if rc := k.Invoke(p, SysCloseNr, []uint64{42}); rc != -EBADF {
			t.Errorf("close on bad fd: %d", rc)
		}
	})
}

func TestIoctlWrongKindENOTTY(t *testing.T) {
	k, _ := bootTest(V5_12_RC3)
	runSyscalls(t, k, func(p *Proc) {
		fd := k.Invoke(p, SysOpenNr, []uint64{0, 0}) // /dev/sda
		if rc := k.Invoke(p, SysIoctlNr, []uint64{uint64(fd), SIOCGIFHWADDR, 0}); rc != -ENOTTY {
			t.Errorf("net ioctl on block fd: %d", rc)
		}
		if rc := k.Invoke(p, SysIoctlNr, []uint64{uint64(fd), TIOCSSERIAL, 0}); rc != -ENOTTY {
			t.Errorf("tty ioctl on block fd: %d", rc)
		}
	})
}

func TestMsgQueueLifecycle(t *testing.T) {
	k, _ := bootTest(V5_12_RC3)
	runSyscalls(t, k, func(p *Proc) {
		id1 := k.Invoke(p, SysMsggetNr, []uint64{0x5ee})
		if id1 < 0 {
			t.Fatalf("msgget: %d", id1)
		}
		id2 := k.Invoke(p, SysMsggetNr, []uint64{0x5ee})
		if id2 != id1 {
			t.Errorf("second msgget id %d != %d", id2, id1)
		}
		if rc := k.Invoke(p, SysMsgctlNr, []uint64{0x5ee, IPCStat}); rc <= 0 {
			t.Errorf("stat: %d", rc)
		}
		if rc := k.Invoke(p, SysMsgctlNr, []uint64{0x5ee, IPCRmid}); rc != 0 {
			t.Errorf("rmid: %d", rc)
		}
		if rc := k.Invoke(p, SysMsgctlNr, []uint64{0x5ee, IPCRmid}); rc != -ENOENT {
			t.Errorf("double rmid: %d", rc)
		}
		// Boot-time queues are still reachable.
		if rc := k.Invoke(p, SysMsgctlNr, []uint64{0x1000, IPCStat}); rc <= 0 {
			t.Errorf("boot queue stat: %d", rc)
		}
	})
}

func TestConfigfsLifecycle(t *testing.T) {
	k, _ := bootTest(V5_12_RC3)
	runSyscalls(t, k, func(p *Proc) {
		if rc := k.Invoke(p, SysOpenatCfsNr, []uint64{0x77}); rc != -ENOENT {
			t.Errorf("lookup of absent dir: %d", rc)
		}
		if rc := k.Invoke(p, SysMkdirNr, []uint64{0x77}); rc != 0 {
			t.Errorf("mkdir: %d", rc)
		}
		if rc := k.Invoke(p, SysOpenatCfsNr, []uint64{0x77}); rc != 0 {
			t.Errorf("lookup after mkdir: %d", rc)
		}
		if rc := k.Invoke(p, SysRmdirNr, []uint64{0x77}); rc != 0 {
			t.Errorf("rmdir: %d", rc)
		}
		if rc := k.Invoke(p, SysOpenatCfsNr, []uint64{0x77}); rc != -ENOENT {
			t.Errorf("lookup after rmdir: %d", rc)
		}
		// Boot-time directories are visible.
		if rc := k.Invoke(p, SysOpenatCfsNr, []uint64{0x100}); rc != 0 {
			t.Errorf("boot dir lookup: %d", rc)
		}
	})
}

func TestExt4SequentialConsistency(t *testing.T) {
	k, _ := bootTest(V5_12_RC3)
	runSyscalls(t, k, func(p *Proc) {
		fd := k.Invoke(p, SysOpenNr, []uint64{3, 0})
		if fd < 0 {
			t.Fatalf("open: %d", fd)
		}
		if rc := k.Invoke(p, SysWriteNr, []uint64{uint64(fd), 777, 4096}); rc < 0 {
			t.Fatalf("write: %d", rc)
		}
		if rc := k.Invoke(p, SysReadNr, []uint64{uint64(fd), 4096}); rc < 0 {
			t.Fatalf("read: %d", rc)
		}
		if rc := k.Invoke(p, SysIoctlNr, []uint64{uint64(fd), Ext4IOCSwapBoot, 0}); rc != 0 {
			t.Fatalf("swap_boot: %d", rc)
		}
		if rc := k.Invoke(p, SysMountNr, nil); rc != 0 {
			t.Fatalf("remount after sequential swap: %d", rc)
		}
	})
	if msgs := k.FsckHost(); len(msgs) != 0 {
		t.Fatalf("fsck dirty after sequential ops: %v", msgs)
	}
}

func TestExt4RenameKeepsHeaderValid(t *testing.T) {
	k, _ := bootTest(V5_12_RC3)
	runSyscalls(t, k, func(p *Proc) {
		if rc := k.Invoke(p, SysRenameNr, []uint64{3, 4}); rc != 0 {
			t.Fatalf("rename: %d", rc)
		}
		fd := k.Invoke(p, SysOpenNr, []uint64{3, 0})
		if rc := k.Invoke(p, SysReadNr, []uint64{uint64(fd), 4096}); rc < 0 {
			t.Fatalf("read after rename: %d", rc)
		}
	})
}

func TestBlockSizeValidation(t *testing.T) {
	k, _ := bootTest(V5_12_RC3)
	runSyscalls(t, k, func(p *Proc) {
		fd := k.Invoke(p, SysOpenNr, []uint64{0, 0})
		if rc := k.Invoke(p, SysIoctlNr, []uint64{uint64(fd), BLKBSZSET, 1024}); rc != 0 {
			t.Errorf("valid blocksize rejected: %d", rc)
		}
		if rc := k.Invoke(p, SysReadNr, []uint64{uint64(fd), 4096}); rc != 0 {
			t.Errorf("read after sequential resize: %d", rc)
		}
	})
}

func TestTTYOpenCloseCounts(t *testing.T) {
	k, m := bootTest(V5_12_RC3)
	runSyscalls(t, k, func(p *Proc) {
		fd := k.Invoke(p, SysOpenNr, []uint64{1, 0})
		if fd < 0 {
			t.Fatalf("open tty: %d", fd)
		}
		if n := m.Mem.Read(k.G.UartPort+uartOffOpenCount, 8); n != 1 {
			t.Errorf("open count %d", n)
		}
		if rc := k.Invoke(p, SysCloseNr, []uint64{uint64(fd)}); rc != 0 {
			t.Fatalf("close: %d", rc)
		}
		if n := m.Mem.Read(k.G.UartPort+uartOffOpenCount, 8); n != 0 {
			t.Errorf("open count after close %d", n)
		}
	})
}

func TestSndCtlAccountingLimit(t *testing.T) {
	k, _ := bootTest(V5_12_RC3)
	runSyscalls(t, k, func(p *Proc) {
		fd := k.Invoke(p, SysOpenNr, []uint64{2, 0})
		// The card allows 8192 bytes; 9 adds of 1023 bytes exceed it.
		var lastRC int64
		for i := 0; i < 9; i++ {
			lastRC = k.Invoke(p, SysIoctlNr, []uint64{uint64(fd), SndCtlElemAddIoctl, 1023})
		}
		if lastRC != -ENOMEM {
			t.Errorf("accounting limit not enforced: %d", lastRC)
		}
		if rc := k.Invoke(p, SysIoctlNr, []uint64{uint64(fd), SndCtlElemRemoveIoctl, 1023}); rc != 0 {
			t.Errorf("remove: %d", rc)
		}
	})
}

func TestFanoutLifecycle(t *testing.T) {
	k, m := bootTest(V5_12_RC3)
	runSyscalls(t, k, func(p *Proc) {
		var fds []int64
		for i := 0; i < 5; i++ {
			fd := k.Invoke(p, SysSocketNr, []uint64{AFPacket, SockRaw, 0})
			fds = append(fds, fd)
		}
		// Group capacity is 4; the fifth join must fail.
		var last int64
		for _, fd := range fds {
			last = k.Invoke(p, SysSetsockoptNr, []uint64{uint64(fd), PacketFanout, 0})
		}
		if last != -ENOSPC {
			t.Errorf("fanout overflow not detected: %d", last)
		}
		// Leaving then sending still works.
		if rc := k.Invoke(p, SysSetsockoptNr, []uint64{uint64(fds[0]), PacketFanoutLeave, 0}); rc != 0 {
			t.Errorf("leave: %d", rc)
		}
		if rc := k.Invoke(p, SysSendmsgNr, []uint64{uint64(fds[1]), 64}); rc < 0 {
			t.Errorf("sendmsg: %d", rc)
		}
	})
	_ = m
}

func TestTCPConnectSendmsg(t *testing.T) {
	k, _ := bootTest(V5_12_RC3)
	runSyscalls(t, k, func(p *Proc) {
		fd := k.Invoke(p, SysSocketNr, []uint64{AFInet, SockStream, 0})
		if rc := k.Invoke(p, SysSendmsgNr, []uint64{uint64(fd), 64}); rc != -ENOTCONN {
			t.Errorf("sendmsg before connect: %d", rc)
		}
		if rc := k.Invoke(p, SysConnectNr, []uint64{uint64(fd), 1, 0}); rc != 0 {
			t.Errorf("connect: %d", rc)
		}
		if rc := k.Invoke(p, SysSendmsgNr, []uint64{uint64(fd), 64}); rc != 64 {
			t.Errorf("sendmsg after connect: %d", rc)
		}
	})
}

func TestCongestionControlTable(t *testing.T) {
	k, m := bootTest(V5_12_RC3)
	runSyscalls(t, k, func(p *Proc) {
		fd := k.Invoke(p, SysSocketNr, []uint64{AFInet, SockStream, 0})
		if rc := k.Invoke(p, SysSetsockoptNr, []uint64{uint64(fd), TCPDefaultCC, 2}); rc != 0 {
			t.Fatalf("set default: %d", rc)
		}
		if rc := k.Invoke(p, SysSetsockoptNr, []uint64{uint64(fd), TCPCongestion, 0xff}); rc != 0 {
			t.Fatalf("set via default alias: %d", rc)
		}
		d, _ := p.FD(uint64(fd))
		got := make([]byte, 8)
		copy(got, m.Mem.ReadBytes(d.Obj+tcpOffCAName, 8))
		if string(got[:3]) != "bbr" {
			t.Errorf("socket CA %q", got)
		}
	})
}

func TestMTUValidation(t *testing.T) {
	k, _ := bootTest(V5_12_RC3)
	runSyscalls(t, k, func(p *Proc) {
		fd := k.Invoke(p, SysSocketNr, []uint64{AFInet, SockDgram, 0})
		if rc := k.Invoke(p, SysIoctlNr, []uint64{uint64(fd), SIOCSIFMTU, 10}); rc != -EINVAL {
			t.Errorf("tiny mtu accepted: %d", rc)
		}
		if rc := k.Invoke(p, SysIoctlNr, []uint64{uint64(fd), SIOCSIFMTU, 9000}); rc != 0 {
			t.Errorf("jumbo mtu rejected: %d", rc)
		}
		if got := k.Invoke(p, SysIoctlNr, []uint64{uint64(fd), SIOCGIFMTU, 0}); got != 9000 {
			t.Errorf("mtu readback: %d", got)
		}
	})
}

func TestRawv6EMSGSIZE(t *testing.T) {
	k, _ := bootTest(V5_12_RC3)
	runSyscalls(t, k, func(p *Proc) {
		fd := k.Invoke(p, SysSocketNr, []uint64{AFInet6, SockRaw, 0})
		if rc := k.Invoke(p, SysSendmsgNr, []uint64{uint64(fd), 9000}); rc != -EMSGSIZE {
			t.Errorf("oversize send: %d", rc)
		}
		if rc := k.Invoke(p, SysSendmsgNr, []uint64{uint64(fd), 512}); rc != 512 {
			t.Errorf("normal send: %d", rc)
		}
	})
}

func TestL2TPBootTunnelsReachable(t *testing.T) {
	k, _ := bootTest(V5_12_RC3)
	runSyscalls(t, k, func(p *Proc) {
		ppp := k.Invoke(p, SysSocketNr, []uint64{AFPppox, SockDgram, PxProtoOL2TP})
		udp := k.Invoke(p, SysSocketNr, []uint64{AFInet, SockDgram, 0})
		// Tunnel id 103 exists at boot: connect attaches without creating.
		if rc := k.Invoke(p, SysConnectNr, []uint64{uint64(ppp), 103, uint64(udp)}); rc != 0 {
			t.Fatalf("connect to boot tunnel: %d", rc)
		}
		if rc := k.Invoke(p, SysSendmsgNr, []uint64{uint64(ppp), 256}); rc != 256 {
			t.Fatalf("sendmsg via boot tunnel: %d", rc)
		}
	})
}

func TestSyscallTableComplete(t *testing.T) {
	for nr := 0; nr < NumSyscalls; nr++ {
		s := &Syscalls[nr]
		if s.Name == "" || s.Fn == nil {
			t.Fatalf("syscall %d incomplete", nr)
		}
		got, ok := SyscallByName(s.Name)
		if !ok || got != nr {
			t.Fatalf("SyscallByName(%q) = %d,%v", s.Name, got, ok)
		}
		for ai, a := range s.Args {
			if a.Kind == ArgConst && len(a.Vals) == 0 && s.Name != "mount" {
				t.Fatalf("%s arg %d has no candidate values", s.Name, ai)
			}
		}
	}
}

func TestInvokeBadNumber(t *testing.T) {
	k, _ := bootTest(V5_12_RC3)
	runSyscalls(t, k, func(p *Proc) {
		if rc := k.Invoke(p, -1, nil); rc != -EINVAL {
			t.Errorf("negative nr: %d", rc)
		}
		if rc := k.Invoke(p, NumSyscalls, nil); rc != -EINVAL {
			t.Errorf("out-of-range nr: %d", rc)
		}
	})
}

func TestFDTableLimit(t *testing.T) {
	k, _ := bootTest(V5_12_RC3)
	runSyscalls(t, k, func(p *Proc) {
		var rc int64
		for i := 0; i < MaxFDs+2; i++ {
			rc = k.Invoke(p, SysSocketNr, []uint64{AFInet, SockDgram, 0})
		}
		if rc != -EMFILE {
			t.Errorf("fd table limit not enforced: %d", rc)
		}
	})
}

func TestVersionGates(t *testing.T) {
	k53, _ := bootTest(V5_3_10)
	k512, _ := bootTest(V5_12_RC3)
	if !k53.is5_3() || k53.is5_12() {
		t.Fatal("5.3.10 gates wrong")
	}
	if !k512.is5_12() || k512.is5_3() {
		t.Fatal("5.12-rc3 gates wrong")
	}
}
