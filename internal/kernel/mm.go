package kernel

import (
	"snowboard/internal/trace"
	"snowboard/internal/vm"
)

// Slab allocator. Allocation metadata (bump pointer, freelist heads, object
// counters) lives in guest memory so that it is captured by snapshots and
// so that allocator traffic appears in memory traces — which is what makes
// the slab-counter data race (issue #13, cache_alloc_refill()/free_block())
// reachable from *every* test that allocates memory, matching the paper's
// observation that it is found by all strategies including the baselines.

var sizeClasses = []int{16, 32, 64, 128, 256, 512, 1024}

var (
	insKmallocLoadHead   = trace.DefIns("kmalloc:load_freelist_head")
	insKmallocLoadNext   = trace.DefIns("kmalloc:load_free_next")
	insKmallocStoreHead  = trace.DefIns("kmalloc:store_freelist_head")
	insKmallocLoadBump   = trace.DefIns("kmalloc:load_heap_next")
	insKmallocStoreBump  = trace.DefIns("kmalloc:store_heap_next")
	insRefillLoadFree    = trace.DefIns("cache_alloc_refill:load_free_objects")
	insRefillStoreFree   = trace.DefIns("cache_alloc_refill:store_free_objects")
	insFreeBlockLoadFree = trace.DefIns("free_block:load_free_objects")
	insFreeBlockStore    = trace.DefIns("free_block:store_free_objects")
	insKfreeStoreNext    = trace.DefIns("kfree:store_free_next")
	insKfreeLoadHead     = trace.DefIns("kfree:load_freelist_head")
	insKfreeStoreHead    = trace.DefIns("kfree:store_freelist_head")
	insKzallocZero       = trace.DefIns("kzalloc:memset")
	insAllocsInc         = trace.DefIns("kmalloc:count_allocs")
	insSlabLock          = trace.DefIns("kmalloc:slab_lock")
	insSlabUnlock        = trace.DefIns("kmalloc:slab_unlock")
)

func (k *Kernel) bootMM() {
	k.G.SlabFreeObjects = k.staticAlloc(8)
	k.G.SlabNumAllocs = k.staticAlloc(8)
	k.G.HeapNext = k.staticAlloc(8)
	k.G.Freelists = k.staticAlloc(8 * len(sizeClasses))
	k.G.SlabLock = k.staticAlloc(8)
	k.put(k.G.HeapNext, HeapBase)
	k.put(k.G.SlabFreeObjects, 4096) // pretend a mostly-full cache
}

func sizeClass(size int) (idx, csize int) {
	for i, c := range sizeClasses {
		if size <= c {
			return i, c
		}
	}
	panic("kernel: kmalloc size too large")
}

// Kmalloc allocates size bytes of kernel heap memory and returns its guest
// address. The freelist manipulation is lock-protected; the statistics
// counter update is intentionally plain and unsynchronized (issue #13).
func (k *Kernel) Kmalloc(t *vm.Thread, size int) uint64 {
	idx, csize := sizeClass(size)
	head := k.G.Freelists + uint64(idx)*8

	t.Lock(insSlabLock, k.G.SlabLock)
	obj := t.Load(insKmallocLoadHead, head, 8)
	if obj != 0 {
		next := t.Load(insKmallocLoadNext, obj, 8)
		t.Store(insKmallocStoreHead, head, 8, next)
	} else {
		obj = t.Load(insKmallocLoadBump, k.G.HeapNext, 8)
		if obj+uint64(csize) > HeapBase+HeapSize {
			t.Unlock(insSlabUnlock, k.G.SlabLock)
			return 0 // -ENOMEM at the caller
		}
		t.Store(insKmallocStoreBump, k.G.HeapNext, 8, obj+uint64(csize))
	}
	t.Unlock(insSlabUnlock, k.G.SlabLock)

	// Issue #13: the free-object statistic is updated outside any lock on
	// both the allocation (cache_alloc_refill) and free (free_block) paths.
	free := t.Load(insRefillLoadFree, k.G.SlabFreeObjects, 8)
	t.Store(insRefillStoreFree, k.G.SlabFreeObjects, 8, free-1)
	n := t.LoadMarked(insAllocsInc, k.G.SlabNumAllocs, 8)
	t.StoreMarked(insAllocsInc, k.G.SlabNumAllocs, 8, n+1)
	return obj
}

// Kzalloc is Kmalloc followed by zeroing of the requested bytes in 8-byte
// stores (all traced, like a real memset'd allocation).
func (k *Kernel) Kzalloc(t *vm.Thread, size int) uint64 {
	obj := k.Kmalloc(t, size)
	if obj == 0 {
		return 0
	}
	for off := 0; off < size; off += 8 {
		t.Store(insKzallocZero, obj+uint64(off), 8, 0)
	}
	return obj
}

// Kfree returns an object of the given size to its freelist. The statistics
// update is again unsynchronized (the free_block side of issue #13).
func (k *Kernel) Kfree(t *vm.Thread, obj uint64, size int) {
	idx, _ := sizeClass(size)
	head := k.G.Freelists + uint64(idx)*8

	t.Lock(insSlabLock, k.G.SlabLock)
	old := t.Load(insKfreeLoadHead, head, 8)
	t.Store(insKfreeStoreNext, obj, 8, old)
	t.Store(insKfreeStoreHead, head, 8, obj)
	t.Unlock(insSlabUnlock, k.G.SlabLock)

	free := t.Load(insFreeBlockLoadFree, k.G.SlabFreeObjects, 8)
	t.Store(insFreeBlockStore, k.G.SlabFreeObjects, 8, free+1)
}

// --- generic_fadvise (issue #5 reader side) ---

var insFadviseLoadBS = trace.DefIns("generic_fadvise:load_bd_block_size")

// GenericFadvise models mm/fadvise.c: it reads the block device's block
// size without holding bd_mutex to align the advised range. The unlocked
// read races with blkdev_ioctl(BLKBSZSET) (issue #5).
func (k *Kernel) GenericFadvise(t *vm.Thread, offset, length uint64) int64 {
	bs := t.Load(insFadviseLoadBS, k.G.Bdev+bdevOffBlockSize, 8)
	if bs == 0 {
		return errRet(EINVAL)
	}
	endbyte := (offset + length) &^ (bs - 1)
	_ = endbyte
	return 0
}
