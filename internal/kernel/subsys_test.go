package kernel

import (
	"testing"

	"snowboard/internal/trace"
	"snowboard/internal/vm"
)

func TestFsckHostDetectsCorruption(t *testing.T) {
	k, m := bootTest(V5_12_RC3)
	if msgs := k.FsckHost(); len(msgs) != 0 {
		t.Fatalf("fresh fs dirty: %v", msgs)
	}
	// Corrupt inode 2's checksum directly (as an interrupted swap would).
	ino := k.InodeAddr(2)
	m.Mem.Write(ino+inoOffCsum, 8, 0xdead)
	msgs := k.FsckHost()
	if len(msgs) != 1 {
		t.Fatalf("fsck messages: %v", msgs)
	}
	// And a cleared extent magic.
	m.Mem.Write(ino+inoOffEhMagic, 8, 0)
	if msgs := k.FsckHost(); len(msgs) != 2 {
		t.Fatalf("fsck messages after magic clear: %v", msgs)
	}
}

func TestExt4CsumMath(t *testing.T) {
	if ext4Csum(100, 7) == ext4Csum(101, 7) {
		t.Fatal("csum does not depend on block")
	}
	if ext4Csum(100, 7) == ext4Csum(100, 8) {
		t.Fatal("csum does not depend on generation")
	}
}

func TestSwapBootSwapsBlocks(t *testing.T) {
	k, m := bootTest(V5_12_RC3)
	boot, tgt := k.InodeAddr(0), k.InodeAddr(3)
	b0 := m.Mem.Read(boot+inoOffBlock, 8)
	b3 := m.Mem.Read(tgt+inoOffBlock, 8)
	runSyscalls(t, k, func(p *Proc) {
		if rc := k.Ext4SwapBootLoader(p.T, tgt); rc != 0 {
			t.Fatalf("swap: %d", rc)
		}
	})
	if m.Mem.Read(boot+inoOffBlock, 8) != b3 || m.Mem.Read(tgt+inoOffBlock, 8) != b0 {
		t.Fatal("blocks not swapped")
	}
	if msgs := k.FsckHost(); len(msgs) != 0 {
		t.Fatalf("sequential swap left corruption: %v", msgs)
	}
}

func TestSwapBootSelfRejected(t *testing.T) {
	k, _ := bootTest(V5_12_RC3)
	runSyscalls(t, k, func(p *Proc) {
		if rc := k.Ext4SwapBootLoader(p.T, k.InodeAddr(0)); rc != -EINVAL {
			t.Fatalf("self swap: %d", rc)
		}
	})
}

func TestMacFromSeedNeverMulticast(t *testing.T) {
	for seed := uint64(0); seed < 300; seed++ {
		mac := macFromSeed(seed)
		if mac[0]&1 != 0 {
			t.Fatalf("seed %d produced multicast MAC %v", seed, mac)
		}
	}
}

func TestMACWriteReadRoundtrip(t *testing.T) {
	k, _ := bootTest(V5_3_10)
	want := macFromSeed(0x2)
	runSyscalls(t, k, func(p *Proc) {
		k.RtnlLock(p.T)
		k.EthCommitMacAddrChange(p.T, k.G.Eth0, want)
		k.RtnlUnlock(p.T)
		got := k.DevIfsiocLocked(p.T, k.G.Eth0, p.UserBuf())
		if got != want {
			t.Fatalf("mac %v != %v", got, want)
		}
		// And the packet_getname reader sees the same address.
		fd := k.Invoke(p, SysSocketNr, []uint64{AFPacket, SockRaw, 0})
		d, _ := p.FD(uint64(fd))
		if got := k.PacketGetname(p.T, d.Obj, p.UserBuf()); got != want {
			t.Fatalf("packet_getname %v != %v", got, want)
		}
	})
}

func TestCopyToUserLandsInProcRegion(t *testing.T) {
	k, m := bootTest(V5_3_10)
	mac := macFromSeed(0x55)
	runSyscalls(t, k, func(p *Proc) {
		k.RtnlLock(p.T)
		k.EthCommitMacAddrChange(p.T, k.G.Eth0, mac)
		k.RtnlUnlock(p.T)
		k.DevIfsiocLocked(p.T, k.G.Eth0, p.UserBuf())
	})
	got := m.Mem.ReadBytes(UserRegion(0), EthAlen)
	for i := range mac {
		if got[i] != mac[i] {
			t.Fatalf("user buffer byte %d: %#x != %#x", i, got[i], mac[i])
		}
	}
}

func TestFanoutDemuxPicksMember(t *testing.T) {
	k, _ := bootTest(V5_12_RC3)
	runSyscalls(t, k, func(p *Proc) {
		fd1 := k.Invoke(p, SysSocketNr, []uint64{AFPacket, SockRaw, 0})
		fd2 := k.Invoke(p, SysSocketNr, []uint64{AFPacket, SockRaw, 0})
		for _, fd := range []int64{fd1, fd2} {
			if rc := k.Invoke(p, SysSetsockoptNr, []uint64{uint64(fd), PacketFanout, 0}); rc != 0 {
				t.Fatalf("join: %d", rc)
			}
		}
		d1, _ := p.FD(uint64(fd1))
		f := k.M.Mem.Read(d1.Obj+poOffFanout, 8)
		if f == 0 {
			t.Fatal("fanout group not linked")
		}
		m1 := k.FanoutDemuxRollover(p.T, f, 0)
		m2 := k.FanoutDemuxRollover(p.T, f, 1)
		if m1 == 0 || m2 == 0 || m1 == m2 {
			t.Fatalf("demux members: %#x %#x", m1, m2)
		}
	})
}

func TestRhashtableHashUsesTableSize(t *testing.T) {
	k, _ := bootTest(V5_12_RC3)
	runSyscalls(t, k, func(p *Proc) {
		h := k.rhtHash(p.T, k.G.MsgHT, 0x5ee)
		if h >= rhtNBuckets {
			t.Fatalf("hash %d out of range", h)
		}
	})
}

func TestRemountCountsMounts(t *testing.T) {
	k, m := bootTest(V5_12_RC3)
	runSyscalls(t, k, func(p *Proc) {
		for i := 0; i < 3; i++ {
			if rc := k.Invoke(p, SysMountNr, nil); rc != 0 {
				t.Fatalf("mount %d: %d", i, rc)
			}
		}
	})
	if n := m.Mem.Read(k.G.Ext4Sb+sbOffMountCount, 8); n != 3 {
		t.Fatalf("mount count %d", n)
	}
}

func TestRemountReportsCorruption(t *testing.T) {
	k, m := bootTest(V5_12_RC3)
	m.Mem.Write(k.InodeAddr(1)+inoOffCsum, 8, 0xbad)
	runSyscalls(t, k, func(p *Proc) {
		if rc := k.Invoke(p, SysMountNr, nil); rc != -EINVAL {
			t.Fatalf("mount over corruption: %d", rc)
		}
	})
	if !k.M.Console.Contains("checksum invalid") {
		t.Fatalf("console: %v", k.M.Console.Lines())
	}
}

func TestRawv6ConnectStoresCookie(t *testing.T) {
	k, m := bootTest(V5_12_RC3)
	runSyscalls(t, k, func(p *Proc) {
		fd := k.Invoke(p, SysSocketNr, []uint64{AFInet6, SockRaw, 0})
		if rc := k.Invoke(p, SysConnectNr, []uint64{uint64(fd), 1, 0}); rc != 0 {
			t.Fatalf("connect: %d", rc)
		}
		d, _ := p.FD(uint64(fd))
		if c := m.Mem.Read(d.Obj+raw6OffCookie, 8); c != 1 {
			t.Fatalf("cookie %d (boot sernum is 1)", c)
		}
		// Route deletion bumps the generation; reconnect observes it.
		if rc := k.Invoke(p, SysIoctlNr, []uint64{uint64(fd), SIOCDELRT, 0}); rc != 0 {
			t.Fatalf("delrt: %d", rc)
		}
		if rc := k.Invoke(p, SysConnectNr, []uint64{uint64(fd), 1, 0}); rc != 0 {
			t.Fatalf("reconnect: %d", rc)
		}
		if c := m.Mem.Read(d.Obj+raw6OffCookie, 8); c != 2 {
			t.Fatalf("cookie after clean %d", c)
		}
	})
}

func TestUartAutoconfigRestoresFlags(t *testing.T) {
	k, m := bootTest(V5_12_RC3)
	runSyscalls(t, k, func(p *Proc) {
		fd := k.Invoke(p, SysOpenNr, []uint64{1, 0})
		if rc := k.Invoke(p, SysIoctlNr, []uint64{uint64(fd), TIOCSSERIAL, 0}); rc != 0 {
			t.Fatalf("autoconfig: %d", rc)
		}
	})
	flags := m.Mem.Read(k.G.UartPort+uartOffFlags, 8)
	if flags&AsyncInitialized == 0 {
		t.Fatalf("port left uninitialized: %#x", flags)
	}
}

func TestDoubleFetchVisibleInSequentialProfile(t *testing.T) {
	// The 5.3.10 rht_ptr double fetch must be marked df_leader when the
	// bucket is non-empty, feeding S-CH-DOUBLE.
	k, _ := bootTest(V5_3_10)
	var tr trace.Trace
	k.M.SetTrace(&tr)
	k.M.Spawn("test", StackFor(0), func(th *vm.Thread) {
		p := NewProc(k, th, 0)
		k.Invoke(p, SysMsggetNr, []uint64{0x5ee}) // create
		k.Invoke(p, SysMsggetNr, []uint64{0x5ee}) // lookup: double fetch on non-empty bucket
	})
	if err := k.M.Run(vm.SeqScheduler{}, 0); err != nil {
		t.Fatal(err)
	}
	k.M.SetTrace(nil)
	accs := trace.DefaultFilter(0).Apply(&tr)
	df := trace.MarkDoubleFetches(&accs)
	testIns, _ := trace.LookupIns("rht_ptr:load_bkt_test")
	found := false
	for idx := range df {
		if accs.InsAt(idx) == testIns {
			found = true
		}
	}
	if !found {
		t.Fatal("rht_ptr double fetch not marked as df_leader")
	}
}

func TestKernelVersionGatesRhtPtr(t *testing.T) {
	// 5.12 must issue a single (marked) bucket load; 5.3.10 two plain ones.
	count := func(v Version) (plain, marked int) {
		k, _ := bootTest(v)
		var tr trace.Trace
		k.M.SetTrace(&tr)
		k.M.Spawn("test", StackFor(0), func(th *vm.Thread) {
			p := NewProc(k, th, 0)
			k.Invoke(p, SysMsggetNr, []uint64{0x5ee})
			k.Invoke(p, SysMsggetNr, []uint64{0x5ee})
		})
		if err := k.M.Run(vm.SeqScheduler{}, 0); err != nil {
			t.Fatal(err)
		}
		k.M.SetTrace(nil)
		testIns, _ := trace.LookupIns("rht_ptr:load_bkt_test")
		useIns, _ := trace.LookupIns("rht_ptr:load_bkt_use")
		for _, a := range tr.Accesses() {
			if a.Ins == testIns || a.Ins == useIns {
				if a.Marked {
					marked++
				} else {
					plain++
				}
			}
		}
		return plain, marked
	}
	plain53, marked53 := count(V5_3_10)
	if plain53 == 0 || marked53 != 0 {
		t.Fatalf("5.3.10 bucket loads: plain=%d marked=%d", plain53, marked53)
	}
	plain512, marked512 := count(V5_12_RC3)
	if plain512 != 0 || marked512 == 0 {
		t.Fatalf("5.12-rc3 bucket loads: plain=%d marked=%d", plain512, marked512)
	}
}

func TestSndRemoveClampsToZero(t *testing.T) {
	k, m := bootTest(V5_12_RC3)
	runSyscalls(t, k, func(p *Proc) {
		fd := k.Invoke(p, SysOpenNr, []uint64{2, 0})
		if rc := k.Invoke(p, SysIoctlNr, []uint64{uint64(fd), SndCtlElemRemoveIoctl, 512}); rc != 0 {
			t.Fatalf("remove on empty: %d", rc)
		}
	})
	if n := m.Mem.Read(k.G.SndCard+cardOffUserAllocSz, 8); n != 0 {
		t.Fatalf("alloc size underflowed: %d", n)
	}
}

func TestL2TPSendmsgUnconnected(t *testing.T) {
	k, _ := bootTest(V5_12_RC3)
	runSyscalls(t, k, func(p *Proc) {
		fd := k.Invoke(p, SysSocketNr, []uint64{AFPppox, SockDgram, PxProtoOL2TP})
		if rc := k.Invoke(p, SysSendmsgNr, []uint64{uint64(fd), 64}); rc != -ENOTCONN {
			t.Fatalf("unconnected sendmsg: %d", rc)
		}
	})
}
