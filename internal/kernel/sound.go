package kernel

import (
	"snowboard/internal/trace"
	"snowboard/internal/vm"
)

// ALSA control core, carrying issue #15: snd_ctl_elem_add() accounts the
// per-card user-control memory with a plain read-modify-write while holding
// only the read side of controls_rwsem, so two concurrent adds race on
// user_ctl_alloc_size (fixed upstream by moving the accounting under the
// write lock).

// struct snd_card layout (static).
const (
	cardOffRwsem        = 0
	cardOffUserAllocSz  = 8 // issue #15 target
	cardOffControlCount = 16
	cardOffMaxUserSz    = 24
	cardStructSz        = 32
)

var (
	insSndRwsemLock   = trace.DefIns("snd_card:down_write_rwsem")
	insSndRwsemUnlock = trace.DefIns("snd_card:up_write_rwsem")
	insSndAddLoadSz   = trace.DefIns("snd_ctl_elem_add:load_user_ctl_alloc_size")
	insSndAddStoreSz  = trace.DefIns("snd_ctl_elem_add:store_user_ctl_alloc_size")
	insSndAddMax      = trace.DefIns("snd_ctl_elem_add:load_max_user_ctl")
	insSndAddCount    = trace.DefIns("snd_ctl_elem_add:inc_controls_count")
	insSndDelLoadSz   = trace.DefIns("snd_ctl_elem_remove:load_user_ctl_alloc_size")
	insSndDelStoreSz  = trace.DefIns("snd_ctl_elem_remove:store_user_ctl_alloc_size")
)

func (k *Kernel) bootSound() {
	k.G.SndCard = k.staticAlloc(cardStructSz)
	k.put(k.G.SndCard+cardOffMaxUserSz, 8192)
}

// SndCtlElemAdd adds a user control of the given byte size. The allocation
// accounting RMW is unlocked (issue #15); only the control list itself is
// protected by the rwsem.
func (k *Kernel) SndCtlElemAdd(t *vm.Thread, size uint64) int64 {
	if size == 0 || size > 1024 {
		return errRet(EINVAL)
	}
	max := t.Load(insSndAddMax, k.G.SndCard+cardOffMaxUserSz, 8)
	cur := t.Load(insSndAddLoadSz, k.G.SndCard+cardOffUserAllocSz, 8)
	if cur+size > max {
		return errRet(ENOMEM)
	}
	t.Store(insSndAddStoreSz, k.G.SndCard+cardOffUserAllocSz, 8, cur+size)

	t.Lock(insSndRwsemLock, k.G.SndCard+cardOffRwsem)
	n := t.Load(insSndAddCount, k.G.SndCard+cardOffControlCount, 8)
	t.Store(insSndAddCount, k.G.SndCard+cardOffControlCount, 8, n+1)
	t.Unlock(insSndRwsemUnlock, k.G.SndCard+cardOffRwsem)
	return 0
}

// SndCtlElemRemove releases size bytes of user-control accounting, with the
// same unlocked RMW pattern.
func (k *Kernel) SndCtlElemRemove(t *vm.Thread, size uint64) int64 {
	cur := t.Load(insSndDelLoadSz, k.G.SndCard+cardOffUserAllocSz, 8)
	if cur < size {
		size = cur
	}
	t.Store(insSndDelStoreSz, k.G.SndCard+cardOffUserAllocSz, 8, cur-size)

	t.Lock(insSndRwsemLock, k.G.SndCard+cardOffRwsem)
	n := t.Load(insSndAddCount, k.G.SndCard+cardOffControlCount, 8)
	if n > 0 {
		t.Store(insSndAddCount, k.G.SndCard+cardOffControlCount, 8, n-1)
	}
	t.Unlock(insSndRwsemUnlock, k.G.SndCard+cardOffRwsem)
	return 0
}
