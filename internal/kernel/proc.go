package kernel

import (
	"snowboard/internal/trace"
	"snowboard/internal/vm"
)

// FDKind tags what a file descriptor refers to. The syscall layer checks
// kinds at dispatch, returning EBADF/ENOTTY like the real kernel, and the
// test generator uses kinds to thread resources between calls.
type FDKind uint8

// File descriptor kinds.
const (
	FDNone FDKind = iota
	FDSockTCP
	FDSockUDP // generic inet datagram socket (tunnel backing)
	FDSockRaw6
	FDSockPacket
	FDSockPPP
	FDFile // ext4 regular file
	FDBlk  // /dev/sda
	FDTTY  // /dev/ttyS0
	FDSnd  // /dev/snd/control
)

// String names the fd kind for reports.
func (k FDKind) String() string {
	switch k {
	case FDSockTCP:
		return "sock-tcp"
	case FDSockUDP:
		return "sock-udp"
	case FDSockRaw6:
		return "sock-raw6"
	case FDSockPacket:
		return "sock-packet"
	case FDSockPPP:
		return "sock-ppp"
	case FDFile:
		return "file"
	case FDBlk:
		return "blk"
	case FDTTY:
		return "tty"
	case FDSnd:
		return "snd"
	}
	return "none"
}

// FDesc is one open descriptor.
type FDesc struct {
	Kind FDKind
	Obj  uint64 // guest address of the socket private / 0
	Ino  int    // inode index for FDFile
}

// MaxFDs bounds the per-process descriptor table.
const MaxFDs = 16

// Proc is the kernel-side context of one user test process: the kernel
// thread servicing it, its descriptor table, and its private user-space
// scratch region (processes never share user memory, §2.2).
type Proc struct {
	K    *Kernel
	T    *vm.Thread
	Slot int // user-region slot

	fds []FDesc
}

// NewProc binds a process context to a kernel thread and user slot.
func NewProc(k *Kernel, t *vm.Thread, slot int) *Proc {
	return &Proc{K: k, T: t, Slot: slot}
}

// UserBuf returns the process's user scratch base address.
func (p *Proc) UserBuf() uint64 { return UserRegion(p.Slot) }

// InstallFD appends a descriptor and returns its number.
func (p *Proc) InstallFD(d FDesc) int64 {
	if len(p.fds) >= MaxFDs {
		return errRet(EMFILE)
	}
	p.fds = append(p.fds, d)
	return int64(len(p.fds) - 1)
}

// FD resolves a descriptor number.
func (p *Proc) FD(n uint64) (FDesc, bool) {
	if n >= uint64(len(p.fds)) {
		return FDesc{}, false
	}
	d := p.fds[n]
	return d, d.Kind != FDNone
}

// CloseFD invalidates a descriptor (the slot is not reused, like a simple
// fd table without recycling).
func (p *Proc) CloseFD(n uint64) bool {
	if n >= uint64(len(p.fds)) || p.fds[n].Kind == FDNone {
		return false
	}
	p.fds[n].Kind = FDNone
	return true
}

// FDs exposes the descriptor table (for tests).
func (p *Proc) FDs() []FDesc { return p.fds }

// --- socket creation ---

// Address families (Linux values).
const (
	AFInet   = 2
	AFInet6  = 10
	AFPacket = 17
	AFPppox  = 24
)

// Socket types.
const (
	SockStream = 1
	SockDgram  = 2
	SockRaw    = 3
)

// PX_PROTO_OL2TP selects the L2TP PPPoX transport.
const PxProtoOL2TP = 1

var (
	insSockAllocState = trace.DefIns("sock_init_data:store_state")
	insSockAllocLock  = trace.DefIns("sock_init_data:init_lock")
)

// SysSocket implements socket(domain, type, protocol).
func (k *Kernel) SysSocket(p *Proc, a []uint64) int64 {
	domain, typ := a[0], a[1]
	t := p.T
	switch {
	case domain == AFInet && typ == SockStream:
		sk := k.Kzalloc(t, tcpSockStructSz)
		if sk == 0 {
			return errRet(ENOMEM)
		}
		t.Store(insSockAllocState, sk+tcpOffState, 8, 0)
		return p.InstallFD(FDesc{Kind: FDSockTCP, Obj: sk})
	case domain == AFInet && typ == SockDgram:
		sk := k.Kzalloc(t, sockStructSz)
		if sk == 0 {
			return errRet(ENOMEM)
		}
		t.Store(insSockAllocLock, sk+sockOffLock, 8, 0)
		return p.InstallFD(FDesc{Kind: FDSockUDP, Obj: sk})
	case domain == AFInet6 && typ == SockRaw:
		sk := k.Kzalloc(t, raw6SockStructSz)
		if sk == 0 {
			return errRet(ENOMEM)
		}
		return p.InstallFD(FDesc{Kind: FDSockRaw6, Obj: sk})
	case domain == AFPacket:
		sk := k.Kzalloc(t, poSockStructSz)
		if sk == 0 {
			return errRet(ENOMEM)
		}
		t.Store(insSockAllocLock, sk+poOffIfindex, 8, 2)
		return p.InstallFD(FDesc{Kind: FDSockPacket, Obj: sk})
	case domain == AFPppox:
		sk := k.Kzalloc(t, pppSockStructSz)
		if sk == 0 {
			return errRet(ENOMEM)
		}
		return p.InstallFD(FDesc{Kind: FDSockPPP, Obj: sk})
	}
	return errRet(EINVAL)
}
