// Package cluster implements the PMC selection stage (§4.3): the eight
// clustering strategies of Table 1, the Random S-INS-PAIR ablation, and the
// uncommon-first exemplar ordering. A clustering strategy is a clustering
// key plus a filter; PMCs sharing a key land in one cluster, filtered
// clusters are discarded wholesale, and one exemplar per cluster is tested
// from the least to the most populous cluster.
package cluster

import (
	"fmt"
	"math/rand"
	"sort"

	"snowboard/internal/pmc"
)

// Strategy is one clustering strategy: a name, a key function, and a filter
// predicate over PMC features.
type Strategy struct {
	Name   string
	Key    func(p pmc.PMC) string
	Filter func(p pmc.PMC) bool
	// MultiKey, when non-nil, supersedes Key and maps a PMC to several
	// clusters (used by S-INS, which clusters on the write instruction and
	// on the read instruction independently).
	MultiKey func(p pmc.PMC) []string
}

func keyOf(insW, insR bool, addrW, addrR bool, byteW, byteR bool, valW, valR bool) func(pmc.PMC) string {
	return func(p pmc.PMC) string {
		s := ""
		if insW {
			s += fmt.Sprintf("iw%x;", uint32(p.Write.Ins))
		}
		if addrW {
			s += fmt.Sprintf("aw%x;", p.Write.Addr)
		}
		if byteW {
			s += fmt.Sprintf("bw%d;", p.Write.Size)
		}
		if valW {
			s += fmt.Sprintf("vw%x;", p.Write.Val)
		}
		if insR {
			s += fmt.Sprintf("ir%x;", uint32(p.Read.Ins))
		}
		if addrR {
			s += fmt.Sprintf("ar%x;", p.Read.Addr)
		}
		if byteR {
			s += fmt.Sprintf("br%d;", p.Read.Size)
		}
		if valR {
			s += fmt.Sprintf("vr%x;", p.Read.Val)
		}
		return s
	}
}

func always(pmc.PMC) bool { return true }

// The strategies of Table 1.
var (
	// SFull clusters on every feature: only identical PMCs share a cluster.
	SFull = Strategy{
		Name:   "S-FULL",
		Key:    keyOf(true, true, true, true, true, true, true, true),
		Filter: always,
	}
	// SCh (Channel) ignores the read/written values.
	SCh = Strategy{
		Name:   "S-CH",
		Key:    keyOf(true, true, true, true, true, true, false, false),
		Filter: always,
	}
	// SChNull keeps only channels whose write value is all zero (object
	// nullification).
	SChNull = Strategy{
		Name:   "S-CH-NULL",
		Key:    keyOf(true, true, true, true, true, true, false, false),
		Filter: func(p pmc.PMC) bool { return p.Write.Val == 0 },
	}
	// SChUnaligned keeps channels whose write and read ranges differ.
	SChUnaligned = Strategy{
		Name: "S-CH-UNALIGNED",
		Key:  keyOf(true, true, true, true, true, true, false, false),
		Filter: func(p pmc.PMC) bool {
			return p.Read.Addr != p.Write.Addr || p.Read.Size != p.Write.Size
		},
	}
	// SChDouble keeps channels whose read is a double-fetch leader.
	SChDouble = Strategy{
		Name:   "S-CH-DOUBLE",
		Key:    keyOf(true, true, true, true, true, true, false, false),
		Filter: func(p pmc.PMC) bool { return p.DFLeader },
	}
	// SIns clusters solely on an instruction address — once for the write
	// side and once for the read side (the "strategy pair" of §4.3).
	SIns = Strategy{
		Name:   "S-INS",
		Filter: always,
		MultiKey: func(p pmc.PMC) []string {
			return []string{
				fmt.Sprintf("w%x", uint32(p.Write.Ins)),
				fmt.Sprintf("r%x", uint32(p.Read.Ins)),
			}
		},
	}
	// SInsPair clusters on the write/read instruction pair.
	SInsPair = Strategy{
		Name:   "S-INS-PAIR",
		Key:    keyOf(true, true, false, false, false, false, false, false),
		Filter: always,
	}
	// SMem clusters on the memory ranges only.
	SMem = Strategy{
		Name:   "S-MEM",
		Key:    keyOf(false, false, true, true, true, true, false, false),
		Filter: always,
	}
)

// Strategies lists the eight Table 1 strategies in the paper's order.
var Strategies = []Strategy{SFull, SCh, SChNull, SChUnaligned, SChDouble, SIns, SInsPair, SMem}

// ByName resolves a strategy by its Table 1 name.
func ByName(name string) (Strategy, bool) {
	for _, s := range Strategies {
		if s.Name == name {
			return s, true
		}
	}
	return Strategy{}, false
}

// Cluster is one group of equivalent PMCs under a strategy.
type Cluster struct {
	Key  string
	PMCs []pmc.PMC // the member PMC keys
	// Weight is the total pair combinations across members, used as the
	// cardinality for uncommon-first ordering.
	Weight int64
}

// Clusters groups the PMC set under the strategy, dropping filtered PMCs.
func Clusters(set *pmc.Set, s Strategy) []Cluster {
	byKey := make(map[string]*Cluster)
	add := func(key string, e *pmc.Entry) {
		c := byKey[key]
		if c == nil {
			c = &Cluster{Key: key}
			byKey[key] = c
		}
		c.PMCs = append(c.PMCs, e.PMC)
		c.Weight += e.PairCount
	}
	for _, e := range set.Entries {
		if !s.Filter(e.PMC) {
			continue
		}
		if s.MultiKey != nil {
			for _, k := range s.MultiKey(e.PMC) {
				add(k, e)
			}
		} else {
			add(s.Key(e.PMC), e)
		}
	}
	out := make([]Cluster, 0, len(byKey))
	for _, c := range byKey {
		sort.Slice(c.PMCs, func(i, j int) bool { return pmcLess(c.PMCs[i], c.PMCs[j]) })
		out = append(out, *c)
	}
	// Deterministic base order before cardinality sorting.
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

func pmcLess(a, b pmc.PMC) bool {
	if a.Write != b.Write {
		return keyLess(a.Write, b.Write)
	}
	if a.Read != b.Read {
		return keyLess(a.Read, b.Read)
	}
	// DFLeader completes the order: entries are distinct map keys, so two
	// PMCs agreeing on both access keys differ in it. Without this the
	// comparator is not total and the unstable sort leaks map iteration
	// order into the member list — and through Exemplar's rng.Intn draw,
	// into which PMC each cluster tests.
	return !a.DFLeader && b.DFLeader
}

func keyLess(a, b pmc.Key) bool {
	if a.Ins != b.Ins {
		return a.Ins < b.Ins
	}
	if a.Addr != b.Addr {
		return a.Addr < b.Addr
	}
	if a.Size != b.Size {
		return a.Size < b.Size
	}
	return a.Val < b.Val
}

// Order arranges clusters for exemplar selection.
type Order uint8

// Cluster orderings.
const (
	// UncommonFirst tests the least populous cluster first (§4.3).
	UncommonFirst Order = iota
	// RandomOrder shuffles clusters (the Random S-INS-PAIR ablation).
	RandomOrder
)

// OrderClusters sorts (or shuffles) the clusters in place per the order.
func OrderClusters(cs []Cluster, o Order, rng *rand.Rand) {
	switch o {
	case UncommonFirst:
		sort.SliceStable(cs, func(i, j int) bool {
			if cs[i].Weight != cs[j].Weight {
				return cs[i].Weight < cs[j].Weight
			}
			return cs[i].Key < cs[j].Key
		})
	case RandomOrder:
		rng.Shuffle(len(cs), func(i, j int) { cs[i], cs[j] = cs[j], cs[i] })
	}
}

// Exemplar draws one member PMC from the cluster at random (§4.4: "one PMC
// is chosen from each cluster ... one pair is chosen among them at
// random").
func Exemplar(c *Cluster, rng *rand.Rand) pmc.PMC {
	return c.PMCs[rng.Intn(len(c.PMCs))]
}
