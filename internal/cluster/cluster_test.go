package cluster

import (
	"math/rand"
	"testing"

	"snowboard/internal/pmc"
	"snowboard/internal/trace"
)

var (
	insA = trace.DefIns("cluster_test:wA")
	insB = trace.DefIns("cluster_test:wB")
	insC = trace.DefIns("cluster_test:rC")
	insD = trace.DefIns("cluster_test:rD")
)

func mk(wi trace.Ins, wa uint64, ws uint8, wv uint64, ri trace.Ins, ra uint64, rs uint8, rv uint64, df bool) pmc.PMC {
	return pmc.PMC{
		Write:    pmc.Key{Ins: wi, Addr: wa, Size: ws, Val: wv},
		Read:     pmc.Key{Ins: ri, Addr: ra, Size: rs, Val: rv},
		DFLeader: df,
	}
}

func setOf(pmcs ...pmc.PMC) *pmc.Set {
	s := pmc.NewSet()
	for i, p := range pmcs {
		s.Add(p, pmc.Pair{Writer: i, Reader: i + 1})
	}
	return s
}

func TestSFullSeparatesByValue(t *testing.T) {
	s := setOf(
		mk(insA, 0x100, 8, 1, insC, 0x100, 8, 0, false),
		mk(insA, 0x100, 8, 2, insC, 0x100, 8, 0, false), // differs only in write value
	)
	if cs := Clusters(s, SFull); len(cs) != 2 {
		t.Fatalf("S-FULL clusters: %d, want 2", len(cs))
	}
	if cs := Clusters(s, SCh); len(cs) != 1 {
		t.Fatalf("S-CH clusters: %d, want 1 (values ignored)", len(cs))
	}
}

func TestSChNullFilter(t *testing.T) {
	s := setOf(
		mk(insA, 0x100, 8, 0, insC, 0x100, 8, 5, false), // nullification
		mk(insA, 0x100, 8, 7, insC, 0x100, 8, 5, false), // non-zero write
	)
	cs := Clusters(s, SChNull)
	if len(cs) != 1 {
		t.Fatalf("S-CH-NULL clusters: %d, want 1", len(cs))
	}
	if cs[0].PMCs[0].Write.Val != 0 {
		t.Fatal("non-null PMC survived the filter")
	}
}

func TestSChUnalignedFilter(t *testing.T) {
	s := setOf(
		mk(insA, 0x100, 8, 1, insC, 0x100, 8, 0, false), // aligned
		mk(insA, 0x100, 8, 1, insC, 0x104, 2, 0, false), // range mismatch
		mk(insA, 0x100, 8, 1, insC, 0x100, 4, 0, false), // length mismatch
	)
	cs := Clusters(s, SChUnaligned)
	total := 0
	for _, c := range cs {
		total += len(c.PMCs)
	}
	if total != 2 {
		t.Fatalf("unaligned kept %d PMCs, want 2", total)
	}
}

func TestSChDoubleFilter(t *testing.T) {
	s := setOf(
		mk(insA, 0x100, 8, 1, insC, 0x100, 8, 0, true),
		mk(insA, 0x100, 8, 1, insD, 0x100, 8, 0, false),
	)
	cs := Clusters(s, SChDouble)
	if len(cs) != 1 || !cs[0].PMCs[0].DFLeader {
		t.Fatalf("S-CH-DOUBLE kept %v", cs)
	}
}

func TestSInsMultiKey(t *testing.T) {
	// One PMC lands in two clusters: its write-instruction cluster and its
	// read-instruction cluster.
	s := setOf(mk(insA, 0x100, 8, 1, insC, 0x100, 8, 0, false))
	cs := Clusters(s, SIns)
	if len(cs) != 2 {
		t.Fatalf("S-INS clusters: %d, want 2", len(cs))
	}
	// Two PMCs sharing the write instruction share that cluster.
	s = setOf(
		mk(insA, 0x100, 8, 1, insC, 0x100, 8, 0, false),
		mk(insA, 0x200, 8, 1, insD, 0x200, 8, 0, false),
	)
	cs = Clusters(s, SIns)
	if len(cs) != 3 { // {W:insA}, {R:insC}, {R:insD}
		t.Fatalf("S-INS clusters: %d, want 3", len(cs))
	}
}

func TestSInsPairKey(t *testing.T) {
	s := setOf(
		mk(insA, 0x100, 8, 1, insC, 0x100, 8, 0, false),
		mk(insA, 0x180, 4, 9, insC, 0x180, 4, 3, false), // same ins pair, all else differs
		mk(insB, 0x100, 8, 1, insC, 0x100, 8, 0, false),
	)
	if cs := Clusters(s, SInsPair); len(cs) != 2 {
		t.Fatalf("S-INS-PAIR clusters: %d, want 2", len(cs))
	}
}

func TestSMemKey(t *testing.T) {
	s := setOf(
		mk(insA, 0x100, 8, 1, insC, 0x100, 8, 0, false),
		mk(insB, 0x100, 8, 9, insD, 0x100, 8, 3, false), // same ranges, different ins
		mk(insA, 0x200, 8, 1, insC, 0x200, 8, 0, false),
	)
	if cs := Clusters(s, SMem); len(cs) != 2 {
		t.Fatalf("S-MEM clusters: %d, want 2", len(cs))
	}
}

// TestPartitionProperty: under a single-key strategy with a true filter,
// every PMC appears in exactly one cluster.
func TestPartitionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := pmc.NewSet()
	n := 200
	for i := 0; i < n; i++ {
		p := mk(
			[]trace.Ins{insA, insB}[rng.Intn(2)], 0x100+uint64(rng.Intn(4))*8, 8, uint64(rng.Intn(3)),
			[]trace.Ins{insC, insD}[rng.Intn(2)], 0x100+uint64(rng.Intn(4))*8, 8, uint64(100+rng.Intn(3)),
			false,
		)
		s.Add(p, pmc.Pair{Writer: i, Reader: i})
	}
	for _, strat := range []Strategy{SFull, SCh, SInsPair, SMem} {
		cs := Clusters(s, strat)
		total := 0
		for _, c := range cs {
			total += len(c.PMCs)
			if c.Weight <= 0 {
				t.Fatalf("%s: non-positive weight", strat.Name)
			}
		}
		if total != s.Len() {
			t.Fatalf("%s: clusters cover %d PMCs, set has %d", strat.Name, total, s.Len())
		}
	}
}

func TestOrderUncommonFirst(t *testing.T) {
	s := pmc.NewSet()
	// Cluster A (insA pair): 5 combinations; cluster B (insB pair): 1.
	for i := 0; i < 5; i++ {
		s.Add(mk(insA, 0x100, 8, 1, insC, 0x100, 8, 0, false), pmc.Pair{Writer: i, Reader: i})
	}
	s.Add(mk(insB, 0x200, 8, 1, insD, 0x200, 8, 0, false), pmc.Pair{Writer: 9, Reader: 9})
	cs := Clusters(s, SInsPair)
	OrderClusters(cs, UncommonFirst, rand.New(rand.NewSource(1)))
	if cs[0].Weight != 1 || cs[1].Weight != 5 {
		t.Fatalf("order wrong: weights %d, %d", cs[0].Weight, cs[1].Weight)
	}
}

func TestOrderRandomDeterministic(t *testing.T) {
	build := func() []Cluster {
		s := pmc.NewSet()
		for i := 0; i < 20; i++ {
			s.Add(mk(insA, uint64(0x100+8*i), 8, 1, insC, uint64(0x100+8*i), 8, 0, false), pmc.Pair{})
		}
		cs := Clusters(s, SFull)
		OrderClusters(cs, RandomOrder, rand.New(rand.NewSource(42)))
		return cs
	}
	a, b := build(), build()
	for i := range a {
		if a[i].Key != b[i].Key {
			t.Fatalf("random order not seed-deterministic at %d", i)
		}
	}
}

func TestExemplarIsMember(t *testing.T) {
	s := setOf(
		mk(insA, 0x100, 8, 1, insC, 0x100, 8, 0, false),
		mk(insA, 0x100, 8, 2, insC, 0x100, 8, 0, false),
	)
	cs := Clusters(s, SCh)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 20; i++ {
		ex := Exemplar(&cs[0], rng)
		found := false
		for _, p := range cs[0].PMCs {
			if p == ex {
				found = true
			}
		}
		if !found {
			t.Fatalf("exemplar %v not a member", ex)
		}
	}
}

func TestByName(t *testing.T) {
	for _, s := range Strategies {
		got, ok := ByName(s.Name)
		if !ok || got.Name != s.Name {
			t.Fatalf("ByName(%q) failed", s.Name)
		}
	}
	if _, ok := ByName("S-BOGUS"); ok {
		t.Fatal("bogus strategy resolved")
	}
}

func TestTable1StrategyCount(t *testing.T) {
	if len(Strategies) != 8 {
		t.Fatalf("Table 1 defines 8 strategies, have %d", len(Strategies))
	}
}

// TestOrderClustersTieBreak pins the UncommonFirst tie-break: equal-weight
// clusters sort by key, so the order is independent of the (map-random)
// order Clusters happened to emit them in.
func TestOrderClustersTieBreak(t *testing.T) {
	mkC := func(key string, w int64) Cluster { return Cluster{Key: key, Weight: w} }
	cs := []Cluster{mkC("zz", 2), mkC("aa", 2), mkC("mm", 1), mkC("bb", 2)}
	OrderClusters(cs, UncommonFirst, nil)
	wantKeys := []string{"mm", "aa", "bb", "zz"}
	for i, k := range wantKeys {
		if cs[i].Key != k {
			t.Fatalf("position %d: got %q want %q (full: %+v)", i, cs[i].Key, k, cs)
		}
	}
	// Idempotent: re-sorting an already-ordered slice changes nothing.
	before := append([]Cluster(nil), cs...)
	OrderClusters(cs, UncommonFirst, nil)
	for i := range cs {
		if cs[i].Key != before[i].Key {
			t.Fatal("UncommonFirst is not stable on a sorted input")
		}
	}
}

// TestPMCLessTotalOrder pins the determinism fix: pmcLess must order two
// PMCs that agree on both access keys but differ in DFLeader. Without that
// the comparator is not total and sort.Slice (unstable) leaks map iteration
// order into cluster member lists — and through Exemplar's rng draw, into
// which PMC gets tested.
func TestPMCLessTotalOrder(t *testing.T) {
	plain := mk(insA, 0x100, 8, 1, insC, 0x100, 8, 0, false)
	leader := mk(insA, 0x100, 8, 1, insC, 0x100, 8, 0, true)
	if !pmcLess(plain, leader) {
		t.Fatal("non-leader must order before leader")
	}
	if pmcLess(leader, plain) {
		t.Fatal("order must be antisymmetric")
	}
	if pmcLess(plain, plain) || pmcLess(leader, leader) {
		t.Fatal("order must be irreflexive")
	}
}

// TestClustersMemberOrderDeterministic repeatedly clusters the same set —
// whose entries differ only in DFLeader — and checks the member order never
// varies with map iteration order.
func TestClustersMemberOrderDeterministic(t *testing.T) {
	s := setOf(
		mk(insA, 0x100, 8, 1, insC, 0x100, 8, 0, true),
		mk(insA, 0x100, 8, 1, insC, 0x100, 8, 0, false),
		mk(insA, 0x100, 8, 2, insC, 0x100, 8, 0, false),
	)
	var want []pmc.PMC
	for i := 0; i < 50; i++ {
		cs := Clusters(s, SCh)
		if len(cs) != 1 {
			t.Fatalf("clusters: %d, want 1", len(cs))
		}
		if want == nil {
			want = append([]pmc.PMC(nil), cs[0].PMCs...)
			continue
		}
		for j := range want {
			if cs[0].PMCs[j] != want[j] {
				t.Fatalf("iteration %d: member %d is %+v, want %+v", i, j, cs[0].PMCs[j], want[j])
			}
		}
	}
}
