// Package store is a versioned, checksummed, content-addressed on-disk
// artifact store for pipeline outputs. The paper's pipeline is inherently
// incremental — one 40-hour profiling pass over 129,876 sequential tests
// was reused across all eleven generation strategies of Table 3 (§5.4) —
// and every stage of this reproduction is a pure, bit-identical function
// of (inputs, options, seed), which makes sound memoization a matter of
// hashing: artifacts are addressed by the SHA-256 of their encoded bytes,
// and a stage memo index maps a digest of (stage name, input artifact
// digests, relevant options) to the digest of the stage's output.
//
// Layout under the store root:
//
//	objects/<kind>/<hex digest>   artifact payloads in the SBAR envelope
//	stages/<hex key digest>       stage memo entries (JSON in the envelope)
//
// Every file carries the envelope
//
//	magic "SBAR" | version u8 | kind u8 | payload len uvarint | payload |
//	sha256(payload) 32 bytes
//
// so truncation and bit flips are detected on read (ErrCorrupt), never
// silently decoded. Writes go through a temp file plus rename, so a killed
// run leaves either the old artifact or the new one — not a torn file.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"snowboard/internal/obs"
)

// Envelope constants.
const (
	envMagic   = "SBAR"
	envVersion = 1

	// maxPayload bounds a decoded payload claim; artifacts beyond this are
	// implausible and rejected before allocation.
	maxPayload = 1 << 32
)

// Kind tags the artifact type carried by an envelope.
type Kind uint8

// Artifact kinds.
const (
	// KindCorpus is an encoded sequential-test corpus (corpus.EncodeCorpus).
	KindCorpus Kind = iota + 1
	// KindProfiles is an encoded profile set (pmc.EncodeProfiles).
	KindProfiles
	// KindPMCs is an encoded PMC database (pmc.EncodeSet).
	KindPMCs
	// KindReport is a JSON-encoded core.Report.
	KindReport
	// KindStage is a stage memo entry (internal; lives under stages/).
	KindStage
	// KindSeries is an SBTS campaign time-series (obs.EncodeSeries), the
	// coverage-over-time trajectory a resumed campaign appends to.
	KindSeries
	// KindPMCIndex is an SBPI incremental-identification snapshot
	// (pmc.EncodeIncremental): the cumulative PMC set plus the write index
	// and reader views needed to identify only new profiles on resume.
	KindPMCIndex
	// KindFeedback is a JSON feedback-round checkpoint (core.RunFeedback):
	// per-cluster credits, cumulative segment coverage, pipeline cursors,
	// and the partial report after one budget-allocation round.
	KindFeedback
	// KindRepro is an SBRB minimized repro bundle (triage.Encode): the
	// self-contained, minimized, replayable artifact behind every
	// crash-level finding's bundle digest.
	KindRepro
	// KindCampaign is a canonical JSON campaign manifest (core.CampaignSpec):
	// the durable submission record a control-plane server enumerates on
	// restart to resume every in-flight campaign.
	KindCampaign
)

// String names the kind for paths and diagnostics.
func (k Kind) String() string {
	switch k {
	case KindCorpus:
		return "corpus"
	case KindProfiles:
		return "profiles"
	case KindPMCs:
		return "pmcs"
	case KindReport:
		return "report"
	case KindStage:
		return "stage"
	case KindSeries:
		return "timeseries"
	case KindPMCIndex:
		return "pmcindex"
	case KindFeedback:
		return "feedback"
	case KindRepro:
		return "repro"
	case KindCampaign:
		return "campaign"
	}
	return fmt.Sprintf("kind%d", uint8(k))
}

// ErrCorrupt reports an artifact file that failed envelope, checksum, or
// digest verification. Callers treat it as a cache miss and re-run the
// producing stage.
var ErrCorrupt = errors.New("store: corrupt artifact")

// ErrNotFound reports a missing artifact or stage entry.
var ErrNotFound = errors.New("store: not found")

// Store metrics: stage-level hits/misses are counted by the pipeline that
// owns the stage semantics; the store itself counts writes and detected
// corruption.
var (
	mWrites  = obs.C(obs.MStoreWrites)
	mBytes   = obs.C(obs.MStoreBytesWritten)
	mCorrupt = obs.C(obs.MStoreCorrupt)
)

// Digest is the SHA-256 content address of an artifact payload.
type Digest [sha256.Size]byte

// Sum computes the content address of a payload.
func Sum(payload []byte) Digest { return sha256.Sum256(payload) }

// String renders the digest as lowercase hex.
func (d Digest) String() string { return hex.EncodeToString(d[:]) }

// Short renders the first 12 hex digits, for diagnostics.
func (d Digest) Short() string { return d.String()[:12] }

// IsZero reports whether the digest is the zero value (meaning "unknown").
func (d Digest) IsZero() bool { return d == Digest{} }

// ParseDigest parses a lowercase-hex digest string.
func ParseDigest(s string) (Digest, error) {
	var d Digest
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != len(d) {
		return Digest{}, fmt.Errorf("store: bad digest %q", s)
	}
	copy(d[:], b)
	return d, nil
}

// Key derives a stage memo key from an ordered list of parts (stage name,
// codec versions, input digests, option fields rendered as strings). Parts
// are length-prefixed before hashing so no two distinct part lists collide
// by concatenation.
func Key(parts ...string) Digest {
	h := sha256.New()
	var lenBuf [binary.MaxVarintLen64]byte
	for _, p := range parts {
		n := binary.PutUvarint(lenBuf[:], uint64(len(p)))
		h.Write(lenBuf[:n])
		h.Write([]byte(p))
	}
	var d Digest
	h.Sum(d[:0])
	return d
}

// StageResult is one stage memo entry: the digest of the stage's output
// artifact plus a small JSON metadata fragment (report counters and
// timings) the pipeline restores on a cache hit.
type StageResult struct {
	Kind Kind            `json:"kind"`           // kind of the output artifact
	Out  Digest          `json:"-"`              // output artifact digest
	Meta json.RawMessage `json:"meta,omitempty"` // stage report fragment
}

// stageResultWire is the serialized form (digest as hex).
type stageResultWire struct {
	Kind Kind            `json:"kind"`
	Out  string          `json:"out"`
	Meta json.RawMessage `json:"meta,omitempty"`
}

// Store is an opened artifact store rooted at a directory. Methods are safe
// for concurrent use by independent processes: objects are content-addressed
// (writes of the same digest are idempotent) and all writes are
// temp-file+rename atomic.
type Store struct {
	dir string
}

// Open creates (if needed) and opens a store rooted at dir.
func Open(dir string) (*Store, error) {
	for _, sub := range []string{"objects", "stages", "tmp"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("store: open %s: %w", dir, err)
		}
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store root.
func (s *Store) Dir() string { return s.dir }

func (s *Store) objectPath(kind Kind, d Digest) string {
	return filepath.Join(s.dir, "objects", kind.String(), d.String())
}

func (s *Store) stagePath(key Digest) string {
	return filepath.Join(s.dir, "stages", key.String())
}

// envelope wraps payload in the SBAR framing.
func envelope(kind Kind, payload []byte) []byte {
	var buf bytes.Buffer
	buf.Grow(len(payload) + len(envMagic) + 2 + binary.MaxVarintLen64 + sha256.Size)
	buf.WriteString(envMagic)
	buf.WriteByte(envVersion)
	buf.WriteByte(byte(kind))
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(len(payload)))
	buf.Write(lenBuf[:n])
	buf.Write(payload)
	sum := sha256.Sum256(payload)
	buf.Write(sum[:])
	return buf.Bytes()
}

// DecodeEnvelope parses and verifies one SBAR-framed artifact, returning
// its kind and payload. It never panics on arbitrary input; any framing,
// length, or checksum violation yields ErrCorrupt.
func DecodeEnvelope(data []byte) (Kind, []byte, error) {
	br := bytes.NewReader(data)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil || string(magic[:]) != envMagic {
		return 0, nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	ver, err := br.ReadByte()
	if err != nil || ver != envVersion {
		return 0, nil, fmt.Errorf("%w: version %d", ErrCorrupt, ver)
	}
	kindB, err := br.ReadByte()
	if err != nil {
		return 0, nil, fmt.Errorf("%w: truncated kind", ErrCorrupt)
	}
	plen, err := binary.ReadUvarint(br)
	if err != nil || plen > maxPayload {
		return 0, nil, fmt.Errorf("%w: bad payload length", ErrCorrupt)
	}
	if uint64(br.Len()) != plen+sha256.Size {
		return 0, nil, fmt.Errorf("%w: truncated payload (%d bytes left, want %d)", ErrCorrupt, br.Len(), plen+sha256.Size)
	}
	payload := make([]byte, plen)
	if _, err := io.ReadFull(br, payload); err != nil {
		return 0, nil, fmt.Errorf("%w: payload: %v", ErrCorrupt, err)
	}
	var want [sha256.Size]byte
	if _, err := io.ReadFull(br, want[:]); err != nil {
		return 0, nil, fmt.Errorf("%w: checksum: %v", ErrCorrupt, err)
	}
	if sha256.Sum256(payload) != want {
		return 0, nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return Kind(kindB), payload, nil
}

// writeAtomic lands data at path via a temp file and rename.
func (s *Store) writeAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Join(s.dir, "tmp"), "artifact-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Put stores payload as a content-addressed object and returns its digest.
// Re-putting identical content is a cheap no-op.
func (s *Store) Put(kind Kind, payload []byte) (Digest, error) {
	d := Sum(payload)
	path := s.objectPath(kind, d)
	if _, err := os.Stat(path); err == nil {
		return d, nil // content-addressed: existing object is this object
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return Digest{}, fmt.Errorf("store: %w", err)
	}
	if err := s.writeAtomic(path, envelope(kind, payload)); err != nil {
		return Digest{}, err
	}
	mWrites.Inc()
	mBytes.Add(int64(len(payload)))
	return d, nil
}

// Get loads and verifies a content-addressed object. A missing object
// returns ErrNotFound; a damaged one returns ErrCorrupt (and bumps the
// store.corrupt counter) so callers can fall back to re-running the
// producing stage. A damaged file is removed, so the re-running stage's Put
// writes a fresh object instead of tripping over the stat-based idempotency
// check — the store heals on the next run.
func (s *Store) Get(kind Kind, d Digest) ([]byte, error) {
	path := s.objectPath(kind, d)
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: %s object %s", ErrNotFound, kind, d.Short())
		}
		return nil, fmt.Errorf("store: %w", err)
	}
	gotKind, payload, err := DecodeEnvelope(data)
	if err != nil {
		return nil, s.discardCorrupt(path, fmt.Errorf("%s object %s: %w", kind, d.Short(), err))
	}
	if gotKind != kind {
		return nil, s.discardCorrupt(path, fmt.Errorf("%s object %s: %w: kind %s", kind, d.Short(), ErrCorrupt, gotKind))
	}
	if Sum(payload) != d {
		return nil, s.discardCorrupt(path, fmt.Errorf("%s object %s: %w: content digest mismatch", kind, d.Short(), ErrCorrupt))
	}
	return payload, nil
}

// discardCorrupt counts and removes a file that failed verification, so a
// later Put of the correct content lands a fresh copy.
func (s *Store) discardCorrupt(path string, err error) error {
	mCorrupt.Inc()
	if rmErr := os.Remove(path); rmErr == nil {
		obs.Diag.Printf("store: removed corrupt file %s (%v)", path, err)
	}
	return err
}

// Has reports whether the object exists on disk (without verifying it).
func (s *Store) Has(kind Kind, d Digest) bool {
	_, err := os.Stat(s.objectPath(kind, d))
	return err == nil
}

// List returns the digests of all objects of a kind, sorted, skipping
// files whose names do not parse as digests.
func (s *Store) List(kind Kind) []Digest {
	entries, err := os.ReadDir(filepath.Join(s.dir, "objects", kind.String()))
	if err != nil {
		return nil
	}
	var out []Digest
	for _, e := range entries {
		if d, err := ParseDigest(e.Name()); err == nil {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool { return bytes.Compare(out[i][:], out[j][:]) < 0 })
	return out
}

// PutStage records a stage memo entry: key → (output digest, metadata).
func (s *Store) PutStage(key Digest, res StageResult) error {
	payload, err := json.Marshal(stageResultWire{Kind: res.Kind, Out: res.Out.String(), Meta: res.Meta})
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := s.writeAtomic(s.stagePath(key), envelope(KindStage, payload)); err != nil {
		return err
	}
	mWrites.Inc()
	mBytes.Add(int64(len(payload)))
	return nil
}

// GetStage looks up a stage memo entry. A missing entry returns
// ErrNotFound; a damaged one returns ErrCorrupt.
func (s *Store) GetStage(key Digest) (StageResult, error) {
	data, err := os.ReadFile(s.stagePath(key))
	if err != nil {
		if os.IsNotExist(err) {
			return StageResult{}, fmt.Errorf("%w: stage %s", ErrNotFound, key.Short())
		}
		return StageResult{}, fmt.Errorf("store: %w", err)
	}
	path := s.stagePath(key)
	kind, payload, err := DecodeEnvelope(data)
	if err != nil {
		return StageResult{}, s.discardCorrupt(path, fmt.Errorf("stage %s: %w", key.Short(), err))
	}
	if kind != KindStage {
		return StageResult{}, s.discardCorrupt(path, fmt.Errorf("stage %s: %w: kind %s", key.Short(), ErrCorrupt, kind))
	}
	var wire stageResultWire
	if err := json.Unmarshal(payload, &wire); err != nil {
		return StageResult{}, s.discardCorrupt(path, fmt.Errorf("stage %s: %w: %v", key.Short(), ErrCorrupt, err))
	}
	out, err := ParseDigest(wire.Out)
	if err != nil {
		return StageResult{}, s.discardCorrupt(path, fmt.Errorf("stage %s: %w: %v", key.Short(), ErrCorrupt, err))
	}
	return StageResult{Kind: wire.Kind, Out: out, Meta: wire.Meta}, nil
}
