package store

import (
	"bytes"
	"reflect"
	"testing"

	"snowboard/internal/corpus"
	"snowboard/internal/pmc"
)

// FuzzStoreDecode throws arbitrary bytes at every artifact decoder the
// store's consumers use — the SBAR envelope itself plus the corpus,
// profile-set, and PMC-set codecs. The contract under test: hostile,
// truncated, or bit-flipped input yields an error, never a panic and never
// a silently wrong artifact; and anything a decoder does accept must
// round-trip (re-encode → re-decode → deep-equal), so a decode success is
// never a lie.
func FuzzStoreDecode(f *testing.F) {
	// Valid artifacts of each kind, enveloped and bare, seed the corpus so
	// the fuzzer starts from decodable inputs and mutates toward edge cases.
	c := corpus.NewCorpus()
	c.Add(&corpus.Prog{Calls: []corpus.Call{{Nr: 0, Args: []corpus.Arg{corpus.Const(7)}}}})
	var corpusBuf bytes.Buffer
	if err := corpus.EncodeCorpus(&corpusBuf, c); err != nil {
		f.Fatal(err)
	}
	profiles := []pmc.Profile{{TestID: 0, DFLeader: map[int]bool{}}}
	var profBuf bytes.Buffer
	if err := pmc.EncodeProfiles(&profBuf, profiles); err != nil {
		f.Fatal(err)
	}
	set := pmc.NewSet()
	set.Add(pmc.PMC{Write: pmc.Key{Ins: 1, Addr: 16, Size: 4, Val: 3},
		Read: pmc.Key{Ins: 2, Addr: 16, Size: 4, Val: 3}}, pmc.Pair{Writer: 0, Reader: 1})
	var setBuf bytes.Buffer
	if err := pmc.EncodeSet(&setBuf, set); err != nil {
		f.Fatal(err)
	}

	f.Add(envelope(KindCorpus, corpusBuf.Bytes()))
	f.Add(envelope(KindProfiles, profBuf.Bytes()))
	f.Add(envelope(KindPMCs, setBuf.Bytes()))
	f.Add(envelope(KindReport, []byte(`{"Method":"S-INS-PAIR"}`)))
	f.Add(corpusBuf.Bytes())
	f.Add(profBuf.Bytes())
	f.Add(setBuf.Bytes())
	f.Add([]byte("SBAR"))
	f.Add([]byte("SBAR\x01\x01\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01"))
	f.Add([]byte{})
	f.Add([]byte("\x00\xff garbage \x7f"))

	f.Fuzz(func(t *testing.T, data []byte) {
		if kind, payload, err := DecodeEnvelope(data); err == nil {
			// A verified envelope must re-frame to its own bytes' semantics:
			// the payload checksum held, so re-enveloping decodes equal.
			k2, p2, err2 := DecodeEnvelope(envelope(kind, payload))
			if err2 != nil || k2 != kind || !bytes.Equal(p2, payload) {
				t.Fatalf("envelope not stable: %v", err2)
			}
		}
		if c, err := corpus.DecodeCorpus(bytes.NewReader(data)); err == nil {
			var buf bytes.Buffer
			if err := corpus.EncodeCorpus(&buf, c); err != nil {
				t.Fatalf("re-encode accepted corpus: %v", err)
			}
			c2, err := corpus.DecodeCorpus(bytes.NewReader(buf.Bytes()))
			if err != nil || !reflect.DeepEqual(c2.Progs, c.Progs) {
				t.Fatalf("corpus round-trip broken after accept: %v", err)
			}
		}
		if profs, err := pmc.DecodeProfiles(bytes.NewReader(data)); err == nil {
			var buf bytes.Buffer
			if err := pmc.EncodeProfiles(&buf, profs); err != nil {
				t.Fatalf("re-encode accepted profiles: %v", err)
			}
			p2, err := pmc.DecodeProfiles(bytes.NewReader(buf.Bytes()))
			if err != nil || !reflect.DeepEqual(p2, profs) {
				t.Fatalf("profiles round-trip broken after accept: %v", err)
			}
		}
		if s, err := pmc.DecodeSet(bytes.NewReader(data)); err == nil {
			var buf bytes.Buffer
			if err := pmc.EncodeSet(&buf, s); err != nil {
				t.Fatalf("re-encode accepted set: %v", err)
			}
			s2, err := pmc.DecodeSet(bytes.NewReader(buf.Bytes()))
			if err != nil || !reflect.DeepEqual(s2, s) {
				t.Fatalf("set round-trip broken after accept: %v", err)
			}
		}
	})
}
