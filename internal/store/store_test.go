package store

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"testing"
)

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("hello artifact")
	d, err := s.Put(KindCorpus, payload)
	if err != nil {
		t.Fatal(err)
	}
	if d != Sum(payload) {
		t.Fatalf("Put digest %s != Sum %s", d, Sum(payload))
	}
	got, err := s.Get(KindCorpus, d)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, want %q", got, payload)
	}
	if !s.Has(KindCorpus, d) {
		t.Error("Has = false after Put")
	}

	// Re-putting identical content is idempotent and keeps the digest.
	d2, err := s.Put(KindCorpus, payload)
	if err != nil || d2 != d {
		t.Fatalf("re-Put = (%s, %v), want (%s, nil)", d2, err, d)
	}
}

func TestGetMissing(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Get(KindReport, Sum([]byte("never stored")))
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get missing = %v, want ErrNotFound", err)
	}
	_, err = s.GetStage(Key("no", "such", "stage"))
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("GetStage missing = %v, want ErrNotFound", err)
	}
}

func TestGetKindMismatch(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("profile bytes")
	d, err := s.Put(KindProfiles, payload)
	if err != nil {
		t.Fatal(err)
	}
	// Reading the same digest under a different kind misses (objects are
	// sharded by kind on disk).
	if _, err := s.Get(KindCorpus, d); !errors.Is(err, ErrNotFound) {
		t.Fatalf("cross-kind Get = %v, want ErrNotFound", err)
	}
}

// corrupt flips one byte in the stored object file.
func corruptObject(t *testing.T, s *Store, kind Kind, d Digest, off int) {
	t.Helper()
	path := s.objectPath(kind, d)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if off < 0 {
		off = len(data) + off
	}
	data[off] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestGetCorrupt(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("payload under test, long enough to flip bits in")
	d, err := s.Put(KindPMCs, payload)
	if err != nil {
		t.Fatal(err)
	}

	// Bit flip in the payload region → checksum mismatch.
	corruptObject(t, s, KindPMCs, d, 10)
	if _, err := s.Get(KindPMCs, d); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get after payload flip = %v, want ErrCorrupt", err)
	}

	// Truncation → ErrCorrupt, never a panic.
	path := s.objectPath(KindPMCs, d)
	data := envelope(KindPMCs, payload)
	for cut := 0; cut < len(data); cut += 7 {
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Get(KindPMCs, d); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Get truncated at %d = %v, want ErrCorrupt", cut, err)
		}
	}

	// Valid envelope whose payload hashes to a different digest (content
	// swapped under the same name) → ErrCorrupt.
	if err := os.WriteFile(path, envelope(KindPMCs, []byte("other content")), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(KindPMCs, d); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get swapped content = %v, want ErrCorrupt", err)
	}
}

func TestStageMemoRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.Put(KindCorpus, []byte("the output artifact"))
	if err != nil {
		t.Fatal(err)
	}
	key := Key("test-schema", "fuzz", "seed=1")
	meta := json.RawMessage(`{"corpus_size":7}`)
	if err := s.PutStage(key, StageResult{Kind: KindCorpus, Out: out, Meta: meta}); err != nil {
		t.Fatal(err)
	}
	res, err := s.GetStage(key)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != KindCorpus || res.Out != out || string(res.Meta) != string(meta) {
		t.Fatalf("GetStage = %+v, want kind=corpus out=%s meta=%s", res, out.Short(), meta)
	}

	// Corrupting the memo file yields ErrCorrupt, not a bogus result.
	path := s.stagePath(key)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetStage(key); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("GetStage corrupted = %v, want ErrCorrupt", err)
	}
}

func TestList(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if got := s.List(KindCorpus); len(got) != 0 {
		t.Fatalf("List of empty store = %v", got)
	}
	var want []Digest
	for _, p := range []string{"a", "b", "c"} {
		d, err := s.Put(KindCorpus, []byte(p))
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, d)
	}
	if _, err := s.Put(KindReport, []byte("other kind")); err != nil {
		t.Fatal(err)
	}
	got := s.List(KindCorpus)
	if len(got) != len(want) {
		t.Fatalf("List = %d digests, want %d", len(got), len(want))
	}
	for i := 1; i < len(got); i++ {
		if bytes.Compare(got[i-1][:], got[i][:]) >= 0 {
			t.Fatalf("List not sorted at %d", i)
		}
	}
	for _, w := range want {
		found := false
		for _, g := range got {
			if g == w {
				found = true
			}
		}
		if !found {
			t.Fatalf("List missing %s", w.Short())
		}
	}
}

func TestKeyDistinctness(t *testing.T) {
	// Length-prefixing means part boundaries matter: ("ab","c") != ("a","bc").
	if Key("ab", "c") == Key("a", "bc") {
		t.Error("Key collides across part boundaries")
	}
	if Key("x") == Key("x", "") {
		t.Error("Key ignores empty trailing part")
	}
	if Key("seed=1") == Key("seed=2") {
		t.Error("Key ignores content")
	}
}

func TestParseDigest(t *testing.T) {
	d := Sum([]byte("x"))
	got, err := ParseDigest(d.String())
	if err != nil || got != d {
		t.Fatalf("ParseDigest round-trip = (%s, %v)", got, err)
	}
	for _, bad := range []string{"", "zz", d.String()[:10], d.String() + "00", "G" + d.String()[1:]} {
		if _, err := ParseDigest(bad); err == nil {
			t.Errorf("ParseDigest(%q) accepted", bad)
		}
	}
}
