// Package exec is the test-execution framework of §3.1: it boots the
// simulated kernel, takes the fixed VM snapshot that every test starts
// from, and runs sequential tests (for profiling) or pairs of tests under a
// pluggable scheduler (for concurrent exploration). It plays the role of
// the paper's hypervisor/guest test-suite pair, with hypercalls replaced by
// direct calls.
package exec

import (
	"errors"
	"fmt"

	"snowboard/internal/corpus"
	"snowboard/internal/kernel"
	"snowboard/internal/obs"
	"snowboard/internal/trace"
	"snowboard/internal/vm"
)

// Execution metrics: one bump per VM run, aggregated step counts — cheap
// enough to stay on even in the profiling hot loop.
var (
	mRuns          = obs.C(obs.MExecRuns)
	mCrashes       = obs.C(obs.MExecCrashes)
	mSteps         = obs.C(obs.MExecSteps)
	mProfileTests  = obs.C(obs.MProfileTests)
	mProfileAccess = obs.C(obs.MProfileAccess)
)

// DefaultMaxSteps bounds one execution; hitting it is treated as a hang.
const DefaultMaxSteps = 1 << 20

// Env owns a machine with a booted kernel and the boot-time snapshot.
// An Env is single-goroutine: one test (or one concurrent pair) runs at a
// time, exactly like one emulated guest.
type Env struct {
	M    *vm.Machine
	K    *kernel.Kernel
	Snap *vm.Snapshot
	Cfg  kernel.Config

	// MaxSteps bounds each run; 0 uses DefaultMaxSteps.
	MaxSteps int
}

// NewEnv boots a fresh simulated kernel and snapshots its initial state.
func NewEnv(cfg kernel.Config) *Env {
	m := vm.NewMachine()
	k := kernel.Boot(m, cfg)
	return &Env{M: m, K: k, Snap: m.Mem.Snapshot(), Cfg: k.Cfg}
}

// Clone returns an independent execution environment that starts every
// test from the same fixed snapshot as e. The snapshot is shared, not
// copied: snapshot pages are immutable (the VM copies on write), so any
// number of clones may run concurrently, one goroutine each. Booting is
// deterministic, so a clone's kernel has the same guest addresses as the
// original and produces bit-identical traces for the same test.
func (e *Env) Clone() *Env {
	m := vm.NewMachine()
	k := kernel.Boot(m, e.Cfg)
	m.Mem.Restore(e.Snap)
	return &Env{M: m, K: k, Snap: e.Snap, Cfg: e.Cfg, MaxSteps: e.MaxSteps}
}

// NewEnvWithSetup boots a kernel, runs setup once sequentially, and
// snapshots the *resulting* state as the environment's fixed starting
// point. This implements §4.1's growth of initial kernel states: "some
// initial kernel states may not be reachable [within the test-length
// limit]; in such cases, Snowboard can grow the number of initial kernel
// states it utilizes to increase diversity." Tests profiled against
// different setups see different memory layouts, so a PMC database is only
// meaningful within one environment.
func NewEnvWithSetup(cfg kernel.Config, setup *corpus.Prog) (*Env, error) {
	e := NewEnv(cfg)
	if setup == nil || len(setup.Calls) == 0 {
		return e, nil
	}
	res := e.RunSequential(setup, nil)
	if res.Crashed() || res.Hung || res.Deadlock {
		return nil, fmt.Errorf("exec: setup program failed: faults=%v hung=%v deadlock=%v",
			res.Faults, res.Hung, res.Deadlock)
	}
	// The post-setup memory becomes the new fixed initial state; runtime
	// state (threads, console) is reset as on a fresh boot.
	e.Snap = e.M.Mem.Snapshot()
	e.M.ResetRuntime()
	return e, nil
}

// Result summarizes one execution.
type Result struct {
	Rets     [][]int64 // per-thread syscall return values
	Faults   []string  // kernel crash messages
	Console  []string  // full console output
	Steps    int       // events processed
	Hung     bool      // step limit exceeded
	Deadlock bool      // all threads blocked
}

// Crashed reports whether the kernel crashed during the run.
func (r *Result) Crashed() bool { return len(r.Faults) > 0 }

func (e *Env) maxSteps() int {
	if e.MaxSteps > 0 {
		return e.MaxSteps
	}
	return DefaultMaxSteps
}

// prepare restores the snapshot and clears runtime state. It must be called
// before spawning the run's threads.
func (e *Env) prepare(tr *trace.Trace) {
	e.M.ResetRuntime()
	e.M.Mem.Restore(e.Snap)
	if tr != nil {
		tr.Reset()
	}
	e.M.SetTrace(tr)
}

// procBody returns a thread body that executes prog as user process slot.
// Return values are appended to *rets.
func (e *Env) procBody(prog *corpus.Prog, slot int, rets *[]int64) func(*vm.Thread) {
	return func(t *vm.Thread) {
		p := kernel.NewProc(e.K, t, slot)
		for _, call := range prog.Calls {
			args := make([]uint64, len(call.Args))
			for i, a := range call.Args {
				switch a.Kind {
				case corpus.ConstArg:
					args[i] = a.Val
				case corpus.ResultArg:
					if a.Ref >= 0 && a.Ref < len(*rets) {
						args[i] = uint64((*rets)[a.Ref])
					}
				}
			}
			ret := e.K.Invoke(p, call.Nr, args)
			*rets = append(*rets, ret)
		}
	}
}

func (e *Env) finish(err error, retsPerThread [][]int64) Result {
	r := Result{
		Rets:   retsPerThread,
		Faults: append([]string(nil), e.M.Faults()...),
		Steps:  e.M.Steps(),
	}
	mRuns.Inc()
	mSteps.Add(int64(r.Steps))
	if r.Crashed() {
		mCrashes.Inc()
		obs.Emit(obs.EvExecCrash, obs.A("faults", len(r.Faults)))
	}
	switch {
	case errors.Is(err, vm.ErrStepLimit):
		r.Hung = true
		e.M.Shutdown()
	case errors.Is(err, vm.ErrDeadlock):
		r.Deadlock = true
		e.M.Shutdown()
	}
	r.Console = append([]string(nil), e.M.Console.Lines()...)
	return r
}

// RunSequential executes prog alone from the snapshot, recording its memory
// trace into tr (which may be nil to skip tracing). This is the profiling
// primitive of §4.1.
func (e *Env) RunSequential(prog *corpus.Prog, tr *trace.Trace) Result {
	e.prepare(tr)
	var rets []int64
	e.M.Spawn("executor-0", kernel.StackFor(0), e.procBody(prog, 0, &rets))
	err := e.M.Run(vm.SeqScheduler{}, e.maxSteps())
	return e.finish(err, [][]int64{rets})
}

// RunPair executes writer and reader concurrently from the snapshot under
// the supplied scheduler: writer on thread 0 / user slot 0, reader on
// thread 1 / user slot 1, matching the paper's two test-executor vCPUs.
func (e *Env) RunPair(writer, reader *corpus.Prog, sched vm.Scheduler, tr *trace.Trace) Result {
	e.prepare(tr)
	var wrets, rrets []int64
	e.M.Spawn("executor-0", kernel.StackFor(0), e.procBody(writer, 0, &wrets))
	e.M.Spawn("executor-1", kernel.StackFor(1), e.procBody(reader, 1, &rrets))
	err := e.M.Run(sched, e.maxSteps())
	return e.finish(err, [][]int64{wrets, rrets})
}

// RunMany executes n programs concurrently from the snapshot, one kernel
// thread and user slot per program — the §6 extension beyond two testing
// threads ("Snowboard should apply to input spaces of more dimensions").
func (e *Env) RunMany(progs []*corpus.Prog, sched vm.Scheduler, tr *trace.Trace) Result {
	if len(progs) == 0 || len(progs) > kernel.MaxProcs {
		panic(fmt.Sprintf("exec: RunMany with %d programs (max %d)", len(progs), kernel.MaxProcs))
	}
	e.prepare(tr)
	rets := make([][]int64, len(progs))
	for i, prog := range progs {
		e.M.Spawn(fmt.Sprintf("executor-%d", i), kernel.StackFor(i), e.procBody(prog, i, &rets[i]))
	}
	err := e.M.Run(sched, e.maxSteps())
	return e.finish(err, rets)
}

// Profile runs prog sequentially and returns its shared-memory access set:
// the trace filtered to the executor thread's non-stack, non-lock-word
// accesses (§4.1.1), plus the double-fetch leader markings used by
// S-CH-DOUBLE.
func (e *Env) Profile(prog *corpus.Prog) (accs trace.Block, df map[int]bool, res Result) {
	var tr trace.Trace
	res = e.RunSequential(prog, &tr)
	accs = trace.DefaultFilter(0).Apply(&tr)
	df = trace.MarkDoubleFetches(&accs)
	e.M.SetTrace(nil)
	mProfileTests.Inc()
	mProfileAccess.Add(int64(accs.Len()))
	return accs, df, res
}
