package exec

import (
	"reflect"
	"strings"
	"testing"

	"snowboard/internal/corpus"
	"snowboard/internal/kernel"
	"snowboard/internal/trace"
	"snowboard/internal/vm"
)

// l2tpWriterProg is Test 1 of the paper's Figure 1: create a PPPoX socket,
// a backing inet socket, and connect with tunnel id 1.
func l2tpWriterProg() *corpus.Prog {
	return &corpus.Prog{Calls: []corpus.Call{
		{Nr: kernel.SysSocketNr, Args: []corpus.Arg{corpus.Const(kernel.AFPppox), corpus.Const(kernel.SockDgram), corpus.Const(kernel.PxProtoOL2TP)}},
		{Nr: kernel.SysSocketNr, Args: []corpus.Arg{corpus.Const(kernel.AFInet), corpus.Const(kernel.SockDgram), corpus.Const(0)}},
		{Nr: kernel.SysConnectNr, Args: []corpus.Arg{corpus.Result(0), corpus.Const(1), corpus.Result(1)}},
	}}
}

// l2tpReaderProg is Test 2 of Figure 1: the same setup plus sendmsg.
func l2tpReaderProg() *corpus.Prog {
	p := l2tpWriterProg()
	p.Calls = append(p.Calls, corpus.Call{
		Nr:   kernel.SysSendmsgNr,
		Args: []corpus.Arg{corpus.Result(0), corpus.Const(512)},
	})
	return p
}

func TestSequentialL2TPNoCrash(t *testing.T) {
	env := NewEnv(kernel.Config{Version: kernel.V5_12_RC3})
	for _, prog := range []*corpus.Prog{l2tpWriterProg(), l2tpReaderProg()} {
		res := env.RunSequential(prog, nil)
		if res.Crashed() {
			t.Fatalf("sequential run crashed: %v", res.Faults)
		}
		for i, ret := range res.Rets[0] {
			if ret < 0 {
				t.Fatalf("call %d failed: %d", i, ret)
			}
		}
	}
}

func TestSequentialProfileCollectsSharedAccesses(t *testing.T) {
	env := NewEnv(kernel.Config{Version: kernel.V5_12_RC3})
	accs, _, res := env.Profile(l2tpReaderProg())
	if res.Crashed() {
		t.Fatalf("profile crashed: %v", res.Faults)
	}
	if accs.Len() == 0 {
		t.Fatal("no shared accesses profiled")
	}
	var sawPublishRead bool
	for _, a := range accs.Accesses() {
		if a.Stack {
			t.Fatalf("stack access leaked through filter: %+v", a)
		}
		if a.Atomic {
			t.Fatalf("lock-word access leaked through filter: %+v", a)
		}
		if a.Ins.Name() == "l2tp_tunnel_get:rcu_dereference_list" {
			sawPublishRead = true
		}
	}
	if !sawPublishRead {
		t.Fatal("profile missing the tunnel-list lookup read")
	}
}

// TestL2TPBugTriggersUnderAdversarialSchedule drives the Figure 1 order
// violation by hand: run the writer until it publishes the tunnel
// (list_add_rcu), then run the reader to completion. The reader must panic
// on the null tunnel->sock in the 5.12-rc3 build and survive in 5.3.10.
func TestL2TPBugTriggersUnderAdversarialSchedule(t *testing.T) {
	publishIns, ok := trace.LookupIns("l2tp_tunnel_register:list_add_rcu")
	if !ok {
		t.Fatal("publish instruction not registered")
	}
	for _, tc := range []struct {
		version   kernel.Version
		wantCrash bool
	}{
		{kernel.V5_12_RC3, true},
		{kernel.V5_3_10, false},
	} {
		env := NewEnv(kernel.Config{Version: tc.version})
		published := false
		sched := vm.FuncScheduler(func(m *vm.Machine, last *vm.Thread, ev vm.Event) *vm.Thread {
			if ev.Kind == vm.EvAccess && ev.Access.Ins == publishIns {
				published = true
			}
			runnable := m.Runnable()
			if len(runnable) == 0 {
				return nil
			}
			// Before publication: run the writer (thread 0). After: starve
			// the writer so the reader dereferences the half-built tunnel.
			want := 0
			if published {
				want = 1
			}
			for _, th := range runnable {
				if th.ID == want {
					return th
				}
			}
			return runnable[0]
		})
		res := env.RunPair(l2tpWriterProg(), l2tpReaderProg(), sched, nil)
		if tc.wantCrash {
			if !res.Crashed() {
				t.Fatalf("%s: expected null-deref panic, got none (console: %v)", tc.version, res.Console)
			}
			found := false
			for _, f := range res.Faults {
				if strings.Contains(f, "NULL pointer dereference") {
					found = true
				}
			}
			if !found {
				t.Fatalf("%s: crash was not a null deref: %v", tc.version, res.Faults)
			}
		} else if res.Crashed() {
			t.Fatalf("%s: unexpected crash: %v", tc.version, res.Faults)
		}
	}
}

func TestSnapshotIsolationAcrossRuns(t *testing.T) {
	env := NewEnv(kernel.Config{Version: kernel.V5_12_RC3})
	prog := l2tpReaderProg()
	var first, second trace.Trace
	r1 := env.RunSequential(prog, &first)
	r2 := env.RunSequential(prog, &second)
	if r1.Crashed() || r2.Crashed() {
		t.Fatalf("crash: %v %v", r1.Faults, r2.Faults)
	}
	if first.Len() != second.Len() {
		t.Fatalf("runs from same snapshot differ in length: %d vs %d", first.Len(), second.Len())
	}
	for i := 0; i < first.Len(); i++ {
		a, b := first.At(i), second.At(i)
		if a != b {
			t.Fatalf("access %d differs across identical runs:\n%+v\n%+v", i, a, b)
		}
	}
}

func TestPairDuplicateL2TPSequentialOrderIsSafe(t *testing.T) {
	env := NewEnv(kernel.Config{Version: kernel.V5_12_RC3})
	// Run writer fully, then reader (SeqScheduler): reader finds the fully
	// initialized tunnel, so no crash even in the buggy build.
	res := env.RunPair(l2tpWriterProg(), l2tpReaderProg(), vm.SeqScheduler{}, nil)
	if res.Crashed() {
		t.Fatalf("sequentialized pair crashed: %v", res.Faults)
	}
}

func TestNewEnvWithSetupChangesInitialState(t *testing.T) {
	// The setup program registers tunnel 1; tests starting from this state
	// find it already present, unlike from the plain boot snapshot.
	setup := l2tpWriterProg()
	env, err := NewEnvWithSetup(kernel.Config{Version: kernel.V5_12_RC3}, setup)
	if err != nil {
		t.Fatal(err)
	}
	probe := l2tpReaderProg()
	accsSetup, _, res := env.Profile(probe)
	if res.Crashed() {
		t.Fatalf("probe crashed: %v", res.Faults)
	}

	plain := NewEnv(kernel.Config{Version: kernel.V5_12_RC3})
	accsPlain, _, res2 := plain.Profile(probe)
	if res2.Crashed() {
		t.Fatalf("probe crashed on plain env: %v", res2.Faults)
	}
	// From the enriched state the reader finds the tunnel instead of
	// registering one, so its profile is strictly shorter.
	if accsSetup.Len() >= accsPlain.Len() {
		t.Fatalf("setup state did not change behavior: %d vs %d accesses", accsSetup.Len(), accsPlain.Len())
	}
	// And the enriched environment must be repeatable like any snapshot.
	again, _, _ := env.Profile(probe)
	if again.Len() != accsSetup.Len() {
		t.Fatalf("setup snapshot not stable: %d vs %d", again.Len(), accsSetup.Len())
	}
}

func TestNewEnvWithSetupRejectsCrashingSetup(t *testing.T) {
	// A setup program that panics the kernel cannot define an initial state.
	bad := &corpus.Prog{Calls: []corpus.Call{
		{Nr: kernel.SysMsggetNr, Args: []corpus.Arg{corpus.Const(0)}}, // EINVAL, harmless
	}}
	if _, err := NewEnvWithSetup(kernel.Config{Version: kernel.V5_12_RC3}, bad); err != nil {
		t.Fatalf("harmless setup rejected: %v", err)
	}
}

func TestRunManyThreeProcs(t *testing.T) {
	env := NewEnv(kernel.Config{Version: kernel.V5_12_RC3})
	progs := []*corpus.Prog{l2tpWriterProg(), l2tpReaderProg(), l2tpReaderProg()}
	res := env.RunMany(progs, vm.SeqScheduler{}, nil)
	if res.Crashed() {
		t.Fatalf("sequentialized triple crashed: %v", res.Faults)
	}
	if len(res.Rets) != 3 {
		t.Fatalf("rets for %d threads", len(res.Rets))
	}
	for i, rets := range res.Rets {
		for j, r := range rets {
			if r < 0 {
				t.Fatalf("thread %d call %d failed: %d", i, j, r)
			}
		}
	}
}

func TestMaxStepsHang(t *testing.T) {
	env := NewEnv(kernel.Config{Version: kernel.V5_12_RC3})
	env.MaxSteps = 10 // far too small for any test
	res := env.RunSequential(l2tpReaderProg(), nil)
	if !res.Hung {
		t.Fatal("step-limited run not reported as hung")
	}
}

func TestCloneProfilesMatchOriginal(t *testing.T) {
	env := NewEnv(kernel.Config{Version: kernel.V5_12_RC3})
	clone := env.Clone()
	prog := l2tpReaderProg()
	want, _, wres := env.Profile(prog)
	got, _, gres := clone.Profile(prog)
	if wres.Crashed() || gres.Crashed() {
		t.Fatalf("profile crashed: %v / %v", wres.Faults, gres.Faults)
	}
	if want.Len() == 0 || got.Len() != want.Len() {
		t.Fatalf("clone profiled %d accesses, original %d", got.Len(), want.Len())
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("clone profile differs from original")
	}
}

// Clones share the boot snapshot copy-on-write; running them from separate
// goroutines must be race-free and bit-identical (run under -race in CI).
func TestClonesRunConcurrently(t *testing.T) {
	env := NewEnv(kernel.Config{Version: kernel.V5_12_RC3})
	prog := l2tpReaderProg()
	want, _, _ := env.Profile(prog)

	const n = 4
	results := make([]trace.Block, n)
	done := make(chan int, n)
	for i := 0; i < n; i++ {
		clone := env.Clone()
		go func(i int) {
			accs, _, _ := clone.Profile(prog)
			results[i] = accs
			done <- i
		}(i)
	}
	for i := 0; i < n; i++ {
		<-done
	}
	for i, accs := range results {
		if accs.Len() != want.Len() {
			t.Fatalf("clone %d profiled %d accesses, want %d", i, accs.Len(), want.Len())
		}
		if !reflect.DeepEqual(accs, want) {
			t.Fatalf("clone %d profile differs from original", i)
		}
	}
}
