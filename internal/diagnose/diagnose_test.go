package diagnose

import (
	"strings"
	"testing"

	"snowboard/internal/detect"
	"snowboard/internal/pmc"
	"snowboard/internal/trace"
)

var (
	dgW = trace.DefIns("diag_test:publish")
	dgR = trace.DefIns("diag_test:lookup")
	dgX = trace.DefIns("diag_test:noise")
)

func diagTrace() *trace.Trace {
	tr := &trace.Trace{}
	for i := 0; i < 20; i++ {
		tr.Append(trace.Access{Thread: 0, Kind: trace.Write, Ins: dgX, Addr: 0x900 + uint64(i), Size: 1})
	}
	tr.Append(trace.Access{Thread: 0, Kind: trace.Write, Ins: dgW, Addr: 0x100, Size: 8, Val: 0x42})
	tr.Append(trace.Access{Thread: 1, Kind: trace.Read, Ins: dgR, Addr: 0x100, Size: 8, Val: 0x42})
	for i := 0; i < 20; i++ {
		tr.Append(trace.Access{Thread: 1, Kind: trace.Read, Ins: dgX, Addr: 0x900 + uint64(i), Size: 1})
	}
	return tr
}

func diagHint() *pmc.PMC {
	return &pmc.PMC{
		Write: pmc.Key{Ins: dgW, Addr: 0x100, Size: 8, Val: 0x42},
		Read:  pmc.Key{Ins: dgR, Addr: 0x100, Size: 8, Val: 0},
	}
}

func TestRenderAnchorsAndElision(t *testing.T) {
	out := Render(diagTrace(), diagHint(), []detect.Issue{
		{Kind: detect.KindPanic, Desc: "BUG: kernel NULL pointer dereference", BugID: 12},
	}, DefaultOptions())

	if !strings.Contains(out, "PMC write") || !strings.Contains(out, "PMC read") {
		t.Fatalf("anchors missing:\n%s", out)
	}
	if !strings.Contains(out, "...") {
		t.Fatalf("uninteresting context not elided:\n%s", out)
	}
	if !strings.Contains(out, "Table 2 issue #12") {
		t.Fatalf("finding line missing:\n%s", out)
	}
	if !strings.Contains(out, "diag_test:publish") {
		t.Fatalf("write site missing:\n%s", out)
	}
	// The reader's column is indented relative to the writer's.
	var readerLine string
	for _, l := range strings.Split(out, "\n") {
		if strings.Contains(l, "diag_test:lookup") {
			readerLine = l
		}
	}
	if !strings.HasPrefix(readerLine, strings.Repeat(" ", 40)) {
		t.Fatalf("reader line not in right column: %q", readerLine)
	}
}

func TestRenderRowCap(t *testing.T) {
	tr := &trace.Trace{}
	for i := 0; i < 500; i++ {
		tr.Append(trace.Access{Thread: 0, Kind: trace.Write, Ins: dgW, Addr: 0x100, Size: 8})
	}
	out := Render(tr, diagHint(), nil, Options{Context: 2, MaxRows: 10})
	if !strings.Contains(out, "(truncated: ") {
		t.Fatal("row cap not applied")
	}
	if n := strings.Count(out, "diag_test:publish"); n > 12 {
		t.Fatalf("too many rows rendered: %d", n)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize(diagHint(), []detect.Issue{
		{Kind: detect.KindPanic, Desc: "BUG: kernel NULL pointer dereference"},
	})
	if !strings.Contains(s, "diag_test:publish") || !strings.Contains(s, "kernel crash") {
		t.Fatalf("summary: %s", s)
	}
}

func TestRenderNilHintEmptyIssues(t *testing.T) {
	// No hint and no issues means no anchors; the renderer must fall back
	// to the head of the trace instead of an empty body.
	tr := &trace.Trace{}
	for i := 0; i < 8; i++ {
		tr.Append(trace.Access{Thread: i % 2, Kind: trace.Write, Ins: dgW, Addr: 0x100, Size: 8})
	}
	out := Render(tr, nil, nil, Options{Context: 2, MaxRows: 64})
	if n := strings.Count(out, "diag_test:publish"); n != 8 {
		t.Fatalf("head fallback rendered %d rows, want 8:\n%s", n, out)
	}
	if strings.Contains(out, "(truncated") {
		t.Fatalf("short trace reported truncation:\n%s", out)
	}
}

func TestRenderNilHintLongTraceTruncates(t *testing.T) {
	tr := &trace.Trace{}
	for i := 0; i < 50; i++ {
		tr.Append(trace.Access{Thread: 0, Kind: trace.Write, Ins: dgW, Addr: 0x100, Size: 8})
	}
	out := Render(tr, nil, nil, Options{Context: 2, MaxRows: 10})
	if n := strings.Count(out, "diag_test:publish"); n != 10 {
		t.Fatalf("rendered %d rows, want exactly MaxRows=10:\n%s", n, out)
	}
	if !strings.Contains(out, "(truncated: ") {
		t.Fatalf("no truncation marker:\n%s", out)
	}
}

func TestRenderEmptyTrace(t *testing.T) {
	out := Render(&trace.Trace{}, nil, nil, DefaultOptions())
	if !strings.Contains(out, "(empty trace)") {
		t.Fatalf("empty trace not marked:\n%s", out)
	}
}

func TestRenderAnchoredTruncationCountsHiddenRows(t *testing.T) {
	// Anchors spread across a long trace: the cap must say how many
	// anchored rows it hid rather than silently clipping.
	tr := &trace.Trace{}
	for i := 0; i < 300; i++ {
		tr.Append(trace.Access{Thread: 0, Kind: trace.Write, Ins: dgW, Addr: 0x100, Size: 8})
	}
	out := Render(tr, diagHint(), nil, Options{Context: 1, MaxRows: 5})
	if !strings.Contains(out, "(truncated: ") || !strings.Contains(out, "more rows beyond the 5-row cap") {
		t.Fatalf("truncation marker missing or uncounted:\n%s", out)
	}
}
