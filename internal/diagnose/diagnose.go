// Package diagnose renders post-mortem reports for exposed concurrency
// issues (§6 "Bug Diagnosis"): given a bug-exposing trial trace and the PMC
// scheduling hint, it reconstructs the two-column interleaving diagram
// around the communicating accesses — the presentation style of the
// paper's Figures 1 and 3 — so a developer can see which writer store
// interposed into the reader's critical region.
package diagnose

import (
	"fmt"
	"strings"

	"snowboard/internal/detect"
	"snowboard/internal/pmc"
	"snowboard/internal/trace"
)

// Options tunes the rendering.
type Options struct {
	// Context is how many accesses to show around each point of interest.
	Context int
	// MaxRows caps the total rows rendered.
	MaxRows int
}

// DefaultOptions renders ±4 accesses of context, at most 64 rows.
func DefaultOptions() Options { return Options{Context: 4, MaxRows: 64} }

// interesting marks trace indexes that should anchor context windows: PMC
// accesses and the accesses named by the issues.
func interesting(tr *trace.Trace, hint *pmc.PMC, issues []detect.Issue) map[int]string {
	anchors := make(map[int]string)
	match := func(a *trace.Access, k pmc.Key, kind trace.Kind) bool {
		return a.Kind == kind && a.Ins == k.Ins && a.Addr == k.Addr && a.Size == k.Size
	}
	insOfInterest := make(map[trace.Ins]string)
	for _, is := range issues {
		if is.WriteIns != trace.NoIns {
			insOfInterest[is.WriteIns] = "racing write"
		}
		if is.ReadIns != trace.NoIns {
			insOfInterest[is.ReadIns] = "racing read"
		}
	}
	for i, n := 0, tr.Len(); i < n; i++ {
		a := tr.At(i)
		if hint != nil {
			if match(&a, hint.Write, trace.Write) {
				anchors[i] = "PMC write ➊" // ➊
				continue
			}
			if match(&a, hint.Read, trace.Read) {
				anchors[i] = "PMC read ➋" // ➋
				continue
			}
		}
		if tag, ok := insOfInterest[a.Ins]; ok {
			anchors[i] = tag
		}
	}
	return anchors
}

// Render produces the two-column interleaving report. Thread 0 (the
// writer test) occupies the left column, thread 1 the right.
func Render(tr *trace.Trace, hint *pmc.PMC, issues []detect.Issue, opt Options) string {
	if opt.Context <= 0 {
		opt.Context = 4
	}
	if opt.MaxRows <= 0 {
		opt.MaxRows = 64
	}
	anchors := interesting(tr, hint, issues)

	show := make(map[int]bool)
	for idx := range anchors {
		for j := idx - opt.Context; j <= idx+opt.Context; j++ {
			if j >= 0 && j < tr.Len() {
				show[j] = true
			}
		}
	}
	if len(show) == 0 && tr.Len() > 0 {
		// No anchors at all — a nil hint with an empty (or site-less)
		// issue list. Show the head of the trace instead of rendering an
		// empty body that silently hides the whole interleaving; the row
		// cap below still truncates (with a counted marker) when the trace
		// is longer than MaxRows.
		for j := 0; j < tr.Len(); j++ {
			show[j] = true
		}
	}

	var b strings.Builder
	b.WriteString("Concurrent test interleaving (kernel thread 1 | kernel thread 2)\n")
	if hint != nil {
		fmt.Fprintf(&b, "PMC hint: %s\n", hint)
	}
	for _, is := range issues {
		fmt.Fprintf(&b, "finding: [%s] %s", is.Kind, is.Desc)
		if is.BugID != 0 {
			fmt.Fprintf(&b, "  (Table 2 issue #%d)", is.BugID)
		}
		b.WriteString("\n")
	}
	b.WriteString(strings.Repeat("-", 100) + "\n")

	if tr.Len() == 0 {
		b.WriteString("    (empty trace)\n")
		return b.String()
	}
	rows := 0
	prevShown := true
	for i, n := 0, tr.Len(); i < n; i++ {
		if !show[i] {
			if prevShown {
				b.WriteString("    ...\n")
				prevShown = false
			}
			continue
		}
		prevShown = true
		if rows >= opt.MaxRows {
			rest := 0
			for j := i; j < n; j++ {
				if show[j] {
					rest++
				}
			}
			fmt.Fprintf(&b, "    ... (truncated: %d more rows beyond the %d-row cap)\n", rest, opt.MaxRows)
			break
		}
		rows++
		a := tr.At(i)
		line := fmt.Sprintf("%s %s [%#x+%d] = %#x", a.Kind, a.Ins.Name(), a.Addr, a.Size, a.Val)
		if tag, ok := anchors[i]; ok {
			line += "   <== " + tag
		}
		if a.Thread == 0 {
			fmt.Fprintf(&b, "%-78s|\n", "  "+line)
		} else {
			fmt.Fprintf(&b, "%-40s|  %s\n", "", line)
		}
	}
	return b.String()
}

// Summarize produces a one-paragraph textual account of how the PMC led to
// the issue, in the style of the paper's case studies.
func Summarize(hint *pmc.PMC, issues []detect.Issue) string {
	var b strings.Builder
	if hint != nil {
		fmt.Fprintf(&b,
			"The writer's %s stores %#x over [%#x,+%d); run before the reader's %s (which observed %#x sequentially), the communication changes the reader's view of that memory.",
			hint.Write.Ins.Name(), hint.Write.Val, hint.Write.Addr, hint.Write.Size,
			hint.Read.Ins.Name(), hint.Read.Val)
	}
	for _, is := range issues {
		switch is.Kind {
		case detect.KindPanic:
			fmt.Fprintf(&b, " The interleaving ends in a kernel crash: %s.", is.Desc)
		case detect.KindDataRace:
			fmt.Fprintf(&b, " The oracles flag %s.", is.Desc)
		case detect.KindFSError, detect.KindIOError:
			fmt.Fprintf(&b, " The kernel logs %q.", is.Desc)
		}
	}
	return strings.TrimSpace(b.String())
}
