package triage

import "snowboard/internal/corpus"

// dropCall returns prog without call idx and without every later call
// that (transitively) references a dropped call's result; remaining
// resource references are renumbered. Refs point strictly backwards
// (corpus.Prog.Validate), so one forward pass closes the dependency set.
func dropCall(p *corpus.Prog, idx int) *corpus.Prog {
	n := len(p.Calls)
	drop := make([]bool, n)
	drop[idx] = true
	for i := idx + 1; i < n; i++ {
		for _, a := range p.Calls[i].Args {
			if a.Kind == corpus.ResultArg && a.Ref >= 0 && a.Ref < i && drop[a.Ref] {
				drop[i] = true
				break
			}
		}
	}
	remap := make([]int, n)
	kept := 0
	for i := 0; i < n; i++ {
		remap[i] = kept
		if !drop[i] {
			kept++
		}
	}
	out := &corpus.Prog{Calls: make([]corpus.Call, 0, kept)}
	for i, c := range p.Calls {
		if drop[i] {
			continue
		}
		nc := corpus.Call{Nr: c.Nr, Args: append([]corpus.Arg(nil), c.Args...)}
		for ai := range nc.Args {
			if nc.Args[ai].Kind == corpus.ResultArg {
				nc.Args[ai].Ref = remap[nc.Args[ai].Ref]
			}
		}
		out.Calls = append(out.Calls, nc)
	}
	return out
}

// minimizeProg drops syscalls from p to a fixpoint, keeping each drop only
// when test (a replay + signature check) accepts the candidate. Dropping is
// attempted back-to-front so post-crash trailing calls go first and
// resource producers are tried only after their dependents. The result is
// never larger than p; test is never called once the replay budget is
// exhausted, so p survives unshrunk in the worst case rather than wrong.
func (m *minimizer) minimizeProg(p *corpus.Prog, test func(*corpus.Prog) bool) *corpus.Prog {
	for changed := true; changed; {
		changed = false
		for i := len(p.Calls) - 1; i >= 0; i-- {
			if m.exhausted() {
				return p
			}
			cand := dropCall(p, i)
			if len(cand.Calls) == 0 || len(cand.Calls) >= len(p.Calls) {
				continue
			}
			if cand.Validate() != nil {
				continue
			}
			if test(cand) {
				p = cand
				changed = true
				break
			}
		}
	}
	return p
}
