package triage

import (
	"sort"

	"snowboard/internal/sched"
)

// decision is one entry of the unified schedule decision set ddmin works
// over. The crashing schedule is produced by two kinds of decisions:
//
//   - Flip=true: an explicit ReproState.Flips entry (a mutation the
//     feedback loop applied). Keeping it keeps the flip; dropping it
//     removes the flip and lets the scheduler's own roll stand.
//   - Flip=false: a preemption the trial's deterministic scheduler rolled
//     on its own (recorded by sched.ReplayRecorded). Keeping it changes
//     nothing; dropping it *adds* a flip at that access index, which
//     inverts — i.e. suppresses — the roll.
//
// Either way a candidate keep-set maps to a plain Flips list, so every
// candidate is an ordinary ReproState replayed through the ordinary path.
type decision struct {
	Index int
	Flip  bool
}

// decisionSet builds the unified decision list from the state's explicit
// flips and the recorded preemption indices, sorted by access index. An
// index present in both lists is a flip decision only (the recorded switch
// at that index already is the flip's effect).
func decisionSet(flips, switches []int) []decision {
	isFlip := make(map[int]bool, len(flips))
	all := make([]decision, 0, len(flips)+len(switches))
	for _, idx := range flips {
		if isFlip[idx] {
			continue
		}
		isFlip[idx] = true
		all = append(all, decision{Index: idx, Flip: true})
	}
	for _, idx := range switches {
		if isFlip[idx] {
			continue
		}
		all = append(all, decision{Index: idx, Flip: false})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Index < all[j].Index })
	return all
}

// flipsFor converts a keep-set (positions into all) to the Flips list of
// the candidate state: kept flip decisions stay flips, dropped preemption
// decisions become suppression flips.
func flipsFor(all []decision, keep []int) []int {
	kept := make(map[int]bool, len(keep))
	for _, pos := range keep {
		kept[pos] = true
	}
	var flips []int
	for pos, d := range all {
		if d.Flip == kept[pos] {
			flips = append(flips, d.Index)
		}
	}
	return flips
}

// candState clones base with the candidate flip list.
func candState(base *sched.ReproState, flips []int) *sched.ReproState {
	st := *base
	st.Flips = flips
	return &st
}

// without returns keep with position i removed.
func without(keep []int, i int) []int {
	out := make([]int, 0, len(keep)-1)
	out = append(out, keep[:i]...)
	return append(out, keep[i+1:]...)
}

// ddmin minimizes the schedule decision set with Zeller-style delta
// debugging (reduction to complements with granularity doubling), then a
// single-removal pass to a fixpoint. The budget caps the ddmin phase; the
// final pass always completes, so the returned keep-set is 1-minimal:
// dropping any single kept decision loses the crash signature. The full
// keep-set reproduces by construction (it replays the baseline schedule
// exactly), so the result is never larger than the original.
func (m *minimizer) ddmin(ct sched.ConcurrentTest, base *sched.ReproState, target Signature, all []decision) []int {
	cur := make([]int, len(all))
	for i := range all {
		cur[i] = i
	}
	test := func(keep []int) bool {
		return m.reproduces(ct, candState(base, flipsFor(all, keep)), target)
	}
	if len(cur) == 0 {
		return cur
	}
	// Cheap fast path: many crashes need no schedule intervention at all.
	if test(nil) {
		return nil
	}
	n := 2
	for len(cur) >= 2 && !m.exhausted() {
		chunk := (len(cur) + n - 1) / n
		reduced := false
		for start := 0; start < len(cur) && !m.exhausted(); start += chunk {
			end := start + chunk
			if end > len(cur) {
				end = len(cur)
			}
			comp := make([]int, 0, len(cur)-(end-start))
			comp = append(comp, cur[:start]...)
			comp = append(comp, cur[end:]...)
			if test(comp) {
				cur = comp
				n = n - 1
				if n < 2 {
					n = 2
				}
				reduced = true
				break
			}
		}
		if !reduced {
			if n >= len(cur) {
				break
			}
			n *= 2
			if n > len(cur) {
				n = len(cur)
			}
		}
	}
	// 1-minimality pass: retry single removals until none reproduces.
	// Not budget-capped — the guarantee must hold unconditionally.
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(cur); i++ {
			if test(without(cur, i)) {
				cur = without(cur, i)
				changed = true
				break
			}
		}
	}
	return cur
}
