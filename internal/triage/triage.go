// Package triage turns raw crash findings into actionable, deduplicated,
// minimized bug reports — ROADMAP item 5 ("report-to-repro").
//
// A finding as recorded by the explorer is a haystack: the trial's
// ConcurrentTest carries every syscall the fuzzer happened to compose, and
// its ReproState replays the full preemption schedule the scheduler rolled.
// Triage reduces both while re-replaying after every candidate edit and
// keeping the edit only if the same crash signature recurs:
//
//  1. test minimization — drop syscalls (and their resource dependents)
//     from the writer and reader programs to a fixpoint;
//  2. schedule minimization — ddmin over the unified decision set of
//     explicit ReproState.Flips plus the preemptions the trial's scheduler
//     rolled on its own (recorded via sched.ReplayRecorded), finishing
//     with a single-removal pass so the kept set is 1-minimal;
//  3. signature derivation — a stable crash-site + communication-channel
//     Signature that is independent of seed, trial, and addresses, so the
//     same bug found by different campaigns folds to one identity.
//
// The result is packaged as an SBRB bundle (see bundle.go) that
// `sbrepro -min <digest>` replays deterministically anywhere.
package triage

import (
	"errors"
	"fmt"
	"strings"

	"snowboard/internal/corpus"
	"snowboard/internal/detect"
	"snowboard/internal/exec"
	"snowboard/internal/pmc"
	"snowboard/internal/sched"
	"snowboard/internal/trace"
)

// Signature is the stable cross-campaign identity of a crash finding:
// which kind of failure, at which crash site, through which inter-thread
// communication channel. It deliberately excludes seed, trial index,
// addresses, and any other per-run detail, so two campaigns that expose
// the same bug produce the same Signature and fold in the dedup index.
type Signature struct {
	// Kind is the issue kind name ("panic", "fs-error", ...).
	Kind string `json:"kind"`
	// Site identifies where the kernel failed: "table2:<id>" for
	// classified bugs, "writeFn->readFn" for raw race sites, or the
	// digit-normalized console description otherwise.
	Site string `json:"site"`
	// Channel is the communication channel the bug flows through:
	// the classified bug's mechanism functions when known, else the
	// scheduling hint's write->read function pair.
	Channel string `json:"channel,omitempty"`
}

// Key renders the signature as a single stable string, usable as a map key
// and printed by sbrepro for CI comparison.
func (s Signature) Key() string {
	return s.Kind + "|" + s.Site + "|" + s.Channel
}

// IsZero reports whether the signature is empty.
func (s Signature) IsZero() bool { return s == Signature{} }

// normalizeDesc collapses every digit run in a console description to '#'
// so sector numbers, addresses, and counters do not leak per-run detail
// into the signature.
func normalizeDesc(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	inNum := false
	for _, r := range s {
		if r >= '0' && r <= '9' {
			if !inNum {
				b.WriteByte('#')
				inNum = true
			}
			continue
		}
		inNum = false
		b.WriteRune(r)
	}
	return b.String()
}

// channelOf renders a PMC hint as a write->read function pair.
func channelOf(hint *pmc.PMC) string {
	if hint == nil {
		return ""
	}
	return detect.SiteOf(hint.Write.Ins) + "->" + detect.SiteOf(hint.Read.Ins)
}

// SignatureOf derives the stable signature of one issue. For classified
// bugs the site is the Table 2 row and the channel is the row's mechanism
// function pair — both independent of which PMC hint happened to expose
// the bug in this campaign. Unclassified issues fall back to race sites or
// the normalized description, with the hint as channel.
func SignatureOf(is detect.Issue, hint *pmc.PMC) Signature {
	sig := Signature{Kind: is.Kind.String()}
	if is.BugID != 0 {
		sig.Site = fmt.Sprintf("table2:%d", is.BugID)
		if kb, ok := detect.BugByID(is.BugID); ok {
			sig.Channel = kb.WriteFn + "->" + kb.ReadFn
			return sig
		}
	}
	sig.Channel = channelOf(hint)
	if sig.Site != "" {
		return sig
	}
	switch {
	case is.WriteIns != trace.NoIns || is.ReadIns != trace.NoIns:
		sig.Site = detect.SiteOf(is.WriteIns) + "->" + detect.SiteOf(is.ReadIns)
	default:
		sig.Site = normalizeDesc(is.Desc)
	}
	return sig
}

// SignatureOfIssues picks the crash-level signature a trial exposes,
// preferring the issue classified as preferBugID when present (the
// finding being triaged), else the first crash-level issue in detector
// order. ok is false when no crash-level issue is present.
func SignatureOfIssues(issues []detect.Issue, hint *pmc.PMC, preferBugID int) (Signature, bool) {
	var first Signature
	found := false
	for _, is := range issues {
		if !detect.CrashLevel(is.Kind) {
			continue
		}
		if preferBugID != 0 && is.BugID == preferBugID {
			return SignatureOf(is, hint), true
		}
		if !found {
			first = SignatureOf(is, hint)
			found = true
		}
	}
	return first, found
}

// Finding is one crash-level issue to minimize: the concurrent test that
// exposed it and the recorded replay state of the crashing trial.
type Finding struct {
	Test  sched.ConcurrentTest
	State *sched.ReproState
	// BugID, when nonzero, selects which crash-level issue of the trial
	// is the minimization target (a trial can expose several).
	BugID int
}

// Options configures minimization.
type Options struct {
	// Detect configures the detector suite run after each replay. Must
	// match the campaign's options or signatures will not line up.
	Detect detect.Options
	// MaxReplays caps the replays spent in the reduction loops
	// (0 = DefaultMaxReplays). The final 1-minimality pass always runs
	// to completion so the guarantee holds even when the cap bites.
	MaxReplays int
}

// DefaultMaxReplays bounds the reduction-phase replay budget.
const DefaultMaxReplays = 512

// Stats records pre/post minimization sizes and the replay cost.
type Stats struct {
	// Replays is the total number of candidate replays performed.
	Replays int `json:"replays"`
	// DecisionsOrig/DecisionsMin count schedule decisions (explicit
	// flips plus scheduler-rolled preemptions) before and after ddmin.
	DecisionsOrig int `json:"decisions_orig"`
	DecisionsMin  int `json:"decisions_min"`
	// SwitchesOrig/SwitchesMin count thread switches the replayed
	// schedule actually performs before and after minimization.
	SwitchesOrig int `json:"switches_orig"`
	SwitchesMin  int `json:"switches_min"`
	// Writer/Reader syscall counts before and after call dropping.
	WriterCallsOrig int `json:"writer_calls_orig"`
	WriterCallsMin  int `json:"writer_calls_min"`
	ReaderCallsOrig int `json:"reader_calls_orig"`
	ReaderCallsMin  int `json:"reader_calls_min"`
}

// Result is a minimized finding.
type Result struct {
	// Signature is the stable identity of the reproduced crash.
	Signature Signature
	// Test carries the minimized writer/reader programs (hint and
	// extras preserved from the original).
	Test sched.ConcurrentTest
	// State replays the minimized schedule.
	State *sched.ReproState
	Stats Stats
}

// ErrNoCrash is returned when the original finding does not reproduce a
// crash-level issue on replay (nothing to minimize against).
var ErrNoCrash = errors.New("triage: original trial does not reproduce a crash-level finding")

type minimizer struct {
	env     *exec.Env
	opt     Options
	budget  int
	replays int
}

// replayRecord replays (ct, st) with preemption recording and runs the
// detector suite, returning the recorded switch indices and the issues.
func (m *minimizer) replayRecord(ct sched.ConcurrentTest, st *sched.ReproState) ([]int, []detect.Issue) {
	m.replays++
	var tr trace.Trace
	res, events := sched.ReplayRecorded(m.env, ct, st, &tr)
	m.env.M.SetTrace(nil)
	issues := detect.Analyze(detect.TrialInput{
		Console:  res.Console,
		Trace:    &tr,
		PostScan: m.env.K.FsckHost(),
		Hung:     res.Hung,
		Deadlock: res.Deadlock,
	}, m.opt.Detect)
	return events, issues
}

// reproduces reports whether replaying (ct, st) still exposes target.
func (m *minimizer) reproduces(ct sched.ConcurrentTest, st *sched.ReproState, target Signature) bool {
	_, issues := m.replayRecord(ct, st)
	for _, is := range issues {
		if detect.CrashLevel(is.Kind) && SignatureOf(is, ct.Hint) == target {
			return true
		}
	}
	return false
}

func (m *minimizer) exhausted() bool { return m.replays >= m.budget }

// Minimize reduces one crash finding: first the two test programs, then
// the preemption schedule, re-replaying each candidate and keeping it only
// when the original crash signature recurs. The returned test and state
// are never larger than the originals, and the schedule decision set is
// 1-minimal: removing any single kept decision loses the signature.
func Minimize(env *exec.Env, f Finding, opt Options) (*Result, error) {
	if f.State == nil {
		return nil, errors.New("triage: finding has no replay state")
	}
	if f.Test.Writer == nil || f.Test.Reader == nil {
		return nil, errors.New("triage: finding has no test programs")
	}
	budget := opt.MaxReplays
	if budget <= 0 {
		budget = DefaultMaxReplays
	}
	m := &minimizer{env: env, opt: opt, budget: budget}

	// Baseline replay: establish the target signature and the original
	// schedule footprint.
	events, issues := m.replayRecord(f.Test, f.State)
	target, ok := SignatureOfIssues(issues, f.Test.Hint, f.BugID)
	if !ok {
		return nil, ErrNoCrash
	}
	stats := Stats{
		SwitchesOrig:    len(events),
		WriterCallsOrig: len(f.Test.Writer.Calls),
		ReaderCallsOrig: len(f.Test.Reader.Calls),
	}

	// Phase 1: drop syscalls from the writer, then the reader. Each drop
	// is kept only if the crash signature still reproduces under the
	// original schedule state, so soundness never depends on access-index
	// alignment surviving the edit.
	ct := f.Test
	ct.Writer = m.minimizeProg(ct.Writer, func(p *corpus.Prog) bool {
		cand := ct
		cand.Writer = p
		return m.reproduces(cand, f.State, target)
	})
	ct.Reader = m.minimizeProg(ct.Reader, func(p *corpus.Prog) bool {
		cand := ct
		cand.Reader = p
		return m.reproduces(cand, f.State, target)
	})
	stats.WriterCallsMin = len(ct.Writer.Calls)
	stats.ReaderCallsMin = len(ct.Reader.Calls)

	// Phase 2: re-record the schedule on the minimized programs (call
	// dropping shifts access indices), build the unified decision set,
	// and ddmin it down to a 1-minimal core.
	events, _ = m.replayRecord(ct, f.State)
	all := decisionSet(f.State.Flips, events)
	stats.DecisionsOrig = len(all)
	keep := m.ddmin(ct, f.State, target, all)
	stats.DecisionsMin = len(keep)
	st := candState(f.State, flipsFor(all, keep))

	// Final verify: the minimized bundle must reproduce, and its replay
	// gives the minimized switch count.
	events, issues = m.replayRecord(ct, st)
	verified := false
	for _, is := range issues {
		if detect.CrashLevel(is.Kind) && SignatureOf(is, ct.Hint) == target {
			verified = true
			break
		}
	}
	if !verified {
		// Cannot happen: every accepted reduction step re-verified the
		// signature, and replay is deterministic. Guard anyway so a
		// regression surfaces as an error, not a bogus bundle.
		return nil, fmt.Errorf("triage: minimized candidate lost signature %s", target.Key())
	}
	stats.SwitchesMin = len(events)
	stats.Replays = m.replays
	return &Result{Signature: target, Test: ct, State: st, Stats: stats}, nil
}
