package triage

import (
	"errors"
	"testing"

	"snowboard/internal/detect"
	"snowboard/internal/kernel"
	"snowboard/internal/store"
)

func testBundle(t *testing.T) *Bundle {
	t.Helper()
	env, f := l2tpFinding(t, 1)
	res, err := Minimize(env, f, Options{Detect: detect.DefaultOptions()})
	if err != nil {
		t.Fatal(err)
	}
	return &Bundle{
		Format:    FormatVersion,
		Kernel:    kernel.V5_12_RC3,
		Writer:    res.Test.Writer,
		Reader:    res.Test.Reader,
		Hint:      res.Test.Hint,
		State:     res.State,
		Signature: res.Signature,
		BugID:     12,
		Stats:     res.Stats,
	}
}

func TestBundleRoundTrip(t *testing.T) {
	b := testBundle(t)
	data, err := Encode(b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Signature != b.Signature || got.BugID != 12 || got.State == nil {
		t.Fatalf("round trip: %+v", got)
	}
	// Encoding is canonical: same bundle, same digest.
	data2, err := Encode(got)
	if err != nil {
		t.Fatal(err)
	}
	if store.Sum(data) != store.Sum(data2) {
		t.Fatal("bundle encoding is not canonical")
	}
}

func TestDecodeDistinguishesStaleFromCorrupt(t *testing.T) {
	b := testBundle(t)
	data, err := Encode(b)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"garbage", []byte("not json at all"), ErrCorrupt},
		{"missing format", []byte(`{"kernel":"5.12-rc3"}`), ErrStale},
		{"newer format", []byte(`{"format":99}`), ErrStale},
		{"older format", []byte(`{"format":0}`), ErrStale},
		{"right format, invalid body", []byte(`{"format":1}`), ErrCorrupt},
		{"truncated", data[:len(data)/2], ErrCorrupt},
	}
	for _, tc := range cases {
		if _, err := Decode(tc.data); !errors.Is(err, tc.want) {
			t.Fatalf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
	// Stale and corrupt never overlap.
	if _, err := Decode([]byte(`{"format":2}`)); errors.Is(err, ErrCorrupt) {
		t.Fatal("stale decode also matched ErrCorrupt")
	}
}

func TestBundleStoreAndIndex(t *testing.T) {
	b := testBundle(t)
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	d, err := SaveBundle(s, b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := LoadBundle(s, d)
	if err != nil {
		t.Fatal(err)
	}
	if got.Signature != b.Signature {
		t.Fatalf("loaded bundle signature: %+v", got.Signature)
	}

	// First registration is fresh and pins the canonical bundle.
	entry, fresh, err := Register(s, b.Signature, d, "campaign-a")
	if err != nil || !fresh {
		t.Fatalf("first register: fresh=%v err=%v", fresh, err)
	}
	if entry.Bundle != d.String() || entry.Count != 1 {
		t.Fatalf("first entry: %+v", entry)
	}
	// A second campaign folds; the canonical bundle stays the first one.
	other := store.Sum([]byte("different bundle"))
	entry, fresh, err = Register(s, b.Signature, other, "campaign-b")
	if err != nil || fresh {
		t.Fatalf("second register: fresh=%v err=%v", fresh, err)
	}
	if entry.Bundle != d.String() || entry.Count != 2 || len(entry.Campaigns) != 2 {
		t.Fatalf("folded entry: %+v", entry)
	}
	// Re-registering the same campaign bumps the count but not the labels.
	entry, _, err = Register(s, b.Signature, other, "campaign-b")
	if err != nil || entry.Count != 3 || len(entry.Campaigns) != 2 {
		t.Fatalf("re-register: %+v err=%v", entry, err)
	}
	if got, ok := Lookup(s, b.Signature); !ok || got.Count != 3 {
		t.Fatalf("lookup: %+v ok=%v", got, ok)
	}
	if _, ok := Lookup(s, Signature{Kind: "panic", Site: "elsewhere"}); ok {
		t.Fatal("lookup invented an entry")
	}
}
