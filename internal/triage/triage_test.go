package triage

import (
	"reflect"
	"testing"

	"snowboard/internal/corpus"
	"snowboard/internal/detect"
	"snowboard/internal/exec"
	"snowboard/internal/kernel"
	"snowboard/internal/pmc"
	"snowboard/internal/sched"
	"snowboard/internal/trace"
)

// The Figure 1 L2TP fixture: racing tunnel registration against tunnel
// lookup exposes Table 2 issue #12 (a kernel NULL dereference) in 5.12-rc3.

func l2tpWriterProg() *corpus.Prog {
	return &corpus.Prog{Calls: []corpus.Call{
		{Nr: kernel.SysSocketNr, Args: []corpus.Arg{corpus.Const(kernel.AFPppox), corpus.Const(kernel.SockDgram), corpus.Const(kernel.PxProtoOL2TP)}},
		{Nr: kernel.SysSocketNr, Args: []corpus.Arg{corpus.Const(kernel.AFInet), corpus.Const(kernel.SockDgram), corpus.Const(0)}},
		{Nr: kernel.SysConnectNr, Args: []corpus.Arg{corpus.Result(0), corpus.Const(1), corpus.Result(1)}},
	}}
}

func l2tpReaderProg() *corpus.Prog {
	p := l2tpWriterProg()
	p.Calls = append(p.Calls, corpus.Call{
		Nr:   kernel.SysSendmsgNr,
		Args: []corpus.Arg{corpus.Result(0), corpus.Const(512)},
	})
	return p
}

// l2tpFinding explores the fixture until the crash and returns the env and
// the recorded finding, exactly as the pipeline would hand it to triage.
func l2tpFinding(t *testing.T, seed int64) (*exec.Env, Finding) {
	t.Helper()
	env := exec.NewEnv(kernel.Config{Version: kernel.V5_12_RC3})
	progs := []*corpus.Prog{l2tpWriterProg(), l2tpReaderProg()}
	var profiles []pmc.Profile
	for i, p := range progs {
		accs, df, res := env.Profile(p)
		if res.Crashed() {
			t.Fatalf("profiling crashed: %v", res.Faults)
		}
		profiles = append(profiles, pmc.Profile{TestID: i, Accesses: accs, DFLeader: df})
	}
	set := pmc.Identify(profiles, pmc.DefaultOptions())
	pubIns, _ := trace.LookupIns("l2tp_tunnel_register:list_add_rcu")
	getIns, _ := trace.LookupIns("l2tp_tunnel_get:rcu_dereference_list")
	var hint *pmc.PMC
	for key := range set.Entries {
		if key.Write.Ins == pubIns && key.Read.Ins == getIns {
			h := key
			hint = &h
			break
		}
	}
	if hint == nil {
		t.Fatal("l2tp publication PMC not identified")
	}
	x := &sched.Explorer{Env: env, Trials: 512, Seed: seed, Mode: sched.ModeSnowboard, Detect: detect.DefaultOptions(), KnownPMCs: set}
	ct := sched.ConcurrentTest{Writer: l2tpWriterProg(), Reader: l2tpReaderProg(), Hint: hint}
	out := x.Explore(ct)
	if out.Repro == nil {
		t.Fatalf("seed %d: exploration recorded no repro state", seed)
	}
	return env, Finding{Test: ct, State: out.Repro, BugID: 12}
}

func TestMinimizeNeverGrowsAndReproduces(t *testing.T) {
	env, f := l2tpFinding(t, 1)
	res, err := Minimize(env, f, Options{Detect: detect.DefaultOptions()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Signature.Kind != "panic" || res.Signature.Site != "table2:12" {
		t.Fatalf("unexpected signature: %+v", res.Signature)
	}
	s := res.Stats
	if s.DecisionsMin > s.DecisionsOrig || s.WriterCallsMin > s.WriterCallsOrig || s.ReaderCallsMin > s.ReaderCallsOrig {
		t.Fatalf("minimized artifacts grew: %+v", s)
	}
	if len(res.Test.Writer.Calls) != s.WriterCallsMin || len(res.Test.Reader.Calls) != s.ReaderCallsMin {
		t.Fatalf("stats disagree with the minimized programs: %+v", s)
	}
	// The minimized finding replays to the same signature in a fresh env.
	env2 := exec.NewEnv(kernel.Config{Version: kernel.V5_12_RC3})
	m := &minimizer{env: env2, opt: Options{Detect: detect.DefaultOptions()}, budget: DefaultMaxReplays}
	if !m.reproduces(res.Test, res.State, res.Signature) {
		t.Fatal("minimized finding does not reproduce in a fresh environment")
	}
	// Minimization is a fixpoint: re-triaging the minimized finding
	// shrinks nothing further.
	res2, err := Minimize(env, Finding{Test: res.Test, State: res.State, BugID: 12}, Options{Detect: detect.DefaultOptions()})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.WriterCallsMin != s.WriterCallsMin || res2.Stats.ReaderCallsMin != s.ReaderCallsMin {
		t.Fatalf("re-minimization shrank the programs further: %+v then %+v", s, res2.Stats)
	}
}

// TestScheduleOneMinimal is the ddmin property test: the kept decision set
// reproduces the crash, and removing any single kept decision loses the
// crash signature.
func TestScheduleOneMinimal(t *testing.T) {
	env, f := l2tpFinding(t, 1)
	m := &minimizer{env: env, opt: Options{Detect: detect.DefaultOptions()}, budget: DefaultMaxReplays}
	events, issues := m.replayRecord(f.Test, f.State)
	target, ok := SignatureOfIssues(issues, f.Test.Hint, f.BugID)
	if !ok {
		t.Fatal("fixture does not crash")
	}
	all := decisionSet(f.State.Flips, events)
	if len(all) == 0 {
		t.Fatal("empty decision set: the crash needs at least one preemption")
	}
	keep := m.ddmin(f.Test, f.State, target, all)
	if len(keep) > len(all) {
		t.Fatalf("ddmin grew the decision set: %d -> %d", len(all), len(keep))
	}
	// The kept set reproduces.
	if !m.reproduces(f.Test, candState(f.State, flipsFor(all, keep)), target) {
		t.Fatal("kept decision set does not reproduce the crash")
	}
	if len(keep) == 0 {
		t.Fatal("l2tp crash requires an interleaving, yet ddmin kept nothing")
	}
	// 1-minimality: dropping any single kept decision loses the signature.
	for i := range keep {
		cand := candState(f.State, flipsFor(all, without(keep, i)))
		if m.reproduces(f.Test, cand, target) {
			t.Fatalf("kept decision %d (of %d) is redundant: schedule not 1-minimal", i, len(keep))
		}
	}
	t.Logf("decisions %d -> %d (1-minimal) in %d replays", len(all), len(keep), m.replays)
}

func TestDecisionSetAndFlips(t *testing.T) {
	all := decisionSet([]int{9, 3, 9}, []int{3, 5, 7})
	want := []decision{{3, true}, {5, false}, {7, false}, {9, true}}
	if !reflect.DeepEqual(all, want) {
		t.Fatalf("decisionSet: %+v", all)
	}
	// Keeping everything replays the original flips exactly.
	allPos := []int{0, 1, 2, 3}
	if got := flipsFor(all, allPos); !reflect.DeepEqual(got, []int{3, 9}) {
		t.Fatalf("full keep-set flips: %v", got)
	}
	// Keeping nothing drops the flips and suppresses every rolled switch.
	if got := flipsFor(all, nil); !reflect.DeepEqual(got, []int{5, 7}) {
		t.Fatalf("empty keep-set flips: %v", got)
	}
	// Mixed: keep the flip at 3 and the preemption at 5; drop the rest.
	if got := flipsFor(all, []int{0, 1}); !reflect.DeepEqual(got, []int{3, 7}) {
		t.Fatalf("mixed keep-set flips: %v", got)
	}
}

func TestDropCallRemapsRefs(t *testing.T) {
	p := l2tpReaderProg() // socket, socket, connect(r0,_,r1), sendmsg(r0,_)
	// Dropping the first socket must cascade to connect and sendmsg.
	q := dropCall(p, 0)
	if len(q.Calls) != 1 || q.Calls[0].Nr != kernel.SysSocketNr {
		t.Fatalf("drop call 0: %+v", q.Calls)
	}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	// Dropping the second socket cascades to connect but keeps sendmsg,
	// remapping its r0 reference.
	q = dropCall(p, 1)
	if len(q.Calls) != 2 {
		t.Fatalf("drop call 1: %+v", q.Calls)
	}
	if q.Calls[1].Nr != kernel.SysSendmsgNr || q.Calls[1].Args[0].Ref != 0 {
		t.Fatalf("sendmsg ref not remapped: %+v", q.Calls[1])
	}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	// Dropping the trailing call touches nothing else.
	q = dropCall(p, 3)
	if len(q.Calls) != 3 {
		t.Fatalf("drop call 3: %+v", q.Calls)
	}
}

func TestSignatureStability(t *testing.T) {
	// Classified issues signature by the Table 2 row and its mechanism
	// channel — independent of the hint that exposed them.
	isA := detect.Issue{Kind: detect.KindPanic, Desc: "BUG: kernel NULL pointer dereference at 0x0000beef", BugID: 12}
	sigA := SignatureOf(isA, nil)
	hintIns, _ := trace.LookupIns("l2tp_tunnel_register:list_add_rcu")
	sigB := SignatureOf(isA, &pmc.PMC{Write: pmc.Key{Ins: hintIns}})
	if sigA != sigB {
		t.Fatalf("classified signature depends on the hint: %+v vs %+v", sigA, sigB)
	}
	if sigA.Site != "table2:12" || sigA.Channel == "" {
		t.Fatalf("classified signature: %+v", sigA)
	}
	// Unclassified console issues normalize digits away.
	u1 := SignatureOf(detect.Issue{Kind: detect.KindIOError, Desc: "I/O error, dev sda, sector 1234"}, nil)
	u2 := SignatureOf(detect.Issue{Kind: detect.KindIOError, Desc: "I/O error, dev sda, sector 99"}, nil)
	if u1 != u2 {
		t.Fatalf("digit runs leak into the signature: %+v vs %+v", u1, u2)
	}
	if u1.Site != "I/O error, dev sda, sector #" {
		t.Fatalf("normalized site: %q", u1.Site)
	}
	if k := u1.Key(); k != "io-error|I/O error, dev sda, sector #|" {
		t.Fatalf("key: %q", k)
	}
}
