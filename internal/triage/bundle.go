package triage

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"snowboard/internal/corpus"
	"snowboard/internal/kernel"
	"snowboard/internal/pmc"
	"snowboard/internal/sched"
	"snowboard/internal/store"
)

// FormatVersion is the SBRB repro-bundle layout version. Bump it whenever
// the Bundle JSON shape or replay semantics change; readers report older
// (or newer) bundles as stale, never as corrupt.
const FormatVersion = 1

// Decode failure classes. Stale means the bundle is internally consistent
// but written for a different format version — re-run triage to refresh
// it. Corrupt means the bytes cannot be a bundle at all.
var (
	ErrStale   = errors.New("triage: repro bundle format version mismatch")
	ErrCorrupt = errors.New("triage: corrupt repro bundle")
)

// Bundle is the canonical SBRB repro artifact: everything needed to replay
// a minimized crash finding deterministically anywhere — the kernel
// version, the two minimized test programs, the scheduling hint, the
// minimized replay state, and the crash signature the replay must
// reproduce. Bundles are stored content-addressed under store.KindRepro;
// `sbrepro -state <dir> -min <digest>` replays them.
type Bundle struct {
	Format    int               `json:"format"`
	Kernel    kernel.Version    `json:"kernel"`
	Writer    *corpus.Prog      `json:"writer"`
	Reader    *corpus.Prog      `json:"reader"`
	Hint      *pmc.PMC          `json:"hint,omitempty"`
	Extra     []pmc.PMC         `json:"extra,omitempty"`
	State     *sched.ReproState `json:"state"`
	Signature Signature         `json:"signature"`
	BugID     int               `json:"bug_id,omitempty"`
	Finding   string            `json:"finding,omitempty"`
	Stats     Stats             `json:"stats"`
}

// Test reassembles the bundle's concurrent test.
func (b *Bundle) Test() sched.ConcurrentTest {
	return sched.ConcurrentTest{Writer: b.Writer, Reader: b.Reader, Hint: b.Hint, Extra: b.Extra}
}

// Validate checks the bundle is replayable.
func (b *Bundle) Validate() error {
	if b.Format != FormatVersion {
		return fmt.Errorf("format %d, want %d", b.Format, FormatVersion)
	}
	if b.Writer == nil || b.Reader == nil {
		return errors.New("missing test programs")
	}
	if err := b.Writer.Validate(); err != nil {
		return fmt.Errorf("writer: %w", err)
	}
	if err := b.Reader.Validate(); err != nil {
		return fmt.Errorf("reader: %w", err)
	}
	if b.State == nil {
		return errors.New("missing replay state")
	}
	if b.Signature.IsZero() {
		return errors.New("missing crash signature")
	}
	return nil
}

// Encode serializes the bundle canonically. The encoding is deterministic,
// so store.Sum of the result is a stable content digest whether or not a
// store is attached.
func Encode(b *Bundle) ([]byte, error) {
	if err := b.Validate(); err != nil {
		return nil, fmt.Errorf("triage: encode bundle: %w", err)
	}
	return json.Marshal(b)
}

// Decode parses a bundle, distinguishing stale from corrupt input: a
// readable JSON object with the wrong (or missing) format version is
// ErrStale; undecodable bytes or a bundle failing validation are
// ErrCorrupt. Both are errors.Is-matchable.
func Decode(data []byte) (*Bundle, error) {
	var probe struct {
		Format *int `json:"format"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if probe.Format == nil {
		return nil, fmt.Errorf("%w: no format field (pre-SBRB-%d writer)", ErrStale, FormatVersion)
	}
	if *probe.Format != FormatVersion {
		return nil, fmt.Errorf("%w: bundle format %d, this binary reads %d", ErrStale, *probe.Format, FormatVersion)
	}
	var b Bundle
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if err := b.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return &b, nil
}

// SaveBundle persists the bundle content-addressed and returns its digest.
func SaveBundle(s *store.Store, b *Bundle) (store.Digest, error) {
	data, err := Encode(b)
	if err != nil {
		return store.Digest{}, err
	}
	return s.Put(store.KindRepro, data)
}

// LoadBundle fetches and decodes a bundle by digest. Store-level
// corruption (bad envelope/checksum) surfaces as store.ErrCorrupt; decode
// failures as ErrStale/ErrCorrupt.
func LoadBundle(s *store.Store, d store.Digest) (*Bundle, error) {
	data, err := s.Get(store.KindRepro, d)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}

// IndexEntry is one signature's row in the cross-campaign dedup index: the
// canonical (first-registered) bundle and every campaign that observed the
// signature. The index is a fleet-level registry: campaigns register into
// it but never consult it to decide what to compute, so attaching a store
// cannot change what a run reports.
type IndexEntry struct {
	Signature Signature `json:"signature"`
	// Bundle is the canonical SBRB digest (hex) — the first registered
	// minimized repro for this signature.
	Bundle string `json:"bundle"`
	// Campaigns lists the distinct campaign labels that observed the
	// signature, sorted.
	Campaigns []string `json:"campaigns"`
	// Count is the total number of registrations folded into this row.
	Count int `json:"count"`
}

// indexKey addresses a signature's index row. Deliberately excludes seed,
// trial, and campaign identity so different campaigns land on the same row.
func indexKey(sig Signature) store.Digest {
	return store.Key("snowboard-triage-v1", "signature",
		fmt.Sprintf("format=%d", FormatVersion), sig.Kind, sig.Site, sig.Channel)
}

// Register folds one observation of sig into the dedup index. The first
// registration pins the canonical bundle; later ones only fold their
// campaign label and bump the count. Returns the updated row and whether
// the signature was fresh (first ever registration).
func Register(s *store.Store, sig Signature, bundle store.Digest, campaign string) (IndexEntry, bool, error) {
	entry, ok := Lookup(s, sig)
	fresh := !ok
	if fresh {
		entry = IndexEntry{Signature: sig, Bundle: bundle.String()}
	}
	entry.Count++
	if campaign != "" {
		found := false
		for _, c := range entry.Campaigns {
			if c == campaign {
				found = true
				break
			}
		}
		if !found {
			entry.Campaigns = append(entry.Campaigns, campaign)
			sort.Strings(entry.Campaigns)
		}
	}
	meta, err := json.Marshal(entry)
	if err != nil {
		return entry, fresh, fmt.Errorf("triage: index row: %w", err)
	}
	canonical, err := store.ParseDigest(entry.Bundle)
	if err != nil {
		return entry, fresh, fmt.Errorf("triage: index row: %w", err)
	}
	err = s.PutStage(indexKey(sig), store.StageResult{Kind: store.KindRepro, Out: canonical, Meta: meta})
	return entry, fresh, err
}

// Lookup fetches a signature's index row, if registered.
func Lookup(s *store.Store, sig Signature) (IndexEntry, bool) {
	res, err := s.GetStage(indexKey(sig))
	if err != nil {
		return IndexEntry{}, false
	}
	var entry IndexEntry
	if err := json.Unmarshal(res.Meta, &entry); err != nil {
		return IndexEntry{}, false
	}
	return entry, true
}
