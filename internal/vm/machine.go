package vm

import (
	"errors"
	"fmt"

	"snowboard/internal/trace"
)

// Scheduler decides which thread runs next. Pick is called once before the
// first instruction (last == nil, ev.Kind == EvStart) and then after every
// event a thread yields. It must return a Runnable thread of the machine, or
// nil to stop the run early. This is the pluggable policy point: sequential
// profiling, Snowboard's Algorithm 2, the SKI baseline, PCT, and random walk
// are all implementations of this interface.
type Scheduler interface {
	Pick(m *Machine, last *Thread, ev Event) *Thread
}

// ErrStepLimit is returned by Run when the access budget is exhausted, the
// machine-level backstop behind the is_live heuristic.
var ErrStepLimit = errors.New("vm: step limit exceeded")

// ErrDeadlock is returned when unfinished threads exist but none is
// runnable (all blocked on locks or RCU).
var ErrDeadlock = errors.New("vm: deadlock: no runnable threads")

// Machine owns guest memory, the console, and the set of threads of one
// simulated kernel instance. Exactly one thread body executes at a time.
type Machine struct {
	Mem     *Memory
	Console *Console

	threads []*Thread
	trace   *trace.Trace

	lockHolder  map[Addr]*Thread
	lockWaiters map[Addr][]*Thread
	rcuReaders  int
	rcuWaiters  []*Thread

	steps     int
	deadlocks int
	faults    []string
}

// NewMachine returns a machine with empty memory.
func NewMachine() *Machine {
	return &Machine{
		Mem:         NewMemory(),
		Console:     &Console{},
		lockHolder:  make(map[Addr]*Thread),
		lockWaiters: make(map[Addr][]*Thread),
	}
}

// SetTrace installs the destination for access records; nil disables
// tracing.
func (m *Machine) SetTrace(tr *trace.Trace) { m.trace = tr }

// Trace returns the current trace destination.
func (m *Machine) Trace() *trace.Trace { return m.trace }

// Steps returns the number of events processed by the last Run.
func (m *Machine) Steps() int { return m.steps }

// Faults returns the kernel crash messages raised during the last Run.
func (m *Machine) Faults() []string { return m.faults }

// Threads returns the live thread list.
func (m *Machine) Threads() []*Thread { return m.threads }

// Runnable returns the threads currently in the Runnable state.
func (m *Machine) Runnable() []*Thread {
	var out []*Thread
	for _, t := range m.threads {
		if t.state == Runnable {
			out = append(out, t)
		}
	}
	return out
}

// AllDone reports whether every spawned thread has finished.
func (m *Machine) AllDone() bool {
	for _, t := range m.threads {
		if t.state != Done {
			return false
		}
	}
	return true
}

// Spawn creates a thread whose body is fn, with an 8KB kernel stack carved
// at stackBase (which must be trace.StackSize aligned and inside a valid
// region). The thread does not run until the scheduler picks it.
func (m *Machine) Spawn(name string, stackBase Addr, fn func(*Thread)) *Thread {
	if stackBase%trace.StackSize != 0 {
		panic(fmt.Sprintf("vm: stack base %#x not %d-aligned", stackBase, trace.StackSize))
	}
	t := &Thread{
		ID:      len(m.threads),
		Name:    name,
		m:       m,
		state:   Runnable,
		resume:  make(chan struct{}),
		events:  make(chan Event),
		stackLo: stackBase,
		sp:      stackBase + trace.StackSize,
	}
	m.threads = append(m.threads, t)
	go func() {
		defer func() {
			switch r := recover().(type) {
			case nil:
				t.events <- Event{Kind: EvDone}
			case threadKilled:
				// Unwound by Shutdown; nobody is listening.
			case threadFault:
				t.faultMsg = r.msg
				t.events <- Event{Kind: EvFault, Fault: r.msg}
			default:
				panic(r)
			}
		}()
		<-t.resume
		if t.killed {
			panic(threadKilled{})
		}
		fn(t)
	}()
	return t
}

// step resumes thread t until its next event and applies the event's state
// transition.
func (m *Machine) step(t *Thread) Event {
	t.resume <- struct{}{}
	ev := <-t.events
	switch ev.Kind {
	case EvDone:
		t.state = Done
		m.releaseDead(t)
	case EvFault:
		t.state = Done
		m.faults = append(m.faults, ev.Fault)
		m.Console.Printf("%s", ev.Fault)
		m.Console.Printf("CPU: %d PID: %d Comm: %s", t.ID, 100+t.ID, t.Name)
		m.Console.Printf("---[ end trace %016x ]---", uint64(t.ID+1)*0x9e3779b97f4a7c15)
		m.releaseDead(t)
	}
	return ev
}

// releaseDead force-releases locks and RCU sections held by a finished
// thread so the sibling thread can still run (mirrors a crashed CPU being
// fenced off; without this every fault would cascade into a deadlock).
func (m *Machine) releaseDead(t *Thread) {
	for _, l := range append([]uint64(nil), t.locks...) {
		m.Mem.Write(l, 8, 0)
		delete(m.lockHolder, l)
		for _, w := range m.lockWaiters[l] {
			if w.state == BlockedLock && w.waitOn == l {
				w.state = Runnable
				w.waitOn = 0
			}
		}
		delete(m.lockWaiters, l)
	}
	t.locks = nil
	if t.rcuDepth > 0 {
		m.rcuReaders -= t.rcuDepth
		t.rcuDepth = 0
		if m.rcuReaders == 0 {
			for _, w := range m.rcuWaiters {
				if w.state == BlockedRCU {
					w.state = Runnable
				}
			}
			m.rcuWaiters = m.rcuWaiters[:0]
		}
	}
}

// Run drives threads under the scheduler until all threads finish, the
// scheduler returns nil, maxSteps events are processed, or no thread is
// runnable. maxSteps <= 0 means a generous default of 1<<22.
func (m *Machine) Run(s Scheduler, maxSteps int) error {
	if maxSteps <= 0 {
		maxSteps = 1 << 22
	}
	m.steps = 0
	ev := Event{Kind: EvStart}
	var last *Thread
	for {
		if m.AllDone() {
			return nil
		}
		if len(m.Runnable()) == 0 {
			m.deadlocks++
			return ErrDeadlock
		}
		t := s.Pick(m, last, ev)
		if t == nil {
			return nil
		}
		if t.state != Runnable {
			panic(fmt.Sprintf("vm: scheduler picked non-runnable thread %d (%v)", t.ID, t.state))
		}
		ev = m.step(t)
		last = t
		m.steps++
		if m.steps >= maxSteps {
			return ErrStepLimit
		}
	}
}

// Shutdown unwinds any unfinished thread goroutines. It must be called when
// a Run ends early (step limit, deadlock, scheduler stop) before the machine
// is dropped, otherwise goroutines leak.
func (m *Machine) Shutdown() {
	for _, t := range m.threads {
		if t.state == Done {
			continue
		}
		t.killed = true
		t.state = Done
		t.resume <- struct{}{}
	}
	m.threads = nil
}

// ResetRuntime clears thread and synchronization state (but not memory),
// preparing the machine for a fresh set of threads after a snapshot restore.
func (m *Machine) ResetRuntime() {
	m.Shutdown()
	m.lockHolder = make(map[Addr]*Thread)
	m.lockWaiters = make(map[Addr][]*Thread)
	m.rcuReaders = 0
	m.rcuWaiters = nil
	m.faults = nil
	m.steps = 0
	m.Console.Reset()
}
