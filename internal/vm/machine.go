package vm

import (
	"errors"
	"fmt"

	"snowboard/internal/trace"
)

// Scheduler decides which thread runs next. Pick is called once before the
// first instruction (last == nil, ev.Kind == EvStart) and then after every
// event a thread yields. It must return a Runnable thread of the machine, or
// nil to stop the run early. This is the pluggable policy point: sequential
// profiling, Snowboard's Algorithm 2, the SKI baseline, PCT, and random walk
// are all implementations of this interface.
type Scheduler interface {
	Pick(m *Machine, last *Thread, ev Event) *Thread
}

// AccessInfo is the compact access descriptor handed to AccessSink on the
// hot path. It is a strict subset of trace.Access: the fields a scheduling
// policy can act on without forcing the thread to yield.
type AccessInfo struct {
	Thread int
	Ins    trace.Ins
	Kind   trace.Kind
	Addr   uint64
	Size   uint8
	Stack  bool
}

// AccessSink is the scheduler fast path. A scheduler that implements it has
// OnAccess invoked synchronously on the running thread's goroutine for every
// memory access; returning false means "keep running the same thread" and
// skips the channel round-trip through the machine loop entirely. Returning
// true falls back to a regular EvAccess yield so Pick can switch threads.
// Schedulers that never preempt on accesses (or only rarely) become
// allocation- and handoff-free on the access path.
type AccessSink interface {
	OnAccess(m *Machine, t *Thread, a AccessInfo) bool
}

// ErrStepLimit is returned by Run when the access budget is exhausted, the
// machine-level backstop behind the is_live heuristic.
var ErrStepLimit = errors.New("vm: step limit exceeded")

// ErrDeadlock is returned when unfinished threads exist but none is
// runnable (all blocked on locks or RCU).
var ErrDeadlock = errors.New("vm: deadlock: no runnable threads")

// Machine owns guest memory, the console, and the set of threads of one
// simulated kernel instance. Exactly one thread body executes at a time.
type Machine struct {
	Mem     *Memory
	Console *Console

	threads []*Thread
	trace   *trace.Trace

	lockHolder  map[Addr]*Thread
	lockWaiters map[Addr][]*Thread
	rcuReaders  int
	rcuWaiters  []*Thread

	sink     AccessSink // scheduler fast path for the current Run, if any
	runMax   int        // step budget of the current Run
	runnable []*Thread  // scratch buffer reused by Runnable

	steps     int
	deadlocks int
	faults    []string
}

// NewMachine returns a machine with empty memory.
func NewMachine() *Machine {
	return &Machine{
		Mem:         NewMemory(),
		Console:     &Console{},
		lockHolder:  make(map[Addr]*Thread),
		lockWaiters: make(map[Addr][]*Thread),
	}
}

// SetTrace installs the destination for access records; nil disables
// tracing.
func (m *Machine) SetTrace(tr *trace.Trace) { m.trace = tr }

// Trace returns the current trace destination.
func (m *Machine) Trace() *trace.Trace { return m.trace }

// Steps returns the number of events processed by the last Run.
func (m *Machine) Steps() int { return m.steps }

// Faults returns the kernel crash messages raised during the last Run.
func (m *Machine) Faults() []string { return m.faults }

// Threads returns the live thread list.
func (m *Machine) Threads() []*Thread { return m.threads }

// Runnable returns the threads currently in the Runnable state. The
// returned slice is a scratch buffer owned by the machine, overwritten by
// the next call — callers must not retain it across scheduling events.
func (m *Machine) Runnable() []*Thread {
	out := m.runnable[:0]
	for _, t := range m.threads {
		if t.state == Runnable {
			out = append(out, t)
		}
	}
	m.runnable = out
	return out
}

// AllDone reports whether every spawned thread has finished.
func (m *Machine) AllDone() bool {
	for _, t := range m.threads {
		if t.state != Done {
			return false
		}
	}
	return true
}

// Spawn creates a thread whose body is fn, with an 8KB kernel stack carved
// at stackBase (which must be trace.StackSize aligned and inside a valid
// region). The thread does not run until the scheduler picks it.
func (m *Machine) Spawn(name string, stackBase Addr, fn func(*Thread)) *Thread {
	if stackBase%trace.StackSize != 0 {
		panic(fmt.Sprintf("vm: stack base %#x not %d-aligned", stackBase, trace.StackSize))
	}
	t := &Thread{
		ID:      len(m.threads),
		Name:    name,
		m:       m,
		state:   Runnable,
		resume:  make(chan struct{}),
		events:  make(chan Event),
		stackLo: stackBase,
		sp:      stackBase + trace.StackSize,
	}
	m.threads = append(m.threads, t)
	go func() {
		defer func() {
			switch r := recover().(type) {
			case nil:
				t.events <- Event{Kind: EvDone}
			case threadKilled:
				// Unwound by Shutdown; nobody is listening.
			case threadFault:
				t.faultMsg = r.msg
				t.events <- Event{Kind: EvFault, Fault: r.msg}
			default:
				panic(r)
			}
		}()
		<-t.resume
		if t.killed {
			panic(threadKilled{})
		}
		fn(t)
	}()
	return t
}

// step resumes thread t until its next event and applies the event's state
// transition.
func (m *Machine) step(t *Thread) Event {
	t.resume <- struct{}{}
	ev := <-t.events
	switch ev.Kind {
	case EvDone:
		t.state = Done
		m.releaseDead(t)
	case EvFault:
		t.state = Done
		m.faults = append(m.faults, ev.Fault)
		m.Console.Printf("%s", ev.Fault)
		m.Console.Printf("CPU: %d PID: %d Comm: %s", t.ID, 100+t.ID, t.Name)
		m.Console.Printf("---[ end trace %016x ]---", uint64(t.ID+1)*0x9e3779b97f4a7c15)
		m.releaseDead(t)
	}
	return ev
}

// releaseDead force-releases locks and RCU sections held by a finished
// thread so the sibling thread can still run (mirrors a crashed CPU being
// fenced off; without this every fault would cascade into a deadlock).
func (m *Machine) releaseDead(t *Thread) {
	for _, l := range t.locks.Addrs() {
		m.Mem.Write(l, 8, 0)
		delete(m.lockHolder, l)
		for _, w := range m.lockWaiters[l] {
			if w.state == BlockedLock && w.waitOn == l {
				w.state = Runnable
				w.waitOn = 0
			}
		}
		delete(m.lockWaiters, l)
	}
	t.locks = 0
	if t.rcuDepth > 0 {
		m.rcuReaders -= t.rcuDepth
		t.rcuDepth = 0
		if m.rcuReaders == 0 {
			for _, w := range m.rcuWaiters {
				if w.state == BlockedRCU {
					w.state = Runnable
				}
			}
			m.rcuWaiters = m.rcuWaiters[:0]
		}
	}
}

// Run drives threads under the scheduler until all threads finish, the
// scheduler returns nil, maxSteps events are processed, or no thread is
// runnable. maxSteps <= 0 means a generous default of 1<<22.
//
// If the scheduler also implements AccessSink, memory accesses are reported
// through OnAccess on the running thread's goroutine; the thread only
// yields back to this loop when the sink asks for a preemption (or the step
// budget runs out), so uninterrupted stretches of accesses cost no channel
// handoffs at all. Step accounting is identical either way: every access is
// counted exactly once (by record), every other event once (here).
func (m *Machine) Run(s Scheduler, maxSteps int) error {
	if maxSteps <= 0 {
		maxSteps = 1 << 22
	}
	m.steps = 0
	m.runMax = maxSteps
	m.sink, _ = s.(AccessSink)
	defer func() { m.sink = nil }()
	ev := Event{Kind: EvStart}
	var last *Thread
	for {
		if m.AllDone() {
			return nil
		}
		if len(m.Runnable()) == 0 {
			m.deadlocks++
			return ErrDeadlock
		}
		t := s.Pick(m, last, ev)
		if t == nil {
			return nil
		}
		if t.state != Runnable {
			panic(fmt.Sprintf("vm: scheduler picked non-runnable thread %d (%v)", t.ID, t.state))
		}
		ev = m.step(t)
		last = t
		if ev.Kind != EvAccess {
			m.steps++ // accesses were already counted by record
		}
		if m.steps >= maxSteps {
			return ErrStepLimit
		}
	}
}

// Shutdown unwinds any unfinished thread goroutines. It must be called when
// a Run ends early (step limit, deadlock, scheduler stop) before the machine
// is dropped, otherwise goroutines leak.
func (m *Machine) Shutdown() {
	for _, t := range m.threads {
		if t.state == Done {
			continue
		}
		t.killed = true
		t.state = Done
		t.resume <- struct{}{}
	}
	m.threads = nil
}

// ResetRuntime clears thread and synchronization state (but not memory),
// preparing the machine for a fresh set of threads after a snapshot restore.
func (m *Machine) ResetRuntime() {
	m.Shutdown()
	m.lockHolder = make(map[Addr]*Thread)
	m.lockWaiters = make(map[Addr][]*Thread)
	m.rcuReaders = 0
	m.rcuWaiters = nil
	m.faults = nil
	m.steps = 0
	m.Console.Reset()
}
