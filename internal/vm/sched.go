package vm

// SeqScheduler runs threads strictly one after another in spawn order: the
// current thread keeps running until it finishes or blocks. This is the
// policy used for sequential test profiling (§4.1), where each test executes
// alone from the fixed snapshot. If the current thread blocks, control moves
// to the next runnable thread (which models the profiled thread waiting on
// background kernel work).
type SeqScheduler struct{}

// Pick implements Scheduler.
func (SeqScheduler) Pick(m *Machine, last *Thread, ev Event) *Thread {
	if last != nil && last.state == Runnable {
		return last
	}
	for _, t := range m.threads {
		if t.state == Runnable {
			return t
		}
	}
	return nil
}

// OnAccess implements AccessSink. Sequential profiling never preempts on an
// access, so the running thread just keeps going: the entire profiling run
// proceeds without per-access channel handoffs.
func (SeqScheduler) OnAccess(m *Machine, t *Thread, a AccessInfo) bool { return false }

// FuncScheduler adapts a function to the Scheduler interface, convenient in
// tests.
type FuncScheduler func(m *Machine, last *Thread, ev Event) *Thread

// Pick implements Scheduler.
func (f FuncScheduler) Pick(m *Machine, last *Thread, ev Event) *Thread {
	return f(m, last, ev)
}
