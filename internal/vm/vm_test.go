package vm

import (
	"errors"
	"runtime"
	"testing"
	"testing/quick"
	"time"

	"snowboard/internal/trace"
)

const (
	testRegionBase = 0x10000
	testRegionSize = 1 << 20
	testStackBase  = 0x200000 // must be 8K aligned
)

func newTestMachine() *Machine {
	m := NewMachine()
	m.Mem.AddRegion("test", testRegionBase, testRegionBase+testRegionSize)
	m.Mem.AddRegion("stacks", testStackBase, testStackBase+8*8192)
	return m
}

var insT = trace.DefIns("vm_test:op")

func TestMemoryReadWriteRoundtrip(t *testing.T) {
	m := newTestMachine()
	f := func(off uint32, sizeSeed uint8, val uint64) bool {
		size := int(sizeSeed%8) + 1
		addr := testRegionBase + uint64(off)%(testRegionSize-8)
		masked := val & ((1 << (8 * uint(size))) - 1)
		m.Mem.Write(addr, size, val)
		return m.Mem.Read(addr, size) == masked
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryCrossPage(t *testing.T) {
	m := newTestMachine()
	addr := uint64(testRegionBase + PageSize - 3) // straddles a page boundary
	m.Mem.Write(addr, 8, 0xAABBCCDDEEFF1122)
	if got := m.Mem.Read(addr, 8); got != 0xAABBCCDDEEFF1122 {
		t.Fatalf("cross-page read %#x", got)
	}
}

func TestMemoryBytes(t *testing.T) {
	m := newTestMachine()
	data := []byte{1, 2, 3, 4, 5}
	m.Mem.WriteBytes(testRegionBase+100, data)
	got := m.Mem.ReadBytes(testRegionBase+100, 5)
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("byte %d: %d != %d", i, got[i], data[i])
		}
	}
}

func TestRegionOverlapPanics(t *testing.T) {
	m := newTestMachine()
	defer func() {
		if recover() == nil {
			t.Fatal("overlapping region accepted")
		}
	}()
	m.Mem.AddRegion("overlap", testRegionBase+100, testRegionBase+200)
}

func TestValid(t *testing.T) {
	m := newTestMachine()
	if m.Mem.Valid(testRegionBase-1, 1) {
		t.Fatal("below region valid")
	}
	if !m.Mem.Valid(testRegionBase, 8) {
		t.Fatal("region start invalid")
	}
	if m.Mem.Valid(testRegionBase+testRegionSize-4, 8) {
		t.Fatal("range crossing region end valid")
	}
	if m.Mem.Valid(0, 8) {
		t.Fatal("null page valid")
	}
}

func TestSnapshotCopyOnWrite(t *testing.T) {
	m := newTestMachine()
	m.Mem.Write(testRegionBase, 8, 111)
	snap := m.Mem.Snapshot()

	m.Mem.Write(testRegionBase, 8, 222)
	if got := m.Mem.Read(testRegionBase, 8); got != 222 {
		t.Fatalf("live value %d", got)
	}
	m.Mem.Restore(snap)
	if got := m.Mem.Read(testRegionBase, 8); got != 111 {
		t.Fatalf("restored value %d, snapshot was mutated", got)
	}

	// A second mutation/restore cycle must also be isolated.
	m.Mem.Write(testRegionBase, 8, 333)
	m.Mem.Restore(snap)
	if got := m.Mem.Read(testRegionBase, 8); got != 111 {
		t.Fatal("second restore broken")
	}
}

func TestSnapshotChain(t *testing.T) {
	m := newTestMachine()
	m.Mem.Write(testRegionBase, 8, 1)
	s1 := m.Mem.Snapshot()
	m.Mem.Write(testRegionBase, 8, 2)
	s2 := m.Mem.Snapshot()
	m.Mem.Write(testRegionBase, 8, 3)

	m.Mem.Restore(s1)
	if m.Mem.Read(testRegionBase, 8) != 1 {
		t.Fatal("s1 wrong")
	}
	m.Mem.Restore(s2)
	if m.Mem.Read(testRegionBase, 8) != 2 {
		t.Fatal("s2 wrong")
	}
}

func runOne(m *Machine, fn func(*Thread)) error {
	m.Spawn("t0", testStackBase, fn)
	return m.Run(SeqScheduler{}, 0)
}

func TestThreadLoadStore(t *testing.T) {
	m := newTestMachine()
	var tr trace.Trace
	m.SetTrace(&tr)
	err := runOne(m, func(th *Thread) {
		th.Store(insT, testRegionBase, 8, 42)
		if v := th.Load(insT, testRegionBase, 8); v != 42 {
			t.Errorf("load %d", v)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 2 {
		t.Fatalf("trace has %d accesses", tr.Len())
	}
	if tr.At(0).Kind != trace.Write || tr.At(1).Kind != trace.Read {
		t.Fatal("trace kinds wrong")
	}
}

func TestNullDereferenceFaults(t *testing.T) {
	m := newTestMachine()
	err := runOne(m, func(th *Thread) {
		th.Load(insT, 0x10, 8)
		t.Error("unreachable after fault")
	})
	if err != nil {
		t.Fatalf("run error: %v", err)
	}
	if len(m.Faults()) != 1 {
		t.Fatalf("faults: %v", m.Faults())
	}
	if !m.Console.Contains("NULL pointer dereference") {
		t.Fatalf("console: %v", m.Console.Lines())
	}
}

func TestUnmappedFaults(t *testing.T) {
	m := newTestMachine()
	_ = runOne(m, func(th *Thread) {
		th.Store(insT, 0xdead0000, 8, 1)
	})
	if !m.Console.Contains("unable to handle page fault") {
		t.Fatalf("console: %v", m.Console.Lines())
	}
}

func TestLockMutualExclusion(t *testing.T) {
	m := newTestMachine()
	lock := uint64(testRegionBase + 0x800)
	counter := uint64(testRegionBase + 0x900)
	body := func(th *Thread) {
		for i := 0; i < 10; i++ {
			th.Lock(insT, lock)
			v := th.Load(insT, counter, 8)
			th.Store(insT, counter, 8, v+1)
			th.Unlock(insT, lock)
		}
	}
	m.Spawn("a", testStackBase, body)
	m.Spawn("b", testStackBase+8192, body)
	// Adversarial: always switch threads after every event.
	sched := FuncScheduler(func(mm *Machine, last *Thread, ev Event) *Thread {
		r := mm.Runnable()
		if len(r) == 0 {
			return nil
		}
		for _, th := range r {
			if th != last {
				return th
			}
		}
		return r[0]
	})
	if err := m.Run(sched, 0); err != nil {
		t.Fatal(err)
	}
	if got := m.Mem.Read(counter, 8); got != 20 {
		t.Fatalf("counter %d, lock did not serialize", got)
	}
}

func TestRecursiveLockFaults(t *testing.T) {
	m := newTestMachine()
	lock := uint64(testRegionBase + 0x800)
	_ = runOne(m, func(th *Thread) {
		th.Lock(insT, lock)
		th.Lock(insT, lock)
	})
	if !m.Console.Contains("recursive lock") {
		t.Fatalf("console: %v", m.Console.Lines())
	}
}

func TestUnlockNotHeldFaults(t *testing.T) {
	m := newTestMachine()
	_ = runOne(m, func(th *Thread) {
		th.Unlock(insT, testRegionBase+0x800)
	})
	if !m.Console.Contains("unlock of lock") {
		t.Fatalf("console: %v", m.Console.Lines())
	}
}

func TestTryLock(t *testing.T) {
	m := newTestMachine()
	lock := uint64(testRegionBase + 0x800)
	_ = runOne(m, func(th *Thread) {
		if !th.TryLock(insT, lock) {
			t.Error("trylock on free lock failed")
		}
		if th.TryLock(insT, lock) {
			t.Error("trylock on held lock succeeded")
		}
		th.Unlock(insT, lock)
	})
}

func TestDeadlockDetected(t *testing.T) {
	m := newTestMachine()
	l1 := uint64(testRegionBase + 0x800)
	l2 := uint64(testRegionBase + 0x900)
	gate := uint64(testRegionBase + 0xa00)
	m.Spawn("a", testStackBase, func(th *Thread) {
		th.Lock(insT, l1)
		th.Store(insT, gate, 8, 1)
		th.Lock(insT, l2)
	})
	m.Spawn("b", testStackBase+8192, func(th *Thread) {
		th.Lock(insT, l2)
		for th.Load(insT, gate, 8) == 0 {
			th.CPURelax()
		}
		th.Lock(insT, l1)
	})
	// Round-robin to interleave the acquisition order.
	i := 0
	sched := FuncScheduler(func(mm *Machine, last *Thread, ev Event) *Thread {
		r := mm.Runnable()
		if len(r) == 0 {
			return nil
		}
		i++
		return r[i%len(r)]
	})
	err := m.Run(sched, 0)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want deadlock", err)
	}
	m.Shutdown()
}

func TestStepLimit(t *testing.T) {
	m := newTestMachine()
	m.Spawn("spin", testStackBase, func(th *Thread) {
		for {
			th.Load(insT, testRegionBase, 8)
		}
	})
	err := m.Run(SeqScheduler{}, 100)
	if !errors.Is(err, ErrStepLimit) {
		t.Fatalf("err = %v, want step limit", err)
	}
	m.Shutdown()
}

func TestShutdownNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		m := newTestMachine()
		m.Spawn("spin", testStackBase, func(th *Thread) {
			for {
				th.Load(insT, testRegionBase, 8)
			}
		})
		_ = m.Run(SeqScheduler{}, 50)
		m.Shutdown()
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Fatalf("goroutines leaked: %d -> %d", before, after)
	}
}

func TestRCUSynchronizeWaitsForReaders(t *testing.T) {
	m := newTestMachine()
	order := uint64(testRegionBase + 0xb00)
	m.Spawn("reader", testStackBase, func(th *Thread) {
		th.RCUReadLock()
		th.Load(insT, testRegionBase, 8) // hold the section across a yield
		th.Load(insT, testRegionBase, 8)
		th.Store(insT, order, 8, 1) // reader-side work done
		th.RCUReadUnlock()
	})
	m.Spawn("writer", testStackBase+8192, func(th *Thread) {
		th.Load(insT, testRegionBase, 8) // let the reader enter first
		th.SynchronizeRCU()
		if th.Load(insT, order, 8) != 1 {
			t.Error("synchronize_rcu returned before reader finished")
		}
	})
	// Let the reader enter its RCU section (two events), then prefer the
	// writer so it reaches SynchronizeRCU while the section is open.
	readerEvents := 0
	sched := FuncScheduler(func(mm *Machine, last *Thread, ev Event) *Thread {
		if last != nil && last.ID == 0 && ev.Kind == EvAccess {
			readerEvents++
		}
		r := mm.Runnable()
		if len(r) == 0 {
			return nil
		}
		want := 0
		if readerEvents >= 1 {
			want = 1
		}
		for _, th := range r {
			if th.ID == want {
				return th
			}
		}
		return r[0]
	})
	if err := m.Run(sched, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRCUUnbalancedUnlockFaults(t *testing.T) {
	m := newTestMachine()
	_ = runOne(m, func(th *Thread) {
		th.RCUReadUnlock()
	})
	if !m.Console.Contains("rcu_read_unlock without") {
		t.Fatalf("console: %v", m.Console.Lines())
	}
}

func TestStackFrames(t *testing.T) {
	m := newTestMachine()
	var tr trace.Trace
	m.SetTrace(&tr)
	err := runOne(m, func(th *Thread) {
		sp0 := th.SP()
		f := th.PushFrame(24)
		if th.SP() != sp0-24 {
			t.Errorf("sp after push: %#x", th.SP())
		}
		th.Store(insT, f, 8, 7)
		if v := th.Load(insT, f, 8); v != 7 {
			t.Errorf("stack slot %d", v)
		}
		th.PopFrame(24)
		if th.SP() != sp0 {
			t.Errorf("sp after pop: %#x", th.SP())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range tr.Accesses() {
		if !a.Stack {
			t.Fatalf("frame access not marked stack: %+v", a)
		}
	}
}

func TestStackOverflowFaults(t *testing.T) {
	m := newTestMachine()
	_ = runOne(m, func(th *Thread) {
		for {
			th.PushFrame(4096)
		}
	})
	if !m.Console.Contains("stack overflow") {
		t.Fatalf("console: %v", m.Console.Lines())
	}
}

func TestLockWordValueVisible(t *testing.T) {
	// The lock word lives in guest memory: acquisitions store the holder,
	// releases store zero, and both appear in the trace as atomics.
	m := newTestMachine()
	var tr trace.Trace
	m.SetTrace(&tr)
	lock := uint64(testRegionBase + 0x800)
	_ = runOne(m, func(th *Thread) {
		th.Lock(insT, lock)
		th.Unlock(insT, lock)
	})
	if tr.Len() != 2 || !tr.At(0).Atomic || !tr.At(1).Atomic {
		t.Fatalf("lock traffic not atomic in trace: %+v", tr.Accesses())
	}
	if tr.At(0).Val == 0 || tr.At(1).Val != 0 {
		t.Fatalf("lock word values wrong: %+v", tr.Accesses())
	}
}

// TestRecordAllocBudget is the allocation guard on the access hot path:
// with a warm (reused) trace block and a non-preempting scheduler, recording
// an access must not allocate. The budget is 0.1 allocs per access — an
// order of magnitude below the ~1 alloc/access the channel-per-access
// design cost — so any regression that reintroduces a per-access allocation
// fails loudly.
func TestRecordAllocBudget(t *testing.T) {
	const accessesPerRun = 4096
	var tr trace.Trace
	// Warm-up: size the columnar block and the machine's scratch buffers.
	warm := newTestMachine()
	warm.SetTrace(&tr)
	warm.Spawn("warm", testStackBase, func(th *Thread) {
		for i := 0; i < accessesPerRun; i++ {
			th.Store(insT, testRegionBase+uint64(i%256)*8, 8, uint64(i))
		}
	})
	if err := warm.Run(SeqScheduler{}, 0); err != nil {
		t.Fatal(err)
	}

	m := newTestMachine()
	m.SetTrace(&tr)
	allocs := testing.AllocsPerRun(10, func() {
		tr.Reset()
		m.ResetRuntime()
		m.Spawn("t0", testStackBase, func(th *Thread) {
			for i := 0; i < accessesPerRun; i++ {
				th.Store(insT, testRegionBase+uint64(i%256)*8, 8, uint64(i))
			}
		})
		if err := m.Run(SeqScheduler{}, 0); err != nil {
			t.Fatal(err)
		}
	})
	perAccess := allocs / accessesPerRun
	if perAccess > 0.1 {
		t.Fatalf("access hot path allocates: %.3f allocs/access (%.0f allocs per %d-access run)",
			perAccess, allocs, accessesPerRun)
	}
}

func TestDeterministicExecution(t *testing.T) {
	run := func() []trace.Access {
		m := newTestMachine()
		var tr trace.Trace
		m.SetTrace(&tr)
		lock := uint64(testRegionBase + 0x800)
		body := func(th *Thread) {
			for i := 0; i < 5; i++ {
				th.Lock(insT, lock)
				v := th.Load(insT, testRegionBase, 8)
				th.Store(insT, testRegionBase, 8, v+1)
				th.Unlock(insT, lock)
			}
		}
		m.Spawn("a", testStackBase, body)
		m.Spawn("b", testStackBase+8192, body)
		i := 0
		sched := FuncScheduler(func(mm *Machine, last *Thread, ev Event) *Thread {
			r := mm.Runnable()
			if len(r) == 0 {
				return nil
			}
			i++
			return r[i%len(r)]
		})
		if err := m.Run(sched, 0); err != nil {
			t.Fatal(err)
		}
		return tr.Accesses()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Addr != b[i].Addr || a[i].Val != b[i].Val || a[i].Thread != b[i].Thread {
			t.Fatalf("access %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
