package vm

import (
	"fmt"

	"snowboard/internal/trace"
)

// ThreadState is the scheduling state of a simulated kernel thread.
type ThreadState uint8

const (
	// Runnable threads may be picked by the scheduler.
	Runnable ThreadState = iota
	// BlockedLock threads wait for a lock word to be released.
	BlockedLock
	// BlockedRCU threads wait inside synchronize_rcu for readers to drain.
	BlockedRCU
	// Done threads have finished (normally or by fault).
	Done
)

// EventKind classifies what a thread reported back to the machine when it
// yielded.
type EventKind uint8

const (
	// EvStart is the synthetic event passed to the scheduler's first Pick.
	EvStart EventKind = iota
	// EvAccess reports one completed memory access; the scheduler may
	// switch threads here, which is the paper's yield primitive placed
	// "right before every instruction ... after a memory access" (§4.4).
	EvAccess
	// EvBlocked reports that the thread cannot make progress (lock held,
	// RCU grace period pending); the scheduler must pick another thread.
	EvBlocked
	// EvYield is a voluntary pause (HALT/PAUSE-style), a low-liveness hint.
	EvYield
	// EvDone reports normal completion of the thread body.
	EvDone
	// EvFault reports a kernel bug: invalid access or explicit kernel BUG().
	EvFault
)

// Event is what a thread hands to the machine each time it yields.
type Event struct {
	Kind   EventKind
	Access trace.Access // valid when Kind == EvAccess
	Fault  string       // valid when Kind == EvFault
}

// threadKilled is panicked through a thread goroutine to unwind it when the
// machine shuts down a run early.
type threadKilled struct{}

// threadFault unwinds a thread goroutine after a simulated kernel crash.
type threadFault struct{ msg string }

// Thread is one simulated kernel thread (the kernel side of a vCPU). Its
// body runs on a dedicated goroutine, but the machine guarantees that at
// most one thread goroutine executes at any moment: control is handed back
// and forth over unbuffered channels, so the simulation is fully
// deterministic and free of host-level data races.
type Thread struct {
	ID   int
	Name string

	m       *Machine
	state   ThreadState
	waitOn  Addr // lock address when BlockedLock
	resume  chan struct{}
	events  chan Event
	started bool
	killed  bool

	stackLo Addr // kernel stack region [stackLo, stackLo+trace.StackSize)
	sp      Addr // current stack pointer (grows down)

	locks    trace.LockSet // interned set of lock addresses held
	rcuDepth int

	faultMsg string
	accesses int // accesses performed by this thread in the current run
}

// State returns the scheduling state.
func (t *Thread) State() ThreadState { return t.state }

// FaultMsg returns the crash message if the thread died on a fault.
func (t *Thread) FaultMsg() string { return t.faultMsg }

// Accesses returns how many memory accesses this thread has performed.
func (t *Thread) Accesses() int { return t.accesses }

// Machine returns the owning machine.
func (t *Thread) Machine() *Machine { return t.m }

// yield transfers control to the machine loop and blocks until resumed.
func (t *Thread) yield(ev Event) {
	t.events <- ev
	<-t.resume
	if t.killed {
		panic(threadKilled{})
	}
}

// Fault terminates the thread with a simulated kernel crash. The message is
// written to the console by the machine (prefixed like a kernel oops).
func (t *Thread) Fault(format string, args ...any) {
	panic(threadFault{msg: fmt.Sprintf(format, args...)})
}

func (t *Thread) checkRange(addr Addr, size int) {
	if size <= 0 || size > 8 {
		t.Fault("BUG: invalid access size %d at %#x", size, addr)
	}
	if !t.m.Mem.Valid(addr, size) {
		if addr < PageSize {
			t.Fault("BUG: kernel NULL pointer dereference, address: %#016x", addr)
		}
		t.Fault("BUG: unable to handle page fault for address: %#016x", addr)
	}
}

// record is the access hot path. It appends to the trace (columnar, zero
// allocations once the block is warm), counts the access against the run's
// step budget, and consults the scheduler's AccessSink if it has one:
// unless the sink requests a preemption, control never leaves this
// goroutine — no Event is built and no channel handoff happens.
func (t *Thread) record(ins trace.Ins, kind trace.Kind, addr Addr, size int, val uint64, atomic, marked bool) {
	t.accesses++
	m := t.m
	stack := addr >= t.stackLo && addr < t.stackLo+trace.StackSize
	a := trace.Access{
		Thread: t.ID,
		Ins:    ins,
		Kind:   kind,
		Addr:   addr,
		Size:   uint8(size),
		Val:    val,
		Atomic: atomic,
		Marked: marked,
		Stack:  stack,
		RCU:    t.rcuDepth > 0,
		Locks:  t.locks,
	}
	if m.trace != nil {
		m.trace.Append(a)
	}
	m.steps++ // safe: the machine loop is blocked in step() while we run
	if m.steps < m.runMax && m.sink != nil {
		if !m.sink.OnAccess(m, t, AccessInfo{
			Thread: t.ID,
			Ins:    ins,
			Kind:   kind,
			Addr:   addr,
			Size:   uint8(size),
			Stack:  stack,
		}) {
			return // fast path: keep running, no channel round-trip
		}
	}
	t.yield(Event{Kind: EvAccess, Access: a})
}

// Load reads size bytes at addr as a little-endian value and reports the
// access (with its instruction identity) to the tracer and scheduler.
func (t *Thread) Load(ins trace.Ins, addr Addr, size int) uint64 {
	t.checkRange(addr, size)
	v := t.m.Mem.Read(addr, size)
	t.record(ins, trace.Read, addr, size, v, false, false)
	return v
}

// Store writes the low size bytes of val at addr.
func (t *Thread) Store(ins trace.Ins, addr Addr, size int, val uint64) {
	t.checkRange(addr, size)
	t.m.Mem.Write(addr, size, val)
	t.record(ins, trace.Write, addr, size, val, false, false)
}

// LoadMarked is an annotated load (READ_ONCE / rcu_dereference): it takes
// part in PMC analysis like any plain access, but the race detector treats
// a pair of marked accesses as intentionally concurrent, mirroring KCSAN.
func (t *Thread) LoadMarked(ins trace.Ins, addr Addr, size int) uint64 {
	t.checkRange(addr, size)
	v := t.m.Mem.Read(addr, size)
	t.record(ins, trace.Read, addr, size, v, false, true)
	return v
}

// StoreMarked is an annotated store (WRITE_ONCE / rcu_assign_pointer).
func (t *Thread) StoreMarked(ins trace.Ins, addr Addr, size int, val uint64) {
	t.checkRange(addr, size)
	t.m.Mem.Write(addr, size, val)
	t.record(ins, trace.Write, addr, size, val, false, true)
}

// LoadAtomic is Load with the access marked as a synchronization operation,
// which the race detector ignores and the PMC filter drops by default.
func (t *Thread) LoadAtomic(ins trace.Ins, addr Addr, size int) uint64 {
	t.checkRange(addr, size)
	v := t.m.Mem.Read(addr, size)
	t.record(ins, trace.Read, addr, size, v, true, false)
	return v
}

// StoreAtomic is Store with the access marked as a synchronization
// operation.
func (t *Thread) StoreAtomic(ins trace.Ins, addr Addr, size int, val uint64) {
	t.checkRange(addr, size)
	t.m.Mem.Write(addr, size, val)
	t.record(ins, trace.Write, addr, size, val, true, false)
}

// CPURelax models a PAUSE/HALT-style instruction: a voluntary yield that the
// liveness heuristic (is_live, §4.4.1) treats as a low-liveness signal.
func (t *Thread) CPURelax() { t.yield(Event{Kind: EvYield}) }

// --- Stack ---

// PushFrame reserves size bytes of kernel stack and returns the frame base.
// Frame data accessed through the returned address is traced as stack
// accesses, exercising the ESP-based stack filter.
func (t *Thread) PushFrame(size int) Addr {
	sz := uint64((size + 7) &^ 7)
	if t.sp-sz < t.stackLo {
		t.Fault("BUG: kernel stack overflow on thread %d", t.ID)
	}
	t.sp -= sz
	return t.sp
}

// PopFrame releases the most recent size-byte frame.
func (t *Thread) PopFrame(size int) {
	sz := uint64((size + 7) &^ 7)
	t.sp += sz
	if t.sp > t.stackLo+trace.StackSize {
		t.Fault("BUG: kernel stack underflow on thread %d", t.ID)
	}
}

// SP returns the current stack pointer (the simulated ESP).
func (t *Thread) SP() Addr { return t.sp }

// --- Locks ---

func (t *Thread) holdLock(addr Addr) {
	t.locks = t.locks.With(addr)
}

func (t *Thread) dropLock(addr Addr) {
	t.locks = t.locks.Without(addr)
}

// HoldsLock reports whether the thread currently holds the lock at addr.
func (t *Thread) HoldsLock(addr Addr) bool {
	return t.locks.Has(addr)
}

// Lock acquires the lock word at addr (spinlock and mutex behave identically
// under the serialized scheduler). Acquisition is a single atomic RMW event;
// when the lock is held by another thread, the caller blocks until a release
// wakes it. Recursive acquisition is a deadlock and faults immediately.
func (t *Thread) Lock(ins trace.Ins, addr Addr) {
	if t.HoldsLock(addr) {
		t.Fault("BUG: recursive lock at %#x (%s)", addr, ins.Name())
	}
	for {
		t.checkRange(addr, 8)
		if t.m.Mem.Read(addr, 8) == 0 {
			t.m.Mem.Write(addr, 8, uint64(t.ID)+1)
			t.holdLock(addr)
			t.m.lockHolder[addr] = t
			t.record(ins, trace.Write, addr, 8, uint64(t.ID)+1, true, false)
			return
		}
		// Contended: block until the holder releases.
		t.state = BlockedLock
		t.waitOn = addr
		t.m.lockWaiters[addr] = append(t.m.lockWaiters[addr], t)
		t.yield(Event{Kind: EvBlocked})
	}
}

// Unlock releases the lock at addr and wakes all waiters.
func (t *Thread) Unlock(ins trace.Ins, addr Addr) {
	if !t.HoldsLock(addr) {
		t.Fault("BUG: unlock of lock %#x not held (%s)", addr, ins.Name())
	}
	t.m.Mem.Write(addr, 8, 0)
	t.dropLock(addr)
	delete(t.m.lockHolder, addr)
	for _, w := range t.m.lockWaiters[addr] {
		if w.state == BlockedLock && w.waitOn == addr {
			w.state = Runnable
			w.waitOn = 0
		}
	}
	delete(t.m.lockWaiters, addr)
	t.record(ins, trace.Write, addr, 8, 0, true, false)
}

// TryLock attempts acquisition without blocking, returning success.
func (t *Thread) TryLock(ins trace.Ins, addr Addr) bool {
	if t.HoldsLock(addr) {
		return false
	}
	t.checkRange(addr, 8)
	if t.m.Mem.Read(addr, 8) != 0 {
		t.record(ins, trace.Read, addr, 8, t.m.Mem.Read(addr, 8), true, false)
		return false
	}
	t.m.Mem.Write(addr, 8, uint64(t.ID)+1)
	t.holdLock(addr)
	t.m.lockHolder[addr] = t
	t.record(ins, trace.Write, addr, 8, uint64(t.ID)+1, true, false)
	return true
}

// --- RCU ---

// RCUReadLock enters an RCU read-side critical section. Sections nest.
func (t *Thread) RCUReadLock() {
	t.rcuDepth++
	t.m.rcuReaders++
}

// RCUReadUnlock leaves the innermost RCU read-side critical section and, if
// the grace period drained, wakes synchronize_rcu waiters.
func (t *Thread) RCUReadUnlock() {
	if t.rcuDepth == 0 {
		t.Fault("BUG: rcu_read_unlock without rcu_read_lock on thread %d", t.ID)
	}
	t.rcuDepth--
	t.m.rcuReaders--
	if t.m.rcuReaders == 0 {
		for _, w := range t.m.rcuWaiters {
			if w.state == BlockedRCU {
				w.state = Runnable
			}
		}
		t.m.rcuWaiters = t.m.rcuWaiters[:0]
	}
}

// SynchronizeRCU blocks until no other thread is inside an RCU read-side
// critical section. Calling it from within a read-side section deadlocks by
// construction and faults.
func (t *Thread) SynchronizeRCU() {
	if t.rcuDepth > 0 {
		t.Fault("BUG: synchronize_rcu inside rcu_read_lock on thread %d", t.ID)
	}
	for t.m.rcuReaders > 0 {
		t.state = BlockedRCU
		t.m.rcuWaiters = append(t.m.rcuWaiters, t)
		t.yield(Event{Kind: EvBlocked})
	}
}

// RCUDepth returns the current read-side nesting depth (for tests).
func (t *Thread) RCUDepth() int { return t.rcuDepth }
