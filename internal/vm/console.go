package vm

import (
	"fmt"
	"strings"
)

// Console is the guest kernel console. The simulated kernel's printk writes
// here, and the console checker oracle (§4.4.1 "We implement is_bug by
// capturing guest-kernel console output") scans it after each trial.
type Console struct {
	lines []string
}

// Printf appends one formatted line to the console.
func (c *Console) Printf(format string, args ...any) {
	c.lines = append(c.lines, fmt.Sprintf(format, args...))
}

// Lines returns all console lines in emission order.
func (c *Console) Lines() []string { return c.lines }

// Contains reports whether any console line contains substr.
func (c *Console) Contains(substr string) bool {
	for _, l := range c.lines {
		if strings.Contains(l, substr) {
			return true
		}
	}
	return false
}

// Reset clears the console (done on snapshot restore: the console is host
// state, not guest memory).
func (c *Console) Reset() { c.lines = c.lines[:0] }

// String joins all lines with newlines, for reports.
func (c *Console) String() string { return strings.Join(c.lines, "\n") }
