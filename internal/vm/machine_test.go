package vm

import (
	"testing"

	"snowboard/internal/trace"
)

// TestFaultReleasesLocksForSibling: when a thread dies on a fault while
// holding locks, the machine fences it off and releases them, so the other
// thread does not deadlock (the paper's trials continue to completion even
// after a crash is logged).
func TestFaultReleasesLocksForSibling(t *testing.T) {
	m := newTestMachine()
	lock := uint64(testRegionBase + 0x800)
	done := false
	m.Spawn("crasher", testStackBase, func(th *Thread) {
		th.Lock(insT, lock)
		th.Load(insT, 0x10, 8) // null deref while holding the lock
	})
	m.Spawn("survivor", testStackBase+8192, func(th *Thread) {
		th.Load(insT, testRegionBase, 8) // give the crasher a head start
		th.Lock(insT, lock)
		th.Unlock(insT, lock)
		done = true
	})
	// Run the crasher first, then the survivor.
	sched := FuncScheduler(func(mm *Machine, last *Thread, ev Event) *Thread {
		r := mm.Runnable()
		if len(r) == 0 {
			return nil
		}
		for _, th := range r {
			if th.ID == 0 {
				return th
			}
		}
		return r[0]
	})
	if err := m.Run(sched, 0); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !done {
		t.Fatal("survivor never acquired the crashed thread's lock")
	}
	if len(m.Faults()) != 1 {
		t.Fatalf("faults: %v", m.Faults())
	}
}

// TestFaultReleasesRCUForSibling: a reader crashing inside an RCU section
// must not wedge a writer in synchronize_rcu forever.
func TestFaultReleasesRCUForSibling(t *testing.T) {
	m := newTestMachine()
	m.Spawn("crasher", testStackBase, func(th *Thread) {
		th.RCUReadLock()
		th.Load(insT, testRegionBase, 8)
		th.Load(insT, 0x10, 8) // dies inside the section
	})
	synced := false
	m.Spawn("writer", testStackBase+8192, func(th *Thread) {
		th.Load(insT, testRegionBase, 8)
		th.Load(insT, testRegionBase, 8) // let the crasher enter its section
		th.SynchronizeRCU()
		synced = true
	})
	i := 0
	sched := FuncScheduler(func(mm *Machine, last *Thread, ev Event) *Thread {
		r := mm.Runnable()
		if len(r) == 0 {
			return nil
		}
		i++
		return r[i%len(r)]
	})
	if err := m.Run(sched, 0); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !synced {
		t.Fatal("synchronize_rcu never returned after reader crash")
	}
}

func TestResetRuntimeClearsState(t *testing.T) {
	m := newTestMachine()
	m.Mem.Write(testRegionBase, 8, 1)
	snap := m.Mem.Snapshot()
	var tr trace.Trace
	m.SetTrace(&tr)
	_ = runOne(m, func(th *Thread) {
		th.Lock(insT, testRegionBase+0x800)
		th.Store(insT, testRegionBase, 8, 99)
	}) // thread finishes holding the lock... it exits with lock held? no: Done releases via releaseDead
	m.ResetRuntime()
	if len(m.Threads()) != 0 {
		t.Fatal("threads survive reset")
	}
	if len(m.Console.Lines()) != 0 {
		t.Fatal("console survives reset")
	}
	if len(m.Faults()) != 0 {
		t.Fatal("faults survive reset")
	}
	m.Mem.Restore(snap)
	if m.Mem.Read(testRegionBase, 8) != 1 {
		t.Fatal("restore after reset broken")
	}
	// The machine is reusable after a reset.
	if err := runOne(m, func(th *Thread) {
		th.Store(insT, testRegionBase, 8, 2)
	}); err != nil {
		t.Fatal(err)
	}
}

func TestConsoleHelpers(t *testing.T) {
	var c Console
	c.Printf("hello %d", 42)
	c.Printf("world")
	if !c.Contains("hello 42") || c.Contains("absent") {
		t.Fatal("Contains wrong")
	}
	if c.String() != "hello 42\nworld" {
		t.Fatalf("String: %q", c.String())
	}
	c.Reset()
	if len(c.Lines()) != 0 {
		t.Fatal("reset failed")
	}
}

func TestRegionOf(t *testing.T) {
	m := newTestMachine()
	r, ok := m.Mem.RegionOf(testRegionBase + 5)
	if !ok || r.Name != "test" {
		t.Fatalf("RegionOf: %+v %v", r, ok)
	}
	if _, ok := m.Mem.RegionOf(0x10); ok {
		t.Fatal("null page has a region")
	}
}

func TestRunnableAndAllDone(t *testing.T) {
	m := newTestMachine()
	m.Spawn("a", testStackBase, func(th *Thread) {
		th.Load(insT, testRegionBase, 8)
	})
	if m.AllDone() {
		t.Fatal("AllDone before running")
	}
	if len(m.Runnable()) != 1 {
		t.Fatal("spawned thread not runnable")
	}
	if err := m.Run(SeqScheduler{}, 0); err != nil {
		t.Fatal(err)
	}
	if !m.AllDone() || len(m.Runnable()) != 0 {
		t.Fatal("AllDone/Runnable after completion wrong")
	}
}

func TestSchedulerStopsRun(t *testing.T) {
	m := newTestMachine()
	m.Spawn("a", testStackBase, func(th *Thread) {
		for i := 0; i < 100; i++ {
			th.Load(insT, testRegionBase, 8)
		}
	})
	picked := 0
	sched := FuncScheduler(func(mm *Machine, last *Thread, ev Event) *Thread {
		picked++
		if picked > 5 {
			return nil // scheduler-initiated stop
		}
		return mm.Runnable()[0]
	})
	if err := m.Run(sched, 0); err != nil {
		t.Fatalf("run: %v", err)
	}
	if m.AllDone() {
		t.Fatal("thread finished despite early stop")
	}
	m.Shutdown()
}

func TestPagesAccounting(t *testing.T) {
	m := newTestMachine()
	before := m.Mem.Pages()
	m.Mem.Write(testRegionBase+10*PageSize, 1, 1)
	if m.Mem.Pages() != before+1 {
		t.Fatalf("pages: %d -> %d", before, m.Mem.Pages())
	}
}
