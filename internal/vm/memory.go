// Package vm implements the execution substrate that stands in for the
// paper's customized QEMU/SKI hypervisor: a deterministic virtual machine
// whose guest memory is fully interposed, whose threads are serialized
// coroutines (only one vCPU executes at any time, §4.4.1), and whose
// scheduler is a pluggable policy consulted after every memory access.
//
// Guest memory is paged with copy-on-write snapshots so that every test runs
// from the same fixed initial kernel state (§4.1), which is what makes PMC
// addresses comparable across tests.
package vm

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// PageSize is the guest page size in bytes.
const PageSize = 4096

// Addr is a guest physical/virtual address (the simulation is identity
// mapped).
type Addr = uint64

type page struct {
	data [PageSize]byte
}

// Region is a half-open range [Lo, Hi) of valid guest addresses. Accesses
// outside all valid regions fault, which is how null-pointer dereferences
// become observable kernel bugs.
type Region struct {
	Lo, Hi Addr
	Name   string
}

// Contains reports whether addr falls inside the region.
func (r Region) Contains(addr Addr) bool { return addr >= r.Lo && addr < r.Hi }

// Memory is the guest address space: sparse pages plus the set of valid
// regions. Pages referenced by a Snapshot are shared and copied on write.
type Memory struct {
	pages   map[uint64]*page
	owned   map[uint64]bool // pages writable in place (not shared with a snapshot)
	regions []Region
}

// NewMemory returns an empty address space with no valid regions.
func NewMemory() *Memory {
	return &Memory{
		pages: make(map[uint64]*page),
		owned: make(map[uint64]bool),
	}
}

// AddRegion declares [lo, hi) valid. Regions must not overlap.
func (m *Memory) AddRegion(name string, lo, hi Addr) Region {
	if lo >= hi {
		panic(fmt.Sprintf("vm: bad region %s [%#x,%#x)", name, lo, hi))
	}
	for _, r := range m.regions {
		if lo < r.Hi && r.Lo < hi {
			panic(fmt.Sprintf("vm: region %s [%#x,%#x) overlaps %s", name, lo, hi, r.Name))
		}
	}
	r := Region{Lo: lo, Hi: hi, Name: name}
	m.regions = append(m.regions, r)
	sort.Slice(m.regions, func(i, j int) bool { return m.regions[i].Lo < m.regions[j].Lo })
	return r
}

// Valid reports whether the whole range [addr, addr+size) is inside one
// valid region.
func (m *Memory) Valid(addr Addr, size int) bool {
	for _, r := range m.regions {
		if r.Contains(addr) {
			return addr+uint64(size) <= r.Hi
		}
	}
	return false
}

// RegionOf returns the region containing addr, if any.
func (m *Memory) RegionOf(addr Addr) (Region, bool) {
	for _, r := range m.regions {
		if r.Contains(addr) {
			return r, true
		}
	}
	return Region{}, false
}

func (m *Memory) pageFor(addr Addr, forWrite bool) *page {
	pn := addr / PageSize
	p := m.pages[pn]
	if p == nil {
		p = &page{}
		m.pages[pn] = p
		m.owned[pn] = true
		return p
	}
	if forWrite && !m.owned[pn] {
		cp := *p
		p = &cp
		m.pages[pn] = p
		m.owned[pn] = true
	}
	return p
}

// ReadBytes copies size bytes at addr into a fresh slice. The range must be
// valid; callers (the Thread access path) check validity first.
func (m *Memory) ReadBytes(addr Addr, size int) []byte {
	out := make([]byte, size)
	for i := 0; i < size; {
		p := m.pageFor(addr+uint64(i), false)
		off := int((addr + uint64(i)) % PageSize)
		n := copy(out[i:], p.data[off:])
		i += n
	}
	return out
}

// WriteBytes stores b at addr.
func (m *Memory) WriteBytes(addr Addr, b []byte) {
	for i := 0; i < len(b); {
		p := m.pageFor(addr+uint64(i), true)
		off := int((addr + uint64(i)) % PageSize)
		n := copy(p.data[off:], b[i:])
		i += n
	}
}

// Read returns the little-endian value of the size bytes at addr (size 1..8).
func (m *Memory) Read(addr Addr, size int) uint64 {
	var buf [8]byte
	copy(buf[:size], m.ReadBytes(addr, size))
	return binary.LittleEndian.Uint64(buf[:])
}

// Write stores the low size bytes of val at addr, little-endian.
func (m *Memory) Write(addr Addr, size int, val uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], val)
	m.WriteBytes(addr, buf[:size])
}

// Snapshot captures the current memory contents. All current pages become
// shared: subsequent writes through any Memory that references them copy
// first. Taking a snapshot is O(pages) in map size only, not in bytes.
type Snapshot struct {
	pages   map[uint64]*page
	regions []Region
}

// Snapshot freezes the current state.
func (m *Memory) Snapshot() *Snapshot {
	s := &Snapshot{
		pages:   make(map[uint64]*page, len(m.pages)),
		regions: append([]Region(nil), m.regions...),
	}
	for pn, p := range m.pages {
		s.pages[pn] = p
		m.owned[pn] = false // page now shared with the snapshot
	}
	return s
}

// Restore resets memory to exactly the snapshot state.
func (m *Memory) Restore(s *Snapshot) {
	m.pages = make(map[uint64]*page, len(s.pages))
	for pn, p := range s.pages {
		m.pages[pn] = p
	}
	m.owned = make(map[uint64]bool)
	m.regions = append([]Region(nil), s.regions...)
}

// Pages reports how many pages are materialized (for tests and stats).
func (m *Memory) Pages() int { return len(m.pages) }
