// Package cover implements concurrency coverage metrics for trial
// executions. The primary metric is Krace-style *alias instruction-pair
// coverage* (the paper discusses it in §2.1 and finds its own
// instruction-pair clustering "consistent with the use of instruction-pair
// coverage to guide search in Krace", §5.3.1): an ordered pair of
// instructions (w, r) is covered when thread A's access at w is directly
// followed — on the same memory — by thread B's access at r. Accumulated
// across trials, the metric measures how much genuinely concurrent behavior
// a testing campaign has explored, independently of whether bugs fired.
package cover

import (
	"fmt"
	"sort"
	"sync"

	"snowboard/internal/trace"
)

// Pair is an ordered cross-thread instruction pair on overlapping memory.
type Pair struct {
	First  trace.Ins
	Second trace.Ins
}

// String renders the pair for reports.
func (p Pair) String() string {
	return fmt.Sprintf("%s -> %s", p.First.Name(), p.Second.Name())
}

// Coverage accumulates alias instruction pairs across trials. It is safe
// for concurrent use so distributed workers can share one accumulator.
// It implements Metric.
type Coverage struct {
	mu    sync.Mutex
	pairs map[Pair]int
	// Scratch maps reused across AddTrace calls; the access hot path
	// (PR 5) made per-trial allocation the dominant cost here.
	scratchLast  map[uint64]lastAccess
	scratchLocal map[Pair]bool
}

// New returns an empty accumulator.
func New() *Coverage {
	return &Coverage{pairs: make(map[Pair]int)}
}

// AddTrace folds one trial trace in and returns how many *new* pairs it
// contributed. For every memory byte, consecutive accesses by different
// threads (at least one being a write — read/read orderings carry no
// communication) contribute their instruction pair.
func (c *Coverage) AddTrace(tr *trace.Trace) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	last := clearLast(c.scratchLast)
	c.scratchLast = last
	local := c.scratchLocal
	if local == nil {
		local = make(map[Pair]bool)
		c.scratchLocal = local
	} else {
		clear(local)
	}
	for i, n := 0, tr.Len(); i < n; i++ {
		if tr.StackAt(i) || tr.AtomicAt(i) {
			continue
		}
		ins, thread, isWrite := tr.InsAt(i), tr.ThreadAt(i), tr.IsWriteAt(i)
		for b := tr.AddrAt(i); b < tr.EndAt(i); b++ {
			if prev, ok := last[b]; ok && prev.thread != thread && (prev.write || isWrite) {
				local[Pair{First: prev.ins, Second: ins}] = true
			}
			last[b] = lastAccess{ins: ins, thread: thread, write: isWrite}
		}
	}
	fresh := 0
	for p := range local {
		if c.pairs[p] == 0 {
			fresh++
		}
		c.pairs[p]++
	}
	return fresh
}

// Merge folds other's accumulated pairs into c (counts add) and returns
// how many pairs were new to c. Per-worker accumulators merged in any
// order yield the same totals as one shared accumulator. other is not
// modified; merging an accumulator into itself is not supported. other
// must be a *Coverage.
func (c *Coverage) Merge(other Metric) int {
	o := other.(*Coverage)
	o.mu.Lock()
	defer o.mu.Unlock()
	c.mu.Lock()
	defer c.mu.Unlock()
	fresh := 0
	for p, n := range o.pairs {
		if c.pairs[p] == 0 {
			fresh++
		}
		c.pairs[p] += n
	}
	return fresh
}

// Len returns the number of distinct pairs covered so far.
func (c *Coverage) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pairs)
}

// Top returns the n most frequently re-covered pairs, most common first —
// the frequency ranking used to prioritize manual inspection (§5.2).
func (c *Coverage) Top(n int) []Pair {
	c.mu.Lock()
	defer c.mu.Unlock()
	type entry struct {
		p Pair
		n int
	}
	all := make([]entry, 0, len(c.pairs))
	for p, count := range c.pairs {
		all = append(all, entry{p, count})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		if all[i].p.First != all[j].p.First {
			return all[i].p.First < all[j].p.First
		}
		return all[i].p.Second < all[j].p.Second
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]Pair, n)
	for i := 0; i < n; i++ {
		out[i] = all[i].p
	}
	return out
}

// Count returns how many times the pair has been covered.
func (c *Coverage) Count(p Pair) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pairs[p]
}
