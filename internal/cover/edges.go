package cover

import (
	"sync"

	"snowboard/internal/trace"
)

// Edge is a pair of consecutively executed access sites — the sequential
// edge-coverage metric Syzkaller exports and Snowboard selects sequential
// tests by. Unlike the concurrency metrics, edges deliberately include
// stack and atomic accesses: sequential coverage cares about control flow,
// not communication.
type Edge [2]trace.Ins

// Edges accumulates sequential edge coverage. It is safe for concurrent
// use and implements Metric. It replaces the redundant fuzz.Coverage.
type Edges struct {
	mu    sync.Mutex
	edges map[Edge]bool
}

// NewEdges returns an empty accumulator.
func NewEdges() *Edges {
	return &Edges{edges: make(map[Edge]bool)}
}

// AddTrace folds one trace's edge set in, reporting how many were new.
func (c *Edges) AddTrace(tr *trace.Trace) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	fresh := 0
	var prev trace.Ins
	for i, n := 0, tr.Len(); i < n; i++ {
		cur := tr.InsAt(i)
		if i > 0 {
			e := Edge{prev, cur}
			if !c.edges[e] {
				c.edges[e] = true
				fresh++
			}
		}
		prev = cur
	}
	return fresh
}

// Merge folds other's edges in, reporting how many were new. Commutative
// and associative. other must be an *Edges.
func (c *Edges) Merge(other Metric) int {
	o := other.(*Edges)
	o.mu.Lock()
	defer o.mu.Unlock()
	c.mu.Lock()
	defer c.mu.Unlock()
	fresh := 0
	for e := range o.edges {
		if !c.edges[e] {
			c.edges[e] = true
			fresh++
		}
	}
	return fresh
}

// Len reports the accumulated edge count.
func (c *Edges) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.edges)
}
