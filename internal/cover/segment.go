package cover

import (
	"fmt"
	"sort"
	"sync"

	"snowboard/internal/trace"
)

// Comm is one cross-thread communication abstracted to subsystem level:
// the owning regions (trace.RegionOf) of the two instructions of an alias
// pair. Abstracting per subsystem keeps the segment space small enough to
// saturate while still distinguishing control-flow contexts that raw
// alias pairs collapse.
type Comm struct {
	Write trace.Ins `json:"w"`
	Read  trace.Ins `json:"r"`
}

// String renders the communication for reports.
func (c Comm) String() string {
	return fmt.Sprintf("%s=>%s", c.Write.Name(), c.Read.Name())
}

// Segment is a 2-gram of cross-thread communications: two alias-pair
// communications observed consecutively within one trial. This is the
// interleaving-segment metric SegFuzz-style feedback ranks schedules by —
// it captures *orderings between* communications, which single alias
// pairs are too context-free to express.
type Segment struct {
	First  Comm `json:"a"`
	Second Comm `json:"b"`
}

// String renders the segment for reports.
func (s Segment) String() string {
	return fmt.Sprintf("[%s ; %s]", s.First, s.Second)
}

// SegmentCount is one exported accumulator entry, used to persist segment
// state into the artifact store for byte-identical campaign resume.
type SegmentCount struct {
	Seg Segment `json:"seg"`
	N   int     `json:"n"`
}

// Segments accumulates interleaving segments across trials. It is safe
// for concurrent use and implements Metric.
type Segments struct {
	mu   sync.Mutex
	segs map[Segment]int
	// Reusable per-call scratch, mirroring Coverage's zero-alloc path.
	scratchLast map[uint64]lastAccess
	scratchSeen map[Segment]bool
}

// NewSegments returns an empty accumulator.
func NewSegments() *Segments {
	return &Segments{segs: make(map[Segment]int)}
}

// AddTrace folds one trial trace in and returns how many *new* segments it
// contributed. The trace is walked exactly like Coverage.AddTrace to find
// cross-thread communications; each communication is abstracted to its
// region pair, consecutive duplicates are collapsed, and every ordered
// pair of consecutive distinct communications forms one segment.
func (s *Segments) AddTrace(tr *trace.Trace) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	last := clearLast(s.scratchLast)
	s.scratchLast = last
	seen := s.scratchSeen
	if seen == nil {
		seen = make(map[Segment]bool)
		s.scratchSeen = seen
	} else {
		clear(seen)
	}
	var prev Comm
	havePrev := false
	for i, n := 0, tr.Len(); i < n; i++ {
		if tr.StackAt(i) || tr.AtomicAt(i) {
			continue
		}
		ins, thread, isWrite := tr.InsAt(i), tr.ThreadAt(i), tr.IsWriteAt(i)
		comm := Comm{}
		haveComm := false
		for b := tr.AddrAt(i); b < tr.EndAt(i); b++ {
			if p, ok := last[b]; ok && p.thread != thread && (p.write || isWrite) && !haveComm {
				comm = Comm{Write: trace.RegionOf(p.ins), Read: trace.RegionOf(ins)}
				haveComm = true
			}
			last[b] = lastAccess{ins: ins, thread: thread, write: isWrite}
		}
		if !haveComm || (havePrev && comm == prev) {
			continue
		}
		if havePrev {
			seen[Segment{First: prev, Second: comm}] = true
		}
		prev, havePrev = comm, true
	}
	fresh := 0
	for seg := range seen {
		if s.segs[seg] == 0 {
			fresh++
		}
		s.segs[seg]++
	}
	return fresh
}

// Merge folds other's segments into s (counts add) and returns how many
// were new to s. Commutative and associative on the covered set, like
// Coverage.Merge. other must be a *Segments.
func (s *Segments) Merge(other Metric) int {
	o := other.(*Segments)
	o.mu.Lock()
	defer o.mu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	fresh := 0
	for seg, n := range o.segs {
		if s.segs[seg] == 0 {
			fresh++
		}
		s.segs[seg] += n
	}
	return fresh
}

// Len returns the number of distinct segments covered so far.
func (s *Segments) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.segs)
}

// Count returns how many times the segment has been covered.
func (s *Segments) Count(seg Segment) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.segs[seg]
}

// Export returns the accumulator's entries in canonical (sorted) order,
// for persistence into the artifact store.
func (s *Segments) Export() []SegmentCount {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SegmentCount, 0, len(s.segs))
	for seg, n := range s.segs {
		out = append(out, SegmentCount{Seg: seg, N: n})
	}
	sort.Slice(out, func(i, j int) bool { return segLess(out[i].Seg, out[j].Seg) })
	return out
}

// ImportSegments rebuilds an accumulator from exported entries.
func ImportSegments(entries []SegmentCount) *Segments {
	s := NewSegments()
	for _, e := range entries {
		s.segs[e.Seg] = e.N
	}
	return s
}

func segLess(a, b Segment) bool {
	if a.First.Write != b.First.Write {
		return a.First.Write < b.First.Write
	}
	if a.First.Read != b.First.Read {
		return a.First.Read < b.First.Read
	}
	if a.Second.Write != b.Second.Write {
		return a.Second.Write < b.Second.Write
	}
	return a.Second.Read < b.Second.Read
}
