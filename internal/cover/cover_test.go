package cover

import (
	"testing"

	"snowboard/internal/trace"
)

var (
	cvW = trace.DefIns("cover_test:w")
	cvR = trace.DefIns("cover_test:r")
	cvX = trace.DefIns("cover_test:x")
)

func tAcc(th int, kind trace.Kind, ins trace.Ins, addr uint64) trace.Access {
	return trace.Access{Thread: th, Kind: kind, Ins: ins, Addr: addr, Size: 8}
}

func trOf(accs ...trace.Access) *trace.Trace {
	tr := &trace.Trace{}
	for _, a := range accs {
		tr.Append(a)
	}
	return tr
}

func TestCrossThreadPairCovered(t *testing.T) {
	c := New()
	fresh := c.AddTrace(trOf(
		tAcc(0, trace.Write, cvW, 0x100),
		tAcc(1, trace.Read, cvR, 0x100),
	))
	if fresh != 1 || c.Len() != 1 {
		t.Fatalf("fresh=%d len=%d", fresh, c.Len())
	}
	if c.Count(Pair{First: cvW, Second: cvR}) != 1 {
		t.Fatal("pair not counted")
	}
}

func TestSameThreadNotCovered(t *testing.T) {
	c := New()
	if fresh := c.AddTrace(trOf(
		tAcc(0, trace.Write, cvW, 0x100),
		tAcc(0, trace.Read, cvR, 0x100),
	)); fresh != 0 {
		t.Fatalf("same-thread pair covered: %d", fresh)
	}
}

func TestReadReadNotCovered(t *testing.T) {
	c := New()
	if fresh := c.AddTrace(trOf(
		tAcc(0, trace.Read, cvW, 0x100),
		tAcc(1, trace.Read, cvR, 0x100),
	)); fresh != 0 {
		t.Fatalf("read/read pair covered: %d", fresh)
	}
}

func TestDisjointMemoryNotCovered(t *testing.T) {
	c := New()
	if fresh := c.AddTrace(trOf(
		tAcc(0, trace.Write, cvW, 0x100),
		tAcc(1, trace.Read, cvR, 0x200),
	)); fresh != 0 {
		t.Fatalf("disjoint pair covered: %d", fresh)
	}
}

func TestInterveningAccessBreaksPair(t *testing.T) {
	c := New()
	fresh := c.AddTrace(trOf(
		tAcc(0, trace.Write, cvW, 0x100),
		tAcc(1, trace.Write, cvX, 0x100), // interposes
		tAcc(0, trace.Read, cvR, 0x100),
	))
	// Pairs: (w -> x) and (x -> r); but never (w -> r).
	if fresh != 2 {
		t.Fatalf("fresh=%d", fresh)
	}
	if c.Count(Pair{First: cvW, Second: cvR}) != 0 {
		t.Fatal("non-adjacent pair covered")
	}
}

func TestStackAndAtomicIgnored(t *testing.T) {
	c := New()
	w := tAcc(0, trace.Write, cvW, 0x100)
	w.Stack = true
	r := tAcc(1, trace.Read, cvR, 0x100)
	if fresh := c.AddTrace(trOf(w, r)); fresh != 0 {
		t.Fatal("stack access covered")
	}
	w.Stack, w.Atomic = false, true
	if fresh := c.AddTrace(trOf(w, r)); fresh != 0 {
		t.Fatal("atomic access covered")
	}
}

func TestFreshCountsOnlyNewPairs(t *testing.T) {
	c := New()
	tr := trOf(
		tAcc(0, trace.Write, cvW, 0x100),
		tAcc(1, trace.Read, cvR, 0x100),
	)
	if fresh := c.AddTrace(tr); fresh != 1 {
		t.Fatalf("first: %d", fresh)
	}
	if fresh := c.AddTrace(tr); fresh != 0 {
		t.Fatalf("repeat counted as fresh: %d", fresh)
	}
	if c.Count(Pair{First: cvW, Second: cvR}) != 2 {
		t.Fatal("repeat not accumulated")
	}
}

func TestTopOrdering(t *testing.T) {
	c := New()
	hot := trOf(tAcc(0, trace.Write, cvW, 0x100), tAcc(1, trace.Read, cvR, 0x100))
	cold := trOf(tAcc(0, trace.Write, cvX, 0x200), tAcc(1, trace.Read, cvR, 0x200))
	for i := 0; i < 5; i++ {
		c.AddTrace(hot)
	}
	c.AddTrace(cold)
	top := c.Top(2)
	if len(top) != 2 || top[0] != (Pair{First: cvW, Second: cvR}) {
		t.Fatalf("top: %v", top)
	}
	if got := c.Top(10); len(got) != 2 {
		t.Fatalf("Top clamps: %d", len(got))
	}
}

func TestPartialOverlapCovered(t *testing.T) {
	c := New()
	w := trace.Access{Thread: 0, Kind: trace.Write, Ins: cvW, Addr: 0x100, Size: 8}
	r := trace.Access{Thread: 1, Kind: trace.Read, Ins: cvR, Addr: 0x104, Size: 2}
	if fresh := c.AddTrace(trOf(w, r)); fresh != 1 {
		t.Fatalf("partial overlap not covered: %d", fresh)
	}
}
