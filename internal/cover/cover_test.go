package cover

import (
	"testing"

	"snowboard/internal/trace"
)

var (
	cvW = trace.DefIns("cover_test:w")
	cvR = trace.DefIns("cover_test:r")
	cvX = trace.DefIns("cover_test:x")
)

func tAcc(th int, kind trace.Kind, ins trace.Ins, addr uint64) trace.Access {
	return trace.Access{Thread: th, Kind: kind, Ins: ins, Addr: addr, Size: 8}
}

func trOf(accs ...trace.Access) *trace.Trace {
	tr := &trace.Trace{}
	for _, a := range accs {
		tr.Append(a)
	}
	return tr
}

func TestCrossThreadPairCovered(t *testing.T) {
	c := New()
	fresh := c.AddTrace(trOf(
		tAcc(0, trace.Write, cvW, 0x100),
		tAcc(1, trace.Read, cvR, 0x100),
	))
	if fresh != 1 || c.Len() != 1 {
		t.Fatalf("fresh=%d len=%d", fresh, c.Len())
	}
	if c.Count(Pair{First: cvW, Second: cvR}) != 1 {
		t.Fatal("pair not counted")
	}
}

func TestSameThreadNotCovered(t *testing.T) {
	c := New()
	if fresh := c.AddTrace(trOf(
		tAcc(0, trace.Write, cvW, 0x100),
		tAcc(0, trace.Read, cvR, 0x100),
	)); fresh != 0 {
		t.Fatalf("same-thread pair covered: %d", fresh)
	}
}

func TestReadReadNotCovered(t *testing.T) {
	c := New()
	if fresh := c.AddTrace(trOf(
		tAcc(0, trace.Read, cvW, 0x100),
		tAcc(1, trace.Read, cvR, 0x100),
	)); fresh != 0 {
		t.Fatalf("read/read pair covered: %d", fresh)
	}
}

func TestDisjointMemoryNotCovered(t *testing.T) {
	c := New()
	if fresh := c.AddTrace(trOf(
		tAcc(0, trace.Write, cvW, 0x100),
		tAcc(1, trace.Read, cvR, 0x200),
	)); fresh != 0 {
		t.Fatalf("disjoint pair covered: %d", fresh)
	}
}

func TestInterveningAccessBreaksPair(t *testing.T) {
	c := New()
	fresh := c.AddTrace(trOf(
		tAcc(0, trace.Write, cvW, 0x100),
		tAcc(1, trace.Write, cvX, 0x100), // interposes
		tAcc(0, trace.Read, cvR, 0x100),
	))
	// Pairs: (w -> x) and (x -> r); but never (w -> r).
	if fresh != 2 {
		t.Fatalf("fresh=%d", fresh)
	}
	if c.Count(Pair{First: cvW, Second: cvR}) != 0 {
		t.Fatal("non-adjacent pair covered")
	}
}

func TestStackAndAtomicIgnored(t *testing.T) {
	c := New()
	w := tAcc(0, trace.Write, cvW, 0x100)
	w.Stack = true
	r := tAcc(1, trace.Read, cvR, 0x100)
	if fresh := c.AddTrace(trOf(w, r)); fresh != 0 {
		t.Fatal("stack access covered")
	}
	w.Stack, w.Atomic = false, true
	if fresh := c.AddTrace(trOf(w, r)); fresh != 0 {
		t.Fatal("atomic access covered")
	}
}

func TestFreshCountsOnlyNewPairs(t *testing.T) {
	c := New()
	tr := trOf(
		tAcc(0, trace.Write, cvW, 0x100),
		tAcc(1, trace.Read, cvR, 0x100),
	)
	if fresh := c.AddTrace(tr); fresh != 1 {
		t.Fatalf("first: %d", fresh)
	}
	if fresh := c.AddTrace(tr); fresh != 0 {
		t.Fatalf("repeat counted as fresh: %d", fresh)
	}
	if c.Count(Pair{First: cvW, Second: cvR}) != 2 {
		t.Fatal("repeat not accumulated")
	}
}

func TestTopOrdering(t *testing.T) {
	c := New()
	hot := trOf(tAcc(0, trace.Write, cvW, 0x100), tAcc(1, trace.Read, cvR, 0x100))
	cold := trOf(tAcc(0, trace.Write, cvX, 0x200), tAcc(1, trace.Read, cvR, 0x200))
	for i := 0; i < 5; i++ {
		c.AddTrace(hot)
	}
	c.AddTrace(cold)
	top := c.Top(2)
	if len(top) != 2 || top[0] != (Pair{First: cvW, Second: cvR}) {
		t.Fatalf("top: %v", top)
	}
	if got := c.Top(10); len(got) != 2 {
		t.Fatalf("Top clamps: %d", len(got))
	}
}

func TestPartialOverlapCovered(t *testing.T) {
	c := New()
	w := trace.Access{Thread: 0, Kind: trace.Write, Ins: cvW, Addr: 0x100, Size: 8}
	r := trace.Access{Thread: 1, Kind: trace.Read, Ins: cvR, Addr: 0x104, Size: 2}
	if fresh := c.AddTrace(trOf(w, r)); fresh != 1 {
		t.Fatalf("partial overlap not covered: %d", fresh)
	}
}

// --- Metric interface and allocation guards ---

// Both accumulators implement Metric; the pipeline and fuzz loop depend on
// swapping them behind the interface.
var (
	_ Metric = (*Coverage)(nil)
	_ Metric = (*Segments)(nil)
)

// TestAddTraceSteadyStateAllocs pins the satellite fix for per-trial alloc
// churn: once the scratch maps are warm, folding a trace whose pairs and
// segments are already covered must not allocate at all.
func TestAddTraceSteadyStateAllocs(t *testing.T) {
	tr := trOf(
		tAcc(0, trace.Write, cvW, 0x100),
		tAcc(1, trace.Read, cvR, 0x100),
		tAcc(0, trace.Write, cvX, 0x200),
		tAcc(1, trace.Read, cvR, 0x200),
	)
	c := New()
	c.AddTrace(tr) // warm scratch + cover the pairs
	if n := testing.AllocsPerRun(50, func() { c.AddTrace(tr) }); n != 0 {
		t.Fatalf("Coverage.AddTrace steady state allocates %.1f/op, want 0", n)
	}
	s := NewSegments()
	s.AddTrace(tr)
	if n := testing.AllocsPerRun(50, func() { s.AddTrace(tr) }); n != 0 {
		t.Fatalf("Segments.AddTrace steady state allocates %.1f/op, want 0", n)
	}
}

// BenchmarkCoverageAddTrace is the allocs/op record behind the steady-state
// guard above (run with -benchmem).
func BenchmarkCoverageAddTrace(b *testing.B) {
	tr := trOf(
		tAcc(0, trace.Write, cvW, 0x100),
		tAcc(1, trace.Read, cvR, 0x100),
		tAcc(0, trace.Write, cvX, 0x200),
		tAcc(1, trace.Read, cvR, 0x200),
	)
	c := New()
	c.AddTrace(tr)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.AddTrace(tr)
	}
}

// --- Segment metric golden tests (hand-built traces) ---

var (
	segAW = trace.DefIns("segsubA:store")
	segBR = trace.DefIns("segsubB:load")
	segCW = trace.DefIns("segsubC:store")
	segDR = trace.DefIns("segsubD:load")
	segA2 = trace.DefIns("segsubA:store2") // same region as segAW
	segB2 = trace.DefIns("segsubB:load2")  // same region as segBR
)

func comm(w, r trace.Ins) Comm {
	return Comm{Write: trace.RegionOf(w), Read: trace.RegionOf(r)}
}

func TestSegmentGoldenTwoComms(t *testing.T) {
	s := NewSegments()
	fresh := s.AddTrace(trOf(
		tAcc(0, trace.Write, segAW, 0x100),
		tAcc(1, trace.Read, segBR, 0x100), // comm 1: A=>B
		tAcc(0, trace.Write, segCW, 0x200),
		tAcc(1, trace.Read, segDR, 0x200), // comm 2: C=>D
	))
	if fresh != 1 || s.Len() != 1 {
		t.Fatalf("fresh=%d len=%d, want 1/1", fresh, s.Len())
	}
	want := Segment{First: comm(segAW, segBR), Second: comm(segCW, segDR)}
	if s.Count(want) != 1 {
		t.Fatalf("golden segment %s not covered", want)
	}
}

func TestSegmentCollapsesConsecutiveDuplicates(t *testing.T) {
	// Two back-to-back communications that abstract to the same region pair
	// (A=>B) collapse into one; no self-segment [A=>B ; A=>B] may appear.
	s := NewSegments()
	fresh := s.AddTrace(trOf(
		tAcc(0, trace.Write, segAW, 0x100),
		tAcc(1, trace.Read, segBR, 0x100), // comm: A=>B
		tAcc(0, trace.Write, segA2, 0x200),
		tAcc(1, trace.Read, segB2, 0x200), // comm: A=>B again — collapsed
		tAcc(0, trace.Write, segCW, 0x300),
		tAcc(1, trace.Read, segDR, 0x300), // comm: C=>D
	))
	ab := comm(segAW, segBR)
	if got := s.Count(Segment{First: ab, Second: ab}); got != 0 {
		t.Fatalf("self-segment covered %d times, want 0", got)
	}
	want := Segment{First: ab, Second: comm(segCW, segDR)}
	if fresh != 1 || s.Count(want) != 1 {
		t.Fatalf("fresh=%d count(%s)=%d, want 1/1", fresh, want, s.Count(want))
	}
}

func TestSegmentSingleCommNoSegment(t *testing.T) {
	// One communication is a 1-gram; the metric only counts 2-grams.
	s := NewSegments()
	if fresh := s.AddTrace(trOf(
		tAcc(0, trace.Write, segAW, 0x100),
		tAcc(1, trace.Read, segBR, 0x100),
	)); fresh != 0 || s.Len() != 0 {
		t.Fatalf("single comm produced segments: fresh=%d len=%d", fresh, s.Len())
	}
}

func TestSegmentOrderDistinguished(t *testing.T) {
	// [A=>B ; C=>D] and [C=>D ; A=>B] are distinct segments: the metric
	// exists to capture orderings *between* communications.
	forward := trOf(
		tAcc(0, trace.Write, segAW, 0x100),
		tAcc(1, trace.Read, segBR, 0x100),
		tAcc(0, trace.Write, segCW, 0x200),
		tAcc(1, trace.Read, segDR, 0x200),
	)
	backward := trOf(
		tAcc(0, trace.Write, segCW, 0x200),
		tAcc(1, trace.Read, segDR, 0x200),
		tAcc(0, trace.Write, segAW, 0x100),
		tAcc(1, trace.Read, segBR, 0x100),
	)
	s := NewSegments()
	if fresh := s.AddTrace(forward); fresh != 1 {
		t.Fatalf("forward fresh=%d", fresh)
	}
	if fresh := s.AddTrace(backward); fresh != 1 {
		t.Fatalf("reversed ordering not counted as a new segment: fresh=%d", fresh)
	}
	if s.Len() != 2 {
		t.Fatalf("len=%d, want 2", s.Len())
	}
}

func TestSegmentsMergeCommutative(t *testing.T) {
	// Merging per-worker accumulators in any order must yield the same
	// covered set and counts — the Metric contract the parallel fold needs.
	traces := []*trace.Trace{
		trOf(
			tAcc(0, trace.Write, segAW, 0x100),
			tAcc(1, trace.Read, segBR, 0x100),
			tAcc(0, trace.Write, segCW, 0x200),
			tAcc(1, trace.Read, segDR, 0x200),
		),
		trOf(
			tAcc(0, trace.Write, segCW, 0x200),
			tAcc(1, trace.Read, segDR, 0x200),
			tAcc(0, trace.Write, segAW, 0x100),
			tAcc(1, trace.Read, segBR, 0x100),
		),
		trOf(
			tAcc(0, trace.Write, segAW, 0x300),
			tAcc(1, trace.Read, segDR, 0x300),
			tAcc(0, trace.Write, segCW, 0x400),
			tAcc(1, trace.Read, segBR, 0x400),
		),
	}
	build := func(order []int) *Segments {
		parts := make([]*Segments, len(traces))
		for i, tr := range traces {
			parts[i] = NewSegments()
			parts[i].AddTrace(tr)
		}
		total := NewSegments()
		for _, i := range order {
			total.Merge(parts[i])
		}
		return total
	}
	a := build([]int{0, 1, 2})
	b := build([]int{2, 0, 1})
	ea, eb := a.Export(), b.Export()
	if len(ea) != len(eb) {
		t.Fatalf("merge order changed distinct set: %d vs %d", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("entry %d differs: %+v vs %+v", i, ea[i], eb[i])
		}
	}
	// Shared-accumulator equivalence: one accumulator fed all traces.
	shared := NewSegments()
	for _, tr := range traces {
		shared.AddTrace(tr)
	}
	if shared.Len() != a.Len() {
		t.Fatalf("merged len %d != shared len %d", a.Len(), shared.Len())
	}
}

func TestSegmentsExportImportRoundTrip(t *testing.T) {
	s := NewSegments()
	s.AddTrace(trOf(
		tAcc(0, trace.Write, segAW, 0x100),
		tAcc(1, trace.Read, segBR, 0x100),
		tAcc(0, trace.Write, segCW, 0x200),
		tAcc(1, trace.Read, segDR, 0x200),
	))
	s.AddTrace(trOf(
		tAcc(0, trace.Write, segAW, 0x100),
		tAcc(1, trace.Read, segBR, 0x100),
		tAcc(0, trace.Write, segCW, 0x200),
		tAcc(1, trace.Read, segDR, 0x200),
	))
	got := ImportSegments(s.Export()).Export()
	want := s.Export()
	if len(got) != len(want) {
		t.Fatalf("round trip changed entry count: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("entry %d differs after round trip: %+v vs %+v", i, got[i], want[i])
		}
	}
}
