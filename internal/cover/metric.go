package cover

import "snowboard/internal/trace"

// Metric is the common shape of a concurrency-coverage accumulator. All
// implementations share two contracts the pipeline depends on:
//
//   - AddTrace is the only observation path: it folds one trial trace in
//     and reports how many units (pairs, segments, edges) were new to the
//     accumulator.
//   - Merge is commutative and associative on the *covered set*: merging
//     per-worker accumulators in any order yields the same distinct-unit
//     set as one shared accumulator, so the parallel fold introduced in
//     PR 2 stays order-independent. (Hit counts, where a metric keeps
//     them, add and are likewise order-independent.)
//
// Merge panics if the two accumulators are different concrete metrics;
// the pipeline never mixes them.
type Metric interface {
	// AddTrace folds one trial trace in and returns how many new units
	// it contributed.
	AddTrace(tr *trace.Trace) int
	// Merge folds other into the receiver and returns how many of
	// other's units were new. other is not modified; merging an
	// accumulator into itself is not supported.
	Merge(other Metric) int
	// Len returns the number of distinct units covered so far.
	Len() int
}

// lastAccess tracks the most recent access per byte while walking a trace.
type lastAccess struct {
	ins    trace.Ins
	thread int
	write  bool
}

// clearLast resets a scratch last-access map for reuse across trials.
func clearLast(m map[uint64]lastAccess) map[uint64]lastAccess {
	if m == nil {
		return make(map[uint64]lastAccess)
	}
	clear(m)
	return m
}
