package pmc

import (
	"testing"

	"snowboard/internal/trace"
)

// profilesFromBytes decodes an arbitrary byte string into profiles: seven
// bytes per access (kind, instruction, address offset, size, value,
// profile slot, self-pair salt), clamped into the ranges Identify accepts.
func profilesFromBytes(data []byte) []Profile {
	const perAccess = 7
	profiles := make([]Profile, 1+len(data)/(perAccess*4))
	for i := range profiles {
		profiles[i].TestID = i
	}
	for i := 0; i+perAccess <= len(data); i += perAccess {
		b := data[i : i+perAccess]
		kind := trace.Read
		if b[0]%2 == 0 {
			kind = trace.Write
		}
		acc := trace.Access{
			Ins:  trace.Ins(uint32(b[1])),
			Kind: kind,
			Addr: 0x1000 + uint64(b[2]),
			Size: 1 + b[3]%8,
			Val:  uint64(b[4]) | uint64(b[6])<<8,
		}
		slot := int(b[5]) % len(profiles)
		profiles[slot].Accesses.Append(acc)
	}
	return profiles
}

// FuzzPMCIdentify checks Algorithm 1's core soundness invariants on
// arbitrary profiles: identification never panics, and every identified
// PMC has (a) genuinely overlapping writer/reader byte ranges and (b)
// differing values projected onto the overlap (unless the value filter is
// ablated), with pair accounting consistent under the bounded lists.
func FuzzPMCIdentify(f *testing.F) {
	f.Add([]byte{}, false)
	f.Add([]byte{0, 1, 0, 7, 42, 0, 0, 1, 2, 0, 7, 7, 1, 0}, false)
	f.Add([]byte{0, 1, 3, 1, 9, 0, 0, 1, 2, 4, 3, 9, 1, 0}, true)
	f.Fuzz(func(t *testing.T, data []byte, selfPairs bool) {
		profiles := profilesFromBytes(data)
		opt := DefaultOptions()
		opt.AllowSelfPairs = selfPairs
		set := Identify(profiles, opt)
		var total int64
		for key, e := range set.Entries {
			w := trace.Access{Ins: key.Write.Ins, Kind: trace.Write, Addr: key.Write.Addr, Size: key.Write.Size, Val: key.Write.Val}
			r := trace.Access{Ins: key.Read.Ins, Kind: trace.Read, Addr: key.Read.Addr, Size: key.Read.Size, Val: key.Read.Val}
			if !r.Overlaps(&w) {
				t.Fatalf("PMC with non-overlapping ranges: %v", key)
			}
			lo, hi := r.OverlapRange(&w)
			if r.ProjectVal(lo, hi) == w.ProjectVal(lo, hi) {
				t.Fatalf("PMC whose write would not change the read: %v", key)
			}
			if !selfPairs {
				for _, pair := range e.Pairs {
					if pair.Writer == pair.Reader {
						t.Fatalf("self pair %v retained with AllowSelfPairs=false", pair)
					}
				}
			}
			if int64(len(e.Pairs)) > e.PairCount || len(e.Pairs) > MaxPairsPerPMC {
				t.Fatalf("pair accounting broken: %d listed, %d counted", len(e.Pairs), e.PairCount)
			}
			for i := 1; i < len(e.Pairs); i++ {
				if pairLess(e.Pairs[i], e.Pairs[i-1]) {
					t.Fatalf("pair list not canonically sorted: %v", e.Pairs)
				}
			}
			total += e.PairCount
		}
		if total != set.TotalCombinations {
			t.Fatalf("TotalCombinations %d != sum of PairCounts %d", set.TotalCombinations, total)
		}
	})
}
