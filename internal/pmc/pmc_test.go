package pmc

import (
	"math/rand"
	"testing"

	"snowboard/internal/trace"
)

var (
	insW1 = trace.DefIns("pmc_test:write1")
	insW2 = trace.DefIns("pmc_test:write2")
	insR1 = trace.DefIns("pmc_test:read1")
	insR2 = trace.DefIns("pmc_test:read2")
)

func wAcc(ins trace.Ins, addr uint64, size uint8, val uint64) trace.Access {
	return trace.Access{Ins: ins, Kind: trace.Write, Addr: addr, Size: size, Val: val}
}

func rAcc(ins trace.Ins, addr uint64, size uint8, val uint64) trace.Access {
	return trace.Access{Ins: ins, Kind: trace.Read, Addr: addr, Size: size, Val: val}
}

func TestIdentifyBasicPMC(t *testing.T) {
	profiles := []Profile{
		{TestID: 0, Accesses: trace.BlockOf(wAcc(insW1, 0x100, 8, 42))},
		{TestID: 1, Accesses: trace.BlockOf(rAcc(insR1, 0x100, 8, 7))},
	}
	set := Identify(profiles, DefaultOptions())
	if set.Len() != 1 {
		t.Fatalf("PMCs: %d, want 1", set.Len())
	}
	for key, e := range set.Entries {
		if key.Write.Ins != insW1 || key.Read.Ins != insR1 {
			t.Fatalf("wrong key: %v", key)
		}
		if e.PairCount != 1 || e.Pairs[0] != (Pair{Writer: 0, Reader: 1}) {
			t.Fatalf("wrong pairs: %+v", e)
		}
	}
}

func TestIdentifyValueFilter(t *testing.T) {
	// Same value written and read: the write would not change the read.
	profiles := []Profile{
		{TestID: 0, Accesses: trace.BlockOf(wAcc(insW1, 0x100, 8, 42))},
		{TestID: 1, Accesses: trace.BlockOf(rAcc(insR1, 0x100, 8, 42))},
	}
	if set := Identify(profiles, DefaultOptions()); set.Len() != 0 {
		t.Fatalf("equal-value pair classified as PMC")
	}
	opt := DefaultOptions()
	opt.SkipValueFilter = true
	if set := Identify(profiles, opt); set.Len() != 1 {
		t.Fatal("ablation did not disable the value filter")
	}
}

func TestIdentifyPartialOverlapProjection(t *testing.T) {
	// Write [0x100,0x108)=0xAA...AA, read [0x104,0x106): projected bytes
	// equal -> no PMC; projected bytes differ -> PMC.
	profiles := []Profile{
		{TestID: 0, Accesses: trace.BlockOf(wAcc(insW1, 0x100, 8, 0xAAAA_BBBB_CCCC_DDDD))},
		{TestID: 1, Accesses: trace.BlockOf(rAcc(insR1, 0x104, 2, 0xBBBB))},
	}
	if set := Identify(profiles, DefaultOptions()); set.Len() != 0 {
		t.Fatal("projection-equal pair classified as PMC")
	}
	profiles[1].Accesses = trace.BlockOf(rAcc(insR1, 0x104, 2, 0x1234))
	if set := Identify(profiles, DefaultOptions()); set.Len() != 1 {
		t.Fatal("projection-different pair missed")
	}
}

func TestIdentifyNoOverlapNoPMC(t *testing.T) {
	profiles := []Profile{
		{TestID: 0, Accesses: trace.BlockOf(wAcc(insW1, 0x100, 4, 1))},
		{TestID: 1, Accesses: trace.BlockOf(rAcc(insR1, 0x104, 4, 2))},
	}
	if set := Identify(profiles, DefaultOptions()); set.Len() != 0 {
		t.Fatal("disjoint ranges produced a PMC")
	}
}

func TestIdentifySelfPairs(t *testing.T) {
	profiles := []Profile{
		{TestID: 0, Accesses: trace.BlockOf(
			wAcc(insW1, 0x100, 8, 1),
			rAcc(insR1, 0x100, 8, 2),
		)},
	}
	set := Identify(profiles, DefaultOptions())
	if set.Len() != 1 {
		t.Fatalf("self pair missed: %d", set.Len())
	}
	opt := DefaultOptions()
	opt.AllowSelfPairs = false
	if set := Identify(profiles, opt); set.Len() != 0 {
		t.Fatal("self pair kept despite AllowSelfPairs=false")
	}
}

func TestIdentifyDFLeaderPropagates(t *testing.T) {
	profiles := []Profile{
		{TestID: 0, Accesses: trace.BlockOf(wAcc(insW1, 0x100, 8, 1))},
		{
			TestID:   1,
			Accesses: trace.BlockOf(rAcc(insR1, 0x100, 8, 2), rAcc(insR2, 0x100, 8, 2)),
			DFLeader: map[int]bool{0: true},
		},
	}
	set := Identify(profiles, DefaultOptions())
	var leaders, nonLeaders int
	for key := range set.Entries {
		if key.DFLeader {
			leaders++
			if key.Read.Ins != insR1 {
				t.Fatalf("wrong leader read: %v", key)
			}
		} else {
			nonLeaders++
		}
	}
	if leaders != 1 || nonLeaders != 1 {
		t.Fatalf("leaders=%d nonLeaders=%d", leaders, nonLeaders)
	}
}

func TestPairCapAndCount(t *testing.T) {
	// One PMC key shared by many test pairs: the pair list is capped but
	// the count is exact.
	var profiles []Profile
	n := MaxPairsPerPMC + 10
	for i := 0; i < n; i++ {
		profiles = append(profiles,
			Profile{TestID: 2 * i, Accesses: trace.BlockOf(wAcc(insW1, 0x100, 8, 1))},
			Profile{TestID: 2*i + 1, Accesses: trace.BlockOf(rAcc(insR1, 0x100, 8, 2))},
		)
	}
	set := Identify(profiles, DefaultOptions())
	if set.Len() != 1 {
		t.Fatalf("keys: %d", set.Len())
	}
	for _, e := range set.Entries {
		if len(e.Pairs) != MaxPairsPerPMC {
			t.Fatalf("pair list %d, want cap %d", len(e.Pairs), MaxPairsPerPMC)
		}
		if e.PairCount != int64(n*n) {
			t.Fatalf("pair count %d, want %d", e.PairCount, n*n)
		}
	}
	if set.TotalCombinations != int64(n*n) {
		t.Fatalf("total combinations %d", set.TotalCombinations)
	}
}

// TestIndexAgainstBruteForce cross-checks the ordered nested index against
// an O(n^2) scan on random access sets.
func TestIndexAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for round := 0; round < 50; round++ {
		var writes []trace.Access
		var reads []trace.Access
		for i := 0; i < 60; i++ {
			addr := 0x100 + uint64(rng.Intn(64))
			size := uint8(rng.Intn(8) + 1)
			if rng.Intn(2) == 0 {
				writes = append(writes, wAcc(insW1, addr, size, uint64(i)))
			} else {
				reads = append(reads, rAcc(insR1, addr, size, uint64(1000+i)))
			}
		}
		ix := newIndex()
		for i := range writes {
			w := &writes[i]
			ix.addWrite(writeRec{addr: w.Addr, val: w.Val, ins: w.Ins, size: w.Size, test: int32(i)})
		}
		ix.seal()
		if ix.writeCount() != len(writes) {
			t.Fatalf("write count %d != %d", ix.writeCount(), len(writes))
		}
		for ri := range reads {
			r := &reads[ri]
			got := make(map[int]int)
			ix.overlapping(r.Addr, r.End(), func(w writeRec) { got[int(w.test)]++ })
			want := make(map[int]int)
			for wi := range writes {
				if writes[wi].Overlaps(r) {
					want[wi]++
				}
			}
			if len(got) != len(want) {
				t.Fatalf("round %d read %d: got %d overlaps, want %d", round, ri, len(got), len(want))
			}
			for k, v := range want {
				if got[k] != v {
					t.Fatalf("round %d: write %d seen %d times, want %d", round, k, got[k], v)
				}
			}
		}
	}
}

func TestPMCStrings(t *testing.T) {
	p := PMC{
		Write:    Key{Ins: insW1, Addr: 0x100, Size: 8, Val: 1},
		Read:     Key{Ins: insR1, Addr: 0x100, Size: 8, Val: 2},
		DFLeader: true,
	}
	s := p.String()
	if s == "" || s[len(s)-4:] != "[df]" {
		t.Fatalf("string %q", s)
	}
}

func TestIdentifyIgnoresWriteWritePairs(t *testing.T) {
	// Two writes never form a PMC by themselves (the paper: "such
	// situations still require a read after a write").
	profiles := []Profile{
		{TestID: 0, Accesses: trace.BlockOf(wAcc(insW1, 0x100, 8, 1))},
		{TestID: 1, Accesses: trace.BlockOf(wAcc(insW2, 0x100, 8, 2))},
	}
	if set := Identify(profiles, DefaultOptions()); set.Len() != 0 {
		t.Fatal("write/write pair classified as PMC")
	}
}
