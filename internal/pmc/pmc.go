// Package pmc implements potential memory communication (PMC)
// identification — Algorithm 1 of the paper. It gathers the shared memory
// accesses profiled from every sequential test, indexes them with an
// ordered nested index, scans read/write range overlaps, and classifies an
// overlapping pair as a PMC when the values projected onto the shared bytes
// differ.
package pmc

import (
	"fmt"

	"snowboard/internal/obs"
	"snowboard/internal/par"
	"snowboard/internal/trace"
)

// Key is the feature tuple of one side of a PMC: memory range, instruction
// address, and value — exactly the read_key/write_key of Algorithm 1
// lines 12–13.
type Key struct {
	Ins  trace.Ins
	Addr uint64
	Size uint8
	Val  uint64
}

// String renders the key for reports.
func (k Key) String() string {
	return fmt.Sprintf("%s [%#x+%d]=%#x", k.Ins.Name(), k.Addr, k.Size, k.Val)
}

// PMC is a potential memory communication: a write access that, scheduled
// before the paired read in a concurrent execution, would change what the
// read observes. DFLeader marks PMCs whose read is the first fetch of a
// double-fetch pair (§4.3, S-CH-DOUBLE).
type PMC struct {
	Write    Key
	Read     Key
	DFLeader bool
}

// String renders the PMC for reports.
func (p PMC) String() string {
	df := ""
	if p.DFLeader {
		df = " [df]"
	}
	return fmt.Sprintf("W{%s} -> R{%s}%s", p.Write, p.Read, df)
}

// Pair identifies one (writer test, reader test) combination that exhibits
// the PMC. Writer may equal Reader: a test can communicate with a copy of
// itself (the paper's "duplicate" concurrent tests).
type Pair struct {
	Writer, Reader int
}

// MaxPairsPerPMC caps the explicit pair list retained per PMC key; the
// total combination count is still accounted in Entry.PairCount. The paper
// identified 169 billion PMCs — only aggregates are storable at that scale.
const MaxPairsPerPMC = 16

// pairLess orders pairs canonically: by writer test, then reader test.
func pairLess(a, b Pair) bool {
	if a.Writer != b.Writer {
		return a.Writer < b.Writer
	}
	return a.Reader < b.Reader
}

// Entry aggregates everything known about one PMC key.
//
// Pairs holds the MaxPairsPerPMC canonically smallest (writer, reader)
// observations, with multiplicity. Keeping the k smallest — rather than
// the first k encountered — makes the bound independent of observation
// order: the k smallest of a union equal the k smallest of the per-shard
// k-smallest lists, which is what lets Set.Merge combine shard results in
// any order and still match a whole-set identification.
type Entry struct {
	PMC       PMC
	Pairs     []Pair // the MaxPairsPerPMC canonically smallest test pairs
	PairCount int64  // total combinations, uncapped
}

// addPair inserts pair into the sorted bounded list, dropping the largest
// element when the list is full.
func (e *Entry) addPair(pair Pair) {
	i := len(e.Pairs)
	for i > 0 && pairLess(pair, e.Pairs[i-1]) {
		i--
	}
	if i >= MaxPairsPerPMC {
		return
	}
	if len(e.Pairs) < MaxPairsPerPMC {
		e.Pairs = append(e.Pairs, Pair{})
	}
	copy(e.Pairs[i+1:], e.Pairs[i:])
	e.Pairs[i] = pair
}

// Set is the PMC database produced by identification.
type Set struct {
	Entries map[PMC]*Entry

	// TotalCombinations is the uncapped number of (PMC, writer, reader)
	// combinations observed, the analogue of the paper's headline PMC
	// count.
	TotalCombinations int64
}

// NewSet returns an empty database.
func NewSet() *Set { return &Set{Entries: make(map[PMC]*Entry)} }

// Add records one observed pair for the PMC.
func (s *Set) Add(p PMC, pair Pair) {
	e := s.Entries[p]
	if e == nil {
		e = &Entry{PMC: p}
		s.Entries[p] = e
	}
	if p.DFLeader && !e.PMC.DFLeader {
		e.PMC.DFLeader = true
	}
	e.addPair(pair)
	e.PairCount++
	s.TotalCombinations++
}

// Merge folds other into s. Entries merge key-wise: pair counts add and
// the bounded pair lists keep the canonically smallest MaxPairsPerPMC
// observations, so Merge is commutative and associative and merging
// per-shard identifications equals identifying over the whole profile set.
// other is not modified.
func (s *Set) Merge(other *Set) {
	for key, oe := range other.Entries {
		e := s.Entries[key]
		if e == nil {
			e = &Entry{PMC: oe.PMC}
			s.Entries[key] = e
		}
		for _, pair := range oe.Pairs {
			e.addPair(pair)
		}
		e.PairCount += oe.PairCount
	}
	s.TotalCombinations += other.TotalCombinations
}

// Len returns the number of distinct PMC keys.
func (s *Set) Len() int { return len(s.Entries) }

// Profile is the shared-memory access set of one sequential test (§4.1),
// with the double-fetch leader markings computed during profiling.
type Profile struct {
	TestID   int
	Accesses trace.Block
	DFLeader map[int]bool // indexes into Accesses
}

// Options tunes identification.
type Options struct {
	// AllowSelfPairs keeps PMCs whose writer and reader are the same test.
	AllowSelfPairs bool
	// SkipValueFilter disables Algorithm 1's projected-value inequality
	// check (lines 9–11); used by the value-filter ablation.
	SkipValueFilter bool
}

// DefaultOptions mirror the paper: self pairs allowed, value filter on.
func DefaultOptions() Options { return Options{AllowSelfPairs: true} }

// Identify runs Algorithm 1 over the profiles and returns the PMC set.
func Identify(profiles []Profile, opt Options) *Set {
	return IdentifyParallel(profiles, opt, 1)
}

// IdentifyParallel runs Algorithm 1 sharded by reader profile across
// workers goroutines (0 means GOMAXPROCS). All workers scan a shared
// read-only write index; each produces a per-shard Set which is merged in
// profile order. Because Set.Merge keeps canonical bounded pair lists, the
// result is identical to a serial Identify regardless of worker count.
func IdentifyParallel(profiles []Profile, opt Options, workers int) *Set {
	idx := buildIndex(profiles)
	shards := par.Map(workers, len(profiles), func(_, pi int) *Set {
		shard := NewSet()
		identifyReader(idx, &profiles[pi], opt, shard)
		return shard
	})
	set := NewSet()
	for _, shard := range shards {
		set.Merge(shard)
	}
	obs.G(obs.MPMCIdentified).Set(int64(set.Len()))
	obs.G(obs.MPMCCombinations).Set(set.TotalCombinations)
	obs.Emit(obs.EvPMCIdentified, obs.A("keys", set.Len()),
		obs.A("combinations", set.TotalCombinations))
	return set
}

// buildIndex gathers every write access of the profiles into a sealed
// ordered index, safe for concurrent overlap queries. It iterates the
// columnar profiles directly and stores self-contained value records, so
// the index never holds pointers into (or forces materialization of) the
// profile blocks.
func buildIndex(profiles []Profile) *index {
	idx := newIndex()
	for pi := range profiles {
		p := &profiles[pi]
		n := p.Accesses.Len()
		for ai := 0; ai < n; ai++ {
			if p.Accesses.IsWriteAt(ai) {
				idx.addWrite(writeRec{
					addr: p.Accesses.AddrAt(ai),
					val:  p.Accesses.ValAt(ai),
					ins:  p.Accesses.InsAt(ai),
					size: p.Accesses.SizeAt(ai),
					test: int32(p.TestID),
				})
			}
		}
	}
	idx.seal()
	return idx
}

// identifyReader scans one reader profile against the sealed write index,
// adding every identified PMC to set (Algorithm 1 lines 6–14).
func identifyReader(idx *index, p *Profile, opt Options, set *Set) {
	n := p.Accesses.Len()
	for ai := 0; ai < n; ai++ {
		if p.Accesses.KindAt(ai) != trace.Read {
			continue
		}
		r := p.Accesses.At(ai)
		idx.overlapping(r.Addr, r.End(), func(w writeRec) {
			classify(&r, w, p.DFLeader[ai], p.TestID, opt, set)
		})
	}
}

// classify applies Algorithm 1 lines 9–14 to one overlapping (read, write)
// candidate: the self-pair filter, the projected-value inequality check,
// and the Set insertion. It is shared between the batch path
// (identifyReader) and the incremental path (readerView.scan), so the two
// classify identically by construction.
func classify(r *trace.Access, w writeRec, dfLeader bool, readerTest int, opt Options, set *Set) {
	if !opt.AllowSelfPairs && int(w.test) == readerTest {
		return
	}
	wAcc := trace.Access{Ins: w.ins, Kind: trace.Write, Addr: w.addr, Size: w.size, Val: w.val}
	lo, hi := r.OverlapRange(&wAcc)
	if !opt.SkipValueFilter {
		if r.ProjectVal(lo, hi) == wAcc.ProjectVal(lo, hi) {
			return // the write would not change what the read sees
		}
	}
	pmc := PMC{
		Write:    Key{Ins: w.ins, Addr: w.addr, Size: w.size, Val: w.val},
		Read:     Key{Ins: r.Ins, Addr: r.Addr, Size: r.Size, Val: r.Val},
		DFLeader: dfLeader,
	}
	set.Add(pmc, Pair{Writer: int(w.test), Reader: readerTest})
}
