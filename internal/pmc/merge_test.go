package pmc

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"snowboard/internal/trace"
)

// genProfiles produces a random profile set from a narrow address/value
// pool, dense enough that many (writer, reader) pairs collide on the same
// PMC keys and push the bounded pair lists past MaxPairsPerPMC.
func genProfiles(rng *rand.Rand) []Profile {
	insPool := []trace.Ins{insW1, insW2, insR1, insR2}
	n := 3 + rng.Intn(6)
	profiles := make([]Profile, n)
	for i := range profiles {
		var accs trace.Block
		n := 4 + rng.Intn(12)
		for j := 0; j < n; j++ {
			kind := trace.Read
			if rng.Intn(2) == 0 {
				kind = trace.Write
			}
			accs.Append(trace.Access{
				Ins:  insPool[rng.Intn(len(insPool))],
				Kind: kind,
				Addr: 0x100 + uint64(rng.Intn(12)),
				Size: uint8(1 + rng.Intn(8)),
				Val:  uint64(rng.Intn(4)),
			})
		}
		profiles[i] = Profile{TestID: i, Accesses: accs}
	}
	return profiles
}

// flatten renders a Set canonically for deep comparison.
func flatten(s *Set) []string {
	out := make([]string, 0, len(s.Entries))
	for key, e := range s.Entries {
		out = append(out, fmt.Sprintf("%v|df=%v|%v|%d", key, e.PMC.DFLeader, e.Pairs, e.PairCount))
	}
	sort.Strings(out)
	out = append(out, fmt.Sprintf("total=%d", s.TotalCombinations))
	return out
}

// readerShards identifies each profile's reads separately against the full
// write index, returning one Set per profile — the unit IdentifyParallel
// distributes across workers.
func readerShards(profiles []Profile, opt Options) []*Set {
	idx := buildIndex(profiles)
	shards := make([]*Set, len(profiles))
	for i := range profiles {
		shards[i] = NewSet()
		identifyReader(idx, &profiles[i], opt, shards[i])
	}
	return shards
}

// TestSetMergeShuffleInvariant is the merge property test: for ≥50
// generated profile sets, merging the per-reader shards in any (seeded
// shuffled) order must equal identifying over the concatenated profiles —
// commutativity — and merging pre-merged groups must agree too —
// associativity.
func TestSetMergeShuffleInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		opt := DefaultOptions()
		if trial%3 == 1 {
			opt.AllowSelfPairs = false
		}
		if trial%5 == 2 {
			opt.SkipValueFilter = true
		}
		profiles := genProfiles(rng)
		want := flatten(Identify(profiles, opt))

		shards := readerShards(profiles, opt)

		// Commutativity: three independent shuffles of the merge order.
		for s := 0; s < 3; s++ {
			order := rng.Perm(len(shards))
			merged := NewSet()
			for _, i := range order {
				merged.Merge(shards[i])
			}
			if got := flatten(merged); !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d shuffle %d: shard merge order %v diverges from serial Identify\ngot:  %v\nwant: %v",
					trial, s, order, got, want)
			}
		}

		// Associativity: fold into two groups split at a random point,
		// merge the groups, compare again.
		if len(shards) >= 2 {
			cut := 1 + rng.Intn(len(shards)-1)
			left, right := NewSet(), NewSet()
			for _, sh := range shards[:cut] {
				left.Merge(sh)
			}
			for _, sh := range shards[cut:] {
				right.Merge(sh)
			}
			left.Merge(right)
			if got := flatten(left); !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d: grouped merge (cut=%d) diverges from serial Identify", trial, cut)
			}
		}

		// And the production path at several worker counts.
		for _, workers := range []int{2, 3, 8} {
			if got := flatten(IdentifyParallel(profiles, opt, workers)); !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d: IdentifyParallel(workers=%d) diverges from serial Identify", trial, workers)
			}
		}
	}
}

// TestSetMergePairListStaysCanonical checks the k-smallest invariant
// directly: a merged entry's pair list is the canonically smallest
// MaxPairsPerPMC pairs of the union, regardless of how observations were
// split across shards.
func TestSetMergePairListStaysCanonical(t *testing.T) {
	p := PMC{Write: Key{Ins: insW1, Addr: 0x100, Size: 8, Val: 1},
		Read: Key{Ins: insR1, Addr: 0x100, Size: 8, Val: 2}}
	rng := rand.New(rand.NewSource(7))
	var all []Pair
	a, b := NewSet(), NewSet()
	for i := 0; i < 3*MaxPairsPerPMC; i++ {
		pair := Pair{Writer: rng.Intn(10), Reader: rng.Intn(10)}
		all = append(all, pair)
		if rng.Intn(2) == 0 {
			a.Add(p, pair)
		} else {
			b.Add(p, pair)
		}
	}
	a.Merge(b)
	sort.Slice(all, func(i, j int) bool { return pairLess(all[i], all[j]) })
	e := a.Entries[p]
	if e == nil || len(e.Pairs) != MaxPairsPerPMC {
		t.Fatalf("merged entry missing or wrong size: %+v", e)
	}
	if !reflect.DeepEqual(e.Pairs, all[:MaxPairsPerPMC]) {
		t.Fatalf("merged pairs are not the canonical smallest:\ngot:  %v\nwant: %v", e.Pairs, all[:MaxPairsPerPMC])
	}
	if e.PairCount != int64(len(all)) {
		t.Fatalf("PairCount = %d, want %d", e.PairCount, len(all))
	}
}
