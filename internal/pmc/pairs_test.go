package pmc

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// TestAddPairBoundedKSmallest is the property test for Entry.addPair: after
// feeding any stream of pairs in any order, the retained list must equal
// the canonically sorted stream truncated to MaxPairsPerPMC — the exact
// k-smallest, with multiplicity — and, through Set.Add, PairCount must
// stay the exact uncapped stream length. The k-smallest (rather than
// first-k) bound is what makes identification order-independent, so this
// invariant underpins the whole incremental engine.
func TestAddPairBoundedKSmallest(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	key := PMC{Write: Key{Ins: insW1, Addr: 0x100, Size: 8, Val: 1},
		Read: Key{Ins: insR1, Addr: 0x100, Size: 8, Val: 2}}
	for trial := 0; trial < 200; trial++ {
		// Stream lengths around the cap matter most: under, at, and far
		// over MaxPairsPerPMC, from pools narrow enough to force duplicates.
		n := rng.Intn(4 * MaxPairsPerPMC)
		pool := 1 + rng.Intn(12)
		stream := make([]Pair, n)
		for i := range stream {
			stream[i] = Pair{Writer: rng.Intn(pool), Reader: rng.Intn(pool)}
		}

		var e Entry
		set := NewSet()
		for _, pr := range stream {
			e.addPair(pr)
			set.Add(key, pr)
		}

		want := append([]Pair(nil), stream...)
		sort.SliceStable(want, func(i, j int) bool { return pairLess(want[i], want[j]) })
		if len(want) > MaxPairsPerPMC {
			want = want[:MaxPairsPerPMC]
		}
		if len(want) == 0 {
			want = nil
		}
		if !reflect.DeepEqual(e.Pairs, want) {
			t.Fatalf("trial %d: addPair retained %v, want k-smallest %v (stream %v)",
				trial, e.Pairs, want, stream)
		}
		if n > 0 {
			entry := set.Entries[key]
			if entry.PairCount != int64(n) {
				t.Fatalf("trial %d: PairCount %d, want exact stream length %d", trial, entry.PairCount, n)
			}
			if !reflect.DeepEqual(entry.Pairs, want) {
				t.Fatalf("trial %d: Set.Add retained %v, want %v", trial, entry.Pairs, want)
			}
			if set.TotalCombinations != int64(n) {
				t.Fatalf("trial %d: TotalCombinations %d, want %d", trial, set.TotalCombinations, n)
			}
		}
	}
}
