package pmc

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"

	"snowboard/internal/trace"
)

// Compact binary serialization for the two big analysis artifacts:
//
// Profile sets ("SBPS") carry the shared-memory access set of every corpus
// test plus its double-fetch leader marks — the output of the profiling
// stage that took the paper 40 machine-hours and was reused across all
// eleven generation strategies of Table 3. Accesses ride the delta/varint
// trace codec (trace.WriteBlock); DFLeader marks are delta-coded sorted
// indices.
//
// PMC sets ("SBPM") carry the identified PMC database: entries in
// canonical key order (so equal sets encode to identical bytes and content
// addresses are stable), each with its bounded pair list and uncapped pair
// count.
//
// Both decoders are hardened: structural violations yield errors wrapping
// ErrBadProfiles/ErrBadSet, never panics, and counts are sanity-capped
// before allocation.

const (
	profilesMagic   = "SBPS"
	profilesVersion = 1
	setMagic        = "SBPM"
	setVersion      = 1

	maxProfiles       = 1 << 22
	maxEntries        = 1 << 24
	maxCombinations   = int64(1) << 50
	maxDecodedTestID  = 1 << 31
	maxDecodedPairRef = 1 << 31
)

// ProfilesCodecVersion and SetCodecVersion identify the artifact encodings;
// stage digests mix them in so a format change invalidates stored artifacts
// instead of misdecoding them.
const (
	ProfilesCodecVersion = profilesVersion
	SetCodecVersion      = setVersion
)

// ErrBadProfiles reports a malformed serialized profile set.
var ErrBadProfiles = errors.New("pmc: malformed profile set encoding")

// ErrBadSet reports a malformed serialized PMC set.
var ErrBadSet = errors.New("pmc: malformed PMC set encoding")

// EncodeProfiles writes the profile set to w in the compact canonical
// format. DFLeader maps are emitted as sorted true-mark indices, so two
// semantically equal profile sets (false entries are equivalent to absent
// ones) encode to identical bytes.
func EncodeProfiles(w io.Writer, profiles []Profile) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(profilesMagic); err != nil {
		return err
	}
	if err := bw.WriteByte(profilesVersion); err != nil {
		return err
	}
	var scratch [binary.MaxVarintLen64]byte
	putU := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		_, err := bw.Write(scratch[:n])
		return err
	}
	if err := putU(uint64(len(profiles))); err != nil {
		return err
	}
	for i := range profiles {
		p := &profiles[i]
		if err := putU(uint64(p.TestID)); err != nil {
			return err
		}
		if err := trace.WriteBlock(bw, &p.Accesses); err != nil {
			return err
		}
		marks := make([]int, 0, len(p.DFLeader))
		for idx, on := range p.DFLeader {
			if on {
				marks = append(marks, idx)
			}
		}
		sort.Ints(marks)
		if err := putU(uint64(len(marks))); err != nil {
			return err
		}
		prev := 0
		for _, m := range marks {
			if err := putU(uint64(m - prev)); err != nil {
				return err
			}
			prev = m
		}
	}
	return bw.Flush()
}

// DecodeProfiles parses a compact profile set. DFLeader marks must index
// into the profile's accesses and be strictly increasing.
func DecodeProfiles(r io.Reader) ([]Profile, error) {
	// Clamp the preallocation: the count is untrusted until profiles arrive.
	out := make([]Profile, 0, 1024)
	err := StreamProfiles(r, func(p Profile) error {
		out = append(out, p)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// errStopStream signals early termination requested by a StreamProfiles
// callback (distinguished from a decode failure).
var errStopStream = errors.New("pmc: profile stream stopped")

// StopStream, returned from a StreamProfiles callback, terminates the
// stream early without error.
func StopStream() error { return errStopStream }

// StreamProfiles parses an SBPS profile set one profile at a time, calling
// fn for each — the streaming core DecodeProfiles is built on. The whole
// set is never materialized, so identification can ingest corpora of any
// size in bounded memory (Incremental.IngestStream). fn may return
// StopStream() to end the scan early; any other error aborts the stream
// and is returned as-is.
func StreamProfiles(r io.Reader, fn func(Profile) error) error {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return fmt.Errorf("%w: %v", ErrBadProfiles, err)
	}
	if string(magic[:]) != profilesMagic {
		return fmt.Errorf("%w: bad magic %q", ErrBadProfiles, magic)
	}
	ver, err := br.ReadByte()
	if err != nil || ver != profilesVersion {
		return fmt.Errorf("%w: version %d", ErrBadProfiles, ver)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil || count > maxProfiles {
		return fmt.Errorf("%w: profile count", ErrBadProfiles)
	}
	for i := uint64(0); i < count; i++ {
		testID, err := binary.ReadUvarint(br)
		if err != nil || testID > maxDecodedTestID {
			return fmt.Errorf("%w: profile %d: test id", ErrBadProfiles, i)
		}
		accs, err := trace.ReadBlock(br)
		if err != nil {
			return fmt.Errorf("%w: profile %d: %v", ErrBadProfiles, i, err)
		}
		nmarks, err := binary.ReadUvarint(br)
		if err != nil || nmarks > uint64(accs.Len()) {
			return fmt.Errorf("%w: profile %d: mark count", ErrBadProfiles, i)
		}
		df := make(map[int]bool, nmarks)
		idx, first := 0, true
		for m := uint64(0); m < nmarks; m++ {
			d, err := binary.ReadUvarint(br)
			if err != nil {
				return fmt.Errorf("%w: profile %d: mark %d", ErrBadProfiles, i, m)
			}
			if !first && d == 0 {
				return fmt.Errorf("%w: profile %d: marks not strictly increasing", ErrBadProfiles, i)
			}
			idx += int(d)
			first = false
			if idx < 0 || idx >= accs.Len() {
				return fmt.Errorf("%w: profile %d: mark index %d out of range", ErrBadProfiles, i, idx)
			}
			df[idx] = true
		}
		if err := fn(Profile{TestID: int(testID), Accesses: accs, DFLeader: df}); err != nil {
			if errors.Is(err, errStopStream) {
				return nil
			}
			return err
		}
	}
	return nil
}

// pmcLess orders PMCs canonically (keyLess is shared with triple.go):
// write key, read key, then DFLeader.
func pmcLess(a, b PMC) bool {
	if a.Write != b.Write {
		return keyLess(a.Write, b.Write)
	}
	if a.Read != b.Read {
		return keyLess(a.Read, b.Read)
	}
	return !a.DFLeader && b.DFLeader
}

// EncodeSet writes the PMC database to w in the compact canonical format:
// entries sorted by (write key, read key, DFLeader), so equal sets — no
// matter the identification sharding or merge order that built them —
// encode to identical bytes.
func EncodeSet(w io.Writer, s *Set) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(setMagic); err != nil {
		return err
	}
	if err := bw.WriteByte(setVersion); err != nil {
		return err
	}
	var scratch [binary.MaxVarintLen64]byte
	putU := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		_, err := bw.Write(scratch[:n])
		return err
	}
	putKey := func(k Key) error {
		if err := putU(uint64(k.Ins)); err != nil {
			return err
		}
		if err := putU(k.Addr); err != nil {
			return err
		}
		if err := bw.WriteByte(k.Size); err != nil {
			return err
		}
		return putU(k.Val)
	}
	if err := putU(uint64(s.TotalCombinations)); err != nil {
		return err
	}
	keys := make([]PMC, 0, len(s.Entries))
	for k := range s.Entries {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return pmcLess(keys[i], keys[j]) })
	if err := putU(uint64(len(keys))); err != nil {
		return err
	}
	for _, k := range keys {
		e := s.Entries[k]
		if err := putKey(k.Write); err != nil {
			return err
		}
		if err := putKey(k.Read); err != nil {
			return err
		}
		var df byte
		if k.DFLeader {
			df = 1
		}
		if err := bw.WriteByte(df); err != nil {
			return err
		}
		if err := putU(uint64(e.PairCount)); err != nil {
			return err
		}
		if err := putU(uint64(len(e.Pairs))); err != nil {
			return err
		}
		for _, pr := range e.Pairs {
			if err := putU(uint64(pr.Writer)); err != nil {
				return err
			}
			if err := putU(uint64(pr.Reader)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// DecodeSet parses a compact PMC database. Pair lists must respect the
// MaxPairsPerPMC bound and canonical pair order; pair counts and totals
// must be plausible.
func DecodeSet(r io.Reader) (*Set, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSet, err)
	}
	if string(magic[:]) != setMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadSet, magic)
	}
	ver, err := br.ReadByte()
	if err != nil || ver != setVersion {
		return nil, fmt.Errorf("%w: version %d", ErrBadSet, ver)
	}
	getU := func(what string) (uint64, error) {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return 0, fmt.Errorf("%w: %s: %v", ErrBadSet, what, err)
		}
		return v, nil
	}
	getKey := func(what string) (Key, error) {
		var k Key
		ins, err := getU(what + " ins")
		if err != nil {
			return k, err
		}
		addr, err := getU(what + " addr")
		if err != nil {
			return k, err
		}
		size, err := br.ReadByte()
		if err != nil {
			return k, fmt.Errorf("%w: %s size: %v", ErrBadSet, what, err)
		}
		val, err := getU(what + " val")
		if err != nil {
			return k, err
		}
		if size == 0 || size > 8 {
			return k, fmt.Errorf("%w: %s size %d", ErrBadSet, what, size)
		}
		return Key{Ins: trace.Ins(ins), Addr: addr, Size: size, Val: val}, nil
	}
	total, err := getU("total combinations")
	if err != nil || int64(total) < 0 || int64(total) > maxCombinations {
		return nil, fmt.Errorf("%w: total combinations", ErrBadSet)
	}
	count, err := getU("entry count")
	if err != nil || count > maxEntries {
		return nil, fmt.Errorf("%w: entry count", ErrBadSet)
	}
	set := NewSet()
	set.TotalCombinations = int64(total)
	for i := uint64(0); i < count; i++ {
		wk, err := getKey("write key")
		if err != nil {
			return nil, err
		}
		rk, err := getKey("read key")
		if err != nil {
			return nil, err
		}
		df, err := br.ReadByte()
		if err != nil || df > 1 {
			return nil, fmt.Errorf("%w: entry %d: df flag", ErrBadSet, i)
		}
		pairCount, err := getU("pair count")
		if err != nil || int64(pairCount) < 0 || int64(pairCount) > maxCombinations {
			return nil, fmt.Errorf("%w: entry %d: pair count", ErrBadSet, i)
		}
		npairs, err := getU("pair list length")
		if err != nil || npairs > MaxPairsPerPMC || uint64(pairCount) < npairs {
			return nil, fmt.Errorf("%w: entry %d: pair list length", ErrBadSet, i)
		}
		p := PMC{Write: wk, Read: rk, DFLeader: df == 1}
		if _, dup := set.Entries[p]; dup {
			return nil, fmt.Errorf("%w: entry %d: duplicate PMC", ErrBadSet, i)
		}
		e := &Entry{PMC: p, PairCount: int64(pairCount)}
		for j := uint64(0); j < npairs; j++ {
			w, err := getU("pair writer")
			if err != nil || w > maxDecodedPairRef {
				return nil, fmt.Errorf("%w: entry %d pair %d: writer", ErrBadSet, i, j)
			}
			rd, err := getU("pair reader")
			if err != nil || rd > maxDecodedPairRef {
				return nil, fmt.Errorf("%w: entry %d pair %d: reader", ErrBadSet, i, j)
			}
			pr := Pair{Writer: int(w), Reader: int(rd)}
			// Non-strict: pair lists keep multiplicity, so equal
			// neighbours are legal; only descending order is malformed.
			if j > 0 && pairLess(pr, e.Pairs[j-1]) {
				return nil, fmt.Errorf("%w: entry %d: pairs not in canonical order", ErrBadSet, i)
			}
			e.Pairs = append(e.Pairs, pr)
		}
		set.Entries[p] = e
	}
	return set, nil
}
