package difftest

import (
	"bytes"
	"math/rand"
	"testing"

	"snowboard/internal/pmc"
)

// TestIncrementalEquivalence is the differential harness proper: for many
// seeded corpora and option variants, feeding the corpus to an Incremental
// in k batches — for k spanning one batch, a few, and one-profile-per-
// batch, in corpus order and in shuffled batch orders, at worker counts 1,
// 2, and 8 — must produce a set deep-equal (entries, DFLeader, bounded
// pair lists, pair counts, TotalCombinations) to a one-shot Identify over
// the whole corpus. Run under -race, this also exercises the parallel
// delta scans for data races.
func TestIncrementalEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	trials := 10 // full matrix per trial: 4 partitions × (3 worker counts + 2 shuffles)
	if testing.Short() {
		trials = 4
	}
	for trial := 0; trial < trials; trial++ {
		opt := pmc.DefaultOptions()
		if trial%3 == 1 {
			opt.AllowSelfPairs = false
		}
		if trial%5 == 2 {
			opt.SkipValueFilter = true
		}
		profiles := GenCorpus(rng, 6+rng.Intn(10))
		want := pmc.Identify(profiles, opt)

		for _, k := range []int{1, 2, 7, len(profiles)} {
			batches := Partition(profiles, k)

			// Corpus order, at several worker counts.
			for _, workers := range []int{1, 2, 8} {
				inc := pmc.NewIncremental(opt)
				for _, b := range batches {
					inc.AddBatchParallel(b, workers)
				}
				if d := Diff(want, inc.Set()); d != "" {
					t.Fatalf("trial %d k=%d workers=%d: incremental diverges from one-shot Identify:\n%s",
						trial, k, workers, d)
				}
				if inc.Profiles() != len(profiles) || inc.Batches() != len(batches) {
					t.Fatalf("trial %d k=%d: accounting: %d profiles in %d batches, want %d in %d",
						trial, k, inc.Profiles(), inc.Batches(), len(profiles), len(batches))
				}
			}

			// Shuffled batch orders: identification is order-independent, so
			// any arrival permutation must land on the same set.
			for s := 0; s < 2; s++ {
				order := rng.Perm(len(batches))
				inc := pmc.NewIncremental(opt)
				for _, i := range order {
					inc.AddBatch(batches[i])
				}
				if d := Diff(want, inc.Set()); d != "" {
					t.Fatalf("trial %d k=%d order %v: shuffled batch order diverges:\n%s",
						trial, k, order, d)
				}
			}
		}
	}
}

// TestIngestStreamEquivalence feeds the SBPS encoding of a corpus through
// Incremental.IngestStream at several batch sizes and checks the result
// against a one-shot Identify — the streaming decode path must classify
// exactly like the materialized one.
func TestIngestStreamEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 6; trial++ {
		opt := pmc.DefaultOptions()
		profiles := GenCorpus(rng, 5+rng.Intn(12))
		want := pmc.Identify(profiles, opt)
		var buf bytes.Buffer
		if err := pmc.EncodeProfiles(&buf, profiles); err != nil {
			t.Fatalf("trial %d: encode: %v", trial, err)
		}
		for _, batchSize := range []int{1, 3, 64} {
			inc := pmc.NewIncremental(opt)
			if err := inc.IngestStream(bytes.NewReader(buf.Bytes()), batchSize, 2); err != nil {
				t.Fatalf("trial %d batch=%d: ingest: %v", trial, batchSize, err)
			}
			if d := Diff(want, inc.Set()); d != "" {
				t.Fatalf("trial %d batch=%d: streamed ingest diverges:\n%s", trial, batchSize, d)
			}
		}
	}
}

// TestPartitionCoversCorpus pins the partition contract the harness rests
// on: batches are contiguous, non-overlapping, and concatenate back to the
// input for every k.
func TestPartitionCoversCorpus(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	profiles := GenCorpus(rng, 11)
	for k := -1; k <= len(profiles)+2; k++ {
		batches := Partition(profiles, k)
		n := 0
		for _, b := range batches {
			for i := range b {
				if b[i].TestID != profiles[n].TestID {
					t.Fatalf("k=%d: batch element %d is profile %d, want %d", k, n, b[i].TestID, profiles[n].TestID)
				}
				n++
			}
		}
		if n != len(profiles) {
			t.Fatalf("k=%d: partition covers %d profiles, want %d", k, n, len(profiles))
		}
		if k >= 1 && k <= len(profiles) && len(batches) != k {
			t.Fatalf("k=%d: got %d batches", k, len(batches))
		}
	}
}

// TestDiffDetectsDivergence is the harness's self-test: Diff must return
// empty only for deep-equal sets and name the divergence otherwise —
// including pair-count-only and DFLeader-only differences that coarser
// comparisons would miss.
func TestDiffDetectsDivergence(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	profiles := GenCorpus(rng, 8)
	a := pmc.Identify(profiles, pmc.DefaultOptions())
	b := pmc.Identify(profiles, pmc.DefaultOptions())
	if d := Diff(a, b); d != "" {
		t.Fatalf("equal sets diff non-empty:\n%s", d)
	}
	// Perturb one entry's pair count only.
	for _, e := range b.Entries {
		e.PairCount++
		b.TotalCombinations++
		break
	}
	if Diff(a, b) == "" {
		t.Fatal("pair-count divergence not detected")
	}
}
