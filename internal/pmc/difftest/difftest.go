// Package difftest is the differential equivalence harness for PMC
// identification: it generates seeded synthetic profile corpora, partitions
// them into batches, and renders PMC sets canonically so tests can assert —
// structurally, field by field — that incremental identification
// (pmc.Incremental) fed any partition of a corpus, in any batch order, at
// any worker count, produces exactly the set a one-shot pmc.Identify
// returns.
//
// The package is a library, not a test file, so both the in-package tests
// and the external fuzz target (FuzzIncrementalIdentify) share one
// generator and one comparison; a divergence found by either reproduces in
// the other from the same seed or byte string.
package difftest

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"snowboard/internal/pmc"
	"snowboard/internal/trace"
)

// insPool is the narrow instruction pool the generator draws from: few
// enough distinct instructions that many (writer, reader) pairs collide on
// the same PMC keys and push the bounded pair lists past MaxPairsPerPMC —
// the regime where merge-order bugs would show.
var insPool = []trace.Ins{
	trace.DefIns("difftest:w1"),
	trace.DefIns("difftest:w2"),
	trace.DefIns("difftest:r1"),
	trace.DefIns("difftest:r2"),
}

// GenCorpus produces n synthetic profiles from a narrow address/value pool,
// with double-fetch leader marks sprinkled on reads. Everything derives
// from rng, so a corpus regenerates exactly from its seed.
func GenCorpus(rng *rand.Rand, n int) []pmc.Profile {
	profiles := make([]pmc.Profile, n)
	for i := range profiles {
		var accs trace.Block
		df := make(map[int]bool)
		m := 4 + rng.Intn(12)
		for j := 0; j < m; j++ {
			kind := trace.Read
			if rng.Intn(2) == 0 {
				kind = trace.Write
			}
			accs.Append(trace.Access{
				Ins:  insPool[rng.Intn(len(insPool))],
				Kind: kind,
				Addr: 0x100 + uint64(rng.Intn(12)),
				Size: uint8(1 + rng.Intn(8)),
				Val:  uint64(rng.Intn(4)),
			})
			if kind == trace.Read && rng.Intn(4) == 0 {
				df[j] = true
			}
		}
		profiles[i] = pmc.Profile{TestID: i, Accesses: accs, DFLeader: df}
	}
	return profiles
}

// Partition splits profiles into k contiguous batches whose concatenation
// is the input (k is clamped to [1, len(profiles)]; empty input yields
// nil). Batch sizes differ by at most one, so k=len(profiles) is the
// one-profile-per-batch extreme and k=1 the single-batch one.
func Partition(profiles []pmc.Profile, k int) [][]pmc.Profile {
	if len(profiles) == 0 {
		return nil
	}
	if k < 1 {
		k = 1
	}
	if k > len(profiles) {
		k = len(profiles)
	}
	out := make([][]pmc.Profile, 0, k)
	start := 0
	for b := 0; b < k; b++ {
		end := start + (len(profiles)-start)/(k-b)
		out = append(out, profiles[start:end])
		start = end
	}
	return out
}

// render flattens a Set into canonical lines: one per entry — key, DF flag,
// full bounded pair list, uncapped pair count — plus a trailer with the
// aggregate counts. Two sets render identically iff they are deep-equal in
// every field the equivalence contract covers.
func render(s *pmc.Set) []string {
	out := make([]string, 0, len(s.Entries)+1)
	for key, e := range s.Entries {
		out = append(out, fmt.Sprintf("%v|df=%v|pairs=%v|count=%d", key, e.PMC.DFLeader, e.Pairs, e.PairCount))
	}
	sort.Strings(out)
	out = append(out, fmt.Sprintf("entries=%d|total=%d", s.Len(), s.TotalCombinations))
	return out
}

// Diff compares two PMC sets structurally — entries, DFLeader flags,
// bounded pair lists, pair counts, and TotalCombinations — and returns a
// human-readable description of the first divergences, or "" when the sets
// are deep-equal.
func Diff(want, got *pmc.Set) string {
	w, g := render(want), render(got)
	if len(w) == len(g) {
		eq := true
		for i := range w {
			if w[i] != g[i] {
				eq = false
				break
			}
		}
		if eq {
			return ""
		}
	}
	wset := make(map[string]bool, len(w))
	for _, l := range w {
		wset[l] = true
	}
	gset := make(map[string]bool, len(g))
	for _, l := range g {
		gset[l] = true
	}
	var b strings.Builder
	miss, extra := 0, 0
	for _, l := range w {
		if !gset[l] {
			if miss < 5 {
				fmt.Fprintf(&b, "missing: %s\n", l)
			}
			miss++
		}
	}
	for _, l := range g {
		if !wset[l] {
			if extra < 5 {
				fmt.Fprintf(&b, "extra:   %s\n", l)
			}
			extra++
		}
	}
	fmt.Fprintf(&b, "%d missing, %d extra lines", miss, extra)
	return b.String()
}

// FromBytes decodes an arbitrary byte string into profiles — the fuzz-side
// twin of GenCorpus. Eight bytes describe one access (kind+DF mark,
// instruction, address offset, size, two value bytes, profile slot, spare),
// clamped into ranges Identify accepts, so every input is a valid corpus
// and the fuzzer explores identification behavior, not decoder rejects.
func FromBytes(data []byte) []pmc.Profile {
	const perAccess = 8
	profiles := make([]pmc.Profile, 1+len(data)/(perAccess*4))
	for i := range profiles {
		profiles[i].TestID = i
		profiles[i].DFLeader = make(map[int]bool)
	}
	for i := 0; i+perAccess <= len(data); i += perAccess {
		b := data[i : i+perAccess]
		kind := trace.Read
		if b[0]&1 == 0 {
			kind = trace.Write
		}
		acc := trace.Access{
			Ins:  trace.Ins(uint32(b[1])),
			Kind: kind,
			Addr: 0x1000 + uint64(b[2]),
			Size: 1 + b[3]%8,
			Val:  uint64(b[4]) | uint64(b[5])<<8,
		}
		slot := int(b[6]) % len(profiles)
		p := &profiles[slot]
		p.Accesses.Append(acc)
		if kind == trace.Read && b[0]&2 != 0 {
			p.DFLeader[p.Accesses.Len()-1] = true
		}
	}
	return profiles
}
