package pmc

import (
	"fmt"
	"math/rand"
	"testing"

	"snowboard/internal/trace"
)

// benchCorpus generates n profiles with address spread proportional to n,
// keeping per-read collision density roughly constant so the full identify
// baseline scales near-linearly and the append-one measurement isolates the
// incremental machinery (seal amortization + delta scans) rather than
// pathological collision blowup.
func benchCorpus(rng *rand.Rand, n, firstTest int) []Profile {
	insPool := []trace.Ins{insW1, insW2, insR1, insR2}
	spread := 4 * n
	if spread < 64 {
		spread = 64
	}
	profiles := make([]Profile, n)
	for i := range profiles {
		var accs trace.Block
		for j := 0; j < 8; j++ {
			kind := trace.Read
			if j%2 == 0 {
				kind = trace.Write
			}
			accs.Append(trace.Access{
				Ins:  insPool[rng.Intn(len(insPool))],
				Kind: kind,
				Addr: 0x10000 + uint64(rng.Intn(spread)),
				Size: uint8(1 + rng.Intn(8)),
				Val:  uint64(rng.Intn(4)),
			})
		}
		profiles[i] = Profile{TestID: firstTest + i, Accesses: accs}
	}
	return profiles
}

// BenchmarkIdentifyIncremental quantifies the O(delta) claim behind the
// incremental engine: "full" re-identifies the whole corpus from scratch
// (what a resumed campaign had to pay before SBPI snapshots), "append1"
// adds a single profile to an already-built incremental index. The
// acceptance bar — append1 under 5% of full at the 10k corpus — is checked
// by the recorded numbers in BENCH_incr.json. The 100k corpus is skipped
// under -short so the CI smoke stays fast.
func BenchmarkIdentifyIncremental(b *testing.B) {
	for _, n := range []int{1_000, 10_000, 100_000} {
		if n > 10_000 && testing.Short() {
			continue
		}
		profiles := benchCorpus(rand.New(rand.NewSource(int64(n))), n, 0)

		b.Run(fmt.Sprintf("full/%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				IdentifyParallel(profiles, DefaultOptions(), 4)
			}
		})

		b.Run(fmt.Sprintf("append1/%d", n), func(b *testing.B) {
			inc := NewIncremental(DefaultOptions())
			inc.AddBatchParallel(profiles, 4)
			// A pool of fresh profiles to append, drawn round-robin so each
			// iteration ingests a batch of exactly one unseen profile.
			extra := benchCorpus(rand.New(rand.NewSource(int64(n)+1)), 256, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := extra[i%len(extra)]
				p.TestID = n + i
				inc.AddBatch([]Profile{p})
			}
		})
	}
}
