package pmc

import (
	"reflect"
	"testing"

	"snowboard/internal/trace"
)

// TestIdentifyTriplesShuffleInvariant pins triple ordering against map
// iteration order. The set deliberately contains two entries sharing both
// write and read keys, differing only in DFLeader — the exact tie the
// group sort must break explicitly, or the output order follows the
// randomized iteration over Set.Entries.
func TestIdentifyTriplesShuffleInvariant(t *testing.T) {
	w := Key{Ins: trace.DefIns("triple_shuffle:pub"), Addr: 0x100, Size: 8, Val: 1}
	r1 := Key{Ins: trace.DefIns("triple_shuffle:get1"), Addr: 0x100, Size: 8, Val: 0}
	r2 := Key{Ins: trace.DefIns("triple_shuffle:get2"), Addr: 0x108, Size: 8, Val: 0}

	build := func() *Set {
		s := NewSet()
		// DFLeader tie: same write, same read.
		s.Add(PMC{Write: w, Read: r1, DFLeader: false}, Pair{Writer: 0, Reader: 1})
		s.Add(PMC{Write: w, Read: r1, DFLeader: true}, Pair{Writer: 0, Reader: 2})
		s.Add(PMC{Write: w, Read: r2}, Pair{Writer: 0, Reader: 3})
		return s
	}
	base := IdentifyTriples(build(), 0)
	if len(base) != 2 {
		t.Fatalf("triples: %d, want 2 (tied entries each pair with the distinct read)", len(base))
	}
	for run := 0; run < 100; run++ {
		if got := IdentifyTriples(build(), 0); !reflect.DeepEqual(got, base) {
			t.Fatalf("run %d: triple order diverged:\n%+v\nvs\n%+v", run, got, base)
		}
	}
}
