package pmc

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"

	"snowboard/internal/obs"
	"snowboard/internal/par"
	"snowboard/internal/trace"
)

// Incremental identification: the paper computes 169 billion PMCs over
// 129,876 profiles, and re-pairing the whole corpus per campaign is
// O(corpus²). Incremental instead maintains a cumulative PMC Set plus one
// appendable write index, and on each new batch of profiles runs exactly
// two delta scans:
//
//	new readers × all writes (including the batch's own), and
//	old readers × new writes.
//
// Every (reader access, indexed write) candidate of the union is therefore
// scanned exactly once across the lifetime of the Incremental, no matter
// how the corpus is partitioned into batches or in which order the batches
// arrive — so the resulting Set is deep-equal to a one-shot batch Identify
// over the union (the difftest package proves this property under -race at
// several worker counts).
//
// Memory stays bounded by the analysis state, not the traces: ingested
// profiles are compacted to readerViews (read accesses only) and
// self-contained index write records; the profile blocks themselves are
// not retained and can be streamed from the SBPS codec one profile at a
// time (IngestStream).

// Incremental metrics (process-wide registry, resolved once).
var (
	mIncrBatches    = obs.C(obs.MIncrBatches)
	mIncrDeltaPairs = obs.C(obs.MIncrDeltaPairs)
	mIncrReuse      = obs.G(obs.MIncrReuse)
)

// readerView is the compact retained form of one ingested profile: just
// the read accesses (the four features Algorithm 1 needs) plus the
// double-fetch leader marks, in columnar layout. Writes live in the
// cumulative index; the full profile block is dropped after ingestion.
type readerView struct {
	test  int32
	ins   []trace.Ins
	addrs []uint64
	vals  []uint64
	sizes []uint8
	df    []bool
}

// newReaderView compacts a profile into its reader view.
func newReaderView(p *Profile) readerView {
	n := 0
	for ai := 0; ai < p.Accesses.Len(); ai++ {
		if p.Accesses.KindAt(ai) == trace.Read {
			n++
		}
	}
	rv := readerView{
		test:  int32(p.TestID),
		ins:   make([]trace.Ins, 0, n),
		addrs: make([]uint64, 0, n),
		vals:  make([]uint64, 0, n),
		sizes: make([]uint8, 0, n),
		df:    make([]bool, 0, n),
	}
	for ai := 0; ai < p.Accesses.Len(); ai++ {
		if p.Accesses.KindAt(ai) != trace.Read {
			continue
		}
		rv.ins = append(rv.ins, p.Accesses.InsAt(ai))
		rv.addrs = append(rv.addrs, p.Accesses.AddrAt(ai))
		rv.vals = append(rv.vals, p.Accesses.ValAt(ai))
		rv.sizes = append(rv.sizes, p.Accesses.SizeAt(ai))
		rv.df = append(rv.df, p.DFLeader[ai])
	}
	return rv
}

// scan runs this reader's accesses against a sealed write index, adding
// every identified PMC to set — the incremental analogue of
// identifyReader, classifying through the same shared helper.
func (rv *readerView) scan(ix *index, opt Options, set *Set) {
	for i := range rv.addrs {
		r := trace.Access{Ins: rv.ins[i], Kind: trace.Read, Addr: rv.addrs[i], Size: rv.sizes[i], Val: rv.vals[i]}
		ix.overlapping(r.Addr, r.End(), func(w writeRec) {
			classify(&r, w, rv.df[i], int(rv.test), opt, set)
		})
	}
}

// Incremental is a PMC database that accretes: feed it profile batches
// with AddBatch and Set() is always deep-equal to Identify over every
// profile fed so far.
type Incremental struct {
	opt     Options
	set     *Set
	idx     *index
	readers []readerView

	batches  int
	profiles int

	// loaded is the TotalCombinations carried in from a decoded snapshot
	// (zero for a fresh Incremental); the reuse-ratio gauge reports how
	// much of the cumulative result the latest batch did not re-scan.
	loaded int64
}

// NewIncremental returns an empty incremental identifier.
func NewIncremental(opt Options) *Incremental {
	return &Incremental{opt: opt, set: NewSet(), idx: newIndex()}
}

// Set returns the cumulative PMC database. The caller must not mutate it
// while more batches are being added.
func (inc *Incremental) Set() *Set { return inc.set }

// Batches reports how many batches have been ingested (including those
// restored from a snapshot).
func (inc *Incremental) Batches() int { return inc.batches }

// Profiles reports how many profiles have been ingested.
func (inc *Incremental) Profiles() int { return inc.profiles }

// Generation reports the write-index generation (one per seal, i.e. one
// per non-empty ingested batch plus snapshot restores).
func (inc *Incremental) Generation() uint64 { return inc.idx.gen }

// AddBatch ingests one batch of profiles serially.
func (inc *Incremental) AddBatch(batch []Profile) { inc.AddBatchParallel(batch, 1) }

// AddBatchParallel ingests one batch of profiles, fanning the two delta
// scans across workers goroutines (0 = GOMAXPROCS). Shard merges fold in
// deterministic order, so the cumulative Set is identical for any worker
// count — the same contract IdentifyParallel has.
func (inc *Incremental) AddBatchParallel(batch []Profile, workers int) {
	if len(batch) == 0 {
		return
	}
	before := inc.set.TotalCombinations

	// Index the batch's writes on their own: old readers diff against
	// exactly these, never against writes they have already seen.
	delta := newIndex()
	for pi := range batch {
		p := &batch[pi]
		for ai := 0; ai < p.Accesses.Len(); ai++ {
			if p.Accesses.IsWriteAt(ai) {
				delta.addWrite(writeRec{
					addr: p.Accesses.AddrAt(ai),
					val:  p.Accesses.ValAt(ai),
					ins:  p.Accesses.InsAt(ai),
					size: p.Accesses.SizeAt(ai),
					test: int32(p.TestID),
				})
			}
		}
	}
	delta.seal()

	// Old readers × new writes.
	if delta.writeCount() > 0 && len(inc.readers) > 0 {
		shards := par.Map(workers, len(inc.readers), func(_, i int) *Set {
			s := NewSet()
			inc.readers[i].scan(delta, inc.opt, s)
			return s
		})
		for _, s := range shards {
			inc.set.Merge(s)
		}
	}

	// Fold the new writes into the cumulative index (amortized re-seal:
	// merged starts, dirty-bucket resorts only).
	for _, b := range delta.buckets {
		for _, w := range b.writes {
			inc.idx.addWrite(w)
		}
	}
	inc.idx.seal()

	// New readers × all writes (old and new alike).
	views := make([]readerView, len(batch))
	for i := range batch {
		views[i] = newReaderView(&batch[i])
	}
	shards := par.Map(workers, len(views), func(_, i int) *Set {
		s := NewSet()
		views[i].scan(inc.idx, inc.opt, s)
		return s
	})
	for _, s := range shards {
		inc.set.Merge(s)
	}
	inc.readers = append(inc.readers, views...)
	inc.batches++
	inc.profiles += len(batch)

	scanned := inc.set.TotalCombinations - before
	mIncrBatches.Inc()
	mIncrDeltaPairs.Add(scanned)
	if total := inc.set.TotalCombinations; total > 0 {
		mIncrReuse.Set((total - scanned) * 100 / total)
	}
	obs.G(obs.MPMCIdentified).Set(int64(inc.set.Len()))
	obs.G(obs.MPMCCombinations).Set(inc.set.TotalCombinations)
	obs.Emit(obs.EvPMCIncremental, obs.A("batch", inc.batches),
		obs.A("profiles", len(batch)), obs.A("delta", scanned),
		obs.A("keys", inc.set.Len()))
}

// IngestStream feeds an SBPS-encoded profile set (EncodeProfiles) into the
// identifier, decoding and compacting one batch of at most batchSize
// profiles at a time — at no point is the whole profile slice
// materialized, so memory stays bounded at any corpus size.
func (inc *Incremental) IngestStream(r io.Reader, batchSize, workers int) error {
	if batchSize <= 0 {
		batchSize = 64
	}
	batch := make([]Profile, 0, batchSize)
	err := StreamProfiles(r, func(p Profile) error {
		batch = append(batch, p)
		if len(batch) >= batchSize {
			inc.AddBatchParallel(batch, workers)
			batch = batch[:0]
		}
		return nil
	})
	if err != nil {
		return err
	}
	inc.AddBatchParallel(batch, workers)
	return nil
}

// SBPI snapshot codec. An Incremental serializes as the cumulative Set
// (embedded SBPM blob), the compacted reader views, and the flat write
// records of the index — everything needed to resume delta identification
// in another process. Readers sort by test id and writes by (addr, size,
// ins, val, test) before encoding, so two Incrementals in the same logical
// state encode to identical bytes regardless of the batch order that built
// them, and content addresses are stable.

const (
	incrementalMagic   = "SBPI"
	incrementalVersion = 1

	maxIncrementalSet    = 1 << 31
	maxIncrementalReads  = 1 << 28
	maxIncrementalWrites = 1 << 30
)

// IncrementalCodecVersion identifies the SBPI encoding; stage digests mix
// it in so a format change invalidates stored snapshots.
const IncrementalCodecVersion = incrementalVersion

// ErrBadIncremental reports a malformed serialized incremental index.
var ErrBadIncremental = errors.New("pmc: malformed incremental index encoding")

// EncodeIncremental writes the SBPI snapshot of inc to w.
func EncodeIncremental(w io.Writer, inc *Incremental) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(incrementalMagic); err != nil {
		return err
	}
	if err := bw.WriteByte(incrementalVersion); err != nil {
		return err
	}
	var scratch [binary.MaxVarintLen64]byte
	putU := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		_, err := bw.Write(scratch[:n])
		return err
	}
	if err := putU(uint64(inc.batches)); err != nil {
		return err
	}
	if err := putU(uint64(inc.profiles)); err != nil {
		return err
	}

	// Cumulative set as a length-prefixed SBPM blob (the nested codec
	// buffers independently, so it cannot share the stream position).
	var setBuf bytes.Buffer
	if err := EncodeSet(&setBuf, inc.set); err != nil {
		return err
	}
	if err := putU(uint64(setBuf.Len())); err != nil {
		return err
	}
	if _, err := bw.Write(setBuf.Bytes()); err != nil {
		return err
	}

	// Reader views, canonically ordered by test id (stable, so equal test
	// ids keep their relative order).
	order := make([]int, len(inc.readers))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return inc.readers[order[a]].test < inc.readers[order[b]].test })
	if err := putU(uint64(len(inc.readers))); err != nil {
		return err
	}
	for _, i := range order {
		rv := &inc.readers[i]
		if err := putU(uint64(rv.test)); err != nil {
			return err
		}
		if err := putU(uint64(len(rv.addrs))); err != nil {
			return err
		}
		for j := range rv.addrs {
			if err := putU(uint64(rv.ins[j])); err != nil {
				return err
			}
			if err := putU(rv.addrs[j]); err != nil {
				return err
			}
			if err := bw.WriteByte(rv.sizes[j]); err != nil {
				return err
			}
			if err := putU(rv.vals[j]); err != nil {
				return err
			}
			var df byte
			if rv.df[j] {
				df = 1
			}
			if err := bw.WriteByte(df); err != nil {
				return err
			}
		}
	}

	// Index writes, flat and canonically ordered; addresses delta-code
	// since the order is address-major.
	writes := make([]writeRec, 0, inc.idx.writeCount())
	for _, b := range inc.idx.buckets {
		writes = append(writes, b.writes...)
	}
	sort.Slice(writes, func(i, j int) bool {
		a, b := writes[i], writes[j]
		if a.addr != b.addr {
			return a.addr < b.addr
		}
		if a.size != b.size {
			return a.size < b.size
		}
		if a.ins != b.ins {
			return a.ins < b.ins
		}
		if a.val != b.val {
			return a.val < b.val
		}
		return a.test < b.test
	})
	if err := putU(uint64(len(writes))); err != nil {
		return err
	}
	prev := uint64(0)
	for _, wr := range writes {
		if err := putU(wr.addr - prev); err != nil {
			return err
		}
		prev = wr.addr
		if err := bw.WriteByte(wr.size); err != nil {
			return err
		}
		if err := putU(uint64(wr.ins)); err != nil {
			return err
		}
		if err := putU(wr.val); err != nil {
			return err
		}
		if err := putU(uint64(wr.test)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DecodeIncremental parses an SBPI snapshot and returns a resumable
// Incremental configured with opt (options are not serialized: the memo
// key that addresses a snapshot already pins them). The decoder is
// hardened like the other artifact codecs: structural violations yield
// errors wrapping ErrBadIncremental, never panics, and counts are
// sanity-capped before allocation.
func DecodeIncremental(r io.Reader, opt Options) (*Incremental, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadIncremental, err)
	}
	if string(magic[:]) != incrementalMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadIncremental, magic)
	}
	ver, err := br.ReadByte()
	if err != nil || ver != incrementalVersion {
		return nil, fmt.Errorf("%w: version %d", ErrBadIncremental, ver)
	}
	getU := func(what string) (uint64, error) {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return 0, fmt.Errorf("%w: %s: %v", ErrBadIncremental, what, err)
		}
		return v, nil
	}
	batches, err := getU("batch count")
	if err != nil || batches > maxProfiles {
		return nil, fmt.Errorf("%w: batch count", ErrBadIncremental)
	}
	profiles, err := getU("profile count")
	if err != nil || profiles > maxProfiles {
		return nil, fmt.Errorf("%w: profile count", ErrBadIncremental)
	}

	setLen, err := getU("set length")
	if err != nil || setLen > maxIncrementalSet {
		return nil, fmt.Errorf("%w: set length", ErrBadIncremental)
	}
	setBlob := make([]byte, setLen)
	if _, err := io.ReadFull(br, setBlob); err != nil {
		return nil, fmt.Errorf("%w: set blob: %v", ErrBadIncremental, err)
	}
	set, err := DecodeSet(bytes.NewReader(setBlob))
	if err != nil {
		return nil, fmt.Errorf("%w: embedded set: %v", ErrBadIncremental, err)
	}

	inc := &Incremental{opt: opt, set: set, idx: newIndex(),
		batches: int(batches), profiles: int(profiles), loaded: set.TotalCombinations}

	readerCount, err := getU("reader count")
	if err != nil || readerCount != profiles {
		return nil, fmt.Errorf("%w: reader count", ErrBadIncremental)
	}
	capHint := readerCount
	if capHint > 1024 {
		capHint = 1024
	}
	inc.readers = make([]readerView, 0, capHint)
	totalReads := uint64(0)
	for i := uint64(0); i < readerCount; i++ {
		test, err := getU("reader test id")
		if err != nil || test > maxDecodedTestID {
			return nil, fmt.Errorf("%w: reader %d: test id", ErrBadIncremental, i)
		}
		nreads, err := getU("read count")
		if err != nil {
			return nil, err
		}
		if totalReads += nreads; totalReads > maxIncrementalReads {
			return nil, fmt.Errorf("%w: reader %d: read count", ErrBadIncremental, i)
		}
		readCap := nreads
		if readCap > 4096 {
			readCap = 4096
		}
		rv := readerView{
			test:  int32(test),
			ins:   make([]trace.Ins, 0, readCap),
			addrs: make([]uint64, 0, readCap),
			vals:  make([]uint64, 0, readCap),
			sizes: make([]uint8, 0, readCap),
			df:    make([]bool, 0, readCap),
		}
		for j := uint64(0); j < nreads; j++ {
			ins, err := getU("read ins")
			if err != nil {
				return nil, err
			}
			addr, err := getU("read addr")
			if err != nil {
				return nil, err
			}
			size, err := br.ReadByte()
			if err != nil || size == 0 || size > maxAccessSize {
				return nil, fmt.Errorf("%w: reader %d read %d: size", ErrBadIncremental, i, j)
			}
			val, err := getU("read val")
			if err != nil {
				return nil, err
			}
			df, err := br.ReadByte()
			if err != nil || df > 1 {
				return nil, fmt.Errorf("%w: reader %d read %d: df flag", ErrBadIncremental, i, j)
			}
			rv.ins = append(rv.ins, trace.Ins(ins))
			rv.addrs = append(rv.addrs, addr)
			rv.vals = append(rv.vals, val)
			rv.sizes = append(rv.sizes, size)
			rv.df = append(rv.df, df == 1)
		}
		inc.readers = append(inc.readers, rv)
	}

	writeCount, err := getU("write count")
	if err != nil || writeCount > maxIncrementalWrites {
		return nil, fmt.Errorf("%w: write count", ErrBadIncremental)
	}
	prev := uint64(0)
	for i := uint64(0); i < writeCount; i++ {
		d, err := getU("write addr delta")
		if err != nil {
			return nil, err
		}
		addr := prev + d
		if addr < prev {
			return nil, fmt.Errorf("%w: write %d: address overflow", ErrBadIncremental, i)
		}
		prev = addr
		size, err := br.ReadByte()
		if err != nil || size == 0 || size > maxAccessSize {
			return nil, fmt.Errorf("%w: write %d: size", ErrBadIncremental, i)
		}
		ins, err := getU("write ins")
		if err != nil {
			return nil, err
		}
		val, err := getU("write val")
		if err != nil {
			return nil, err
		}
		test, err := getU("write test id")
		if err != nil || test > maxDecodedTestID {
			return nil, fmt.Errorf("%w: write %d: test id", ErrBadIncremental, i)
		}
		inc.idx.addWrite(writeRec{addr: addr, val: val, ins: trace.Ins(ins), size: size, test: int32(test)})
	}
	if writeCount > 0 || len(inc.readers) > 0 {
		inc.idx.seal()
	}
	if extra, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("%w: %d trailing bytes (first %#x)", ErrBadIncremental, br.Buffered()+1, extra)
	}
	return inc, nil
}
