package pmc

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"snowboard/internal/trace"
)

// incrCorpus generates a dense profile corpus with DF marks for SBPI tests
// (the richer cross-package generator lives in difftest; this one only
// needs to produce decodable state).
func incrCorpus(rng *rand.Rand, n int) []Profile {
	profiles := genProfiles(rng)
	for len(profiles) < n {
		profiles = append(profiles, genProfiles(rng)...)
	}
	profiles = profiles[:n]
	for i := range profiles {
		profiles[i].TestID = i
		df := make(map[int]bool)
		for ai := 0; ai < profiles[i].Accesses.Len(); ai++ {
			if profiles[i].Accesses.KindAt(ai) == trace.Read && rng.Intn(3) == 0 {
				df[ai] = true
			}
		}
		profiles[i].DFLeader = df
	}
	return profiles
}

// TestIncrementalRoundTrip: decode(encode(x)) restores an Incremental that
// (a) carries the same cumulative set and accounting, and (b) continues —
// fed the remaining batches, it lands on the same set as an uninterrupted
// incremental run and as a one-shot Identify. Re-encoding the decoded
// state must reproduce the bytes exactly (canonical form), which is what
// keeps SBPI content addresses stable across snapshot/restore cycles.
func TestIncrementalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 15; trial++ {
		opt := DefaultOptions()
		if trial%3 == 1 {
			opt.AllowSelfPairs = false
		}
		profiles := incrCorpus(rng, 6+rng.Intn(10))
		cut := 1 + rng.Intn(len(profiles)-1)
		want := flatten(Identify(profiles, opt))

		a := NewIncremental(opt)
		a.AddBatch(profiles[:cut])
		var bufA bytes.Buffer
		if err := EncodeIncremental(&bufA, a); err != nil {
			t.Fatalf("trial %d: encode: %v", trial, err)
		}

		dec, err := DecodeIncremental(bytes.NewReader(bufA.Bytes()), opt)
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if dec.Profiles() != cut || dec.Batches() != a.Batches() {
			t.Fatalf("trial %d: decoded accounting %d profiles/%d batches, want %d/%d",
				trial, dec.Profiles(), dec.Batches(), cut, a.Batches())
		}
		if got := flatten(dec.Set()); !reflect.DeepEqual(got, flatten(a.Set())) {
			t.Fatalf("trial %d: decoded set differs from encoded", trial)
		}

		// Re-encode must be byte-identical (canonical form).
		var buf2 bytes.Buffer
		if err := EncodeIncremental(&buf2, dec); err != nil {
			t.Fatalf("trial %d: re-encode: %v", trial, err)
		}
		if !bytes.Equal(bufA.Bytes(), buf2.Bytes()) {
			t.Fatalf("trial %d: SBPI encoding not canonical across decode", trial)
		}

		// Resume: the decoded identifier fed the rest equals the one-shot.
		dec.AddBatchParallel(profiles[cut:], 2)
		if got := flatten(dec.Set()); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: resumed identification diverges from one-shot Identify\ngot:  %v\nwant: %v",
				trial, got, want)
		}
	}
}

// TestIncrementalDecodeTruncated: every strict prefix of a valid SBPI
// encoding must fail with ErrBadIncremental, never panic or succeed.
func TestIncrementalDecodeTruncated(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	inc := NewIncremental(DefaultOptions())
	inc.AddBatch(incrCorpus(rng, 8))
	var buf bytes.Buffer
	if err := EncodeIncremental(&buf, inc); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for cut := 0; cut < len(data); cut += 3 {
		if _, err := DecodeIncremental(bytes.NewReader(data[:cut]), DefaultOptions()); !errors.Is(err, ErrBadIncremental) {
			t.Fatalf("prefix of %d/%d bytes: err = %v, want ErrBadIncremental", cut, len(data), err)
		}
	}
	// Trailing garbage is rejected too.
	if _, err := DecodeIncremental(bytes.NewReader(append(append([]byte(nil), data...), 0x7f)), DefaultOptions()); !errors.Is(err, ErrBadIncremental) {
		t.Fatalf("trailing byte: err = %v, want ErrBadIncremental", err)
	}
}

// TestIncrementalDecodeRejectsCorruptHeader covers the structural checks:
// wrong magic, wrong version, and reader/profile count mismatches.
func TestIncrementalDecodeRejectsCorruptHeader(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	inc := NewIncremental(DefaultOptions())
	inc.AddBatch(incrCorpus(rng, 4))
	var buf bytes.Buffer
	if err := EncodeIncremental(&buf, inc); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	bad := append([]byte(nil), good...)
	bad[0] = 'X'
	if _, err := DecodeIncremental(bytes.NewReader(bad), DefaultOptions()); !errors.Is(err, ErrBadIncremental) {
		t.Fatalf("bad magic: err = %v", err)
	}
	bad = append([]byte(nil), good...)
	bad[4] = incrementalVersion + 1
	if _, err := DecodeIncremental(bytes.NewReader(bad), DefaultOptions()); !errors.Is(err, ErrBadIncremental) {
		t.Fatalf("bad version: err = %v", err)
	}
}

// TestIncrementalEmpty pins the degenerate cases: an empty batch is a
// no-op, and an empty identifier round-trips.
func TestIncrementalEmpty(t *testing.T) {
	inc := NewIncremental(DefaultOptions())
	inc.AddBatch(nil)
	if inc.Batches() != 0 || inc.Profiles() != 0 || inc.Set().Len() != 0 {
		t.Fatalf("empty batch mutated state: %d batches, %d profiles", inc.Batches(), inc.Profiles())
	}
	var buf bytes.Buffer
	if err := EncodeIncremental(&buf, inc); err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeIncremental(bytes.NewReader(buf.Bytes()), DefaultOptions())
	if err != nil {
		t.Fatalf("decode empty: %v", err)
	}
	if dec.Set().Len() != 0 || dec.Profiles() != 0 {
		t.Fatalf("decoded empty identifier not empty")
	}
}
