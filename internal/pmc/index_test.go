package pmc

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"snowboard/internal/trace"
)

// collectOverlapping drains an overlapping query into a slice, canonically
// sorted for comparison.
func collectOverlapping(ix *index, rAddr, rEnd uint64) []writeRec {
	var out []writeRec
	ix.overlapping(rAddr, rEnd, func(w writeRec) { out = append(out, w) })
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.addr != b.addr {
			return a.addr < b.addr
		}
		if a.size != b.size {
			return a.size < b.size
		}
		if a.ins != b.ins {
			return a.ins < b.ins
		}
		if a.val != b.val {
			return a.val < b.val
		}
		return a.test < b.test
	})
	return out
}

// bruteOverlapping is the O(n) oracle: every write whose [addr, end) range
// intersects [rAddr, rEnd).
func bruteOverlapping(writes []writeRec, rAddr, rEnd uint64) []writeRec {
	var out []writeRec
	for _, w := range writes {
		if w.addr < rEnd && rAddr < w.end() {
			out = append(out, w)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.addr != b.addr {
			return a.addr < b.addr
		}
		if a.size != b.size {
			return a.size < b.size
		}
		if a.ins != b.ins {
			return a.ins < b.ins
		}
		if a.val != b.val {
			return a.val < b.val
		}
		return a.test < b.test
	})
	return out
}

// TestIndexLowAddressUnderflowGuard exercises the scan-window lower bound
// at addresses below maxAccessSize, where the naive rAddr-maxAccessSize+1
// arithmetic would wrap around to 2^64-ε and skip every bucket. Reads at
// addresses 0..maxAccessSize must still find writes starting at address 0.
func TestIndexLowAddressUnderflowGuard(t *testing.T) {
	ix := newIndex()
	var writes []writeRec
	for addr := uint64(0); addr <= 2*maxAccessSize; addr++ {
		w := writeRec{addr: addr, val: addr + 1, ins: insW1, size: uint8(1 + addr%maxAccessSize), test: int32(addr)}
		ix.addWrite(w)
		writes = append(writes, w)
	}
	ix.seal()
	for rAddr := uint64(0); rAddr <= 2*maxAccessSize; rAddr++ {
		for size := uint64(1); size <= maxAccessSize; size++ {
			rEnd := rAddr + size
			got := collectOverlapping(ix, rAddr, rEnd)
			want := bruteOverlapping(writes, rAddr, rEnd)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("read [%d,%d): got %d writes, want %d\ngot:  %v\nwant: %v",
					rAddr, rEnd, len(got), len(want), got, want)
			}
		}
	}
}

// TestIndexAdjacencyExcluded pins the half-open boundary: a write starting
// exactly at the read's end address is adjacent, not overlapping, and a
// write ending exactly at the read's start likewise.
func TestIndexAdjacencyExcluded(t *testing.T) {
	ix := newIndex()
	ix.addWrite(writeRec{addr: 0x108, val: 1, ins: insW1, size: 4, test: 0}) // starts at rEnd
	ix.addWrite(writeRec{addr: 0x0F8, val: 2, ins: insW1, size: 8, test: 1}) // ends at rAddr
	ix.addWrite(writeRec{addr: 0x107, val: 3, ins: insW1, size: 1, test: 2}) // last byte of the read
	ix.addWrite(writeRec{addr: 0x0F9, val: 4, ins: insW1, size: 8, test: 3}) // first byte of the read
	ix.seal()
	got := collectOverlapping(ix, 0x100, 0x108)
	if len(got) != 2 || got[0].test != 3 || got[1].test != 2 {
		t.Fatalf("read [0x100,0x108): got %v, want exactly the writes of tests 3 and 2", got)
	}
}

// TestIndexStraddlingWritesCrossBuckets checks that an 8-byte write whose
// range straddles into a read's bucket from below is found even though its
// own start address lies in an earlier bucket — the reason the scan window
// opens maxAccessSize-1 below the read.
func TestIndexStraddlingWritesCrossBuckets(t *testing.T) {
	ix := newIndex()
	// Writes at every start in the window below the read; all 8 bytes long.
	var writes []writeRec
	for off := uint64(1); off <= maxAccessSize; off++ {
		w := writeRec{addr: 0x200 - off, val: off, ins: insW1, size: 8, test: int32(off)}
		ix.addWrite(w)
		writes = append(writes, w)
	}
	ix.seal()
	got := collectOverlapping(ix, 0x200, 0x201)
	want := bruteOverlapping(writes, 0x200, 0x201)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("straddling scan: got %v, want %v", got, want)
	}
	// Every write except the one starting at 0x200-8 (which ends at 0x200)
	// covers byte 0x200.
	if len(got) != maxAccessSize-1 {
		t.Fatalf("got %d straddling writes, want %d", len(got), maxAccessSize-1)
	}
}

// TestIndexAppendAfterSealEqualsFreshBuild is the appendable-index
// equivalence property: interleaving addWrite/seal in any grouping must
// answer every overlap query exactly like a fresh index built from the
// same writes in one pass — and generations must tick once per seal.
func TestIndexAppendAfterSealEqualsFreshBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		n := 5 + rng.Intn(60)
		writes := make([]writeRec, n)
		for i := range writes {
			writes[i] = writeRec{
				addr: 0x100 + uint64(rng.Intn(40)),
				val:  uint64(rng.Intn(8)),
				ins:  insW1 + trace.Ins(rng.Intn(3)),
				size: uint8(1 + rng.Intn(maxAccessSize)),
				test: int32(rng.Intn(10)),
			}
		}

		fresh := newIndex()
		for _, w := range writes {
			fresh.addWrite(w)
		}
		fresh.seal()

		grown := newIndex()
		seals := uint64(0)
		for i := 0; i < n; {
			chunk := 1 + rng.Intn(n-i)
			for _, w := range writes[i : i+chunk] {
				grown.addWrite(w)
			}
			grown.seal()
			seals++
			i += chunk
		}
		if grown.gen != seals {
			t.Fatalf("trial %d: generation %d after %d seals", trial, grown.gen, seals)
		}
		if !sort.SliceIsSorted(grown.starts, func(i, j int) bool { return grown.starts[i] < grown.starts[j] }) {
			t.Fatalf("trial %d: merged starts not sorted: %v", trial, grown.starts)
		}
		if grown.writeCount() != fresh.writeCount() {
			t.Fatalf("trial %d: %d writes grown vs %d fresh", trial, grown.writeCount(), fresh.writeCount())
		}

		for q := 0; q < 30; q++ {
			rAddr := 0x100 - maxAccessSize + uint64(rng.Intn(50))
			rEnd := rAddr + uint64(1+rng.Intn(maxAccessSize))
			got := collectOverlapping(grown, rAddr, rEnd)
			want := collectOverlapping(fresh, rAddr, rEnd)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d read [%#x,%#x): grown index diverges from fresh build\ngot:  %v\nwant: %v",
					trial, rAddr, rEnd, got, want)
			}
		}
	}
}

// TestIndexResealWithoutAdditionsIsCheap pins that sealing an unchanged
// index still ticks the generation but keeps the bucket order intact.
func TestIndexResealWithoutAdditions(t *testing.T) {
	ix := newIndex()
	ix.addWrite(writeRec{addr: 0x100, val: 1, ins: insW1, size: 4, test: 0})
	ix.seal()
	g := ix.gen
	before := collectOverlapping(ix, 0x100, 0x104)
	ix.seal()
	if ix.gen != g+1 {
		t.Fatalf("generation %d after reseal, want %d", ix.gen, g+1)
	}
	after := collectOverlapping(ix, 0x100, 0x104)
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("reseal changed query results: %v vs %v", before, after)
	}
}
