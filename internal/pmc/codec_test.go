package pmc

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"snowboard/internal/trace"
)

// randomBlock builds n structurally valid accesses in columnar form.
func randomBlock(rng *rand.Rand, n int) trace.Block {
	var out trace.Block
	for i := 0; i < n; i++ {
		a := trace.Access{
			Thread: rng.Intn(4),
			Ins:    trace.Ins(rng.Uint64() >> uint(rng.Intn(40))),
			Addr:   rng.Uint64() >> uint(rng.Intn(32)),
			Size:   uint8(1 + rng.Intn(8)),
			Val:    rng.Uint64() >> uint(rng.Intn(64)),
			Atomic: rng.Intn(8) == 0,
			Marked: rng.Intn(8) == 0,
			Stack:  rng.Intn(8) == 0,
			RCU:    rng.Intn(8) == 0,
		}
		if rng.Intn(2) == 0 {
			a.Kind = trace.Write
		}
		if rng.Intn(5) == 0 {
			locks := make([]uint64, 1+rng.Intn(3))
			for j := range locks {
				locks[j] = rng.Uint64() >> 16
			}
			sort.Slice(locks, func(x, y int) bool { return locks[x] < locks[y] })
			a.Locks = trace.InternLocks(locks)
		}
		out.Append(a)
	}
	return out
}

func randomProfiles(rng *rand.Rand, n int) []Profile {
	out := make([]Profile, n)
	for i := range out {
		accs := randomBlock(rng, rng.Intn(30))
		df := make(map[int]bool)
		for j := 0; j < accs.Len(); j++ {
			if rng.Intn(6) == 0 {
				df[j] = true
			}
		}
		out[i] = Profile{TestID: i, Accesses: accs, DFLeader: df}
	}
	return out
}

// profilesEqual compares profile sets access-by-access (the blocks' internal
// column slices may differ in nil-ness/capacity after a decode).
func profilesEqual(a, b []Profile) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].TestID != b[i].TestID || !reflect.DeepEqual(a[i].DFLeader, b[i].DFLeader) {
			return false
		}
		if a[i].Accesses.Len() != b[i].Accesses.Len() {
			return false
		}
		for j := 0; j < a[i].Accesses.Len(); j++ {
			if a[i].Accesses.At(j) != b[i].Accesses.At(j) {
				return false
			}
		}
	}
	return true
}

// TestProfilesRoundTrip: for seeded random profile sets, decode(encode(x))
// equals x and the encoding is canonical.
func TestProfilesRoundTrip(t *testing.T) {
	for seed := int64(1); seed <= 15; seed++ {
		rng := rand.New(rand.NewSource(seed))
		profiles := randomProfiles(rng, 1+rng.Intn(12))

		var buf bytes.Buffer
		if err := EncodeProfiles(&buf, profiles); err != nil {
			t.Fatalf("seed %d: encode: %v", seed, err)
		}
		got, err := DecodeProfiles(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("seed %d: decode: %v", seed, err)
		}
		if !profilesEqual(got, profiles) {
			t.Fatalf("seed %d: decoded profiles differ", seed)
		}

		var buf2 bytes.Buffer
		if err := EncodeProfiles(&buf2, got); err != nil {
			t.Fatalf("seed %d: re-encode: %v", seed, err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatalf("seed %d: profile encoding not canonical", seed)
		}
	}
}

func TestProfilesDecodeTruncated(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	profiles := randomProfiles(rng, 6)
	var buf bytes.Buffer
	if err := EncodeProfiles(&buf, profiles); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for cut := 0; cut < len(data); cut += 3 {
		if _, err := DecodeProfiles(bytes.NewReader(data[:cut])); !errors.Is(err, ErrBadProfiles) {
			t.Fatalf("prefix of %d/%d bytes: err = %v, want ErrBadProfiles", cut, len(data), err)
		}
	}
}

func randomKey(rng *rand.Rand) Key {
	return Key{
		Ins:  trace.Ins(rng.Uint64() >> 20),
		Addr: rng.Uint64() >> uint(rng.Intn(32)),
		Size: uint8(1 + rng.Intn(8)),
		Val:  rng.Uint64() >> uint(rng.Intn(64)),
	}
}

// randomSet builds a PMC database through the same Add path identification
// uses, so pair lists are canonically sorted and counts are consistent.
func randomSet(rng *rand.Rand, nkeys, nobs int) *Set {
	s := NewSet()
	keys := make([]PMC, nkeys)
	for i := range keys {
		keys[i] = PMC{Write: randomKey(rng), Read: randomKey(rng), DFLeader: rng.Intn(4) == 0}
	}
	for i := 0; i < nobs; i++ {
		s.Add(keys[rng.Intn(nkeys)], Pair{Writer: rng.Intn(50), Reader: rng.Intn(50)})
	}
	return s
}

// TestSetRoundTrip: decode(encode(x)) deep-equals x for seeded random PMC
// databases, and the encoding is canonical regardless of map iteration.
func TestSetRoundTrip(t *testing.T) {
	for seed := int64(1); seed <= 15; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := randomSet(rng, 1+rng.Intn(20), 1+rng.Intn(200))

		var buf bytes.Buffer
		if err := EncodeSet(&buf, s); err != nil {
			t.Fatalf("seed %d: encode: %v", seed, err)
		}
		got, err := DecodeSet(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("seed %d: decode: %v", seed, err)
		}
		if !reflect.DeepEqual(got, s) {
			t.Fatalf("seed %d: decoded set differs", seed)
		}

		var buf2 bytes.Buffer
		if err := EncodeSet(&buf2, got); err != nil {
			t.Fatalf("seed %d: re-encode: %v", seed, err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatalf("seed %d: set encoding not canonical", seed)
		}
	}
}

// TestSetRoundTripDuplicatePairs: Entry.Pairs keeps observations with
// multiplicity; equal neighbouring pairs must survive the round trip.
func TestSetRoundTripDuplicatePairs(t *testing.T) {
	s := NewSet()
	p := PMC{Write: Key{Ins: 1, Addr: 0x10, Size: 4, Val: 7}, Read: Key{Ins: 2, Addr: 0x10, Size: 4, Val: 7}}
	for i := 0; i < 3; i++ {
		s.Add(p, Pair{Writer: 5, Reader: 9})
	}
	var buf bytes.Buffer
	if err := EncodeSet(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSet(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Fatal("set with duplicate pairs did not round-trip")
	}
}

func TestSetDecodeTruncated(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := randomSet(rng, 8, 100)
	var buf bytes.Buffer
	if err := EncodeSet(&buf, s); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for cut := 0; cut < len(data); cut += 3 {
		if _, err := DecodeSet(bytes.NewReader(data[:cut])); !errors.Is(err, ErrBadSet) {
			t.Fatalf("prefix of %d/%d bytes: err = %v, want ErrBadSet", cut, len(data), err)
		}
	}
}

func TestSetDecodeRejectsNonCanonicalPairs(t *testing.T) {
	// Hand-build a set whose pair list is descending, encode it by abusing
	// EncodeSet (which emits entries verbatim), and check the decoder
	// rejects the ordering violation.
	s := NewSet()
	p := PMC{Write: Key{Ins: 1, Addr: 8, Size: 4, Val: 1}, Read: Key{Ins: 2, Addr: 8, Size: 4, Val: 1}}
	s.Entries[p] = &Entry{PMC: p, Pairs: []Pair{{Writer: 9, Reader: 9}, {Writer: 1, Reader: 1}}, PairCount: 2}
	s.TotalCombinations = 2
	var buf bytes.Buffer
	if err := EncodeSet(&buf, s); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeSet(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrBadSet) {
		t.Fatalf("err = %v, want ErrBadSet for descending pair list", err)
	}
}
