package pmc

import (
	"sort"

	"snowboard/internal/trace"
)

// The ordered nested index of §4.2.1: writes are bucketed by start address
// (outer order), then by range length, then by instruction. Because every
// access is at most 8 bytes, a read [a, a+n) can only overlap writes whose
// start address lies in (a-8, a+n); the sorted outer index makes that a
// binary search plus a bounded scan.

// writeRec is one indexed write, self-contained: it copies the four access
// features Algorithm 1 needs rather than pointing into a profile, so the
// index works directly over columnar profile blocks.
type writeRec struct {
	addr uint64
	val  uint64
	ins  trace.Ins
	size uint8
	test int32
}

func (w *writeRec) end() uint64 { return w.addr + uint64(w.size) }

// maxAccessSize is the largest single access the VM can produce.
const maxAccessSize = 8

type bucket struct {
	start  uint64
	writes []writeRec // ordered by (size, ins) after seal
}

type index struct {
	buckets map[uint64]*bucket
	starts  []uint64 // sorted bucket start addresses, valid after seal
	sealed  bool
}

func newIndex() *index {
	return &index{buckets: make(map[uint64]*bucket)}
}

func (ix *index) addWrite(w writeRec) {
	if ix.sealed {
		panic("pmc: addWrite after seal")
	}
	b := ix.buckets[w.addr]
	if b == nil {
		b = &bucket{start: w.addr}
		ix.buckets[w.addr] = b
	}
	b.writes = append(b.writes, w)
}

// seal freezes the index: sorts the outer address order and the nested
// (length, instruction) order inside each bucket.
func (ix *index) seal() {
	ix.starts = make([]uint64, 0, len(ix.buckets))
	for s, b := range ix.buckets {
		ix.starts = append(ix.starts, s)
		ws := b.writes
		sort.SliceStable(ws, func(i, j int) bool {
			if ws[i].size != ws[j].size {
				return ws[i].size < ws[j].size
			}
			return ws[i].ins < ws[j].ins
		})
	}
	sort.Slice(ix.starts, func(i, j int) bool { return ix.starts[i] < ix.starts[j] })
	ix.sealed = true
}

// overlapping invokes fn for every write whose range overlaps [rAddr, rEnd).
func (ix *index) overlapping(rAddr, rEnd uint64, fn func(writeRec)) {
	if !ix.sealed {
		panic("pmc: overlapping before seal")
	}
	lo := uint64(0)
	if rAddr > maxAccessSize {
		lo = rAddr - maxAccessSize + 1
	}
	hi := rEnd // exclusive: writes starting at or past the read's end cannot overlap
	i := sort.Search(len(ix.starts), func(i int) bool { return ix.starts[i] >= lo })
	for ; i < len(ix.starts) && ix.starts[i] < hi; i++ {
		b := ix.buckets[ix.starts[i]]
		for j := range b.writes {
			w := &b.writes[j]
			if w.addr < rEnd && rAddr < w.end() {
				fn(*w)
			}
		}
	}
}

// WriteCount reports the number of indexed writes (for tests and stats).
func (ix *index) writeCount() int {
	n := 0
	for _, b := range ix.buckets {
		n += len(b.writes)
	}
	return n
}
