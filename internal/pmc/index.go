package pmc

import (
	"sort"

	"snowboard/internal/trace"
)

// The ordered nested index of §4.2.1: writes are bucketed by start address
// (outer order), then by range length, then by instruction. Because every
// access is at most 8 bytes, a read [a, a+n) can only overlap writes whose
// start address lies in (a-8, a+n); the sorted outer index makes that a
// binary search plus a bounded scan.
//
// The index is appendable: addWrite may be called again after a seal, and
// the next seal folds the additions in incrementally — new bucket starts
// are merged into the sorted outer order (O(existing + new), not a full
// re-sort) and only buckets that actually received writes re-sort their
// nested order. Each seal bumps the generation counter, so snapshots and
// diagnostics can tell index versions apart. This is what lets
// Incremental grow one cumulative write index across profile batches
// instead of rebuilding it per identification.

// writeRec is one indexed write, self-contained: it copies the four access
// features Algorithm 1 needs rather than pointing into a profile, so the
// index works directly over columnar profile blocks.
type writeRec struct {
	addr uint64
	val  uint64
	ins  trace.Ins
	size uint8
	test int32
}

func (w *writeRec) end() uint64 { return w.addr + uint64(w.size) }

// maxAccessSize is the largest single access the VM can produce.
const maxAccessSize = 8

type bucket struct {
	start  uint64
	writes []writeRec
	// sorted counts the prefix of writes already in nested (size, ins)
	// order; writes appended since the last seal lie past it.
	sorted int
}

// resort restores the nested (length, instruction) order. The stable sort
// keeps insertion order among equal (size, ins) writes.
func (b *bucket) resort() {
	ws := b.writes
	sort.SliceStable(ws, func(i, j int) bool {
		if ws[i].size != ws[j].size {
			return ws[i].size < ws[j].size
		}
		return ws[i].ins < ws[j].ins
	})
	b.sorted = len(ws)
}

type index struct {
	buckets map[uint64]*bucket
	starts  []uint64 // sorted bucket start addresses, valid when sealed

	// Pending additions since the last seal: starts of buckets created, and
	// pre-existing buckets whose nested order went stale.
	newStarts []uint64
	dirty     []*bucket

	sealed bool
	gen    uint64 // bumped on every seal
}

func newIndex() *index {
	return &index{buckets: make(map[uint64]*bucket)}
}

func (ix *index) addWrite(w writeRec) {
	b := ix.buckets[w.addr]
	if b == nil {
		b = &bucket{start: w.addr}
		ix.buckets[w.addr] = b
		ix.newStarts = append(ix.newStarts, w.addr)
	} else if b.sorted == len(b.writes) {
		// First append into a previously sealed bucket: queue exactly one
		// resort for the next seal.
		ix.dirty = append(ix.dirty, b)
	}
	b.writes = append(b.writes, w)
	ix.sealed = false
}

// seal (re-)freezes the index. The first seal sorts everything; later seals
// are incremental: they merge the new bucket starts into the existing
// sorted outer order and re-sort only the buckets touched since the last
// seal.
func (ix *index) seal() {
	for _, b := range ix.dirty {
		b.resort()
	}
	ix.dirty = ix.dirty[:0]
	if len(ix.newStarts) > 0 {
		sort.Slice(ix.newStarts, func(i, j int) bool { return ix.newStarts[i] < ix.newStarts[j] })
		for _, s := range ix.newStarts {
			ix.buckets[s].resort()
		}
		ix.starts = mergeSorted(ix.starts, ix.newStarts)
		ix.newStarts = ix.newStarts[:0]
	}
	ix.sealed = true
	ix.gen++
}

// mergeSorted merges two sorted, disjoint start lists into a fresh slice.
func mergeSorted(a, b []uint64) []uint64 {
	out := make([]uint64, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] < b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// overlapping invokes fn for every write whose range overlaps [rAddr, rEnd).
func (ix *index) overlapping(rAddr, rEnd uint64, fn func(writeRec)) {
	if !ix.sealed {
		panic("pmc: overlapping before seal")
	}
	lo := uint64(0)
	if rAddr > maxAccessSize {
		lo = rAddr - maxAccessSize + 1
	}
	hi := rEnd // exclusive: writes starting at or past the read's end cannot overlap
	i := sort.Search(len(ix.starts), func(i int) bool { return ix.starts[i] >= lo })
	for ; i < len(ix.starts) && ix.starts[i] < hi; i++ {
		b := ix.buckets[ix.starts[i]]
		for j := range b.writes {
			w := &b.writes[j]
			if w.addr < rEnd && rAddr < w.end() {
				fn(*w)
			}
		}
	}
}

// WriteCount reports the number of indexed writes (for tests and stats).
func (ix *index) writeCount() int {
	n := 0
	for _, b := range ix.buckets {
		n += len(b.writes)
	}
	return n
}
