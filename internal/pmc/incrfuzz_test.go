package pmc_test

import (
	"bytes"
	"errors"
	"testing"

	"snowboard/internal/pmc"
	"snowboard/internal/pmc/difftest"
)

// FuzzIncrementalIdentify is the fuzz-driven face of the differential
// harness (external test package, so it can import difftest without a
// cycle): for arbitrary byte-derived corpora and batch counts, incremental
// identification must deep-equal the one-shot batch Identify, and the SBPI
// snapshot codec must round-trip the incremental state exactly —
// decode(encode(x)) re-encodes to the same bytes and resumes to the same
// final set. CI runs this for a short smoke; longer local runs explore
// deeper.
func FuzzIncrementalIdentify(f *testing.F) {
	f.Add([]byte{}, uint8(1), false)
	f.Add([]byte{1, 1, 0, 7, 42, 0, 0, 0, 0, 2, 0, 7, 7, 0, 1, 0}, uint8(2), false)
	f.Add([]byte{3, 1, 3, 1, 9, 0, 0, 0, 0, 2, 4, 3, 9, 0, 1, 0}, uint8(7), true)
	f.Fuzz(func(t *testing.T, data []byte, k uint8, selfPairs bool) {
		if len(data) > 2048 {
			// Identification is quadratic in colliding accesses; bound the
			// corpus so no single input dominates a fuzzing session.
			data = data[:2048]
		}
		profiles := difftest.FromBytes(data)
		opt := pmc.DefaultOptions()
		opt.AllowSelfPairs = selfPairs
		want := pmc.Identify(profiles, opt)

		batches := difftest.Partition(profiles, 1+int(k)%len(profiles))
		inc := pmc.NewIncremental(opt)
		for _, b := range batches {
			inc.AddBatchParallel(b, 1+int(k)%3)
		}
		if d := difftest.Diff(want, inc.Set()); d != "" {
			t.Fatalf("incremental (k=%d) diverges from batch Identify:\n%s", len(batches), d)
		}

		// SBPI round-trip: decode(encode(x)) must restore equal state and
		// re-encode byte-identically.
		var buf bytes.Buffer
		if err := pmc.EncodeIncremental(&buf, inc); err != nil {
			t.Fatalf("encode: %v", err)
		}
		dec, err := pmc.DecodeIncremental(bytes.NewReader(buf.Bytes()), opt)
		if err != nil {
			t.Fatalf("decode(encode(x)): %v", err)
		}
		if d := difftest.Diff(inc.Set(), dec.Set()); d != "" {
			t.Fatalf("decoded snapshot set differs:\n%s", d)
		}
		if dec.Profiles() != inc.Profiles() || dec.Batches() != inc.Batches() {
			t.Fatalf("decoded accounting %d/%d, want %d/%d",
				dec.Profiles(), dec.Batches(), inc.Profiles(), inc.Batches())
		}
		var buf2 bytes.Buffer
		if err := pmc.EncodeIncremental(&buf2, dec); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatal("SBPI encoding not canonical across a decode cycle")
		}

		// Truncation hardening rides along for free: any strict prefix must
		// be rejected with ErrBadIncremental, never panic.
		if len(buf.Bytes()) > 0 {
			cut := len(buf.Bytes()) * int(k%100) / 100
			if _, err := pmc.DecodeIncremental(bytes.NewReader(buf.Bytes()[:cut]), opt); !errors.Is(err, pmc.ErrBadIncremental) {
				t.Fatalf("prefix of %d bytes: err = %v, want ErrBadIncremental", cut, err)
			}
		}
	})
}
