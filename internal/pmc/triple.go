package pmc

import "sort"

// Higher-dimension PMCs — the §6 extension: "PMCs of 1 shared write with 2
// reads". A Triple is a write access whose communication can reach two
// distinct readers; scheduled between them, the write can corrupt both
// readers' views in one interleaving, the shape of multi-process
// denial-of-service amplification the paper sketches for the l2tp bug.

// Triple is one write feeding two distinct reads.
type Triple struct {
	Write Key
	ReadA Key
	ReadB Key
}

// TriplePair names the three tests exhibiting the triple.
type TriplePair struct {
	Writer  int
	ReaderA int
	ReaderB int
}

// TripleEntry aggregates a triple's concrete test combinations.
type TripleEntry struct {
	Triple Triple
	Pairs  []TriplePair
	Count  int64
}

// MaxTriplePairs caps the retained combinations per triple.
const MaxTriplePairs = 8

// IdentifyTriples derives write+2-read triples from an identified PMC set:
// two PMCs sharing the same write key whose reads come from different
// sites. The read pair is ordered canonically so each triple appears once.
// maxTriples caps the output (0 = unlimited); triples are emitted in
// deterministic order.
func IdentifyTriples(set *Set, maxTriples int) []TripleEntry {
	// Group entries by write key.
	byWrite := make(map[Key][]*Entry)
	for _, e := range set.Entries {
		byWrite[e.PMC.Write] = append(byWrite[e.PMC.Write], e)
	}
	writes := make([]Key, 0, len(byWrite))
	for w := range byWrite {
		writes = append(writes, w)
	}
	// Total order: writes are distinct map keys and keyLess compares every
	// Key field, so no two entries tie.
	sort.Slice(writes, func(i, j int) bool { return keyLess(writes[i], writes[j]) })

	var out []TripleEntry
	for _, w := range writes {
		group := byWrite[w]
		if len(group) < 2 {
			continue
		}
		// The read key alone is NOT a total order here: Set.Entries is
		// keyed by the full PMC struct, so two entries can share both
		// write and read keys and differ only in DFLeader. Without the
		// DFLeader tie-break the unstable sort leaks map iteration order
		// into triple/pair ordering (and from there into reports).
		sort.Slice(group, func(i, j int) bool {
			if keyLess(group[i].PMC.Read, group[j].PMC.Read) {
				return true
			}
			if keyLess(group[j].PMC.Read, group[i].PMC.Read) {
				return false
			}
			return !group[i].PMC.DFLeader && group[j].PMC.DFLeader
		})
		for i := 0; i < len(group); i++ {
			for j := i + 1; j < len(group); j++ {
				a, b := group[i], group[j]
				if a.PMC.Read.Ins == b.PMC.Read.Ins && a.PMC.Read.Addr == b.PMC.Read.Addr {
					continue // same read site twice adds nothing
				}
				te := TripleEntry{Triple: Triple{Write: w, ReadA: a.PMC.Read, ReadB: b.PMC.Read}}
				for _, pa := range a.Pairs {
					for _, pb := range b.Pairs {
						if pa.Writer != pb.Writer {
							continue // the triple needs one writer test
						}
						if len(te.Pairs) < MaxTriplePairs {
							te.Pairs = append(te.Pairs, TriplePair{
								Writer:  pa.Writer,
								ReaderA: pa.Reader,
								ReaderB: pb.Reader,
							})
						}
						te.Count++
					}
				}
				if te.Count == 0 {
					continue
				}
				out = append(out, te)
				if maxTriples > 0 && len(out) >= maxTriples {
					return out
				}
			}
		}
	}
	return out
}

func keyLess(a, b Key) bool {
	if a.Ins != b.Ins {
		return a.Ins < b.Ins
	}
	if a.Addr != b.Addr {
		return a.Addr < b.Addr
	}
	if a.Size != b.Size {
		return a.Size < b.Size
	}
	return a.Val < b.Val
}
