// Package core orchestrates the four-stage Snowboard pipeline of Figure 2:
// sequential test generation and profiling (§4.1), PMC identification
// (§4.2), PMC selection via clustering (§4.3), and concurrent test
// execution with PMC scheduling hints (§4.4). It also implements the
// baseline generation methods of Table 3 (Random S-INS-PAIR, Random
// pairing, Duplicate pairing) and produces per-method reports in that
// table's shape.
package core

import (
	"fmt"
	"time"

	"snowboard/internal/cluster"
	"snowboard/internal/detect"
	"snowboard/internal/kernel"
	"snowboard/internal/obs"
	"snowboard/internal/pmc"
	"snowboard/internal/sched"
)

// MethodKind distinguishes PMC-guided generation from the baselines.
type MethodKind uint8

// Method kinds.
const (
	// MethodPMC generates tests from clustered PMC exemplars.
	MethodPMC MethodKind = iota
	// MethodRandomPairing pairs two random corpus tests with no hint.
	MethodRandomPairing
	// MethodDuplicatePairing pairs a random corpus test with itself.
	MethodDuplicatePairing
)

// Method is one concurrent test generation method — a Table 3 row.
type Method struct {
	Name     string
	Kind     MethodKind
	Strategy cluster.Strategy // valid when Kind == MethodPMC
	Order    cluster.Order    // cluster ordering for MethodPMC
}

// Methods lists the eleven generation methods evaluated in Table 3.
func Methods() []Method {
	var out []Method
	for _, s := range cluster.Strategies {
		out = append(out, Method{Name: s.Name, Kind: MethodPMC, Strategy: s, Order: cluster.UncommonFirst})
	}
	out = append(out,
		Method{Name: "Random S-INS-PAIR", Kind: MethodPMC, Strategy: cluster.SInsPair, Order: cluster.RandomOrder},
		Method{Name: "Random pairing", Kind: MethodRandomPairing},
		Method{Name: "Duplicate pairing", Kind: MethodDuplicatePairing},
	)
	return out
}

// MethodByName resolves a method.
func MethodByName(name string) (Method, bool) {
	for _, m := range Methods() {
		if m.Name == name {
			return m, true
		}
	}
	return Method{}, false
}

// Options configures a pipeline run.
type Options struct {
	Version kernel.Version
	Seed    int64

	// Stage 1: sequential test generation and profiling.
	FuzzBudget int // sequential executions in the fuzzing campaign
	CorpusCap  int // stop the campaign once this many tests are selected (0 = no cap)

	// Stage 2: PMC identification.
	PMC pmc.Options

	// Stage 3/4: selection and execution.
	Method     Method
	TestBudget int // concurrent tests to execute
	Trials     int // interleaving trials per concurrent test
	Detect     detect.Options

	// DisableIncidental forwards to the explorer (ablation).
	DisableIncidental bool

	// Feedback closes the loop (stage 3+4 interleaved): instead of one
	// GenerateTests pass over the uncommon-first ranking, the test budget
	// is spent in rounds, each allocating tests across PMC clusters
	// proportional to their recent interleaving-segment yield
	// (multi-armed-bandit style, seeded-deterministic), composing
	// independent PMCs into shared tests, and mutating schedules that
	// discovered new segments. Only meaningful for MethodPMC.
	Feedback bool
	// FeedbackRounds is the number of budget-allocation rounds a feedback
	// run splits TestBudget into (0 = default 4).
	FeedbackRounds int

	// Workers is the goroutine fan-out for every stage: fuzzing batches,
	// per-test profiling, reader-sharded PMC identification, and
	// concurrent-test exploration. 0 means one worker per CPU
	// (GOMAXPROCS). Reports are bit-identical for any value — per-unit
	// seeds are derived from (Seed, stage, unit index), never drawn from
	// a shared rng.
	Workers int

	// StateDir, when non-empty, roots a content-addressed artifact store
	// that memoizes every stage: re-running with equivalent options
	// resumes at the first stage whose inputs changed, and several
	// methods (Table 3 comparisons) share one corpus/profile/PMC set
	// instead of recomputing them. Like Workers, StateDir never changes
	// what a run computes — only whether stages execute or load.
	StateDir string
}

// DefaultOptions returns a laptop-scale configuration.
func DefaultOptions() Options {
	m, _ := MethodByName("S-INS-PAIR")
	return Options{
		Version:    kernel.V5_12_RC3,
		Seed:       1,
		FuzzBudget: 400,
		CorpusCap:  120,
		PMC:        pmc.DefaultOptions(),
		Method:     m,
		TestBudget: 60,
		Trials:     16,
		Detect:     detect.DefaultOptions(),
	}
}

// IssueRecord tracks when and how an issue was first found.
type IssueRecord struct {
	Issue     detect.Issue
	TestIndex int // how many concurrent tests had executed when it surfaced
	Trial     int // trial within that test
	Count     int // concurrent tests that re-observed the issue (§5.2's frequency ranking)

	// Repro, when non-nil, pins the bug-exposing trial for deterministic
	// replay (crash-level findings only; see sched.Replay).
	Repro *sched.ReproState
	// Test is the concurrent test that exposed the issue.
	Test sched.ConcurrentTest

	// Triage, when non-nil, is the post-detect triage outcome: the stable
	// crash signature, the content digest of the minimized SBRB repro
	// bundle (`sbrepro -state <dir> -min <digest>` replays it), and the
	// minimization statistics.
	Triage *TriageSummary `json:",omitempty"`
}

// Report is the outcome of one pipeline run — one Table 3 row plus the
// §5.3.2 accuracy counters and §5.4 stage timings. Stage durations are
// measured by the obs stage spans (the same measurements that feed the
// "stage.*.duration_ns" histograms in the process-wide registry), so the
// report is a per-run view over the observability layer; Metrics, when
// captured, freezes the full registry alongside it.
type Report struct {
	Method  string
	Version kernel.Version
	Workers int // resolved worker count the run executed with

	// Stage 1.
	CorpusSize       int
	FuzzExecutions   int
	FuzzTime         time.Duration
	ProfiledAccesses int
	ProfileTime      time.Duration

	// Stage 2.
	DistinctPMCs    int
	PMCCombinations int64
	IdentifyTime    time.Duration

	// Stage 3.
	ExemplarPMCs int // clusters under the strategy (0 for baselines)
	ClusterTime  time.Duration

	// Stage 4.
	TestedPMCs     int // hinted concurrent tests executed
	TestedTests    int // total concurrent tests executed (== TestedPMCs for PMC methods)
	Exercised      int // hinted tests whose channel actually occurred (§5.3.2)
	TrialsRun      int
	Switches       int
	Steps          int
	CoverPairs     int // distinct alias instruction pairs covered (Krace metric)
	CoverSegments  int // distinct interleaving segments covered (2-grams of communications)
	ExecTime       time.Duration
	GeneratedTests int // tests generated (can exceed executed when deduplicated)

	// Feedback-loop counters (zero unless Options.Feedback).
	FeedbackRounds int `json:",omitempty"` // budget-allocation rounds executed
	ComposedTests  int `json:",omitempty"` // tests carrying coalesced extra PMC hints

	// Findings.
	Issues  map[int]IssueRecord // Table 2 bug id -> first-discovery record
	Unknown []detect.Issue      // findings not matching Table 2

	// Distributed, when the run fanned out over the queue, is the
	// exactly-once fold of worker results — including the dead-letter list,
	// so a job that exhausted its delivery attempts is surfaced in the
	// final report rather than silently dropped (see AggregateResults).
	Distributed *DistSummary `json:",omitempty"`

	// Notes records degraded-mode decisions (e.g. generation skipped on an
	// empty corpus) so machine consumers see them alongside the counters.
	Notes []string `json:",omitempty"`

	// Metrics is the process-wide obs registry frozen when the run
	// finished (set by Run / CaptureMetrics); nil if never captured.
	Metrics *obs.Snapshot `json:",omitempty"`
}

// CaptureMetrics freezes the current state of the process-wide metrics
// registry into the report.
func (r *Report) CaptureMetrics() {
	snap := obs.Default.Snapshot()
	r.Metrics = &snap
}

// ExecPerMin returns concurrent-test execution throughput over stage-4
// time — the paper's §5.4 exec/min metric (193.8 vs 170.3 in Table 4).
func (r *Report) ExecPerMin() float64 {
	if r.ExecTime <= 0 || r.TestedTests == 0 {
		return 0
	}
	return float64(r.TestedTests) / r.ExecTime.Minutes()
}

// Accuracy returns the fraction of hinted tests that exercised their
// channel (the paper's PMC accuracy / precision measure, §5.3.2).
func (r *Report) Accuracy() float64 {
	if r.TestedPMCs == 0 {
		return 0
	}
	return float64(r.Exercised) / float64(r.TestedPMCs)
}

// BugIDs returns the sorted Table 2 ids found.
func (r *Report) BugIDs() []int {
	out := make([]int, 0, len(r.Issues))
	for id := range r.Issues {
		out = append(out, id)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// String renders the report as a Table 3-style row.
func (r *Report) String() string {
	return fmt.Sprintf("%-18s exemplars=%-8d tested=%-6d exercised=%-6d issues=%v",
		r.Method, r.ExemplarPMCs, r.TestedTests, r.Exercised, r.BugIDs())
}
