package core

import (
	"fmt"
	"time"

	"snowboard/internal/corpus"
	"snowboard/internal/fuzz"
	"snowboard/internal/obs"
	"snowboard/internal/par"
	"snowboard/internal/pmc"
	"snowboard/internal/store"
	"snowboard/internal/trace"
)

// StreamCampaign runs stages 1a–2 as one streaming campaign: after every
// fuzzing round, the round's newly admitted programs are immediately
// profiled and fed to an incremental identifier (pmc.Incremental), so the
// PMC database grows alongside the corpus instead of waiting for the whole
// campaign to finish. At no point does the pipeline hold work proportional
// to the corpus beyond the analysis state itself — each round's profiles
// are compacted into the identifier as they arrive.
//
// The result is exactly the staged path's: fuzz round admission is
// in-order, so the concatenated rounds ARE the corpus BuildCorpus would
// select; profiling is a pure per-program function of the boot snapshot,
// so the profiles match ProfileAll's; and incremental identification over
// any batch partition deep-equals the one-shot Identify (the difftest
// package proves that equivalence). TestStreamCampaignEqualsStaged asserts
// all three.
//
// Stage timings are attributed by measurement: the in-round profile and
// identify work is timed and subtracted from the campaign wall clock to
// give FuzzTime.
func (p *Pipeline) StreamCampaign(r *Report) error {
	span := obs.StartSpan("stage.stream", obs.A("budget", p.Opts.FuzzBudget),
		obs.A("workers", p.workers()))
	envs := p.workerEnvs(p.workers())
	inc := pmc.NewIncremental(p.Opts.PMC)
	p.Profiles = p.Profiles[:0]
	p.profilesDigest = store.Digest{}

	type profiled struct {
		accs    trace.Block
		df      map[int]bool
		crashed bool
		faults  []string
	}
	var (
		profErr             error
		profTime, identTime time.Duration
		accesses            int
	)
	res := fuzz.CampaignShardedFunc(envs, p.Opts.Seed, p.Opts.FuzzBudget, p.Opts.CorpusCap,
		func(round int, admitted []*corpus.Prog) {
			if profErr != nil || len(admitted) == 0 {
				return
			}
			t0 := time.Now()
			base := len(p.Profiles)
			units := par.Map(len(envs), len(admitted), func(w, i int) profiled {
				accs, df, res := envs[w].Profile(admitted[i])
				if res.Crashed() {
					return profiled{crashed: true, faults: res.Faults}
				}
				return profiled{accs: accs, df: df}
			})
			batch := make([]pmc.Profile, 0, len(admitted))
			for i, u := range units {
				if u.crashed {
					profErr = fmt.Errorf("core: corpus test %d crashed during profiling: %v", base+i, u.faults)
					return
				}
				// Admission is in-order, so base+i is the program's corpus
				// index — the same TestID ProfileAll would assign.
				batch = append(batch, pmc.Profile{TestID: base + i, Accesses: u.accs, DFLeader: u.df})
				accesses += u.accs.Len()
			}
			p.Profiles = append(p.Profiles, batch...)
			profTime += time.Since(t0)
			t1 := time.Now()
			inc.AddBatchParallel(batch, len(envs))
			identTime += time.Since(t1)
		})
	if profErr != nil {
		span.End(obs.A("error", profErr.Error()))
		return profErr
	}
	p.Corpus = res.Corpus
	p.corpusDigest = store.Digest{}
	p.PMCs = inc.Set()
	p.pmcDigest = store.Digest{}

	r.CorpusSize = p.Corpus.Len()
	r.FuzzExecutions = res.Executed
	r.ProfiledAccesses += accesses
	r.DistinctPMCs = p.PMCs.Len()
	r.PMCCombinations = p.PMCs.TotalCombinations
	total := span.End(obs.A("corpus", r.CorpusSize), obs.A("batches", inc.Batches()),
		obs.A("pmcs", r.DistinctPMCs))
	r.ProfileTime = profTime
	r.IdentifyTime = identTime
	if fuzzT := total - profTime - identTime; fuzzT > 0 {
		r.FuzzTime = fuzzT
	}
	obs.Emit(obs.EvPMCIdentified, obs.A("keys", p.PMCs.Len()),
		obs.A("combinations", p.PMCs.TotalCombinations))

	// With a store attached, persist the final artifacts and memos so a
	// staged (or another streaming) run over the same options resumes from
	// them — the artifacts are identical to the staged path's, so the
	// memo entries interoperate.
	if p.store != nil {
		p.saveCorpusStage(r)
		if cd, err := p.ensureCorpusDigest(); err == nil {
			p.saveProfileStage(cd, accesses, r.ProfileTime)
		}
		if pd, err := p.ensureProfilesDigest(); err == nil {
			p.saveIdentifyStage(r, pd)
		}
	}
	p.stageDone("stream", false, total)
	return nil
}
