package core

import (
	"fmt"
	"math/rand"
	"time"

	"snowboard/internal/cluster"
	"snowboard/internal/corpus"
	"snowboard/internal/cover"
	"snowboard/internal/detect"
	"snowboard/internal/exec"
	"snowboard/internal/fuzz"
	"snowboard/internal/kernel"
	"snowboard/internal/obs"
	"snowboard/internal/par"
	"snowboard/internal/pmc"
	"snowboard/internal/sched"
	"snowboard/internal/store"
	"snowboard/internal/trace"
)

// Pipeline-level metrics. Stage durations flow through obs spans (one
// histogram per stage, e.g. "stage.profile.duration_ns"); the hand-rolled
// time.Since fields on Report are views over those span measurements.
var (
	mGenTests      = obs.C(obs.MGenTests)
	mIssuesFound   = obs.G(obs.MIssuesFound)
	mCoverPairs    = obs.G(obs.MCoverPairs)
	mCoverSegments = obs.G(obs.MCoverSegments)
)

// Pipeline holds the state flowing between the four stages so that callers
// (and benchmarks) can run stages individually, reuse a profiled corpus
// across strategies — as the paper does when comparing the eleven methods
// on the same machine-C profile — or run everything via Run.
//
// Every stage fans out across Options.Workers goroutines via internal/par.
// There is deliberately no shared rand.Rand: randomized units derive their
// seed from (Opts.Seed, stage, unit index) with par.UnitSeed, so reports
// are bit-identical for any worker count.
type Pipeline struct {
	Opts Options
	Env  *exec.Env

	Corpus   *corpus.Corpus
	Profiles []pmc.Profile
	PMCs     *pmc.Set

	// envs are the per-worker environments: envs[0] is Env, the rest are
	// clones sharing its boot snapshot, created lazily.
	envs []*exec.Env

	// genCalls counts GenerateTests invocations and exploreUnits counts
	// concurrent tests executed, so repeated stage calls keep drawing
	// fresh — but deterministic — seeds, like the old shared rng did.
	genCalls     int
	exploreUnits int

	// segs accumulates interleaving-segment coverage across every
	// ExecuteTests call of this pipeline. Per-test outcomes are folded in
	// test order, so its contents — and the per-test fresh-segment yields
	// the feedback scheduler allocates budget by — are worker-invariant.
	segs *cover.Segments

	// store, when attached with UseStore, memoizes stages through the
	// content-addressed artifact store; the digests track the content
	// addresses of the current artifacts (zero = not yet computed).
	store          *store.Store
	corpusDigest   store.Digest
	profilesDigest store.Digest
	pmcDigest      store.Digest
}

// NewPipeline boots the simulated kernel for the configured version. It
// also joins (or starts) the process-wide campaign, so every event the
// pipeline flight-records is stitched to one trace ID.
func NewPipeline(opts Options) *Pipeline {
	if opts.Trials <= 0 {
		opts.Trials = 16
	}
	obs.EnsureCampaign("snowboard")
	return &Pipeline{
		Opts: opts,
		Env:  exec.NewEnv(kernel.Config{Version: opts.Version}),
	}
}

// stageDone flight-records a stage completion and checkpoints the campaign
// time-series, so a killed run's trajectory resumes where it stopped.
func (p *Pipeline) stageDone(stage string, cached bool, dur time.Duration) {
	obs.Emit(obs.EvStageDone, obs.A("stage", stage), obs.A("cache", cached),
		obs.A("dur_ms", dur.Milliseconds()))
	p.saveSeries()
}

// workerEnvs returns n per-worker environments, cloning from the boot
// snapshot on first use. Clones persist across stages.
func (p *Pipeline) workerEnvs(n int) []*exec.Env {
	if len(p.envs) == 0 {
		p.envs = append(p.envs, p.Env)
	}
	for len(p.envs) < n {
		p.envs = append(p.envs, p.Env.Clone())
	}
	return p.envs[:n]
}

func (p *Pipeline) workers() int { return par.Workers(p.Opts.Workers) }

// BuildCorpus runs the fuzzing campaign (stage 1a), sharded across the
// worker environments. With a store attached, a previous run's corpus for
// the same (version, seed, budget, cap) is loaded instead and the campaign
// is skipped.
func (p *Pipeline) BuildCorpus(r *Report) {
	span := obs.StartSpan("stage.fuzz", obs.A("budget", p.Opts.FuzzBudget), obs.A("workers", p.workers()))
	if p.store != nil {
		if p.loadCorpusStage(r) {
			mStoreHits.Inc()
			d := span.End(obs.A("cache", "hit"), obs.A("corpus", r.CorpusSize))
			p.stageDone("fuzz", true, d)
			return
		}
		mStoreMisses.Inc()
	}
	res := fuzz.CampaignSharded(p.workerEnvs(p.workers()), p.Opts.Seed, p.Opts.FuzzBudget, p.Opts.CorpusCap)
	p.Corpus = res.Corpus
	p.corpusDigest = store.Digest{}
	r.CorpusSize = p.Corpus.Len()
	r.FuzzExecutions = res.Executed
	r.FuzzTime = span.End(obs.A("executed", res.Executed), obs.A("corpus", r.CorpusSize))
	if p.store != nil {
		p.saveCorpusStage(r)
	}
	p.stageDone("fuzz", false, r.FuzzTime)
}

// SetCorpus installs an externally built corpus (e.g. shared across the
// strategy-comparison benchmarks).
func (p *Pipeline) SetCorpus(c *corpus.Corpus) {
	p.Corpus = c
	p.corpusDigest = store.Digest{}
}

// ProfileAll records the shared-memory access set of every corpus test
// from the fixed snapshot (stage 1b), one test per work unit across the
// worker pool. Profiles land indexed by corpus position, so the result is
// identical to the serial loop; if several tests crash, the lowest-indexed
// one is reported, as serially.
func (p *Pipeline) ProfileAll(r *Report) error {
	span := obs.StartSpan("stage.profile", obs.A("tests", p.Corpus.Len()), obs.A("workers", p.workers()))
	var corpusDigest store.Digest
	if p.store != nil {
		var err error
		if corpusDigest, err = p.ensureCorpusDigest(); err == nil {
			if p.loadProfileStage(r, corpusDigest) {
				mStoreHits.Inc()
				d := span.End(obs.A("cache", "hit"), obs.A("accesses", r.ProfiledAccesses))
				p.stageDone("profile", true, d)
				return nil
			}
		} else {
			obs.Diag.Printf("stage profile: corpus digest: %v", err)
		}
		mStoreMisses.Inc()
	}
	envs := p.workerEnvs(p.workers())
	type profiled struct {
		accs    trace.Block
		df      map[int]bool
		crashed bool
		faults  []string
	}
	units := par.Map(len(envs), p.Corpus.Len(), func(w, i int) profiled {
		accs, df, res := envs[w].Profile(p.Corpus.Progs[i])
		if res.Crashed() {
			return profiled{crashed: true, faults: res.Faults}
		}
		return profiled{accs: accs, df: df}
	})
	p.Profiles = p.Profiles[:0]
	p.profilesDigest = store.Digest{}
	accesses := 0
	for i, u := range units {
		if u.crashed {
			span.End(obs.A("crashed_test", i))
			return fmt.Errorf("core: corpus test %d crashed during profiling: %v", i, u.faults)
		}
		p.Profiles = append(p.Profiles, pmc.Profile{TestID: i, Accesses: u.accs, DFLeader: u.df})
		accesses += u.accs.Len()
	}
	r.ProfiledAccesses += accesses
	r.ProfileTime = span.End(obs.A("accesses", r.ProfiledAccesses))
	if p.store != nil && !corpusDigest.IsZero() {
		p.saveProfileStage(corpusDigest, accesses, r.ProfileTime)
	}
	p.stageDone("profile", false, r.ProfileTime)
	return nil
}

// SetProfiles installs externally computed profiles.
func (p *Pipeline) SetProfiles(profiles []pmc.Profile) {
	p.Profiles = profiles
	p.profilesDigest = store.Digest{}
}

// IdentifyPMCs runs Algorithm 1 over the profiles (stage 2), sharded by
// reader profile. With a store attached, an exact-profile-set match
// restores the stored PMC set outright; otherwise identification runs
// incrementally against the longest stored batch-chain prefix (see
// identifyIncremental), so a resumed campaign with a grown corpus pays
// only for the delta. Without a store it is a plain one-shot
// identification — the two paths produce deep-equal sets.
func (p *Pipeline) IdentifyPMCs(r *Report) {
	span := obs.StartSpan("stage.identify", obs.A("profiles", len(p.Profiles)))
	var profilesDigest store.Digest
	if p.store != nil {
		var err error
		if profilesDigest, err = p.ensureProfilesDigest(); err == nil {
			if p.loadIdentifyStage(r, profilesDigest) {
				mStoreHits.Inc()
				d := span.End(obs.A("cache", "hit"), obs.A("pmcs", r.DistinctPMCs))
				p.stageDone("identify", true, d)
				return
			}
		} else {
			obs.Diag.Printf("stage identify: profiles digest: %v", err)
		}
		mStoreMisses.Inc()
	}
	if p.store != nil {
		p.PMCs = p.identifyIncremental()
	} else {
		p.PMCs = pmc.IdentifyParallel(p.Profiles, p.Opts.PMC, p.workers())
	}
	p.pmcDigest = store.Digest{}
	r.DistinctPMCs = p.PMCs.Len()
	r.PMCCombinations = p.PMCs.TotalCombinations
	r.IdentifyTime = span.End(obs.A("pmcs", r.DistinctPMCs))
	if p.store != nil && !profilesDigest.IsZero() {
		p.saveIdentifyStage(r, profilesDigest)
	}
	p.stageDone("identify", false, r.IdentifyTime)
}

// SetPMCs installs an externally identified PMC set.
func (p *Pipeline) SetPMCs(s *pmc.Set) {
	p.PMCs = s
	p.pmcDigest = store.Digest{}
}

// GenerateTests produces up to budget concurrent tests under the
// configured method (stage 3). For PMC methods it clusters, orders
// uncommon-first (or randomly), and draws one exemplar PMC — and one of its
// test pairs — per cluster. Baselines draw random (or duplicate) pairs.
// Generation is cheap and stays serial; its rng seed derives from the
// invocation index, so repeated calls draw fresh deterministic streams.
func (p *Pipeline) GenerateTests(r *Report, budget int) []sched.ConcurrentTest {
	span := obs.StartSpan("stage.generate", obs.A("method", p.Opts.Method.Name))
	rng := rand.New(rand.NewSource(par.UnitSeed(p.Opts.Seed, par.StageGenerate, p.genCalls)))
	p.genCalls++
	if p.Corpus == nil || p.Corpus.Len() == 0 {
		// An exhausted fuzz budget can legitimately select zero programs;
		// the pairing arms below index the corpus, so bail out with a
		// diagnostic instead of panicking in rng.Intn(0).
		note := fmt.Sprintf("generation skipped: empty corpus (method %s)", p.Opts.Method.Name)
		obs.Diag.Printf("stage generate: %s", note)
		r.Notes = append(r.Notes, note)
		span.End(obs.A("generated", 0), obs.A("empty_corpus", true))
		return nil
	}
	var out []sched.ConcurrentTest
	defer func() {
		mGenTests.Add(int64(len(out)))
		r.ClusterTime += span.End(obs.A("generated", len(out)))
	}()
	switch p.Opts.Method.Kind {
	case MethodPMC:
		cs := cluster.Clusters(p.PMCs, p.Opts.Method.Strategy)
		cluster.OrderClusters(cs, p.Opts.Method.Order, rng)
		r.ExemplarPMCs = len(cs)
		for i := range cs {
			if len(out) >= budget {
				break
			}
			ex := cluster.Exemplar(&cs[i], rng)
			entry := p.PMCs.Entries[ex]
			if entry == nil || len(entry.Pairs) == 0 {
				continue
			}
			pair := entry.Pairs[rng.Intn(len(entry.Pairs))]
			hint := entry.PMC
			out = append(out, sched.ConcurrentTest{
				Writer: p.Corpus.Progs[pair.Writer],
				Reader: p.Corpus.Progs[pair.Reader],
				Hint:   &hint,
				Pair:   pair,
			})
		}
	case MethodRandomPairing:
		for len(out) < budget {
			w := rng.Intn(p.Corpus.Len())
			rd := rng.Intn(p.Corpus.Len())
			out = append(out, sched.ConcurrentTest{
				Writer: p.Corpus.Progs[w],
				Reader: p.Corpus.Progs[rd],
				Pair:   pmc.Pair{Writer: w, Reader: rd},
			})
		}
	case MethodDuplicatePairing:
		for len(out) < budget {
			i := rng.Intn(p.Corpus.Len())
			out = append(out, sched.ConcurrentTest{
				Writer: p.Corpus.Progs[i],
				Reader: p.Corpus.Progs[i].Clone(),
				Pair:   pmc.Pair{Writer: i, Reader: i},
			})
		}
	}
	r.GeneratedTests += len(out)
	return out
}

// segments returns the pipeline-cumulative segment accumulator, creating
// it on first use (RunFeedback replaces it when resuming round state).
func (p *Pipeline) segments() *cover.Segments {
	if p.segs == nil {
		p.segs = cover.NewSegments()
	}
	return p.segs
}

// ExecuteTests explores each concurrent test (stage 4) across a fleet of
// per-worker explorers, folding findings into the report in test order —
// the fold is byte-for-byte the serial one, because each test's outcome is
// a pure function of (test, derived seed).
func (p *Pipeline) ExecuteTests(r *Report, tests []sched.ConcurrentTest) {
	p.executeTests(r, tests)
}

// executeTests is ExecuteTests, additionally returning each test's
// fresh-segment yield against the pipeline-cumulative segment accumulator.
// Yields are computed in the sequential test-order fold — a pure function
// of test order, independent of worker placement — which is what the
// feedback scheduler allocates the next round's budget by.
func (p *Pipeline) executeTests(r *Report, tests []sched.ConcurrentTest) []int {
	span := obs.StartSpan("stage.exec", obs.A("tests", len(tests)), obs.A("trials", p.Opts.Trials),
		obs.A("workers", p.workers()))
	cov := cover.New()
	template := sched.Explorer{
		Trials:            p.Opts.Trials,
		Mode:              sched.ModeSnowboard,
		Detect:            p.Opts.Detect,
		KnownPMCs:         p.PMCs,
		DisableIncidental: p.Opts.DisableIncidental,
		Coverage:          cov,
		TrackSegments:     true,
		MutateSchedules:   p.Opts.Feedback,
	}
	fleet := sched.NewFleet(template, p.workerEnvs(p.workers()),
		func(e *exec.Env) []string { return e.K.FsckHost() })
	seeds := make([]int64, len(tests))
	for i := range seeds {
		seeds[i] = par.UnitSeed(p.Opts.Seed, par.StageExplore, p.exploreUnits+i)
	}
	p.exploreUnits += len(tests)
	unknownSeen := make(map[string]struct{}, len(r.Unknown))
	for _, u := range r.Unknown {
		unknownSeen[u.ID()] = struct{}{}
	}
	outs := fleet.ExploreAll(tests, seeds)
	yields := make([]int, len(outs))
	segs := p.segments()
	for i, out := range outs {
		ct := tests[i]
		if out.Segments != nil {
			yields[i] = segs.Merge(out.Segments)
		}
		r.TestedTests++
		if ct.Hint != nil {
			r.TestedPMCs++
			if out.Exercised {
				r.Exercised++
			}
		}
		r.TrialsRun += out.Trials
		r.Switches += out.Switches
		r.Steps += out.Steps
		for _, is := range out.Issues {
			if is.BugID != 0 {
				rec, seen := r.Issues[is.BugID]
				if !seen {
					rec = IssueRecord{
						Issue:     is,
						TestIndex: r.TestedTests,
						Trial:     out.TrialOf(is),
						Repro:     out.Repro,
						Test:      ct,
					}
				} else if rec.Repro == nil && out.Repro != nil && crashLevel(is.Kind) {
					// The bug was first seen as its data-race shadow; a
					// later crash-level observation carries the replayable
					// trial — upgrade the record.
					rec.Issue = is
					rec.Repro = out.Repro
					rec.Test = ct
				}
				rec.Count++
				r.Issues[is.BugID] = rec
				continue
			}
			if _, dup := unknownSeen[is.ID()]; !dup {
				unknownSeen[is.ID()] = struct{}{}
				r.Unknown = append(r.Unknown, is)
			}
		}
		mIssuesFound.Set(int64(len(r.Issues)))
	}
	r.CoverPairs += cov.Len()
	r.CoverSegments = segs.Len()
	mCoverPairs.Set(int64(r.CoverPairs))
	mCoverSegments.Set(int64(r.CoverSegments))
	d := span.End(obs.A("issues", len(r.Issues)), obs.A("segments", r.CoverSegments))
	r.ExecTime += d
	p.stageDone("exec", false, d)
	return yields
}

// crashLevel reports whether the issue kind wedges or corrupts the kernel.
func crashLevel(k detect.IssueKind) bool { return detect.CrashLevel(k) }

// Run executes the full pipeline. With Options.StateDir set, every stage
// memoizes through the content-addressed artifact store rooted there: a
// re-run with equivalent options resumes at the first stage whose inputs
// changed, and a fully cached run returns the stored report verbatim.
func Run(opts Options) (*Report, error) {
	p := NewPipeline(opts)
	if opts.StateDir != "" {
		s, err := store.Open(opts.StateDir)
		if err != nil {
			return nil, err
		}
		p.UseStore(s)
	}
	r := p.NewReport()
	p.BuildCorpus(r)
	if err := p.ProfileAll(r); err != nil {
		return nil, err
	}
	p.IdentifyPMCs(r)
	if p.store != nil {
		if cached, ok := p.loadReportStage(opts.TestBudget); ok {
			mStoreHits.Inc()
			obs.Emit(obs.EvCampaignDone, obs.A("cache", true), obs.A("issues", len(cached.Issues)))
			p.saveSeries()
			return cached, nil
		}
		mStoreMisses.Inc()
	}
	if opts.Feedback {
		p.RunFeedback(r, opts.TestBudget)
	} else {
		tests := p.GenerateTests(r, opts.TestBudget)
		p.ExecuteTests(r, tests)
	}
	p.TriageReport(r)
	r.CaptureMetrics()
	if p.store != nil {
		p.saveReportStage(r, opts.TestBudget)
	}
	obs.Emit(obs.EvCampaignDone, obs.A("cache", false), obs.A("issues", len(r.Issues)))
	p.saveSeries()
	return r, nil
}

// NewReport allocates an empty report bound to the pipeline's method.
func (p *Pipeline) NewReport() *Report {
	return &Report{
		Method:  p.Opts.Method.Name,
		Version: p.Opts.Version,
		Workers: p.workers(),
		Issues:  make(map[int]IssueRecord),
	}
}
