package core

import (
	"testing"

	"snowboard/internal/cluster"
	"snowboard/internal/kernel"
)

func TestMethodsListMatchesTable3(t *testing.T) {
	ms := Methods()
	if len(ms) != 11 {
		t.Fatalf("Table 3 evaluates 11 methods, have %d", len(ms))
	}
	want := map[string]bool{
		"S-FULL": true, "S-CH": true, "S-CH-NULL": true, "S-CH-UNALIGNED": true,
		"S-CH-DOUBLE": true, "S-INS": true, "S-INS-PAIR": true, "S-MEM": true,
		"Random S-INS-PAIR": true, "Random pairing": true, "Duplicate pairing": true,
	}
	for _, m := range ms {
		if !want[m.Name] {
			t.Fatalf("unexpected method %q", m.Name)
		}
		delete(want, m.Name)
	}
	if len(want) != 0 {
		t.Fatalf("missing methods: %v", want)
	}
}

func TestMethodByName(t *testing.T) {
	m, ok := MethodByName("Random S-INS-PAIR")
	if !ok || m.Order != cluster.RandomOrder || m.Strategy.Name != "S-INS-PAIR" {
		t.Fatalf("method: %+v %v", m, ok)
	}
	if _, ok := MethodByName("nope"); ok {
		t.Fatal("bogus method resolved")
	}
}

func TestDefaultOptionsSane(t *testing.T) {
	o := DefaultOptions()
	if o.Method.Name != "S-INS-PAIR" {
		t.Fatalf("default method %q", o.Method.Name)
	}
	if o.Version != kernel.V5_12_RC3 || o.Trials <= 0 || o.TestBudget <= 0 {
		t.Fatalf("defaults: %+v", o)
	}
}

func stagePipeline(t *testing.T, opts Options) (*Pipeline, *Report) {
	t.Helper()
	p := NewPipeline(opts)
	r := p.NewReport()
	p.BuildCorpus(r)
	if err := p.ProfileAll(r); err != nil {
		t.Fatal(err)
	}
	p.IdentifyPMCs(r)
	return p, r
}

func TestGenerateTestsBudget(t *testing.T) {
	opts := DefaultOptions()
	opts.FuzzBudget = 200
	opts.CorpusCap = 40
	p, r := stagePipeline(t, opts)
	tests := p.GenerateTests(r, 7)
	if len(tests) > 7 {
		t.Fatalf("budget exceeded: %d", len(tests))
	}
	for _, ct := range tests {
		if ct.Hint == nil {
			t.Fatal("PMC method generated a hint-less test")
		}
		if ct.Writer == nil || ct.Reader == nil {
			t.Fatal("test missing programs")
		}
	}
}

func TestBaselinesGenerateHintless(t *testing.T) {
	for _, name := range []string{"Random pairing", "Duplicate pairing"} {
		opts := DefaultOptions()
		opts.FuzzBudget = 200
		opts.CorpusCap = 40
		opts.Method, _ = MethodByName(name)
		p, r := stagePipeline(t, opts)
		tests := p.GenerateTests(r, 10)
		if len(tests) != 10 {
			t.Fatalf("%s: generated %d", name, len(tests))
		}
		for _, ct := range tests {
			if ct.Hint != nil {
				t.Fatalf("%s produced a hint", name)
			}
			if name == "Duplicate pairing" && ct.Pair.Writer != ct.Pair.Reader {
				t.Fatalf("duplicate pairing mixed tests: %+v", ct.Pair)
			}
		}
	}
}

func TestRunDeterministicIssueSet(t *testing.T) {
	run := func() []int {
		opts := DefaultOptions()
		opts.Seed = 99
		opts.FuzzBudget = 250
		opts.CorpusCap = 50
		opts.TestBudget = 20
		opts.Trials = 8
		r, err := Run(opts)
		if err != nil {
			t.Fatal(err)
		}
		return r.BugIDs()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("issue sets differ: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("issue sets differ: %v vs %v", a, b)
		}
	}
}

func TestReportAccuracy(t *testing.T) {
	r := &Report{TestedPMCs: 10, Exercised: 3}
	if r.Accuracy() != 0.3 {
		t.Fatalf("accuracy %f", r.Accuracy())
	}
	empty := &Report{}
	if empty.Accuracy() != 0 {
		t.Fatal("empty accuracy not zero")
	}
}

func TestReportBugIDsSorted(t *testing.T) {
	r := &Report{Issues: map[int]IssueRecord{13: {}, 1: {}, 8: {}}}
	ids := r.BugIDs()
	if len(ids) != 3 || ids[0] != 1 || ids[1] != 8 || ids[2] != 13 {
		t.Fatalf("ids: %v", ids)
	}
}

func TestPipelineAccumulatesConcurrencyCoverage(t *testing.T) {
	opts := DefaultOptions()
	opts.FuzzBudget = 250
	opts.CorpusCap = 50
	opts.TestBudget = 15
	opts.Trials = 8
	r, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if r.CoverPairs == 0 {
		t.Fatal("no alias instruction pairs covered")
	}
}

func TestCrashFindingsRecordRepro(t *testing.T) {
	// A pipeline run that surfaces a crash-level issue must pin the trial
	// for deterministic replay.
	opts := DefaultOptions()
	opts.Seed = 3
	opts.Method, _ = MethodByName("S-CH-NULL")
	opts.FuzzBudget = 400
	opts.CorpusCap = 100
	opts.TestBudget = 60
	opts.Trials = 24
	r, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	// A record carries Repro whenever its discovering test's exploration
	// ended in a crash-level trial (the finding itself may be the race
	// shadow observed in the same trial).
	crashRecorded := false
	for _, rec := range r.Issues {
		if rec.Repro != nil {
			if rec.Test.Writer == nil || rec.Test.Reader == nil {
				t.Fatal("repro recorded without its concurrent test")
			}
			crashRecorded = true
		}
	}
	if !crashRecorded {
		t.Fatal("this configuration crashes (issue #3) but no repro state was recorded")
	}
}
