package core

import (
	"fmt"
	"reflect"
	"testing"

	"snowboard/internal/pmc"
	"snowboard/internal/sched"
	"snowboard/internal/store"
	"snowboard/internal/trace"
)

// --- allocateBudget ---

func TestAllocateBudgetProportional(t *testing.T) {
	got := allocateBudget(10, []int64{30, 10, 10, 0})
	want := []int{6, 2, 2, 0}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("alloc %v, want %v", got, want)
	}
	sum := 0
	for _, a := range got {
		sum += a
	}
	if sum != 10 {
		t.Fatalf("allocation does not spend the budget: %d", sum)
	}
}

func TestAllocateBudgetZeroCredits(t *testing.T) {
	got := allocateBudget(10, []int64{0, 0, 0})
	if !reflect.DeepEqual(got, []int{0, 0, 0}) {
		t.Fatalf("zero-credit alloc %v, want all zeros (exploration walk's job)", got)
	}
	if got := allocateBudget(0, []int64{5, 5}); !reflect.DeepEqual(got, []int{0, 0}) {
		t.Fatalf("zero-budget alloc %v", got)
	}
	if got := allocateBudget(5, nil); len(got) != 0 {
		t.Fatalf("nil-credit alloc %v", got)
	}
}

func TestAllocateBudgetNegativeCreditsExcluded(t *testing.T) {
	got := allocateBudget(6, []int64{-4, 3, 3})
	want := []int{0, 3, 3}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("alloc %v, want %v", got, want)
	}
}

func TestAllocateBudgetRemainderTieBreak(t *testing.T) {
	// 7 across three equal credits: 2 each, remainder 1 goes to the lowest
	// index (clusters arrive uncommon-first, so ties favor rarer comms).
	got := allocateBudget(7, []int64{5, 5, 5})
	want := []int{3, 2, 2}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("alloc %v, want %v", got, want)
	}
}

// --- channel independence and composing ---

func fbKey(ins trace.Ins, addr uint64, size uint8) pmc.Key {
	return pmc.Key{Ins: ins, Addr: addr, Size: size, Val: 1}
}

var (
	fbInsW1 = trace.DefIns("feedback_test:w1")
	fbInsW2 = trace.DefIns("feedback_test:w2")
	fbInsR1 = trace.DefIns("feedback_test:r1")
	fbInsR2 = trace.DefIns("feedback_test:r2")
)

func TestKeyOverlap(t *testing.T) {
	a := fbKey(fbInsW1, 0x100, 8)
	for _, tc := range []struct {
		b    pmc.Key
		want bool
	}{
		{fbKey(fbInsR1, 0x100, 8), true},  // identical range
		{fbKey(fbInsR1, 0x104, 2), true},  // contained
		{fbKey(fbInsR1, 0x106, 8), true},  // straddles the end
		{fbKey(fbInsR1, 0x108, 8), false}, // adjacent, no shared byte
		{fbKey(fbInsR1, 0x0f8, 8), false}, // adjacent below
		{fbKey(fbInsR1, 0x200, 8), false}, // disjoint
	} {
		if got := keyOverlap(a, tc.b); got != tc.want {
			t.Errorf("keyOverlap(%x+%d, %x+%d) = %t, want %t",
				a.Addr, a.Size, tc.b.Addr, tc.b.Size, got, tc.want)
		}
		if keyOverlap(a, tc.b) != keyOverlap(tc.b, a) {
			t.Errorf("keyOverlap not symmetric for %x/%x", a.Addr, tc.b.Addr)
		}
	}
}

func TestIndependentChannels(t *testing.T) {
	a := pmc.PMC{Write: fbKey(fbInsW1, 0x100, 8), Read: fbKey(fbInsR1, 0x100, 8)}
	disjoint := pmc.PMC{Write: fbKey(fbInsW2, 0x200, 8), Read: fbKey(fbInsR2, 0x200, 8)}
	if !independentChannels(a, disjoint) {
		t.Fatal("disjoint channels on distinct sites must be independent")
	}
	overlapping := pmc.PMC{Write: fbKey(fbInsW2, 0x104, 8), Read: fbKey(fbInsR2, 0x200, 8)}
	if independentChannels(a, overlapping) {
		t.Fatal("overlapping write ranges must not be independent")
	}
	sameSites := pmc.PMC{Write: fbKey(fbInsW1, 0x300, 8), Read: fbKey(fbInsR1, 0x300, 8)}
	if independentChannels(a, sameSites) {
		t.Fatal("same write/read instruction pair must not be independent")
	}
}

// schedTest builds a minimal composable test; composeTests only inspects
// Pair, Hint, and Extra.
func schedTest(pair pmc.Pair, hint *pmc.PMC) sched.ConcurrentTest {
	return sched.ConcurrentTest{Hint: hint, Pair: pair}
}

func TestComposeTestsCoalescesIndependent(t *testing.T) {
	pair := pmc.Pair{Writer: 0, Reader: 1}
	mkCand := func(cluster int, addr uint64) feedbackCandidate {
		hint := pmc.PMC{Write: fbKey(fbInsW1, addr, 8), Read: fbKey(fbInsR1, addr+0x1000, 8)}
		hint.Write.Ins = trace.DefIns(fmt.Sprintf("feedback_test:cw%x", addr))
		hint.Read.Ins = trace.DefIns(fmt.Sprintf("feedback_test:cr%x", addr))
		return feedbackCandidate{
			cluster: cluster,
			test:    schedTest(pair, &hint),
		}
	}
	// Three independent candidates on the same corpus pair compose into one
	// test with maxComposedHints hints; the fourth starts a new test.
	cands := []feedbackCandidate{
		mkCand(0, 0x100), mkCand(1, 0x200), mkCand(2, 0x300), mkCand(3, 0x400),
	}
	tests, contributors := composeTests(cands)
	if len(tests) != 2 {
		t.Fatalf("composed into %d tests, want 2", len(tests))
	}
	if got := len(tests[0].Extra) + 1; got != maxComposedHints {
		t.Fatalf("first test carries %d hints, want %d", got, maxComposedHints)
	}
	if !reflect.DeepEqual(contributors[0], []int{0, 1, 2}) || !reflect.DeepEqual(contributors[1], []int{3}) {
		t.Fatalf("contributors %v, want [[0 1 2] [3]]", contributors)
	}
}

func TestComposeTestsKeepsDependentApart(t *testing.T) {
	pair := pmc.Pair{Writer: 0, Reader: 1}
	a := pmc.PMC{Write: fbKey(fbInsW1, 0x100, 8), Read: fbKey(fbInsR1, 0x500, 8)}
	overlapping := pmc.PMC{Write: fbKey(fbInsW2, 0x104, 8), Read: fbKey(fbInsR2, 0x600, 8)}
	tests, contributors := composeTests([]feedbackCandidate{
		{cluster: 0, test: schedTest(pair, &a)},
		{cluster: 1, test: schedTest(pair, &overlapping)},
	})
	if len(tests) != 2 || len(tests[0].Extra) != 0 {
		t.Fatalf("overlapping channels composed: %d tests, extras %d", len(tests), len(tests[0].Extra))
	}
	if !reflect.DeepEqual(contributors, [][]int{{0}, {1}}) {
		t.Fatalf("contributors %v", contributors)
	}
}

func TestComposeTestsDistinctPairsStaySeparate(t *testing.T) {
	a := pmc.PMC{Write: fbKey(fbInsW1, 0x100, 8), Read: fbKey(fbInsR1, 0x500, 8)}
	b := pmc.PMC{Write: fbKey(fbInsW2, 0x200, 8), Read: fbKey(fbInsR2, 0x600, 8)}
	tests, _ := composeTests([]feedbackCandidate{
		{cluster: 0, test: schedTest(pmc.Pair{Writer: 0, Reader: 1}, &a)},
		{cluster: 1, test: schedTest(pmc.Pair{Writer: 2, Reader: 3}, &b)},
	})
	if len(tests) != 2 {
		t.Fatalf("distinct corpus pairs composed: %d tests", len(tests))
	}
}

// --- feedback loop determinism and resume ---

// feedbackDigest flattens everything the feedback determinism contract
// covers, mirroring reportDigest for the one-shot path, plus the new
// segment, round, and composition counters.
type feedbackDigest struct {
	Issues       map[int]string
	Counters     [8]int
	CoverPairs   int
	CoverSegs    int
	Rounds       int
	Composed     int
	Generated    int
	ExemplarPMC  int
	SegmentsHash uint64
}

func feedbackDigestOf(p *Pipeline, r *Report) feedbackDigest {
	d := feedbackDigest{
		CoverPairs:  r.CoverPairs,
		CoverSegs:   r.CoverSegments,
		Rounds:      r.FeedbackRounds,
		Composed:    r.ComposedTests,
		Generated:   r.GeneratedTests,
		ExemplarPMC: r.ExemplarPMCs,
		Issues:      make(map[int]string),
		Counters: [8]int{r.CorpusSize, r.ProfiledAccesses, r.TestedTests, r.TestedPMCs,
			r.Exercised, r.TrialsRun, r.Switches, r.Steps},
	}
	for id, rec := range r.Issues {
		d.Issues[id] = fmt.Sprintf("%s|test=%d|trial=%d|count=%d|repro=%v",
			rec.Issue.ID(), rec.TestIndex, rec.Trial, rec.Count, rec.Repro != nil)
	}
	for _, sc := range p.segments().Export() {
		d.SegmentsHash = fnv1a(d.SegmentsHash, fmt.Sprintf("%d:%d:%d:%d:%d",
			sc.Seg.First.Write, sc.Seg.First.Read, sc.Seg.Second.Write, sc.Seg.Second.Read, sc.N))
	}
	return d
}

func feedbackOpts(workers int) Options {
	opts := DefaultOptions()
	opts.Seed = 7
	opts.FuzzBudget = 220
	opts.CorpusCap = 45
	opts.TestBudget = 16
	opts.Trials = 6
	opts.Workers = workers
	opts.Feedback = true
	return opts
}

func feedbackRun(t *testing.T, workers int, st *store.Store) (*Pipeline, *Report) {
	t.Helper()
	opts := feedbackOpts(workers)
	p := NewPipeline(opts)
	if st != nil {
		p.UseStore(st)
	}
	r := p.NewReport()
	p.BuildCorpus(r)
	if err := p.ProfileAll(r); err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	p.IdentifyPMCs(r)
	p.RunFeedback(r, opts.TestBudget)
	return p, r
}

// TestFeedbackWorkerDeterminism is the feedback-mode analogue of the
// pipeline determinism golden test: the full feedback campaign must produce
// identical issues, counters, and segment accumulators at 1, 2, and 8
// workers, and repeated 8-worker runs must agree.
func TestFeedbackWorkerDeterminism(t *testing.T) {
	p1, r1 := feedbackRun(t, 1, nil)
	d1 := feedbackDigestOf(p1, r1)
	if d1.Rounds == 0 || d1.CoverSegs == 0 || len(d1.Issues) == 0 {
		t.Fatalf("degenerate feedback run: rounds=%d segs=%d issues=%d",
			d1.Rounds, d1.CoverSegs, len(d1.Issues))
	}
	for _, tc := range []struct {
		name    string
		workers int
	}{
		{"workers=2", 2}, {"workers=8", 8}, {"workers=8 (repeat)", 8},
	} {
		p, r := feedbackRun(t, tc.workers, nil)
		if d := feedbackDigestOf(p, r); !reflect.DeepEqual(d1, d) {
			t.Errorf("%s diverged from workers=1:\n  a: %+v\n  b: %+v", tc.name, d1, d)
		}
	}
}

// TestFeedbackResumeMatchesUninterrupted simulates a campaign killed after
// round 1: only the first two round checkpoints are copied into a fresh
// store, a new pipeline resumes from them, and the final state must be
// identical to the uninterrupted campaign's.
func TestFeedbackResumeMatchesUninterrupted(t *testing.T) {
	full, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	pFull, rFull := feedbackRun(t, 2, full)
	want := feedbackDigestOf(pFull, rFull)
	if want.Rounds < 3 {
		t.Fatalf("need at least 3 rounds to test a mid-campaign kill, got %d", want.Rounds)
	}

	// Copy rounds 0 and 1 — checkpoint memos and their payload artifacts —
	// into a fresh store: the state a kill after round 1 leaves behind.
	partial, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	keys := pFull.feedbackKeys(pFull.Opts.TestBudget, want.Rounds)
	if keys == nil {
		t.Fatal("no feedback keys with a store attached")
	}
	for _, key := range keys[:2] {
		res, err := full.GetStage(key)
		if err != nil {
			t.Fatalf("round checkpoint missing: %v", err)
		}
		payload, err := full.Get(res.Kind, res.Out)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := partial.Put(res.Kind, payload); err != nil {
			t.Fatal(err)
		}
		if err := partial.PutStage(key, res); err != nil {
			t.Fatal(err)
		}
	}

	pRes := NewPipeline(feedbackOpts(2))
	pRes.UseStore(partial)
	pRes.SetCorpus(pFull.Corpus)
	pRes.SetProfiles(pFull.Profiles)
	pRes.SetPMCs(pFull.PMCs)
	rRes := pRes.NewReport()
	pRes.RunFeedback(rRes, pRes.Opts.TestBudget)
	if got := feedbackDigestOf(pRes, rRes); !reflect.DeepEqual(want, got) {
		t.Fatalf("resumed campaign diverged from uninterrupted:\n  want: %+v\n  got:  %+v", want, got)
	}
}

// TestFeedbackNonPMCMethodDegrades checks the documented fallback: feedback
// under a non-PMC method runs the one-shot path and records a note.
func TestFeedbackNonPMCMethodDegrades(t *testing.T) {
	opts := feedbackOpts(2)
	for _, m := range Methods() {
		if m.Kind != MethodPMC {
			opts.Method = m
			break
		}
	}
	if opts.Method.Kind == MethodPMC {
		t.Skip("no non-PMC method registered")
	}
	p := NewPipeline(opts)
	r := p.NewReport()
	p.BuildCorpus(r)
	if err := p.ProfileAll(r); err != nil {
		t.Fatal(err)
	}
	p.IdentifyPMCs(r)
	p.RunFeedback(r, opts.TestBudget)
	if r.FeedbackRounds != 0 {
		t.Fatalf("non-PMC method ran %d feedback rounds", r.FeedbackRounds)
	}
	if len(r.Notes) == 0 {
		t.Fatal("degraded run recorded no note")
	}
	if r.TestedTests == 0 {
		t.Fatal("degraded run executed no tests")
	}
}
