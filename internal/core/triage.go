package core

import (
	"encoding/json"
	"fmt"

	"snowboard/internal/obs"
	"snowboard/internal/sched"
	"snowboard/internal/store"
	"snowboard/internal/triage"
)

// TriageSummary is the per-finding outcome of the post-detect triage
// stage, embedded in Report JSON so every crash-level finding carries its
// minimized repro bundle digest.
type TriageSummary struct {
	// Signature is the stable crash-site + channel key (triage.Signature.Key).
	Signature string `json:"signature"`
	// Bundle is the hex content digest of the SBRB bundle; replay with
	// `sbrepro -state <dir> -min <digest>`.
	Bundle string       `json:"bundle"`
	Stats  triage.Stats `json:"stats"`
}

var (
	mTriageFindings = obs.C(obs.MTriageFindings)
	mTriageReplays  = obs.C(obs.MTriageReplays)
	mTriageCached   = obs.C(obs.MTriageCached)
	mTriageDedup    = obs.C(obs.MTriageDedup)
)

// triageKey is the per-finding memo key: a `-state` resume skips findings
// whose minimized bundle is already stored. The finding's identity is the
// digest of its test + replay state, so any change to what was found
// invalidates the memo; seed and detector options ride along because they
// change what a replay detects.
func (p *Pipeline) triageKey(id int, rec IssueRecord) (store.Digest, error) {
	blob, err := json.Marshal(struct {
		Test  sched.ConcurrentTest `json:"test"`
		State *sched.ReproState    `json:"state"`
	}{rec.Test, rec.Repro})
	if err != nil {
		return store.Digest{}, err
	}
	d := p.Opts.Detect
	return store.Key(keyPrefix, "triage",
		fmt.Sprintf("sbrb-format=%d", triage.FormatVersion),
		fmt.Sprintf("version=%s", p.Opts.Version),
		fmt.Sprintf("bug=%d", id),
		fmt.Sprintf("detect=%t/%t/%t/%d", d.Console, d.Races, d.TornReads, d.RaceMode),
		"finding="+store.Sum(blob).String(),
	), nil
}

// loadTriageStage attempts a per-finding triage cache hit.
func (p *Pipeline) loadTriageStage(id int, key store.Digest) (*TriageSummary, bool) {
	payload, rawMeta, out, ok := p.loadStage("triage", key, store.KindRepro)
	if !ok {
		return nil, false
	}
	if _, err := triage.Decode(payload); err != nil {
		obs.Diag.Printf("stage triage: discarding undecodable bundle %s: %v", out.Short(), err)
		return nil, false
	}
	var sum TriageSummary
	if err := json.Unmarshal(rawMeta, &sum); err != nil {
		obs.Diag.Printf("stage triage: discarding unreadable memo meta: %v", err)
		return nil, false
	}
	obs.Diag.Printf("stage triage: cache hit for issue #%d (bundle %s)", id, out.Short())
	mTriageCached.Inc()
	return &sum, true
}

// TriageReport runs the post-detect triage stage over the report's
// crash-level findings: each finding with recorded repro state is
// minimized (schedule ddmin + syscall dropping), packaged as an SBRB
// bundle, registered in the cross-campaign signature index, and annotated
// on its IssueRecord.
//
// Determinism: findings are processed serially in BugID order, the bundle
// digest is the content hash of a canonical encoding (identical with or
// without a store), and the signature index is write-only from the
// pipeline's perspective — attaching a store never changes what a run
// computes, only whether it can skip recomputing it.
func (p *Pipeline) TriageReport(r *Report) {
	// A record carries Repro exactly when its discovering exploration ended
	// in a crash-level trial (the recorded Issue itself may be the data-race
	// shadow observed in that same trial), so Repro presence — not the
	// record's kind — is the crash-level gate. Minimize re-derives the
	// crash-level signature from the replay.
	var ids []int
	for _, id := range r.BugIDs() {
		rec := r.Issues[id]
		if rec.Triage == nil && rec.Repro != nil {
			ids = append(ids, id)
		}
	}
	if len(ids) == 0 {
		return
	}
	span := obs.StartSpan("stage.triage", obs.A("findings", len(ids)))
	campaign := fmt.Sprintf("%s/%s/seed=%d", p.Opts.Method.Name, p.Opts.Version, p.Opts.Seed)
	minimized := 0
	for _, id := range ids {
		rec := r.Issues[id]
		var key store.Digest
		if p.store != nil {
			if k, err := p.triageKey(id, rec); err == nil {
				key = k
				if sum, ok := p.loadTriageStage(id, key); ok {
					rec.Triage = sum
					r.Issues[id] = rec
					minimized++
					continue
				}
			}
		}
		res, err := triage.Minimize(p.Env, triage.Finding{Test: rec.Test, State: rec.Repro, BugID: id},
			triage.Options{Detect: p.Opts.Detect})
		if err != nil {
			note := fmt.Sprintf("triage: issue #%d: %v", id, err)
			obs.Diag.Printf("stage triage: %s", note)
			r.Notes = append(r.Notes, note)
			continue
		}
		b := &triage.Bundle{
			Format:    triage.FormatVersion,
			Kernel:    p.Opts.Version,
			Writer:    res.Test.Writer,
			Reader:    res.Test.Reader,
			Hint:      res.Test.Hint,
			Extra:     res.Test.Extra,
			State:     res.State,
			Signature: res.Signature,
			BugID:     id,
			Finding:   rec.Issue.Desc,
			Stats:     res.Stats,
		}
		payload, err := triage.Encode(b)
		if err != nil {
			note := fmt.Sprintf("triage: issue #%d: encode bundle: %v", id, err)
			obs.Diag.Printf("stage triage: %s", note)
			r.Notes = append(r.Notes, note)
			continue
		}
		digest := store.Sum(payload)
		rec.Triage = &TriageSummary{Signature: res.Signature.Key(), Bundle: digest.String(), Stats: res.Stats}
		r.Issues[id] = rec
		minimized++
		mTriageFindings.Inc()
		mTriageReplays.Add(int64(res.Stats.Replays))
		if p.store != nil {
			if _, err := p.store.Put(store.KindRepro, payload); err != nil {
				obs.Diag.Printf("stage triage: persist bundle #%d: %v", id, err)
			} else if !key.IsZero() {
				if err := p.store.PutStage(key, store.StageResult{Kind: store.KindRepro, Out: digest, Meta: mustJSON(rec.Triage)}); err != nil {
					obs.Diag.Printf("stage triage: persist memo #%d: %v", id, err)
				}
			}
			if entry, fresh, err := triage.Register(p.store, res.Signature, digest, campaign); err != nil {
				obs.Diag.Printf("stage triage: signature index: %v", err)
			} else if !fresh {
				mTriageDedup.Inc()
				obs.Diag.Printf("stage triage: issue #%d folds into signature %s (%d campaigns, canonical bundle %s)",
					id, res.Signature.Key(), len(entry.Campaigns), entry.Bundle[:12])
			}
		}
		obs.Emit(obs.EvTriageMinimized,
			obs.A("bug", id),
			obs.A("signature", res.Signature.Key()),
			obs.A("bundle", digest.Short()),
			obs.A("decisions", res.Stats.DecisionsMin),
			obs.A("replays", res.Stats.Replays))
	}
	d := span.End(obs.A("minimized", minimized))
	p.stageDone("triage", false, d)
}

func mustJSON(v any) json.RawMessage {
	b, err := json.Marshal(v)
	if err != nil {
		return nil
	}
	return b
}
