package core

import (
	"testing"
)

func TestFullPipelineSmoke(t *testing.T) {
	opts := DefaultOptions()
	opts.Seed = 10
	opts.FuzzBudget = 300
	opts.CorpusCap = 80
	opts.TestBudget = 40
	opts.Trials = 12
	r, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%s", r)
	t.Logf("corpus=%d accesses=%d pmcs=%d combos=%d accuracy=%.2f",
		r.CorpusSize, r.ProfiledAccesses, r.DistinctPMCs, r.PMCCombinations, r.Accuracy())
	for id, rec := range r.Issues {
		t.Logf("issue #%d after %d tests (trial %d): %s", id, rec.TestIndex, rec.Trial, rec.Issue.Desc)
	}
	for _, u := range r.Unknown {
		t.Logf("UNKNOWN: %s", u.Desc)
	}
	if r.CorpusSize == 0 || r.DistinctPMCs == 0 {
		t.Fatal("pipeline produced no corpus or PMCs")
	}
	if r.TestedPMCs == 0 {
		t.Fatal("no hinted tests executed")
	}
	if len(r.Issues) == 0 {
		t.Fatal("pipeline found no issues at all (even #13 should appear)")
	}
	if len(r.Unknown) > 0 {
		t.Errorf("unclassified findings present: %d", len(r.Unknown))
	}
}
