package core

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"

	"snowboard/internal/queue"
)

// smallSpec returns a campaign small enough for unit tests while still
// exercising every stage.
func smallSpec(name string, seed int64) CampaignSpec {
	return CampaignSpec{
		Name:       name,
		Seed:       seed,
		FuzzBudget: 60,
		CorpusCap:  20,
		TestBudget: 6,
		Trials:     4,
		Workers:    2,
	}
}

func TestCampaignSpecIdentity(t *testing.T) {
	s := CampaignSpec{}
	d := s.WithDefaults()
	if d.Method == "" || d.Version == "" || d.TestBudget <= 0 {
		t.Fatalf("WithDefaults left holes: %+v", d)
	}
	id1, err := s.ID()
	if err != nil {
		t.Fatal(err)
	}
	id2, err := d.ID()
	if err != nil {
		t.Fatal(err)
	}
	if id1 != id2 {
		t.Fatalf("defaulting changed the identity: %s vs %s", id1, id2)
	}
	if len(id1) != 12 {
		t.Fatalf("ID %q is not a short digest", id1)
	}
	other := smallSpec("x", 2)
	id3, err := other.ID()
	if err != nil {
		t.Fatal(err)
	}
	if id3 == id1 {
		t.Fatal("distinct specs share an ID")
	}
	if _, err := (CampaignSpec{Method: "NOPE"}).ID(); err == nil {
		t.Fatal("unknown method validated")
	}
}

func TestTurnSchedulerFIFOFairness(t *testing.T) {
	// Three contenders taking repeated turns through one slot must be
	// served round-robin: no contender takes two turns while another
	// waits.
	ts := NewTurnScheduler(1)
	// Hold the only slot until all three contenders are in line, so every
	// recorded turn is contended (otherwise a fast starter races through
	// its rounds before the others join).
	ts.Acquire("gate")
	var mu sync.Mutex
	var order []string
	var wg sync.WaitGroup
	const rounds = 5
	for _, id := range []string{"a", "b", "c"} {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				ts.Acquire(id)
				mu.Lock()
				order = append(order, id)
				mu.Unlock()
				ts.Release()
			}
		}(id)
	}
	for {
		ts.mu.Lock()
		n := len(ts.waiting)
		ts.mu.Unlock()
		if n == 3 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	ts.Release()
	wg.Wait()
	if len(order) != 3*rounds {
		t.Fatalf("%d turns taken, want %d", len(order), 3*rounds)
	}
	// FIFO re-admission means round-robin while all three contend: within
	// any window of 3 consecutive turns, no id may appear three times —
	// that would be one contender monopolizing the slot past its turn.
	for i := 0; i+3 <= len(order); i++ {
		w := order[i : i+3]
		counts := map[string]int{}
		for _, id := range w {
			counts[id]++
		}
		for id, n := range counts {
			if n == 3 {
				t.Fatalf("contender %s monopolized window %v (full order %v)", id, w, order)
			}
		}
	}
}

func TestCampaignRunsToCompletion(t *testing.T) {
	reg := queue.NewRegistry(queue.Options{})
	defer reg.Close()
	c, err := StartCampaign(smallSpec("unit", 1), CampaignEnv{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if r.Distributed == nil {
		t.Fatal("campaign report has no distributed summary")
	}
	sum := r.Distributed
	if sum.Reported != sum.Expected || sum.Expected == 0 {
		t.Fatalf("reported %d of %d jobs", sum.Reported, sum.Expected)
	}
	if sum.Lost() {
		t.Fatalf("lost jobs: %v", sum.Missing)
	}
	st := c.Status()
	if st.State != CampaignDone || st.Executed != int64(sum.Expected) {
		t.Fatalf("status = %+v, want done with %d executed", st, sum.Expected)
	}
	if st.Trace == "" || st.ID != c.ID {
		t.Fatalf("status identity incomplete: %+v", st)
	}
}

func TestCampaignPauseResume(t *testing.T) {
	reg := queue.NewRegistry(queue.Options{})
	defer reg.Close()
	c, err := StartCampaign(smallSpec("pausable", 3), CampaignEnv{Registry: reg, Slice: 1})
	if err != nil {
		t.Fatal(err)
	}
	c.Pause()
	// While paused the executor stops at the next slice boundary: the
	// executed counter must go flat.
	settleCampaign(t, c, func() bool { return true })
	before := c.Executed()
	time.Sleep(50 * time.Millisecond)
	if got := c.Executed(); got > before+1 {
		t.Fatalf("executed advanced %d -> %d while paused", before, got)
	}
	if st := c.Status(); st.State != CampaignPaused && st.State != CampaignDone {
		t.Fatalf("state while paused = %q", st.State)
	}
	c.Resume()
	r, err := c.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if r.Distributed == nil || r.Distributed.Lost() {
		t.Fatalf("resume lost work: %+v", r.Distributed)
	}
}

// settleCampaign waits briefly for cond (helper for timing-tolerant
// assertions that don't gate correctness).
func settleCampaign(t *testing.T, c *Campaign, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
}

func TestCampaignReportMemoByteIdentical(t *testing.T) {
	// The same spec against the same state dir must produce byte-identical
	// report JSON — the second run resumes from the campaign-level memo
	// without executing anything.
	dir := t.TempDir()
	spec := smallSpec("memo", 7)

	run := func() ([]byte, *Campaign) {
		reg := queue.NewRegistry(queue.Options{})
		defer reg.Close()
		c, err := StartCampaign(spec, CampaignEnv{Registry: reg, StateDir: dir})
		if err != nil {
			t.Fatal(err)
		}
		r, err := c.Wait()
		if err != nil {
			t.Fatal(err)
		}
		payload, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		return payload, c
	}

	first, c1 := run()
	second, c2 := run()
	if !bytes.Equal(first, second) {
		t.Fatalf("resumed report differs from the original:\n%s\nvs\n%s", first, second)
	}
	if c1.ID != c2.ID {
		t.Fatalf("same spec, different IDs: %s vs %s", c1.ID, c2.ID)
	}
	// The memoized resume executed nothing: its queue was never opened.
	if c2.Status().QueueDepth != 0 {
		t.Fatal("memoized resume touched the queue")
	}

	// The manifest is persisted for restart enumeration.
	specs, err := LoadCampaignSpecs(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 1 {
		t.Fatalf("state dir holds %d campaign manifests, want 1", len(specs))
	}
	gotID, err := specs[0].ID()
	if err != nil {
		t.Fatal(err)
	}
	if gotID != c1.ID {
		t.Fatalf("persisted manifest resolves to %s, want %s", gotID, c1.ID)
	}
}

func TestCampaignFaultInjectionLosesNothing(t *testing.T) {
	// Simulated worker crashes (abandoned leases) on every job's first
	// delivery: the reaper redelivers each one and the campaign still
	// settles every job exactly once.
	reg := queue.NewRegistry(queue.Options{
		LeaseTimeout: 100 * time.Millisecond,
		MaxAttempts:  5,
	})
	defer reg.Close()
	c, err := StartCampaign(smallSpec("crashy", 5), CampaignEnv{
		Registry: reg,
		Fault:    func(jobID, attempt int) bool { return attempt == 1 },
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.Wait()
	if err != nil {
		t.Fatal(err)
	}
	sum := r.Distributed
	if sum == nil {
		t.Fatal("no distributed summary")
	}
	if sum.Reported != sum.Expected || sum.Lost() || len(sum.DeadJobs) != 0 {
		t.Fatalf("crash-injected campaign did not settle cleanly: %+v", sum)
	}
	// Exactly-once fold: the executed counter counts settled jobs, never
	// the abandoned first deliveries.
	if c.Executed() != int64(sum.Expected) {
		t.Fatalf("executed %d, want %d (double-counted redeliveries?)", c.Executed(), sum.Expected)
	}
}

func TestCampaignFaultResultsAreDeterministic(t *testing.T) {
	// Redelivered jobs must report byte-identical results: a crashy run's
	// aggregate equals an undisturbed run's.
	clean := func(fault func(int, int) bool, lease time.Duration) DistSummary {
		reg := queue.NewRegistry(queue.Options{LeaseTimeout: lease, MaxAttempts: 6})
		defer reg.Close()
		c, err := StartCampaign(smallSpec("det", 9), CampaignEnv{Registry: reg, Fault: fault})
		if err != nil {
			t.Fatal(err)
		}
		r, err := c.Wait()
		if err != nil {
			t.Fatal(err)
		}
		sum := *r.Distributed
		// Duplicates counts redeliveries — the only legitimately
		// nondeterministic field under fault injection.
		sum.Duplicates = 0
		return sum
	}
	undisturbed := clean(nil, 0)
	crashy := clean(func(jobID, attempt int) bool { return attempt == 1 && jobID%2 == 0 }, 80*time.Millisecond)
	a, _ := json.Marshal(undisturbed)
	b, _ := json.Marshal(crashy)
	if !bytes.Equal(a, b) {
		t.Fatalf("fault injection changed results:\n%s\nvs\n%s", a, b)
	}
}
