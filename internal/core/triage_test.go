package core

import (
	"reflect"
	"testing"

	"snowboard/internal/detect"
	"snowboard/internal/exec"
	"snowboard/internal/kernel"
	"snowboard/internal/obs"
	"snowboard/internal/sched"
	"snowboard/internal/store"
	"snowboard/internal/trace"
	"snowboard/internal/triage"
)

// triageOpts is a small campaign known to surface a crash-level finding
// (Table 2 issue #3) with recorded repro state.
func triageOpts(seed int64) Options {
	opts := DefaultOptions()
	opts.Seed = seed
	opts.Method, _ = MethodByName("S-CH-NULL")
	opts.FuzzBudget = 400
	opts.CorpusCap = 100
	opts.TestBudget = 60
	opts.Trials = 24
	return opts
}

func triageSummaries(r *Report) map[int]TriageSummary {
	out := make(map[int]TriageSummary)
	for id, rec := range r.Issues {
		if rec.Triage != nil {
			out[id] = *rec.Triage
		}
	}
	return out
}

// TestTriageWorkerInvariant pins the determinism contract for the triage
// stage: every finding with recorded repro state carries a minimized
// bundle digest, sizes never grow, and the triage fields — signatures,
// bundle digests, stats — are identical at 1, 2, and 8 workers.
func TestTriageWorkerInvariant(t *testing.T) {
	var base map[int]TriageSummary
	for _, workers := range []int{1, 2, 8} {
		opts := triageOpts(3)
		opts.Workers = workers
		r, err := Run(opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		sums := triageSummaries(r)
		if len(sums) == 0 {
			t.Fatalf("workers=%d: no triaged findings", workers)
		}
		for id, rec := range r.Issues {
			if rec.Repro == nil {
				continue
			}
			if rec.Triage == nil {
				t.Fatalf("workers=%d: issue #%d has repro state but no triage summary", workers, id)
			}
			s := rec.Triage.Stats
			if s.DecisionsMin > s.DecisionsOrig {
				t.Fatalf("issue #%d: minimized schedule grew: %+v", id, s)
			}
			if s.WriterCallsMin > s.WriterCallsOrig || s.ReaderCallsMin > s.ReaderCallsOrig {
				t.Fatalf("issue #%d: minimized test grew: %+v", id, s)
			}
			if rec.Triage.Bundle == "" || rec.Triage.Signature == "" {
				t.Fatalf("issue #%d: empty bundle digest or signature", id)
			}
		}
		if base == nil {
			base = sums
		} else if !reflect.DeepEqual(base, sums) {
			t.Fatalf("workers=%d: triage summaries diverge:\n%v\nvs baseline\n%v", workers, sums, base)
		}
	}
}

// TestTriageBundleReplaysInFreshEnv round-trips a bundle through the store
// and replays it in a brand-new environment: the replay must reproduce the
// exact crash signature recorded in the bundle.
func TestTriageBundleReplaysInFreshEnv(t *testing.T) {
	opts := triageOpts(3)
	opts.StateDir = t.TempDir()
	r, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	s, err := store.Open(opts.StateDir)
	if err != nil {
		t.Fatal(err)
	}
	replayed := 0
	for id, rec := range r.Issues {
		if rec.Triage == nil {
			continue
		}
		d, err := store.ParseDigest(rec.Triage.Bundle)
		if err != nil {
			t.Fatalf("issue #%d: bad bundle digest: %v", id, err)
		}
		b, err := triage.LoadBundle(s, d)
		if err != nil {
			t.Fatalf("issue #%d: load bundle: %v", id, err)
		}
		if b.Signature.Key() != rec.Triage.Signature {
			t.Fatalf("issue #%d: bundle signature %q != report %q", id, b.Signature.Key(), rec.Triage.Signature)
		}
		env := exec.NewEnv(kernel.Config{Version: b.Kernel})
		var tr trace.Trace
		res := sched.Replay(env, b.Test(), b.State, &tr)
		env.M.SetTrace(nil)
		issues := detect.Analyze(detect.TrialInput{
			Console:  res.Console,
			Trace:    &tr,
			PostScan: env.K.FsckHost(),
			Hung:     res.Hung,
			Deadlock: res.Deadlock,
		}, opts.Detect)
		sig, ok := triage.SignatureOfIssues(issues, b.Hint, b.BugID)
		if !ok {
			t.Fatalf("issue #%d: fresh replay exposed no crash-level issue", id)
		}
		if sig != b.Signature {
			t.Fatalf("issue #%d: fresh replay signature %q != bundle %q", id, sig.Key(), b.Signature.Key())
		}
		replayed++
	}
	if replayed == 0 {
		t.Fatal("no bundles to replay")
	}
}

// TestTriageResumeSkipsMinimizedFindings pins the per-finding memo: a
// second pipeline over the same store must restore every triage summary
// from the stored bundles instead of re-minimizing.
func TestTriageResumeSkipsMinimizedFindings(t *testing.T) {
	dir := t.TempDir()
	runStages := func() *Report {
		opts := triageOpts(3)
		p := NewPipeline(opts)
		s, err := store.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		p.UseStore(s)
		r := p.NewReport()
		p.BuildCorpus(r)
		if err := p.ProfileAll(r); err != nil {
			t.Fatal(err)
		}
		p.IdentifyPMCs(r)
		tests := p.GenerateTests(r, opts.TestBudget)
		p.ExecuteTests(r, tests)
		p.TriageReport(r)
		return r
	}
	r1 := runStages()
	if len(triageSummaries(r1)) == 0 {
		t.Fatal("no triaged findings in the cold run")
	}
	cachedBefore := obs.C(obs.MTriageCached).Value()
	r2 := runStages()
	hits := obs.C(obs.MTriageCached).Value() - cachedBefore
	if int(hits) != len(triageSummaries(r1)) {
		t.Fatalf("warm run hit the triage cache %d times, want %d", hits, len(triageSummaries(r1)))
	}
	if !reflect.DeepEqual(triageSummaries(r1), triageSummaries(r2)) {
		t.Fatalf("resumed triage summaries diverge:\n%v\nvs\n%v", triageSummaries(r2), triageSummaries(r1))
	}
}

// TestTriageCrossCampaignDedup runs two campaigns with different seeds
// against one store: both expose Table 2 issue #3 through different tests
// and schedules, yet fold to a single signature row in the dedup index.
func TestTriageCrossCampaignDedup(t *testing.T) {
	dir := t.TempDir()
	var sigs []string
	for _, seed := range []int64{3, 5} {
		opts := triageOpts(seed)
		opts.StateDir = dir
		r, err := Run(opts)
		if err != nil {
			t.Fatal(err)
		}
		rec, ok := r.Issues[3]
		if !ok || rec.Triage == nil {
			t.Fatalf("seed %d: issue #3 not triaged", seed)
		}
		sigs = append(sigs, rec.Triage.Signature)
	}
	if sigs[0] != sigs[1] {
		t.Fatalf("the same bug got two signatures across campaigns: %q vs %q", sigs[0], sigs[1])
	}
	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	entry, ok := triage.Lookup(s, triage.Signature{Kind: "fs-error", Site: "table2:3", Channel: "ext4_extent_grow->ext4_ext_check_inode"})
	if !ok {
		t.Fatal("signature missing from the dedup index")
	}
	if entry.Count < 2 {
		t.Fatalf("index did not fold both campaigns: %+v", entry)
	}
	if len(entry.Campaigns) != 2 {
		t.Fatalf("want two campaign labels, got %+v", entry.Campaigns)
	}
	if entry.Bundle == "" {
		t.Fatalf("index row lost its canonical bundle: %+v", entry)
	}
}
