package core

import (
	"sync"
	"testing"

	"snowboard/internal/detect"
	"snowboard/internal/sched"
)

// Regression test for the shared-rand.Rand data race the Pipeline used to
// carry in its rng field: profiling and exploration now run concurrently
// inside one pipeline, and with per-unit derived seeds there is no shared
// mutable randomness left. The test drives both stages from separate
// goroutines against worker environments of the same pipeline and relies
// on -race (CI runs the whole suite under it) to flag any regression.
func TestProfilingAndExplorationConcurrently(t *testing.T) {
	opts := DefaultOptions()
	opts.Seed = 5
	opts.FuzzBudget = 200
	opts.CorpusCap = 40
	opts.Trials = 4
	opts.Workers = 4

	p := NewPipeline(opts)
	r := p.NewReport()
	p.BuildCorpus(r)
	if err := p.ProfileAll(r); err != nil {
		t.Fatal(err)
	}
	p.IdentifyPMCs(r)
	tests := p.GenerateTests(r, 8)
	if len(tests) == 0 {
		t.Fatal("no concurrent tests generated")
	}

	// Stage 1b and stage 4 concurrently, on distinct worker environments.
	profEnv := p.Env.Clone()
	expEnv := p.Env.Clone()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for _, prog := range p.Corpus.Progs {
			if _, _, res := profEnv.Profile(prog); res.Crashed() {
				t.Errorf("profiling crashed: %v", res.Faults)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		x := &sched.Explorer{
			Env:       expEnv,
			Trials:    opts.Trials,
			Mode:      sched.ModeSnowboard,
			Detect:    detect.DefaultOptions(),
			KnownPMCs: p.PMCs,
		}
		for i, ct := range tests {
			x.Seed = int64(i + 1)
			x.Explore(ct)
		}
	}()
	wg.Wait()

	// And the full parallel pipeline end to end, all stages fanned out.
	if _, err := Run(opts); err != nil {
		t.Fatal(err)
	}
}
