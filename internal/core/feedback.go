package core

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math/rand"

	"snowboard/internal/cluster"
	"snowboard/internal/cover"
	"snowboard/internal/obs"
	"snowboard/internal/par"
	"snowboard/internal/pmc"
	"snowboard/internal/sched"
	"snowboard/internal/store"
)

// The closed feedback loop (Options.Feedback): instead of ranking PMC
// clusters once and walking the ranking until the test budget runs out,
// the budget is spent in rounds. Each round
//
//  1. allocates its share of the budget — at most half to clusters with
//     recent interleaving-segment yield, proportional to that yield
//     (bandit-style exploitation), the rest continuing an uncommon-first
//     exploration walk; with no credit the walk gets everything, so a
//     zero-signal run visits exactly the one-shot scheduler's clusters —
//  2. coalesces independent selected PMCs — disjoint memory channels
//     whose test pairs land on the same writer/reader programs — into a
//     single composed test, so one execution probes several channels
//     ("cooperative composing"),
//  3. executes the tests with schedule mutation enabled (sched mutates
//     yield schedules that discovered new segments), and
//  4. credits each test's fresh-segment yield back to the clusters that
//     contributed its hints, steering the next round.
//
// Every quantity that steers allocation is a pure function of test order
// — per-test segment accumulators folded sequentially — so feedback
// reports stay bit-identical across worker counts. With a store
// attached, each round checkpoints its credits, cumulative segments,
// pipeline cursors, and partial report under a digest-linked chain key,
// so a killed feedback campaign resumes at the first unfinished round
// and the final report matches the uninterrupted run's byte for byte
// (modulo wall-clock timing fields).

// Feedback metrics.
var mFeedbackRounds = obs.C(obs.MFeedbackRounds)

// defaultFeedbackRounds is the round count when Options.FeedbackRounds is
// unset: enough rounds for credit to steer, few enough that early rounds
// still get a meaningful budget share.
const defaultFeedbackRounds = 4

// maxComposedHints caps a composed test's PMC hints (primary + extras),
// leaving maxCurrentPMCs headroom for the explorer's incidental adoption.
const maxComposedHints = 3

// feedbackRounds resolves the configured round count.
func (p *Pipeline) feedbackRounds() int {
	if p.Opts.FeedbackRounds > 0 {
		return p.Opts.FeedbackRounds
	}
	return defaultFeedbackRounds
}

// feedbackRoundState is the per-round checkpoint persisted as a
// KindFeedback artifact, everything needed to resume the loop after the
// round: bandit credits, the cumulative segment accumulator, the
// deterministic seed cursors, and the partial report.
type feedbackRoundState struct {
	Round        int                  `json:"round"` // 0-based, the round just finished
	TestsDone    int                  `json:"tests_done"`
	Cursor       int                  `json:"cursor"` // exploration-walk position after the round
	GenCalls     int                  `json:"gen_calls"`
	ExploreUnits int                  `json:"explore_units"`
	Credits      []int64              `json:"credits"` // by ordered-cluster index
	Segments     []cover.SegmentCount `json:"segments"`
	Report       json.RawMessage      `json:"report"` // partial Report (Metrics not yet captured)
}

// feedbackKeys derives the digest-linked chain key of every round, in the
// style of the identify chain: round r's key pins the corpus, the PMC
// set, every option that shapes the loop, and — through prev — the whole
// round prefix. Returns nil when no store is attached or digests fail.
func (p *Pipeline) feedbackKeys(budget, rounds int) []store.Digest {
	if p.store == nil {
		return nil
	}
	cd, err := p.ensureCorpusDigest()
	if err != nil {
		obs.Diag.Printf("stage feedback: corpus digest: %v", err)
		return nil
	}
	pd, err := p.ensurePMCDigest()
	if err != nil {
		obs.Diag.Printf("stage feedback: PMC digest: %v", err)
		return nil
	}
	m := p.Opts.Method
	d := p.Opts.Detect
	prev := store.Digest{}
	keys := make([]store.Digest, rounds)
	for i := range keys {
		prev = store.Key(keyPrefix, "feedback-round",
			"corpus="+cd.String(),
			"pmcs="+pd.String(),
			fmt.Sprintf("version=%s", p.Opts.Version),
			fmt.Sprintf("seed=%d", p.Opts.Seed),
			fmt.Sprintf("method=%d/%s/%s/%d", m.Kind, m.Name, m.Strategy.Name, m.Order),
			fmt.Sprintf("budget=%d", budget),
			fmt.Sprintf("rounds=%d", rounds),
			fmt.Sprintf("trials=%d", p.Opts.Trials),
			fmt.Sprintf("detect=%t/%t/%t/%d", d.Console, d.Races, d.TornReads, d.RaceMode),
			fmt.Sprintf("no-incidental=%t", p.Opts.DisableIncidental),
			"prev="+prev.String(),
			fmt.Sprintf("round=%d", i),
		)
		keys[i] = prev
	}
	return keys
}

// loadFeedbackRounds probes the chain keys newest-first and restores the
// most recent persisted round: report, credits, segments, cursors. It
// returns the next round to run (0 when nothing usable is stored) and the
// restored exploration-walk cursor.
func (p *Pipeline) loadFeedbackRounds(keys []store.Digest, r *Report, credits []int64) (int, int) {
	for round := len(keys) - 1; round >= 0; round-- {
		payload, _, out, ok := p.loadStage("feedback", keys[round], store.KindFeedback)
		if !ok {
			continue
		}
		var st feedbackRoundState
		if err := json.Unmarshal(payload, &st); err != nil {
			obs.Diag.Printf("stage feedback: discarding undecodable round artifact %s: %v", out.Short(), err)
			continue
		}
		if st.Round != round || len(st.Credits) != len(credits) {
			obs.Diag.Printf("stage feedback: discarding round artifact %s: shape mismatch", out.Short())
			continue
		}
		var nr Report
		if err := json.Unmarshal(st.Report, &nr); err != nil {
			obs.Diag.Printf("stage feedback: discarding round artifact %s: bad report: %v", out.Short(), err)
			continue
		}
		if nr.Issues == nil {
			nr.Issues = make(map[int]IssueRecord)
		}
		*r = nr
		copy(credits, st.Credits)
		p.segs = cover.ImportSegments(st.Segments)
		p.genCalls = st.GenCalls
		p.exploreUnits = st.ExploreUnits
		mIssuesFound.Set(int64(len(r.Issues)))
		mCoverPairs.Set(int64(r.CoverPairs))
		mCoverSegments.Set(int64(r.CoverSegments))
		obs.Diag.Printf("stage feedback: resumed after round %d (%s, %d tests done, %d segments)",
			round, out.Short(), st.TestsDone, r.CoverSegments)
		return round + 1, st.Cursor
	}
	return 0, 0
}

// saveFeedbackRound checkpoints the loop after one round.
func (p *Pipeline) saveFeedbackRound(key store.Digest, round, testsDone, cursor int, credits []int64, r *Report) {
	payload, err := json.Marshal(r)
	if err != nil {
		obs.Diag.Printf("stage feedback: encode round report: %v", err)
		return
	}
	st := feedbackRoundState{
		Round:        round,
		TestsDone:    testsDone,
		Cursor:       cursor,
		GenCalls:     p.genCalls,
		ExploreUnits: p.exploreUnits,
		Credits:      append([]int64(nil), credits...),
		Segments:     p.segments().Export(),
		Report:       payload,
	}
	blob, err := json.Marshal(&st)
	if err != nil {
		obs.Diag.Printf("stage feedback: encode round state: %v", err)
		return
	}
	p.saveStage("feedback", key, store.KindFeedback, blob, nil)
}

// allocateBudget splits budget across positive-credit clusters
// proportional to their credit, by largest remainder with index
// tie-break (the clusters arrive uncommon-first, so ties favor rarer
// communication). Clusters without credit get nothing — exploration of
// unproven clusters is the cursor walk's job, not this function's. With
// no positive credit at all the allocation is all zeros.
func allocateBudget(budget int, credits []int64) []int {
	n := len(credits)
	alloc := make([]int, n)
	if n == 0 || budget <= 0 {
		return alloc
	}
	var total int64
	for _, c := range credits {
		if c > 0 {
			total += c
		}
	}
	if total == 0 {
		return alloc
	}
	type rem struct {
		idx int
		rem int64
	}
	rems := make([]rem, 0, n)
	given := 0
	for i, c := range credits {
		if c <= 0 {
			continue
		}
		share := int64(budget) * c
		alloc[i] = int(share / total)
		rems = append(rems, rem{idx: i, rem: share % total})
		given += alloc[i]
	}
	// Hand the leftover to the largest remainders, lowest index first on
	// ties (the clusters arrive uncommon-first).
	left := budget - given
	for left > 0 {
		best := -1
		for i := range rems {
			if rems[i].rem < 0 {
				continue
			}
			if best < 0 || rems[i].rem > rems[best].rem {
				best = i
			}
		}
		if best < 0 {
			break
		}
		alloc[rems[best].idx]++
		rems[best].rem = -1
		left--
	}
	return alloc
}

// keyOverlap reports whether two PMC access keys touch overlapping bytes.
func keyOverlap(a, b pmc.Key) bool {
	return a.Addr < b.Addr+uint64(b.Size) && b.Addr < a.Addr+uint64(a.Size)
}

// independentChannels reports whether two PMCs are disjoint memory
// channels — no byte of one's write/read ranges overlaps the other's —
// and sit on distinct sites, the precondition for composing them into one
// test without the schedules interfering.
func independentChannels(a, b pmc.PMC) bool {
	if a.Write.Ins == b.Write.Ins && a.Read.Ins == b.Read.Ins {
		return false
	}
	return !keyOverlap(a.Write, b.Write) && !keyOverlap(a.Write, b.Read) &&
		!keyOverlap(a.Read, b.Write) && !keyOverlap(a.Read, b.Read)
}

// clusterLabel is the short stable metric label of a cluster key, bounding
// the gen.budget.<cluster> metric namespace regardless of key contents.
func clusterLabel(key string) string {
	h := fnv.New32a()
	h.Write([]byte(key))
	return fmt.Sprintf("%08x", h.Sum32())
}

// feedbackCandidate is one cluster-drawn test before composing.
type feedbackCandidate struct {
	test    sched.ConcurrentTest
	cluster int
}

// drawCandidate generates one concurrent test from cluster ci, or false
// when the cluster has no executable pairs.
func (p *Pipeline) drawCandidate(cs []cluster.Cluster, ci int, rng *rand.Rand) (feedbackCandidate, bool) {
	ex := cluster.Exemplar(&cs[ci], rng)
	entry := p.PMCs.Entries[ex]
	if entry == nil || len(entry.Pairs) == 0 {
		return feedbackCandidate{}, false
	}
	pair := entry.Pairs[rng.Intn(len(entry.Pairs))]
	hint := entry.PMC
	return feedbackCandidate{
		cluster: ci,
		test: sched.ConcurrentTest{
			Writer: p.Corpus.Progs[pair.Writer],
			Reader: p.Corpus.Progs[pair.Reader],
			Hint:   &hint,
			Pair:   pair,
		},
	}, true
}

// composeTests coalesces candidates into executable tests: candidates on
// the same (writer, reader) corpus pair whose channels are mutually
// independent ride along as Extra hints of the first; everything else
// stays a standalone test. Returns the tests plus, per test, the cluster
// indices that contributed hints (for credit attribution).
func composeTests(cands []feedbackCandidate) (tests []sched.ConcurrentTest, contributors [][]int) {
	byPair := make(map[pmc.Pair]int) // corpus pair -> index into tests
	for _, c := range cands {
		ti, ok := byPair[c.test.Pair]
		if ok {
			t := &tests[ti]
			compatible := len(t.Extra)+1 < maxComposedHints
			if compatible && !independentChannels(*t.Hint, *c.test.Hint) {
				compatible = false
			}
			for _, e := range t.Extra {
				if !compatible {
					break
				}
				if !independentChannels(e, *c.test.Hint) {
					compatible = false
				}
			}
			if compatible {
				t.Extra = append(t.Extra, *c.test.Hint)
				contributors[ti] = append(contributors[ti], c.cluster)
				continue
			}
		}
		tests = append(tests, c.test)
		contributors = append(contributors, []int{c.cluster})
		if !ok {
			byPair[c.test.Pair] = len(tests) - 1
		}
	}
	return tests, contributors
}

// RunFeedback spends budget concurrent tests through the closed feedback
// loop described at the top of this file (stages 3+4, interleaved per
// round). Non-PMC methods and empty corpora degrade to the one-shot path
// with a note.
func (p *Pipeline) RunFeedback(r *Report, budget int) {
	if p.Opts.Method.Kind != MethodPMC {
		note := fmt.Sprintf("feedback ignored: method %s is not PMC-guided", p.Opts.Method.Name)
		obs.Diag.Printf("stage feedback: %s", note)
		r.Notes = append(r.Notes, note)
		tests := p.GenerateTests(r, budget)
		p.ExecuteTests(r, tests)
		return
	}
	if p.Corpus == nil || p.Corpus.Len() == 0 {
		// GenerateTests records the empty-corpus note.
		tests := p.GenerateTests(r, budget)
		p.ExecuteTests(r, tests)
		return
	}

	rounds := p.feedbackRounds()
	if rounds > budget {
		rounds = budget
	}
	if rounds <= 0 {
		return
	}
	span := obs.StartSpan("stage.feedback", obs.A("budget", budget), obs.A("rounds", rounds))

	cs := cluster.Clusters(p.PMCs, p.Opts.Method.Strategy)
	// The stable uncommon-first order is the zero-credit prior; feedback
	// reorders budget, not the clusters themselves.
	cluster.OrderClusters(cs, cluster.UncommonFirst, nil)
	r.ExemplarPMCs = len(cs)

	credits := make([]int64, len(cs))
	testsDone := 0
	startRound := 0
	cursor := 0 // next uncommon-first cluster the exploration walk visits
	keys := p.feedbackKeys(budget, rounds)
	if keys != nil {
		var restored int
		startRound, restored = p.loadFeedbackRounds(keys, r, credits)
		if startRound > 0 {
			// Recompute testsDone from the restored report rather than
			// trusting the artifact alone.
			testsDone = r.TestedTests
			cursor = restored
		}
	}

	for round := startRound; round < rounds; round++ {
		if round > 0 {
			// Halve credit each round so allocation follows *recent* yield:
			// a cluster that went quiet decays back toward the uniform
			// prior within a few rounds.
			for i := range credits {
				credits[i] -= credits[i] / 2
			}
		}
		roundBudget := budget / rounds
		if round < budget%rounds {
			roundBudget++
		}
		if roundBudget <= 0 {
			continue
		}
		// Explore/exploit split: at most half the round goes to clusters
		// with recent segment yield (proportional, largest remainder); the
		// rest continues the uncommon-first walk where it left off. With no
		// credit yet — round 0, or a dry spell — the walk gets everything,
		// so a zero-signal feedback run visits exactly the clusters the
		// one-shot uncommon-first scheduler would.
		alloc := allocateBudget(roundBudget/2, credits)
		exploit := 0
		for _, a := range alloc {
			exploit += a
		}
		for k := 0; k < roundBudget-exploit; k++ {
			alloc[cursor%len(cs)]++
			cursor++
		}

		rng := rand.New(rand.NewSource(par.UnitSeed(p.Opts.Seed, par.StageGenerate, p.genCalls)))
		p.genCalls++
		var cands []feedbackCandidate
		for ci := range cs {
			for k := 0; k < alloc[ci]; k++ {
				if c, ok := p.drawCandidate(cs, ci, rng); ok {
					cands = append(cands, c)
				}
			}
			if alloc[ci] > 0 {
				obs.C(obs.MGenBudgetPrefix + clusterLabel(cs[ci].Key)).Add(int64(alloc[ci]))
			}
		}
		tests, contributors := composeTests(cands)
		// Composing frees budget (one execution probes several channels);
		// refill from the allocation order so the round still spends its
		// full execution budget.
		refill := 0
		for len(tests) < roundBudget && refill < len(cs) {
			ci := refill % len(cs)
			refill++
			if alloc[ci] == 0 {
				continue
			}
			if c, ok := p.drawCandidate(cs, ci, rng); ok {
				tests = append(tests, c.test)
				contributors = append(contributors, []int{c.cluster})
			}
		}
		composed := 0
		for i := range tests {
			if len(tests[i].Extra) > 0 {
				composed++
			}
		}
		r.ComposedTests += composed
		r.GeneratedTests += len(tests)
		mGenTests.Add(int64(len(tests)))

		issuesBefore := len(r.Issues)
		yields := p.executeTests(r, tests)
		newSegments := 0
		for ti, y := range yields {
			newSegments += y
			if y == 0 {
				continue
			}
			for _, ci := range contributors[ti] {
				credits[ci] += int64(y)
			}
		}
		testsDone += len(tests)
		r.FeedbackRounds = round + 1
		mFeedbackRounds.Inc()
		obs.Emit(obs.EvFeedbackRound, obs.A("round", round), obs.A("tests", len(tests)),
			obs.A("composed", composed), obs.A("segments", newSegments),
			obs.A("issues", len(r.Issues)-issuesBefore))
		if keys != nil {
			p.saveFeedbackRound(keys[round], round, testsDone, cursor, credits, r)
		}
	}
	span.End(obs.A("tests", testsDone), obs.A("segments", r.CoverSegments))
}
