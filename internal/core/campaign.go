package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"snowboard/internal/detect"
	"snowboard/internal/kernel"
	"snowboard/internal/obs"
	"snowboard/internal/queue"
	"snowboard/internal/sched"
	"snowboard/internal/store"
)

// This file is the campaign control plane's core: a Campaign is one
// tenant's pipeline run wrapped in a submit/pause/resume/status handle,
// executing its concurrent tests through a named queue shared with every
// other tenant and taking execution turns from a fair scheduler. cmd/sbd
// hosts many of these behind an HTTP API; the tests in campaign_test.go
// drive them directly.

// campaignKeyPrefix versions the campaign manifest/report memo schema.
const campaignKeyPrefix = "sbd-campaign-v1"

// CampaignSpec is the JSON submission shape for one campaign: the subset
// of Options that is serializable and safe to accept over the wire (the
// method travels by name, the kernel version as a string). The canonical
// manifest encoding of the defaulted spec is the campaign's identity:
// submitting byte-equivalent work twice yields the same campaign ID.
type CampaignSpec struct {
	Name           string `json:"name,omitempty"`    // display name (defaults to the method)
	Version        string `json:"version"`           // simulated kernel version
	Method         string `json:"method"`            // generation method name (core.Methods)
	Seed           int64  `json:"seed"`              // deterministic seed
	FuzzBudget     int    `json:"fuzz_budget"`       // stage-1 sequential executions
	CorpusCap      int    `json:"corpus_cap"`        // stage-1 corpus size cap
	TestBudget     int    `json:"test_budget"`       // stage-4 concurrent tests
	Trials         int    `json:"trials"`            // interleaving trials per test
	Workers        int    `json:"workers,omitempty"` // local-stage fan-out (0 = per CPU)
	Feedback       bool   `json:"feedback,omitempty"`
	FeedbackRounds int    `json:"feedback_rounds,omitempty"`
}

// WithDefaults fills unset fields from DefaultOptions.
func (s CampaignSpec) WithDefaults() CampaignSpec {
	d := DefaultOptions()
	if s.Version == "" {
		s.Version = string(d.Version)
	}
	if s.Method == "" {
		s.Method = d.Method.Name
	}
	if s.Name == "" {
		s.Name = s.Method
	}
	if s.Seed == 0 {
		s.Seed = d.Seed
	}
	if s.FuzzBudget <= 0 {
		s.FuzzBudget = d.FuzzBudget
	}
	if s.CorpusCap <= 0 {
		s.CorpusCap = d.CorpusCap
	}
	if s.TestBudget <= 0 {
		s.TestBudget = d.TestBudget
	}
	if s.Trials <= 0 {
		s.Trials = d.Trials
	}
	return s
}

// Validate rejects specs that cannot build Options. Call on the defaulted
// spec.
func (s CampaignSpec) Validate() error {
	if _, ok := MethodByName(s.Method); !ok {
		return fmt.Errorf("campaign: unknown method %q", s.Method)
	}
	if s.FuzzBudget <= 0 || s.TestBudget <= 0 || s.Trials <= 0 {
		return fmt.Errorf("campaign: budgets must be positive (fuzz=%d tests=%d trials=%d)",
			s.FuzzBudget, s.TestBudget, s.Trials)
	}
	return nil
}

// Manifest returns the canonical JSON encoding of the defaulted spec —
// the durable, content-addressed submission record (store.KindCampaign).
func (s CampaignSpec) Manifest() ([]byte, error) {
	s = s.WithDefaults()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return json.Marshal(s)
}

// ID derives the campaign's identity from its manifest: a short digest,
// stable across submissions and server restarts.
func (s CampaignSpec) ID() (string, error) {
	m, err := s.Manifest()
	if err != nil {
		return "", err
	}
	return store.Key(campaignKeyPrefix, string(m)).Short(), nil
}

// BuildOptions converts the spec into pipeline Options rooted at stateDir.
func (s CampaignSpec) BuildOptions(stateDir string) (Options, error) {
	s = s.WithDefaults()
	if err := s.Validate(); err != nil {
		return Options{}, err
	}
	m, _ := MethodByName(s.Method)
	o := DefaultOptions()
	o.Version = kernel.Version(s.Version)
	o.Seed = s.Seed
	o.FuzzBudget = s.FuzzBudget
	o.CorpusCap = s.CorpusCap
	o.Method = m
	o.TestBudget = s.TestBudget
	o.Trials = s.Trials
	o.Workers = s.Workers
	o.Feedback = s.Feedback
	o.FeedbackRounds = s.FeedbackRounds
	o.StateDir = stateDir
	return o, nil
}

// TurnScheduler hands out execution turns fairly across campaigns: FIFO
// admission with at most slots concurrent holders. Each campaign acquires
// a turn, executes a bounded slice of jobs, and releases; because
// finishers rejoin the tail of the line, steady-state service order is
// round-robin and per-campaign throughput stays within a small factor at
// equal budgets, no matter how many tenants pile on.
type TurnScheduler struct {
	mu      sync.Mutex
	cond    *sync.Cond
	slots   int
	busy    int
	waiting []string
}

// NewTurnScheduler returns a scheduler admitting slots concurrent turns
// (minimum 1).
func NewTurnScheduler(slots int) *TurnScheduler {
	if slots < 1 {
		slots = 1
	}
	t := &TurnScheduler{slots: slots}
	t.cond = sync.NewCond(&t.mu)
	return t
}

// Acquire blocks until id reaches the head of the line and a slot frees.
func (t *TurnScheduler) Acquire(id string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.waiting = append(t.waiting, id)
	for t.busy >= t.slots || t.waiting[0] != id {
		t.cond.Wait()
	}
	t.waiting = t.waiting[1:]
	t.busy++
	t.cond.Broadcast()
}

// Release returns the slot taken by Acquire.
func (t *TurnScheduler) Release() {
	t.mu.Lock()
	t.busy--
	t.cond.Broadcast()
	t.mu.Unlock()
}

// CampaignEnv is the shared control-plane context a campaign runs in: the
// artifact store root (durability), the multi-queue registry plus its TCP
// address (job distribution over the real wire), and the fair turn
// scheduler. One env is shared by every campaign on a server.
type CampaignEnv struct {
	StateDir string          // artifact store root ("" = memory only, no resume)
	Registry *queue.Registry // named per-campaign queues (required)
	Addr     string          // the registry listener's TCP address ("" = lease in-process)
	Slice    int             // jobs executed per fair-scheduler turn (default 4)
	Retries  int             // queue-client reconnect budget (default 8)

	// Turns, when set, arbitrates execution fairly across campaigns; nil
	// lets every campaign run unthrottled.
	Turns *TurnScheduler

	// Dial overrides the queue client transport (chaos tests inject
	// FlakyDialer); nil uses plain TCP. Only used when Addr is set.
	Dial func(addr string) (net.Conn, error)

	// ExecGate, when set, is a start barrier: every campaign blocks here
	// after pushing its jobs and before executing the first one, so
	// fairness tests measure campaigns that began together.
	ExecGate <-chan struct{}

	// Fault, when set, simulates a worker crash: a true return abandons
	// the lease for (jobID, attempt) without acking, leaving redelivery to
	// the lease reaper.
	Fault func(jobID, attempt int) bool
}

func (e CampaignEnv) slice() int {
	if e.Slice <= 0 {
		return 4
	}
	return e.Slice
}

func (e CampaignEnv) retries() int {
	if e.Retries <= 0 {
		return 8
	}
	return e.Retries
}

// Campaign states.
const (
	CampaignPending = "pending"
	CampaignRunning = "running"
	CampaignPaused  = "paused"
	CampaignDone    = "done"
	CampaignFailed  = "failed"
)

// Campaign is one running (or finished) tenant: spec, identity, live
// progress counters, and the pause/resume gate. All methods are safe for
// concurrent use.
type Campaign struct {
	Spec  CampaignSpec // defaulted spec
	ID    string       // manifest digest (short)
	Trace string       // flight-recorder trace ID

	env      CampaignEnv
	manifest []byte
	scope    obs.Scope

	mu     sync.Mutex
	cond   *sync.Cond
	state  string
	paused bool
	err    error
	report *Report

	expected  atomic.Int64 // jobs pushed for execution
	executed  atomic.Int64 // jobs this campaign's executor settled
	exercised atomic.Int64
	dead      atomic.Int64

	done chan struct{}
}

// CampaignStatus is the JSON progress snapshot served at /campaigns.
type CampaignStatus struct {
	ID          string       `json:"id"`
	Name        string       `json:"name"`
	Trace       string       `json:"trace"`
	State       string       `json:"state"`
	Expected    int64        `json:"expected_jobs"`
	Executed    int64        `json:"executed"`
	Exercised   int64        `json:"exercised"`
	DeadLetters int64        `json:"dead_letters"`
	Issues      int          `json:"issues"`
	QueueDepth  int64        `json:"queue_depth"`
	ExecPerMin  float64      `json:"exec_per_min"`
	Error       string       `json:"error,omitempty"`
	Distributed *DistSummary `json:"distributed,omitempty"`
}

// StartCampaign validates, registers, and launches a campaign in env; the
// returned handle is live immediately. With a state dir, the manifest is
// persisted as a KindCampaign artifact so a restarted server can
// re-enumerate and resume every submission, and the finished report is
// memoized so a completed campaign resumes byte-identically without
// re-executing.
func StartCampaign(spec CampaignSpec, env CampaignEnv) (*Campaign, error) {
	if env.Registry == nil {
		return nil, errors.New("campaign: env.Registry is required")
	}
	spec = spec.WithDefaults()
	manifest, err := spec.Manifest()
	if err != nil {
		return nil, err
	}
	id := store.Key(campaignKeyPrefix, string(manifest)).Short()
	if env.StateDir != "" {
		st, err := store.Open(env.StateDir)
		if err != nil {
			return nil, err
		}
		if _, err := st.Put(store.KindCampaign, manifest); err != nil {
			return nil, fmt.Errorf("campaign: persist manifest: %w", err)
		}
	}
	oc := obs.StartCampaign(spec.Name + "/" + id)
	c := &Campaign{
		Spec:     spec,
		ID:       id,
		Trace:    oc.Trace,
		env:      env,
		manifest: manifest,
		scope:    obs.CampaignScope(id),
		state:    CampaignPending,
		done:     make(chan struct{}),
	}
	c.cond = sync.NewCond(&c.mu)
	go c.run()
	return c, nil
}

// LoadCampaignSpecs enumerates the persisted campaign manifests under
// stateDir — what a restarted control plane resubmits to resume every
// in-flight campaign.
func LoadCampaignSpecs(stateDir string) ([]CampaignSpec, error) {
	st, err := store.Open(stateDir)
	if err != nil {
		return nil, err
	}
	var specs []CampaignSpec
	for _, d := range st.List(store.KindCampaign) {
		payload, err := st.Get(store.KindCampaign, d)
		if err != nil {
			obs.Diag.Printf("campaign: skipping unreadable manifest %s: %v", d.Short(), err)
			continue
		}
		var s CampaignSpec
		if err := json.Unmarshal(payload, &s); err != nil {
			obs.Diag.Printf("campaign: skipping undecodable manifest %s: %v", d.Short(), err)
			continue
		}
		specs = append(specs, s)
	}
	return specs, nil
}

// Pause stops the campaign at its next checkpoint (between stages, or
// between execution slices); jobs already leased finish first.
func (c *Campaign) Pause() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state == CampaignRunning || c.state == CampaignPending {
		c.paused = true
		c.state = CampaignPaused
	}
}

// Resume lifts a Pause.
func (c *Campaign) Resume() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.paused {
		c.paused = false
		c.state = CampaignRunning
		c.cond.Broadcast()
	}
}

// gate blocks while the campaign is paused.
func (c *Campaign) gate() {
	c.mu.Lock()
	for c.paused {
		c.cond.Wait()
	}
	c.mu.Unlock()
}

// Done is closed when the campaign finishes (or fails).
func (c *Campaign) Done() <-chan struct{} { return c.done }

// Wait blocks until the campaign finishes and returns its report.
func (c *Campaign) Wait() (*Report, error) {
	<-c.done
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.report, c.err
}

// Report returns the finished report (nil until done).
func (c *Campaign) Report() *Report {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.report
}

// Executed returns the number of jobs this campaign's executor settled so
// far — the counter fairness tests sample.
func (c *Campaign) Executed() int64 { return c.executed.Load() }

// QueueName returns the campaign's queue name in the shared registry.
func (c *Campaign) QueueName() string { return "campaign." + c.ID }

// Status snapshots live progress.
func (c *Campaign) Status() CampaignStatus {
	c.mu.Lock()
	state, err, r := c.state, c.err, c.report
	c.mu.Unlock()
	st := CampaignStatus{
		ID:          c.ID,
		Name:        c.Spec.Name,
		Trace:       c.Trace,
		State:       state,
		Expected:    c.expected.Load(),
		Executed:    c.executed.Load(),
		Exercised:   c.exercised.Load(),
		DeadLetters: c.dead.Load(),
		ExecPerMin:  float64(c.scope.C("exec.tests").Value()),
	}
	if q := c.env.Registry.Get(c.QueueName()); q != nil {
		st.QueueDepth = int64(q.Stats().Pending)
	}
	if err != nil {
		st.Error = err.Error()
	}
	if r != nil {
		st.Issues = len(r.Issues)
		st.Distributed = r.Distributed
		if r.Distributed != nil {
			st.Issues = len(r.Distributed.BugIDs)
		}
	}
	return st
}

func (c *Campaign) setState(s string) {
	c.mu.Lock()
	if !c.paused || s == CampaignDone || s == CampaignFailed {
		c.state = s
	}
	c.mu.Unlock()
}

func (c *Campaign) finish(r *Report, err error) {
	c.mu.Lock()
	c.report, c.err = r, err
	if err != nil {
		c.state = CampaignFailed
	} else {
		c.state = CampaignDone
	}
	c.paused = false
	c.cond.Broadcast()
	c.mu.Unlock()
	attrs := []obs.Attr{obs.A("campaign", c.ID)}
	if err != nil {
		attrs = append(attrs, obs.A("error", err.Error()))
	}
	obs.EmitTrace(c.Trace, obs.EvCampaignDone, attrs...)
	close(c.done)
}

// reportKey memoizes the whole campaign: same manifest, same report.
func (c *Campaign) reportKey() store.Digest {
	return store.Key(campaignKeyPrefix, "report", string(c.manifest))
}

func (c *Campaign) loadReport(st *store.Store) (*Report, bool) {
	sr, err := st.GetStage(c.reportKey())
	if err != nil {
		return nil, false
	}
	payload, err := st.Get(store.KindReport, sr.Out)
	if err != nil {
		return nil, false
	}
	var r Report
	if err := json.Unmarshal(payload, &r); err != nil {
		obs.Diag.Printf("campaign %s: discarding undecodable report memo: %v", c.ID, err)
		return nil, false
	}
	if r.Issues == nil {
		r.Issues = make(map[int]IssueRecord)
	}
	return &r, true
}

func (c *Campaign) saveReport(st *store.Store, r *Report) {
	payload, err := json.Marshal(r)
	if err != nil {
		obs.Diag.Printf("campaign %s: encode report: %v", c.ID, err)
		return
	}
	d, err := st.Put(store.KindReport, payload)
	if err != nil {
		obs.Diag.Printf("campaign %s: persist report: %v", c.ID, err)
		return
	}
	if err := st.PutStage(c.reportKey(), store.StageResult{Kind: store.KindReport, Out: d}); err != nil {
		obs.Diag.Printf("campaign %s: persist report memo: %v", c.ID, err)
	}
}

// run is the campaign goroutine: local stages 1–3 (memoized through the
// shared store), then stage 4 through the campaign's named queue under
// the fair scheduler. The finished report is memoized campaign-level, so
// a restarted server resumes completed campaigns byte-identically and
// in-flight ones re-run only what the stage memos don't cover.
func (c *Campaign) run() {
	c.gate()
	c.setState(CampaignRunning)

	opts, err := c.Spec.BuildOptions(c.env.StateDir)
	if err != nil {
		c.finish(nil, err)
		return
	}
	p := NewPipeline(opts)
	var st *store.Store
	if c.env.StateDir != "" {
		st, err = store.Open(c.env.StateDir)
		if err != nil {
			c.finish(nil, err)
			return
		}
		p.UseStore(st)
		if r, ok := c.loadReport(st); ok {
			// The whole campaign is memoized: resume instantly with the
			// stored report, byte-for-byte what the uninterrupted run wrote.
			c.expected.Store(int64(c.Spec.TestBudget))
			c.executed.Store(int64(c.Spec.TestBudget))
			c.finish(r, nil)
			return
		}
	}

	r := p.NewReport()
	p.BuildCorpus(r)
	c.gate()
	if err := p.ProfileAll(r); err != nil {
		c.finish(nil, err)
		return
	}
	c.gate()
	p.IdentifyPMCs(r)
	c.gate()

	if c.Spec.Feedback {
		// Feedback interleaves generation and execution round by round;
		// its budget allocation depends on each round's results, so it
		// cannot ship as a static job set. It runs locally (stage memos
		// still checkpoint each round) and only stage-4 distribution is
		// skipped.
		p.RunFeedback(r, opts.TestBudget)
		p.TriageReport(r)
	} else if err := c.runDistributed(p, r, opts); err != nil {
		c.finish(nil, err)
		return
	}

	// Metrics deliberately stay uncaptured: the obs registry is shared by
	// every tenant and varies run to run, and the campaign report memo
	// must be byte-identical across resumes.
	if st != nil {
		c.saveReport(st, r)
	}
	c.finish(r, nil)
}

// runDistributed pushes the generated tests onto the campaign's named
// queue and executes them through the control plane's own wire path,
// taking fair-scheduler turns between slices.
func (c *Campaign) runDistributed(p *Pipeline, r *Report, opts Options) error {
	cts := p.GenerateTests(r, opts.TestBudget)
	q := c.env.Registry.Open(c.QueueName())
	corpusDigest := ""
	if p.store != nil {
		corpusDigest, _, _ = p.ArtifactDigests()
	}
	for i, ct := range cts {
		job := queue.Job{ID: i, Hint: ct.Hint, Pair: ct.Pair, Trace: c.Trace}
		if corpusDigest != "" {
			job.Corpus = corpusDigest
		} else {
			job.Writer, job.Reader = ct.Writer, ct.Reader
		}
		if err := q.Push(job); err != nil {
			return fmt.Errorf("campaign %s: push job %d: %w", c.ID, i, err)
		}
	}
	c.expected.Store(int64(len(cts)))

	lsr, err := c.dialLeaser(q)
	if err != nil {
		return err
	}
	defer lsr.Close()

	if c.env.ExecGate != nil {
		<-c.env.ExecGate
	}
	c.executeLoop(p, q, lsr)

	// Every job settled (acked or dead-lettered): fold results exactly
	// once per job — redelivered duplicates are byte-identical (seeds
	// derive from job IDs) and discarded — and surface dead letters.
	sum := AggregateResults(len(cts), q.Results(), q.DeadLetters())
	r.Distributed = &sum
	c.dead.Store(int64(len(sum.DeadJobs)))
	if sum.Lost() {
		return fmt.Errorf("campaign %s: jobs neither reported nor dead-lettered: %v", c.ID, sum.Missing)
	}
	return nil
}

// jobLeaser abstracts where the executor leases from: the registry
// listener over TCP (the production path, chaos-injectable via env.Dial)
// or the in-process queue when the env has no listener.
type jobLeaser interface {
	Lease() (queue.Lease, error)
	Ack(id uint64) error
	Nack(id uint64, reason string) error
	Extend(id uint64, d time.Duration) (time.Time, error)
	Report(res queue.JobResult) error
	Close() error
}

type localLeaser struct{ q *queue.Queue }

func (l localLeaser) Lease() (queue.Lease, error)         { return l.q.TryLease() }
func (l localLeaser) Ack(id uint64) error                 { return l.q.Ack(id) }
func (l localLeaser) Nack(id uint64, reason string) error { return l.q.Nack(id, reason) }
func (l localLeaser) Extend(id uint64, d time.Duration) (time.Time, error) {
	return l.q.Extend(id, d)
}
func (l localLeaser) Report(res queue.JobResult) error { return l.q.Report(res) }
func (l localLeaser) Close() error                     { return nil }

// keepLease extends a lease at half-TTL intervals until stopped, so
// explorations longer than the queue's lease timeout are not reaped out
// from under a live executor (mirrors sbexec).
func keepLease(lsr jobLeaser, ls queue.Lease) (stop func()) {
	ttl := time.Until(ls.Deadline)
	if ttl < 20*time.Millisecond {
		ttl = 20 * time.Millisecond
	}
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(ttl / 2)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				if _, err := lsr.Extend(ls.ID, 0); err != nil {
					// Lease gone (expired or settled); the fold dedups.
					return
				}
			}
		}
	}()
	return func() { close(done) }
}

func (c *Campaign) dialLeaser(q *queue.Queue) (jobLeaser, error) {
	if c.env.Addr == "" {
		return localLeaser{q: q}, nil
	}
	cl, err := queue.DialOpts(c.env.Addr, queue.DialOptions{
		Queue:      c.QueueName(),
		MaxRetries: c.env.retries(),
		Dial:       c.env.Dial,
		Seed:       c.Spec.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("campaign %s: dial queue: %w", c.ID, err)
	}
	return cl, nil
}

// executeLoop drains the campaign's queue in fair-scheduler slices until
// every job is settled. Exploration mirrors sbexec: per-job seeds derive
// from the job ID alone, so redelivery — to this executor or a future
// incarnation after a restart — reproduces byte-identical results.
func (c *Campaign) executeLoop(p *Pipeline, q *queue.Queue, lsr jobLeaser) {
	env := p.Env
	x := &sched.Explorer{
		Env:    env,
		Trials: c.Spec.Trials,
		Mode:   sched.ModeSnowboard,
		Detect: detect.DefaultOptions(),
		Fsck:   func() []string { return env.K.FsckHost() },
		Trace:  c.Trace,
	}
	mExec := c.scope.C("exec.tests")
	mFaults := c.scope.C("exec.faults")
	slice := c.env.slice()
	for {
		st := q.Stats()
		if st.Pending == 0 && st.Leased == 0 {
			return
		}
		c.gate()
		if c.env.Turns != nil {
			c.env.Turns.Acquire(c.ID)
		}
		for i := 0; i < slice; i++ {
			ls, err := lsr.Lease()
			if errors.Is(err, queue.ErrEmpty) || errors.Is(err, queue.ErrClosed) {
				break
			}
			if err != nil {
				obs.Diag.Printf("campaign %s: lease: %v", c.ID, err)
				break
			}
			c.executeJob(p, x, lsr, ls, mExec, mFaults)
		}
		if c.env.Turns != nil {
			c.env.Turns.Release()
		}
		st = q.Stats()
		if st.Pending == 0 && st.Leased > 0 {
			// Stragglers: abandoned (Fault-injected) leases waiting for the
			// reaper. Yield until they redeliver or dead-letter.
			time.Sleep(5 * time.Millisecond)
		}
	}
}

func (c *Campaign) executeJob(p *Pipeline, x *sched.Explorer, lsr jobLeaser, ls queue.Lease, mExec, mFaults *obs.Counter) {
	job := ls.Job
	if c.env.Fault != nil && c.env.Fault(job.ID, ls.Attempt) {
		// Simulated worker crash: walk away mid-lease. The reaper expires
		// it and the job redelivers (or dead-letters) — never vanishes.
		mFaults.Inc()
		return
	}
	if !job.Inline() {
		// By-reference job: the executor shares the pipeline's in-memory
		// corpus, no store round-trip needed.
		if err := job.Resolve(p.Corpus); err != nil {
			if nerr := lsr.Nack(ls.ID, err.Error()); nerr != nil && !errors.Is(nerr, queue.ErrUnknownLease) {
				obs.Diag.Printf("campaign %s: nack job %d: %v", c.ID, job.ID, nerr)
			}
			return
		}
	}
	stopKeep := keepLease(lsr, ls)
	x.Seed = int64(job.ID)*1009 + 1
	out := x.Explore(sched.ConcurrentTest{
		Writer: job.Writer, Reader: job.Reader, Hint: job.Hint, Pair: job.Pair,
	})
	stopKeep()
	res := queue.JobResult{
		JobID:     job.ID,
		Trials:    out.Trials,
		Exercised: out.Exercised,
		Worker:    "sbd/" + c.ID,
	}
	for _, is := range out.Issues {
		res.IssueIDs = append(res.IssueIDs, is.ID())
		if is.BugID != 0 {
			res.BugIDs = append(res.BugIDs, is.BugID)
		}
	}
	if err := lsr.Report(res); err != nil {
		obs.Diag.Printf("campaign %s: report job %d: %v — nacking", c.ID, job.ID, err)
		if nerr := lsr.Nack(ls.ID, "report failed: "+err.Error()); nerr != nil && !errors.Is(nerr, queue.ErrUnknownLease) {
			obs.Diag.Printf("campaign %s: nack job %d: %v", c.ID, job.ID, nerr)
		}
		return
	}
	if err := lsr.Ack(ls.ID); err != nil && !errors.Is(err, queue.ErrUnknownLease) {
		// ErrUnknownLease is benign: the lease expired and the job was
		// redelivered; the fold deduplicates by job ID.
		obs.Diag.Printf("campaign %s: ack job %d: %v", c.ID, job.ID, err)
	}
	c.executed.Add(1)
	if out.Exercised {
		c.exercised.Add(1)
	}
	mExec.Inc()
}
