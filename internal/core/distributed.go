package core

import (
	"sort"

	"snowboard/internal/queue"
)

// DistSummary is the distributed-mode portion of a campaign report: the
// deterministic fold of every worker JobResult plus the queue's dead-letter
// list. At-least-once delivery means a redelivered job can report more than
// once; each job is counted exactly once here, and because worker seeds
// derive from the job ID alone, every copy of a job's result is identical —
// so the summary is byte-for-byte the same whether or not any worker
// crashed mid-campaign.
type DistSummary struct {
	Expected   int      `json:"expected"`             // jobs enqueued
	Reported   int      `json:"reported"`             // distinct jobs with a result
	Duplicates int      `json:"duplicates,omitempty"` // redelivered copies folded away
	Exercised  int      `json:"exercised"`            // distinct jobs whose PMC channel occurred
	Trials     int      `json:"trials"`               // interleaving trials, each job counted once
	BugIDs     []int    `json:"bug_ids,omitempty"`    // sorted distinct Table 2 ids
	IssueIDs   []string `json:"issue_ids,omitempty"`  // sorted distinct issue ids
	DeadJobs   []int    `json:"dead_jobs,omitempty"`  // job IDs that exhausted delivery attempts
	Missing    []int    `json:"missing,omitempty"`    // job IDs neither reported nor dead-lettered
}

// Lost reports whether any job was silently lost: neither reported nor
// accounted for on the dead-letter list. Under leased delivery this should
// always be false once the queue settles.
func (s *DistSummary) Lost() bool { return len(s.Missing) > 0 }

// AggregateResults folds worker results into a deterministic summary,
// counting each of the `expected` jobs (IDs 0..expected-1, as enqueued by
// the coordinator) exactly once no matter how many times the queue
// redelivered it. The first result per job ID is taken as representative
// (any copy is — see DistSummary); later copies only bump Duplicates.
// Dead-lettered jobs are surfaced so a poisoned job is never silently
// dropped from the report.
func AggregateResults(expected int, results []queue.JobResult, dead []queue.DeadJob) DistSummary {
	sum := DistSummary{Expected: expected}
	seen := make(map[int]bool, len(results))
	bugs := make(map[int]bool)
	issues := make(map[string]bool)
	for _, res := range results {
		if seen[res.JobID] {
			sum.Duplicates++
			continue
		}
		seen[res.JobID] = true
		sum.Reported++
		sum.Trials += res.Trials
		if res.Exercised {
			sum.Exercised++
		}
		for _, id := range res.BugIDs {
			bugs[id] = true
		}
		for _, id := range res.IssueIDs {
			issues[id] = true
		}
	}
	for id := range bugs {
		sum.BugIDs = append(sum.BugIDs, id)
	}
	sort.Ints(sum.BugIDs)
	for id := range issues {
		sum.IssueIDs = append(sum.IssueIDs, id)
	}
	sort.Strings(sum.IssueIDs)
	deadSet := make(map[int]bool, len(dead))
	for _, d := range dead {
		if !deadSet[d.Job.ID] {
			deadSet[d.Job.ID] = true
			sum.DeadJobs = append(sum.DeadJobs, d.Job.ID)
		}
	}
	sort.Ints(sum.DeadJobs)
	for id := 0; id < expected; id++ {
		if !seen[id] && !deadSet[id] {
			sum.Missing = append(sum.Missing, id)
		}
	}
	return sum
}
