package core

import (
	"encoding/json"
	"errors"
	"reflect"
	"testing"
	"time"

	"snowboard/internal/detect"
	"snowboard/internal/queue"
	"snowboard/internal/sched"
)

// runCampaign drains every queued test through a single worker whose seed
// derives from the job ID (the sbexec contract). With crashFirst the worker
// abandons its first lease without acking — the crashed-machine scenario —
// and relies on the lease reaper to redeliver the job to the same loop.
func runCampaign(t *testing.T, p *Pipeline, opts Options, tests []sched.ConcurrentTest, crashFirst bool) (DistSummary, queue.Stats) {
	t.Helper()
	q := queue.NewWithOptions(queue.Options{
		Name:         "core-test",
		LeaseTimeout: 50 * time.Millisecond,
		MaxAttempts:  5,
	})
	defer q.Close()
	for i, ct := range tests {
		if err := q.Push(queue.Job{ID: i, Writer: ct.Writer, Reader: ct.Reader, Hint: ct.Hint, Pair: ct.Pair}); err != nil {
			t.Fatal(err)
		}
	}

	env := p.Env.Clone()
	x := &sched.Explorer{
		Env:       env,
		Trials:    opts.Trials,
		Mode:      sched.ModeSnowboard,
		Detect:    detect.DefaultOptions(),
		KnownPMCs: p.PMCs,
	}
	crashed := false
	deadline := time.Now().Add(30 * time.Second)
	for {
		ls, err := q.TryLease()
		if errors.Is(err, queue.ErrEmpty) {
			st := q.Stats()
			if st.Pending == 0 && st.Leased == 0 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("campaign never settled: stats = %+v", st)
			}
			time.Sleep(5 * time.Millisecond)
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if crashFirst && !crashed {
			// Walk away holding the lease: the job must come back.
			crashed = true
			continue
		}
		// Long exploration vs. short demo lease: extend before exploring (the
		// in-process analogue of sbexec's keepLease), so the only redelivery
		// in this campaign is the deliberately abandoned lease above.
		if _, err := q.Extend(ls.ID, 30*time.Second); err != nil {
			t.Fatal(err)
		}
		job := ls.Job
		x.Seed = int64(job.ID)*1009 + 1
		out := x.Explore(sched.ConcurrentTest{
			Writer: job.Writer, Reader: job.Reader, Hint: job.Hint, Pair: job.Pair,
		})
		res := queue.JobResult{JobID: job.ID, Trials: out.Trials, Exercised: out.Exercised}
		for _, is := range out.Issues {
			res.IssueIDs = append(res.IssueIDs, is.ID())
			if is.BugID != 0 {
				res.BugIDs = append(res.BugIDs, is.BugID)
			}
		}
		if err := q.Report(res); err != nil {
			t.Fatal(err)
		}
		if err := q.Ack(ls.ID); err != nil && !errors.Is(err, queue.ErrUnknownLease) {
			t.Fatal(err)
		}
	}
	return AggregateResults(len(tests), q.Results(), q.DeadLetters()), q.Stats()
}

// TestCrashRedeliveryByteIdenticalReport is the end-to-end lost-job
// regression test: a worker that dies holding a lease must not lose the job,
// and because per-job seeds derive from the job ID, the campaign summary
// after redelivery must be byte-for-byte identical to a crash-free run.
func TestCrashRedeliveryByteIdenticalReport(t *testing.T) {
	opts := DefaultOptions()
	opts.Seed = 3
	opts.FuzzBudget = 150
	opts.CorpusCap = 40
	opts.Trials = 4

	p := NewPipeline(opts)
	r := p.NewReport()
	p.BuildCorpus(r)
	if err := p.ProfileAll(r); err != nil {
		t.Fatal(err)
	}
	p.IdentifyPMCs(r)
	tests := p.GenerateTests(r, 6)
	if len(tests) == 0 {
		t.Fatal("no concurrent tests generated")
	}

	baseline, baseStats := runCampaign(t, p, opts, tests, false)
	crashy, crashStats := runCampaign(t, p, opts, tests, true)

	if baseStats.Redelivered != 0 {
		t.Errorf("baseline redeliveries = %d, want 0", baseStats.Redelivered)
	}
	if crashStats.Redelivered != 1 {
		t.Errorf("crashy redeliveries = %d, want 1", crashStats.Redelivered)
	}
	if crashy.Lost() || len(crashy.DeadJobs) != 0 {
		t.Fatalf("crashy campaign lost jobs: %+v", crashy)
	}
	if crashy.Reported != len(tests) {
		t.Fatalf("crashy reported %d/%d jobs", crashy.Reported, len(tests))
	}

	want, err := json.Marshal(baseline)
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(crashy)
	if err != nil {
		t.Fatal(err)
	}
	if string(want) != string(got) {
		t.Fatalf("campaign summary changed under worker crash:\nbaseline: %s\ncrashy:   %s", want, got)
	}

	// The summary rides the campaign report as its distributed section.
	r.Distributed = &crashy
	if _, err := json.Marshal(r); err != nil {
		t.Fatalf("report with distributed summary does not marshal: %v", err)
	}
}

// TestAggregateResultsFolds pins the pure fold: duplicates collapse to the
// first copy, bug/issue IDs union sorted, dead-lettered and missing jobs are
// surfaced instead of silently dropped.
func TestAggregateResultsFolds(t *testing.T) {
	results := []queue.JobResult{
		{JobID: 2, Trials: 4, Exercised: true, BugIDs: []int{9, 3}, IssueIDs: []string{"b"}},
		{JobID: 0, Trials: 2, BugIDs: []int{3}},
		{JobID: 2, Trials: 4, Exercised: true, BugIDs: []int{9, 3}, IssueIDs: []string{"b"}}, // redelivered copy
		{JobID: 1, Trials: 1, Exercised: true, IssueIDs: []string{"a"}},
	}
	dead := []queue.DeadJob{{Job: queue.Job{ID: 4}, Attempts: 3, Reason: "poisoned"}}
	sum := AggregateResults(6, results, dead)
	want := DistSummary{
		Expected:   6,
		Reported:   3,
		Duplicates: 1,
		Exercised:  2,
		Trials:     7,
		BugIDs:     []int{3, 9},
		IssueIDs:   []string{"a", "b"},
		DeadJobs:   []int{4},
		Missing:    []int{3, 5},
	}
	if !reflect.DeepEqual(sum, want) {
		t.Fatalf("AggregateResults = %+v, want %+v", sum, want)
	}
	if !sum.Lost() {
		t.Fatal("Lost() = false with missing jobs")
	}
	clean := AggregateResults(3, results, nil)
	if clean.Lost() {
		t.Fatalf("Lost() = true for fully-settled campaign: %+v", clean)
	}
}
