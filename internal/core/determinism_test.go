package core

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"snowboard/internal/cluster"
)

// reportDigest flattens everything the determinism contract covers into a
// deep-comparable value: corpus contents, per-test profile shapes, the PMC
// database, the cluster histogram, issue records, and the Report counters.
// Timing fields and the metrics snapshot are deliberately excluded — wall
// clock is the one thing parallelism is allowed to change.
type reportDigest struct {
	// Stage 1.
	Corpus         []string
	FuzzExecutions int
	ProfileSizes   []int
	ProfileHash    []uint64

	// Stage 2.
	PMCCount        int
	Combinations    int64
	Entries         []string
	ClusterHistView []int

	// Stage 4.
	Issues      map[int]string
	Unknown     []string
	Counters    [8]int
	CoverPairs  int
	ExemplarPMC int
}

func fnv1a(h uint64, data string) uint64 {
	if h == 0 {
		h = 14695981039346656037
	}
	for i := 0; i < len(data); i++ {
		h ^= uint64(data[i])
		h *= 1099511628211
	}
	return h
}

func digestRun(t *testing.T, workers int) reportDigest {
	t.Helper()
	opts := DefaultOptions()
	opts.Seed = 7
	opts.FuzzBudget = 220
	opts.CorpusCap = 45
	opts.TestBudget = 14
	opts.Trials = 6
	opts.Workers = workers

	p := NewPipeline(opts)
	r := p.NewReport()
	p.BuildCorpus(r)
	if err := p.ProfileAll(r); err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	p.IdentifyPMCs(r)
	tests := p.GenerateTests(r, opts.TestBudget)
	p.ExecuteTests(r, tests)
	p.TriageReport(r)

	d := reportDigest{
		FuzzExecutions: r.FuzzExecutions,
		PMCCount:       r.DistinctPMCs,
		Combinations:   r.PMCCombinations,
		CoverPairs:     r.CoverPairs,
		ExemplarPMC:    r.ExemplarPMCs,
		Issues:         make(map[int]string),
		Counters: [8]int{r.CorpusSize, r.ProfiledAccesses, r.TestedTests, r.TestedPMCs,
			r.Exercised, r.TrialsRun, r.Switches, r.Steps},
	}
	for _, prog := range p.Corpus.Progs {
		d.Corpus = append(d.Corpus, prog.String())
	}
	for _, prof := range p.Profiles {
		d.ProfileSizes = append(d.ProfileSizes, prof.Accesses.Len())
		var h uint64
		for _, a := range prof.Accesses.Accesses() {
			h = fnv1a(h, fmt.Sprintf("%d:%d:%d:%d:%d", a.Ins, a.Addr, a.Size, a.Val, a.Kind))
		}
		d.ProfileHash = append(d.ProfileHash, h)
	}
	for key, e := range p.PMCs.Entries {
		d.Entries = append(d.Entries, fmt.Sprintf("%s|%v|%d", key, e.Pairs, e.PairCount))
	}
	sort.Strings(d.Entries)
	cs := cluster.Clusters(p.PMCs, opts.Method.Strategy)
	for i := range cs {
		d.ClusterHistView = append(d.ClusterHistView, len(cs[i].PMCs))
	}
	for id, rec := range r.Issues {
		triage := ""
		if rec.Triage != nil {
			triage = fmt.Sprintf("%s|%s|%+v", rec.Triage.Signature, rec.Triage.Bundle, rec.Triage.Stats)
		}
		d.Issues[id] = fmt.Sprintf("%s|test=%d|trial=%d|count=%d|repro=%v|triage=%s",
			rec.Issue.ID(), rec.TestIndex, rec.Trial, rec.Count, rec.Repro != nil, triage)
	}
	for _, u := range r.Unknown {
		d.Unknown = append(d.Unknown, u.ID())
	}
	return d
}

// TestPipelineParallelDeterminism is the golden determinism test of the
// parallel engine: the full pipeline must produce deep-equal results — PMC
// counts, cluster histogram, issues, per-test profiles — at 1, 2, and 8
// workers with the same seed, and two 8-worker runs must agree with each
// other. Run under -race in CI.
func TestPipelineParallelDeterminism(t *testing.T) {
	d1 := digestRun(t, 1)
	d2 := digestRun(t, 2)
	d8a := digestRun(t, 8)
	d8b := digestRun(t, 8)

	if len(d1.Corpus) == 0 || d1.PMCCount == 0 || len(d1.Issues) == 0 {
		t.Fatalf("degenerate baseline run: corpus=%d pmcs=%d issues=%d",
			len(d1.Corpus), d1.PMCCount, len(d1.Issues))
	}
	for _, cmp := range []struct {
		name string
		got  reportDigest
	}{
		{"workers=2", d2},
		{"workers=8", d8a},
		{"workers=8 (repeat)", d8b},
	} {
		if !reflect.DeepEqual(d1, cmp.got) {
			t.Errorf("%s diverged from workers=1", cmp.name)
			diffDigest(t, d1, cmp.got)
		}
	}
}

// diffDigest narrows a digest mismatch down to the first diverging field.
func diffDigest(t *testing.T, a, b reportDigest) {
	t.Helper()
	va, vb := reflect.ValueOf(a), reflect.ValueOf(b)
	for i := 0; i < va.NumField(); i++ {
		if !reflect.DeepEqual(va.Field(i).Interface(), vb.Field(i).Interface()) {
			t.Logf("field %s differs:\n  a: %v\n  b: %v",
				va.Type().Field(i).Name, va.Field(i).Interface(), vb.Field(i).Interface())
		}
	}
}
