package core

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"snowboard/internal/obs"
	"snowboard/internal/store"
)

// stateTestOptions is a small, fast configuration used by the resume tests.
func stateTestOptions(t *testing.T) Options {
	t.Helper()
	opts := DefaultOptions()
	opts.Seed = 5
	opts.FuzzBudget = 60
	opts.CorpusCap = 20
	opts.TestBudget = 6
	opts.Trials = 4
	opts.StateDir = t.TempDir()
	return opts
}

// normalizeMetrics strips the frozen metrics registry, which legitimately
// differs between producing runs (process-global counters keep growing).
func normalizeMetrics(r *Report) *Report {
	c := *r
	c.Metrics = nil
	return &c
}

// normalizeTimings additionally zeroes wall-clock stage durations, for
// comparisons between two *producing* runs (re-executed stages measure
// fresh, slightly different times; everything else must be bit-identical).
func normalizeTimings(r *Report) *Report {
	c := normalizeMetrics(r)
	c.FuzzTime, c.ProfileTime, c.IdentifyTime, c.ClusterTime, c.ExecTime = 0, 0, 0, 0, 0
	return c
}

// counters reads the store stage-cache counters.
func counters() (hits, misses int64) {
	return obs.C(obs.MStoreHits).Value(), obs.C(obs.MStoreMisses).Value()
}

// TestResumeWarmEqualsCold is the golden resume test: a cold run persists
// every stage, and a second Run with the same options — a fresh Pipeline,
// same -state — hits every stage cache and returns a report deep-equal to
// the cold one (byte-identical as JSON, metrics included, because the full
// cache hit returns the stored report verbatim).
func TestResumeWarmEqualsCold(t *testing.T) {
	opts := stateTestOptions(t)

	h0, m0 := counters()
	cold, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	h1, m1 := counters()
	if hits := h1 - h0; hits != 0 {
		t.Errorf("cold run recorded %d stage hits, want 0", hits)
	}
	if misses := m1 - m0; misses != 4 {
		t.Errorf("cold run recorded %d stage misses, want 4 (fuzz, profile, identify, execute)", misses)
	}

	warm, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	h2, m2 := counters()
	if hits := h2 - h1; hits != 4 {
		t.Errorf("warm run recorded %d stage hits, want 4", hits)
	}
	if misses := m2 - m1; misses != 0 {
		t.Errorf("warm run recorded %d stage misses, want 0", misses)
	}

	if !reflect.DeepEqual(normalizeMetrics(warm), normalizeMetrics(cold)) {
		t.Error("warm report differs from cold report")
	}
	coldJSON, err := json.Marshal(cold)
	if err != nil {
		t.Fatal(err)
	}
	warmJSON, err := json.Marshal(warm)
	if err != nil {
		t.Fatal(err)
	}
	if string(coldJSON) != string(warmJSON) {
		t.Error("warm report JSON differs from cold report JSON")
	}
	if cold.TestedTests == 0 {
		t.Error("cold run executed no tests; resume test is vacuous")
	}
}

// TestResumeAcrossMethods: Table 3's methods share one corpus, profile set,
// and PMC database — running a second method against the same state misses
// only the generate+execute stage.
func TestResumeAcrossMethods(t *testing.T) {
	opts := stateTestOptions(t)
	if _, err := Run(opts); err != nil {
		t.Fatal(err)
	}

	other, ok := MethodByName("Random pairing")
	if !ok {
		t.Fatal("method Random pairing not registered")
	}
	opts.Method = other
	h0, m0 := counters()
	if _, err := Run(opts); err != nil {
		t.Fatal(err)
	}
	h1, m1 := counters()
	if hits := h1 - h0; hits != 3 {
		t.Errorf("second method recorded %d hits, want 3 (fuzz, profile, identify)", hits)
	}
	if misses := m1 - m0; misses != 1 {
		t.Errorf("second method recorded %d misses, want 1 (execute)", misses)
	}
}

// TestStageKeysWorkerInvariant pins the cache-invalidation contract:
// Options.Workers and Options.StateDir are pure performance/placement knobs
// and must not change any stage key; seed, fuzz budget, corpus cap, kernel
// version, test budget, and trials must.
func TestStageKeysWorkerInvariant(t *testing.T) {
	base := DefaultOptions()
	base.Seed = 9
	mk := func(mut func(*Options)) *Pipeline {
		opts := base
		if mut != nil {
			mut(&opts)
		}
		// Key derivation reads only Opts; skip the kernel boot.
		return &Pipeline{Opts: opts}
	}
	ref := mk(nil)
	cd := store.Key("some", "corpus")
	pd := store.Key("some", "profiles")
	sd := store.Key("some", "pmcs")
	type keys struct{ fuzz, profile, identify, report store.Digest }
	keysOf := func(p *Pipeline) keys {
		return keys{p.fuzzKey(), p.profileKey(cd), p.identifyKey(pd), p.reportKey(cd, sd, base.TestBudget)}
	}
	refKeys := keysOf(ref)

	for _, workers := range []int{0, 1, 4, 32} {
		p := mk(func(o *Options) { o.Workers = workers; o.StateDir = "/somewhere/else" })
		if keysOf(p) != refKeys {
			t.Errorf("workers=%d changed a stage key; worker count must not invalidate caches", workers)
		}
	}

	if mk(func(o *Options) { o.Seed++ }).fuzzKey() == refKeys.fuzz {
		t.Error("seed change did not invalidate fuzz key")
	}
	if mk(func(o *Options) { o.FuzzBudget++ }).fuzzKey() == refKeys.fuzz {
		t.Error("fuzz budget change did not invalidate fuzz key")
	}
	if mk(func(o *Options) { o.CorpusCap++ }).fuzzKey() == refKeys.fuzz {
		t.Error("corpus cap change did not invalidate fuzz key")
	}
	other := mk(func(o *Options) { o.Version = "5.3.10" })
	if other.fuzzKey() == refKeys.fuzz || other.profileKey(cd) == refKeys.profile {
		t.Error("kernel version change did not invalidate fuzz/profile keys")
	}
	if mk(func(o *Options) { o.Trials++ }).reportKey(cd, sd, base.TestBudget) == refKeys.report {
		t.Error("trials change did not invalidate report key")
	}
	if ref.reportKey(cd, sd, base.TestBudget+1) == refKeys.report {
		t.Error("test budget change did not invalidate report key")
	}
	m, _ := MethodByName("Random pairing")
	if mk(func(o *Options) { o.Method = m }).reportKey(cd, sd, base.TestBudget) == refKeys.report {
		t.Error("method change did not invalidate report key")
	}

	// Digest-linked chaining: different input artifact content → different
	// downstream keys.
	if ref.profileKey(store.Key("other", "corpus")) == refKeys.profile {
		t.Error("corpus content change did not invalidate profile key")
	}
	if ref.identifyKey(store.Key("other", "profiles")) == refKeys.identify {
		t.Error("profiles content change did not invalidate identify key")
	}
}

// TestResumeCorruptArtifacts: flipping bits in every stored object must
// yield diagnostics and a transparent re-run — same report, no panic, and a
// store that heals so the following run resumes cleanly again.
func TestResumeCorruptArtifacts(t *testing.T) {
	opts := stateTestOptions(t)
	first, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}

	objects := filepath.Join(opts.StateDir, "objects")
	damaged := 0
	err = filepath.Walk(objects, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		data[len(data)/2] ^= 0x20
		damaged++
		return os.WriteFile(path, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	if damaged == 0 {
		t.Fatal("no artifacts on disk to corrupt")
	}

	c0 := obs.C(obs.MStoreCorrupt).Value()
	second, err := Run(opts)
	if err != nil {
		t.Fatalf("run over corrupted store failed: %v", err)
	}
	if got := obs.C(obs.MStoreCorrupt).Value() - c0; got == 0 {
		t.Error("corruption went undetected (store.corrupt counter unchanged)")
	}
	if !reflect.DeepEqual(normalizeTimings(second), normalizeTimings(first)) {
		t.Error("re-run over corrupted store produced a different report")
	}

	// The corrupt files were discarded and rewritten: the next run is warm.
	h0, _ := counters()
	third, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if hits, _ := counters(); hits-h0 != 4 {
		t.Errorf("store did not heal: %d hits on post-corruption run, want 4", hits-h0)
	}
	if !reflect.DeepEqual(normalizeTimings(third), normalizeTimings(first)) {
		t.Error("healed store returned a different report")
	}
}

// TestResumeIgnoresTruncatedStore: an empty or half-written state directory
// behaves like a cold start.
func TestResumeIgnoresTruncatedStore(t *testing.T) {
	opts := stateTestOptions(t)
	// Pre-seed the store with a truncated stage memo under a random name to
	// prove stray files are harmless.
	if err := os.MkdirAll(filepath.Join(opts.StateDir, "stages"), 0o755); err != nil {
		t.Fatal(err)
	}
	junk := filepath.Join(opts.StateDir, "stages", store.Key("junk").String())
	if err := os.WriteFile(junk, []byte("SBAR\x01"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(opts); err != nil {
		t.Fatal(err)
	}
}
