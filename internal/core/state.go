package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"snowboard/internal/corpus"
	"snowboard/internal/obs"
	"snowboard/internal/pmc"
	"snowboard/internal/store"
	"snowboard/internal/trace"
)

// Stage-graph memoization over the content-addressed artifact store.
//
// Each pipeline stage is a pure, bit-identical function of (input
// artifacts, the Options fields that matter to it, seed) — the determinism
// contract internal/par established. So every stage declares a key: a
// digest over its name, codec versions, input artifact digests, and
// relevant option fields. Before running, the stage looks the key up in
// the store; on a hit it decodes the stored output artifact and restores
// its report fragment instead of executing. On a miss (or a corrupt
// artifact, which is diagnosed and treated as a miss) it runs, persists
// the output artifact and a memo entry, and the next invocation — in this
// process or any other — resumes from it.
//
// What is deliberately NOT in any key: Options.Workers (a pure performance
// knob; reports are bit-identical at any worker count) and Options.StateDir
// itself. What is: seed, fuzz budget, corpus cap, kernel version, PMC
// options, generation method, test budget, trials, and detector options —
// changing any of those must invalidate exactly the stages it feeds.
//
// The dependency chain is digest-linked, not flag-linked: the profile key
// includes the *content digest* of the corpus, so two different fuzz
// budgets that happen to select the same corpus share one profile artifact
// — exactly how the paper reused one 40-hour profile corpus across all
// eleven Table 3 generation strategies.

// Stage-cache metrics.
var (
	mStoreHits   = obs.C(obs.MStoreHits)
	mStoreMisses = obs.C(obs.MStoreMisses)
)

// UseStore attaches an artifact store; subsequent stage runs memoize
// through it. Attach before running any stage. A previously persisted
// campaign time-series for this (version, seed) is merged into the live
// series, so a killed-and-resumed campaign's coverage trajectory is one
// continuous curve.
func (p *Pipeline) UseStore(s *store.Store) {
	p.store = s
	p.loadSeries()
}

// ArtifactStore returns the attached store (nil when running in-memory).
func (p *Pipeline) ArtifactStore() *store.Store { return p.store }

// keyPrefix versions the whole key schema; bump to orphan every memo
// entry at once.
const keyPrefix = "snowboard-stage-v1"

// fuzzKey identifies the fuzzing campaign output.
func (p *Pipeline) fuzzKey() store.Digest {
	return store.Key(keyPrefix, "fuzz",
		fmt.Sprintf("corpus-codec=%d", corpus.CodecVersion),
		fmt.Sprintf("version=%s", p.Opts.Version),
		fmt.Sprintf("seed=%d", p.Opts.Seed),
		fmt.Sprintf("budget=%d", p.Opts.FuzzBudget),
		fmt.Sprintf("cap=%d", p.Opts.CorpusCap),
	)
}

// profileKey identifies the profiling output for a given corpus.
func (p *Pipeline) profileKey(corpusDigest store.Digest) store.Digest {
	return store.Key(keyPrefix, "profile",
		fmt.Sprintf("profiles-codec=%d", pmc.ProfilesCodecVersion),
		fmt.Sprintf("trace-codec=%d", trace.CodecVersion),
		fmt.Sprintf("version=%s", p.Opts.Version),
		"corpus="+corpusDigest.String(),
	)
}

// identifyKey identifies the Algorithm 1 output for a given profile set.
func (p *Pipeline) identifyKey(profilesDigest store.Digest) store.Digest {
	return store.Key(keyPrefix, "identify",
		fmt.Sprintf("set-codec=%d", pmc.SetCodecVersion),
		"profiles="+profilesDigest.String(),
		fmt.Sprintf("self-pairs=%t", p.Opts.PMC.AllowSelfPairs),
		fmt.Sprintf("skip-value-filter=%t", p.Opts.PMC.SkipValueFilter),
	)
}

// reportKey identifies the generate+execute output (the full report) for a
// given corpus and PMC set.
func (p *Pipeline) reportKey(corpusDigest, pmcDigest store.Digest, budget int) store.Digest {
	m := p.Opts.Method
	d := p.Opts.Detect
	return store.Key(keyPrefix, "execute",
		"corpus="+corpusDigest.String(),
		"pmcs="+pmcDigest.String(),
		fmt.Sprintf("version=%s", p.Opts.Version),
		fmt.Sprintf("seed=%d", p.Opts.Seed),
		fmt.Sprintf("method=%d/%s/%s/%d", m.Kind, m.Name, m.Strategy.Name, m.Order),
		fmt.Sprintf("budget=%d", budget),
		fmt.Sprintf("trials=%d", p.Opts.Trials),
		fmt.Sprintf("detect=%t/%t/%t/%d", d.Console, d.Races, d.TornReads, d.RaceMode),
		fmt.Sprintf("no-incidental=%t", p.Opts.DisableIncidental),
		// Resolved feedback parameters: a feedback run and a one-shot run
		// spend the same budget through different schedulers, so their
		// reports must never share a key. Non-feedback runs pin rounds=0
		// regardless of FeedbackRounds.
		fmt.Sprintf("feedback=%t/%d", p.Opts.Feedback, p.resolvedFeedbackRounds()),
	)
}

// resolvedFeedbackRounds is the round count that actually shapes the run:
// 0 when feedback is off, the resolved default otherwise — so
// FeedbackRounds 0 and 4 (the default) map to one artifact key.
func (p *Pipeline) resolvedFeedbackRounds() int {
	if !p.Opts.Feedback {
		return 0
	}
	return p.feedbackRounds()
}

// seriesKey identifies the campaign time-series artifact. Deliberately
// independent of method, workers, and budgets: one (version, seed) campaign
// has one coverage trajectory, however many strategy comparisons or resumed
// runs share the state directory.
func (p *Pipeline) seriesKey() store.Digest {
	return store.Key(keyPrefix, "timeseries",
		fmt.Sprintf("series-codec=%d", obs.SeriesCodecVersion),
		fmt.Sprintf("version=%s", p.Opts.Version),
		fmt.Sprintf("seed=%d", p.Opts.Seed),
	)
}

// loadSeries merges a prior run's persisted SBTS artifact into the live
// DefaultSeries. Merge dedups by timestamp, so repeated loads — the compare
// mode attaches eleven pipelines to one store — are idempotent.
func (p *Pipeline) loadSeries() {
	payload, _, out, ok := p.loadStage("timeseries", p.seriesKey(), store.KindSeries)
	if !ok {
		return
	}
	samples, err := obs.DecodeSeries(bytes.NewReader(payload))
	if err != nil {
		obs.Diag.Printf("stage timeseries: discarding undecodable series artifact %s: %v", out.Short(), err)
		return
	}
	obs.DefaultSeries.Merge(samples)
	if len(samples) > 0 {
		// Continue the counters where the prior run stopped: cache-hit
		// stages do no new work, so without this every resumed sample
		// would regress the trajectory to zero.
		obs.RestoreCounters(samples[len(samples)-1])
	}
	obs.Diag.Printf("stage timeseries: resumed %d samples (%s)", len(samples), out.Short())
}

// saveSeries snapshots the live metrics into the campaign time-series and
// persists it. Pipeline stages call this at their boundaries, so a killed
// campaign loses at most one stage's trajectory.
func (p *Pipeline) saveSeries() {
	obs.RecordSample()
	if p.store == nil {
		return
	}
	var buf bytes.Buffer
	if err := obs.EncodeSeries(&buf, obs.DefaultSeries.Samples()); err != nil {
		obs.Diag.Printf("stage timeseries: encode series: %v", err)
		return
	}
	p.saveStage("timeseries", p.seriesKey(), store.KindSeries, buf.Bytes(), nil)
}

// Per-stage report fragments persisted in the memo entry, so a cache hit
// restores exactly the counters and timings the producing run measured and
// warm reports stay deep-equal to cold ones.
type fuzzMeta struct {
	CorpusSize     int   `json:"corpus_size"`
	FuzzExecutions int   `json:"fuzz_executions"`
	FuzzTimeNs     int64 `json:"fuzz_time_ns"`
}

type profileMeta struct {
	ProfiledAccesses int   `json:"profiled_accesses"`
	ProfileTimeNs    int64 `json:"profile_time_ns"`
}

type identifyMeta struct {
	DistinctPMCs    int   `json:"distinct_pmcs"`
	PMCCombinations int64 `json:"pmc_combinations"`
	IdentifyTimeNs  int64 `json:"identify_time_ns"`
}

// loadStage resolves one stage memo entry and its output artifact payload.
// Any failure below a clean miss — corrupt memo, missing artifact, corrupt
// artifact — is diagnosed on stderr and reported as a miss so the caller
// transparently re-runs the stage.
func (p *Pipeline) loadStage(name string, key store.Digest, kind store.Kind) (payload []byte, meta json.RawMessage, out store.Digest, ok bool) {
	res, err := p.store.GetStage(key)
	if err != nil {
		if !errors.Is(err, store.ErrNotFound) {
			obs.Diag.Printf("stage %s: discarding unreadable memo entry: %v", name, err)
		}
		return nil, nil, store.Digest{}, false
	}
	payload, err = p.store.Get(kind, res.Out)
	if err != nil {
		obs.Diag.Printf("stage %s: discarding artifact %s: %v", name, res.Out.Short(), err)
		return nil, nil, store.Digest{}, false
	}
	return payload, res.Meta, res.Out, true
}

// saveStage persists one stage's output artifact and memo entry. Store
// failures (disk full, permissions) degrade to a warning: the run's
// results are unaffected, only resumability is lost.
func (p *Pipeline) saveStage(name string, key store.Digest, kind store.Kind, payload []byte, meta any) store.Digest {
	d, err := p.store.Put(kind, payload)
	if err != nil {
		obs.Diag.Printf("stage %s: persist artifact: %v", name, err)
		return store.Digest{}
	}
	var rawMeta json.RawMessage
	if meta != nil {
		rawMeta, err = json.Marshal(meta)
		if err != nil {
			obs.Diag.Printf("stage %s: persist meta: %v", name, err)
			return d
		}
	}
	if err := p.store.PutStage(key, store.StageResult{Kind: kind, Out: d, Meta: rawMeta}); err != nil {
		obs.Diag.Printf("stage %s: persist memo: %v", name, err)
	}
	return d
}

// loadCorpusStage attempts a fuzz-stage cache hit.
func (p *Pipeline) loadCorpusStage(r *Report) bool {
	payload, rawMeta, out, ok := p.loadStage("fuzz", p.fuzzKey(), store.KindCorpus)
	if !ok {
		return false
	}
	c, err := corpus.DecodeCorpus(bytes.NewReader(payload))
	if err != nil {
		obs.Diag.Printf("stage fuzz: discarding undecodable corpus artifact %s: %v", out.Short(), err)
		return false
	}
	var meta fuzzMeta
	if err := json.Unmarshal(rawMeta, &meta); err != nil {
		obs.Diag.Printf("stage fuzz: discarding memo with bad meta: %v", err)
		return false
	}
	p.Corpus = c
	p.corpusDigest = out
	r.CorpusSize = meta.CorpusSize
	r.FuzzExecutions = meta.FuzzExecutions
	r.FuzzTime = time.Duration(meta.FuzzTimeNs)
	obs.Diag.Printf("stage fuzz: cache hit (corpus %s, %d tests)", out.Short(), c.Len())
	return true
}

// saveCorpusStage persists the fuzz stage output.
func (p *Pipeline) saveCorpusStage(r *Report) {
	var buf bytes.Buffer
	if err := corpus.EncodeCorpus(&buf, p.Corpus); err != nil {
		obs.Diag.Printf("stage fuzz: encode corpus: %v", err)
		return
	}
	p.corpusDigest = p.saveStage("fuzz", p.fuzzKey(), store.KindCorpus, buf.Bytes(), fuzzMeta{
		CorpusSize:     r.CorpusSize,
		FuzzExecutions: r.FuzzExecutions,
		FuzzTimeNs:     int64(r.FuzzTime),
	})
}

// loadProfileStage attempts a profile-stage cache hit for corpusDigest.
func (p *Pipeline) loadProfileStage(r *Report, corpusDigest store.Digest) bool {
	payload, rawMeta, out, ok := p.loadStage("profile", p.profileKey(corpusDigest), store.KindProfiles)
	if !ok {
		return false
	}
	profiles, err := pmc.DecodeProfiles(bytes.NewReader(payload))
	if err != nil {
		obs.Diag.Printf("stage profile: discarding undecodable profile artifact %s: %v", out.Short(), err)
		return false
	}
	var meta profileMeta
	if err := json.Unmarshal(rawMeta, &meta); err != nil {
		obs.Diag.Printf("stage profile: discarding memo with bad meta: %v", err)
		return false
	}
	p.Profiles = profiles
	p.profilesDigest = out
	r.ProfiledAccesses += meta.ProfiledAccesses
	r.ProfileTime = time.Duration(meta.ProfileTimeNs)
	obs.Diag.Printf("stage profile: cache hit (profiles %s, %d tests)", out.Short(), len(profiles))
	return true
}

// saveProfileStage persists the profile stage output.
func (p *Pipeline) saveProfileStage(corpusDigest store.Digest, accesses int, dur time.Duration) {
	var buf bytes.Buffer
	if err := pmc.EncodeProfiles(&buf, p.Profiles); err != nil {
		obs.Diag.Printf("stage profile: encode profiles: %v", err)
		return
	}
	p.profilesDigest = p.saveStage("profile", p.profileKey(corpusDigest), store.KindProfiles, buf.Bytes(), profileMeta{
		ProfiledAccesses: accesses,
		ProfileTimeNs:    int64(dur),
	})
}

// loadIdentifyStage attempts an identify-stage cache hit for
// profilesDigest.
func (p *Pipeline) loadIdentifyStage(r *Report, profilesDigest store.Digest) bool {
	payload, rawMeta, out, ok := p.loadStage("identify", p.identifyKey(profilesDigest), store.KindPMCs)
	if !ok {
		return false
	}
	set, err := pmc.DecodeSet(bytes.NewReader(payload))
	if err != nil {
		obs.Diag.Printf("stage identify: discarding undecodable PMC artifact %s: %v", out.Short(), err)
		return false
	}
	var meta identifyMeta
	if err := json.Unmarshal(rawMeta, &meta); err != nil {
		obs.Diag.Printf("stage identify: discarding memo with bad meta: %v", err)
		return false
	}
	p.PMCs = set
	p.pmcDigest = out
	r.DistinctPMCs = meta.DistinctPMCs
	r.PMCCombinations = meta.PMCCombinations
	r.IdentifyTime = time.Duration(meta.IdentifyTimeNs)
	obs.Diag.Printf("stage identify: cache hit (pmcs %s, %d keys)", out.Short(), set.Len())
	return true
}

// saveIdentifyStage persists the identify stage output.
func (p *Pipeline) saveIdentifyStage(r *Report, profilesDigest store.Digest) {
	var buf bytes.Buffer
	if err := pmc.EncodeSet(&buf, p.PMCs); err != nil {
		obs.Diag.Printf("stage identify: encode PMC set: %v", err)
		return
	}
	p.pmcDigest = p.saveStage("identify", p.identifyKey(profilesDigest), store.KindPMCs, buf.Bytes(), identifyMeta{
		DistinctPMCs:    r.DistinctPMCs,
		PMCCombinations: r.PMCCombinations,
		IdentifyTimeNs:  int64(r.IdentifyTime),
	})
}

// Incremental identification memo chain. The monolithic identify memo
// (identifyKey → SBPM set) answers "has this exact profile set been
// identified before"; the chain answers the more useful resumed-campaign
// question "how large a *prefix* of it has". Profiles split into fixed
// identifyBatchSize batches and each full batch b gets a chain key
//
//	d_b = Key("identify-chain", codecs, PMC options, prev=d_{b-1}, batch=digest(batch b))
//
// — digest-linked like the corpus→profile→PMC chain, so a key pins the
// entire batch prefix behind it, not just its own contents. One SBPI
// snapshot (pmc.EncodeIncremental) is persisted per run under the key of
// the last full batch; a resumed campaign with a longer profile set probes
// its chain keys longest-prefix-first, loads the snapshot, and identifies
// only the delta batches. Deterministic campaigns grow their corpus as a
// prefix of any larger-budget run of the same seed, so the chains align
// exactly where the work is shared.
//
// identifyBatchSize is fixed — never derived from worker count or corpus
// size — because the batch boundaries are part of the chain keys: two runs
// must slice identically to share snapshots.
const identifyBatchSize = 16

// identifyChainKeys returns the chain key of every full identifyBatchSize
// batch of the current profiles (nil on encoding failure).
func (p *Pipeline) identifyChainKeys() []store.Digest {
	full := len(p.Profiles) / identifyBatchSize
	keys := make([]store.Digest, 0, full)
	prev := store.Digest{}
	for b := 0; b < full; b++ {
		var buf bytes.Buffer
		if err := pmc.EncodeProfiles(&buf, p.Profiles[b*identifyBatchSize:(b+1)*identifyBatchSize]); err != nil {
			obs.Diag.Printf("stage identify: encode chain batch %d: %v", b, err)
			return nil
		}
		prev = store.Key(keyPrefix, "identify-chain",
			fmt.Sprintf("incr-codec=%d", pmc.IncrementalCodecVersion),
			fmt.Sprintf("set-codec=%d", pmc.SetCodecVersion),
			fmt.Sprintf("profiles-codec=%d", pmc.ProfilesCodecVersion),
			fmt.Sprintf("batch-size=%d", identifyBatchSize),
			fmt.Sprintf("self-pairs=%t", p.Opts.PMC.AllowSelfPairs),
			fmt.Sprintf("skip-value-filter=%t", p.Opts.PMC.SkipValueFilter),
			"prev="+prev.String(),
			"batch="+store.Sum(buf.Bytes()).String(),
		)
		keys = append(keys, prev)
	}
	return keys
}

// loadIncrementalStage probes the chain keys longest-prefix-first for a
// stored SBPI snapshot and returns a resumable incremental identifier plus
// the number of batches it already covers (a fresh identifier and 0 when
// nothing usable is stored). Probes are not stage cache hits or misses —
// the identify stage as a whole accounts those — so this bumps neither
// counter.
func (p *Pipeline) loadIncrementalStage(keys []store.Digest) (*pmc.Incremental, int) {
	for b := len(keys) - 1; b >= 0; b-- {
		payload, _, out, ok := p.loadStage("identify-chain", keys[b], store.KindPMCIndex)
		if !ok {
			continue
		}
		inc, err := pmc.DecodeIncremental(bytes.NewReader(payload), p.Opts.PMC)
		if err != nil {
			obs.Diag.Printf("stage identify: discarding undecodable SBPI artifact %s: %v", out.Short(), err)
			continue
		}
		if inc.Profiles() != (b+1)*identifyBatchSize {
			obs.Diag.Printf("stage identify: discarding SBPI artifact %s: covers %d profiles, chain key expects %d",
				out.Short(), inc.Profiles(), (b+1)*identifyBatchSize)
			continue
		}
		obs.Diag.Printf("stage identify: SBPI index loaded (%s, %d batches, %d profiles, %d PMCs)",
			out.Short(), inc.Batches(), inc.Profiles(), inc.Set().Len())
		return inc, b + 1
	}
	return pmc.NewIncremental(p.Opts.PMC), 0
}

// saveIncrementalStage persists the SBPI snapshot under the chain key of
// the last full batch it covers.
func (p *Pipeline) saveIncrementalStage(key store.Digest, inc *pmc.Incremental) {
	var buf bytes.Buffer
	if err := pmc.EncodeIncremental(&buf, inc); err != nil {
		obs.Diag.Printf("stage identify: encode SBPI snapshot: %v", err)
		return
	}
	p.saveStage("identify-chain", key, store.KindPMCIndex, buf.Bytes(), nil)
}

// identifyIncremental runs Algorithm 1 as a chain of profile-batch deltas:
// resume from the longest stored snapshot prefix, identify only the
// remaining batches, persist a snapshot covering the full batches, then
// fold in the sub-batch tail. The result is deep-equal to
// pmc.IdentifyParallel over the whole profile set — Set merges are order-
// independent, so partitioning into batches cannot change the outcome.
func (p *Pipeline) identifyIncremental() *pmc.Set {
	keys := p.identifyChainKeys()
	inc, resume := p.loadIncrementalStage(keys)
	start := resume * identifyBatchSize
	workers := p.workers()
	for b := resume; b < len(keys); b++ {
		inc.AddBatchParallel(p.Profiles[b*identifyBatchSize:(b+1)*identifyBatchSize], workers)
	}
	if resume < len(keys) {
		p.saveIncrementalStage(keys[len(keys)-1], inc)
	}
	if tail := p.Profiles[len(keys)*identifyBatchSize:]; len(tail) > 0 {
		inc.AddBatchParallel(tail, workers)
	}
	set := inc.Set()
	obs.Diag.Printf("stage identify: delta identification: %d/%d profiles identified incrementally (%d resumed from snapshot)",
		len(p.Profiles)-start, len(p.Profiles), start)
	obs.G(obs.MPMCIdentified).Set(int64(set.Len()))
	obs.G(obs.MPMCCombinations).Set(set.TotalCombinations)
	obs.Emit(obs.EvPMCIdentified, obs.A("keys", set.Len()),
		obs.A("combinations", set.TotalCombinations))
	return set
}

// ensureCorpusDigest returns the content digest of the current corpus,
// encoding and persisting the artifact if it is not yet known (e.g. the
// corpus was installed with SetCorpus rather than built by BuildCorpus).
func (p *Pipeline) ensureCorpusDigest() (store.Digest, error) {
	if !p.corpusDigest.IsZero() {
		return p.corpusDigest, nil
	}
	if p.Corpus == nil {
		return store.Digest{}, errors.New("core: no corpus")
	}
	var buf bytes.Buffer
	if err := corpus.EncodeCorpus(&buf, p.Corpus); err != nil {
		return store.Digest{}, err
	}
	d, err := p.store.Put(store.KindCorpus, buf.Bytes())
	if err != nil {
		return store.Digest{}, err
	}
	p.corpusDigest = d
	return d, nil
}

// ensureProfilesDigest mirrors ensureCorpusDigest for the profile set.
func (p *Pipeline) ensureProfilesDigest() (store.Digest, error) {
	if !p.profilesDigest.IsZero() {
		return p.profilesDigest, nil
	}
	var buf bytes.Buffer
	if err := pmc.EncodeProfiles(&buf, p.Profiles); err != nil {
		return store.Digest{}, err
	}
	d, err := p.store.Put(store.KindProfiles, buf.Bytes())
	if err != nil {
		return store.Digest{}, err
	}
	p.profilesDigest = d
	return d, nil
}

// ensurePMCDigest mirrors ensureCorpusDigest for the PMC set.
func (p *Pipeline) ensurePMCDigest() (store.Digest, error) {
	if !p.pmcDigest.IsZero() {
		return p.pmcDigest, nil
	}
	if p.PMCs == nil {
		return store.Digest{}, errors.New("core: no PMC set")
	}
	var buf bytes.Buffer
	if err := pmc.EncodeSet(&buf, p.PMCs); err != nil {
		return store.Digest{}, err
	}
	d, err := p.store.Put(store.KindPMCs, buf.Bytes())
	if err != nil {
		return store.Digest{}, err
	}
	p.pmcDigest = d
	return d, nil
}

// loadReportStage attempts a full generate+execute cache hit: on success
// the stored report — findings, timings, frozen metrics and all — is
// returned verbatim.
func (p *Pipeline) loadReportStage(budget int) (*Report, bool) {
	cd, err := p.ensureCorpusDigest()
	if err != nil {
		return nil, false
	}
	pd, err := p.ensurePMCDigest()
	if err != nil {
		return nil, false
	}
	payload, _, out, ok := p.loadStage("execute", p.reportKey(cd, pd, budget), store.KindReport)
	if !ok {
		return nil, false
	}
	var r Report
	if err := json.Unmarshal(payload, &r); err != nil {
		obs.Diag.Printf("stage execute: discarding undecodable report artifact %s: %v", out.Short(), err)
		return nil, false
	}
	if r.Issues == nil {
		r.Issues = make(map[int]IssueRecord)
	}
	obs.Diag.Printf("stage execute: cache hit (report %s, %d issues)", out.Short(), len(r.Issues))
	return &r, true
}

// saveReportStage persists the finished report.
func (p *Pipeline) saveReportStage(r *Report, budget int) {
	cd, err := p.ensureCorpusDigest()
	if err != nil {
		obs.Diag.Printf("stage execute: corpus digest: %v", err)
		return
	}
	pd, err := p.ensurePMCDigest()
	if err != nil {
		obs.Diag.Printf("stage execute: PMC digest: %v", err)
		return
	}
	payload, err := json.Marshal(r)
	if err != nil {
		obs.Diag.Printf("stage execute: encode report: %v", err)
		return
	}
	d := p.saveStage("execute", p.reportKey(cd, pd, budget), store.KindReport, payload, nil)
	if !d.IsZero() {
		obs.Diag.Printf("stage execute: report artifact %s persisted", d.Short())
	}
}

// ArtifactDigests reports the content digests of the pipeline's current
// artifacts as hex strings (empty when unknown/not yet computed), for
// composing tools: sbprofile prints them, sbexec resolves queue jobs
// against them.
func (p *Pipeline) ArtifactDigests() (corpusD, profilesD, pmcsD string) {
	render := func(d store.Digest) string {
		if d.IsZero() {
			return ""
		}
		return d.String()
	}
	return render(p.corpusDigest), render(p.profilesDigest), render(p.pmcDigest)
}
