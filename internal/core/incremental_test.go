package core

import (
	"bytes"
	"reflect"
	"testing"

	"snowboard/internal/obs"
	"snowboard/internal/pmc"
	"snowboard/internal/pmc/difftest"
	"snowboard/internal/store"
)

// incrTestOptions is a configuration whose corpus comfortably exceeds one
// identifyBatchSize batch at the half budget and keeps growing at the full
// budget, so the resume tests exercise a real snapshot prefix plus a real
// delta (empirically, seed 5: budget 60 → 23 profiles, budget 150 → 33).
func incrTestOptions(t *testing.T) Options {
	t.Helper()
	opts := DefaultOptions()
	opts.Seed = 5
	opts.FuzzBudget = 60
	opts.CorpusCap = 200
	opts.TestBudget = 6
	opts.Trials = 4
	opts.StateDir = t.TempDir()
	return opts
}

// runAnalysis drives stages 1–2 on a fresh pipeline attached to the
// options' state directory, returning the pipeline for inspection.
func runAnalysis(t *testing.T, opts Options) *Pipeline {
	t.Helper()
	p := NewPipeline(opts)
	st, err := store.Open(opts.StateDir)
	if err != nil {
		t.Fatal(err)
	}
	p.UseStore(st)
	r := p.NewReport()
	p.BuildCorpus(r)
	if err := p.ProfileAll(r); err != nil {
		t.Fatal(err)
	}
	p.IdentifyPMCs(r)
	return p
}

// TestResumeIncrementalDelta is the incremental-resume contract end to
// end: a half-budget campaign persists an SBPI snapshot; a full-budget
// campaign over the same state re-identifies ONLY the profiles past the
// snapshot — measured exactly via the pmc.incremental.delta_pairs counter
// — and still produces the set a from-scratch identification over the full
// corpus would.
func TestResumeIncrementalDelta(t *testing.T) {
	opts := incrTestOptions(t)
	half := runAnalysis(t, opts)
	nHalf := len(half.Profiles)
	if nHalf < identifyBatchSize {
		t.Fatalf("half corpus has %d profiles, need >= %d for a snapshot; re-tune incrTestOptions", nHalf, identifyBatchSize)
	}

	opts.FuzzBudget = 150
	batchesBefore := obs.C(obs.MIncrBatches).Value()
	deltaBefore := obs.C(obs.MIncrDeltaPairs).Value()
	full := runAnalysis(t, opts)
	batchesDelta := obs.C(obs.MIncrBatches).Value() - batchesBefore
	deltaPairs := obs.C(obs.MIncrDeltaPairs).Value() - deltaBefore

	nFull := len(full.Profiles)
	if nFull <= nHalf {
		t.Fatalf("full corpus (%d) did not outgrow half corpus (%d); re-tune incrTestOptions", nFull, nHalf)
	}

	// Corpus prefix property: deterministic in-order admission means the
	// half-budget corpus is a strict prefix of the full-budget one — the
	// alignment the chain keys rely on.
	for i, prog := range half.Corpus.Progs {
		if full.Corpus.Progs[i].String() != prog.String() {
			t.Fatalf("corpus prefix property violated at program %d", i)
		}
	}

	// The snapshot covers the half run's full batches; the second run must
	// have fed exactly the batches past it (plus the sub-batch tail).
	snapshot := (nHalf / identifyBatchSize) * identifyBatchSize
	fullBatches := nFull / identifyBatchSize
	wantBatches := int64(fullBatches - snapshot/identifyBatchSize)
	if nFull%identifyBatchSize != 0 {
		wantBatches++
	}
	if batchesDelta != wantBatches {
		t.Errorf("full run ingested %d incremental batches, want %d (snapshot should cover the first %d profiles)",
			batchesDelta, wantBatches, snapshot)
	}

	// Delta accounting: combinations scanned during the resumed run equal
	// the full total minus what the snapshot already carried.
	prefixSet := pmc.Identify(full.Profiles[:snapshot], opts.PMC)
	wantDelta := full.PMCs.TotalCombinations - prefixSet.TotalCombinations
	if deltaPairs != wantDelta {
		t.Errorf("delta scans identified %d combinations, want %d (= full %d - snapshot prefix %d)",
			deltaPairs, wantDelta, full.PMCs.TotalCombinations, prefixSet.TotalCombinations)
	}

	// And the headline: the resumed incremental set deep-equals a
	// from-scratch one-shot identification of the full profile set.
	fresh := pmc.IdentifyParallel(full.Profiles, opts.PMC, 2)
	if d := difftest.Diff(fresh, full.PMCs); d != "" {
		t.Errorf("resumed incremental set diverges from from-scratch identification:\n%s", d)
	}
}

// TestResumeHalfThenFullEqualsSingleShot runs the whole pipeline both ways
// — one cold full-budget campaign, versus a half-budget campaign resumed
// at the full budget in the same state directory — and requires the final
// reports to be deep-equal modulo wall-clock timings and the metrics
// registry (the same normalization the CI resume smoke applies).
func TestResumeHalfThenFullEqualsSingleShot(t *testing.T) {
	optsA := incrTestOptions(t)
	optsA.FuzzBudget = 150
	single, err := Run(optsA)
	if err != nil {
		t.Fatal(err)
	}

	optsB := incrTestOptions(t) // fresh state dir
	if _, err := Run(optsB); err != nil {
		t.Fatal(err)
	}
	optsB.FuzzBudget = 150
	resumed, err := Run(optsB)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(normalizeTimings(resumed), normalizeTimings(single)) {
		t.Error("resumed half-then-full report differs from single-shot full report")
	}
	if single.TestedTests == 0 {
		t.Error("single-shot run executed no tests; comparison is vacuous")
	}
}

// TestStreamCampaignEqualsStaged: the streaming path (profile+identify per
// fuzz round) must land on byte-identical artifacts — corpus, profile set,
// PMC set — and the same report counts as the staged path.
func TestStreamCampaignEqualsStaged(t *testing.T) {
	opts := DefaultOptions()
	opts.Seed = 5
	opts.FuzzBudget = 60
	opts.CorpusCap = 200

	staged := NewPipeline(opts)
	r1 := staged.NewReport()
	staged.BuildCorpus(r1)
	if err := staged.ProfileAll(r1); err != nil {
		t.Fatal(err)
	}
	staged.IdentifyPMCs(r1)

	streamed := NewPipeline(opts)
	r2 := streamed.NewReport()
	if err := streamed.StreamCampaign(r2); err != nil {
		t.Fatal(err)
	}

	if r2.CorpusSize != r1.CorpusSize || r2.FuzzExecutions != r1.FuzzExecutions {
		t.Errorf("stream corpus %d/%d execs, staged %d/%d", r2.CorpusSize, r2.FuzzExecutions, r1.CorpusSize, r1.FuzzExecutions)
	}
	if r2.ProfiledAccesses != r1.ProfiledAccesses {
		t.Errorf("stream profiled %d accesses, staged %d", r2.ProfiledAccesses, r1.ProfiledAccesses)
	}
	if r2.DistinctPMCs != r1.DistinctPMCs || r2.PMCCombinations != r1.PMCCombinations {
		t.Errorf("stream identified %d/%d, staged %d/%d", r2.DistinctPMCs, r2.PMCCombinations, r1.DistinctPMCs, r1.PMCCombinations)
	}

	// Artifact-level equality: the canonical codecs make deep equality a
	// byte comparison.
	var p1, p2, s1, s2 bytes.Buffer
	if err := pmc.EncodeProfiles(&p1, staged.Profiles); err != nil {
		t.Fatal(err)
	}
	if err := pmc.EncodeProfiles(&p2, streamed.Profiles); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p1.Bytes(), p2.Bytes()) {
		t.Error("streamed profile set differs from staged")
	}
	if err := pmc.EncodeSet(&s1, staged.PMCs); err != nil {
		t.Fatal(err)
	}
	if err := pmc.EncodeSet(&s2, streamed.PMCs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(s1.Bytes(), s2.Bytes()) {
		if d := difftest.Diff(staged.PMCs, streamed.PMCs); d != "" {
			t.Errorf("streamed PMC set differs from staged:\n%s", d)
		} else {
			t.Error("streamed PMC encoding differs from staged despite equal sets")
		}
	}
	for i, prog := range staged.Corpus.Progs {
		if streamed.Corpus.Progs[i].String() != prog.String() {
			t.Fatalf("streamed corpus diverges at program %d", i)
		}
	}
}
