package detect

import (
	"snowboard/internal/trace"
)

// Happens-before data race detection in the style of FastTrack, the
// precise per-execution analogue of the paper's runtime race detector.
// The trial trace is processed in its (serialized) execution order while
// vector clocks track the synchronization order induced by:
//
//   - program order within each thread,
//   - lock release → subsequent acquire of the same lock word,
//   - marked (rcu_assign_pointer/WRITE_ONCE) store → marked load that
//     observes the published location (the RCU publication edge).
//
// Two accesses race when they conflict (overlap, ≥1 write, not both
// marked, neither a lock word nor a stack slot) and neither happens before
// the other. Unlike the pure lockset analysis (FindRaces), this does not
// flag the init-before-publish pattern, because publication orders the
// initializing stores before every reader that dereferences the published
// pointer.

const maxThreadsHB = 8

type vclock [maxThreadsHB]uint64

func (v *vclock) join(o *vclock) {
	for i := range v {
		if o[i] > v[i] {
			v[i] = o[i]
		}
	}
}

// epoch is a (thread, clock) pair identifying one access.
type epoch struct {
	t int
	c uint64
}

// happenedBefore reports whether the epoch is ordered before the clock.
func (e epoch) happenedBefore(v *vclock) bool { return e.c <= v[e.t] }

type byteState struct {
	lastWrite   epoch
	hasWrite    bool
	writeIns    trace.Ins
	writeMarked bool
	lastRead    [maxThreadsHB]uint64 // clock of last read per thread (0 = none)
	readIns     [maxThreadsHB]trace.Ins
	readMarked  [maxThreadsHB]bool
}

// FindRacesHB runs the happens-before race analysis over the trial trace.
func FindRacesHB(tr *trace.Trace) []RaceReport {
	var clocks [maxThreadsHB]vclock
	for i := range clocks {
		clocks[i][i] = 1
	}
	lockVC := make(map[uint64]*vclock)
	pubVC := make(map[uint64]*vclock) // per published address
	bytes := make(map[uint64]*byteState)

	type pairKey struct{ w, r trace.Ins }
	seen := make(map[pairKey]bool)
	var out []RaceReport

	report := func(w, r *trace.Access) {
		k := pairKey{w: w.Ins, r: r.Ins}
		if seen[k] {
			return
		}
		seen[k] = true
		out = append(out, RaceReport{Write: *w, Read: *r})
	}

	for i := range tr.Accesses {
		a := &tr.Accesses[i]
		t := a.Thread
		if t < 0 || t >= maxThreadsHB {
			continue
		}
		vc := &clocks[t]

		if a.Atomic {
			// Lock-word traffic: value != 0 is an acquire, 0 is a release.
			if a.Kind == trace.Write && a.Val == 0 {
				cp := *vc
				lockVC[a.Addr] = &cp
				vc[t]++
			} else if a.Kind == trace.Write {
				if lv := lockVC[a.Addr]; lv != nil {
					vc.join(lv)
				}
			}
			continue
		}
		if a.Marked && a.Kind == trace.Write {
			cp := *vc
			pubVC[a.Addr] = &cp
			vc[t]++
			// Marked writes also participate in conflict checks below (a
			// plain access on the other side is still a race).
		}
		if a.Kind == trace.Read {
			// Any read of a published location — marked or plain — joins
			// the publisher's clock: RCU readers reach published objects
			// through an address dependency, which orders the publisher's
			// earlier initialization before the reader's dereferences.
			if pv := pubVC[a.Addr]; pv != nil {
				vc.join(pv)
			}
		}
		if a.Stack {
			continue
		}

		cur := epoch{t: t, c: vc[t]}
		for b := a.Addr; b < a.End(); b++ {
			st := bytes[b]
			if st == nil {
				st = &byteState{}
				bytes[b] = st
			}
			if a.Kind == trace.Read {
				if st.hasWrite && st.lastWrite.t != t &&
					!(st.writeMarked && a.Marked) &&
					!st.lastWrite.happenedBefore(vc) {
					w := trace.Access{Thread: st.lastWrite.t, Ins: st.writeIns, Kind: trace.Write, Addr: b, Size: 1, Marked: st.writeMarked}
					report(&w, a)
				}
				st.lastRead[t] = cur.c
				st.readIns[t] = a.Ins
				st.readMarked[t] = a.Marked
			} else {
				if st.hasWrite && st.lastWrite.t != t &&
					!(st.writeMarked && a.Marked) &&
					!st.lastWrite.happenedBefore(vc) {
					w := trace.Access{Thread: st.lastWrite.t, Ins: st.writeIns, Kind: trace.Write, Addr: b, Size: 1, Marked: st.writeMarked}
					report(&w, a)
				}
				for ot := 0; ot < maxThreadsHB; ot++ {
					if ot == t || st.lastRead[ot] == 0 {
						continue
					}
					re := epoch{t: ot, c: st.lastRead[ot]}
					if !(st.readMarked[ot] && a.Marked) && !re.happenedBefore(vc) {
						r := trace.Access{Thread: ot, Ins: st.readIns[ot], Kind: trace.Read, Addr: b, Size: 1, Marked: st.readMarked[ot]}
						report(a, &r)
					}
				}
				st.hasWrite = true
				st.lastWrite = cur
				st.writeIns = a.Ins
				st.writeMarked = a.Marked
			}
		}
	}
	return out
}
