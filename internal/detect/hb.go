package detect

import (
	"snowboard/internal/trace"
)

// Happens-before data race detection in the style of FastTrack, the
// precise per-execution analogue of the paper's runtime race detector.
// The trial trace is processed in its (serialized) execution order while
// vector clocks track the synchronization order induced by:
//
//   - program order within each thread,
//   - lock release → subsequent acquire of the same lock word,
//   - marked (rcu_assign_pointer/WRITE_ONCE) store → marked load that
//     observes the published location (the RCU publication edge).
//
// Two accesses race when they conflict (overlap, ≥1 write, not both
// marked, neither a lock word nor a stack slot) and neither happens before
// the other. Unlike the pure lockset analysis (FindRaces), this does not
// flag the init-before-publish pattern, because publication orders the
// initializing stores before every reader that dereferences the published
// pointer.

// vclock is a dynamically sized vector clock: component i is thread i's
// logical time, with absent entries implicitly zero. Clocks grow on
// demand, so the analysis has no fixed thread-count ceiling.
type vclock []uint64

func (v vclock) get(t int) uint64 {
	if t < len(v) {
		return v[t]
	}
	return 0
}

func (v *vclock) set(t int, c uint64) {
	for len(*v) <= t {
		*v = append(*v, 0)
	}
	(*v)[t] = c
}

func (v *vclock) join(o vclock) {
	for i, c := range o {
		if c > v.get(i) {
			v.set(i, c)
		}
	}
}

func (v vclock) clone() vclock { return append(vclock(nil), v...) }

// epoch is a (thread, clock) pair identifying one access.
type epoch struct {
	t int
	c uint64
}

// happenedBefore reports whether the epoch is ordered before the clock.
func (e epoch) happenedBefore(v vclock) bool { return e.c <= v.get(e.t) }

// readRec is one thread's most recent read of a byte (clock 0 = none).
type readRec struct {
	clock  uint64
	ins    trace.Ins
	marked bool
}

type byteState struct {
	lastWrite   epoch
	hasWrite    bool
	writeIns    trace.Ins
	writeMarked bool
	reads       []readRec // indexed by thread, grown on demand
}

func (st *byteState) setRead(t int, r readRec) {
	for len(st.reads) <= t {
		st.reads = append(st.reads, readRec{})
	}
	st.reads[t] = r
}

// FindRacesHB runs the happens-before race analysis over the trial trace.
func FindRacesHB(tr *trace.Trace) []RaceReport {
	var clocks []vclock
	clockOf := func(t int) *vclock {
		for len(clocks) <= t {
			clocks = append(clocks, nil)
		}
		if clocks[t] == nil {
			var v vclock
			v.set(t, 1)
			clocks[t] = v
		}
		return &clocks[t]
	}
	lockVC := make(map[uint64]vclock)
	pubVC := make(map[uint64]vclock) // per published address

	bytes := make(map[uint64]*byteState)

	// Reports are deduplicated per (write site, read site, access address):
	// the same racy pair on a different object is a distinct finding.
	type pairKey struct {
		w, r trace.Ins
		addr uint64
	}
	seen := make(map[pairKey]bool)
	var out []RaceReport

	report := func(w, r *trace.Access, addr uint64) {
		k := pairKey{w: w.Ins, r: r.Ins, addr: addr}
		if seen[k] {
			return
		}
		seen[k] = true
		out = append(out, RaceReport{Write: *w, Read: *r})
	}

	n := tr.Len()
	for i := 0; i < n; i++ {
		a := tr.At(i)
		t := a.Thread
		if t < 0 {
			continue
		}
		vc := clockOf(t)

		if a.Atomic {
			// Lock-word traffic: value != 0 is an acquire, 0 is a release.
			if a.Kind == trace.Write && a.Val == 0 {
				lockVC[a.Addr] = vc.clone()
				vc.set(t, vc.get(t)+1)
			} else if a.Kind == trace.Write {
				if lv := lockVC[a.Addr]; lv != nil {
					vc.join(lv)
				}
			}
			continue
		}
		if a.Marked && a.Kind == trace.Write {
			pubVC[a.Addr] = vc.clone()
			vc.set(t, vc.get(t)+1)
			// Marked writes also participate in conflict checks below (a
			// plain access on the other side is still a race).
		}
		if a.Kind == trace.Read {
			// Any read of a published location — marked or plain — joins
			// the publisher's clock: RCU readers reach published objects
			// through an address dependency, which orders the publisher's
			// earlier initialization before the reader's dereferences.
			if pv := pubVC[a.Addr]; pv != nil {
				vc.join(pv)
			}
		}
		if a.Stack {
			continue
		}

		cur := epoch{t: t, c: vc.get(t)}
		for b := a.Addr; b < a.End(); b++ {
			st := bytes[b]
			if st == nil {
				st = &byteState{}
				bytes[b] = st
			}
			if a.Kind == trace.Read {
				if st.hasWrite && st.lastWrite.t != t &&
					!(st.writeMarked && a.Marked) &&
					!st.lastWrite.happenedBefore(*vc) {
					w := trace.Access{Thread: st.lastWrite.t, Ins: st.writeIns, Kind: trace.Write, Addr: b, Size: 1, Marked: st.writeMarked}
					report(&w, &a, a.Addr)
				}
				st.setRead(t, readRec{clock: cur.c, ins: a.Ins, marked: a.Marked})
			} else {
				if st.hasWrite && st.lastWrite.t != t &&
					!(st.writeMarked && a.Marked) &&
					!st.lastWrite.happenedBefore(*vc) {
					w := trace.Access{Thread: st.lastWrite.t, Ins: st.writeIns, Kind: trace.Write, Addr: b, Size: 1, Marked: st.writeMarked}
					report(&w, &a, a.Addr)
				}
				for ot := range st.reads {
					rr := st.reads[ot]
					if ot == t || rr.clock == 0 {
						continue
					}
					re := epoch{t: ot, c: rr.clock}
					if !(rr.marked && a.Marked) && !re.happenedBefore(*vc) {
						r := trace.Access{Thread: ot, Ins: rr.ins, Kind: trace.Read, Addr: b, Size: 1, Marked: rr.marked}
						report(&a, &r, a.Addr)
					}
				}
				st.hasWrite = true
				st.lastWrite = cur
				st.writeIns = a.Ins
				st.writeMarked = a.Marked
			}
		}
	}
	return out
}
