package detect

import (
	"strings"

	"snowboard/internal/trace"
)

// KnownBug is one row of the paper's Table 2, keyed by the kernel functions
// involved so that detector findings can be attributed.
type KnownBug struct {
	ID       int
	Summary  string
	Versions []string // kernel versions carrying the issue
	Subsys   string
	Type     string // DR, AV, OV per Table 2
	Harmful  bool   // bold rows of Table 2 (confirmed harmful) + fixed panics
	// WriteFn/ReadFn are the kernel function names of the racing or
	// communicating sites ("" matches anything).
	WriteFn, ReadFn string
}

// Table2 is the issue catalogue, mirroring the paper's Table 2.
var Table2 = []KnownBug{
	{ID: 1, Summary: "BUG: unable to handle page fault (rhashtable rht_ptr double fetch)", Versions: []string{"5.3.10"}, Subsys: "include/linux/", Type: "DR", Harmful: true, WriteFn: "rht_assign_unlock", ReadFn: "rht_ptr"},
	{ID: 2, Summary: "EXT4-fs error: swap_inode_boot_loader: checksum invalid", Versions: []string{"5.3.10", "5.12-rc3"}, Subsys: "fs/ext4/", Type: "AV", Harmful: true, WriteFn: "swap_inode_boot_loader", ReadFn: "ext4_file_write_iter"},
	{ID: 3, Summary: "EXT4-fs error: ext4_ext_check_inode: invalid magic", Versions: []string{"5.3.10"}, Subsys: "fs/ext4/", Type: "AV", Harmful: false, WriteFn: "ext4_extent_grow", ReadFn: "ext4_ext_check_inode"},
	{ID: 4, Summary: "blk_update_request: I/O error", Versions: []string{"5.3.10"}, Subsys: "fs/", Type: "AV", Harmful: true, WriteFn: "set_blocksize", ReadFn: "blk_update_request"},
	{ID: 5, Summary: "Data race: blkdev_ioctl() / generic_fadvise()", Versions: []string{"5.3.10"}, Subsys: "block/, mm/", Type: "DR", Harmful: true, WriteFn: "set_blocksize", ReadFn: "generic_fadvise"},
	{ID: 6, Summary: "Data race: do_mpage_readpage() / set_blocksize()", Versions: []string{"5.3.10"}, Subsys: "fs/", Type: "DR", Harmful: false, WriteFn: "set_blocksize", ReadFn: "do_mpage_readpage"},
	{ID: 7, Summary: "Data race: rawv6_send_hdrinc() / __dev_set_mtu()", Versions: []string{"5.3.10"}, Subsys: "net/", Type: "DR", Harmful: true, WriteFn: "__dev_set_mtu", ReadFn: "rawv6_send_hdrinc"},
	{ID: 8, Summary: "Data race: packet_getname() / e1000_set_mac()", Versions: []string{"5.3.10"}, Subsys: "net/", Type: "DR", Harmful: true, WriteFn: "e1000_set_mac", ReadFn: "packet_getname"},
	{ID: 9, Summary: "Data race: dev_ifsioc_locked() / eth_commit_mac_addr_change()", Versions: []string{"5.3.10"}, Subsys: "net/", Type: "DR", Harmful: true, WriteFn: "eth_commit_mac_addr_change", ReadFn: "dev_ifsioc_locked"},
	{ID: 10, Summary: "Data race: fib6_get_cookie_safe() / fib6_clean_node()", Versions: []string{"5.3.10"}, Subsys: "net/", Type: "DR", Harmful: false, WriteFn: "fib6_clean_node", ReadFn: "fib6_get_cookie_safe"},
	{ID: 11, Summary: "BUG: kernel NULL pointer dereference (configfs_lookup)", Versions: []string{"5.12-rc3"}, Subsys: "fs/configfs", Type: "DR", Harmful: true, WriteFn: "configfs_detach_item", ReadFn: "configfs_lookup"},
	{ID: 12, Summary: "BUG: kernel NULL pointer dereference (l2tp tunnel register)", Versions: []string{"5.12-rc3"}, Subsys: "net/l2tp", Type: "OV", Harmful: true, WriteFn: "l2tp_tunnel_register", ReadFn: "l2tp_xmit_core"},
	{ID: 13, Summary: "Data race: cache_alloc_refill() / free_block()", Versions: []string{"5.3.10", "5.12-rc3"}, Subsys: "mm/", Type: "DR", Harmful: false, WriteFn: "cache_alloc_refill", ReadFn: ""},
	{ID: 14, Summary: "Data race: tty_port_open() / uart_do_autoconfig()", Versions: []string{"5.12-rc3"}, Subsys: "driver/tty/", Type: "DR", Harmful: true, WriteFn: "uart_do_autoconfig", ReadFn: "tty_port_open"},
	{ID: 15, Summary: "Data race: snd_ctl_elem_add()", Versions: []string{"5.12-rc3"}, Subsys: "sound/core", Type: "DR", Harmful: true, WriteFn: "snd_ctl_elem_add", ReadFn: "snd_ctl_elem_add"},
	{ID: 16, Summary: "Data race: tcp_set_default_congestion_control() / tcp_set_congestion_control()", Versions: []string{"5.12-rc3"}, Subsys: "net/ipv4", Type: "DR", Harmful: false, WriteFn: "tcp_set_default_congestion_control", ReadFn: "tcp_set_congestion_control"},
	{ID: 17, Summary: "Data race: fanout_demux_rollover() / __fanout_unlink()", Versions: []string{"5.12-rc3"}, Subsys: "net/packet", Type: "DR", Harmful: true, WriteFn: "__fanout_unlink", ReadFn: "fanout_demux_rollover"},
}

// BugByID returns the Table 2 row for id.
func BugByID(id int) (KnownBug, bool) {
	for _, b := range Table2 {
		if b.ID == id {
			return b, true
		}
	}
	return KnownBug{}, false
}

// extra write-function aliases: several distinct sites map to the same row.
var raceAliases = map[[2]string]int{
	{"free_block", "cache_alloc_refill"}:         13,
	{"cache_alloc_refill", "cache_alloc_refill"}: 13,
	{"free_block", "free_block"}:                 13,
	{"rht_assign_unlock", "ipcget"}:              1,
	{"rht_assign_unlock", "rhashtable_lookup"}:   1,
	{"rht_assign_unlock", "rht_key_hashfn"}:      1,
	// Use-after-free shadow of the lockless configfs lookup: the freed item
	// is unlinked into the allocator freelist while the stale lookup still
	// holds a reference.
	{"kfree", "config_item_get"}:                   11,
	{"configfs_detach_item", "configfs_attach"}:    11,
	{"snd_ctl_elem_remove", "snd_ctl_elem_add"}:    15,
	{"snd_ctl_elem_add", "snd_ctl_elem_remove"}:    15,
	{"snd_ctl_elem_remove", "snd_ctl_elem_remove"}: 15,
	// The post-publication sock store of l2tp_tunnel_register is itself
	// unordered with the xmit path's read: the racy shadow of issue #12.
	{"l2tp_tunnel_register", "l2tp_xmit_core"}:   12,
	{"l2tp_tunnel_register", "l2tp_tunnel_get"}:  12,
	{"l2tp_tunnel_register", "pppol2tp_sendmsg"}: 12,
	// Cross combinations of the two MAC writers and two MAC readers touch
	// the same dev_addr object; attribute by writer.
	{"e1000_set_mac", "dev_ifsioc_locked"}:           8,
	{"eth_commit_mac_addr_change", "packet_getname"}: 9,
	// The unfixed lockless configfs_lookup races with every dirent
	// mutation, not only detach.
	{"configfs_mkdir", "configfs_lookup"}: 11,
	{"configfs_rmdir", "configfs_lookup"}: 11,
	// Use-after-free shadow of the configfs lookup race: a freed item is
	// re-allocated (kzalloc memset) while the stale lookup still touches it.
	{"kzalloc", "config_item_get"}:        11,
	{"configfs_mkdir", "config_item_get"}: 11,
	// Every extent-header mutation races the lockless header check; the
	// root cause is issue #3's missing reader lock.
	{"ext4_ext_insert_extent", "ext4_ext_check_inode"}: 3,
	// The default-CA name is read by tcp_ca_find's word compare and
	// written concurrently by two default-setters: the issue #16 family.
	{"tcp_set_default_congestion_control", "tcp_ca_find"}:                        16,
	{"tcp_set_default_congestion_control", "tcp_set_default_congestion_control"}: 16,
	// submit_bio's request sizing load is the first fetch of issue #4's
	// double fetch (blk_update_request re-reads the block size).
	{"set_blocksize", "submit_bio"}: 4,
}

// ClassifyRace attributes a race report to a Table 2 row, returning the
// classified Issue.
func ClassifyRace(r RaceReport) Issue {
	wf, rf := funcOf(r.Write.Ins), funcOf(r.Read.Ins)
	is := Issue{
		Kind:     KindDataRace,
		Desc:     "Data race: " + wf + "() / " + rf + "()",
		WriteIns: r.Write.Ins,
		ReadIns:  r.Read.Ins,
	}
	for _, b := range Table2 {
		// Rows typed AV/OV also cast data-race shadows between the same
		// functions; a race report on their sites is the same root cause.
		if matchFn(b.WriteFn, wf) && matchFn(b.ReadFn, rf) {
			is.BugID, is.Harmful = b.ID, b.Harmful
			return is
		}
		// Symmetric match for same-variable races reported in either order.
		if matchFn(b.WriteFn, rf) && matchFn(b.ReadFn, wf) {
			is.BugID, is.Harmful = b.ID, b.Harmful
			return is
		}
	}
	if id, ok := raceAliases[[2]string{wf, rf}]; ok {
		b, _ := BugByID(id)
		is.BugID, is.Harmful = id, b.Harmful
		return is
	}
	if id, ok := raceAliases[[2]string{rf, wf}]; ok {
		b, _ := BugByID(id)
		is.BugID, is.Harmful = id, b.Harmful
	}
	return is
}

func matchFn(pattern, fn string) bool {
	return pattern == "" || pattern == fn
}

// classifyPanic attributes a crash to a Table 2 row using the faulting
// thread's last recorded access.
func classifyPanic(is *Issue, lastAccess map[int]trace.Ins) {
	fns := make([]string, 0, len(lastAccess))
	for _, ins := range lastAccess {
		fns = append(fns, funcOf(ins))
	}
	for _, fn := range fns {
		switch {
		case strings.HasPrefix(fn, "rht_ptr"), strings.HasPrefix(fn, "ipcget"), strings.HasPrefix(fn, "rhashtable"):
			is.BugID, is.Harmful = 1, true
			return
		case strings.HasPrefix(fn, "l2tp_xmit_core"), strings.HasPrefix(fn, "pppol2tp"):
			is.BugID, is.Harmful = 12, true
			return
		case strings.HasPrefix(fn, "configfs_lookup"):
			is.BugID, is.Harmful = 11, true
			return
		}
	}
}

// classifyConsole attributes filesystem console errors.
func classifyConsole(is *Issue) {
	switch {
	case strings.Contains(is.Desc, "swap_inode_boot_loader"):
		is.BugID, is.Harmful = 2, true
	case strings.Contains(is.Desc, "ext4_ext_check_inode"):
		is.BugID, is.Harmful = 3, false
	}
}
