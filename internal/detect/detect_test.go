package detect

import (
	"reflect"
	"strings"
	"testing"

	"snowboard/internal/trace"
)

var (
	dIns1 = trace.DefIns("detect_test:w1")
	dIns2 = trace.DefIns("detect_test:r1")
	dIns3 = trace.DefIns("detect_test:lock")
	dIns4 = trace.DefIns("detect_test:w2")
)

func acc(th int, kind trace.Kind, ins trace.Ins, addr uint64, size uint8, val uint64) trace.Access {
	return trace.Access{Thread: th, Kind: kind, Ins: ins, Addr: addr, Size: size, Val: val}
}

func traceOf(accs ...trace.Access) *trace.Trace {
	tr := &trace.Trace{}
	for _, a := range accs {
		tr.Append(a)
	}
	return tr
}

func TestConsolePanicClassification(t *testing.T) {
	last := map[int]trace.Ins{1: trace.DefIns("l2tp_xmit_core:load_tunnel_sock")}
	issues := CheckConsole([]string{"BUG: kernel NULL pointer dereference, address: 0x0"}, last)
	if len(issues) != 1 || issues[0].Kind != KindPanic {
		t.Fatalf("issues: %+v", issues)
	}
	if issues[0].BugID != 12 || !issues[0].Harmful {
		t.Fatalf("panic not attributed to #12: %+v", issues[0])
	}
}

func TestConsoleFSErrorClassification(t *testing.T) {
	issues := CheckConsole([]string{
		"EXT4-fs error (device sda): swap_inode_boot_loader:316: inode #1: comm test: iget: checksum invalid",
		"EXT4-fs error (device sda): ext4_ext_check_inode:444: inode #2: invalid magic - magic 0",
		"blk_update_request: I/O error, dev sda, sector 8",
	}, nil)
	if len(issues) != 3 {
		t.Fatalf("issues: %d", len(issues))
	}
	if issues[0].BugID != 2 || issues[1].BugID != 3 || issues[2].BugID != 4 {
		t.Fatalf("classification: %d %d %d", issues[0].BugID, issues[1].BugID, issues[2].BugID)
	}
	if issues[0].Kind != KindFSError || issues[2].Kind != KindIOError {
		t.Fatal("kinds wrong")
	}
}

func TestLocksetRaceBasic(t *testing.T) {
	tr := traceOf(
		acc(0, trace.Write, dIns1, 0x100, 8, 1),
		acc(1, trace.Read, dIns2, 0x100, 8, 0),
	)
	races := FindRaces(tr)
	if len(races) != 1 {
		t.Fatalf("races: %d", len(races))
	}
}

func TestLocksetCommonLockSuppresses(t *testing.T) {
	w := acc(0, trace.Write, dIns1, 0x100, 8, 1)
	r := acc(1, trace.Read, dIns2, 0x100, 8, 0)
	w.Locks = trace.InternLocks([]uint64{0x50})
	r.Locks = trace.InternLocks([]uint64{0x50})
	if races := FindRaces(traceOf(w, r)); len(races) != 0 {
		t.Fatalf("locked pair reported: %+v", races)
	}
}

func TestLocksetMarkedPairSuppressed(t *testing.T) {
	w := acc(0, trace.Write, dIns1, 0x100, 8, 1)
	r := acc(1, trace.Read, dIns2, 0x100, 8, 0)
	w.Marked, r.Marked = true, true
	if races := FindRaces(traceOf(w, r)); len(races) != 0 {
		t.Fatal("marked/marked pair reported")
	}
	// One plain side keeps the report.
	r.Marked = false
	if races := FindRaces(traceOf(w, r)); len(races) != 1 {
		t.Fatal("marked/plain pair suppressed")
	}
}

func TestLocksetStackAndAtomicSkipped(t *testing.T) {
	w := acc(0, trace.Write, dIns1, 0x100, 8, 1)
	r := acc(1, trace.Read, dIns2, 0x100, 8, 0)
	w.Stack = true
	if races := FindRaces(traceOf(w, r)); len(races) != 0 {
		t.Fatal("stack access raced")
	}
	w.Stack, w.Atomic = false, true
	if races := FindRaces(traceOf(w, r)); len(races) != 0 {
		t.Fatal("atomic access raced")
	}
}

func TestHBProgramOrderNoRace(t *testing.T) {
	tr := traceOf(
		acc(0, trace.Write, dIns1, 0x100, 8, 1),
		acc(0, trace.Read, dIns2, 0x100, 8, 1),
	)
	if races := FindRacesHB(tr); len(races) != 0 {
		t.Fatalf("same-thread accesses raced: %+v", races)
	}
}

func TestHBUnsynchronizedRace(t *testing.T) {
	tr := traceOf(
		acc(0, trace.Write, dIns1, 0x100, 8, 1),
		acc(1, trace.Read, dIns2, 0x100, 8, 1),
	)
	races := FindRacesHB(tr)
	if len(races) != 1 {
		t.Fatalf("races: %d", len(races))
	}
	if races[0].Write.Ins != dIns1 || races[0].Read.Ins != dIns2 {
		t.Fatalf("race pair: %+v", races[0])
	}
}

// lockOps emits the atomic lock-word traffic the VM produces.
func lockAcquire(th int, lock uint64) trace.Access {
	a := acc(th, trace.Write, dIns3, lock, 8, uint64(th)+1)
	a.Atomic = true
	return a
}

func lockRelease(th int, lock uint64) trace.Access {
	a := acc(th, trace.Write, dIns3, lock, 8, 0)
	a.Atomic = true
	return a
}

func TestHBLockEdgeOrders(t *testing.T) {
	const lock = 0x50
	tr := traceOf(
		lockAcquire(0, lock),
		acc(0, trace.Write, dIns1, 0x100, 8, 1),
		lockRelease(0, lock),
		lockAcquire(1, lock),
		acc(1, trace.Read, dIns2, 0x100, 8, 1),
		lockRelease(1, lock),
	)
	if races := FindRacesHB(tr); len(races) != 0 {
		t.Fatalf("lock-ordered accesses raced: %+v", races)
	}
}

func TestHBWriteAfterReleaseRaces(t *testing.T) {
	const lock = 0x50
	tr := traceOf(
		lockAcquire(0, lock),
		lockRelease(0, lock),
		acc(0, trace.Write, dIns1, 0x100, 8, 1), // after the release: unordered
		lockAcquire(1, lock),
		acc(1, trace.Read, dIns2, 0x100, 8, 1),
	)
	if races := FindRacesHB(tr); len(races) != 1 {
		t.Fatalf("post-release write not raced: %+v", races)
	}
}

func TestHBPublicationOrdersInit(t *testing.T) {
	// Thread 0 initializes an object, publishes it with a marked store;
	// thread 1 reads the pointer (plain dependent read) then the field.
	pub := acc(0, trace.Write, dIns4, 0x200, 8, 0x100)
	pub.Marked = true
	tr := traceOf(
		acc(0, trace.Write, dIns1, 0x100, 8, 7), // init field
		pub,                                     // publish
		acc(1, trace.Read, dIns2, 0x200, 8, 0x100), // load pointer
		acc(1, trace.Read, dIns2, 0x100, 8, 7),     // dereference field
	)
	races := FindRacesHB(tr)
	for _, r := range races {
		if r.Write.Ins == dIns1 {
			t.Fatalf("publication did not order init store: %+v", r)
		}
	}
}

func TestHBPostPublicationStoreRaces(t *testing.T) {
	pub := acc(0, trace.Write, dIns4, 0x200, 8, 0x100)
	pub.Marked = true
	tr := traceOf(
		pub,
		acc(1, trace.Read, dIns2, 0x200, 8, 0x100), // consume pointer
		acc(0, trace.Write, dIns1, 0x100, 8, 7),    // late init — after publish
		acc(1, trace.Read, dIns2, 0x100, 8, 7),     // dereference: races with late init
	)
	races := FindRacesHB(tr)
	found := false
	for _, r := range races {
		if r.Write.Ins == dIns1 && r.Read.Ins == dIns2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("late-init race missed: %+v", races)
	}
}

func TestHBWriteWriteConflict(t *testing.T) {
	tr := traceOf(
		acc(0, trace.Write, dIns1, 0x100, 8, 1),
		acc(1, trace.Write, dIns4, 0x100, 8, 2),
	)
	if races := FindRacesHB(tr); len(races) != 1 {
		t.Fatalf("write/write conflict missed: %+v", races)
	}
}

func TestFindTornReads(t *testing.T) {
	// Thread 1 reads 6 bytes with one instruction; thread 0 writes into
	// the middle of the run.
	var accs []trace.Access
	for i := 0; i < 3; i++ {
		accs = append(accs, acc(1, trace.Read, dIns2, 0x100+uint64(i), 1, 0xAA))
	}
	accs = append(accs, acc(0, trace.Write, dIns1, 0x103, 1, 0xBB))
	for i := 3; i < 6; i++ {
		accs = append(accs, acc(1, trace.Read, dIns2, 0x100+uint64(i), 1, 0xBB))
	}
	torn := FindTornReads(traceOf(accs...))
	if len(torn) != 1 {
		t.Fatalf("torn reads: %+v", torn)
	}
	if torn[0].ReadIns != dIns2 || torn[0].WriteIns != dIns1 || torn[0].Len != 6 {
		t.Fatalf("torn report: %+v", torn[0])
	}
}

func TestFindTornReadsNoWriterNoReport(t *testing.T) {
	var accs []trace.Access
	for i := 0; i < 6; i++ {
		accs = append(accs, acc(1, trace.Read, dIns2, 0x100+uint64(i), 1, 0xAA))
	}
	if torn := FindTornReads(traceOf(accs...)); len(torn) != 0 {
		t.Fatalf("phantom torn read: %+v", torn)
	}
}

func TestClassifyRaceTable2(t *testing.T) {
	w := trace.DefIns("eth_commit_mac_addr_change:memcpy_dev_addr")
	r := trace.DefIns("dev_ifsioc_locked:memcpy_ifr_hwaddr")
	is := ClassifyRace(RaceReport{
		Write: trace.Access{Ins: w, Kind: trace.Write},
		Read:  trace.Access{Ins: r, Kind: trace.Read},
	})
	if is.BugID != 9 || !is.Harmful {
		t.Fatalf("classification: %+v", is)
	}
	if !strings.Contains(is.Desc, "eth_commit_mac_addr_change()") {
		t.Fatalf("desc: %q", is.Desc)
	}
}

func TestClassifyRaceSymmetric(t *testing.T) {
	// The same-variable race reported with sides flipped still classifies.
	w := trace.DefIns("fib6_get_cookie_safe:load_fn_sernum")
	r := trace.DefIns("fib6_clean_node:store_fn_sernum")
	is := ClassifyRace(RaceReport{
		Write: trace.Access{Ins: r, Kind: trace.Write},
		Read:  trace.Access{Ins: w, Kind: trace.Read},
	})
	if is.BugID != 10 || is.Harmful {
		t.Fatalf("classification: %+v", is)
	}
}

func TestClassifyRaceUnknown(t *testing.T) {
	is := ClassifyRace(RaceReport{
		Write: trace.Access{Ins: dIns1, Kind: trace.Write},
		Read:  trace.Access{Ins: dIns2, Kind: trace.Read},
	})
	if is.BugID != 0 {
		t.Fatalf("phantom classification: %+v", is)
	}
}

func TestTable2RegistryConsistency(t *testing.T) {
	seen := make(map[int]bool)
	for _, b := range Table2 {
		if b.ID < 1 || b.ID > 17 {
			t.Fatalf("bad id %d", b.ID)
		}
		if seen[b.ID] {
			t.Fatalf("duplicate id %d", b.ID)
		}
		seen[b.ID] = true
		if len(b.Versions) == 0 {
			t.Fatalf("#%d has no versions", b.ID)
		}
		for _, v := range b.Versions {
			if v != "5.3.10" && v != "5.12-rc3" {
				t.Fatalf("#%d bad version %q", b.ID, v)
			}
		}
		if b.Type != "DR" && b.Type != "AV" && b.Type != "OV" {
			t.Fatalf("#%d bad type %q", b.ID, b.Type)
		}
	}
	if len(seen) != 17 {
		t.Fatalf("registry has %d rows, want 17", len(seen))
	}
	if _, ok := BugByID(12); !ok {
		t.Fatal("BugByID(12) failed")
	}
	if _, ok := BugByID(99); ok {
		t.Fatal("BugByID(99) succeeded")
	}
}

func TestAnalyzeDeduplicates(t *testing.T) {
	tr := traceOf(
		acc(0, trace.Write, dIns1, 0x100, 8, 1),
		acc(1, trace.Read, dIns2, 0x100, 8, 1),
		acc(0, trace.Write, dIns1, 0x100, 8, 2),
		acc(1, trace.Read, dIns2, 0x100, 8, 2),
	)
	issues := Analyze(TrialInput{Trace: tr}, DefaultOptions())
	races := 0
	for _, is := range issues {
		if is.Kind == KindDataRace {
			races++
		}
	}
	if races != 1 {
		t.Fatalf("duplicate race reports: %d", races)
	}
}

func TestAnalyzeHangAndDeadlock(t *testing.T) {
	issues := Analyze(TrialInput{Hung: true, Deadlock: true}, DefaultOptions())
	var hang, dead bool
	for _, is := range issues {
		switch is.Kind {
		case KindHang:
			hang = true
		case KindDeadlock:
			dead = true
		}
	}
	if !hang || !dead {
		t.Fatalf("hang/deadlock not reported: %+v", issues)
	}
	if Harmless(issues) {
		t.Fatal("deadlock considered harmless")
	}
}

func TestHarmless(t *testing.T) {
	if !Harmless([]Issue{{Kind: KindDataRace, BugID: 13}}) {
		t.Fatal("benign race not harmless")
	}
	if Harmless([]Issue{{Kind: KindDataRace, BugID: 9, Harmful: true}}) {
		t.Fatal("harmful race harmless")
	}
	if Harmless([]Issue{{Kind: KindPanic}}) {
		t.Fatal("panic harmless")
	}
}

func TestIssueIDDistinguishesTorn(t *testing.T) {
	race := Issue{Kind: KindDataRace, WriteIns: dIns1, ReadIns: dIns2}
	torn := race
	torn.Torn = true
	if race.ID() == torn.ID() {
		t.Fatal("torn and plain race share an ID")
	}
}

// TestFindRacesShuffleInvariant pins the report ordering against map
// iteration order and sort-internals: the same trace must produce the
// identical race list on every call, sorted by (write Ins, read Ins).
func TestFindRacesShuffleInvariant(t *testing.T) {
	ws := []trace.Ins{dIns1, dIns4, trace.DefIns("detect_test:w3"), trace.DefIns("detect_test:w4")}
	rs := []trace.Ins{dIns2, trace.DefIns("detect_test:r2"), trace.DefIns("detect_test:r3")}
	var accs []trace.Access
	for wi, w := range ws {
		for ri, r := range rs {
			addr := uint64(0x1000 + 0x10*(wi*len(rs)+ri))
			accs = append(accs, acc(0, trace.Write, w, addr, 8, 1), acc(1, trace.Read, r, addr, 8, 0))
		}
	}
	base := FindRaces(traceOf(accs...))
	if len(base) != len(ws)*len(rs) {
		t.Fatalf("races: %d, want %d", len(base), len(ws)*len(rs))
	}
	for i := 1; i < len(base); i++ {
		a, b := base[i-1], base[i]
		if a.Write.Ins > b.Write.Ins || (a.Write.Ins == b.Write.Ins && a.Read.Ins >= b.Read.Ins) {
			t.Fatalf("races not strictly ordered at %d: %+v then %+v", i, a, b)
		}
	}
	for run := 0; run < 50; run++ {
		if got := FindRaces(traceOf(accs...)); !reflect.DeepEqual(got, base) {
			t.Fatalf("run %d: race order diverged", run)
		}
	}
}
