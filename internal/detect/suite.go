package detect

import (
	"snowboard/internal/obs"
	"snowboard/internal/trace"
)

// Oracle metrics: raw finding counts across all trials, process-wide.
var (
	mReports = obs.C(obs.MDetectReports)
	mHarmful = obs.C(obs.MDetectHarmful)
)

// RaceMode selects the data race analysis.
type RaceMode uint8

// Race analysis modes.
const (
	// RaceHB is the precise happens-before (FastTrack-style) analysis.
	RaceHB RaceMode = iota
	// RaceLockset is the Eraser-style lockset analysis: more predictive,
	// but it flags correctly published RCU initialization as racy. Kept as
	// an ablation mode.
	RaceLockset
)

// Options toggles individual oracles.
type Options struct {
	Console   bool
	Races     bool
	TornReads bool
	RaceMode  RaceMode
}

// DefaultOptions enables every oracle with happens-before race analysis.
func DefaultOptions() Options {
	return Options{Console: true, Races: true, TornReads: true, RaceMode: RaceHB}
}

// TrialInput is everything a trial hands to the oracles.
type TrialInput struct {
	Console  []string     // guest console lines (includes fault oopses)
	Trace    *trace.Trace // full access trace of the trial
	PostScan []string     // host-side post-mortem messages (e.g. fsck)
	Hung     bool
	Deadlock bool
}

// Analyze runs the enabled oracles over one trial and returns deduplicated,
// classified issues.
func Analyze(in TrialInput, opt Options) []Issue {
	var out []Issue
	seen := make(map[string]bool)
	add := func(is Issue) {
		if !seen[is.ID()] {
			seen[is.ID()] = true
			out = append(out, is)
		}
	}

	if opt.Console {
		last := lastAccessByThread(in.Trace)
		for _, is := range CheckConsole(in.Console, last) {
			add(is)
		}
		for _, is := range CheckConsole(in.PostScan, last) {
			add(is)
		}
	}
	if opt.Races && in.Trace != nil {
		var races []RaceReport
		if opt.RaceMode == RaceLockset {
			races = FindRaces(in.Trace)
		} else {
			races = FindRacesHB(in.Trace)
		}
		for _, r := range races {
			add(ClassifyRace(r))
		}
	}
	if opt.TornReads && in.Trace != nil {
		for _, t := range FindTornReads(in.Trace) {
			is := ClassifyRace(RaceReport{
				Write: trace.Access{Ins: t.WriteIns, Kind: trace.Write, Addr: t.Addr, Size: 1},
				Read:  trace.Access{Ins: t.ReadIns, Kind: trace.Read, Addr: t.Addr, Size: 1, Thread: 1},
			})
			is.Torn = true
			is.Desc = "Torn read: " + is.Desc
			add(is)
		}
	}
	if in.Deadlock {
		add(Issue{Kind: KindDeadlock, Desc: "deadlock: all threads blocked"})
	}
	if in.Hung {
		add(Issue{Kind: KindHang, Desc: "hang: step budget exhausted"})
	}
	mReports.Add(int64(len(out)))
	for _, is := range out {
		if is.Harmful {
			mHarmful.Inc()
		}
		// Flight-record crash-level findings only: exploration breaks off on
		// a crash, so these stay bounded, while benign races show up in
		// nearly every trial and would flood the ring.
		switch is.Kind {
		case KindPanic, KindFSError, KindIOError, KindDeadlock:
			obs.Emit(obs.EvRaceFound, obs.A("kind", is.Kind.String()),
				obs.A("harmful", is.Harmful), obs.A("desc", is.Desc))
		}
	}
	return out
}

// lastAccessByThread maps each thread to the instruction of its final
// recorded access, used to attribute faults.
func lastAccessByThread(tr *trace.Trace) map[int]trace.Ins {
	out := make(map[int]trace.Ins)
	if tr == nil {
		return out
	}
	for i, n := 0, tr.Len(); i < n; i++ {
		out[tr.ThreadAt(i)] = tr.InsAt(i)
	}
	return out
}

// Harmless reports whether every issue found is a known-benign one, useful
// for tests asserting that a trial surfaced nothing alarming.
func Harmless(issues []Issue) bool {
	for _, is := range issues {
		if is.Harmful {
			return false
		}
		if is.Kind == KindPanic || is.Kind == KindDeadlock {
			return false
		}
	}
	return true
}
