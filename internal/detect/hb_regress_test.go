package detect

import (
	"testing"

	"snowboard/internal/trace"
)

// Regression: FindRacesHB used to cap its vector-clock state at 8 threads
// and silently skip every access from thread ≥ 8, so this race between
// threads 8 and 9 was invisible.
func TestHBHighThreadIDsAnalyzed(t *testing.T) {
	tr := traceOf(
		acc(8, trace.Write, dIns1, 0x100, 8, 1),
		acc(9, trace.Read, dIns2, 0x100, 8, 1),
	)
	races := FindRacesHB(tr)
	if len(races) != 1 {
		t.Fatalf("race between threads 8 and 9 missed: got %d reports", len(races))
	}
	if races[0].Write.Thread != 8 || races[0].Read.Thread != 9 {
		t.Fatalf("race pair threads: %+v", races[0])
	}
}

// Regression: FindRacesHB used to dedup reports by (write Ins, read Ins)
// globally, so the same instruction pair racing on a second, unrelated
// address produced only one report.
func TestHBSamePairDistinctAddresses(t *testing.T) {
	tr := traceOf(
		acc(0, trace.Write, dIns1, 0x100, 8, 1),
		acc(1, trace.Read, dIns2, 0x100, 8, 1),
		acc(0, trace.Write, dIns1, 0x200, 8, 2),
		acc(1, trace.Read, dIns2, 0x200, 8, 2),
	)
	races := FindRacesHB(tr)
	if len(races) != 2 {
		t.Fatalf("want one report per racing address, got %d: %+v", len(races), races)
	}
	addrs := map[uint64]bool{races[0].Read.Addr: true, races[1].Read.Addr: true}
	if !addrs[0x100] || !addrs[0x200] {
		t.Fatalf("reported addresses: %+v", races)
	}
}
