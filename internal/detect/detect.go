// Package detect implements the bug oracles of §3.1/§4.4.1: a kernel
// console checker, a lockset-based data race detector (the DataCollider
// stand-in), hang/deadlock oracles, a torn-read witness, and the
// known-issue classifier that maps findings onto the paper's Table 2.
package detect

import (
	"fmt"
	"sort"
	"strings"

	"snowboard/internal/trace"
)

// IssueKind classifies a finding.
type IssueKind uint8

// Issue kinds.
const (
	// KindPanic is a kernel crash (oops / BUG / null dereference).
	KindPanic IssueKind = iota
	// KindFSError is a filesystem consistency error on the console.
	KindFSError
	// KindIOError is a block-layer I/O error on the console.
	KindIOError
	// KindDataRace is a lockset-detected data race.
	KindDataRace
	// KindDeadlock means all threads blocked.
	KindDeadlock
	// KindHang means the step budget was exhausted (livelock heuristic).
	KindHang
)

// String names the kind.
func (k IssueKind) String() string {
	switch k {
	case KindPanic:
		return "panic"
	case KindFSError:
		return "fs-error"
	case KindIOError:
		return "io-error"
	case KindDataRace:
		return "data-race"
	case KindDeadlock:
		return "deadlock"
	case KindHang:
		return "hang"
	}
	return "unknown"
}

// Issue is one finding from a trial.
type Issue struct {
	Kind     IssueKind
	Desc     string    // human-readable description (console line or race pair)
	WriteIns trace.Ins // racing write site (data races only)
	ReadIns  trace.Ins // racing read site (data races only)
	BugID    int       // Table 2 issue number, 0 if unclassified
	Harmful  bool      // per the Table 2 classification
	Torn     bool      // a torn multi-part read was directly witnessed
}

// ID returns a stable deduplication key for the issue.
func (i Issue) ID() string {
	if i.Kind == KindDataRace {
		pfx := "race"
		if i.Torn {
			pfx = "torn"
		}
		return fmt.Sprintf("%s:%s/%s", pfx, i.WriteIns.Name(), i.ReadIns.Name())
	}
	return fmt.Sprintf("%s:%s", i.Kind, i.Desc)
}

// funcOf strips the ":operation" suffix from an instruction name, leaving
// the kernel function, which is how findings are matched to Table 2.
func funcOf(ins trace.Ins) string {
	name := ins.Name()
	if i := strings.IndexByte(name, ':'); i >= 0 {
		return name[:i]
	}
	return name
}

// SiteOf is funcOf for other packages: the kernel function an instruction
// belongs to, the granularity at which triage signatures and Table 2
// classification match sites.
func SiteOf(ins trace.Ins) string { return funcOf(ins) }

// CrashLevel reports whether the issue kind wedges or corrupts the kernel
// (panic, fs/io corruption, deadlock) as opposed to a benign-by-itself
// observation (data race witness, hang heuristics). Crash-level findings
// are the ones the explorer records repro state for and triage minimizes.
func CrashLevel(k IssueKind) bool {
	switch k {
	case KindPanic, KindFSError, KindIOError, KindDeadlock:
		return true
	}
	return false
}

// CheckConsole scans console lines for crash and corruption signatures.
// lastAccess maps thread id -> the final access recorded before a fault,
// used to attribute panics to a kernel function.
func CheckConsole(lines []string, lastAccess map[int]trace.Ins) []Issue {
	var out []Issue
	for _, l := range lines {
		switch {
		case strings.Contains(l, "NULL pointer dereference"),
			strings.Contains(l, "unable to handle page fault"),
			strings.HasPrefix(l, "BUG:"):
			is := Issue{Kind: KindPanic, Desc: l}
			classifyPanic(&is, lastAccess)
			out = append(out, is)
		case strings.Contains(l, "EXT4-fs error"):
			is := Issue{Kind: KindFSError, Desc: l}
			classifyConsole(&is)
			out = append(out, is)
		case strings.Contains(l, "blk_update_request: I/O error"):
			is := Issue{Kind: KindIOError, Desc: l, BugID: 4, Harmful: true}
			out = append(out, is)
		}
	}
	return out
}

// RaceReport is a deduplicated data race found by the lockset detector.
type RaceReport struct {
	Write, Read trace.Access
}

// FindRaces runs the Eraser-style lockset analysis over a trial trace:
// two accesses from different threads to overlapping non-stack memory, at
// least one a plain (unmarked, non-lock-word) write, holding no common
// lock, constitute a data race. Pairs where both sides are marked
// (READ_ONCE/WRITE_ONCE/rcu) are intentional concurrency and skipped,
// mirroring KCSAN's defaults.
func FindRaces(tr *trace.Trace) []RaceReport {
	type key struct{ w, r trace.Ins }
	seen := make(map[key]bool)
	var out []RaceReport

	n := tr.Len()
	// Group by overlap via a write index bucketed on address.
	writes := make(map[uint64][]int)
	for i := 0; i < n; i++ {
		if tr.IsWriteAt(i) && !tr.AtomicAt(i) && !tr.StackAt(i) {
			writes[tr.AddrAt(i)] = append(writes[tr.AddrAt(i)], i)
		}
	}
	consider := func(wi, oi int) {
		w, o := tr.At(wi), tr.At(oi)
		if w.Thread == o.Thread || !w.Overlaps(&o) {
			return
		}
		if w.Marked && o.Marked {
			return
		}
		if w.SharesLock(&o) {
			return
		}
		// For a write/write conflict the second write fills the "read"
		// side for keying purposes (both clobber the location).
		k := key{w: w.Ins, r: o.Ins}
		if seen[k] {
			return
		}
		seen[k] = true
		out = append(out, RaceReport{Write: w, Read: o})
	}
	for i := 0; i < n; i++ {
		if tr.AtomicAt(i) || tr.StackAt(i) {
			continue
		}
		oAddr, oEnd := tr.AddrAt(i), tr.EndAt(i)
		oWrite := tr.IsWriteAt(i)
		lo := uint64(0)
		if oAddr > 7 {
			lo = oAddr - 7
		}
		for addr := lo; addr < oEnd; addr++ {
			for _, wi := range writes[addr] {
				if wi == i {
					continue
				}
				// Deduplicate write/write pairs: only report with the
				// earlier access as the "write" side.
				if oWrite && wi > i {
					continue
				}
				consider(wi, i)
			}
		}
	}
	// Sort key: (write Ins, read Ins). The `seen` map dedups exactly this
	// pair, so the comparator is total over the slice today. SliceStable
	// keeps the output deterministic even if that invariant ever weakens:
	// ties would then fall back to append order, which follows the trace
	// scan and is itself deterministic — never the sorter's internal
	// permutation.
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Write.Ins != out[j].Write.Ins {
			return out[i].Write.Ins < out[j].Write.Ins
		}
		return out[i].Read.Ins < out[j].Read.Ins
	})
	return out
}

// TornRead is a witnessed value corruption: a multi-part read (same
// instruction over adjacent bytes) interleaved with a conflicting writer,
// e.g. Figure 3's corrupted MAC address.
type TornRead struct {
	ReadIns  trace.Ins
	WriteIns trace.Ins
	Addr     uint64
	Len      int
}

// FindTornReads scans the trial for runs of same-instruction byte reads by
// one thread with a conflicting write from another thread sequenced inside
// the run — direct evidence that the reader observed a mix of old and new
// bytes.
func FindTornReads(tr *trace.Trace) []TornRead {
	n := tr.Len()
	var out []TornRead
	for i := 0; i < n; {
		if tr.KindAt(i) != trace.Read || tr.StackAt(i) || tr.AtomicAt(i) {
			i++
			continue
		}
		aThread, aIns := tr.ThreadAt(i), tr.InsAt(i)
		// Collect the run of reads by the same thread+instruction over
		// adjacent ascending addresses (a memcpy loop).
		j := i
		for j+1 < n {
			// Allow interleaved accesses from other threads inside the run.
			next := -1
			for k := j + 1; k < n && k <= j+16; k++ {
				if tr.ThreadAt(k) == aThread {
					if tr.InsAt(k) == aIns && tr.KindAt(k) == trace.Read && tr.AddrAt(k) == tr.EndAt(j) {
						next = k
					}
					break
				}
			}
			if next < 0 {
				break
			}
			j = next
		}
		if j > i+1 { // a run of at least 3 parts
			lo, hi := tr.AddrAt(i), tr.EndAt(j)
			// Any conflicting write sequenced strictly inside the run?
			for k := i + 1; k < j; k++ {
				if tr.IsWriteAt(k) && tr.ThreadAt(k) != aThread && tr.AddrAt(k) < hi && tr.EndAt(k) > lo {
					out = append(out, TornRead{
						ReadIns:  aIns,
						WriteIns: tr.InsAt(k),
						Addr:     lo,
						Len:      int(hi - lo),
					})
					break
				}
			}
		}
		i = j + 1
	}
	return out
}
