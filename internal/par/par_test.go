package par

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"snowboard/internal/obs"
)

func TestWorkersResolve(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(5); got != 5 {
		t.Fatalf("Workers(5) = %d", got)
	}
}

func TestMapResultsIndexedByUnit(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		got := Map(workers, 50, func(worker, unit int) int { return unit * unit })
		if len(got) != 50 {
			t.Fatalf("workers=%d: len = %d, want 50", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	if got := Map(4, 0, func(worker, unit int) int { return 1 }); got != nil {
		t.Fatalf("Map over zero units = %v, want nil", got)
	}
}

// Each pool slot must be driven by exactly one goroutine, so per-worker
// state (Env clones, coverage accumulators) needs no locking.
func TestMapOneGoroutinePerWorker(t *testing.T) {
	const workers, units = 4, 200
	var active [workers]atomic.Int32
	var maxSeen atomic.Int32
	Map(workers, units, func(worker, unit int) struct{} {
		if worker < 0 || worker >= workers {
			t.Errorf("worker id %d out of range", worker)
		}
		if n := active[worker].Add(1); n > 1 {
			t.Errorf("worker %d entered concurrently (%d)", worker, n)
		}
		if w := int32(worker); w >= maxSeen.Load() {
			maxSeen.Store(w)
		}
		for i := 0; i < 100; i++ {
			runtime.Gosched()
		}
		active[worker].Add(-1)
		return struct{}{}
	})
	_ = maxSeen.Load()
}

func TestMapClampsWorkersToUnits(t *testing.T) {
	seen := make(map[int]bool)
	var mu sync.Mutex
	Map(16, 3, func(worker, unit int) struct{} {
		mu.Lock()
		seen[worker] = true
		mu.Unlock()
		return struct{}{}
	})
	for w := range seen {
		if w >= 3 {
			t.Fatalf("worker id %d despite only 3 units", w)
		}
	}
}

func TestForEach(t *testing.T) {
	var sum atomic.Int64
	ForEach(3, 10, func(worker, unit int) { sum.Add(int64(unit)) })
	if sum.Load() != 45 {
		t.Fatalf("sum = %d, want 45", sum.Load())
	}
}

func TestUnitSeedDeterministicAndDistinct(t *testing.T) {
	if UnitSeed(7, StageFuzz, 3) != UnitSeed(7, StageFuzz, 3) {
		t.Fatal("UnitSeed is not deterministic")
	}
	seen := make(map[int64]string)
	for _, base := range []int64{0, 1, 99} {
		for _, stage := range []uint64{StageFuzz, StageGenerate, StageExplore} {
			for unit := 0; unit < 64; unit++ {
				s := UnitSeed(base, stage, unit)
				key := string(rune(base)) + string(rune(stage)) + string(rune(unit))
				if prev, dup := seen[s]; dup {
					t.Fatalf("seed collision: %q and %q both give %d", prev, key, s)
				}
				seen[s] = key
			}
		}
	}
}

func TestMapBumpsPoolMetrics(t *testing.T) {
	before := obs.Default.Snapshot()
	Map(2, 7, func(worker, unit int) int { return unit })
	diff := obs.Default.Snapshot().Sub(before)
	if diff.Counters[obs.MParUnits] != 7 {
		t.Fatalf("par.units delta = %d, want 7", diff.Counters[obs.MParUnits])
	}
	if g := obs.Default.Gauge(obs.MParWorkers).Value(); g != 0 {
		t.Fatalf("par.workers gauge = %d after Map returned, want 0", g)
	}
	if g := obs.Default.Gauge(obs.MParQueueDepth).Value(); g != 0 {
		t.Fatalf("par.queue_depth gauge = %d after Map returned, want 0", g)
	}
}
