// Package par is the worker-pool execution engine behind the parallel
// pipeline stages. Snowboard's throughput comes from running huge numbers
// of independent executions — fuzzing candidates, sequential profiles,
// concurrent-test trials — and par fans those units out across a fixed
// pool of goroutines while keeping results bit-identical to a serial run:
//
//   - units are claimed from an atomic counter, but results land in an
//     index-addressed slice, so the caller folds them in unit order;
//   - randomized units derive their RNG seed from (base seed, stage tag,
//     unit index) via UnitSeed instead of sharing one rand.Rand, so the
//     stream a unit sees is independent of which worker ran it.
//
// Worker IDs are passed to the unit function so callers can give each
// worker exclusive mutable state (an exec.Env clone, a coverage
// accumulator) without locking: par.Map runs exactly one goroutine per
// worker ID.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"snowboard/internal/obs"
)

// Pool metrics (process-wide registry, resolved once).
var (
	mWorkers    = obs.G(obs.MParWorkers)
	mQueueDepth = obs.G(obs.MParQueueDepth)
	mUnits      = obs.C(obs.MParUnits)
	hUnit       = obs.H(obs.MParUnitDuration)
)

// Workers resolves a configured worker count: values <= 0 mean "one per
// available CPU" (GOMAXPROCS).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Stage tags for UnitSeed, one per randomized pipeline stage. The values
// are part of the determinism contract: changing them changes every
// derived seed, so new stages must append rather than renumber.
const (
	StageFuzz uint64 = iota + 1
	StageProfile
	StageIdentify
	StageGenerate
	StageExplore
)

// UnitSeed derives the deterministic RNG seed of one work unit from the
// campaign seed, a stage tag, and the unit's global index. The splitmix64
// finalizer decorrelates adjacent units, so consecutive indices do not
// yield overlapping rand.Rand streams the way seed+i would.
func UnitSeed(base int64, stage uint64, unit int) int64 {
	x := mix64(uint64(base) + stage*0x9E3779B97F4A7C15)
	x = mix64(x ^ (uint64(unit)+1)*0x9E3779B97F4A7C15)
	return int64(x)
}

// mix64 is the splitmix64 finalizer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// Map executes fn for every unit index in [0, n) across a pool of worker
// goroutines and returns the results in unit order. Units are claimed
// dynamically (an atomic counter), so uneven unit costs balance across the
// pool, but the returned slice is always indexed by unit — callers that
// fold it sequentially observe the exact serial order regardless of
// scheduling.
//
// workers is resolved through Workers (0 means GOMAXPROCS) and clamped to
// n. fn receives (worker, unit): worker is the pool slot in [0, workers),
// and Map guarantees a single goroutine per slot, so per-worker state
// needs no locking. With one worker, fn runs inline on the caller's
// goroutine.
func Map[R any](workers, n int, fn func(worker, unit int) R) []R {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	results := make([]R, n)
	mWorkers.Add(int64(workers))
	mQueueDepth.Add(int64(n))
	defer mWorkers.Add(int64(-workers))

	run := func(worker, unit int) {
		mQueueDepth.Add(-1)
		start := time.Now()
		results[unit] = fn(worker, unit)
		hUnit.ObserveDuration(time.Since(start))
		mUnits.Inc()
	}

	if workers == 1 {
		for unit := 0; unit < n; unit++ {
			run(0, unit)
		}
		return results
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				unit := int(next.Add(1)) - 1
				if unit >= n {
					return
				}
				run(worker, unit)
			}
		}(w)
	}
	wg.Wait()
	return results
}

// ForEach is Map for side-effecting units with no result value.
func ForEach(workers, n int, fn func(worker, unit int)) {
	Map(workers, n, func(worker, unit int) struct{} {
		fn(worker, unit)
		return struct{}{}
	})
}
