package corpus

import (
	"strings"
	"testing"

	"snowboard/internal/kernel"
)

func validProg() *Prog {
	return &Prog{Calls: []Call{
		{Nr: kernel.SysSocketNr, Args: []Arg{Const(kernel.AFInet), Const(kernel.SockStream), Const(0)}},
		{Nr: kernel.SysConnectNr, Args: []Arg{Result(0), Const(1), Result(0)}},
	}}
}

func TestValidateAccepts(t *testing.T) {
	if err := validProg().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadSyscall(t *testing.T) {
	p := &Prog{Calls: []Call{{Nr: kernel.NumSyscalls}}}
	if p.Validate() == nil {
		t.Fatal("bad syscall number accepted")
	}
	p = &Prog{Calls: []Call{{Nr: -1}}}
	if p.Validate() == nil {
		t.Fatal("negative syscall number accepted")
	}
}

func TestValidateRejectsForwardRef(t *testing.T) {
	p := &Prog{Calls: []Call{
		{Nr: kernel.SysConnectNr, Args: []Arg{Result(0), Const(1), Result(0)}},
	}}
	if p.Validate() == nil {
		t.Fatal("self/forward resource reference accepted")
	}
	p = &Prog{Calls: []Call{
		{Nr: kernel.SysSocketNr},
		{Nr: kernel.SysConnectNr, Args: []Arg{Result(5), Const(1), Result(0)}},
	}}
	if p.Validate() == nil {
		t.Fatal("forward reference accepted")
	}
}

func TestValidateRejectsExtraArgs(t *testing.T) {
	p := &Prog{Calls: []Call{
		{Nr: kernel.SysMountNr, Args: []Arg{Const(1)}}, // mount takes none
	}}
	if p.Validate() == nil {
		t.Fatal("excess arguments accepted")
	}
}

func TestStringFormat(t *testing.T) {
	s := validProg().String()
	if !strings.Contains(s, "r0 = socket(0x2, 0x1, 0x0)") {
		t.Fatalf("rendering:\n%s", s)
	}
	if !strings.Contains(s, "r1 = connect(r0, 0x1, r0)") {
		t.Fatalf("rendering:\n%s", s)
	}
}

func TestCloneIndependence(t *testing.T) {
	p := validProg()
	q := p.Clone()
	q.Calls[0].Args[0] = Const(999)
	q.Calls = append(q.Calls, Call{Nr: kernel.SysMountNr})
	if p.Calls[0].Args[0].Val == 999 || len(p.Calls) != 2 {
		t.Fatal("clone shares state with original")
	}
}

func TestMarshalRoundtrip(t *testing.T) {
	p := validProg()
	data, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	q, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if p.Hash() != q.Hash() {
		t.Fatalf("roundtrip changed the program:\n%s\n%s", p, q)
	}
}

func TestUnmarshalValidates(t *testing.T) {
	if _, err := Unmarshal([]byte(`{"calls":[{"nr":9999}]}`)); err == nil {
		t.Fatal("invalid program unmarshaled")
	}
	if _, err := Unmarshal([]byte(`not json`)); err == nil {
		t.Fatal("garbage unmarshaled")
	}
}

func TestCorpusDedup(t *testing.T) {
	c := NewCorpus()
	if !c.Add(validProg()) {
		t.Fatal("first add rejected")
	}
	if c.Add(validProg()) {
		t.Fatal("duplicate accepted")
	}
	other := validProg()
	other.Calls[0].Args[0] = Const(kernel.AFInet6)
	if !c.Add(other) {
		t.Fatal("distinct program rejected")
	}
	if c.Len() != 2 {
		t.Fatalf("corpus size %d", c.Len())
	}
}

func TestSyscallHistogram(t *testing.T) {
	c := NewCorpus()
	c.Add(validProg())
	h := c.SyscallHistogram()
	joined := strings.Join(h, " ")
	if !strings.Contains(joined, "socket:1") || !strings.Contains(joined, "connect:1") {
		t.Fatalf("histogram: %v", h)
	}
}
