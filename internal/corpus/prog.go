// Package corpus defines sequential test programs — self-sufficient
// snippets of system calls, in the style of Syzkaller programs — and their
// serialization. A corpus of such programs is the input to Snowboard's
// profiling stage (§4.1); pairs of them plus a PMC scheduling hint form
// concurrent tests (§4.4).
package corpus

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"snowboard/internal/kernel"
)

// ArgKind distinguishes literal arguments from resource references.
type ArgKind uint8

// Argument kinds.
const (
	// ConstArg is a literal value.
	ConstArg ArgKind = iota
	// ResultArg references the return value (a file descriptor) of an
	// earlier call in the same program, syzkaller's r0/r1/… convention.
	ResultArg
)

// Arg is one syscall argument.
type Arg struct {
	Kind ArgKind `json:"k"`
	Val  uint64  `json:"v,omitempty"` // literal for ConstArg
	Ref  int     `json:"r,omitempty"` // call index for ResultArg
}

// Const builds a literal argument.
func Const(v uint64) Arg { return Arg{Kind: ConstArg, Val: v} }

// Result builds a resource reference to call index ref.
func Result(ref int) Arg { return Arg{Kind: ResultArg, Ref: ref} }

// Call is one system call invocation.
type Call struct {
	Nr   int   `json:"nr"`
	Args []Arg `json:"args,omitempty"`
}

// Prog is a sequential test: an ordered list of system calls.
type Prog struct {
	Calls []Call `json:"calls"`
}

// Validate checks structural invariants: known syscall numbers, argument
// counts not exceeding the spec, and resource references pointing strictly
// backwards.
func (p *Prog) Validate() error {
	for i, c := range p.Calls {
		if c.Nr < 0 || c.Nr >= kernel.NumSyscalls {
			return fmt.Errorf("corpus: call %d: bad syscall number %d", i, c.Nr)
		}
		spec := &kernel.Syscalls[c.Nr]
		if len(c.Args) > len(spec.Args) {
			return fmt.Errorf("corpus: call %d (%s): %d args, spec has %d", i, spec.Name, len(c.Args), len(spec.Args))
		}
		for j, a := range c.Args {
			if a.Kind == ResultArg && (a.Ref < 0 || a.Ref >= i) {
				return fmt.Errorf("corpus: call %d arg %d: result ref %d out of range", i, j, a.Ref)
			}
		}
	}
	return nil
}

// String renders the program in syzkaller-like notation:
//
//	r0 = socket(0x18, 0x2, 0x1)
//	connect(r0, 0x2, r1)
func (p *Prog) String() string {
	var b strings.Builder
	for i, c := range p.Calls {
		name := "?"
		if c.Nr >= 0 && c.Nr < kernel.NumSyscalls {
			name = kernel.Syscalls[c.Nr].Name
		}
		fmt.Fprintf(&b, "r%d = %s(", i, name)
		for j, a := range c.Args {
			if j > 0 {
				b.WriteString(", ")
			}
			if a.Kind == ResultArg {
				fmt.Fprintf(&b, "r%d", a.Ref)
			} else {
				fmt.Fprintf(&b, "%#x", a.Val)
			}
		}
		b.WriteString(")\n")
	}
	return b.String()
}

// Clone deep-copies the program.
func (p *Prog) Clone() *Prog {
	q := &Prog{Calls: make([]Call, len(p.Calls))}
	for i, c := range p.Calls {
		q.Calls[i] = Call{Nr: c.Nr, Args: append([]Arg(nil), c.Args...)}
	}
	return q
}

// Hash returns a stable identity string for deduplication.
func (p *Prog) Hash() string {
	b, _ := json.Marshal(p)
	return string(b)
}

// Marshal serializes the program to JSON.
func (p *Prog) Marshal() ([]byte, error) { return json.Marshal(p) }

// Unmarshal parses a serialized program and validates it.
func Unmarshal(data []byte) (*Prog, error) {
	var p Prog
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("corpus: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// Corpus is a deduplicated, ordered collection of programs.
type Corpus struct {
	Progs []*Prog
	seen  map[string]bool
}

// NewCorpus returns an empty corpus.
func NewCorpus() *Corpus {
	return &Corpus{seen: make(map[string]bool)}
}

// Add inserts the program if it is new, reporting whether it was added.
func (c *Corpus) Add(p *Prog) bool {
	h := p.Hash()
	if c.seen[h] {
		return false
	}
	c.seen[h] = true
	c.Progs = append(c.Progs, p)
	return true
}

// Len reports the number of programs.
func (c *Corpus) Len() int { return len(c.Progs) }

// SyscallHistogram counts calls by syscall name, for reports.
func (c *Corpus) SyscallHistogram() []string {
	counts := make(map[string]int)
	for _, p := range c.Progs {
		for _, call := range p.Calls {
			counts[kernel.Syscalls[call.Nr].Name]++
		}
	}
	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = fmt.Sprintf("%s:%d", n, counts[n])
	}
	return out
}
