package corpus

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"snowboard/internal/kernel"
)

// randomProg builds a structurally valid program: known syscall numbers,
// argument counts within spec, resource refs strictly backwards.
func randomProg(rng *rand.Rand) *Prog {
	p := &Prog{}
	ncalls := 1 + rng.Intn(6)
	for i := 0; i < ncalls; i++ {
		nr := rng.Intn(kernel.NumSyscalls)
		spec := &kernel.Syscalls[nr]
		call := Call{Nr: nr}
		nargs := rng.Intn(len(spec.Args) + 1)
		for j := 0; j < nargs; j++ {
			if i > 0 && rng.Intn(4) == 0 {
				call.Args = append(call.Args, Result(rng.Intn(i)))
			} else {
				call.Args = append(call.Args, Const(rng.Uint64()>>uint(rng.Intn(64))))
			}
		}
		p.Calls = append(p.Calls, call)
	}
	return p
}

func randomCorpus(rng *rand.Rand, n int) *Corpus {
	c := NewCorpus()
	for c.Len() < n {
		c.Add(randomProg(rng))
	}
	return c
}

// TestCorpusRoundTrip is the encode→decode property test: for seeded random
// corpora, decoding the encoding reproduces the same programs in the same
// order, and the encoding is canonical (equal corpora → identical bytes).
func TestCorpusRoundTrip(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c := randomCorpus(rng, 1+rng.Intn(40))

		var buf bytes.Buffer
		if err := EncodeCorpus(&buf, c); err != nil {
			t.Fatalf("seed %d: encode: %v", seed, err)
		}
		got, err := DecodeCorpus(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("seed %d: decode: %v", seed, err)
		}
		if !reflect.DeepEqual(got.Progs, c.Progs) {
			t.Fatalf("seed %d: decoded corpus differs", seed)
		}

		// Decoded corpus re-encodes to identical bytes.
		var buf2 bytes.Buffer
		if err := EncodeCorpus(&buf2, got); err != nil {
			t.Fatalf("seed %d: re-encode: %v", seed, err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatalf("seed %d: encoding not canonical", seed)
		}

		// The decoder preserves dedup state: re-adding any decoded program
		// is rejected.
		for _, p := range c.Progs {
			if got.Add(p.Clone()) {
				t.Fatalf("seed %d: decoded corpus accepted a duplicate", seed)
			}
		}
	}
}

func TestCorpusRoundTripEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeCorpus(&buf, NewCorpus()); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeCorpus(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Fatalf("decoded %d programs from empty corpus", got.Len())
	}
}

// TestCorpusDecodeTruncated: every strict prefix of a valid encoding fails
// with ErrBadCorpus — never panics, never decodes silently short.
func TestCorpusDecodeTruncated(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := randomCorpus(rng, 10)
	var buf bytes.Buffer
	if err := EncodeCorpus(&buf, c); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for cut := 0; cut < len(data); cut++ {
		if _, err := DecodeCorpus(bytes.NewReader(data[:cut])); !errors.Is(err, ErrBadCorpus) {
			t.Fatalf("prefix of %d/%d bytes: err = %v, want ErrBadCorpus", cut, len(data), err)
		}
	}
}

func TestCorpusDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("SBCO"),         // magic only
		[]byte("XXXX\x01\x00"), // wrong magic
		[]byte("SBCO\x02\x00"), // wrong version
		append([]byte("SBCO\x01"), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01), // huge count
	}
	for i, data := range cases {
		if _, err := DecodeCorpus(bytes.NewReader(data)); !errors.Is(err, ErrBadCorpus) {
			t.Errorf("case %d: err = %v, want ErrBadCorpus", i, err)
		}
	}
}
