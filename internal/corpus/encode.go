package corpus

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Compact binary serialization for whole corpora, the artifact the fuzz
// stage persists into the content-addressed store. JSON (Marshal/Unmarshal)
// stays the human-facing per-program form; this codec is the bulk form:
// varint-coded, canonical (equal corpora encode to identical bytes, so
// content addresses are stable), and hardened against hostile input (the
// decoder validates structure and never panics).
//
// Layout:
//
//	magic "SBCO" | version u8 | nprogs uvarint | programs...
//
// Each program:
//
//	ncalls uvarint, then per call: nr uvarint | nargs uvarint, then per
//	arg: kind u8 | value uvarint (literal for ConstArg, call index for
//	ResultArg)

const (
	corpusMagic   = "SBCO"
	corpusVersion = 1

	// Sanity caps applied before allocation when decoding untrusted bytes.
	maxProgs        = 1 << 22
	maxCallsPerProg = 1 << 16
	maxArgsPerCall  = 1 << 8
)

// CodecVersion identifies the corpus encoding; stage digests mix it in so a
// format change invalidates stored artifacts instead of misdecoding them.
const CodecVersion = corpusVersion

// ErrBadCorpus reports a malformed serialized corpus.
var ErrBadCorpus = errors.New("corpus: malformed encoding")

// EncodeCorpus writes the corpus to w in the compact canonical format.
func EncodeCorpus(w io.Writer, c *Corpus) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(corpusMagic); err != nil {
		return err
	}
	if err := bw.WriteByte(corpusVersion); err != nil {
		return err
	}
	var scratch [binary.MaxVarintLen64]byte
	putU := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		_, err := bw.Write(scratch[:n])
		return err
	}
	if err := putU(uint64(len(c.Progs))); err != nil {
		return err
	}
	for _, p := range c.Progs {
		if err := putU(uint64(len(p.Calls))); err != nil {
			return err
		}
		for _, call := range p.Calls {
			if err := putU(uint64(call.Nr)); err != nil {
				return err
			}
			if err := putU(uint64(len(call.Args))); err != nil {
				return err
			}
			for _, a := range call.Args {
				if err := bw.WriteByte(byte(a.Kind)); err != nil {
					return err
				}
				v := a.Val
				if a.Kind == ResultArg {
					v = uint64(a.Ref)
				}
				if err := putU(v); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// DecodeCorpus parses a compact corpus, validating every program (syscall
// numbers, argument counts, resource references) and rejecting duplicates,
// so a successful decode reproduces the encoded corpus exactly — same
// programs, same order, same dedup state.
func DecodeCorpus(r io.Reader) (*Corpus, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCorpus, err)
	}
	if string(magic[:]) != corpusMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadCorpus, magic)
	}
	ver, err := br.ReadByte()
	if err != nil || ver != corpusVersion {
		return nil, fmt.Errorf("%w: version %d", ErrBadCorpus, ver)
	}
	nprogs, err := binary.ReadUvarint(br)
	if err != nil || nprogs > maxProgs {
		return nil, fmt.Errorf("%w: program count", ErrBadCorpus)
	}
	c := NewCorpus()
	for pi := uint64(0); pi < nprogs; pi++ {
		ncalls, err := binary.ReadUvarint(br)
		if err != nil || ncalls > maxCallsPerProg {
			return nil, fmt.Errorf("%w: prog %d: call count", ErrBadCorpus, pi)
		}
		capHint := ncalls // untrusted until calls arrive; clamp preallocation
		if capHint > 1024 {
			capHint = 1024
		}
		p := &Prog{Calls: make([]Call, 0, capHint)}
		for ci := uint64(0); ci < ncalls; ci++ {
			nr, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("%w: prog %d call %d: nr", ErrBadCorpus, pi, ci)
			}
			nargs, err := binary.ReadUvarint(br)
			if err != nil || nargs > maxArgsPerCall {
				return nil, fmt.Errorf("%w: prog %d call %d: arg count", ErrBadCorpus, pi, ci)
			}
			call := Call{Nr: int(nr)}
			if nargs > 0 {
				call.Args = make([]Arg, 0, nargs)
			}
			for ai := uint64(0); ai < nargs; ai++ {
				kind, err := br.ReadByte()
				if err != nil {
					return nil, fmt.Errorf("%w: prog %d call %d arg %d: kind", ErrBadCorpus, pi, ci, ai)
				}
				v, err := binary.ReadUvarint(br)
				if err != nil {
					return nil, fmt.Errorf("%w: prog %d call %d arg %d: value", ErrBadCorpus, pi, ci, ai)
				}
				switch ArgKind(kind) {
				case ConstArg:
					call.Args = append(call.Args, Const(v))
				case ResultArg:
					if v > maxCallsPerProg {
						return nil, fmt.Errorf("%w: prog %d call %d arg %d: ref", ErrBadCorpus, pi, ci, ai)
					}
					call.Args = append(call.Args, Result(int(v)))
				default:
					return nil, fmt.Errorf("%w: prog %d call %d arg %d: kind %d", ErrBadCorpus, pi, ci, ai, kind)
				}
			}
			p.Calls = append(p.Calls, call)
		}
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("%w: prog %d: %v", ErrBadCorpus, pi, err)
		}
		if !c.Add(p) {
			return nil, fmt.Errorf("%w: prog %d: duplicate program", ErrBadCorpus, pi)
		}
	}
	return c, nil
}
