package trace

// Block is the columnar (structure-of-arrays) trace storage: one parallel
// column per Access feature, with the packed meta column carrying size,
// kind, the flag bits, and the thread id. Sequence numbers are implicit —
// an access's Seq is its index. The VM appends into a Block with zero
// steady-state allocations (Reset keeps column capacity across trials),
// analyses iterate the columns directly, and []Access views are
// materialized only at API boundaries (At, Accesses).
//
// Trace is an alias for Block: every execution — a sequential profiling run
// or one trial of a concurrent test — records into this representation.
type Block struct {
	ins   []Ins
	addrs []uint64
	vals  []uint64
	meta  []uint32
	locks []LockSet
}

// Trace is the ordered sequence of accesses collected during one execution,
// stored columnar.
type Trace = Block

// meta column packing.
const (
	metaSizeMask    = 0xF // bits 0-3: access size (1..8)
	metaWrite       = 1 << 4
	metaAtomic      = 1 << 5
	metaMarked      = 1 << 6
	metaStack       = 1 << 7
	metaRCU         = 1 << 8
	metaThreadShift = 16 // bits 16-31: thread id

	// maxThread is the largest representable thread id (16 bits).
	maxThread = 0xFFFF
)

func packMeta(thread int, kind Kind, size uint8, atomic, marked, stack, rcu bool) uint32 {
	m := uint32(size)&metaSizeMask | uint32(thread)<<metaThreadShift
	if kind == Write {
		m |= metaWrite
	}
	if atomic {
		m |= metaAtomic
	}
	if marked {
		m |= metaMarked
	}
	if stack {
		m |= metaStack
	}
	if rcu {
		m |= metaRCU
	}
	return m
}

// Append records one access. The access's Seq field is ignored; its
// sequence number is its position.
func (b *Block) Append(a Access) {
	b.ins = append(b.ins, a.Ins)
	b.addrs = append(b.addrs, a.Addr)
	b.vals = append(b.vals, a.Val)
	b.meta = append(b.meta, packMeta(a.Thread, a.Kind, a.Size, a.Atomic, a.Marked, a.Stack, a.RCU))
	b.locks = append(b.locks, a.Locks)
}

// Len returns the number of recorded accesses.
func (b *Block) Len() int { return len(b.meta) }

// Reset drops all recorded accesses but keeps the column capacity, so a
// Block reused across trials stops allocating once warm.
func (b *Block) Reset() {
	b.ins = b.ins[:0]
	b.addrs = b.addrs[:0]
	b.vals = b.vals[:0]
	b.meta = b.meta[:0]
	b.locks = b.locks[:0]
}

// At materializes the i-th access as a row value (Seq = i).
func (b *Block) At(i int) Access {
	m := b.meta[i]
	return Access{
		Thread: int(m >> metaThreadShift),
		Seq:    i,
		Ins:    b.ins[i],
		Kind:   Kind(m >> 4 & 1),
		Addr:   b.addrs[i],
		Size:   uint8(m & metaSizeMask),
		Val:    b.vals[i],
		Atomic: m&metaAtomic != 0,
		Marked: m&metaMarked != 0,
		Stack:  m&metaStack != 0,
		RCU:    m&metaRCU != 0,
		Locks:  b.locks[i],
	}
}

// Accesses materializes the whole trace as a fresh []Access row view.
func (b *Block) Accesses() []Access {
	out := make([]Access, b.Len())
	for i := range out {
		out[i] = b.At(i)
	}
	return out
}

// Column accessors, for analyses that iterate the columnar form directly.

// ThreadAt returns the thread id of the i-th access.
func (b *Block) ThreadAt(i int) int { return int(b.meta[i] >> metaThreadShift) }

// InsAt returns the static access site of the i-th access.
func (b *Block) InsAt(i int) Ins { return b.ins[i] }

// KindAt returns Read or Write for the i-th access.
func (b *Block) KindAt(i int) Kind { return Kind(b.meta[i] >> 4 & 1) }

// IsWriteAt reports whether the i-th access is a store.
func (b *Block) IsWriteAt(i int) bool { return b.meta[i]&metaWrite != 0 }

// AddrAt returns the start address of the i-th access.
func (b *Block) AddrAt(i int) uint64 { return b.addrs[i] }

// SizeAt returns the range length of the i-th access.
func (b *Block) SizeAt(i int) uint8 { return uint8(b.meta[i] & metaSizeMask) }

// EndAt returns the first address past the i-th access's range.
func (b *Block) EndAt(i int) uint64 { return b.addrs[i] + uint64(b.meta[i]&metaSizeMask) }

// ValAt returns the value read or written by the i-th access.
func (b *Block) ValAt(i int) uint64 { return b.vals[i] }

// AtomicAt reports whether the i-th access is lock-word traffic.
func (b *Block) AtomicAt(i int) bool { return b.meta[i]&metaAtomic != 0 }

// MarkedAt reports whether the i-th access is annotated.
func (b *Block) MarkedAt(i int) bool { return b.meta[i]&metaMarked != 0 }

// StackAt reports whether the i-th access hits the accessor's stack.
func (b *Block) StackAt(i int) bool { return b.meta[i]&metaStack != 0 }

// RCUAt reports whether the i-th access ran inside an RCU read section.
func (b *Block) RCUAt(i int) bool { return b.meta[i]&metaRCU != 0 }

// LocksAt returns the interned lockset held during the i-th access.
func (b *Block) LocksAt(i int) LockSet { return b.locks[i] }

// OverlapsAt reports whether accesses i and j touch at least one common byte.
func (b *Block) OverlapsAt(i, j int) bool {
	return b.addrs[i] < b.EndAt(j) && b.addrs[j] < b.EndAt(i)
}

// BlockOf builds a Block from explicit accesses — the test and boundary
// helper mirroring the old []Access literal form.
func BlockOf(accs ...Access) Block {
	var b Block
	for _, a := range accs {
		b.Append(a)
	}
	return b
}

// ByThread splits the trace into per-thread row views preserving order.
func (b *Block) ByThread() map[int][]Access {
	out := make(map[int][]Access)
	for i := 0; i < b.Len(); i++ {
		a := b.At(i)
		out[a.Thread] = append(out[a.Thread], a)
	}
	return out
}
