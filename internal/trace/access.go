package trace

import "fmt"

// Kind distinguishes read and write memory accesses.
type Kind uint8

const (
	// Read is a load from guest memory.
	Read Kind = iota
	// Write is a store to guest memory.
	Write
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	if k == Read {
		return "R"
	}
	return "W"
}

// Access is one memory access performed by a simulated kernel thread. It
// carries exactly the features the paper's profiler records (§4.1: address
// range accessed, type of access, value read/written, and instruction
// address) plus the bookkeeping the detectors need (thread, sequence number,
// lockset, RCU section, atomicity, stack membership). Access values are
// comparable: the lockset is an interned id, not a shared slice.
type Access struct {
	Thread int     // kernel thread (vCPU) that performed the access
	Seq    int     // position in the trial's global access order
	Ins    Ins     // static access site
	Kind   Kind    // Read or Write
	Addr   uint64  // start of the accessed range
	Size   uint8   // range length in bytes (1..8)
	Val    uint64  // value read or written, little-endian, low Size bytes
	Atomic bool    // lock-word access issued by a synchronization primitive
	Marked bool    // annotated access (READ_ONCE/WRITE_ONCE/rcu_dereference/rcu_assign_pointer)
	Stack  bool    // falls within the accessing thread's kernel stack
	RCU    bool    // performed inside an RCU read-side critical section
	Locks  LockSet // interned set of lock addresses held during the access
}

// End returns the first address past the accessed range.
func (a *Access) End() uint64 { return a.Addr + uint64(a.Size) }

// Overlaps reports whether the two access ranges share at least one byte.
func (a *Access) Overlaps(b *Access) bool {
	return a.Addr < b.End() && b.Addr < a.End()
}

// OverlapRange returns the intersection [lo, hi) of the two ranges, valid
// only when Overlaps is true.
func (a *Access) OverlapRange(b *Access) (lo, hi uint64) {
	return overlapRange(a.Addr, a.End(), b.Addr, b.End())
}

// overlapRange intersects [aLo, aHi) and [bLo, bHi).
func overlapRange(aLo, aHi, bLo, bHi uint64) (lo, hi uint64) {
	lo, hi = aLo, aHi
	if bLo > lo {
		lo = bLo
	}
	if bHi < hi {
		hi = bHi
	}
	return lo, hi
}

// ProjectVal projects the access's value onto the byte range [lo, hi),
// which must be contained in the access's own range. This is the
// project_value operation of Algorithm 1: when a read and a write overlap
// only partially, their values are compared on the shared bytes only.
func (a *Access) ProjectVal(lo, hi uint64) uint64 {
	if lo < a.Addr || hi > a.End() || lo >= hi {
		panic(fmt.Sprintf("trace: ProjectVal range [%#x,%#x) outside access [%#x,%#x)", lo, hi, a.Addr, a.End()))
	}
	return projectVal(a.Addr, a.Val, lo, hi)
}

// projectVal projects val (stored at addr) onto the byte range [lo, hi).
func projectVal(addr, val, lo, hi uint64) uint64 {
	shift := (lo - addr) * 8
	width := (hi - lo) * 8
	v := val >> shift
	if width < 64 {
		v &= (1 << width) - 1
	}
	return v
}

// SharesLock reports whether the two accesses were performed while holding
// at least one common lock.
func (a *Access) SharesLock(b *Access) bool {
	return a.Locks.SharesWith(b.Locks)
}

// String renders the access in the compact form used by reports and tests.
func (a *Access) String() string {
	return fmt.Sprintf("t%d %s %s [%#x+%d]=%#x", a.Thread, a.Kind, a.Ins.Name(), a.Addr, a.Size, a.Val)
}
