package trace

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func randomAccesses(rng *rand.Rand, n int) []Access {
	out := make([]Access, 0, n)
	for i := 0; i < n; i++ {
		a := Access{
			Thread: rng.Intn(3),
			Seq:    i,
			Ins:    Ins(rng.Uint32()),
			Addr:   0x10000 + uint64(rng.Intn(1<<20)),
			Size:   uint8(rng.Intn(8) + 1),
			Atomic: rng.Intn(8) == 0,
			Marked: rng.Intn(8) == 0,
			Stack:  rng.Intn(8) == 0,
			RCU:    rng.Intn(8) == 0,
		}
		a.Val = rng.Uint64() & ((1 << (8 * uint(a.Size))) - 1)
		if a.Kind = Read; rng.Intn(2) == 0 {
			a.Kind = Write
		}
		for j := 0; j < rng.Intn(3); j++ {
			a.Locks = append(a.Locks, uint64(0x100*(j+1)))
		}
		out = append(out, a)
	}
	return out
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for round := 0; round < 20; round++ {
		accs := randomAccesses(rng, rng.Intn(200))
		var buf bytes.Buffer
		if err := Encode(&buf, accs); err != nil {
			t.Fatal(err)
		}
		got, err := Decode(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(accs) {
			t.Fatalf("round %d: %d != %d", round, len(got), len(accs))
		}
		for i := range accs {
			w, g := accs[i], got[i]
			if w.Thread != g.Thread || w.Ins != g.Ins || w.Kind != g.Kind ||
				w.Addr != g.Addr || w.Size != g.Size || w.Val != g.Val ||
				w.Atomic != g.Atomic || w.Marked != g.Marked ||
				w.Stack != g.Stack || w.RCU != g.RCU {
				t.Fatalf("round %d access %d:\nwant %+v\ngot  %+v", round, i, w, g)
			}
			if len(w.Locks) != len(g.Locks) {
				t.Fatalf("locks differ at %d", i)
			}
			for j := range w.Locks {
				if w.Locks[j] != g.Locks[j] {
					t.Fatalf("lock %d differs at %d", j, i)
				}
			}
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("XXXX"),
		[]byte("SBTR\x02"),     // wrong version
		[]byte("SBTR\x01\x05"), // truncated records
		[]byte("SBTR\x01\xff\xff\xff\xff\xff\xff\xff\xff\x7f"), // absurd count
	}
	for i, c := range cases {
		if _, err := Decode(bytes.NewReader(c)); err == nil {
			t.Fatalf("case %d decoded", i)
		}
	}
}

func TestDecodeRejectsBadSize(t *testing.T) {
	accs := []Access{{Addr: 0x100, Size: 8, Val: 1}}
	var buf bytes.Buffer
	if err := Encode(&buf, accs); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Corrupt the size byte (it follows flags+thread+ins+addr).
	idx := bytes.LastIndexByte(raw, 8)
	raw[idx] = 99
	if _, err := Decode(bytes.NewReader(raw)); err == nil {
		t.Fatal("corrupted size accepted")
	}
}

func TestEncodeCompactness(t *testing.T) {
	// Spatially clustered accesses (the common case) must encode far
	// smaller than the naive 40+ bytes per record.
	var accs []Access
	for i := 0; i < 1000; i++ {
		accs = append(accs, Access{
			Ins:  Ins(0x1234),
			Addr: 0x100000 + uint64(i%64)*8,
			Size: 8,
			Val:  uint64(i % 7),
		})
	}
	var buf bytes.Buffer
	if err := Encode(&buf, accs); err != nil {
		t.Fatal(err)
	}
	perRecord := float64(buf.Len()) / float64(len(accs))
	if perRecord > 16 {
		t.Fatalf("encoding too fat: %.1f bytes/record", perRecord)
	}
	if !strings.HasPrefix(buf.String(), "SBTR") {
		t.Fatal("magic missing")
	}
}
