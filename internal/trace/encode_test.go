package trace

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func randomBlock(rng *rand.Rand, n int) Block {
	var out Block
	for i := 0; i < n; i++ {
		a := Access{
			Thread: rng.Intn(3),
			Ins:    Ins(rng.Uint32()),
			Addr:   0x10000 + uint64(rng.Intn(1<<20)),
			Size:   uint8(rng.Intn(8) + 1),
			Atomic: rng.Intn(8) == 0,
			Marked: rng.Intn(8) == 0,
			Stack:  rng.Intn(8) == 0,
			RCU:    rng.Intn(8) == 0,
		}
		a.Val = rng.Uint64() & ((1 << (8 * uint(a.Size))) - 1)
		if a.Kind = Read; rng.Intn(2) == 0 {
			a.Kind = Write
		}
		var locks []uint64
		for j := 0; j < rng.Intn(3); j++ {
			locks = append(locks, uint64(0x100*(j+1)))
		}
		a.Locks = InternLocks(locks)
		out.Append(a)
	}
	return out
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for round := 0; round < 20; round++ {
		accs := randomBlock(rng, rng.Intn(200))
		var buf bytes.Buffer
		if err := Encode(&buf, &accs); err != nil {
			t.Fatal(err)
		}
		got, err := Decode(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Len() != accs.Len() {
			t.Fatalf("round %d: %d != %d", round, got.Len(), accs.Len())
		}
		for i := 0; i < accs.Len(); i++ {
			w, g := accs.At(i), got.At(i)
			if w != g {
				t.Fatalf("round %d access %d:\nwant %+v\ngot  %+v", round, i, w, g)
			}
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("XXXX"),
		[]byte("SBTR\x02"),     // wrong version
		[]byte("SBTR\x01\x05"), // truncated records
		[]byte("SBTR\x01\xff\xff\xff\xff\xff\xff\xff\xff\x7f"), // absurd count
	}
	for i, c := range cases {
		if _, err := Decode(bytes.NewReader(c)); err == nil {
			t.Fatalf("case %d decoded", i)
		}
	}
}

func TestDecodeRejectsBadSize(t *testing.T) {
	accs := BlockOf(Access{Addr: 0x100, Size: 8, Val: 1})
	var buf bytes.Buffer
	if err := Encode(&buf, &accs); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Corrupt the size byte (it follows flags+thread+ins+addr).
	idx := bytes.LastIndexByte(raw, 8)
	raw[idx] = 99
	if _, err := Decode(bytes.NewReader(raw)); err == nil {
		t.Fatal("corrupted size accepted")
	}
}

func TestDecodeRejectsHugeThread(t *testing.T) {
	// A thread id above the 16-bit packed-meta limit must be rejected, not
	// silently truncated into another thread's identity.
	var buf bytes.Buffer
	buf.WriteString("SBTR\x01")
	buf.WriteByte(1)                    // count
	buf.WriteByte(0)                    // flags
	buf.Write([]byte{0x80, 0x80, 0x08}) // thread uvarint = 0x20000
	buf.WriteByte(0x01)                 // ins
	buf.WriteByte(0x02)                 // addr delta
	buf.WriteByte(8)                    // size
	buf.WriteByte(0x00)                 // val
	if _, err := Decode(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("oversized thread id accepted")
	}
}

func TestEncodeCompactness(t *testing.T) {
	// Spatially clustered accesses (the common case) must encode far
	// smaller than the naive 40+ bytes per record.
	var accs Block
	for i := 0; i < 1000; i++ {
		accs.Append(Access{
			Ins:  Ins(0x1234),
			Addr: 0x100000 + uint64(i%64)*8,
			Size: 8,
			Val:  uint64(i % 7),
		})
	}
	var buf bytes.Buffer
	if err := Encode(&buf, &accs); err != nil {
		t.Fatal(err)
	}
	perRecord := float64(buf.Len()) / float64(accs.Len())
	if perRecord > 16 {
		t.Fatalf("encoding too fat: %.1f bytes/record", perRecord)
	}
	if !strings.HasPrefix(buf.String(), "SBTR") {
		t.Fatal("magic missing")
	}
}

// TestLockSetAliasingImmunity proves the old "shared slice, do not mutate"
// footgun on Access.Locks is gone by construction: mutating the slice a
// decoded trace hands back cannot corrupt sibling accesses or the intern
// table, because Addrs always returns a fresh copy.
func TestLockSetAliasingImmunity(t *testing.T) {
	locks := []uint64{0x100, 0x200}
	accs := BlockOf(
		Access{Addr: 0x10, Size: 8, Locks: InternLocks(locks)},
		Access{Addr: 0x20, Size: 8, Locks: InternLocks(locks)},
	)
	var buf bytes.Buffer
	if err := Encode(&buf, &accs); err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got := dec.At(0).Locks.Addrs()
	got[0] = 0xdead
	got[1] = 0xbeef
	for i := 0; i < dec.Len(); i++ {
		if a := dec.At(i).Locks.Addrs(); a[0] != 0x100 || a[1] != 0x200 {
			t.Fatalf("sibling access %d lockset corrupted: %#x", i, a)
		}
	}
	// The intern table itself is untouched: a fresh interning of the same
	// set still resolves to the original addresses.
	if a := InternLocks(locks).Addrs(); a[0] != 0x100 || a[1] != 0x200 {
		t.Fatalf("intern table corrupted: %#x", a)
	}
}
