// Package trace defines the fundamental vocabulary of the Snowboard
// pipeline: instruction identities, memory-access records, and the
// filtering utilities applied to raw execution traces before PMC analysis.
//
// Everything above this package (the VM, the simulated kernel, the PMC
// identifier, the schedulers) speaks in terms of these types, mirroring the
// record shape the paper's customized hypervisor produces: address range,
// access type, value read/written, and instruction address (§4.1).
package trace

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// Ins identifies a static memory-access site in the simulated kernel, the
// analogue of an instruction address in the paper. IDs are derived from the
// site's symbolic name so they are stable across processes and runs, which
// lets PMCs be serialized and shipped through the distributed queue.
type Ins uint32

// NoIns is the zero instruction; no registered site ever maps to it.
const NoIns Ins = 0

var insRegistry = struct {
	sync.RWMutex
	byID   map[Ins]string
	byName map[string]Ins
}{
	byID:   make(map[Ins]string),
	byName: make(map[string]Ins),
}

// DefIns registers the access site named name and returns its stable ID.
// Names follow the "kernel_function:operation" convention used in bug
// reports (e.g. "eth_commit_mac_addr_change:memcpy_dev_addr"). Registering
// the same name twice returns the same ID. A hash collision between two
// distinct names panics at init time, which is when all sites register.
func DefIns(name string) Ins {
	insRegistry.Lock()
	defer insRegistry.Unlock()
	if id, ok := insRegistry.byName[name]; ok {
		return id
	}
	h := fnv.New32a()
	h.Write([]byte(name))
	id := Ins(h.Sum32())
	if id == NoIns {
		id = 1
	}
	for {
		prev, taken := insRegistry.byID[id]
		if !taken {
			break
		}
		if prev == name {
			break
		}
		id++ // open addressing on collision; deterministic for a fixed registration order
		if id == NoIns {
			id = 1
		}
	}
	insRegistry.byID[id] = name
	insRegistry.byName[name] = id
	return id
}

// Name returns the symbolic name of the instruction, or a hex placeholder
// for IDs that were never registered (e.g. decoded from a foreign trace).
func (i Ins) Name() string {
	insRegistry.RLock()
	defer insRegistry.RUnlock()
	if n, ok := insRegistry.byID[i]; ok {
		return n
	}
	return fmt.Sprintf("ins_%#x", uint32(i))
}

// LookupIns resolves a previously registered name to its ID.
func LookupIns(name string) (Ins, bool) {
	insRegistry.RLock()
	defer insRegistry.RUnlock()
	id, ok := insRegistry.byName[name]
	return id, ok
}

// Region abstraction: coverage metrics that want subsystem-level rather
// than site-level identity (e.g. interleaving-segment coverage) bucket
// instructions by their *owning region* — the kernel-function prefix of
// the site name, before the ':' in the "kernel_function:operation"
// convention. Region names are themselves interned through DefIns so the
// IDs are stable across processes, which lets segment state be serialized
// into the artifact store and resumed byte-identically.
var regionState = struct {
	once  sync.Once
	mu    sync.RWMutex
	cache map[Ins]Ins
}{cache: make(map[Ins]Ins)}

// regionName trims a site name to its owning-region prefix.
func regionName(name string) string {
	for i := 0; i < len(name); i++ {
		if name[i] == ':' {
			return name[:i]
		}
	}
	return name
}

// seedRegions interns the region of every instruction registered so far in
// ascending-ID order. Kernel sites all register at package init, so doing
// this once on first use gives every process the same region registration
// order regardless of which traces it happens to observe first — open
// addressing in DefIns then resolves identically everywhere.
func seedRegions() {
	for _, id := range RegisteredIns() {
		regionState.mu.Lock()
		regionState.cache[id] = DefIns(regionName(id.Name()))
		regionState.mu.Unlock()
	}
}

// RegionOf returns the interned ID of the instruction's owning region.
// Unregistered instructions map to a region named after their hex
// placeholder, so the result is still deterministic.
func RegionOf(i Ins) Ins {
	regionState.once.Do(seedRegions)
	regionState.mu.RLock()
	r, ok := regionState.cache[i]
	regionState.mu.RUnlock()
	if ok {
		return r
	}
	r = DefIns(regionName(i.Name()))
	regionState.mu.Lock()
	regionState.cache[i] = r
	regionState.mu.Unlock()
	return r
}

// RegisteredIns returns all registered instruction IDs in ascending order.
// It is used by coverage accounting and by tests that validate the registry.
func RegisteredIns() []Ins {
	insRegistry.RLock()
	defer insRegistry.RUnlock()
	out := make([]Ins, 0, len(insRegistry.byID))
	for id := range insRegistry.byID {
		out = append(out, id)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}
