package trace

// StackSize is the fixed kernel stack size per thread, 8KB (two physical
// pages) as on Linux x86, and stacks are StackSize-aligned. The stack-range
// computation below mirrors the paper's use of the ESP register and the
// current_thread_info() masking trick (§4.1.1).
const StackSize = 8 << 10

// StackRange computes the enclosing kernel stack range [lo, hi) of a stack
// pointer: lo = esp &^ (StackSize-1), hi = lo + StackSize.
func StackRange(esp uint64) (lo, hi uint64) {
	lo = esp &^ (StackSize - 1)
	return lo, lo + StackSize
}

// InStack reports whether addr falls inside the stack that contains esp.
func InStack(addr, esp uint64) bool {
	lo, hi := StackRange(esp)
	return addr >= lo && addr < hi
}

// Filter selects the subset of a raw trace that participates in PMC
// analysis. The defaults implement the paper's pruning: only non-stack
// accesses are potentially shared (the standard assumption of §4.1.1), and
// accesses by threads other than the profiled one are excluded (the CR3
// filter). Synchronization-primitive accesses are excluded by default
// because lock words communicate by design; including them is the
// "no filtering" ablation.
type Filter struct {
	Thread        int  // keep only accesses by this thread; -1 keeps all
	KeepStack     bool // keep stack accesses (ablation)
	KeepAtomics   bool // keep synchronization accesses (ablation)
	MaxPerProfile int  // cap on kept accesses; 0 means unlimited
}

// DefaultFilter returns the filter used for sequential profiling of the
// given thread.
func DefaultFilter(thread int) Filter {
	return Filter{Thread: thread}
}

// Apply returns the accesses of tr that pass the filter, preserving order.
func (f Filter) Apply(tr *Trace) []Access {
	out := make([]Access, 0, len(tr.Accesses))
	for _, a := range tr.Accesses {
		if f.Thread >= 0 && a.Thread != f.Thread {
			continue
		}
		if a.Stack && !f.KeepStack {
			continue
		}
		if a.Atomic && !f.KeepAtomics {
			continue
		}
		out = append(out, a)
		if f.MaxPerProfile > 0 && len(out) >= f.MaxPerProfile {
			break
		}
	}
	return out
}

// MarkDoubleFetches sets the df_leader property on the profile: for every
// pair of read accesses by *different* instructions to overlapping memory
// that occur with no intervening write to that memory and read identical
// projected values, the first read is a double-fetch leader (§4.3,
// S-CH-DOUBLE). The returned set contains the indexes into accs of leader
// accesses.
func MarkDoubleFetches(accs []Access) map[int]bool {
	leaders := make(map[int]bool)
	// For each read, scan forward for a matching second read; stop the scan
	// at the first write overlapping the region. Profiles are short enough
	// (thousands of accesses) that the quadratic worst case is irrelevant,
	// and the write cutoff keeps the common case near-linear.
	for i := range accs {
		first := &accs[i]
		if first.Kind != Read {
			continue
		}
	scan:
		for j := i + 1; j < len(accs); j++ {
			second := &accs[j]
			if !first.Overlaps(second) {
				continue
			}
			switch second.Kind {
			case Write:
				break scan // region updated; later reads are not double fetches of first
			case Read:
				if second.Ins == first.Ins {
					continue // same instruction re-executed, e.g. a loop; not a double fetch
				}
				lo, hi := first.OverlapRange(second)
				if first.ProjectVal(lo, hi) == second.ProjectVal(lo, hi) {
					leaders[i] = true
				}
				break scan
			}
		}
	}
	return leaders
}
