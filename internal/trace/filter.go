package trace

// StackSize is the fixed kernel stack size per thread, 8KB (two physical
// pages) as on Linux x86, and stacks are StackSize-aligned. The stack-range
// computation below mirrors the paper's use of the ESP register and the
// current_thread_info() masking trick (§4.1.1).
const StackSize = 8 << 10

// StackRange computes the enclosing kernel stack range [lo, hi) of a stack
// pointer: lo = esp &^ (StackSize-1), hi = lo + StackSize.
func StackRange(esp uint64) (lo, hi uint64) {
	lo = esp &^ (StackSize - 1)
	return lo, lo + StackSize
}

// InStack reports whether addr falls inside the stack that contains esp.
func InStack(addr, esp uint64) bool {
	lo, hi := StackRange(esp)
	return addr >= lo && addr < hi
}

// Filter selects the subset of a raw trace that participates in PMC
// analysis. The defaults implement the paper's pruning: only non-stack
// accesses are potentially shared (the standard assumption of §4.1.1), and
// accesses by threads other than the profiled one are excluded (the CR3
// filter). Synchronization-primitive accesses are excluded by default
// because lock words communicate by design; including them is the
// "no filtering" ablation.
type Filter struct {
	Thread        int  // keep only accesses by this thread; -1 keeps all
	KeepStack     bool // keep stack accesses (ablation)
	KeepAtomics   bool // keep synchronization accesses (ablation)
	MaxPerProfile int  // cap on kept accesses; 0 means unlimited
}

// DefaultFilter returns the filter used for sequential profiling of the
// given thread.
func DefaultFilter(thread int) Filter {
	return Filter{Thread: thread}
}

// Apply returns the accesses of tr that pass the filter, preserving order,
// as a fresh columnar block.
func (f Filter) Apply(tr *Trace) Block {
	var out Block
	n := tr.Len()
	for i := 0; i < n; i++ {
		m := tr.meta[i]
		if f.Thread >= 0 && int(m>>metaThreadShift) != f.Thread {
			continue
		}
		if m&metaStack != 0 && !f.KeepStack {
			continue
		}
		if m&metaAtomic != 0 && !f.KeepAtomics {
			continue
		}
		out.ins = append(out.ins, tr.ins[i])
		out.addrs = append(out.addrs, tr.addrs[i])
		out.vals = append(out.vals, tr.vals[i])
		out.meta = append(out.meta, m)
		out.locks = append(out.locks, tr.locks[i])
		if f.MaxPerProfile > 0 && out.Len() >= f.MaxPerProfile {
			break
		}
	}
	return out
}

// MarkDoubleFetches sets the df_leader property on the profile: for every
// pair of read accesses by *different* instructions to overlapping memory
// that occur with no intervening write to that memory and read identical
// projected values, the first read is a double-fetch leader (§4.3,
// S-CH-DOUBLE). The returned set contains the indexes into the block of
// leader accesses.
func MarkDoubleFetches(b *Block) map[int]bool {
	leaders := make(map[int]bool)
	// For each read, scan forward for a matching second read; stop the scan
	// at the first write overlapping the region. Profiles are short enough
	// (thousands of accesses) that the quadratic worst case is irrelevant,
	// and the write cutoff keeps the common case near-linear.
	n := b.Len()
	for i := 0; i < n; i++ {
		if b.IsWriteAt(i) {
			continue
		}
	scan:
		for j := i + 1; j < n; j++ {
			if !b.OverlapsAt(i, j) {
				continue
			}
			if b.IsWriteAt(j) {
				break scan // region updated; later reads are not double fetches of first
			}
			if b.InsAt(j) == b.InsAt(i) {
				continue // same instruction re-executed, e.g. a loop; not a double fetch
			}
			lo, hi := overlapRange(b.AddrAt(i), b.EndAt(i), b.AddrAt(j), b.EndAt(j))
			if projectVal(b.AddrAt(i), b.ValAt(i), lo, hi) == projectVal(b.AddrAt(j), b.ValAt(j), lo, hi) {
				leaders[i] = true
			}
			break scan
		}
	}
	return leaders
}
