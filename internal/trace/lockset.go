package trace

import (
	"encoding/binary"
	"encoding/json"
	"sort"
	"sync"
)

// LockSet names an interned set of held lock addresses. The zero value is
// the empty set. Sets are canonicalized (sorted, deduplicated) and stored
// once in a process-wide table, so the same set of addresses always interns
// to the same LockSet within a process and Access values stay comparable —
// there is no shared slice to alias and no "do not mutate" contract:
// Addrs always returns a fresh copy, and the interned storage is never
// handed out mutably.
//
// LockSet ids are process-local and never serialized; codecs resolve them
// to explicit address lists on the wire (see encode.go), so the binary
// formats are unchanged.
type LockSet uint32

// lockTable is the process-wide intern table. sets[0] is the empty set.
// Interning takes the write lock; readers (Addrs, Has, SharesWith) take the
// read lock. Interned slices are immutable once published, so returning a
// view under the read lock is safe package-internally.
type lockTable struct {
	mu      sync.RWMutex
	set     [][]uint64
	ids     map[string]LockSet
	key     []byte   // scratch for map lookups, guarded by mu (write side)
	scratch []uint64 // scratch for With/Without candidates, guarded by mu (write side)
}

var lockTab = &lockTable{
	set: [][]uint64{nil},
	ids: map[string]LockSet{"": 0},
}

// lockKey encodes addrs into dst as the canonical map key.
func lockKey(dst []byte, addrs []uint64) []byte {
	dst = dst[:0]
	for _, a := range addrs {
		dst = binary.BigEndian.AppendUint64(dst, a)
	}
	return dst
}

// internLocked interns the canonical (sorted, deduplicated) addrs, copying
// them if the set is new. Callers hold the write lock.
func (t *lockTable) internLocked(addrs []uint64) LockSet {
	if len(addrs) == 0 {
		return 0
	}
	t.key = lockKey(t.key, addrs)
	if id, ok := t.ids[string(t.key)]; ok {
		return id
	}
	id := LockSet(len(t.set))
	t.set = append(t.set, append([]uint64(nil), addrs...))
	t.ids[string(t.key)] = id
	return id
}

// InternLocks interns an arbitrary list of lock addresses (copied, sorted,
// deduplicated) and returns its set id.
func InternLocks(addrs []uint64) LockSet {
	if len(addrs) == 0 {
		return 0
	}
	c := append([]uint64(nil), addrs...)
	sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
	n := 1
	for i := 1; i < len(c); i++ {
		if c[i] != c[n-1] {
			c[n] = c[i]
			n++
		}
	}
	c = c[:n]
	lockTab.mu.Lock()
	id := lockTab.internLocked(c)
	lockTab.mu.Unlock()
	return id
}

// view returns the interned slice without copying. Callers must not mutate
// or retain it beyond the current operation; package code only.
func (s LockSet) view() []uint64 {
	if s == 0 {
		return nil
	}
	lockTab.mu.RLock()
	v := lockTab.set[s]
	lockTab.mu.RUnlock()
	return v
}

// Len returns the number of locks in the set.
func (s LockSet) Len() int { return len(s.view()) }

// Empty reports whether the set holds no locks.
func (s LockSet) Empty() bool { return s == 0 }

// Addrs returns the lock addresses, sorted ascending, as a fresh slice the
// caller owns.
func (s LockSet) Addrs() []uint64 {
	v := s.view()
	if len(v) == 0 {
		return nil
	}
	return append([]uint64(nil), v...)
}

// Has reports whether the set contains addr.
func (s LockSet) Has(addr uint64) bool {
	v := s.view()
	i := sort.Search(len(v), func(i int) bool { return v[i] >= addr })
	return i < len(v) && v[i] == addr
}

// With returns the set extended by addr (interning the result).
func (s LockSet) With(addr uint64) LockSet {
	lockTab.mu.Lock()
	defer lockTab.mu.Unlock()
	base := lockTab.set[s]
	i := sort.Search(len(base), func(i int) bool { return base[i] >= addr })
	if i < len(base) && base[i] == addr {
		return s
	}
	merged := append(lockTab.scratch[:0], base[:i]...)
	merged = append(merged, addr)
	merged = append(merged, base[i:]...)
	lockTab.scratch = merged // internLocked copies on a miss
	return lockTab.internLocked(merged)
}

// Without returns the set with addr removed (interning the result).
func (s LockSet) Without(addr uint64) LockSet {
	lockTab.mu.Lock()
	defer lockTab.mu.Unlock()
	base := lockTab.set[s]
	i := sort.Search(len(base), func(i int) bool { return base[i] >= addr })
	if i >= len(base) || base[i] != addr {
		return s
	}
	if len(base) == 1 {
		return 0
	}
	rest := append(lockTab.scratch[:0], base[:i]...)
	rest = append(rest, base[i+1:]...)
	lockTab.scratch = rest // internLocked copies on a miss
	return lockTab.internLocked(rest)
}

// SharesWith reports whether the two sets have at least one lock in common.
func (s LockSet) SharesWith(o LockSet) bool {
	if s == 0 || o == 0 {
		return false
	}
	if s == o {
		return true
	}
	lockTab.mu.RLock()
	a, b := lockTab.set[s], lockTab.set[o]
	lockTab.mu.RUnlock()
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return true
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// MarshalJSON renders the set as its address list, keeping process-local
// ids out of any serialized form.
func (s LockSet) MarshalJSON() ([]byte, error) {
	addrs := s.Addrs()
	if addrs == nil {
		addrs = []uint64{}
	}
	return json.Marshal(addrs)
}

// UnmarshalJSON interns an address list.
func (s *LockSet) UnmarshalJSON(data []byte) error {
	var addrs []uint64
	if err := json.Unmarshal(data, &addrs); err != nil {
		return err
	}
	*s = InternLocks(addrs)
	return nil
}
