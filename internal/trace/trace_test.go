package trace

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDefInsIdempotent(t *testing.T) {
	a := DefIns("test_fn:op_a")
	b := DefIns("test_fn:op_a")
	if a != b {
		t.Fatalf("same name produced different ids: %v vs %v", a, b)
	}
	if a.Name() != "test_fn:op_a" {
		t.Fatalf("name roundtrip failed: %q", a.Name())
	}
}

func TestDefInsDistinctNames(t *testing.T) {
	seen := make(map[Ins]string)
	for i := 0; i < 500; i++ {
		name := fmt.Sprintf("distinct_fn_%d:op", i)
		id := DefIns(name)
		if id == NoIns {
			t.Fatalf("NoIns assigned to %q", name)
		}
		if prev, dup := seen[id]; dup {
			t.Fatalf("id collision: %q and %q both %v", prev, name, id)
		}
		seen[id] = name
	}
}

func TestLookupIns(t *testing.T) {
	id := DefIns("lookup_fn:op")
	got, ok := LookupIns("lookup_fn:op")
	if !ok || got != id {
		t.Fatalf("lookup failed: %v %v", got, ok)
	}
	if _, ok := LookupIns("never_registered:op"); ok {
		t.Fatal("lookup of unregistered name succeeded")
	}
}

func TestUnregisteredInsName(t *testing.T) {
	// An Ins decoded from a foreign trace prints a stable placeholder.
	var foreign Ins = 0x12345
	if foreign.Name() == "" {
		t.Fatal("empty name for unregistered ins")
	}
}

func TestRegisteredInsSorted(t *testing.T) {
	DefIns("sorted_check:a")
	ids := RegisteredIns()
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Fatalf("RegisteredIns not strictly ascending at %d", i)
		}
	}
}

func TestKindString(t *testing.T) {
	if Read.String() != "R" || Write.String() != "W" {
		t.Fatal("kind strings wrong")
	}
}

func TestOverlaps(t *testing.T) {
	cases := []struct {
		a, b Access
		want bool
	}{
		{Access{Addr: 0x100, Size: 8}, Access{Addr: 0x100, Size: 8}, true},
		{Access{Addr: 0x100, Size: 8}, Access{Addr: 0x107, Size: 1}, true},
		{Access{Addr: 0x100, Size: 8}, Access{Addr: 0x108, Size: 1}, false},
		{Access{Addr: 0x100, Size: 1}, Access{Addr: 0xff, Size: 2}, true},
		{Access{Addr: 0x100, Size: 1}, Access{Addr: 0xff, Size: 1}, false},
		{Access{Addr: 0x0, Size: 8}, Access{Addr: 0x4, Size: 8}, true},
	}
	for i, c := range cases {
		if got := c.a.Overlaps(&c.b); got != c.want {
			t.Errorf("case %d: Overlaps=%v want %v", i, got, c.want)
		}
		if got := c.b.Overlaps(&c.a); got != c.want {
			t.Errorf("case %d: Overlaps not symmetric", i)
		}
	}
}

func TestOverlapRange(t *testing.T) {
	a := Access{Addr: 0x100, Size: 8}
	b := Access{Addr: 0x104, Size: 8}
	lo, hi := a.OverlapRange(&b)
	if lo != 0x104 || hi != 0x108 {
		t.Fatalf("overlap [%#x,%#x), want [0x104,0x108)", lo, hi)
	}
}

func TestProjectVal(t *testing.T) {
	// 8-byte little-endian value 0x8877665544332211 at 0x100.
	a := Access{Addr: 0x100, Size: 8, Val: 0x8877665544332211}
	if got := a.ProjectVal(0x100, 0x108); got != a.Val {
		t.Fatalf("full projection %#x", got)
	}
	if got := a.ProjectVal(0x100, 0x101); got != 0x11 {
		t.Fatalf("first byte %#x", got)
	}
	if got := a.ProjectVal(0x107, 0x108); got != 0x88 {
		t.Fatalf("last byte %#x", got)
	}
	if got := a.ProjectVal(0x102, 0x104); got != 0x4433 {
		t.Fatalf("middle word %#x", got)
	}
}

func TestProjectValPanicsOutsideRange(t *testing.T) {
	a := Access{Addr: 0x100, Size: 4, Val: 1}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for out-of-range projection")
		}
	}()
	a.ProjectVal(0x100, 0x105)
}

// TestProjectValAgainstBytes is a property test: projecting onto any
// subrange equals reassembling the little-endian bytes of that subrange.
func TestProjectValAgainstBytes(t *testing.T) {
	f := func(val uint64, sizeSeed, offSeed, lenSeed uint8) bool {
		size := int(sizeSeed%8) + 1
		a := Access{Addr: 0x1000, Size: uint8(size), Val: val & ((1 << (8 * uint(size))) - 1)}
		off := uint64(offSeed) % uint64(size)
		ln := uint64(lenSeed)%(uint64(size)-off) + 1
		lo, hi := a.Addr+off, a.Addr+off+ln
		got := a.ProjectVal(lo, hi)
		want := uint64(0)
		for i := uint64(0); i < ln; i++ {
			b := byte(a.Val >> (8 * (off + i)))
			want |= uint64(b) << (8 * i)
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestSharesLock(t *testing.T) {
	a := Access{Locks: InternLocks([]uint64{1, 5, 9})}
	b := Access{Locks: InternLocks([]uint64{2, 5})}
	c := Access{Locks: InternLocks([]uint64{3, 4})}
	var d Access
	if !a.SharesLock(&b) {
		t.Fatal("shared lock 5 not found")
	}
	if a.SharesLock(&c) || a.SharesLock(&d) || d.SharesLock(&d) {
		t.Fatal("phantom shared lock")
	}
}

// TestSharesLockAgainstNaive is a property test against set intersection.
func TestSharesLockAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		mk := func() []uint64 {
			n := rng.Intn(5)
			out := make([]uint64, 0, n)
			cur := uint64(0)
			for j := 0; j < n; j++ {
				cur += uint64(rng.Intn(4) + 1)
				out = append(out, cur)
			}
			return out
		}
		la, lb := mk(), mk()
		a := Access{Locks: InternLocks(la)}
		b := Access{Locks: InternLocks(lb)}
		want := false
		for _, x := range la {
			for _, y := range lb {
				if x == y {
					want = true
				}
			}
		}
		if got := a.SharesLock(&b); got != want {
			t.Fatalf("SharesLock(%v,%v)=%v want %v", la, lb, got, want)
		}
	}
}

func TestTraceAppendSeq(t *testing.T) {
	var tr Trace
	for i := 0; i < 5; i++ {
		tr.Append(Access{Addr: uint64(i)})
	}
	for i, a := range tr.Accesses() {
		if a.Seq != i {
			t.Fatalf("seq %d at index %d", a.Seq, i)
		}
	}
	tr.Reset()
	if tr.Len() != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestTraceByThread(t *testing.T) {
	var tr Trace
	tr.Append(Access{Thread: 0, Addr: 1})
	tr.Append(Access{Thread: 1, Addr: 2})
	tr.Append(Access{Thread: 0, Addr: 3})
	by := tr.ByThread()
	if len(by[0]) != 2 || len(by[1]) != 1 {
		t.Fatalf("split wrong: %v", by)
	}
	if by[0][1].Addr != 3 {
		t.Fatal("order not preserved")
	}
}

func TestStackRange(t *testing.T) {
	lo, hi := StackRange(0x10_3f80)
	if lo != 0x10_2000 || hi != 0x10_4000 {
		t.Fatalf("stack range [%#x,%#x)", lo, hi)
	}
	if !InStack(0x10_2000, 0x10_3f80) || InStack(0x10_4000, 0x10_3f80) {
		t.Fatal("InStack boundaries wrong")
	}
}

func TestStackRangeProperty(t *testing.T) {
	f := func(esp uint64) bool {
		lo, hi := StackRange(esp)
		return lo%StackSize == 0 && hi-lo == StackSize && esp >= lo && esp < hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFilterThreadStackAtomic(t *testing.T) {
	var tr Trace
	tr.Append(Access{Thread: 0, Addr: 1})
	tr.Append(Access{Thread: 1, Addr: 2})
	tr.Append(Access{Thread: 0, Addr: 3, Stack: true})
	tr.Append(Access{Thread: 0, Addr: 4, Atomic: true})
	tr.Append(Access{Thread: 0, Addr: 5, Marked: true})

	got := DefaultFilter(0).Apply(&tr)
	if got.Len() != 2 || got.At(0).Addr != 1 || got.At(1).Addr != 5 {
		t.Fatalf("default filter kept %v", got.Accesses())
	}

	all := Filter{Thread: -1, KeepStack: true, KeepAtomics: true}.Apply(&tr)
	if all.Len() != 5 {
		t.Fatalf("permissive filter kept %d", all.Len())
	}

	capped := Filter{Thread: -1, KeepStack: true, KeepAtomics: true, MaxPerProfile: 2}.Apply(&tr)
	if capped.Len() != 2 {
		t.Fatalf("cap ignored: %d", capped.Len())
	}
}

func mkRead(ins Ins, addr uint64, size uint8, val uint64) Access {
	return Access{Ins: ins, Kind: Read, Addr: addr, Size: size, Val: val}
}

func mkWrite(ins Ins, addr uint64, size uint8, val uint64) Access {
	return Access{Ins: ins, Kind: Write, Addr: addr, Size: size, Val: val}
}

func TestMarkDoubleFetches(t *testing.T) {
	i1 := DefIns("df_test:first")
	i2 := DefIns("df_test:second")
	i3 := DefIns("df_test:writer")

	// Classic double fetch: two reads, different instructions, same value.
	accs := BlockOf(
		mkRead(i1, 0x100, 8, 42),
		mkRead(i2, 0x100, 8, 42),
	)
	df := MarkDoubleFetches(&accs)
	if !df[0] || df[1] {
		t.Fatalf("double fetch not marked on leader: %v", df)
	}

	// Intervening write kills the pairing.
	accs = BlockOf(
		mkRead(i1, 0x100, 8, 42),
		mkWrite(i3, 0x100, 8, 43),
		mkRead(i2, 0x100, 8, 43),
	)
	if df := MarkDoubleFetches(&accs); len(df) != 0 {
		t.Fatalf("marked despite intervening write: %v", df)
	}

	// Same instruction re-reading (a loop) is not a double fetch.
	accs = BlockOf(
		mkRead(i1, 0x100, 8, 42),
		mkRead(i1, 0x100, 8, 42),
	)
	if df := MarkDoubleFetches(&accs); len(df) != 0 {
		t.Fatalf("same-ins pair marked: %v", df)
	}

	// Different values on the shared range: not a double fetch.
	accs = BlockOf(
		mkRead(i1, 0x100, 8, 42),
		mkRead(i2, 0x100, 8, 99),
	)
	if df := MarkDoubleFetches(&accs); len(df) != 0 {
		t.Fatalf("different-value pair marked: %v", df)
	}

	// Partial overlap with matching projected bytes is a double fetch.
	accs = BlockOf(
		mkRead(i1, 0x100, 8, 0x1122334455667788),
		mkRead(i2, 0x104, 4, 0x11223344),
	)
	df = MarkDoubleFetches(&accs)
	if !df[0] {
		t.Fatalf("partial-overlap double fetch missed: %v", df)
	}
}
