package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Compact binary serialization for traces and profiles, used to ship
// profiling output between pipeline stages and across the distributed
// queue. The format is delta/varint coded: traces are dominated by
// near-monotonic sequence numbers and spatially clustered addresses, so
// zig-zag deltas shrink them by roughly an order of magnitude compared to
// fixed-width records.
//
// Layout:
//
//	magic "SBTR" | version u8 | count uvarint | records...
//
// Each record:
//
//	flags u8            bit0 kind=write, bit1 atomic, bit2 marked,
//	                    bit3 stack, bit4 rcu, bit5 has-locks
//	thread uvarint
//	ins    uvarint      (absolute; ids are hash-derived, deltas don't help)
//	addr   svarint      (delta from previous record's addr)
//	size   u8
//	val    uvarint
//	locks  uvarint n, then n svarint deltas   (only when bit5 set)
//
// Locksets travel as explicit address lists: the in-memory interned
// LockSet ids are process-local and never serialized.

const (
	encMagic   = "SBTR"
	encVersion = 1
)

// CodecVersion identifies the trace record encoding, including the bare
// block form embedded in profile-set artifacts; stage digests mix it in so
// a format change invalidates stored artifacts instead of misdecoding them.
const CodecVersion = encVersion

// ErrBadTrace reports a malformed serialized trace.
var ErrBadTrace = errors.New("trace: malformed encoding")

const (
	fKindWrite = 1 << iota
	fAtomic
	fMarked
	fStack
	fRCU
	fLocks
)

// Encode writes the block's accesses to w in the compact format.
func Encode(w io.Writer, b *Block) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(encMagic); err != nil {
		return err
	}
	if err := bw.WriteByte(encVersion); err != nil {
		return err
	}
	if err := WriteBlock(bw, b); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteBlock writes the bare record stream (count + delta/varint records,
// no magic or version) to bw. It is the embeddable form of Encode: larger
// artifact formats — profile sets, store artifacts — frame several blocks
// inside their own envelope. The caller owns flushing bw.
func WriteBlock(bw *bufio.Writer, b *Block) error {
	var scratch [binary.MaxVarintLen64]byte
	putU := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		_, err := bw.Write(scratch[:n])
		return err
	}
	putS := func(v int64) error {
		n := binary.PutVarint(scratch[:], v)
		_, err := bw.Write(scratch[:n])
		return err
	}
	if err := putU(uint64(b.Len())); err != nil {
		return err
	}
	prevAddr := uint64(0)
	for i := 0; i < b.Len(); i++ {
		m := b.meta[i]
		locks := b.locks[i].view()
		var flags byte
		if m&metaWrite != 0 {
			flags |= fKindWrite
		}
		if m&metaAtomic != 0 {
			flags |= fAtomic
		}
		if m&metaMarked != 0 {
			flags |= fMarked
		}
		if m&metaStack != 0 {
			flags |= fStack
		}
		if m&metaRCU != 0 {
			flags |= fRCU
		}
		if len(locks) > 0 {
			flags |= fLocks
		}
		if err := bw.WriteByte(flags); err != nil {
			return err
		}
		if err := putU(uint64(m >> metaThreadShift)); err != nil {
			return err
		}
		if err := putU(uint64(b.ins[i])); err != nil {
			return err
		}
		if err := putS(int64(b.addrs[i]) - int64(prevAddr)); err != nil {
			return err
		}
		prevAddr = b.addrs[i]
		if err := bw.WriteByte(byte(m & metaSizeMask)); err != nil {
			return err
		}
		if err := putU(b.vals[i]); err != nil {
			return err
		}
		if len(locks) > 0 {
			if err := putU(uint64(len(locks))); err != nil {
				return err
			}
			prevLock := uint64(0)
			for _, l := range locks {
				if err := putS(int64(l) - int64(prevLock)); err != nil {
					return err
				}
				prevLock = l
			}
		}
	}
	return nil
}

// Decode parses a compact trace. Sequence numbers are implicit in order.
func Decode(r io.Reader) (Block, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return Block{}, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	if string(magic[:]) != encMagic {
		return Block{}, fmt.Errorf("%w: bad magic %q", ErrBadTrace, magic)
	}
	ver, err := br.ReadByte()
	if err != nil || ver != encVersion {
		return Block{}, fmt.Errorf("%w: version %d", ErrBadTrace, ver)
	}
	return ReadBlock(br)
}

// ReadBlock parses one bare record stream written by WriteBlock, leaving br
// positioned after the block's last record. Decoding errors never panic;
// any malformed input yields an error wrapping ErrBadTrace. Decoded
// locksets are interned.
func ReadBlock(br *bufio.Reader) (Block, error) {
	var out Block
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return out, fmt.Errorf("%w: count: %v", ErrBadTrace, err)
	}
	const sanityMax = 1 << 28
	if count > sanityMax {
		return out, fmt.Errorf("%w: implausible count %d", ErrBadTrace, count)
	}
	// The claimed count is untrusted until records actually arrive: clamp
	// the preallocation so a short hostile input can't demand gigabytes.
	capHint := count
	if capHint > 4096 {
		capHint = 4096
	}
	out.ins = make([]Ins, 0, capHint)
	out.addrs = make([]uint64, 0, capHint)
	out.vals = make([]uint64, 0, capHint)
	out.meta = make([]uint32, 0, capHint)
	out.locks = make([]LockSet, 0, capHint)
	prevAddr := uint64(0)
	var lockBuf []uint64
	for i := uint64(0); i < count; i++ {
		flags, err := br.ReadByte()
		if err != nil {
			return out, fmt.Errorf("%w: flags: %v", ErrBadTrace, err)
		}
		th, err := binary.ReadUvarint(br)
		if err != nil {
			return out, fmt.Errorf("%w: thread: %v", ErrBadTrace, err)
		}
		if th > maxThread {
			return out, fmt.Errorf("%w: thread %d", ErrBadTrace, th)
		}
		ins, err := binary.ReadUvarint(br)
		if err != nil {
			return out, fmt.Errorf("%w: ins: %v", ErrBadTrace, err)
		}
		dAddr, err := binary.ReadVarint(br)
		if err != nil {
			return out, fmt.Errorf("%w: addr: %v", ErrBadTrace, err)
		}
		addr := uint64(int64(prevAddr) + dAddr)
		prevAddr = addr
		size, err := br.ReadByte()
		if err != nil {
			return out, fmt.Errorf("%w: size: %v", ErrBadTrace, err)
		}
		if size == 0 || size > 8 {
			return out, fmt.Errorf("%w: size %d", ErrBadTrace, size)
		}
		val, err := binary.ReadUvarint(br)
		if err != nil {
			return out, fmt.Errorf("%w: val: %v", ErrBadTrace, err)
		}
		var kind Kind
		if flags&fKindWrite != 0 {
			kind = Write
		}
		var ls LockSet
		if flags&fLocks != 0 {
			n, err := binary.ReadUvarint(br)
			if err != nil || n > 64 {
				return out, fmt.Errorf("%w: lock count", ErrBadTrace)
			}
			lockBuf = lockBuf[:0]
			prevLock := uint64(0)
			for j := uint64(0); j < n; j++ {
				d, err := binary.ReadVarint(br)
				if err != nil {
					return out, fmt.Errorf("%w: lock: %v", ErrBadTrace, err)
				}
				l := uint64(int64(prevLock) + d)
				lockBuf = append(lockBuf, l)
				prevLock = l
			}
			ls = InternLocks(lockBuf)
		}
		out.ins = append(out.ins, Ins(ins))
		out.addrs = append(out.addrs, addr)
		out.vals = append(out.vals, val)
		out.meta = append(out.meta, packMeta(int(th), kind, size, flags&fAtomic != 0, flags&fMarked != 0, flags&fStack != 0, flags&fRCU != 0))
		out.locks = append(out.locks, ls)
	}
	return out, nil
}
