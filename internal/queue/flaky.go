package queue

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Fault injection for chaos testing: FlakyConn wraps a net.Conn and — from
// a deterministic seeded stream — delays I/O operations and severs the
// connection mid-use, the failure modes of the paper's cloud fleet
// (worker preemption, network flakiness). Paired with the Client's
// reconnect loop and the queue's lease reaper, chaos tests assert the
// at-least-once invariant: zero lost jobs, zero double-counted jobs.

// ErrInjectedFailure is the error a severed FlakyConn returns.
var ErrInjectedFailure = errors.New("queue: injected connection failure")

// FlakyOptions configure deterministic fault injection.
type FlakyOptions struct {
	// Seed fixes the fault stream; equal seeds inject identical fault
	// sequences (relative to the connection's own I/O op order).
	Seed int64
	// FailProb is the per-I/O-operation probability that the connection
	// severs (the underlying conn is closed and every later op fails).
	FailProb float64
	// DelayProb is the per-I/O-operation probability of an injected delay,
	// uniform in (0, MaxDelay].
	DelayProb float64
	MaxDelay  time.Duration
}

// FlakyConn wraps a net.Conn with seed-deterministic faults.
type FlakyConn struct {
	net.Conn
	o FlakyOptions

	mu      sync.Mutex
	rng     *rand.Rand
	severed bool
}

// NewFlakyConn wraps conn with fault injection drawn from o.Seed.
func NewFlakyConn(conn net.Conn, o FlakyOptions) *FlakyConn {
	return &FlakyConn{Conn: conn, o: o, rng: rand.New(rand.NewSource(o.Seed))}
}

// fault rolls the fault dice for one I/O operation: it may sleep, and it
// may sever the connection, returning ErrInjectedFailure.
func (f *FlakyConn) fault() error {
	f.mu.Lock()
	if f.severed {
		f.mu.Unlock()
		return ErrInjectedFailure
	}
	delay := time.Duration(0)
	if f.o.DelayProb > 0 && f.rng.Float64() < f.o.DelayProb && f.o.MaxDelay > 0 {
		delay = time.Duration(f.rng.Int63n(int64(f.o.MaxDelay))) + 1
	}
	sever := f.o.FailProb > 0 && f.rng.Float64() < f.o.FailProb
	if sever {
		f.severed = true
	}
	f.mu.Unlock()

	if delay > 0 {
		time.Sleep(delay)
	}
	if sever {
		_ = f.Conn.Close()
		return ErrInjectedFailure
	}
	return nil
}

// Read injects faults before delegating.
func (f *FlakyConn) Read(p []byte) (int, error) {
	if err := f.fault(); err != nil {
		return 0, err
	}
	return f.Conn.Read(p)
}

// Write injects faults before delegating.
func (f *FlakyConn) Write(p []byte) (int, error) {
	if err := f.fault(); err != nil {
		return 0, err
	}
	return f.Conn.Write(p)
}

// FlakyDialer wraps a dial function (nil = plain TCP) so every connection
// it produces is a FlakyConn. Each connection draws its faults from a seed
// derived from o.Seed and the connection's ordinal, so a reconnecting
// client sees a deterministic fault sequence across redials.
func FlakyDialer(o FlakyOptions, dial func(addr string) (net.Conn, error)) func(addr string) (net.Conn, error) {
	if dial == nil {
		dial = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	var n atomic.Int64
	return func(addr string) (net.Conn, error) {
		conn, err := dial(addr)
		if err != nil {
			return nil, err
		}
		oc := o
		oc.Seed = o.Seed + 0x9e3779b9*n.Add(1)
		return NewFlakyConn(conn, oc), nil
	}
}
