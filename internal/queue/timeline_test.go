package queue

import (
	"errors"
	"testing"
	"time"

	"snowboard/internal/obs"
)

// wants asserts that the timeline matches the expected sequence of
// (what, attempt) steps.
func wantTimeline(t *testing.T, tl []JobEvent, steps ...JobEvent) {
	t.Helper()
	if len(tl) != len(steps) {
		t.Fatalf("timeline has %d events, want %d: %+v", len(tl), len(steps), tl)
	}
	for i, want := range steps {
		if tl[i].What != want.What || tl[i].Attempt != want.Attempt {
			t.Fatalf("timeline[%d] = %s@%d, want %s@%d",
				i, tl[i].What, tl[i].Attempt, want.What, want.Attempt)
		}
		if tl[i].At.IsZero() {
			t.Fatalf("timeline[%d] has a zero timestamp", i)
		}
		if want.Reason != "" && tl[i].Reason != want.Reason {
			t.Fatalf("timeline[%d] reason = %q, want %q", i, tl[i].Reason, want.Reason)
		}
	}
}

func TestDeadLetterCarriesFullTimeline(t *testing.T) {
	// A dead letter is a diagnosis artifact: it must show every delivery
	// attempt and why each failed, not just the final reason.
	q := NewWithOptions(Options{Name: "tl-dead", MaxAttempts: 2})
	defer q.Close()
	if err := q.Push(testJob(21)); err != nil {
		t.Fatal(err)
	}
	for attempt := 1; attempt <= 2; attempt++ {
		ls, err := q.TryLease()
		if err != nil {
			t.Fatalf("attempt %d: %v", attempt, err)
		}
		if err := q.Nack(ls.ID, "sim crash"); err != nil {
			t.Fatal(err)
		}
	}
	dead := q.DeadLetters()
	if len(dead) != 1 {
		t.Fatalf("dead letters = %d, want 1", len(dead))
	}
	wantTimeline(t, dead[0].Timeline,
		JobEvent{What: "pushed", Attempt: 0},
		JobEvent{What: "leased", Attempt: 1},
		JobEvent{What: "nacked", Attempt: 1, Reason: "sim crash"},
		JobEvent{What: "leased", Attempt: 2},
		JobEvent{What: "nacked", Attempt: 2, Reason: "sim crash"},
		JobEvent{What: "dead-lettered", Attempt: 2, Reason: "sim crash"},
	)
}

func TestExpiredLeaseAppearsInTimeline(t *testing.T) {
	// A worker that silently dies shows up as "expired" steps, so the dead
	// letter distinguishes crashes (nacked) from hangs (expired).
	q := NewWithOptions(Options{Name: "tl-expire", LeaseTimeout: 20 * time.Millisecond, MaxAttempts: 1})
	defer q.Close()
	if err := q.Push(testJob(22)); err != nil {
		t.Fatal(err)
	}
	if _, err := q.TryLease(); err != nil {
		t.Fatal(err)
	}
	settle(t, 2*time.Second, func() bool { return q.Stats().DeadLettered == 1 })
	dead := q.DeadLetters()
	wantTimeline(t, dead[0].Timeline,
		JobEvent{What: "pushed", Attempt: 0},
		JobEvent{What: "leased", Attempt: 1},
		JobEvent{What: "expired", Attempt: 1},
		JobEvent{What: "dead-lettered", Attempt: 1, Reason: "lease expired"},
	)
}

func TestJobTraceRoundTripsWire(t *testing.T) {
	// The campaign trace ID survives the job codec, so remote workers can
	// stitch their spans to the coordinator's flight recorder.
	j := testJob(23)
	j.Trace = "deadbeef00112233"
	data, err := EncodeJob(j)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeJob(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Trace != j.Trace {
		t.Fatalf("trace = %q, want %q", got.Trace, j.Trace)
	}
	// Jobs from older v2 peers simply have no trace — not an error.
	plain, err := EncodeJob(testJob(24))
	if err != nil {
		t.Fatal(err)
	}
	got, err = DecodeJob(plain)
	if err != nil {
		t.Fatal(err)
	}
	if got.Trace != "" {
		t.Fatalf("traceless job decoded with trace %q", got.Trace)
	}
}

func TestJobTraceOverTCP(t *testing.T) {
	q := NewWithOptions(Options{Name: "tl-tcp"})
	srv, err := Serve(q, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	j := testJob(25)
	j.Trace = "cafe0123cafe0123"
	if err := c.Push(j); err != nil {
		t.Fatal(err)
	}
	ls, err := c.Lease()
	if err != nil {
		t.Fatal(err)
	}
	if ls.Job.Trace != j.Trace {
		t.Fatalf("leased trace = %q, want %q", ls.Job.Trace, j.Trace)
	}
	if err := c.Ack(ls.ID); err != nil {
		t.Fatal(err)
	}
}

func TestPerOpLatencyHistograms(t *testing.T) {
	q := NewWithOptions(Options{Name: "tl-hist", MaxAttempts: 3})
	defer q.Close()
	if err := q.Push(testJob(26)); err != nil {
		t.Fatal(err)
	}
	ls, err := q.TryLease()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Extend(ls.ID, time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := q.Nack(ls.ID, "again"); err != nil {
		t.Fatal(err)
	}
	ls, err = q.TryLease()
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Ack(ls.ID); err != nil {
		t.Fatal(err)
	}
	for _, op := range []string{"lease", "ack", "nack", "extend"} {
		h := obs.H("queue.tl-hist." + op + ".duration_ns")
		if h.Count() == 0 {
			t.Errorf("histogram queue.tl-hist.%s.duration_ns recorded nothing", op)
		}
	}
	// Failed ops are not latency samples: the lease histogram counts only
	// granted leases.
	leases := obs.H("queue.tl-hist.lease.duration_ns").Count()
	if _, err := q.TryLease(); !errors.Is(err, ErrEmpty) {
		t.Fatalf("lease on empty: %v", err)
	}
	if got := obs.H("queue.tl-hist.lease.duration_ns").Count(); got != leases {
		t.Fatalf("empty TryLease bumped the lease histogram %d -> %d", leases, got)
	}
}

func TestTimelineBranchesNeverAlias(t *testing.T) {
	// Timelines branch at requeue and dead-letter: the same history flows
	// into both the archived DeadJob and (on earlier attempts) a requeued
	// pending copy. Built with a plain append over shared spare capacity,
	// a later attempt's event could overwrite an archived one. Drive a
	// job through nack -> redeliver -> dead-letter and assert the
	// timeline captured earlier never changes underneath the caller.
	q := NewWithOptions(Options{Name: "tl-alias", MaxAttempts: 2})
	defer q.Close()
	if err := q.Push(testJob(28)); err != nil {
		t.Fatal(err)
	}
	ls, err := q.TryLease()
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Nack(ls.ID, "first failure"); err != nil {
		t.Fatal(err)
	}
	// Redelivery, then exhaustion.
	ls, err = q.TryLease()
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Nack(ls.ID, "second failure"); err != nil {
		t.Fatal(err)
	}

	dead := q.DeadLetters()
	if len(dead) != 1 {
		t.Fatalf("dead letters = %d, want 1", len(dead))
	}
	archived := dead[0].Timeline
	snapshot := append([]JobEvent(nil), archived...)

	// A caller appending to — or rewriting elements of — its returned
	// copy must never reach the queue's archive.
	_ = append(archived, JobEvent{What: "forged", Attempt: 9})
	for i := range archived {
		archived[i].What = "tampered"
	}

	fresh := q.DeadLetters()[0].Timeline
	wantTimeline(t, fresh,
		JobEvent{What: "pushed", Attempt: 0},
		JobEvent{What: "leased", Attempt: 1},
		JobEvent{What: "nacked", Attempt: 1, Reason: "first failure"},
		JobEvent{What: "leased", Attempt: 2},
		JobEvent{What: "nacked", Attempt: 2, Reason: "second failure"},
		JobEvent{What: "dead-lettered", Attempt: 2, Reason: "second failure"},
	)
	for i := range fresh {
		if fresh[i].What != snapshot[i].What {
			t.Fatalf("archived timeline[%d] changed from %q to %q after caller mutation",
				i, snapshot[i].What, fresh[i].What)
		}
	}
}

func TestStatsOldestLease(t *testing.T) {
	q := NewWithOptions(Options{Name: "tl-oldest"})
	defer q.Close()
	if st := q.Stats(); st.OldestLease != 0 {
		t.Fatalf("idle OldestLease = %v, want 0", st.OldestLease)
	}
	if err := q.Push(testJob(27)); err != nil {
		t.Fatal(err)
	}
	ls, err := q.TryLease()
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	if st := q.Stats(); st.OldestLease <= 0 {
		t.Fatalf("OldestLease = %v with an outstanding lease, want > 0", st.OldestLease)
	}
	if err := q.Ack(ls.ID); err != nil {
		t.Fatal(err)
	}
	if st := q.Stats(); st.OldestLease != 0 {
		t.Fatalf("OldestLease after ack = %v, want 0", st.OldestLease)
	}
}
