package queue

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"snowboard/internal/obs"
)

func TestRegistryOpenIsIdempotent(t *testing.T) {
	reg := NewRegistry(Options{MaxAttempts: 5})
	defer reg.Close()
	a := reg.Open("campaign.a")
	if got := reg.Open("campaign.a"); got != a {
		t.Fatal("Open returned a different queue for the same name")
	}
	if reg.Get("campaign.a") != a {
		t.Fatal("Get did not return the opened queue")
	}
	if reg.Get("never-opened") != nil {
		t.Fatal("Get invented a queue for an unknown name")
	}
	reg.Open("campaign.b")
	names := reg.Names()
	if len(names) != 2 || names[0] != "campaign.a" || names[1] != "campaign.b" {
		t.Fatalf("Names = %v, want [campaign.a campaign.b]", names)
	}
	if a.opts.MaxAttempts != 5 {
		t.Fatalf("opened queue did not inherit template MaxAttempts: got %d", a.opts.MaxAttempts)
	}
}

func TestServerRejectsUnknownQueue(t *testing.T) {
	reg := NewRegistry(Options{})
	defer reg.Close()
	reg.Open("known")
	srv, err := ServeRegistry(reg, "127.0.0.1:0", ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// A typo'd queue name fails loudly with the sentinel.
	c, err := DialOpts(srv.Addr(), DialOptions{Queue: "knwon"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Push(testJob(1)); !errors.Is(err, ErrUnknownQueue) {
		t.Fatalf("push to unknown queue: %v, want ErrUnknownQueue", err)
	}
	// A registry-only server has no default queue either.
	d, err := DialOpts(srv.Addr(), DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.Push(testJob(2)); !errors.Is(err, ErrUnknownQueue) {
		t.Fatalf("push to default queue of registry server: %v, want ErrUnknownQueue", err)
	}
	// The known queue works.
	k, err := DialOpts(srv.Addr(), DialOptions{Queue: "known"})
	if err != nil {
		t.Fatal(err)
	}
	defer k.Close()
	if err := k.Push(testJob(3)); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentNamedQueuesIsolation(t *testing.T) {
	// Several named queues on one listener, hammered by concurrent clients
	// interleaving lease/ack/nack/extend. Each queue's jobs carry IDs from
	// a disjoint range and each queue gets a different job count, so any
	// cross-queue leakage shows up as a foreign job ID or a depth gauge
	// that never drains to its own count.
	const queues = 4
	reg := NewRegistry(Options{LeaseTimeout: 2 * time.Second, MaxAttempts: 4})
	defer reg.Close()
	srv, err := ServeRegistry(reg, "127.0.0.1:0", ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	name := func(i int) string { return fmt.Sprintf("tenant-%d", i) }
	jobsFor := func(i int) int { return 6 + 3*i } // distinct per-queue counts
	for i := 0; i < queues; i++ {
		q := reg.Open(name(i))
		for j := 0; j < jobsFor(i); j++ {
			if err := q.Push(testJob(1000*i + j)); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Fully loaded, nothing leased: every depth gauge must read exactly
	// its own queue's backlog.
	for i := 0; i < queues; i++ {
		if got := obs.G("queue." + name(i) + ".depth").Value(); got != int64(jobsFor(i)) {
			t.Fatalf("queue %s depth gauge = %d before draining, want %d", name(i), got, jobsFor(i))
		}
	}

	var wg sync.WaitGroup
	var mu sync.Mutex
	seen := make(map[int][]int) // queue index -> job IDs processed
	for i := 0; i < queues; i++ {
		for w := 0; w < 2; w++ {
			wg.Add(1)
			go func(i, w int) {
				defer wg.Done()
				c, err := DialOpts(srv.Addr(), DialOptions{Queue: name(i), Seed: int64(i*10 + w + 1)})
				if err != nil {
					t.Error(err)
					return
				}
				defer c.Close()
				for {
					ls, err := c.Lease()
					if errors.Is(err, ErrEmpty) {
						// Drained (or a sibling holds the stragglers).
						if reg.Get(name(i)).Stats().Leased == 0 {
							return
						}
						time.Sleep(time.Millisecond)
						continue
					}
					if err != nil {
						t.Errorf("queue %s lease: %v", name(i), err)
						return
					}
					if ls.Job.ID/1000 != i {
						t.Errorf("queue %s leased foreign job %d", name(i), ls.Job.ID)
					}
					// Interleave the full verb set: extend every lease, nack
					// first deliveries of every third job, ack the rest.
					if _, err := c.Extend(ls.ID, time.Second); err != nil && !errors.Is(err, ErrUnknownLease) {
						t.Errorf("queue %s extend: %v", name(i), err)
					}
					if ls.Job.ID%3 == 0 && ls.Attempt == 1 {
						if err := c.Nack(ls.ID, "retry me"); err != nil && !errors.Is(err, ErrUnknownLease) {
							t.Errorf("queue %s nack: %v", name(i), err)
						}
						continue
					}
					if err := c.Ack(ls.ID); err != nil && !errors.Is(err, ErrUnknownLease) {
						t.Errorf("queue %s ack: %v", name(i), err)
					}
					mu.Lock()
					seen[i] = append(seen[i], ls.Job.ID)
					mu.Unlock()
				}
			}(i, w)
		}
	}
	wg.Wait()

	for i := 0; i < queues; i++ {
		q := reg.Get(name(i))
		st := q.Stats()
		if st.Done != jobsFor(i) || st.Pending != 0 || st.Leased != 0 || st.DeadLettered != 0 {
			t.Fatalf("queue %s stats = %+v, want %d done and everything else drained", name(i), st, jobsFor(i))
		}
		// The per-queue depth gauge drained to zero and never absorbed a
		// neighbour's backlog.
		if got := obs.G("queue." + name(i) + ".depth").Value(); got != 0 {
			t.Fatalf("queue %s depth gauge = %d after draining, want 0", name(i), got)
		}
		ids := make(map[int]bool)
		for _, id := range seen[i] {
			if id/1000 != i {
				t.Fatalf("queue %s processed foreign job %d", name(i), id)
			}
			ids[id] = true
		}
		if len(ids) != jobsFor(i) {
			t.Fatalf("queue %s processed %d distinct jobs, want %d", name(i), len(ids), jobsFor(i))
		}
	}
}
