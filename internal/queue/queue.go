// Package queue is the lightweight distributed test queue of §4.4.1 ("we
// integrate the execution platform with a lightweight distributed queue so
// that concurrent tests can be distributed in a cloud platform"). It
// provides an in-process queue and a TCP transport (stdlib only) carrying
// JSON-encoded jobs, so exploration work can fan out across workers.
package queue

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"snowboard/internal/corpus"
	"snowboard/internal/obs"
	"snowboard/internal/pmc"
)

// Queue metrics: per-op counters plus the current depth, shared by every
// queue in the process.
var (
	mPush   = obs.C(obs.MQueuePush)
	mPop    = obs.C(obs.MQueuePop)
	mReport = obs.C(obs.MQueueReport)
	mDepth  = obs.G(obs.MQueueDepth)
)

// Job is one unit of exploration work: a concurrent test, carried either
// inline (Writer/Reader programs embedded in the job) or by reference
// (Corpus names a corpus artifact in a shared content-addressed store and
// Pair indexes the two programs inside it). Referencing shrinks the wire
// format to a digest plus two integers regardless of program size and lets
// a fleet of workers share one corpus artifact instead of receiving every
// program inline.
type Job struct {
	ID     int          `json:"id"`
	Writer *corpus.Prog `json:"writer,omitempty"`
	Reader *corpus.Prog `json:"reader,omitempty"`
	// Corpus, when non-empty, is the hex content digest of a corpus
	// artifact (store.KindCorpus); Writer/Reader are then resolved from
	// Pair against that corpus via Resolve.
	Corpus string         `json:"corpus,omitempty"`
	Hint   *pmc.PMC       `json:"hint,omitempty"`
	Pair   pmc.Pair       `json:"pair"`
	Meta   map[string]any `json:"meta,omitempty"`
}

// Inline reports whether the job carries its programs inline.
func (j *Job) Inline() bool { return j.Writer != nil && j.Reader != nil }

// Resolve fills Writer/Reader from the corpus the job references. It is a
// no-op for inline jobs.
func (j *Job) Resolve(c *corpus.Corpus) error {
	if j.Inline() {
		return nil
	}
	if c == nil {
		return fmt.Errorf("queue: job %d references corpus %.12s but no corpus given", j.ID, j.Corpus)
	}
	if j.Pair.Writer < 0 || j.Pair.Writer >= c.Len() || j.Pair.Reader < 0 || j.Pair.Reader >= c.Len() {
		return fmt.Errorf("queue: job %d pair (%d,%d) out of range for corpus of %d tests",
			j.ID, j.Pair.Writer, j.Pair.Reader, c.Len())
	}
	j.Writer = c.Progs[j.Pair.Writer]
	j.Reader = c.Progs[j.Pair.Reader]
	if j.Pair.Writer == j.Pair.Reader {
		// Duplicate pairing runs a program against a copy of itself; clone so
		// resolution matches what inline generation would have carried.
		j.Reader = j.Reader.Clone()
	}
	return nil
}

// JobResult carries a worker's findings back.
type JobResult struct {
	JobID     int      `json:"job_id"`
	Trials    int      `json:"trials"`
	Exercised bool     `json:"exercised"`
	IssueIDs  []string `json:"issue_ids,omitempty"`
	BugIDs    []int    `json:"bug_ids,omitempty"`
	Worker    string   `json:"worker,omitempty"`
}

// ErrClosed is returned by operations on a closed queue.
var ErrClosed = errors.New("queue: closed")

// ErrEmpty is returned by TryPop on an empty queue.
var ErrEmpty = errors.New("queue: empty")

// Queue is a FIFO job queue with a result channel, safe for concurrent use.
type Queue struct {
	mu      sync.Mutex
	cond    *sync.Cond
	jobs    []Job
	results []JobResult
	closed  bool
}

// New returns an empty queue.
func New() *Queue {
	q := &Queue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Push enqueues a job.
func (q *Queue) Push(j Job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	q.jobs = append(q.jobs, j)
	mPush.Inc()
	mDepth.Set(int64(len(q.jobs)))
	q.cond.Signal()
	return nil
}

// Pop dequeues the next job, blocking until one is available or the queue
// closes.
func (q *Queue) Pop() (Job, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.jobs) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.jobs) == 0 {
		return Job{}, ErrClosed
	}
	j := q.jobs[0]
	q.jobs = q.jobs[1:]
	mPop.Inc()
	mDepth.Set(int64(len(q.jobs)))
	return j, nil
}

// TryPop dequeues without blocking.
func (q *Queue) TryPop() (Job, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.jobs) == 0 {
		if q.closed {
			return Job{}, ErrClosed
		}
		return Job{}, ErrEmpty
	}
	j := q.jobs[0]
	q.jobs = q.jobs[1:]
	mPop.Inc()
	mDepth.Set(int64(len(q.jobs)))
	return j, nil
}

// Report records a worker's result.
func (q *Queue) Report(r JobResult) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	q.results = append(q.results, r)
	mReport.Inc()
	return nil
}

// Results drains and returns all recorded results.
func (q *Queue) Results() []JobResult {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := q.results
	q.results = nil
	return out
}

// Len reports the number of queued jobs.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.jobs)
}

// Close wakes all blocked Pops; subsequent Pushes fail.
func (q *Queue) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}

// EncodeJob serializes a job for the wire.
func EncodeJob(j Job) ([]byte, error) { return json.Marshal(j) }

// DecodeJob parses a serialized job. Inline programs are validated;
// by-reference jobs must carry a corpus digest and in-range pair indices
// (full bounds checking happens at Resolve time, against the corpus).
func DecodeJob(data []byte) (Job, error) {
	var j Job
	if err := json.Unmarshal(data, &j); err != nil {
		return Job{}, err
	}
	if !j.Inline() {
		if j.Corpus == "" {
			return Job{}, errors.New("queue: job carries neither inline programs nor a corpus digest")
		}
		if j.Pair.Writer < 0 || j.Pair.Reader < 0 {
			return Job{}, errors.New("queue: by-reference job with negative pair index")
		}
		return j, nil
	}
	if err := j.Writer.Validate(); err != nil {
		return Job{}, err
	}
	if err := j.Reader.Validate(); err != nil {
		return Job{}, err
	}
	return j, nil
}
