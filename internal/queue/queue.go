// Package queue is the lightweight distributed test queue of §4.4.1 ("we
// integrate the execution platform with a lightweight distributed queue so
// that concurrent tests can be distributed in a cloud platform"). It
// provides an in-process queue and a TCP transport (stdlib only) carrying
// JSON-encoded jobs, so exploration work can fan out across workers.
package queue

import (
	"encoding/json"
	"errors"
	"sync"

	"snowboard/internal/corpus"
	"snowboard/internal/obs"
	"snowboard/internal/pmc"
)

// Queue metrics: per-op counters plus the current depth, shared by every
// queue in the process.
var (
	mPush   = obs.C(obs.MQueuePush)
	mPop    = obs.C(obs.MQueuePop)
	mReport = obs.C(obs.MQueueReport)
	mDepth  = obs.G(obs.MQueueDepth)
)

// Job is one unit of exploration work: a serialized concurrent test.
type Job struct {
	ID     int            `json:"id"`
	Writer *corpus.Prog   `json:"writer"`
	Reader *corpus.Prog   `json:"reader"`
	Hint   *pmc.PMC       `json:"hint,omitempty"`
	Pair   pmc.Pair       `json:"pair"`
	Meta   map[string]any `json:"meta,omitempty"`
}

// JobResult carries a worker's findings back.
type JobResult struct {
	JobID     int      `json:"job_id"`
	Trials    int      `json:"trials"`
	Exercised bool     `json:"exercised"`
	IssueIDs  []string `json:"issue_ids,omitempty"`
	BugIDs    []int    `json:"bug_ids,omitempty"`
	Worker    string   `json:"worker,omitempty"`
}

// ErrClosed is returned by operations on a closed queue.
var ErrClosed = errors.New("queue: closed")

// ErrEmpty is returned by TryPop on an empty queue.
var ErrEmpty = errors.New("queue: empty")

// Queue is a FIFO job queue with a result channel, safe for concurrent use.
type Queue struct {
	mu      sync.Mutex
	cond    *sync.Cond
	jobs    []Job
	results []JobResult
	closed  bool
}

// New returns an empty queue.
func New() *Queue {
	q := &Queue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Push enqueues a job.
func (q *Queue) Push(j Job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	q.jobs = append(q.jobs, j)
	mPush.Inc()
	mDepth.Set(int64(len(q.jobs)))
	q.cond.Signal()
	return nil
}

// Pop dequeues the next job, blocking until one is available or the queue
// closes.
func (q *Queue) Pop() (Job, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.jobs) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.jobs) == 0 {
		return Job{}, ErrClosed
	}
	j := q.jobs[0]
	q.jobs = q.jobs[1:]
	mPop.Inc()
	mDepth.Set(int64(len(q.jobs)))
	return j, nil
}

// TryPop dequeues without blocking.
func (q *Queue) TryPop() (Job, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.jobs) == 0 {
		if q.closed {
			return Job{}, ErrClosed
		}
		return Job{}, ErrEmpty
	}
	j := q.jobs[0]
	q.jobs = q.jobs[1:]
	mPop.Inc()
	mDepth.Set(int64(len(q.jobs)))
	return j, nil
}

// Report records a worker's result.
func (q *Queue) Report(r JobResult) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	q.results = append(q.results, r)
	mReport.Inc()
	return nil
}

// Results drains and returns all recorded results.
func (q *Queue) Results() []JobResult {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := q.results
	q.results = nil
	return out
}

// Len reports the number of queued jobs.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.jobs)
}

// Close wakes all blocked Pops; subsequent Pushes fail.
func (q *Queue) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}

// EncodeJob serializes a job for the wire.
func EncodeJob(j Job) ([]byte, error) { return json.Marshal(j) }

// DecodeJob parses a serialized job, validating its programs.
func DecodeJob(data []byte) (Job, error) {
	var j Job
	if err := json.Unmarshal(data, &j); err != nil {
		return Job{}, err
	}
	if j.Writer == nil || j.Reader == nil {
		return Job{}, errors.New("queue: job missing programs")
	}
	if err := j.Writer.Validate(); err != nil {
		return Job{}, err
	}
	if err := j.Reader.Validate(); err != nil {
		return Job{}, err
	}
	return j, nil
}
