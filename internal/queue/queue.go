// Package queue is the lightweight distributed test queue of §4.4.1 ("we
// integrate the execution platform with a lightweight distributed queue so
// that concurrent tests can be distributed in a cloud platform"). It
// provides an in-process queue and a TCP transport (stdlib only) carrying
// JSON-encoded jobs, so exploration work can fan out across workers.
//
// Delivery is at-least-once: workers Lease a job (receiving a lease ID and
// deadline), then Ack it on success or Nack it on failure. A background
// reaper redelivers jobs whose lease expired — a preempted or crashed
// worker can never silently lose work — and a job that fails MaxAttempts
// deliveries lands on the dead-letter list instead of retrying forever.
// Because worker seeds derive from the job ID alone, a redelivered job
// produces a byte-identical result, so coordinators fold duplicates away
// and campaign reports match an uninterrupted run exactly.
package queue

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"snowboard/internal/corpus"
	"snowboard/internal/obs"
	"snowboard/internal/pmc"
)

// Queue metrics: per-op counters shared by every queue in the process, the
// aggregate depth gauge (each queue contributes deltas, so several queues
// never clobber one another), and the lease-age histogram.
var (
	mPush      = obs.C(obs.MQueuePush)
	mPop       = obs.C(obs.MQueuePop)
	mReport    = obs.C(obs.MQueueReport)
	mDepth     = obs.G(obs.MQueueDepth)
	mLease     = obs.C(obs.MQueueLease)
	mAck       = obs.C(obs.MQueueAck)
	mNack      = obs.C(obs.MQueueNack)
	mRedeliver = obs.C(obs.MQueueRedeliver)
	mDead      = obs.C(obs.MQueueDeadLetter)
	mLeaseAge  = obs.H(obs.MQueueLeaseAge)
)

// Job is one unit of exploration work: a concurrent test, carried either
// inline (Writer/Reader programs embedded in the job) or by reference
// (Corpus names a corpus artifact in a shared content-addressed store and
// Pair indexes the two programs inside it). Referencing shrinks the wire
// format to a digest plus two integers regardless of program size and lets
// a fleet of workers share one corpus artifact instead of receiving every
// program inline.
type Job struct {
	ID     int          `json:"id"`
	Writer *corpus.Prog `json:"writer,omitempty"`
	Reader *corpus.Prog `json:"reader,omitempty"`
	// Corpus, when non-empty, is the hex content digest of a corpus
	// artifact (store.KindCorpus); Writer/Reader are then resolved from
	// Pair against that corpus via Resolve.
	Corpus string         `json:"corpus,omitempty"`
	Hint   *pmc.PMC       `json:"hint,omitempty"`
	Pair   pmc.Pair       `json:"pair"`
	Meta   map[string]any `json:"meta,omitempty"`
	// Trace stitches the job to its originating campaign: workers tag
	// their spans and flight-recorder events with it, so a distributed
	// run's timeline reads end-to-end. Optional field, so the v2 wire
	// protocol stays backward-compatible (older peers ignore it).
	Trace string `json:"trace,omitempty"`
}

// Inline reports whether the job carries its programs inline.
func (j *Job) Inline() bool { return j.Writer != nil && j.Reader != nil }

// Resolve fills Writer/Reader from the corpus the job references. It is a
// no-op for inline jobs.
func (j *Job) Resolve(c *corpus.Corpus) error {
	if j.Inline() {
		return nil
	}
	if c == nil {
		return fmt.Errorf("queue: job %d references corpus %.12s but no corpus given", j.ID, j.Corpus)
	}
	if j.Pair.Writer < 0 || j.Pair.Writer >= c.Len() || j.Pair.Reader < 0 || j.Pair.Reader >= c.Len() {
		return fmt.Errorf("queue: job %d pair (%d,%d) out of range for corpus of %d tests",
			j.ID, j.Pair.Writer, j.Pair.Reader, c.Len())
	}
	j.Writer = c.Progs[j.Pair.Writer]
	j.Reader = c.Progs[j.Pair.Reader]
	if j.Pair.Writer == j.Pair.Reader {
		// Duplicate pairing runs a program against a copy of itself; clone so
		// resolution matches what inline generation would have carried.
		j.Reader = j.Reader.Clone()
	}
	return nil
}

// JobResult carries a worker's findings back. A redelivered job may report
// more than once; everything except Worker is a pure function of the job
// (worker seeds derive from the job ID), so coordinators deduplicate by
// JobID and any copy is representative.
type JobResult struct {
	JobID     int      `json:"job_id"`
	Trials    int      `json:"trials"`
	Exercised bool     `json:"exercised"`
	IssueIDs  []string `json:"issue_ids,omitempty"`
	BugIDs    []int    `json:"bug_ids,omitempty"`
	Worker    string   `json:"worker,omitempty"`
}

// ErrClosed is returned by operations on a closed queue.
var ErrClosed = errors.New("queue: closed")

// ErrEmpty is returned by TryPop/TryLease on an empty queue.
var ErrEmpty = errors.New("queue: empty")

// ErrUnknownLease is returned by Ack/Nack/Extend when the lease ID is not
// outstanding — typically because the lease already expired and the job was
// redelivered, or because it was already settled. A worker seeing this on
// Ack after a successful Report can treat it as benign: the result is
// recorded and the duplicate delivery will be folded away by the
// coordinator.
var ErrUnknownLease = errors.New("queue: unknown lease")

// Defaults for Options.
const (
	DefaultLeaseTimeout = 30 * time.Second
	DefaultMaxAttempts  = 3
)

// Options configure a queue's delivery semantics.
type Options struct {
	// Name labels this queue's depth gauge ("queue.<name>.depth"); empty
	// picks a process-unique "q<n>".
	Name string
	// LeaseTimeout is how long a worker holds a leased job before the
	// reaper takes it back for redelivery (default 30s). Workers running
	// long jobs should Extend.
	LeaseTimeout time.Duration
	// MaxAttempts bounds delivery attempts per job (default 3). A job
	// whose attempts are exhausted is dead-lettered, never silently
	// dropped and never retried forever.
	MaxAttempts int
}

func (o Options) withDefaults() Options {
	if o.Name == "" {
		o.Name = fmt.Sprintf("q%d", queueSeq.Add(1))
	}
	if o.LeaseTimeout <= 0 {
		o.LeaseTimeout = DefaultLeaseTimeout
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = DefaultMaxAttempts
	}
	return o
}

var queueSeq atomic.Int64

// Lease is one granted delivery of a job: the job plus the handle the
// worker uses to Ack, Nack, or Extend it before Deadline.
type Lease struct {
	Job      Job
	ID       uint64
	Attempt  int // 1-based delivery attempt
	Deadline time.Time
}

// JobEvent is one step of a job's delivery history: pushed, leased,
// nacked, expired, acked, or dead-lettered, with the attempt it happened
// on. The queue accumulates these per job so a dead letter carries its
// full timeline — every lease attempt and why it failed.
type JobEvent struct {
	At      time.Time `json:"at"`
	Attempt int       `json:"attempt"` // 1-based delivery attempt (0 for push)
	What    string    `json:"what"`    // pushed | leased | nacked | expired | dead-lettered
	Reason  string    `json:"reason,omitempty"`
}

// DeadJob is a job that exhausted its delivery attempts.
type DeadJob struct {
	Job      Job        `json:"job"`
	Attempts int        `json:"attempts"`
	Reason   string     `json:"reason"` // last nack reason, or "lease expired"
	Timeline []JobEvent `json:"timeline,omitempty"`
}

// Stats is a point-in-time view of where every pushed job stands:
// Pending + Leased + Done + DeadLettered == jobs pushed (once settled).
type Stats struct {
	Pending      int // waiting for delivery
	Leased       int // delivered, not yet acked/nacked/expired
	Done         int // acked
	DeadLettered int // attempts exhausted
	Redelivered  int // total redeliveries performed (expiry or nack)

	// OldestLease is how long the longest-outstanding lease has been held
	// (0 with no leases) — the watch view's lease-age readout.
	OldestLease time.Duration
}

// pendingJob carries the delivery history alongside the job.
type pendingJob struct {
	job      Job
	attempt  int // completed delivery attempts
	timeline []JobEvent
}

// activeLease is the server-side record of one outstanding lease.
type activeLease struct {
	job      Job
	attempt  int
	deadline time.Time
	since    time.Time
	timeline []JobEvent
}

// Queue is a FIFO job queue with leased at-least-once delivery and a result
// channel, safe for concurrent use.
type Queue struct {
	opts Options

	mu          sync.Mutex
	cond        *sync.Cond
	jobs        []pendingJob
	leases      map[uint64]*activeLease
	dead        []DeadJob
	results     []JobResult
	closed      bool
	nextLease   uint64
	acked       int
	redelivered int

	reapOnce sync.Once
	stop     chan struct{}

	depth *obs.Gauge // per-queue depth gauge
	last  int64      // last depth contributed to the aggregate gauge

	// Per-op latency histograms ("queue.<name>.<op>.duration_ns"),
	// resolved once at construction like the depth gauge. They time the
	// operation itself — for the blocking Lease, the grant, not the wait
	// for a job to appear.
	hLease  *obs.Histogram
	hAck    *obs.Histogram
	hNack   *obs.Histogram
	hExtend *obs.Histogram
}

// New returns an empty queue with default delivery options.
func New() *Queue { return NewWithOptions(Options{}) }

// NewWithOptions returns an empty queue with the given delivery options.
func NewWithOptions(o Options) *Queue {
	o = o.withDefaults()
	q := &Queue{
		opts:    o,
		leases:  make(map[uint64]*activeLease),
		stop:    make(chan struct{}),
		depth:   obs.G("queue." + o.Name + ".depth"),
		hLease:  obs.H("queue." + o.Name + ".lease.duration_ns"),
		hAck:    obs.H("queue." + o.Name + ".ack.duration_ns"),
		hNack:   obs.H("queue." + o.Name + ".nack.duration_ns"),
		hExtend: obs.H("queue." + o.Name + ".extend.duration_ns"),
	}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// LeaseTimeout returns the configured lease duration.
func (q *Queue) LeaseTimeout() time.Duration { return q.opts.LeaseTimeout }

// setDepthLocked publishes the pending depth to the per-queue gauge and the
// delta to the process-wide aggregate.
func (q *Queue) setDepthLocked() {
	n := int64(len(q.jobs))
	q.depth.Set(n)
	mDepth.Add(n - q.last)
	q.last = n
}

// Push enqueues a job.
func (q *Queue) Push(j Job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	q.jobs = append(q.jobs, pendingJob{job: j, timeline: []JobEvent{{At: time.Now(), What: "pushed"}}})
	mPush.Inc()
	q.setDepthLocked()
	q.cond.Signal()
	return nil
}

// startReaper launches the lease reaper on first use. It wakes a few times
// per lease period, requeues expired leases (oldest lease ID first, so
// redelivery order is deterministic), and exits when the queue closes.
func (q *Queue) startReaper() {
	q.reapOnce.Do(func() {
		ivl := q.opts.LeaseTimeout / 4
		if ivl < time.Millisecond {
			ivl = time.Millisecond
		}
		if ivl > time.Second {
			ivl = time.Second
		}
		go func() {
			t := time.NewTicker(ivl)
			defer t.Stop()
			for {
				select {
				case <-q.stop:
					return
				case <-t.C:
					q.reapExpired(time.Now())
				}
			}
		}()
	})
}

// reapExpired requeues (or dead-letters) every lease past its deadline.
func (q *Queue) reapExpired(now time.Time) {
	q.mu.Lock()
	defer q.mu.Unlock()
	var expired []uint64
	for id, l := range q.leases {
		if !now.Before(l.deadline) {
			expired = append(expired, id)
		}
	}
	sort.Slice(expired, func(i, j int) bool { return expired[i] < expired[j] })
	for _, id := range expired {
		l := q.leases[id]
		delete(q.leases, id)
		l.timeline = appendEvent(l.timeline, JobEvent{At: now, Attempt: l.attempt, What: "expired"})
		obs.EmitTrace(l.job.Trace, obs.EvJobExpired, obs.A("queue", q.opts.Name),
			obs.A("job", l.job.ID), obs.A("attempt", l.attempt))
		q.requeueLocked(l, "lease expired")
	}
}

// appendEvent extends a timeline into a freshly sized clone. Timelines
// branch: the same history can flow into both a dead-letter archive and a
// requeued pending copy, so a plain append over shared spare capacity
// would let a later attempt's event overwrite an already-archived one.
// Cloning at every branch point keeps each holder's history private.
func appendEvent(tl []JobEvent, ev JobEvent) []JobEvent {
	out := make([]JobEvent, len(tl), len(tl)+1)
	copy(out, tl)
	return append(out, ev)
}

// requeueLocked returns a failed delivery to the pending list, or
// dead-letters the job if its attempts are exhausted.
func (q *Queue) requeueLocked(l *activeLease, reason string) {
	if l.attempt >= q.opts.MaxAttempts {
		tl := appendEvent(l.timeline, JobEvent{At: time.Now(), Attempt: l.attempt, What: "dead-lettered", Reason: reason})
		q.dead = append(q.dead, DeadJob{Job: l.job, Attempts: l.attempt, Reason: reason, Timeline: tl})
		mDead.Inc()
		obs.EmitTrace(l.job.Trace, obs.EvJobDeadLetter, obs.A("queue", q.opts.Name),
			obs.A("job", l.job.ID), obs.A("attempts", l.attempt), obs.A("reason", reason))
		return
	}
	q.jobs = append(q.jobs, pendingJob{job: l.job, attempt: l.attempt, timeline: append([]JobEvent(nil), l.timeline...)})
	q.redelivered++
	mRedeliver.Inc()
	q.setDepthLocked()
	q.cond.Signal()
}

// leaseLocked grants a lease on the head job.
func (q *Queue) leaseLocked() Lease {
	p := q.jobs[0]
	q.jobs = q.jobs[1:]
	q.nextLease++
	now := time.Now()
	l := &activeLease{
		job:      p.job,
		attempt:  p.attempt + 1,
		deadline: now.Add(q.opts.LeaseTimeout),
		since:    now,
		timeline: appendEvent(p.timeline, JobEvent{At: now, Attempt: p.attempt + 1, What: "leased"}),
	}
	q.leases[q.nextLease] = l
	mLease.Inc()
	obs.EmitTrace(p.job.Trace, obs.EvJobLeased, obs.A("queue", q.opts.Name),
		obs.A("job", p.job.ID), obs.A("attempt", l.attempt))
	q.setDepthLocked()
	return Lease{Job: p.job, ID: q.nextLease, Attempt: l.attempt, Deadline: l.deadline}
}

// Lease grants the next job under a lease, blocking until one is available
// (including via redelivery of an expired lease) or the queue closes.
func (q *Queue) Lease() (Lease, error) {
	q.startReaper()
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.jobs) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.jobs) == 0 {
		return Lease{}, ErrClosed
	}
	start := time.Now()
	ls := q.leaseLocked()
	q.hLease.ObserveDuration(time.Since(start))
	return ls, nil
}

// TryLease grants a lease without blocking; ErrEmpty when nothing is
// pending (jobs may still be outstanding under other workers' leases).
func (q *Queue) TryLease() (Lease, error) {
	q.startReaper()
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.jobs) == 0 {
		if q.closed {
			return Lease{}, ErrClosed
		}
		return Lease{}, ErrEmpty
	}
	start := time.Now()
	ls := q.leaseLocked()
	q.hLease.ObserveDuration(time.Since(start))
	return ls, nil
}

// Ack settles a lease: the job is done and will not be redelivered.
func (q *Queue) Ack(id uint64) error {
	start := time.Now()
	q.mu.Lock()
	defer q.mu.Unlock()
	l, ok := q.leases[id]
	if !ok {
		return ErrUnknownLease
	}
	delete(q.leases, id)
	q.acked++
	mAck.Inc()
	mLeaseAge.ObserveDuration(time.Since(l.since))
	obs.EmitTrace(l.job.Trace, obs.EvJobAcked, obs.A("queue", q.opts.Name),
		obs.A("job", l.job.ID), obs.A("attempt", l.attempt))
	q.hAck.ObserveDuration(time.Since(start))
	return nil
}

// Nack hands a lease back for redelivery (or dead-lettering once attempts
// are exhausted); reason is recorded on the dead-letter entry.
func (q *Queue) Nack(id uint64, reason string) error {
	start := time.Now()
	q.mu.Lock()
	defer q.mu.Unlock()
	l, ok := q.leases[id]
	if !ok {
		return ErrUnknownLease
	}
	delete(q.leases, id)
	mNack.Inc()
	if reason == "" {
		reason = "nacked"
	}
	l.timeline = appendEvent(l.timeline, JobEvent{At: time.Now(), Attempt: l.attempt, What: "nacked", Reason: reason})
	obs.EmitTrace(l.job.Trace, obs.EvJobNacked, obs.A("queue", q.opts.Name),
		obs.A("job", l.job.ID), obs.A("attempt", l.attempt), obs.A("reason", reason))
	q.requeueLocked(l, reason)
	q.hNack.ObserveDuration(time.Since(start))
	return nil
}

// Extend pushes a lease's deadline out by d (the queue's LeaseTimeout when
// d <= 0) and returns the new deadline. Workers running jobs longer than
// the lease period call this to keep the reaper away.
func (q *Queue) Extend(id uint64, d time.Duration) (time.Time, error) {
	if d <= 0 {
		d = q.opts.LeaseTimeout
	}
	start := time.Now()
	q.mu.Lock()
	defer q.mu.Unlock()
	l, ok := q.leases[id]
	if !ok {
		return time.Time{}, ErrUnknownLease
	}
	l.deadline = time.Now().Add(d)
	q.hExtend.ObserveDuration(time.Since(start))
	return l.deadline, nil
}

// Pop dequeues the next job with legacy at-most-once semantics (the lease
// is acked immediately, so a crashed consumer loses the job), blocking
// until one is available or the queue closes. Fault-tolerant consumers use
// Lease/Ack instead.
func (q *Queue) Pop() (Job, error) {
	ls, err := q.Lease()
	if err != nil {
		return Job{}, err
	}
	_ = q.Ack(ls.ID)
	mPop.Inc()
	return ls.Job, nil
}

// TryPop dequeues without blocking, with the same at-most-once semantics as
// Pop.
func (q *Queue) TryPop() (Job, error) {
	ls, err := q.TryLease()
	if err != nil {
		return Job{}, err
	}
	_ = q.Ack(ls.ID)
	mPop.Inc()
	return ls.Job, nil
}

// Report records a worker's result.
func (q *Queue) Report(r JobResult) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	q.results = append(q.results, r)
	mReport.Inc()
	return nil
}

// Results drains and returns all recorded results. At-least-once delivery
// means the slice can hold several results for one redelivered job;
// coordinators deduplicate by JobID (see core.AggregateResults).
func (q *Queue) Results() []JobResult {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := q.results
	q.results = nil
	return out
}

// DeadLetters returns a copy of the dead-letter list: jobs that exhausted
// their delivery attempts, with the reason for the final failure. Timelines
// are deep-copied, so a caller mutating a returned entry can never corrupt
// the archived history.
func (q *Queue) DeadLetters() []DeadJob {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := append([]DeadJob(nil), q.dead...)
	for i := range out {
		out[i].Timeline = append([]JobEvent(nil), out[i].Timeline...)
	}
	return out
}

// Stats reports where every pushed job currently stands.
func (q *Queue) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	s := Stats{
		Pending:      len(q.jobs),
		Leased:       len(q.leases),
		Done:         q.acked,
		DeadLettered: len(q.dead),
		Redelivered:  q.redelivered,
	}
	if len(q.leases) > 0 {
		oldest := time.Time{}
		for _, l := range q.leases {
			if oldest.IsZero() || l.since.Before(oldest) {
				oldest = l.since
			}
		}
		s.OldestLease = time.Since(oldest)
	}
	return s
}

// Len reports the number of queued (pending, unleased) jobs.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.jobs)
}

// Close wakes all blocked Leases/Pops and stops the reaper; subsequent
// Pushes fail. Outstanding leases can still be acked or nacked while
// workers drain.
func (q *Queue) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.closed = true
	close(q.stop)
	q.cond.Broadcast()
}

// EncodeJob serializes a job for the wire.
func EncodeJob(j Job) ([]byte, error) { return json.Marshal(j) }

// DecodeJob parses a serialized job. Inline programs are validated;
// by-reference jobs must carry a corpus digest and in-range pair indices
// (full bounds checking happens at Resolve time, against the corpus).
func DecodeJob(data []byte) (Job, error) {
	var j Job
	if err := json.Unmarshal(data, &j); err != nil {
		return Job{}, err
	}
	if !j.Inline() {
		if j.Corpus == "" {
			return Job{}, errors.New("queue: job carries neither inline programs nor a corpus digest")
		}
		if j.Pair.Writer < 0 || j.Pair.Reader < 0 {
			return Job{}, errors.New("queue: by-reference job with negative pair index")
		}
		return j, nil
	}
	if err := j.Writer.Validate(); err != nil {
		return Job{}, err
	}
	if err := j.Reader.Validate(); err != nil {
		return Job{}, err
	}
	return j, nil
}
