package queue

import (
	"bufio"
	"encoding/json"
	"net"
	"strings"
	"testing"

	"snowboard/internal/obs"
)

// rawDial opens a plain TCP connection so tests can send protocol-violating
// bytes the Client type would never produce. The caller must close the
// connection before the server: Server.Close waits for in-flight handlers.
func rawDial(t *testing.T, addr string) (net.Conn, *bufio.Reader) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	return conn, bufio.NewReader(conn)
}

func readResp(t *testing.T, r *bufio.Reader) wireResp {
	t.Helper()
	line, err := r.ReadBytes('\n')
	if err != nil {
		t.Fatalf("read response: %v", err)
	}
	var resp wireResp
	if err := json.Unmarshal(line, &resp); err != nil {
		t.Fatalf("decode response %q: %v", line, err)
	}
	return resp
}

func TestTCPBadRequest(t *testing.T) {
	q := New()
	srv, err := Serve(q, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	badBefore := obs.C(obs.MQueueNetBadReq).Value()
	conn, r := rawDial(t, srv.Addr())
	defer conn.Close()

	// Malformed JSON must get an explicit error, not a silent drop.
	if _, err := conn.Write([]byte("{not json\n")); err != nil {
		t.Fatal(err)
	}
	resp := readResp(t, r)
	if resp.OK || !strings.HasPrefix(resp.Err, "bad request:") {
		t.Fatalf("bad request response = %+v", resp)
	}
	if got := obs.C(obs.MQueueNetBadReq).Value(); got != badBefore+1 {
		t.Fatalf("bad_requests = %d, want %d", got, badBefore+1)
	}

	// The connection stays usable: a valid request afterwards still works.
	if _, err := conn.Write([]byte(`{"op":"pop"}` + "\n")); err != nil {
		t.Fatal(err)
	}
	resp = readResp(t, r)
	if resp.OK || resp.Err != ErrEmpty.Error() {
		t.Fatalf("pop after bad request = %+v, want err %q", resp, ErrEmpty)
	}

	// Unknown ops get their own explicit error.
	if _, err := conn.Write([]byte(`{"op":"flush"}` + "\n")); err != nil {
		t.Fatal(err)
	}
	resp = readResp(t, r)
	if resp.OK || !strings.Contains(resp.Err, `unknown op "flush"`) {
		t.Fatalf("unknown op response = %+v", resp)
	}
}

func TestTCPOpCounters(t *testing.T) {
	q := New()
	srv, err := Serve(q, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	pushBefore := obs.C(obs.MQueueNetPush).Value()
	popBefore := obs.C(obs.MQueueNetPop).Value()
	reportBefore := obs.C(obs.MQueueNetReport).Value()

	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Push(testJob(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Pop(); err != nil {
		t.Fatal(err)
	}
	if err := c.Report(JobResult{JobID: 1}); err != nil {
		t.Fatal(err)
	}

	if got := obs.C(obs.MQueueNetPush).Value(); got != pushBefore+1 {
		t.Errorf("net push counter = %d, want %d", got, pushBefore+1)
	}
	if got := obs.C(obs.MQueueNetPop).Value(); got != popBefore+1 {
		t.Errorf("net pop counter = %d, want %d", got, popBefore+1)
	}
	if got := obs.C(obs.MQueueNetReport).Value(); got != reportBefore+1 {
		t.Errorf("net report counter = %d, want %d", got, reportBefore+1)
	}
}

func TestQueueDepthGauge(t *testing.T) {
	q := New()
	depth := obs.G(obs.MQueueDepth)
	for i := 0; i < 3; i++ {
		if err := q.Push(testJob(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := depth.Value(); got != 3 {
		t.Fatalf("depth after pushes = %d, want 3", got)
	}
	if _, err := q.Pop(); err != nil {
		t.Fatal(err)
	}
	if got := depth.Value(); got != 2 {
		t.Fatalf("depth after pop = %d, want 2", got)
	}
}
