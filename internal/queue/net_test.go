package queue

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"snowboard/internal/obs"
)

// rawDial opens a plain TCP connection so tests can send protocol-violating
// bytes the Client type would never produce. The caller must close the
// connection before the server: Server.Close waits for in-flight handlers.
func rawDial(t *testing.T, addr string) (net.Conn, *bufio.Reader) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	return conn, bufio.NewReader(conn)
}

func readResp(t *testing.T, r *bufio.Reader) wireResp {
	t.Helper()
	line, err := r.ReadBytes('\n')
	if err != nil {
		t.Fatalf("read response: %v", err)
	}
	var resp wireResp
	if err := json.Unmarshal(line, &resp); err != nil {
		t.Fatalf("decode response %q: %v", line, err)
	}
	return resp
}

func TestTCPBadRequest(t *testing.T) {
	q := New()
	srv, err := Serve(q, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	badBefore := obs.C(obs.MQueueNetBadReq).Value()
	conn, r := rawDial(t, srv.Addr())
	defer conn.Close()

	// Malformed JSON must get an explicit error, not a silent drop.
	if _, err := conn.Write([]byte("{not json\n")); err != nil {
		t.Fatal(err)
	}
	resp := readResp(t, r)
	if resp.OK || !strings.HasPrefix(resp.Err, "bad request:") {
		t.Fatalf("bad request response = %+v", resp)
	}
	if got := obs.C(obs.MQueueNetBadReq).Value(); got != badBefore+1 {
		t.Fatalf("bad_requests = %d, want %d", got, badBefore+1)
	}

	// The connection stays usable: a valid request afterwards still works.
	if _, err := conn.Write([]byte(`{"op":"pop"}` + "\n")); err != nil {
		t.Fatal(err)
	}
	resp = readResp(t, r)
	if resp.OK || resp.Err != ErrEmpty.Error() {
		t.Fatalf("pop after bad request = %+v, want err %q", resp, ErrEmpty)
	}

	// Unknown ops get their own explicit error.
	if _, err := conn.Write([]byte(`{"op":"flush"}` + "\n")); err != nil {
		t.Fatal(err)
	}
	resp = readResp(t, r)
	if resp.OK || !strings.Contains(resp.Err, `unknown op "flush"`) {
		t.Fatalf("unknown op response = %+v", resp)
	}
}

func TestTCPOpCounters(t *testing.T) {
	q := New()
	srv, err := Serve(q, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	pushBefore := obs.C(obs.MQueueNetPush).Value()
	popBefore := obs.C(obs.MQueueNetPop).Value()
	reportBefore := obs.C(obs.MQueueNetReport).Value()

	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Push(testJob(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Pop(); err != nil {
		t.Fatal(err)
	}
	if err := c.Report(JobResult{JobID: 1}); err != nil {
		t.Fatal(err)
	}

	if got := obs.C(obs.MQueueNetPush).Value(); got != pushBefore+1 {
		t.Errorf("net push counter = %d, want %d", got, pushBefore+1)
	}
	if got := obs.C(obs.MQueueNetPop).Value(); got != popBefore+1 {
		t.Errorf("net pop counter = %d, want %d", got, popBefore+1)
	}
	if got := obs.C(obs.MQueueNetReport).Value(); got != reportBefore+1 {
		t.Errorf("net report counter = %d, want %d", got, reportBefore+1)
	}
}

func TestQueueDepthGaugePerQueue(t *testing.T) {
	// Two queues in one process must not clobber each other's depth: each
	// reports its own gauge, and the shared queue.depth gauge aggregates
	// deltas instead of being Set by whoever moved last.
	agg := obs.G(obs.MQueueDepth)
	aggBefore := agg.Value()
	a := NewWithOptions(Options{Name: "depth-a"})
	b := NewWithOptions(Options{Name: "depth-b"})
	for i := 0; i < 3; i++ {
		if err := a.Push(testJob(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Push(testJob(9)); err != nil {
		t.Fatal(err)
	}
	da, db := obs.G("queue.depth-a.depth"), obs.G("queue.depth-b.depth")
	if da.Value() != 3 || db.Value() != 1 {
		t.Fatalf("per-queue depths = %d,%d, want 3,1", da.Value(), db.Value())
	}
	if got := agg.Value() - aggBefore; got != 4 {
		t.Fatalf("aggregate depth delta = %d, want 4", got)
	}
	if _, err := a.Pop(); err != nil {
		t.Fatal(err)
	}
	if da.Value() != 2 || db.Value() != 1 {
		t.Fatalf("per-queue depths after pop = %d,%d, want 2,1", da.Value(), db.Value())
	}
	if got := agg.Value() - aggBefore; got != 3 {
		t.Fatalf("aggregate depth delta after pop = %d, want 3", got)
	}
	a.Close()
	b.Close()
}

func TestServerClosePromptWithIdleClient(t *testing.T) {
	// Regression: an idle connected client used to park the handler in a
	// deadline-less read, so Server.Close blocked on wg.Wait forever. Close
	// must sever live connections and return promptly.
	q := New()
	srv, err := Serve(q, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	conn, r := rawDial(t, srv.Addr())
	defer conn.Close()
	// One round-trip proves the handler is live before it goes idle.
	if _, err := conn.Write([]byte(`{"op":"pop"}` + "\n")); err != nil {
		t.Fatal(err)
	}
	readResp(t, r)

	done := make(chan struct{})
	start := time.Now()
	go func() {
		srv.Close()
		close(done)
	}()
	select {
	case <-done:
		if d := time.Since(start); d > time.Second {
			t.Fatalf("Server.Close took %v with an idle client, want < 1s", d)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Server.Close hung on an idle client")
	}
}

func TestFrameTooLargeClamp(t *testing.T) {
	q := New()
	srv, err := ServeOpts(q, "127.0.0.1:0", ServerOptions{MaxFrame: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	bigBefore := obs.C(obs.MQueueNetBigFrm).Value()
	conn, r := rawDial(t, srv.Addr())
	defer conn.Close()

	// A newline-free flood past the cap must get an explicit error, not an
	// unbounded buffer.
	frame := append(bytes.Repeat([]byte("a"), 200), '\n')
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	resp := readResp(t, r)
	if resp.OK || resp.Err != "frame too large" {
		t.Fatalf("oversized frame response = %+v", resp)
	}
	if got := obs.C(obs.MQueueNetBigFrm).Value(); got != bigBefore+1 {
		t.Fatalf("frame_too_large counter = %d, want %d", got, bigBefore+1)
	}

	// The connection stays in sync: a small valid request still works.
	if _, err := conn.Write([]byte(`{"op":"pop"}` + "\n")); err != nil {
		t.Fatal(err)
	}
	resp = readResp(t, r)
	if resp.OK || resp.Err != ErrEmpty.Error() {
		t.Fatalf("pop after oversized frame = %+v, want err %q", resp, ErrEmpty)
	}
}

func TestUnsupportedProtocolVersion(t *testing.T) {
	q := New()
	srv, err := Serve(q, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, r := rawDial(t, srv.Addr())
	defer conn.Close()
	if _, err := conn.Write([]byte(`{"op":"pop","v":99}` + "\n")); err != nil {
		t.Fatal(err)
	}
	resp := readResp(t, r)
	if resp.OK || !strings.Contains(resp.Err, "unsupported protocol version 99") {
		t.Fatalf("v99 response = %+v", resp)
	}
}

func TestClientReconnectBackoff(t *testing.T) {
	q := New()
	srv, err := Serve(q, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Capture the live conns the client dials so the test can sever one out
	// from under it.
	var mu sync.Mutex
	var conns []net.Conn
	reconnBefore := obs.C(obs.MQueueNetReconn).Value()
	c, err := DialOpts(srv.Addr(), DialOptions{
		MaxRetries: 4,
		BaseDelay:  time.Millisecond,
		MaxDelay:   10 * time.Millisecond,
		Seed:       42,
		Dial: func(addr string) (net.Conn, error) {
			conn, err := net.Dial("tcp", addr)
			if err == nil {
				mu.Lock()
				conns = append(conns, conn)
				mu.Unlock()
			}
			return conn, err
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Push(testJob(1)); err != nil {
		t.Fatal(err)
	}
	// Sever the connection behind the client's back; the next round-trip
	// must redial and still succeed.
	mu.Lock()
	conns[0].Close()
	mu.Unlock()
	ls, err := c.Lease()
	if err != nil {
		t.Fatalf("lease after severed conn: %v", err)
	}
	if ls.Job.ID != 1 {
		t.Fatalf("leased job %d, want 1", ls.Job.ID)
	}
	if err := c.Ack(ls.ID); err != nil {
		t.Fatal(err)
	}
	if got := obs.C(obs.MQueueNetReconn).Value(); got <= reconnBefore {
		t.Fatalf("reconnects counter did not move (= %d)", got)
	}
	mu.Lock()
	n := len(conns)
	mu.Unlock()
	if n < 2 {
		t.Fatalf("client dialed %d times, want >= 2", n)
	}
}
