package queue

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"

	"snowboard/internal/obs"
)

// TCP transport metrics: connections accepted / currently served, per-op
// counters, and malformed-request counts.
var (
	mNetConns    = obs.C(obs.MQueueNetConns)
	mNetInFlight = obs.G(obs.MQueueNetInFl)
	mNetBadReq   = obs.C(obs.MQueueNetBadReq)
	mNetPop      = obs.C(obs.MQueueNetPop)
	mNetPush     = obs.C(obs.MQueueNetPush)
	mNetReport   = obs.C(obs.MQueueNetReport)
	mNetUnknown  = obs.C(obs.MQueueNetUnknown)
)

// TCP transport: a Server fronts a Queue with a line-delimited JSON
// protocol; Clients (workers on other machines) fetch jobs and report
// results. The protocol has three request kinds:
//
//	{"op":"pop"}                 -> {"ok":true,"job":{...}} | {"ok":false,"err":"empty"|"closed"}
//	{"op":"push","job":{...}}    -> {"ok":true}
//	{"op":"report","result":{…}} -> {"ok":true}

type wireReq struct {
	Op     string          `json:"op"`
	Job    json.RawMessage `json:"job,omitempty"`
	Result *JobResult      `json:"result,omitempty"`
}

type wireResp struct {
	OK  bool            `json:"ok"`
	Err string          `json:"err,omitempty"`
	Job json.RawMessage `json:"job,omitempty"`
}

// Server exposes a Queue over TCP.
type Server struct {
	Q  *Queue
	ln net.Listener
	wg sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// Serve starts listening on addr (e.g. "127.0.0.1:0") and returns the
// server; the bound address is available via Addr.
func Serve(q *Queue, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("queue: listen: %w", err)
	}
	s := &Server{Q: q, ln: ln}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listener address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	mNetConns.Inc()
	mNetInFlight.Add(1)
	defer mNetInFlight.Add(-1)
	r := bufio.NewReader(conn)
	enc := json.NewEncoder(conn)
	for {
		line, readErr := r.ReadBytes('\n')
		if len(line) == 0 {
			// Connection drained (EOF) or failed with nothing pending.
			return
		}
		var req wireReq
		if err := json.Unmarshal(line, &req); err != nil {
			// Malformed requests get an explicit error response on the
			// still-open connection rather than a silent drop.
			mNetBadReq.Inc()
			_ = enc.Encode(wireResp{OK: false, Err: fmt.Sprintf("bad request: %v", err)})
			if readErr != nil {
				return
			}
			continue
		}
		switch req.Op {
		case "pop":
			mNetPop.Inc()
			job, err := s.Q.TryPop()
			if err != nil {
				_ = enc.Encode(wireResp{OK: false, Err: err.Error()})
				continue
			}
			raw, err := EncodeJob(job)
			if err != nil {
				_ = enc.Encode(wireResp{OK: false, Err: err.Error()})
				continue
			}
			_ = enc.Encode(wireResp{OK: true, Job: raw})
		case "push":
			mNetPush.Inc()
			job, err := DecodeJob(req.Job)
			if err != nil {
				_ = enc.Encode(wireResp{OK: false, Err: err.Error()})
				continue
			}
			if err := s.Q.Push(job); err != nil {
				_ = enc.Encode(wireResp{OK: false, Err: err.Error()})
				continue
			}
			_ = enc.Encode(wireResp{OK: true})
		case "report":
			mNetReport.Inc()
			if req.Result == nil {
				_ = enc.Encode(wireResp{OK: false, Err: "missing result"})
				continue
			}
			if err := s.Q.Report(*req.Result); err != nil {
				_ = enc.Encode(wireResp{OK: false, Err: err.Error()})
				continue
			}
			_ = enc.Encode(wireResp{OK: true})
		default:
			mNetUnknown.Inc()
			_ = enc.Encode(wireResp{OK: false, Err: fmt.Sprintf("unknown op %q", req.Op)})
		}
	}
}

// Close stops accepting and waits for in-flight handlers.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	_ = s.ln.Close()
	s.wg.Wait()
}

// Client is a worker-side connection to a queue server.
type Client struct {
	conn net.Conn
	r    *bufio.Reader
	enc  *json.Encoder
	mu   sync.Mutex
}

// Dial connects to a queue server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("queue: dial: %w", err)
	}
	return &Client{conn: conn, r: bufio.NewReader(conn), enc: json.NewEncoder(conn)}, nil
}

func (c *Client) roundTrip(req wireReq) (wireResp, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(req); err != nil {
		return wireResp{}, err
	}
	line, err := c.r.ReadBytes('\n')
	if err != nil {
		return wireResp{}, err
	}
	var resp wireResp
	if err := json.Unmarshal(line, &resp); err != nil {
		return wireResp{}, err
	}
	return resp, nil
}

// Pop fetches the next job; ErrEmpty when none are queued, ErrClosed when
// the queue has shut down.
func (c *Client) Pop() (Job, error) {
	resp, err := c.roundTrip(wireReq{Op: "pop"})
	if err != nil {
		return Job{}, err
	}
	if !resp.OK {
		switch resp.Err {
		case ErrEmpty.Error():
			return Job{}, ErrEmpty
		case ErrClosed.Error():
			return Job{}, ErrClosed
		}
		return Job{}, fmt.Errorf("queue: %s", resp.Err)
	}
	return DecodeJob(resp.Job)
}

// Push enqueues a job remotely.
func (c *Client) Push(j Job) error {
	raw, err := EncodeJob(j)
	if err != nil {
		return err
	}
	resp, err := c.roundTrip(wireReq{Op: "push", Job: raw})
	if err != nil {
		return err
	}
	if !resp.OK {
		return fmt.Errorf("queue: %s", resp.Err)
	}
	return nil
}

// Report sends a result back.
func (c *Client) Report(r JobResult) error {
	resp, err := c.roundTrip(wireReq{Op: "report", Result: &r})
	if err != nil {
		return err
	}
	if !resp.OK {
		return fmt.Errorf("queue: %s", resp.Err)
	}
	return nil
}

// Close terminates the connection.
func (c *Client) Close() error { return c.conn.Close() }
